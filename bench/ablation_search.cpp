// Ablations — conclusion window and persistent high-priority testing.
//
// (a) min_observation: how long a (hypothesis : focus) pair collects data
//     before concluding. Short windows conclude fast but flap on marginal
//     pairs; long windows slow every wave of the search.
// (b) persistent_high_priority: the paper keeps high-priority pairs
//     instrumented for the whole run so behaviours that emerge later are
//     caught; switching persistence off makes them one-shot tests.
#include "bench_common.h"

using namespace histpc;

namespace {

/// Version-C-like trace whose imbalance moves mid-run: ranks 2/3 wait in
/// the first half, ranks 0/1 in the second. One-shot tests conclude on
/// first-half data only.
simmpi::ExecutionTrace phase_shift_trace() {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(4, "node", "shift"));
  b.record([](simmpi::Recorder& r) {
    simmpi::FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < 2200; ++i) {
      const bool first_half = i < 1100;
      const bool heavy = first_half ? r.rank() < 2 : r.rank() >= 2;
      r.compute(heavy ? 1.0 : 0.25);
      r.barrier();
    }
  });
  return simmpi::Simulator().run(b.build());
}

}  // namespace

int main() {
  bench::print_header("Ablation: conclusion window and persistent high-priority testing",
                      "design choices from Sections 2 and 3.1");

  // --- (a) conclusion window sweep on version C -------------------------
  apps::AppParams params = bench::params_for_version('C');
  params.target_duration = 9000.0;
  util::TablePrinter window_table(
      {"min_observation (s)", "Pairs Tested", "Bottlenecks", "Search End (s)"});
  for (double window : {5.0, 10.0, 20.0, 40.0}) {
    core::DiagnosisSession session("poisson_c", params);
    session.config().min_observation = window;
    const pc::DiagnosisResult r = session.diagnose();
    window_table.add_row({util::fmt_double(window, 0), std::to_string(r.stats.pairs_tested),
                          std::to_string(r.stats.bottlenecks),
                          util::fmt_double(r.stats.end_time, 1)});
  }
  std::printf("conclusion window sweep (undirected search of version C):\n%s\n",
              window_table.to_string().c_str());

  // --- (b) persistence of high-priority pairs ---------------------------
  // Directives name the pairs that waited in a *previous* run (ranks 0/1
  // of the first half); in this run the bottleneck moves to ranks 2/3
  // halfway through. Persistent pairs flip when behaviour changes.
  const simmpi::ExecutionTrace trace = phase_shift_trace();
  pc::DirectiveSet directives;
  for (int p = 1; p <= 4; ++p)
    directives.priorities.push_back(
        {"ExcessiveSyncWaitingTime",
         "</Code,/Machine,/Process/shift:" + std::to_string(p) + ",/SyncObject>",
         pc::Priority::High});

  util::TablePrinter persist_table(
      {"persistent_high_priority", "Bottlenecks", "Late flips (found after 1200s)"});
  for (bool persistent : {true, false}) {
    core::DiagnosisSession session{simmpi::ExecutionTrace(trace)};
    session.config().persistent_high_priority = persistent;
    const pc::DiagnosisResult r = session.diagnose(directives);
    std::size_t late = 0;
    for (const auto& b : r.bottlenecks)
      if (b.t_found > 1200.0) ++late;
    persist_table.add_row({persistent ? "on (paper)" : "off", std::to_string(r.stats.bottlenecks),
                           std::to_string(late)});
  }
  std::printf("persistence ablation (bottleneck moves mid-run):\n%s\n",
              persist_table.to_string().c_str());
  std::printf(
      "expected shape: longer windows slow the search without finding more;\n"
      "with persistence ON the monitor catches the second-half shift (late\n"
      "flips > 0), with persistence OFF the early conclusions are final.\n");
  return 0;
}
