// Shared support for the table/figure regeneration benches.
//
// Every bench binary reproduces one table or figure from Karavanic &
// Miller (SC'99), printing the measured values next to the paper's
// reported ones. Absolute seconds differ (our substrate is a simulator,
// not the authors' SP/2); the comparisons of interest are the shapes —
// reduction percentages, orderings, and crossover points.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "history/analysis.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "pc/consultant.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace histpc::bench {

inline constexpr const char* kBenchMetricsPath = "BENCH_metrics.json";

/// Merge named sections into BENCH_metrics.json (read-modify-write): each
/// bench binary owns its top-level sections and must not clobber the
/// others', so the canonical `for b in build/bench/*; do $b; done` loop
/// accumulates one combined file regardless of run order.
inline void write_bench_sections(std::vector<std::pair<std::string, util::Json>> sections,
                                 const std::string& path = kBenchMetricsPath) {
  util::Json metrics = std::filesystem::exists(path)
                           ? util::Json::parse(util::read_file(path))
                           : util::Json::object();
  for (auto& [name, value] : sections) metrics[name] = std::move(value);
  util::write_file(path, metrics.dump(2) + "\n");
}

/// Single-section convenience overload.
inline void write_bench_section(const std::string& name, util::Json value,
                                const std::string& path = kBenchMetricsPath) {
  std::vector<std::pair<std::string, util::Json>> sections;
  sections.emplace_back(name, std::move(value));
  write_bench_sections(std::move(sections), path);
}

/// Run parameters per Poisson version. Durations are generous enough for
/// the undirected base searches to complete ("allowed to run to
/// completion", Section 4.1); distinct node numbering between versions
/// reproduces the differently-named-machine-resources mapping problem.
inline apps::AppParams params_for_version(char version) {
  apps::AppParams p;
  switch (version) {
    case 'A': p.target_duration = 2600.0; p.node_base = 1; break;
    case 'B': p.target_duration = 3000.0; p.node_base = 5; break;
    case 'C': p.target_duration = 3000.0; p.node_base = 9; break;
    case 'D': p.target_duration = 7500.0; p.node_base = 17; break;
    default: break;
  }
  return p;
}

inline std::string app_for_version(char version) {
  return std::string("poisson_") + static_cast<char>(version - 'A' + 'a');
}

/// The evaluation reference set: clearly significant base bottlenecks not
/// excluded by the directive set's prunes (see history::filter_pruned and
/// history::significant_bottlenecks for the rationale).
inline std::vector<pc::BottleneckReport> reference_set(
    const std::vector<pc::BottleneckReport>& base, const pc::DirectiveSet& directives,
    const resources::ResourceDb& db, double min_fraction = 0.22) {
  return history::significant_bottlenecks(history::filter_pruned(base, directives, db),
                                          min_fraction);
}

/// "184.2 (-85.9%)" style cell; plain seconds for the base column.
inline std::string time_cell(double t, double base_t) {
  if (t == base_t) return util::fmt_double(t, 1);
  if (!(t < 1e300)) return "not found";
  const double reduction = (base_t - t) / base_t;
  return util::fmt_double(t, 1) + " (" + (reduction >= 0 ? "-" : "+") +
         util::fmt_percent(std::abs(reduction)) + ")";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace histpc::bench
