// Section 4.3 (first analysis) — what directives change about a repeated
// diagnosis of the same version.
//
// The paper ran version A cold (a1: 81 pairs tested true), harvested
// directives, and re-ran the same version (a2: 103 true pairs): 78 were
// seeded high-priority pairs from a1; of the remaining 25, 3 had been set
// to low priority (false in a1), 6 were intermediate-level pairs a1 never
// tested, and 16 were more refined answers a1 never reached before the
// program ended under its cost limits. The directed run produces a *more
// detailed* diagnosis than the cold run ever could.
#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("a1 -> a2: a directed re-diagnosis is more detailed",
                      "Karavanic & Miller SC'99, Section 4.3 (runs a1 and a2)");

  // a1: cold diagnosis, deliberately cost-limited relative to the program
  // length so refined pairs remain untested at program end. a1 and a2 are
  // separate executions of the same program (distinct jitter seeds), as in
  // the paper.
  apps::AppParams params = bench::params_for_version('A');
  params.target_duration = 1600.0;
  params.compute_jitter = 0.02;
  params.seed = 1;
  core::DiagnosisSession a1_session("poisson_a", params);
  const pc::DiagnosisResult a1 = a1_session.diagnose();
  const auto record = a1_session.make_record(a1, "A");

  std::size_t a1_never_ran = 0;
  for (const auto& n : a1.nodes)
    if (n.status == pc::NodeStatus::NeverRan) ++a1_never_ran;
  std::printf("a1: %zu pairs tested true, %zu tested, %zu never ran (program ended)\n",
              a1.stats.bottlenecks, a1.stats.pairs_tested, a1_never_ran);

  // a2: the same version again, with a1's directives.
  const pc::DirectiveSet directives = history::DirectiveGenerator().from_record(record);
  std::size_t high = 0;
  for (const auto& p : directives.priorities)
    if (p.priority == pc::Priority::High) ++high;
  std::printf("directives: %zu high priority, %zu low priority, %zu prunes\n\n", high,
              directives.priorities.size() - high, directives.prunes.size());

  params.seed = 2;  // a different execution of the same program
  core::DiagnosisSession a2_session("poisson_a", params);
  const pc::DiagnosisResult a2 = a2_session.diagnose(directives);

  // a1 trues in the universe a2 actually searches (its directives prune
  // the redundant /Machine hierarchy, whose pairs merely duplicate the
  // process view).
  const auto a1_comparable = history::filter_pruned(a1.bottlenecks, directives,
                                                    a2_session.view().resources());
  std::printf("a1 true pairs comparable under a2's prunes: %zu of %zu\n\n",
              a1_comparable.size(), a1.bottlenecks.size());

  // Categorize a2's true pairs against a1's outcomes, as the paper did.
  enum Category { SeededTrue, WasLowPriority, Intermediate, MoreRefined };
  std::size_t counts[4] = {0, 0, 0, 0};
  const auto& db = a2_session.view().resources();
  for (const auto& b : a2.bottlenecks) {
    const pc::NodeSnapshot* in_a1 = nullptr;
    for (const auto& n : a1.nodes)
      if (n.hypothesis == b.hypothesis && n.focus == b.focus) in_a1 = &n;
    if (in_a1 && in_a1->status == pc::NodeStatus::True) {
      ++counts[SeededTrue];
      continue;
    }
    if (in_a1 && in_a1->status == pc::NodeStatus::False) {
      ++counts[WasLowPriority];
      continue;
    }
    // Never tested in a1: intermediate if some a1 true pair refines it
    // further, otherwise a more detailed answer a1 never reached.
    const auto focus = resources::Focus::parse(b.focus, db, false);
    bool intermediate = false;
    for (const auto& t : a1.bottlenecks) {
      const auto other = resources::Focus::parse(t.focus, db, false);
      if (focus && other && t.hypothesis == b.hypothesis && focus->contains(*other) &&
          !(*focus == *other)) {
        intermediate = true;
        break;
      }
    }
    ++counts[intermediate ? Intermediate : MoreRefined];
  }

  util::TablePrinter table({"a2 true pairs", "count"});
  table.add_row({"a1 (comparable set, for reference)", std::to_string(a1_comparable.size())});
  table.add_row({"total", std::to_string(a2.stats.bottlenecks)});
  table.add_row({"seeded high priority (true in a1)", std::to_string(counts[SeededTrue])});
  table.add_row({"had been set low priority (false in a1)",
                 std::to_string(counts[WasLowPriority])});
  table.add_row({"intermediate pairs a1 never tested", std::to_string(counts[Intermediate])});
  table.add_row({"more refined answers a1 never reached",
                 std::to_string(counts[MoreRefined])});
  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());

  std::printf(
      "paper reported: a1 found 81 true pairs; a2 found 103 — 78 seeded,\n"
      "3 previously low priority, 6 intermediate, 16 refined answers a1\n"
      "never tested due to cost limits. Expected shape: the directed run\n"
      "reports a strict superset dominated by the seeded pairs, plus\n"
      "refined answers the cold run ran out of program to test.\n");
  return 0;
}
