// Figure 3 — Mappings for Versions A and B: the combined resource
// hierarchies of the two versions with each resource tagged 1 (only A),
// 2 (only B) or 3 (both), plus the mapping directives that link the
// renamed modules and functions.
#include "bench_common.h"

#include "history/execution_map.h"
#include "metrics/trace_view.h"

using namespace histpc;

int main() {
  bench::print_header("Figure 3: execution map and mapping directives for versions A and B",
                      "Karavanic & Miller SC'99, Figure 3 (Section 3.2)");

  apps::AppParams params;
  params.target_duration = 120.0;
  const simmpi::ExecutionTrace trace_a = apps::run_app("poisson_a", params);
  const simmpi::ExecutionTrace trace_b = apps::run_app("poisson_b", params);
  const metrics::TraceView view_a(trace_a);
  const metrics::TraceView view_b(trace_b);

  const history::ExecutionMap map =
      history::build_execution_map(view_a.resources(), view_b.resources());
  std::printf("execution map (1 = version A only, 2 = version B only, 3 = both):\n\n%s\n",
              map.render().c_str());

  std::printf("mappings suggested by the structural auto-mapper:\n");
  for (const auto& m : history::suggest_mappings(view_a.resources(), view_b.resources()))
    std::printf("  map %s %s\n", m.from.c_str(), m.to.c_str());

  std::printf(
      "\npaper's hand-written directives for the same pair of versions:\n"
      "  map /Code/exchng1.f /Code/nbexchng.f\n"
      "  map /Code/exchng1.f/exchng1 /Code/nbexchng.f/nbexchng1\n"
      "  map /Code/oned.f /Code/onednb.f\n"
      "  map /Code/sweep.f /Code/nbsweep.f\n"
      "  map /Code/sweep.f/sweep1d /Code/nbsweep.f/nbsweep\n");
  return 0;
}
