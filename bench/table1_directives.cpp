// Table 1 — Time (in seconds) to find all true bottlenecks with search
// directives: no directives vs. pruning (all / general-only /
// historic-only) vs. priorities-only vs. priorities + prunes, measured at
// 25/50/75/100% of the base run's bottleneck set.
//
// Workload: the 2-D Poisson application (version C) on four nodes,
// identical thresholds in every run (Section 4.1).
#include "bench_common.h"
#include "util/json.h"

using namespace histpc;

namespace {

struct Variant {
  std::string name;
  history::GeneratorOptions options;
  bool use_directives = true;
};

}  // namespace

int main() {
  bench::print_header("Table 1: time (s) to find true bottlenecks with search directives",
                      "Karavanic & Miller SC'99, Table 1 (Section 4.1)");

  // Trace cache on (same working-directory cache micro_core uses), so the
  // recorded hit/miss counters are real: the first bench run simulates and
  // stores, later runs load the snapshot.
  pc::PcConfig config;
  config.trace_cache_dir = "trace-snapshot-cache";
  core::DiagnosisSession base_session("poisson_c", bench::params_for_version('C'), config);
  std::printf("running base case (no directives, run to completion)...\n");
  const pc::DiagnosisResult base = base_session.diagnose();
  const auto record = base_session.make_record(base, "C");
  std::printf("base: %zu pairs tested, %zu bottlenecks, search ended at %.1fs\n\n",
              base.stats.pairs_tested, base.stats.bottlenecks, base.stats.end_time);

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "No Directives";
    v.use_directives = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "Prunes Only";
    v.options.priorities = false;
    v.options.false_pair_prunes = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "General Prunes Only";
    v.options.priorities = false;
    v.options.historic_prunes = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "Historic Prunes Only";
    v.options.priorities = false;
    v.options.general_prunes = false;
    v.options.false_pair_prunes = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "Priorities Only";
    v.options.general_prunes = false;
    v.options.historic_prunes = false;
    variants.push_back(v);
  }
  {
    // The paper's combined variant: hierarchy/resource prunes plus
    // priorities, but no pair prunes of previously-false tests, so new
    // behaviours can never be missed.
    Variant v;
    v.name = "Priorities & All Prunes";
    variants.push_back(v);
  }

  // One reference set for every column (the paper's fixed base set):
  // clearly significant bottlenecks outside the pruned (redundant)
  // hierarchies.
  const pc::DirectiveSet full_prunes = [&] {
    history::GeneratorOptions opts;
    opts.priorities = false;
    return history::DirectiveGenerator(opts).from_record(record);
  }();
  const auto reference =
      bench::reference_set(base.bottlenecks, full_prunes, base_session.view().resources());
  std::printf("reference bottleneck set: %zu of %zu base bottlenecks\n\n", reference.size(),
              base.bottlenecks.size());

  const std::vector<double> percents{25, 50, 75, 100};
  util::TablePrinter table([&] {
    std::vector<std::string> headers{"% B'necks Found"};
    for (const auto& v : variants) headers.push_back(v.name);
    return headers;
  }());
  util::TablePrinter pairs_table({"Variant", "Pairs Tested", "Bottlenecks Found"});

  std::vector<std::vector<double>> times(variants.size());
  util::Json telemetry_by_variant = util::Json::object();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    pc::DiagnosisResult result = [&] {
      if (!variants[i].use_directives) return base;
      const pc::DirectiveSet directives =
          history::DirectiveGenerator(variants[i].options).from_record(record);
      // Every variant diagnoses the same version-C execution; each
      // diagnose() call is an independent online search, so reuse the
      // session instead of re-simulating the identical trace.
      return base_session.diagnose(directives);
    }();
    for (double pct : percents) times[i].push_back(result.time_to_find(reference, pct));
    pairs_table.add_row({variants[i].name, std::to_string(result.stats.pairs_tested),
                         std::to_string(result.stats.bottlenecks)});
    telemetry_by_variant[variants[i].name] = result.telemetry.to_json();
  }

  // Merge the per-variant summaries into BENCH_metrics.json (micro_core
  // writes the other sections; keep whatever is already there).
  bench::write_bench_section("table1_variant_telemetry", std::move(telemetry_by_variant));

  const telemetry::Registry& reg = base_session.registry();
  util::Json cache_section = util::Json::object();
  cache_section["hits"] = static_cast<double>(reg.counter("trace_cache.hit"));
  cache_section["misses"] = static_cast<double>(reg.counter("trace_cache.miss"));
  cache_section["trace_load_seconds"] = reg.timer("session.trace_load").seconds;
  cache_section["simulate_seconds"] = reg.timer("session.simulate").seconds;
  bench::write_bench_section("table1_trace_cache", std::move(cache_section));
  std::printf("trace cache: %llu hit / %llu miss (load %.1f ms, simulate %.1f ms)\n",
              static_cast<unsigned long long>(reg.counter("trace_cache.hit")),
              static_cast<unsigned long long>(reg.counter("trace_cache.miss")),
              reg.timer("session.trace_load").seconds * 1e3,
              reg.timer("session.simulate").seconds * 1e3);
  std::printf("wrote per-variant telemetry summaries to %s\n\n", bench::kBenchMetricsPath);

  for (std::size_t p = 0; p < percents.size(); ++p) {
    std::vector<std::string> row{util::fmt_double(percents[p], 0) + "%"};
    for (std::size_t i = 0; i < variants.size(); ++i)
      row.push_back(bench::time_cell(times[i][p], times[0][p]));
    table.add_row(std::move(row));
  }
  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());
  std::printf("instrumentation volume (paper goal 2 — decrease unhelpful instrumentation):\n%s\n",
              pairs_table.to_string().c_str());

  std::printf(
      "paper reported (Table 1, reductions at 100%% of bottlenecks):\n"
      "  Prunes Only            -93.5%%\n"
      "  General Prunes Only    (28%% slower than all prunes)\n"
      "  Priorities Only        -78.6%%\n"
      "  Priorities & All Prunes -94.4%%\n"
      "expected shape: every directive type cuts diagnosis time drastically;\n"
      "pruning beats priorities alone; the combination is best and, unlike\n"
      "pure pruning, cannot miss new behaviours.\n");
  return 0;
}
