// Section 4.3 (end) — Combining directives from multiple previous runs:
// A ∩ B (high only if true in both; low only if false in both) versus
// A ∪ B (high if true in either; low if false in either and never true),
// both used to diagnose version C. The paper found 59 common priority
// directives, 38 extra in the union, and statistically indistinguishable
// diagnosis times (176s vs 179s).
#include "bench_common.h"

#include "history/combiner.h"

using namespace histpc;

int main() {
  bench::print_header("Combining directives from runs of A and B to diagnose C",
                      "Karavanic & Miller SC'99, Section 4.3 (A ∩ B vs A ∪ B)");

  // Standard extraction (priorities + general and historic prunes), as in
  // Table 3; the combination rules apply to the priority directives.
  history::DirectiveGenerator generator;

  core::DiagnosisSession target("poisson_c", bench::params_for_version('C'));
  std::printf("base run of version C...\n");
  const pc::DiagnosisResult base_c = target.diagnose();
  const pc::DirectiveSet probe_prunes = [&] {
    history::GeneratorOptions prune_opts;
    prune_opts.priorities = false;
    return history::DirectiveGenerator(prune_opts).from_record(
        target.make_record(base_c, "C"));
  }();
  const auto reference =
      bench::reference_set(base_c.bottlenecks, probe_prunes, target.view().resources());
  const double base_time = base_c.time_to_find(reference, 100.0);

  std::vector<pc::DirectiveSet> sources;
  for (char v : {'A', 'B'}) {
    core::DiagnosisSession session(bench::app_for_version(v), bench::params_for_version(v));
    std::printf("base run of version %c...\n", v);
    const auto record = session.make_record(session.diagnose(), std::string(1, v));
    pc::DirectiveSet d = generator.from_record(record);
    d.maps = history::suggest_mappings(record.resources, target.view().resources());
    d.apply_mappings();
    d.maps.clear();
    sources.push_back(std::move(d));
  }

  const pc::DirectiveSet inter =
      history::combine(sources[0], sources[1], history::CombineMode::Intersection);
  const pc::DirectiveSet uni =
      history::combine(sources[0], sources[1], history::CombineMode::Union);

  std::size_t common = 0;
  for (const auto& p : uni.priorities)
    for (const auto& q : inter.priorities)
      if (p.hypothesis == q.hypothesis && p.focus == q.focus && p.priority == q.priority)
        ++common;
  std::printf("\npriority directives: intersection %zu, union %zu (%zu common, %zu extra)\n\n",
              inter.priorities.size(), uni.priorities.size(), common,
              uni.priorities.size() - common);

  util::TablePrinter table(
      {"Directive source", "Priorities", "Time to find all (s)", "Pairs tested"});
  table.add_row({"None (base)", "0", util::fmt_double(base_time, 1),
                 std::to_string(base_c.stats.pairs_tested)});
  for (auto [name, set] : {std::pair<const char*, const pc::DirectiveSet*>{"A \xE2\x88\xA9 B", &inter},
                           {"A \xE2\x88\xAA B", &uni}}) {
    core::DiagnosisSession run("poisson_c", bench::params_for_version('C'));
    const pc::DiagnosisResult r = run.diagnose(*set);
    const double t = r.time_to_find(reference, 100.0);
    table.add_row({name, std::to_string(set->priorities.size()),
                   bench::time_cell(t, base_time), std::to_string(r.stats.pairs_tested)});
  }
  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());

  std::printf(
      "paper reported: 59 common directives, 38 extra in A \xE2\x88\xAA B; diagnosis\n"
      "times 176s vs 179s — too close to call a winner. Expected shape: the\n"
      "union carries more directives; both combinations slash the diagnosis\n"
      "time and land close to each other.\n");
  return 0;
}
