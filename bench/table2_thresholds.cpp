// Table 2 — Bottlenecks found with varying threshold values.
//
// The 2-D Poisson application is diagnosed with the synchronization
// bottleneck threshold swept over {30, 25, 20, 15, 12, 10, 5}% of
// execution time. For each setting we report how many of the known
// significant problem areas the Performance Consultant located, how many
// hypothesis/focus pairs it instrumented, and the efficiency (bottlenecks
// found per pair tested). The paper found 12% optimal for this code:
// above it significant bottlenecks go unreported, below it instrumentation
// grows with no better answer (Section 4.2).
#include <algorithm>

#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("Table 2: bottlenecks found with varying threshold values",
                      "Karavanic & Miller SC'99, Table 2 (Section 4.2)");

  // Long runs so even the largest (5%-threshold) search completes: the
  // sweep should isolate the threshold's effect, not program-end
  // truncation.
  apps::AppParams params = bench::params_for_version('C');
  params.target_duration = 8000.0;

  // Ground truth — the paper's pre-identified set of significant problem
  // areas (exchng2 at 45%, main at 20%, the three message tags at
  // 27/19/20%, the four processes at 46-86%, and their combinations). We
  // identify it the same way: from the known wait distribution, via an
  // exhaustive unthrottled search with a low threshold, keeping areas
  // whose share of execution is clearly significant (>= 13%).
  core::DiagnosisSession truth_session("poisson_c", params);
  truth_session.config().cost_limit = 1e9;  // no throttling: test everything
  truth_session.config().threshold_override = 0.05;
  const pc::DiagnosisResult truth = truth_session.diagnose();
  const auto areas = history::significant_bottlenecks(truth.bottlenecks, 0.13);
  std::printf("significant problem areas (>=13%% of execution): %zu\n\n", areas.size());

  util::TablePrinter table({"Threshold", "Areas Reported", "Bottlenecks Reported",
                            "Pairs Tested", "Efficiency (areas/pair)"});

  // The paper's selection rule: of the settings that report (nearly) the
  // full set of significant areas, take the most efficient one.
  double best_eff = -1, best_threshold = 0;
  for (double threshold : {0.30, 0.25, 0.20, 0.15, 0.12, 0.10, 0.05}) {
    core::DiagnosisSession session("poisson_c", params);
    session.config().threshold_override = threshold;
    const pc::DiagnosisResult r = session.diagnose();
    std::size_t found = 0;
    for (const auto& a : areas)
      for (const auto& b : r.bottlenecks)
        if (b.hypothesis == a.hypothesis && b.focus == a.focus) {
          ++found;
          break;
        }
    const double efficiency =
        r.stats.pairs_tested ? static_cast<double>(found) / r.stats.pairs_tested : 0.0;
    const bool near_full = found >= areas.size() * 97 / 100;
    if (near_full && efficiency > best_eff) {
      best_eff = efficiency;
      best_threshold = threshold;
    }
    table.add_row({util::fmt_percent(threshold, 0),
                   std::to_string(found) + "/" + std::to_string(areas.size()),
                   std::to_string(r.stats.bottlenecks), std::to_string(r.stats.pairs_tested),
                   util::fmt_double(efficiency, 3)});
  }

  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());
  std::printf("most useful threshold (near-full reporting at best efficiency): %s\n\n",
              util::fmt_percent(best_threshold, 0).c_str());
  std::printf(
      "paper reported (Table 2): 30%%/25%%/20%% miss significant bottlenecks\n"
      "(7 of 26 missed at the 20%% default); 12%% reports close to the full\n"
      "set; 10%% and 5%% test more pairs without finding more, so efficiency\n"
      "peaks at 12%% — the threshold historical data would choose.\n");
  return 0;
}
