// serve_load: what diagnosis-as-a-service buys over one-shot CLI runs.
//
// The paper's economics argument is that historical state amortizes: a
// diagnosis gets cheaper when the expensive parts (trace, directives,
// prior conclusions) already exist. `histpc serve` takes that to its
// limit — one process keeps the store index folded, traces cached, foci
// interned, and (because the search is deterministic) whole results
// memoized, so a warm request pays none of the cold-start cost a CLI
// invocation repeats every time.
//
// Measured here, all in-process against a real server on a loopback
// socket:
//   cold_oneshot_seconds        fresh session, empty trace cache — what
//                               `histpc run` pays per invocation
//   warm_request_seconds        served request, result cache hit (the
//                               steady-state serve path)
//   warm_nocache_request_seconds served request forced to re-search over
//                               the warm session (no_result_cache)
//   warm_speedup_vs_cold        cold / warm — the acceptance bar is >= 5x
//   saturation                  3-point offered-vs-achieved curve with the
//                               result cache off, so every request costs a
//                               real search and the admission queue sheds
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "serve/http.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace fs = std::filesystem;
using namespace histpc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

constexpr const char* kApp = "poisson_a";
constexpr double kDuration = 1500.0;

// Median of a few repetitions; one repetition can catch a scheduler
// hiccup, and min would flatter the cached paths.
double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  bench::print_header("serve_load: diagnosis-as-a-service under load",
                      "Section 6 discussion: amortizing historical state across diagnoses");

  const fs::path scratch = fs::temp_directory_path() / "histpc_serve_load_bench";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // --- cold one-shot: fresh session, fresh (empty) trace cache each time.
  std::vector<double> cold_samples;
  for (int i = 0; i < 3; ++i) {
    const fs::path cache = scratch / ("cold-cache-" + std::to_string(i));
    const auto t0 = std::chrono::steady_clock::now();
    pc::PcConfig config;
    config.trace_cache_dir = cache.string();
    apps::AppParams params;
    params.target_duration = kDuration;
    core::DiagnosisSession session(kApp, params, config);
    (void)session.diagnose();
    cold_samples.push_back(seconds_since(t0));
  }
  const double cold_seconds = median(cold_samples);
  std::printf("cold one-shot (fresh session + empty trace cache): %7.2f ms\n",
              cold_seconds * 1e3);

  // --- the server everything below talks to.
  serve::ServeConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.threads = 4;
  // Small queue so the top saturation point actually engages admission
  // control: the load generator's concurrency (connections) must be able
  // to exceed this for 429s to appear.
  cfg.queue_depth = 16;
  cfg.store_dir = (scratch / "store").string();
  cfg.trace_cache_dir = (scratch / "trace-cache").string();
  cfg.perf_log = false;  // measuring request latency, not log I/O
  serve::DiagnosisServer server(cfg);
  server.start();
  std::printf("server on 127.0.0.1:%d (%d threads, queue depth %d)\n\n", server.port(),
              cfg.threads, cfg.queue_depth);

  const std::string body = "{\"app\": \"" + std::string(kApp) +
                           "\", \"duration\": " + util::fmt_double(kDuration, 1) + "}";
  const std::string body_nocache =
      "{\"app\": \"" + std::string(kApp) + "\", \"duration\": " +
      util::fmt_double(kDuration, 1) + ", \"no_result_cache\": true}";

  // Prime: first request builds the session (simulate + view) and seeds
  // the result cache.
  if (auto r = serve::http_post("127.0.0.1", server.port(), "/diagnose", body);
      !r || r->status != 200) {
    std::printf("FATAL: priming request failed\n");
    return 1;
  }

  auto timed_post = [&](const std::string& b) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = serve::http_post("127.0.0.1", server.port(), "/diagnose", b);
    const double dt = seconds_since(t0);
    return (r && r->status == 200) ? dt : -1.0;
  };

  std::vector<double> warm_samples, warm_nocache_samples;
  for (int i = 0; i < 7; ++i) {
    if (const double dt = timed_post(body); dt > 0) warm_samples.push_back(dt);
    if (const double dt = timed_post(body_nocache); dt > 0) warm_nocache_samples.push_back(dt);
  }
  if (warm_samples.empty() || warm_nocache_samples.empty()) {
    std::printf("FATAL: warm requests failed\n");
    return 1;
  }
  const double warm_seconds = median(warm_samples);
  const double warm_nocache_seconds = median(warm_nocache_samples);
  const double speedup = cold_seconds / warm_seconds;
  std::printf("warm served request (result cache hit):            %7.2f ms\n",
              warm_seconds * 1e3);
  std::printf("warm served request (no result cache, re-search):  %7.2f ms\n",
              warm_nocache_seconds * 1e3);
  std::printf("warm speedup vs cold one-shot:                     %7.1fx\n\n", speedup);

  // --- saturation: result cache off so each request is a real search.
  util::Json saturation = util::Json::array();
  std::printf("%-14s %-14s %-10s %-10s %s\n", "offered req/s", "achieved", "p99 ms",
              "shed rate", "sent");
  for (const double rps : {100.0, 400.0, 1600.0}) {
    serve::LoadGenOptions opt;
    opt.port = server.port();
    opt.body = body_nocache;
    opt.rps = rps;
    opt.duration_seconds = 1.5;
    opt.connections = 32;
    opt.seed = 42;
    const serve::LoadPoint point = serve::run_load(opt);
    std::printf("%-14s %-14s %-10s %-10s %zu\n", util::fmt_double(rps, 0).c_str(),
                util::fmt_double(point.achieved_rps, 1).c_str(),
                util::fmt_double(point.p99_ms, 2).c_str(),
                util::fmt_percent(point.shed_rate, 1).c_str(), point.sent);
    saturation.push_back(point.to_json());
  }

  server.stop();
  const serve::ServeStats stats = server.stats();
  std::printf("\nserver totals: %zu served, %zu shed, %zu result-cache hits\n",
              static_cast<std::size_t>(stats.served), static_cast<std::size_t>(stats.shed),
              static_cast<std::size_t>(stats.result_cache_hits));

  util::Json section = util::Json::object();
  section["source"] = "serve_load";
  section["app"] = kApp;
  section["cold_oneshot_seconds"] = cold_seconds;
  section["warm_request_seconds"] = warm_seconds;
  section["warm_nocache_request_seconds"] = warm_nocache_seconds;
  section["warm_speedup_vs_cold"] = speedup;
  section["saturation"] = std::move(saturation);
  // bench-client writes `points`; keep the same key so the validator can
  // check either producer with one code path.
  util::Json points = util::Json::array();
  {
    serve::LoadPoint warm_point;
    warm_point.offered_rps = 0.0;
    warm_point.sent = warm_samples.size();
    warm_point.ok = warm_samples.size();
    std::vector<double> sorted = warm_samples;
    std::sort(sorted.begin(), sorted.end());
    warm_point.p50_ms = median(warm_samples) * 1e3;
    warm_point.p99_ms = sorted.back() * 1e3;
    warm_point.max_ms = sorted.back() * 1e3;
    warm_point.achieved_rps = 0.0;
    warm_point.wall_seconds = 0.0;
    points.push_back(warm_point.to_json());
  }
  section["points"] = std::move(points);
  bench::write_bench_section("serve_load", std::move(section));
  std::printf("wrote serve_load section to %s\n", bench::kBenchMetricsPath);

  fs::remove_all(scratch);
  if (speedup < 5.0) {
    std::printf("WARNING: warm speedup %.1fx is below the 5x acceptance bar\n", speedup);
    return 1;
  }
  return 0;
}
