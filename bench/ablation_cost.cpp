// Ablation — the instrumentation cost ceiling.
//
// The Performance Consultant halts expansion when the predicted cost of
// enabled instrumentation crosses a threshold (Section 2). This sweep
// shows the trade the ceiling makes on the undirected search of version C:
// a tight budget stretches the diagnosis (waves of a few pairs at a time);
// a loose one finds everything quickly but at perturbation levels that
// would make the data meaningless on a real machine.
#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("Ablation: instrumentation cost ceiling vs diagnosis speed",
                      "design choice from Section 2 (search expansion throttling)");

  apps::AppParams params = bench::params_for_version('C');
  params.target_duration = 9000.0;  // room for even the slowest setting

  util::TablePrinter table({"Cost limit", "Pairs Tested", "Bottlenecks", "Peak Cost",
                            "Search End (s)", "Time to 100% (s)"});
  std::vector<pc::BottleneckReport> reference;
  for (double limit : {0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    core::DiagnosisSession session("poisson_c", params);
    session.config().cost_limit = limit;
    const pc::DiagnosisResult r = session.diagnose();
    if (reference.empty())
      reference = history::significant_bottlenecks(r.bottlenecks, 0.22);
    const double t100 = r.time_to_find(reference, 100.0);
    table.add_row({util::fmt_percent(limit, 0), std::to_string(r.stats.pairs_tested),
                   std::to_string(r.stats.bottlenecks),
                   util::fmt_percent(r.stats.peak_cost, 1),
                   util::fmt_double(r.stats.end_time, 1),
                   t100 < 1e300 ? util::fmt_double(t100, 1) : "not found"});
  }
  std::printf("measured:\n%s\n", table.to_string().c_str());

  // Why the ceiling exists: with the perturbation model on (CPU readings
  // inflated by the enabled instrumentation), a loose budget starts
  // reporting CPU bottlenecks that are artifacts of the measurement.
  util::TablePrinter noise_table(
      {"Cost limit", "CPU bottlenecks (ideal)", "CPU bottlenecks (perturbed)"});
  for (double limit : {0.05, 0.50}) {
    std::size_t counts[2] = {0, 0};
    for (int perturbed = 0; perturbed < 2; ++perturbed) {
      core::DiagnosisSession session("poisson_c", params);
      session.config().cost_limit = limit;
      session.config().perturbation_factor = perturbed ? 1.0 : 0.0;
      const pc::DiagnosisResult r = session.diagnose();
      for (const auto& b : r.bottlenecks)
        if (b.hypothesis == pc::kCpuBoundName) ++counts[perturbed];
    }
    noise_table.add_row({util::fmt_percent(limit, 0), std::to_string(counts[0]),
                         std::to_string(counts[1])});
  }
  std::printf("measurement accuracy under perturbation (factor 1.0):\n%s\n",
              noise_table.to_string().c_str());

  std::printf(
      "expected shape: diagnosis time falls steeply as the budget loosens;\n"
      "peak instrumentation cost (perturbation) rises in exchange, and with\n"
      "the perturbation model enabled a loose budget inflates the CPU\n"
      "bottleneck count — the inaccuracy the ceiling bounds. The 5%% default\n"
      "used throughout the reproduction trades a ~2000s undirected search\n"
      "for trustworthy data, the regime in which historical directives pay\n"
      "off most.\n");
  return 0;
}
