// Micro-benchmarks of the core data structures and engines
// (google-benchmark): simulator throughput, metric accumulation, focus
// refinement, SHG insertion/dedup, directive parsing, and a full
// end-to-end diagnosis.
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "apps/workload_spec.h"
#include "history/generator.h"
#include "history/postmortem.h"
#include "metrics/metric_instance.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/shg.h"

using namespace histpc;

namespace {

const simmpi::ExecutionTrace& shared_trace() {
  static simmpi::ExecutionTrace trace = [] {
    apps::AppParams p;
    p.target_duration = 300.0;
    return apps::run_app("poisson_c", p);
  }();
  return trace;
}

const metrics::TraceView& shared_view() {
  static metrics::TraceView view(shared_trace());
  return view;
}

void BM_SimulatePoissonC(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = static_cast<double>(state.range(0));
  const simmpi::SimProgram program = apps::build_poisson('C', p);
  std::size_t ops = 0;
  for (const auto& proc : program.procs) ops += proc.ops.size();
  simmpi::Simulator sim(apps::poisson_network());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(program));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) * state.iterations());
  state.counters["ops"] = static_cast<double>(ops);
}
BENCHMARK(BM_SimulatePoissonC)->Arg(100)->Arg(300)->Arg(1000);

void BM_RecordPoissonC(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::build_poisson('C', p));
  }
}
BENCHMARK(BM_RecordPoissonC);

void BM_TraceViewConstruction(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    metrics::TraceView view(trace);
    benchmark::DoNotOptimize(view.resources().num_hierarchies());
  }
}
BENCHMARK(BM_TraceViewConstruction);

void BM_MetricWholeWindowQuery(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query(metrics::MetricKind::SyncWaitTime, whole, 0.0,
                                        view.trace().duration));
  }
}
BENCHMARK(BM_MetricWholeWindowQuery);

void BM_MetricIncrementalTicks(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  const double tick = 0.5;
  for (auto _ : state) {
    metrics::MetricInstance inst(view, metrics::MetricKind::SyncWaitTime,
                                 view.compile(whole), 0.0);
    for (double t = tick; t < view.trace().duration; t += tick) inst.advance(t);
    benchmark::DoNotOptimize(inst.value());
  }
}
BENCHMARK(BM_MetricIncrementalTicks);

void BM_FocusRefinement(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  for (auto _ : state) {
    benchmark::DoNotOptimize(whole.refinements(view.resources()));
  }
}
BENCHMARK(BM_FocusRefinement);

void BM_ShgInsertAndDedup(benchmark::State& state) {
  const auto& view = shared_view();
  const pc::HypothesisSet hyps = pc::HypothesisSet::standard();
  const auto whole = resources::Focus::whole_program(view.resources());
  const auto children = whole.refinements(view.resources());
  for (auto _ : state) {
    pc::SearchHistoryGraph shg(hyps);
    for (int hyp = 0; hyp < 3; ++hyp) {
      int parent = shg.add_node(hyp, whole, shg.root(), 0.0);
      for (const auto& child : children) shg.add_node(hyp, child, parent, 1.0);
      // Second pass: every add is a dedup hit.
      for (const auto& child : children) shg.add_node(hyp, child, parent, 2.0);
    }
    benchmark::DoNotOptimize(shg.size());
  }
}
BENCHMARK(BM_ShgInsertAndDedup);

void BM_DirectiveParseSerialize(benchmark::State& state) {
  pc::DirectiveSet set;
  for (int i = 0; i < 200; ++i)
    set.priorities.push_back({"ExcessiveSyncWaitingTime",
                              "</Code/mod" + std::to_string(i) + ".f,/Machine,/Process,/SyncObject>",
                              pc::Priority::High});
  set.prunes.push_back({"*", "/Machine"});
  const std::string text = set.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc::DirectiveSet::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) * state.iterations());
}
BENCHMARK(BM_DirectiveParseSerialize);

void BM_FullDiagnosis(benchmark::State& state) {
  const auto& view = shared_view();
  for (auto _ : state) {
    pc::PerformanceConsultant consultant(view, pc::PcConfig{});
    benchmark::DoNotOptimize(consultant.run());
  }
}
BENCHMARK(BM_FullDiagnosis);

void BM_WildcardFarmSimulation(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = 200.0;
  const simmpi::SimProgram program = apps::build_taskfarm(p);
  simmpi::Simulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(program));
  }
}
BENCHMARK(BM_WildcardFarmSimulation);

void BM_WorkloadBuildFromJson(benchmark::State& state) {
  const util::Json spec = util::Json::parse(R"({
    "name": "bench", "ranks": 8, "iterations": 100,
    "body": [
      {"op": "compute", "seconds": 0.3, "function": "f", "module": "m.c"},
      {"op": "exchange", "pattern": "butterfly", "bytes": 100000},
      {"op": "allreduce", "bytes": 8}
    ]})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::build_workload(spec));
  }
}
BENCHMARK(BM_WorkloadBuildFromJson);

void BM_PostmortemDiagnosis(benchmark::State& state) {
  const auto& view = shared_view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::postmortem_diagnose(view));
  }
}
BENCHMARK(BM_PostmortemDiagnosis);

void BM_DirectiveGeneration(benchmark::State& state) {
  const auto& view = shared_view();
  pc::PerformanceConsultant consultant(view, pc::PcConfig{});
  const pc::DiagnosisResult result = consultant.run();
  const history::ExperimentRecord record =
      history::make_record("poisson", "C", view, result, 0.2);
  history::DirectiveGenerator generator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.from_record(record));
  }
}
BENCHMARK(BM_DirectiveGeneration);

}  // namespace

BENCHMARK_MAIN();
