// Micro-benchmarks of the core data structures and engines
// (google-benchmark): simulator throughput, metric accumulation (indexed
// vs. the scan oracle, per-instance vs. batched), focus refinement, SHG
// insertion/dedup, directive parsing, and a full end-to-end diagnosis.
//
// Besides the console table, main() writes BENCH_metrics.json (metric-query
// ns/query and queries/s plus p50/p99 from the telemetry histograms,
// table1-equivalent end-to-end seconds) so future PRs have a perf
// trajectory to compare against — and appends a telemetry::PerfRecord to
// perf-log/micro_core.jsonl for `histpc perf-diff`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <limits>
#include <string_view>
#include <thread>

#include "apps/apps.h"
#include "apps/workload_spec.h"
#include "bench_common.h"
#include "metrics/block_index.h"
#include "util/cpu_features.h"
#include "core/session.h"
#include "core/variant_runner.h"
#include "history/combiner.h"
#include "history/generator.h"
#include "history/postmortem.h"
#include "history/store.h"
#include "metrics/metric_batch.h"
#include "metrics/metric_instance.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/directive_index.h"
#include "pc/shg.h"
#include "resources/focus_table.h"
#include "simmpi/simulator.h"
#include "simmpi/trace_cache.h"
#include "simmpi/trace_io.h"
#include "simmpi/trace_snapshot.h"
#include "telemetry/perf_record.h"
#include "telemetry/registry.h"
#include "telemetry/tracer.h"
#include "util/json.h"

using namespace histpc;

namespace {

const simmpi::ExecutionTrace& shared_trace() {
  static simmpi::ExecutionTrace trace = [] {
    apps::AppParams p;
    p.target_duration = 300.0;
    return apps::run_app("poisson_c", p);
  }();
  return trace;
}

const metrics::TraceView& shared_view() {
  static metrics::TraceView view(shared_trace());
  return view;
}

void BM_SimulatePoissonC(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = static_cast<double>(state.range(0));
  const simmpi::SimProgram program = apps::build_poisson('C', p);
  std::size_t ops = 0;
  for (const auto& proc : program.procs) ops += proc.ops.size();
  simmpi::Simulator sim(apps::poisson_network());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(program));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) * state.iterations());
  state.counters["ops"] = static_cast<double>(ops);
}
BENCHMARK(BM_SimulatePoissonC)->Arg(100)->Arg(300)->Arg(1000);

void BM_RecordPoissonC(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::build_poisson('C', p));
  }
}
BENCHMARK(BM_RecordPoissonC);

void BM_TraceViewConstruction(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    metrics::TraceView view(trace);
    benchmark::DoNotOptimize(view.resources().num_hierarchies());
  }
}
BENCHMARK(BM_TraceViewConstruction);

void BM_MetricWholeWindowQuery(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query(metrics::MetricKind::SyncWaitTime, whole, 0.0,
                                        view.trace().duration));
  }
}
BENCHMARK(BM_MetricWholeWindowQuery);

void BM_MetricWholeWindowQueryScan(benchmark::State& state) {
  // The retained linear-scan oracle; the ratio to the indexed benchmark
  // above is the headline metric-query speedup.
  const auto& view = shared_view();
  const auto& filter =
      view.compiled(resources::Focus::whole_program(view.resources()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query_scan(metrics::MetricKind::SyncWaitTime, filter,
                                             0.0, view.trace().duration));
  }
}
BENCHMARK(BM_MetricWholeWindowQueryScan);

void BM_MetricConstrainedWindowQuery(benchmark::State& state) {
  // Function-constrained focus: served by the index's per-function posting
  // lists rather than the per-state prefix sums.
  const auto& view = shared_view();
  const auto& trace = view.trace();
  const auto& fi = trace.functions.front();
  const auto focus = resources::Focus::whole_program(view.resources())
                         .with_part(0, "/Code/" + fi.module + "/" + fi.function);
  const auto& filter = view.compiled(focus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query(metrics::MetricKind::CpuTime, filter,
                                        trace.duration * 0.25, trace.duration * 0.75));
  }
}
BENCHMARK(BM_MetricConstrainedWindowQuery);

void BM_MetricIncrementalTicks(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  const double tick = 0.5;
  for (auto _ : state) {
    metrics::MetricInstance inst(view, metrics::MetricKind::SyncWaitTime,
                                 view.compile(whole), 0.0);
    for (double t = tick; t < view.trace().duration; t += tick) inst.advance(t);
    benchmark::DoNotOptimize(inst.value());
  }
}
BENCHMARK(BM_MetricIncrementalTicks);

void BM_MetricBatchedTicks(benchmark::State& state) {
  // Eight concurrent probes serviced by one MetricBatch pass per tick —
  // the consultant's steady-state evaluation pattern.
  const auto& view = shared_view();
  const auto& trace = view.trace();
  std::vector<const metrics::FocusFilter*> filters;
  filters.push_back(&view.compiled(resources::Focus::whole_program(view.resources())));
  for (std::size_t i = 0; i < trace.functions.size() && filters.size() < 8; ++i) {
    const auto& fi = trace.functions[i];
    filters.push_back(&view.compiled(
        resources::Focus::whole_program(view.resources())
            .with_part(0, "/Code/" + fi.module + "/" + fi.function)));
  }
  const double tick = 0.5;
  for (auto _ : state) {
    metrics::MetricBatch batch(view, 0);
    for (const auto* f : filters)
      batch.add(metrics::MetricKind::ExecTime, *f, 0.0);
    for (double t = tick; t < trace.duration; t += tick) batch.advance_all(t);
    benchmark::DoNotOptimize(batch.cursor());
  }
  state.counters["probes"] = static_cast<double>(filters.size());
}
BENCHMARK(BM_MetricBatchedTicks);

// ------------------------------------------------ block-max benchmarks

/// Large phase-clustered trace for the block-skip benchmarks: eight
/// phases, each running its own function over many tiny compute/exchange
/// rounds, with one hot message tag shared by every phase. A query
/// constrained to one phase's function AND the Message sync objects is the
/// interval index's worst case (scalar walk over every Message posting
/// with a per-interval function check) while the block summaries prove 7/8
/// of the blocks function-free and skip them outright.
const simmpi::ExecutionTrace& blockskip_trace() {
  static simmpi::ExecutionTrace trace = [] {
    constexpr int kPhases = 8;
    constexpr int kRoundsPerPhase = 1500;
    simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(4, "node", "proc");
    simmpi::ProgramBuilder b(m);
    b.record([&](simmpi::Recorder& r) {
      simmpi::FunctionScope fmain(r, "main", "main.c");
      for (int ph = 0; ph < kPhases; ++ph) {
        simmpi::FunctionScope scope(r, "phase" + std::to_string(ph), "phases.c");
        for (int round = 0; round < kRoundsPerPhase; ++round) {
          // Senders compute twice as long as receivers, so every recv
          // genuinely blocks and the Message posting lists carry real
          // SyncWait time for the interval index to walk.
          r.compute(r.rank() % 2 == 0 ? 0.002 : 0.001);
          if (r.rank() % 2 == 0 && r.rank() + 1 < r.size())
            r.send(r.rank() + 1, /*tag=*/1, 1 << 10);
          else if (r.rank() % 2 == 1)
            r.recv(r.rank() - 1, /*tag=*/1);
        }
      }
    });
    return simmpi::Simulator().run(b.build());
  }();
  return trace;
}

const metrics::TraceView& blockskip_view() {
  static metrics::TraceView view(blockskip_trace());
  return view;
}

/// Phase-0 sync waits: the block-skip target query described above.
const metrics::FocusFilter& blockskip_filter() {
  const auto& view = blockskip_view();
  return view.compiled(resources::Focus::whole_program(view.resources())
                           .with_part(0, "/Code/phases.c/phase0")
                           .with_part(3, "/SyncObject/Message"));
}

void BM_BlockMaxPhaseQuery(benchmark::State& state) {
  const auto& view = blockskip_view();
  const auto& filter = blockskip_filter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query_blocks(metrics::MetricKind::SyncWaitTime, filter,
                                               0.0, view.trace().duration));
  }
}
BENCHMARK(BM_BlockMaxPhaseQuery);

void BM_BlockMaxPhaseQueryIndexedOracle(benchmark::State& state) {
  // The same query through the interval index; the ratio to the benchmark
  // above is the block-skipping speedup.
  const auto& view = blockskip_view();
  const auto& filter = blockskip_filter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.query(metrics::MetricKind::SyncWaitTime, filter, 0.0,
                                        view.trace().duration));
  }
}
BENCHMARK(BM_BlockMaxPhaseQueryIndexedOracle);

void BM_FocusRefinement(benchmark::State& state) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  for (auto _ : state) {
    benchmark::DoNotOptimize(whole.refinements(view.resources()));
  }
}
BENCHMARK(BM_FocusRefinement);

/// Working set for the intern benchmarks: whole program, its one-edge
/// refinements, and their refinements — the foci the consultant's first
/// two expansion waves handle.
const std::vector<resources::Focus>& intern_working_set() {
  static const std::vector<resources::Focus> set = [] {
    const auto& view = shared_view();
    const auto whole = resources::Focus::whole_program(view.resources());
    std::vector<resources::Focus> out{whole};
    for (resources::Focus& f : whole.refinements(view.resources())) {
      for (resources::Focus& g : f.refinements(view.resources())) out.push_back(std::move(g));
      out.push_back(std::move(f));
    }
    return out;
  }();
  return set;
}

void BM_FocusOpsString(benchmark::State& state) {
  // The string baseline for one SHG-expansion step per focus: dedup-key
  // hash (canonical name materialization + string hash), equality against
  // a neighbor, and the one-edge refinement list (vector<Focus> copies).
  const auto& view = shared_view();
  const auto& set = intern_working_set();
  std::size_t i = 0;
  for (auto _ : state) {
    const resources::Focus& f = set[i];
    i = (i + 1) % set.size();
    benchmark::DoNotOptimize(std::hash<std::string>{}(f.name()));
    benchmark::DoNotOptimize(f == set[i]);
    benchmark::DoNotOptimize(f.refinements(view.resources()));
  }
  state.counters["foci"] = static_cast<double>(set.size());
}
BENCHMARK(BM_FocusOpsString);

void BM_FocusOpsInterned(benchmark::State& state) {
  // The same step on FocusIds: integer hash, integer compare, memoized
  // refinement list (stable reference out of the shared table).
  auto& table = shared_view().foci();
  const auto& set = intern_working_set();
  std::vector<resources::FocusId> ids;
  ids.reserve(set.size());
  for (const resources::Focus& f : set) ids.push_back(table.intern(f));
  std::size_t i = 0;
  for (auto _ : state) {
    const resources::FocusId f = ids[i];
    i = (i + 1) % ids.size();
    benchmark::DoNotOptimize(
        std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(f)));
    benchmark::DoNotOptimize(f == ids[i]);
    benchmark::DoNotOptimize(table.refinements(f));
  }
  state.counters["foci"] = static_cast<double>(set.size());
}
BENCHMARK(BM_FocusOpsInterned);

void BM_ShgInsertAndDedup(benchmark::State& state) {
  const auto& view = shared_view();
  const pc::HypothesisSet hyps = pc::HypothesisSet::standard();
  const auto whole = resources::Focus::whole_program(view.resources());
  const auto children = whole.refinements(view.resources());
  for (auto _ : state) {
    pc::SearchHistoryGraph shg(hyps);
    for (int hyp = 0; hyp < 3; ++hyp) {
      int parent = shg.add_node(hyp, whole, shg.root(), 0.0);
      for (const auto& child : children) shg.add_node(hyp, child, parent, 1.0);
      // Second pass: every add is a dedup hit.
      for (const auto& child : children) shg.add_node(hyp, child, parent, 2.0);
    }
    benchmark::DoNotOptimize(shg.size());
  }
}
BENCHMARK(BM_ShgInsertAndDedup);

void BM_DirectiveParseSerialize(benchmark::State& state) {
  pc::DirectiveSet set;
  for (int i = 0; i < 200; ++i)
    set.priorities.push_back({"ExcessiveSyncWaitingTime",
                              "</Code/mod" + std::to_string(i) + ".f,/Machine,/Process,/SyncObject>",
                              pc::Priority::High});
  set.prunes.push_back({"*", "/Machine"});
  const std::string text = set.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc::DirectiveSet::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) * state.iterations());
}
BENCHMARK(BM_DirectiveParseSerialize);

/// A synthetic harvested directive set of `n` directives in the shape the
/// generator emits: subtree prunes (some wildcard-hypothesis), false-pair
/// prunes, priorities, and per-hypothesis thresholds.
pc::DirectiveSet synthetic_directives(int n) {
  pc::DirectiveSet set;
  for (int i = 0; i < n; ++i) {
    const std::string hyp = "Hypothesis" + std::to_string(i % 16);
    const std::string module = "/Code/mod" + std::to_string(i) + ".f";
    const std::string focus = "<" + module + ",/Machine,/Process,/SyncObject>";
    switch (i % 4) {
      case 0:
        set.prunes.push_back({i % 8 == 0 ? std::string(pc::kAnyHypothesis) : hyp, module});
        break;
      case 1: set.pair_prunes.push_back({hyp, focus}); break;
      case 2:
        set.priorities.push_back(
            {hyp, focus, i % 8 == 0 ? pc::Priority::High : pc::Priority::Low});
        break;
      case 3: set.thresholds.push_back({hyp, 0.05 + 0.001 * (i % 100)}); break;
    }
  }
  return set;
}

struct DirectiveLookupQuery {
  std::string hypothesis;
  resources::Focus focus;
  std::string focus_name;
};

/// 64 queries mixing prune/priority hits and misses against
/// synthetic_directives(n).
std::vector<DirectiveLookupQuery> synthetic_lookup_queries(int n) {
  const auto& view = shared_view();
  const auto whole = resources::Focus::whole_program(view.resources());
  std::vector<DirectiveLookupQuery> out;
  for (int i = 0; i < 64; ++i) {
    // Even queries land inside the directive module range (hits), odd ones
    // name modules past it (misses — the consultant's common case).
    const int m = i % 2 == 0 ? (i * 7) % std::max(n, 1) : n + i;
    auto focus = whole.with_part(0, "/Code/mod" + std::to_string(m) + ".f/solve");
    std::string name = focus.name();
    out.push_back({"Hypothesis" + std::to_string(i % 16), std::move(focus), std::move(name)});
  }
  return out;
}

void BM_DirectiveLookupScan(benchmark::State& state) {
  // The retained oracle: per-candidate linear scans over the directives.
  const int n = static_cast<int>(state.range(0));
  const pc::DirectiveSet set = synthetic_directives(n);
  const auto queries = synthetic_lookup_queries(n);
  std::size_t qi = 0;
  for (auto _ : state) {
    const DirectiveLookupQuery& q = queries[qi];
    qi = (qi + 1) % queries.size();
    benchmark::DoNotOptimize(set.prune_match(q.hypothesis, q.focus));
    benchmark::DoNotOptimize(set.priority_of(q.hypothesis, q.focus_name));
    benchmark::DoNotOptimize(set.threshold_for(q.hypothesis));
  }
  state.counters["directives"] = static_cast<double>(n);
}
BENCHMARK(BM_DirectiveLookupScan)->Arg(128)->Arg(1024)->Arg(4096);

void BM_DirectiveLookupIndexed(benchmark::State& state) {
  // Same queries through the DirectiveIndex, built once outside the loop
  // exactly as the consultant builds it after apply_mappings().
  const int n = static_cast<int>(state.range(0));
  const pc::DirectiveSet set = synthetic_directives(n);
  const pc::DirectiveIndex index(set);
  const auto queries = synthetic_lookup_queries(n);
  std::size_t qi = 0;
  for (auto _ : state) {
    const DirectiveLookupQuery& q = queries[qi];
    qi = (qi + 1) % queries.size();
    benchmark::DoNotOptimize(index.prune_match(q.hypothesis, q.focus));
    benchmark::DoNotOptimize(index.priority_of(q.hypothesis, q.focus_name));
    benchmark::DoNotOptimize(index.threshold_for(q.hypothesis));
  }
  state.counters["directives"] = static_cast<double>(n);
}
BENCHMARK(BM_DirectiveLookupIndexed)->Arg(128)->Arg(1024)->Arg(4096);

void BM_FullDiagnosis(benchmark::State& state) {
  const auto& view = shared_view();
  for (auto _ : state) {
    pc::PerformanceConsultant consultant(view, pc::PcConfig{});
    benchmark::DoNotOptimize(consultant.run());
  }
}
BENCHMARK(BM_FullDiagnosis);

void BM_FullDiagnosisTraced(benchmark::State& state) {
  // Same search with a live event sink; the delta against BM_FullDiagnosis
  // is the all-in cost of event recording.
  const auto& view = shared_view();
  for (auto _ : state) {
    telemetry::VectorSink sink;
    pc::PcConfig config;
    config.trace_sink = &sink;
    pc::PerformanceConsultant consultant(view, config);
    benchmark::DoNotOptimize(consultant.run());
    state.counters["events"] = static_cast<double>(sink.size());
  }
}
BENCHMARK(BM_FullDiagnosisTraced);

void BM_FullDiagnosisScanEval(benchmark::State& state) {
  // Same search with the reference per-instance scan engine.
  const auto& view = shared_view();
  pc::PcConfig config;
  config.batched_eval = false;
  for (auto _ : state) {
    pc::PerformanceConsultant consultant(view, config);
    benchmark::DoNotOptimize(consultant.run());
  }
}
BENCHMARK(BM_FullDiagnosisScanEval);

void BM_FullDiagnosisStringFoci(benchmark::State& state) {
  // Same search on the retained string-based focus path (the oracle mode
  // the interned search is property-tested against).
  const auto& view = shared_view();
  pc::PcConfig config;
  config.interned_foci = false;
  for (auto _ : state) {
    pc::PerformanceConsultant consultant(view, config);
    benchmark::DoNotOptimize(consultant.run());
  }
}
BENCHMARK(BM_FullDiagnosisStringFoci);

void BM_FullDiagnosisSpeculative(benchmark::State& state) {
  // Same search with the speculative parallel evaluator (arg = requested
  // search threads; workers = arg - 1). Conclusions are bit-identical to
  // BM_FullDiagnosis; the delta is pure evaluation offload.
  const auto& view = shared_view();
  pc::PcConfig config;
  config.search_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pc::PerformanceConsultant consultant(view, config);
    benchmark::DoNotOptimize(consultant.run());
  }
}
BENCHMARK(BM_FullDiagnosisSpeculative)->Arg(2)->Arg(4);

void BM_WildcardFarmSimulation(benchmark::State& state) {
  apps::AppParams p;
  p.target_duration = 200.0;
  const simmpi::SimProgram program = apps::build_taskfarm(p);
  simmpi::Simulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(program));
  }
}
BENCHMARK(BM_WildcardFarmSimulation);

void BM_WorkloadBuildFromJson(benchmark::State& state) {
  const util::Json spec = util::Json::parse(R"({
    "name": "bench", "ranks": 8, "iterations": 100,
    "body": [
      {"op": "compute", "seconds": 0.3, "function": "f", "module": "m.c"},
      {"op": "exchange", "pattern": "butterfly", "bytes": 100000},
      {"op": "allreduce", "bytes": 8}
    ]})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::build_workload(spec));
  }
}
BENCHMARK(BM_WorkloadBuildFromJson);

void BM_PostmortemDiagnosis(benchmark::State& state) {
  const auto& view = shared_view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::postmortem_diagnose(view));
  }
}
BENCHMARK(BM_PostmortemDiagnosis);

void BM_DirectiveGeneration(benchmark::State& state) {
  const auto& view = shared_view();
  pc::PerformanceConsultant consultant(view, pc::PcConfig{});
  const pc::DiagnosisResult result = consultant.run();
  const history::ExperimentRecord record =
      history::make_record("poisson", "C", view, result, 0.2);
  history::DirectiveGenerator generator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.from_record(record));
  }
}
BENCHMARK(BM_DirectiveGeneration);

// ------------------------------------------------ BENCH_metrics.json

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// ns per call of `fn`, measured over enough repetitions to fill `budget`
/// seconds (~50 ms by default; --quick shrinks it).
template <typename Fn>
double time_ns_per_call(Fn&& fn, double budget = 0.05) {
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsed = seconds_since(start);
    if (elapsed >= budget || reps >= (1u << 24)) return elapsed * 1e9 / static_cast<double>(reps);
    reps *= 4;
  }
}

/// Like time_ns_per_call, but also records the *distribution*: the budget
/// is split into kChunks timed chunks and each chunk's per-call seconds is
/// recorded as one timer lap under `timer`, so `reg` ends up with a
/// histogram of that name and p50/p99 per-call latencies fall out of it.
/// Returns the overall mean ns per call, like time_ns_per_call.
template <typename Fn>
double time_ns_per_call_sampled(telemetry::Registry& reg, std::string_view timer,
                                Fn&& fn, double budget = 0.05) {
  constexpr int kChunks = 32;
  const double chunk_budget = budget / kChunks;
  // Calibrate how many calls fill one chunk.
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsed = seconds_since(start);
    if (elapsed >= chunk_budget || reps >= (1u << 20)) break;
    reps *= 4;
  }
  double total = 0.0;
  std::size_t calls = 0;
  for (int c = 0; c < kChunks; ++c) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsed = seconds_since(start);
    reg.add_seconds(timer, elapsed / static_cast<double>(reps));
    total += elapsed;
    calls += reps;
  }
  return total * 1e9 / static_cast<double>(calls);
}

/// The table1_directives workload, in-process: one version-C session, a
/// base diagnosis, directive generation, and the five directed re-runs.
double table1_end_to_end_seconds() {
  const auto start = Clock::now();
  apps::AppParams p;
  p.target_duration = 3000.0;
  p.node_base = 9;
  core::DiagnosisSession session("poisson_c", p);
  const pc::DiagnosisResult base = session.diagnose();
  const auto record = session.make_record(base, "C");
  std::vector<history::GeneratorOptions> variants(5);
  variants[0].priorities = false;
  variants[0].false_pair_prunes = true;
  variants[1].priorities = false;
  variants[1].historic_prunes = false;
  variants[2].priorities = false;
  variants[2].general_prunes = false;
  variants[2].false_pair_prunes = true;
  variants[3].general_prunes = false;
  variants[3].historic_prunes = false;
  // variants[4]: generator defaults (priorities plus all prunes).
  for (const auto& options : variants) {
    const auto directives = history::DirectiveGenerator(options).from_record(record);
    benchmark::DoNotOptimize(session.diagnose(directives));
  }
  return seconds_since(start);
}

void write_bench_metrics(bool quick) {
  const double budget = quick ? 0.005 : 0.05;
  const auto& view = shared_view();
  const auto& filter =
      view.compiled(resources::Focus::whole_program(view.resources()));
  const double duration = view.trace().duration;
  const auto metric = metrics::MetricKind::SyncWaitTime;

  // Per-section latency distributions land here and the whole registry is
  // appended to perf-log/micro_core.jsonl at the end, so `histpc
  // perf-diff` can compare this run against earlier ones.
  telemetry::Registry reg;

  const double indexed_ns = time_ns_per_call_sampled(
      reg, "bench.metric_query",
      [&] { benchmark::DoNotOptimize(view.query(metric, filter, 0.0, duration)); }, budget);
  const double scan_ns = time_ns_per_call(
      [&] { benchmark::DoNotOptimize(view.query_scan(metric, filter, 0.0, duration)); },
      budget);
  const double table1_s = table1_end_to_end_seconds();
  reg.add_seconds("bench.table1_end_to_end", table1_s);

  util::Json out = util::Json::object();
  util::Json query = util::Json::object();
  query["indexed_ns_per_query"] = indexed_ns;
  query["scan_ns_per_query"] = scan_ns;
  query["speedup_vs_scan"] = scan_ns > 0 ? scan_ns / indexed_ns : 0.0;
  query["queries_per_second"] = indexed_ns > 0 ? 1e9 / indexed_ns : 0.0;
  {
    const telemetry::Histogram* h = reg.histogram("bench.metric_query");
    query["p50_ns_per_query"] = h ? h->quantile(0.5) * 1e9 : 0.0;
    query["p99_ns_per_query"] = h ? h->quantile(0.99) * 1e9 : 0.0;
  }
  out["metric_query"] = std::move(query);
  util::Json table1 = util::Json::object();
  table1["end_to_end_seconds"] = table1_s;
  out["table1_directives"] = std::move(table1);

  // Focus interning: one SHG-expansion step (dedup hash + equality + the
  // one-edge refinement list) per focus, strings vs interned ids.
  double intern_string_ns = 0.0, intern_id_ns = 0.0;
  {
    const auto& set = intern_working_set();
    auto& table = view.foci();
    std::vector<resources::FocusId> ids;
    ids.reserve(set.size());
    for (const resources::Focus& f : set) ids.push_back(table.intern(f));
    std::size_t si = 0, ii = 0;
    intern_string_ns = time_ns_per_call(
        [&] {
          const resources::Focus& f = set[si];
          si = (si + 1) % set.size();
          benchmark::DoNotOptimize(std::hash<std::string>{}(f.name()));
          benchmark::DoNotOptimize(f == set[si]);
          benchmark::DoNotOptimize(f.refinements(view.resources()));
        },
        budget);
    intern_id_ns = time_ns_per_call(
        [&] {
          const resources::FocusId f = ids[ii];
          ii = (ii + 1) % ids.size();
          benchmark::DoNotOptimize(
              std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(f)));
          benchmark::DoNotOptimize(f == ids[ii]);
          benchmark::DoNotOptimize(table.refinements(f));
        },
        budget);
    util::Json fi = util::Json::object();
    fi["foci"] = static_cast<double>(set.size());
    fi["string_ns_per_op"] = intern_string_ns;
    fi["interned_ns_per_op"] = intern_id_ns;
    fi["speedup_vs_string"] = intern_id_ns > 0 ? intern_string_ns / intern_id_ns : 0.0;
    out["focus_intern"] = std::move(fi);
  }

  // Parallel variant runner: the six table-1 configurations over the
  // shared view, sequential vs a four-worker pool. On a single-core host
  // the parallel bundle cannot beat the sequential one; the recorded
  // hardware_concurrency makes the measurement interpretable either way.
  double variants_seq_s = 0.0, variants_par_s = 0.0;
  int variants_threads = 0;
  {
    pc::PerformanceConsultant consultant(view, pc::PcConfig{});
    const pc::DiagnosisResult base = consultant.run();
    const history::ExperimentRecord record =
        history::make_record("poisson", "C", view, base, 0.2);
    const auto variants = core::table1_variants(record);
    const int repeats = quick ? 1 : 5;
    variants_seq_s = variants_par_s = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r)
      variants_seq_s =
          std::min(variants_seq_s, core::run_variants(view, variants, 1).wall_seconds);
    for (int r = 0; r < repeats; ++r) {
      const core::VariantRunReport rep = core::run_variants(view, variants, 4);
      variants_par_s = std::min(variants_par_s, rep.wall_seconds);
      variants_threads = rep.threads;
    }
    util::Json pv = util::Json::object();
    pv["variants"] = static_cast<double>(variants.size());
    pv["threads"] = static_cast<double>(variants_threads);
    pv["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    pv["sequential_seconds"] = variants_seq_s;
    pv["parallel_seconds"] = variants_par_s;
    pv["speedup_vs_sequential"] =
        variants_par_s > 0 ? variants_seq_s / variants_par_s : 0.0;
    out["parallel_variants"] = std::move(pv);
  }

  // Speculative parallel search: the full consultant over a table1-scale
  // poisson-C trace (long run, deep code hierarchy — the evaluation-bound
  // regime speculation targets), serial oracle vs the speculative
  // evaluator on four threads (three workers). The conclusion stream is
  // bit-identical by construction (tested in speculation_test), so the
  // only deltas are wall time and the speculation bookkeeping recorded
  // alongside. On a single-core host the offload cannot win;
  // hardware_concurrency is recorded so the validator conditions the
  // no-slower assertion on it.
  double spec_serial_s = 0.0, spec_parallel_s = 0.0, spec_hit_rate = 0.0;
  {
    apps::AppParams sp;
    sp.target_duration = 3000.0;
    sp.node_base = 9;
    const simmpi::ExecutionTrace strace = apps::run_app("poisson_c", sp);
    const metrics::TraceView sview(strace);
    pc::PcConfig serial_cfg;
    serial_cfg.search_threads = 1;
    pc::PcConfig spec_cfg = serial_cfg;
    spec_cfg.search_threads = 4;
    const int repeats = quick ? 1 : 5;
    spec_serial_s = spec_parallel_s = std::numeric_limits<double>::infinity();
    pc::TelemetrySummary spec_tel;
    for (int r = 0; r < repeats; ++r) {
      const auto start = Clock::now();
      pc::PerformanceConsultant c(sview, serial_cfg);
      benchmark::DoNotOptimize(c.run());
      spec_serial_s = std::min(spec_serial_s, seconds_since(start));
    }
    for (int r = 0; r < repeats; ++r) {
      const auto start = Clock::now();
      pc::PerformanceConsultant c(sview, spec_cfg);
      const pc::DiagnosisResult res = c.run();
      spec_parallel_s = std::min(spec_parallel_s, seconds_since(start));
      spec_tel = res.telemetry;
    }
    reg.add_seconds("bench.spec_search_serial", spec_serial_s);
    reg.add_seconds("bench.spec_search_parallel", spec_parallel_s);
    spec_hit_rate = spec_tel.spec_hit_rate;

    util::Json ss = util::Json::object();
    ss["threads"] = static_cast<double>(spec_cfg.search_threads);
    ss["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    ss["serial_seconds"] = spec_serial_s;
    ss["parallel_seconds"] = spec_parallel_s;
    ss["speedup_vs_serial"] =
        spec_parallel_s > 0 ? spec_serial_s / spec_parallel_s : 0.0;
    ss["spec_launched"] = static_cast<double>(spec_tel.spec_launched);
    ss["spec_hits"] = static_cast<double>(spec_tel.spec_hits);
    ss["spec_discarded"] = static_cast<double>(spec_tel.spec_discarded);
    ss["spec_hit_rate"] = spec_tel.spec_hit_rate;
    ss["spec_wasted_seconds"] = spec_tel.spec_wasted_seconds;
    out["speculative_search"] = std::move(ss);
  }

  // Block-max engine on the large phase-clustered trace: the sync+func
  // constrained query where the interval index degrades to a scalar
  // posting walk. Reports ns/query for all three evaluation tiers, the
  // fraction of interior blocks the summaries skipped, and the SIMD lane
  // width the kernels dispatched to.
  double blockskip_block_ns = 0.0, blockskip_indexed_ns = 0.0, blockskip_ratio = 0.0;
  {
    const auto& bview = blockskip_view();
    const auto& bfilter = blockskip_filter();
    const double bdur = bview.trace().duration;
    const auto bmetric = metrics::MetricKind::SyncWaitTime;

    const auto stats_before = bview.blocks().stats();
    const double probe = bview.query_blocks(bmetric, bfilter, 0.0, bdur);
    const auto stats_after = bview.blocks().stats();
    const double visited =
        static_cast<double>(stats_after.blocks_visited - stats_before.blocks_visited);
    const double skipped =
        static_cast<double>(stats_after.blocks_skipped - stats_before.blocks_skipped);

    const double block_ns = time_ns_per_call_sampled(
        reg, "bench.block_skip",
        [&] { benchmark::DoNotOptimize(bview.query_blocks(bmetric, bfilter, 0.0, bdur)); },
        budget);
    const double bindexed_ns = time_ns_per_call(
        [&] { benchmark::DoNotOptimize(bview.query(bmetric, bfilter, 0.0, bdur)); },
        budget);
    const double bscan_ns = time_ns_per_call(
        [&] { benchmark::DoNotOptimize(bview.query_scan(bmetric, bfilter, 0.0, bdur)); },
        budget);

    const util::CpuFeatures& cpu = util::cpu_features();
    const double lanes = cpu.selected == util::SimdLevel::Avx2
                             ? 4.0
                             : (cpu.selected == util::SimdLevel::Sse42 ? 2.0 : 1.0);

    util::Json bs = util::Json::object();
    bs["intervals"] = static_cast<double>(bview.trace().total_intervals());
    bs["block_size"] = static_cast<double>(bview.blocks().block_size());
    bs["simd_level"] = std::string(util::simd_level_name(cpu.selected));
    bs["simd_lane_width"] = lanes;
    bs["query_value"] = probe;
    bs["block_ns_per_query"] = block_ns;
    bs["indexed_ns_per_query"] = bindexed_ns;
    bs["scan_ns_per_query"] = bscan_ns;
    bs["speedup_vs_indexed"] = block_ns > 0 ? bindexed_ns / block_ns : 0.0;
    bs["speedup_vs_scan"] = block_ns > 0 ? bscan_ns / block_ns : 0.0;
    bs["blocks_skipped_ratio"] = visited > 0 ? skipped / visited : 0.0;
    {
      const telemetry::Histogram* h = reg.histogram("bench.block_skip");
      bs["p50_ns_per_query"] = h ? h->quantile(0.5) * 1e9 : 0.0;
      bs["p99_ns_per_query"] = h ? h->quantile(0.99) * 1e9 : 0.0;
    }
    out["block_skip"] = std::move(bs);
    blockskip_block_ns = block_ns;
    blockskip_indexed_ns = bindexed_ns;
    blockskip_ratio = visited > 0 ? skipped / visited : 0.0;
  }

  // Directive lookup: scan oracle vs DirectiveIndex on a harvested-scale
  // set (the acceptance bar is >=10x at >=1000 directives).
  const int n_directives = 1024;
  const pc::DirectiveSet dir_set = synthetic_directives(n_directives);
  const pc::DirectiveIndex dir_index(dir_set);
  const auto dir_queries = synthetic_lookup_queries(n_directives);
  std::size_t dir_qi = 0;
  auto next_query = [&]() -> const DirectiveLookupQuery& {
    const DirectiveLookupQuery& q = dir_queries[dir_qi];
    dir_qi = (dir_qi + 1) % dir_queries.size();
    return q;
  };
  const double dir_scan_ns = time_ns_per_call([&] {
    const DirectiveLookupQuery& q = next_query();
    benchmark::DoNotOptimize(dir_set.prune_match(q.hypothesis, q.focus));
    benchmark::DoNotOptimize(dir_set.priority_of(q.hypothesis, q.focus_name));
    benchmark::DoNotOptimize(dir_set.threshold_for(q.hypothesis));
  });
  const double dir_indexed_ns = time_ns_per_call([&] {
    const DirectiveLookupQuery& q = next_query();
    benchmark::DoNotOptimize(dir_index.prune_match(q.hypothesis, q.focus));
    benchmark::DoNotOptimize(dir_index.priority_of(q.hypothesis, q.focus_name));
    benchmark::DoNotOptimize(dir_index.threshold_for(q.hypothesis));
  });
  util::Json lookup = util::Json::object();
  lookup["directives"] = static_cast<double>(n_directives);
  lookup["scan_ns_per_lookup"] = dir_scan_ns;
  lookup["indexed_ns_per_lookup"] = dir_indexed_ns;
  lookup["speedup_vs_scan"] = dir_indexed_ns > 0 ? dir_scan_ns / dir_indexed_ns : 0.0;
  out["directive_lookup"] = std::move(lookup);

  // Experiment store at fleet scale: 1000 stored runs. Indexed latest()
  // answers from index-v1.jsonl and loads one record; the pre-index path
  // re-parses every file per query — measured both over binary snapshots
  // and over the legacy JSON layout (the >=10x acceptance bar is against
  // JSON re-parse). "cold" constructs a fresh store per query, paying the
  // index fold each time; the warm number reuses the instance snapshot.
  {
    namespace fs = std::filesystem;
    const std::size_t n_runs = 1000;
    const std::string root = "exp-store-bench";
    fs::remove_all(root);
    history::ExperimentStore bin_store(root + "/bin");
    const std::string json_dir = root + "/json";
    fs::create_directories(json_dir);

    history::ExperimentRecord proto;
    proto.app = "poisson";
    proto.nranks = 16;
    proto.machine_process_one_to_one = true;
    proto.threshold_used = 0.2;
    proto.resources.add_hierarchy("Code");
    for (const char* r : {"/Code/oned.f", "/Code/exchng2.f", "/Code/diff.f"})
      proto.resources.add_resource(r);
    for (int k = 0; k < 12; ++k)
      proto.nodes.push_back({"ExcessiveSyncWaitingTime", "</Code/oned.f,/Machine>",
                             k % 3 ? pc::NodeStatus::False : pc::NodeStatus::True,
                             pc::Priority::Medium, 10.0 + k, 0.05 * (k % 7)});
    proto.bottlenecks.push_back({"CPUbound", "</Code/diff.f>", 40.0, 0.31});
    proto.code_usage = {{"/Code/oned.f", 0.45}, {"/Code/exchng2.f", 0.30}};
    for (std::size_t i = 0; i < n_runs; ++i) {
      history::ExperimentRecord rec = proto;
      rec.version = "C" + std::to_string(i % 10);
      rec.machine = "node" + std::to_string(i % 8);
      rec.scenario = "scale-" + std::to_string(16 << (i % 3));
      rec.duration = 100.0 + static_cast<double>(i % 17);
      rec.pairs_tested = 100 + i;
      rec.run_id = bin_store.save(rec);
      util::write_file(json_dir + "/" + rec.run_id + ".json", rec.to_json().dump(2));
    }

    const history::StoreQuery query{"poisson", "C3", "", ""};
    const double indexed_ns = time_ns_per_call_sampled(
        reg, "bench.store_query",
        [&] { benchmark::DoNotOptimize(bin_store.latest(query)); }, budget);
    const double indexed_cold_ns = time_ns_per_call(
        [&] {
          history::ExperimentStore cold(root + "/bin");
          benchmark::DoNotOptimize(cold.latest(query));
        },
        budget);
    const double scan_binary_ns = time_ns_per_call(
        [&] { benchmark::DoNotOptimize(bin_store.scan_latest("poisson", "C3")); }, budget);
    const history::ExperimentStore json_store(json_dir);
    const double json_scan_ns = time_ns_per_call(
        [&] { benchmark::DoNotOptimize(json_store.scan_latest("poisson", "C3")); }, budget);

    util::Json sq = util::Json::object();
    sq["runs"] = static_cast<double>(n_runs);
    sq["indexed_ns_per_query"] = indexed_ns;
    sq["indexed_cold_ns_per_query"] = indexed_cold_ns;
    sq["scan_binary_ns_per_query"] = scan_binary_ns;
    sq["json_scan_ns_per_query"] = json_scan_ns;
    sq["speedup_vs_json_scan"] = indexed_ns > 0 ? json_scan_ns / indexed_ns : 0.0;
    sq["speedup_vs_binary_scan"] = indexed_ns > 0 ? scan_binary_ns / indexed_ns : 0.0;
    {
      const telemetry::Histogram* h = reg.histogram("bench.store_query");
      sq["p50_ns_per_query"] = h ? h->quantile(0.5) * 1e9 : 0.0;
      sq["p99_ns_per_query"] = h ? h->quantile(0.99) * 1e9 : 0.0;
    }
    out["store_query"] = std::move(sq);

    // N-run directive generation over the same synthetic history: pooled
    // from_records, the pairwise combine fold, and weighted aggregation,
    // all over the newest 16 runs.
    {
      std::vector<history::ExperimentRecord> records;
      for (std::size_t i = 0; i < 16; ++i) {
        history::ExperimentRecord rec = proto;
        rec.version = "C3";
        rec.run_id = "poisson_C3_" + std::to_string(i + 1);
        // Vary conclusions so the sets genuinely disagree across runs.
        for (std::size_t k = 0; k < rec.nodes.size(); ++k)
          rec.nodes[k].status =
              (k + i) % 3 ? pc::NodeStatus::False : pc::NodeStatus::True;
        records.push_back(std::move(rec));
      }
      const history::DirectiveGenerator generator;
      std::vector<pc::DirectiveSet> sets;
      for (const auto& rec : records) sets.push_back(generator.from_record(rec));

      const double pooled_ns = time_ns_per_call(
          [&] { benchmark::DoNotOptimize(generator.from_records(records)); }, budget);
      const double fold_ns = time_ns_per_call(
          [&] {
            pc::DirectiveSet acc = sets.front();
            for (std::size_t i = 1; i < sets.size(); ++i)
              acc = history::combine(acc, sets[i], history::CombineMode::Intersection);
            benchmark::DoNotOptimize(acc);
          },
          budget);
      const double nrun_ns = time_ns_per_call(
          [&] {
            benchmark::DoNotOptimize(
                history::combine_runs(sets, history::CombineMode::Intersection));
          },
          budget);
      const double weighted_ns = time_ns_per_call(
          [&] { benchmark::DoNotOptimize(generator.from_records_weighted(records)); },
          budget);

      util::Json dg = util::Json::object();
      dg["runs"] = static_cast<double>(records.size());
      dg["pooled_ns_per_gen"] = pooled_ns;
      dg["pairwise_fold_ns_per_gen"] = fold_ns;
      dg["nrun_combine_ns_per_gen"] = nrun_ns;
      dg["weighted_ns_per_gen"] = weighted_ns;
      dg["speedup_vs_pairwise_fold"] = nrun_ns > 0 ? fold_ns / nrun_ns : 0.0;
      out["directive_gen_nruns"] = std::move(dg);
    }
    fs::remove_all(root);
  }

  // Trace snapshots: cold simulate vs binary encode/decode vs warm cache
  // load, plus sizes vs the JSON oracle. The cache directory lives in the
  // working directory so it persists across processes — CI runs micro_core
  // twice and asserts the second run's cache_hits (counted from the one
  // initial load, before the timing loops) went up.
  double snapshot_simulate_ns = 0.0, snapshot_load_ns = 0.0;
  {
    apps::AppParams p;
    p.target_duration = 3000.0;
    p.node_base = 9;
    const simmpi::SimProgram program = apps::build_app("poisson_c", p);
    const simmpi::NetworkModel net = apps::network_for("poisson_c");

    const auto sim_start = Clock::now();
    const simmpi::ExecutionTrace trace = simmpi::Simulator(net).run(program);
    const double cold_simulate_ns = seconds_since(sim_start) * 1e9;

    telemetry::Registry cache_reg;
    simmpi::TraceCache cache({"trace-snapshot-cache", 64ull << 20}, &cache_reg);
    const simmpi::TraceKey key = simmpi::trace_content_key(program, net);
    {
      simmpi::TraceColumns cols;
      if (!cache.load(key, &cols)) cache.store(key, trace);
    }
    const double cache_hits = static_cast<double>(cache_reg.counter("trace_cache.hit"));
    const double cache_misses = static_cast<double>(cache_reg.counter("trace_cache.miss"));

    const std::string bytes = simmpi::encode_trace_snapshot(trace);
    const double encode_ns = time_ns_per_call(
        [&] { benchmark::DoNotOptimize(simmpi::encode_trace_snapshot(trace)); }, budget);
    const double warm_load_ns = time_ns_per_call(
        [&] {
          simmpi::TraceColumns cols;
          benchmark::DoNotOptimize(cache.load(key, &cols));
        },
        budget);
    const std::size_t json_bytes = simmpi::trace_to_json(trace).dump().size();

    util::Json snap = util::Json::object();
    snap["intervals"] = static_cast<double>(trace.total_intervals());
    snap["cold_simulate_ns"] = cold_simulate_ns;
    snap["encode_ns"] = encode_ns;
    snap["warm_load_ns"] = warm_load_ns;
    snap["speedup_vs_simulate"] = warm_load_ns > 0 ? cold_simulate_ns / warm_load_ns : 0.0;
    snap["binary_bytes"] = static_cast<double>(bytes.size());
    snap["json_bytes"] = static_cast<double>(json_bytes);
    snap["json_bytes_vs_binary"] =
        bytes.size() > 0 ? static_cast<double>(json_bytes) / static_cast<double>(bytes.size())
                         : 0.0;
    snap["cache_hits"] = cache_hits;
    snap["cache_misses"] = cache_misses;
    out["trace_snapshot"] = std::move(snap);
    snapshot_simulate_ns = cold_simulate_ns;
    snapshot_load_ns = warm_load_ns;
  }

  // Telemetry volume of one traced diagnosis over the shared view.
  telemetry::VectorSink sink;
  pc::PcConfig traced_config;
  traced_config.trace_sink = &sink;
  pc::PerformanceConsultant consultant(view, traced_config);
  const pc::DiagnosisResult traced = consultant.run();
  util::Json telemetry_section = util::Json::object();
  telemetry_section["events_recorded"] = static_cast<double>(sink.size());
  telemetry_section["summary"] = traced.telemetry.to_json();
  out["telemetry"] = std::move(telemetry_section);

  // Merge (don't overwrite): table1_directives owns its own section of the
  // same file.
  std::vector<std::pair<std::string, util::Json>> sections;
  for (auto& [name, value] : out.as_object()) sections.emplace_back(name, std::move(value));
  bench::write_bench_sections(std::move(sections));

  // Append this run's registry (section-latency histograms and the table1
  // macro timer) as a PerfRecord, making the bench's own performance a
  // first-class history: CI diffs it against the committed baseline and a
  // developer can run `histpc perf-diff --log perf-log/micro_core.jsonl`.
  {
    telemetry::PerfRecord rec;
    rec.app = "micro_core";
    rec.version = quick ? "quick" : "full";
    rec.kind = "bench";
    rec.machine = telemetry::machine_name();
    rec.build = telemetry::build_id();
    rec.config["quick"] = quick ? "1" : "0";
    rec.registry = reg;
    telemetry::PerfLog log("perf-log/micro_core.jsonl");
    log.append(rec);
    std::printf("appended perf record to %s\n", log.path().c_str());
  }
  std::printf("wrote %s: metric query %.0f ns indexed / %.0f ns scan (%.1fx), "
              "block skip %.0f ns block-max / %.0f ns indexed (%.1fx, %.0f%% skipped), "
              "directive lookup %.0f ns indexed / %.0f ns scan (%.1fx @ %d directives), "
              "focus ops %.0f ns string / %.0f ns interned (%.1fx), "
              "variants %.3f s sequential / %.3f s on %d workers, "
              "speculative search %.3f s serial / %.3f s on 4 threads "
              "(%.0f%% hit rate), "
              "trace snapshot %.2f ms simulate / %.2f ms warm load (%.0fx), "
              "table1 workload %.3f s\n",
              bench::kBenchMetricsPath, indexed_ns, scan_ns,
              scan_ns > 0 ? scan_ns / indexed_ns : 0.0, blockskip_block_ns,
              blockskip_indexed_ns,
              blockskip_block_ns > 0 ? blockskip_indexed_ns / blockskip_block_ns : 0.0,
              blockskip_ratio * 100.0, dir_indexed_ns, dir_scan_ns,
              dir_indexed_ns > 0 ? dir_scan_ns / dir_indexed_ns : 0.0, n_directives,
              intern_string_ns, intern_id_ns,
              intern_id_ns > 0 ? intern_string_ns / intern_id_ns : 0.0, variants_seq_s,
              variants_par_s, variants_threads, spec_serial_s, spec_parallel_s,
              spec_hit_rate * 100.0, snapshot_simulate_ns / 1e6,
              snapshot_load_ns / 1e6,
              snapshot_load_ns > 0 ? snapshot_simulate_ns / snapshot_load_ns : 0.0,
              table1_s);
}

}  // namespace

int main(int argc, char** argv) {
  // --quick (ours, stripped before google-benchmark sees the args): CI
  // smoke mode — run only the cheap focus-op benchmarks and shrink the
  // JSON measurement budgets, but still emit every BENCH_metrics.json
  // section so the smoke job can validate the full schema.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char quick_filter[] = "--benchmark_filter=BM_FocusOps.*";
  if (quick) args.push_back(quick_filter);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_metrics(quick);
  return 0;
}
