// Figure 2 — A Performance Consultant search in progress, rendered as the
// Search History Graph list box: TopLevelHypothesis refined into the three
// hypotheses; ExcessiveSyncWaitingTime and ExcessiveIOBlockingTime test
// false, CPUbound tests true and is refined; the modules bubba.C,
// channel.C, anneal.C, outchan.C and graph.C test false while partition.C
// and the machine node goat test true and are refined.
#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("Figure 2: a Performance Consultant search in progress",
                      "Karavanic & Miller SC'99, Figure 2 (Section 2)");

  apps::AppParams params;
  params.target_duration = 1200.0;
  core::DiagnosisSession session("bubba", params);
  const pc::DiagnosisResult result = session.diagnose();

  std::printf("%s\n", session.last_shg().c_str());
  std::printf("search: %zu pairs tested, %zu true\n\n", result.stats.pairs_tested,
              result.stats.bottlenecks);
  std::printf(
      "expected shape (paper Figure 2): ExcessiveSyncWaitingTime and\n"
      "ExcessiveIOBlockingTime false; CPUbound true and refined; bubba.C,\n"
      "channel.C, anneal.C, outchan.C, graph.C false; goat and partition.C\n"
      "true and refined further.\n");
  return 0;
}
