// Table 4 — Similarity of extracted priorities across code versions.
//
// Priority directive sets are harvested from base runs of versions A, B
// and C, mapped into a common (version C) resource namespace, and
// compared: how many high/low priority directives are unique to one
// version, shared by two, or common to all three (Section 4.3).
#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("Table 4: similarity of extracted priorities across code versions",
                      "Karavanic & Miller SC'99, Table 4 (Section 4.3)");

  const std::vector<char> versions{'A', 'B', 'C'};
  std::vector<std::string> names;
  std::vector<pc::DirectiveSet> sets;

  // The common namespace everything is mapped into: version C's resources.
  core::DiagnosisSession c_session("poisson_c", bench::params_for_version('C'));

  history::GeneratorOptions opts;
  opts.general_prunes = false;
  opts.historic_prunes = false;  // priorities only, as in the paper's table
  history::DirectiveGenerator generator(opts);

  for (char v : versions) {
    core::DiagnosisSession session(bench::app_for_version(v), bench::params_for_version(v));
    std::printf("base run of version %c...\n", v);
    const pc::DiagnosisResult base = session.diagnose();
    const auto record = session.make_record(base, std::string(1, v));
    pc::DirectiveSet d = generator.from_record(record);
    d.maps = history::suggest_mappings(record.resources, c_session.view().resources());
    d.apply_mappings();
    d.maps.clear();
    names.emplace_back(1, v);
    sets.push_back(std::move(d));
  }
  std::printf("\n");

  const history::PrioritySimilarity sim = history::priority_similarity(sets);

  const std::vector<unsigned> masks{0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111};
  util::TablePrinter table([&] {
    std::vector<std::string> headers{"Priority Setting"};
    for (unsigned m : masks) headers.push_back(history::mask_label(m, names));
    headers.push_back("TOTAL");
    return headers;
  }());

  auto add_row = [&](const std::string& label, const history::MembershipCounts& counts) {
    std::vector<std::string> row{label};
    for (unsigned m : masks) row.push_back(std::to_string(counts.count_for(m)));
    row.push_back(std::to_string(counts.total));
    table.add_row(std::move(row));
  };
  add_row("High", sim.high);
  add_row("Low", sim.low);
  add_row("Both", sim.both);

  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());

  auto pct = [](std::size_t part, std::size_t total) {
    return total ? util::fmt_percent(static_cast<double>(part) / total, 0) : "-";
  };
  const std::size_t high_pairs = sim.high.count_for(0b011) + sim.high.count_for(0b101) +
                                 sim.high.count_for(0b110);
  const std::size_t high_unique = sim.high.count_for(0b001) + sim.high.count_for(0b010) +
                                  sim.high.count_for(0b100);
  const std::size_t both_pairs = sim.both.count_for(0b011) + sim.both.count_for(0b101) +
                                 sim.both.count_for(0b110);
  const std::size_t both_unique = sim.both.count_for(0b001) + sim.both.count_for(0b010) +
                                  sim.both.count_for(0b100);
  std::printf("high priorities: %s common to all three, %s unique to one, %s in two\n",
              pct(sim.high.count_for(0b111), sim.high.total).c_str(),
              pct(high_unique, sim.high.total).c_str(),
              pct(high_pairs, sim.high.total).c_str());
  std::printf("all priorities:  %s common to all three, %s unique to one, %s in two\n\n",
              pct(sim.both.count_for(0b111), sim.both.total).c_str(),
              pct(both_unique, sim.both.total).c_str(),
              pct(both_pairs, sim.both.total).c_str());

  std::printf(
      "paper reported (Table 4): of 107 high directives, 16 unique to A and\n"
      "46 common to A, B and C; overall 36%% of priorities common to all\n"
      "three versions, 41%% unique to one, 23%% in two; for high priorities\n"
      "43%% / 30%% / 27%%. Expected shape: a large common core of directives\n"
      "across code versions — the reason cross-version direction works.\n");
  return 0;
}
