// Figure 1 — Representing program "Tester": the Code, Machine and Process
// resource hierarchies, and the focus notation that selects function
// verifyA of process Tester:2 running on any CPU.
#include "bench_common.h"

#include "metrics/trace_view.h"

using namespace histpc;

int main() {
  bench::print_header("Figure 1: resource hierarchies of program Tester",
                      "Karavanic & Miller SC'99, Figure 1 (Section 2)");

  apps::AppParams params;
  params.target_duration = 60.0;
  const simmpi::ExecutionTrace trace = apps::run_app("tester", params);
  const metrics::TraceView view(trace);
  const auto& db = view.resources();

  for (std::string_view name :
       {resources::kCodeHierarchy, resources::kMachineHierarchy, resources::kProcessHierarchy}) {
    std::printf("%s\n", db.hierarchy(name).render().c_str());
  }

  // The shaded selection of the figure: function verifyA of process
  // Tester:2 running on any CPU.
  const auto focus = resources::Focus::parse(
      "</Code/testutil.C/verifyA,/Machine,/Process/Tester:2>", db);
  std::printf("resource name of function verifyA: /Code/testutil.C/verifyA\n");
  std::printf("focus \"verifyA of process Tester:2 on any CPU\":\n  %s\n\n",
              focus->name().c_str());

  // And the measurement that focus constrains (CPU time there).
  const double frac =
      view.fraction(metrics::MetricKind::CpuTime, *focus, 0.0, trace.duration);
  std::printf("CPU time under that focus: %s of Tester:2's execution\n",
              util::fmt_percent(frac).c_str());
  return 0;
}
