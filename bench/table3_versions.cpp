// Table 3 — Time (in seconds) to find all bottlenecks with search
// directives from different application versions.
//
// Four versions of the Poisson decomposition (Section 4.3):
//   A: 1-D blocking, B: 1-D nonblocking, C: 2-D, D: C's code on 8 nodes.
// Each version is first diagnosed cold ("None" column); then re-diagnosed
// with directives harvested from each version's base run, with machine,
// process, and code resources mapped between versions (Section 3.2 /
// Figure 3). Every cell reports the median time over repeated executions
// (the paper: "median values for several runs... standard deviations range
// from 3 to 17 seconds") to locate the target version's significant
// bottleneck set.
#include <algorithm>

#include "bench_common.h"

using namespace histpc;

namespace {

constexpr int kRepeats = 3;
constexpr double kJitter = 0.02;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double stddev(const std::vector<double>& v) {
  double mean = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  return std::sqrt(var / static_cast<double>(v.size()));
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3: time (s) to find all bottlenecks, directives from other versions",
      "Karavanic & Miller SC'99, Table 3 (Section 4.3)");

  const std::vector<char> versions{'A', 'B', 'C', 'D'};

  struct VersionData {
    std::unique_ptr<core::DiagnosisSession> session;
    pc::DiagnosisResult base;
    history::ExperimentRecord record;
  };
  std::vector<VersionData> data;
  for (char v : versions) {
    VersionData d;
    d.session = std::make_unique<core::DiagnosisSession>(bench::app_for_version(v),
                                                         bench::params_for_version(v));
    std::printf("base run of version %c (%d ranks)...\n", v,
                d.session->trace().num_ranks());
    d.base = d.session->diagnose();
    d.record = d.session->make_record(d.base, std::string(1, v));
    data.push_back(std::move(d));
  }
  std::printf("\n");

  history::DirectiveGenerator generator;  // priorities + general/historic prunes
  util::TablePrinter table({"Version", "None", "from A", "from B", "from C", "from D"});

  for (std::size_t target = 0; target < versions.size(); ++target) {
    auto& target_data = data[target];
    std::vector<std::string> row{std::string(1, versions[target])};

    // Reference set for this version, excluding what prunes drop by design.
    const pc::DirectiveSet probe_prunes = [&] {
      history::GeneratorOptions opts;
      opts.priorities = false;
      return history::DirectiveGenerator(opts).from_record(target_data.record);
    }();
    const auto reference = bench::reference_set(
        target_data.base.bottlenecks, probe_prunes, target_data.session->view().resources());
    const double base_time = target_data.base.time_to_find(reference, 100.0);
    row.push_back(util::fmt_double(base_time, 1));

    std::vector<double> deviations;
    for (std::size_t source = 0; source < versions.size(); ++source) {
      pc::DirectiveSet directives = generator.from_record(data[source].record);
      // Map the source version's resource names onto the target's
      // (machine nodes positionally, code by structural similarity).
      directives.maps = history::suggest_mappings(data[source].record.resources,
                                                  target_data.session->view().resources());
      // Repeated executions with run-to-run compute jitter.
      std::vector<double> times;
      for (int rep = 0; rep < kRepeats; ++rep) {
        apps::AppParams params = bench::params_for_version(versions[target]);
        params.compute_jitter = kJitter;
        params.seed = 1000 * (source + 1) + rep;
        core::DiagnosisSession run(bench::app_for_version(versions[target]), params);
        const pc::DiagnosisResult result = run.diagnose(directives);
        // Marginal pairs can flap across versions; measure the time to
        // cover the (clearly significant) reference set.
        times.push_back(result.time_to_find(reference, 100.0));
      }
      deviations.push_back(stddev(times));
      row.push_back(bench::time_cell(median(times), base_time));
    }
    std::printf("version %c directed-run standard deviations: %.1f..%.1f s\n",
                versions[target], *std::min_element(deviations.begin(), deviations.end()),
                *std::max_element(deviations.begin(), deviations.end()));
    table.add_row(std::move(row));
  }
  std::printf("\n");

  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());
  std::printf(
      "paper reported (Table 3, reduction vs the None column):\n"
      "  A: from A -92%%\n"
      "  B: from A -98%%, from B -97%%\n"
      "  C: from A -82%%, from B -83%%, from C -75%%\n"
      "  D: from A -84%%, from B -76%%, from C -87%%, from D -87%%\n"
      "expected shape: every historical source cuts diagnosis time by a\n"
      "large factor (>=75%% in the paper), and directives from *different*\n"
      "versions are nearly as effective as directives from the same\n"
      "version, because the bottleneck locations persist across revisions.\n");
  return 0;
}
