// Section 4.2 (second study) — threshold sweep for the ocean circulation
// code (PVM on SPARCstations in the paper). Its most useful threshold is
// ~20%, not the 12% of the MPI Poisson code: starting from 30% the
// diagnosis is incomplete, and below 20% the number of instrumented pairs
// jumps (326 -> 373 between 20% and 10% in the paper) with no better
// result — demonstrating the value of application-specific historical
// thresholds.
#include "bench_common.h"

using namespace histpc;

int main() {
  bench::print_header("Ocean code: bottlenecks found with varying threshold values",
                      "Karavanic & Miller SC'99, Section 4.2 (PVM ocean study)");

  apps::AppParams params;
  params.target_duration = 6000.0;

  core::DiagnosisSession truth_session("ocean", params);
  truth_session.config().cost_limit = 1e9;
  truth_session.config().threshold_override = 0.05;
  const pc::DiagnosisResult truth = truth_session.diagnose();
  const auto areas = history::significant_bottlenecks(truth.bottlenecks, 0.21);
  std::printf("significant problem areas (>=21%% of execution): %zu\n\n", areas.size());

  util::TablePrinter table({"Threshold", "Areas Reported", "Bottlenecks Reported",
                            "Pairs Tested", "Efficiency (areas/pair)"});
  double best_eff = -1, best_threshold = 0;
  for (double threshold : {0.30, 0.25, 0.20, 0.15, 0.10}) {
    core::DiagnosisSession session("ocean", params);
    session.config().threshold_override = threshold;
    const pc::DiagnosisResult r = session.diagnose();
    std::size_t found = 0;
    for (const auto& a : areas)
      for (const auto& b : r.bottlenecks)
        if (b.hypothesis == a.hypothesis && b.focus == a.focus) {
          ++found;
          break;
        }
    const double efficiency =
        r.stats.pairs_tested ? static_cast<double>(found) / r.stats.pairs_tested : 0.0;
    if (found >= areas.size() * 97 / 100 && efficiency > best_eff) {
      best_eff = efficiency;
      best_threshold = threshold;
    }
    table.add_row({util::fmt_percent(threshold, 0),
                   std::to_string(found) + "/" + std::to_string(areas.size()),
                   std::to_string(r.stats.bottlenecks), std::to_string(r.stats.pairs_tested),
                   util::fmt_double(efficiency, 3)});
  }
  std::printf("measured (this reproduction):\n%s\n", table.to_string().c_str());
  std::printf("most useful threshold (near-full reporting at best efficiency): %s\n\n",
              util::fmt_percent(best_threshold, 0).c_str());
  std::printf(
      "paper reported: optimal at 20%% (30%% was incomplete; pairs jumped\n"
      "from 326 at 20%% to 373 at 10%% with no improvement). The useful\n"
      "threshold differs from the MPI application's 12%% — the argument for\n"
      "harvesting thresholds from application-specific historical data.\n");
  return 0;
}
