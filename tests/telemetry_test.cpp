// Tests for the search-telemetry subsystem: event serialization (JSONL and
// Chrome trace-event), the counters/gauges/timers registry, and the
// integration contract between the Performance Consultant and its tracer.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/directives.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "telemetry/event.h"
#include "telemetry/registry.h"
#include "telemetry/tracer.h"
#include "util/json.h"
#include "util/strings.h"

namespace histpc::telemetry {
namespace {

using simmpi::FunctionScope;
using simmpi::Recorder;

std::vector<Event> sample_events() {
  std::vector<Event> events;
  double t = 0.0;
  for (EventKind kind : kAllEventKinds) {
    Event e;
    e.kind = kind;
    e.t = t += 1.5;
    e.hypothesis = "CPUbound";
    e.focus = "</Code/work.c,/Machine,/Process,/SyncObject>";
    e.value = 0.31;
    e.threshold = 0.2;
    e.cost = 0.04;
    e.detail = "subtree";
    events.push_back(std::move(e));
  }
  // One with every defaulted field, to exercise omitted-key handling.
  Event minimal;
  minimal.kind = EventKind::CostGate;
  events.push_back(minimal);
  return events;
}

TEST(TelemetryEvent, KindNamesRoundTrip) {
  for (EventKind kind : kAllEventKinds) {
    const char* name = event_kind_name(kind);
    auto back = event_kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(event_kind_from_name("bogus").has_value());
}

TEST(TelemetryEvent, JsonRoundTrip) {
  for (const Event& e : sample_events()) {
    const Event back = Event::from_json(e.to_json());
    EXPECT_EQ(back, e);
  }
}

TEST(TelemetryEvent, JsonlRoundTrip) {
  const std::vector<Event> events = sample_events();
  const std::string text = to_jsonl(events);
  EXPECT_EQ(from_jsonl(text), events);
}

TEST(TelemetryEvent, ChromeTraceIsValidAndRoundTrips) {
  const std::vector<Event> events = sample_events();
  const util::Json trace = to_chrome_trace(events);
  // Re-parse through the in-repo JSON reader: the export must be plain,
  // valid JSON with the trace-event envelope.
  const util::Json reparsed = util::Json::parse(trace.dump());
  ASSERT_TRUE(reparsed.is_object());
  ASSERT_TRUE(reparsed.at("traceEvents").is_array());
  for (const auto& ev : reparsed.at("traceEvents").as_array()) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_TRUE(ev.at("ph").is_string());
  }
  EXPECT_EQ(from_chrome_trace(reparsed), events);
}

TEST(TelemetryEvent, ChromeTraceHasDerivedTracks) {
  // instrument at t=1 then conclude_true at t=4 must become a complete
  // ("X") span, phases a B/E pair, and cost samples a counter track.
  std::vector<Event> events;
  events.push_back({EventKind::PhaseBegin, 0.0, "", "", 0, 0, 0, "search"});
  events.push_back({EventKind::Instrument, 1.0, "CPUbound", "<f>", 0.01, 0.2, 0.01, ""});
  events.push_back({EventKind::ConcludeTrue, 4.0, "CPUbound", "<f>", 0.35, 0.2, 0.01, ""});
  events.push_back({EventKind::PhaseEnd, 5.0, "", "", 0, 0, 0, "search"});
  const util::Json trace = to_chrome_trace(events);
  bool saw_span = false, saw_begin = false, saw_end = false, saw_counter = false;
  for (const auto& ev : trace.at("traceEvents").as_array()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "X") saw_span = true;
    if (ph == "B") saw_begin = true;
    if (ph == "E") saw_end = true;
    if (ph == "C") saw_counter = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_counter);
}

TEST(TelemetryEvent, SaveLoadAutodetectsBothFormats) {
  const std::vector<Event> events = sample_events();
  const std::string dir = ::testing::TempDir();
  for (auto [fmt, name] : {std::pair{TraceFormat::Jsonl, "t.jsonl"},
                           std::pair{TraceFormat::Chrome, "t.chrome.json"}}) {
    const std::string path = dir + "/" + name;
    save_trace_file(path, events, fmt);
    EXPECT_EQ(load_trace_file(path), events) << name;
    std::remove(path.c_str());
  }
}

TEST(TelemetryEvent, TraceFormatNames) {
  EXPECT_EQ(trace_format_from_name("jsonl"), TraceFormat::Jsonl);
  EXPECT_EQ(trace_format_from_name("chrome"), TraceFormat::Chrome);
  EXPECT_FALSE(trace_format_from_name("xml").has_value());
}

// ----------------------------------------------------------------- registry

TEST(TelemetryRegistry, CounterSemantics) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("x"), 0u);
  reg.add("x");
  reg.add("x", 4);
  EXPECT_EQ(reg.counter("x"), 5u);
  EXPECT_EQ(reg.counter("never"), 0u);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(TelemetryRegistry, GaugeSemantics) {
  Registry reg;
  reg.gauge_set("g", 2.0);
  reg.gauge_set("g", 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 1.0);
  reg.gauge_max("peak", 1.0);
  reg.gauge_max("peak", 3.0);
  reg.gauge_max("peak", 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 3.0);
}

TEST(TelemetryRegistry, TimerAndScopedTimer) {
  Registry reg;
  reg.add_seconds("t", 0.25);
  reg.add_seconds("t", 0.5);
  EXPECT_EQ(reg.timer("t").count, 2u);
  EXPECT_DOUBLE_EQ(reg.timer("t").seconds, 0.75);
  {
    ScopedTimer timer(reg, "scoped");
  }
  EXPECT_EQ(reg.timer("scoped").count, 1u);
  EXPECT_GE(reg.timer("scoped").seconds, 0.0);
}

TEST(TelemetryRegistry, TimerTracksPerLapExtrema) {
  Registry reg;
  reg.add_seconds("t", 0.5);
  reg.add_seconds("t", 0.25);
  reg.add_seconds("t", 2.0);
  EXPECT_DOUBLE_EQ(reg.timer("t").min, 0.25);
  EXPECT_DOUBLE_EQ(reg.timer("t").max, 2.0);
  // Every lap also lands in the histogram of the same name.
  const Histogram* h = reg.histogram("t");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->min(), 0.25);
  EXPECT_DOUBLE_EQ(h->max(), 2.0);
}

TEST(TelemetryRegistry, ToJson) {
  Registry reg;
  reg.add("c", 3);
  reg.gauge_set("g", 1.5);
  reg.add_seconds("t", 0.1);
  const util::Json j = reg.to_json();
  EXPECT_EQ(j.at("counters").at("c").as_int(), 3);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("g").as_double(), 1.5);
  EXPECT_EQ(j.at("timers").at("t").at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("timers").at("t").at("min").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(j.at("timers").at("t").at("max").as_double(), 0.1);
  EXPECT_EQ(j.at("histograms").at("t").at("count").as_int(), 1);
}

TEST(TelemetryRegistry, FromJsonRoundTripsAndToleratesOldRecords) {
  Registry reg;
  reg.add("c", 3);
  reg.gauge_max("g", 1.5);
  reg.add_seconds("t", 0.1);
  reg.add_seconds("t", 0.3);
  reg.record_value("h", 42e-9);
  const Registry back = Registry::from_json(util::Json::parse(reg.to_json().dump()));
  EXPECT_EQ(back.to_json().dump(), reg.to_json().dump());

  // Records written before per-lap extrema and histograms existed still
  // load: min/max default to the mean lap, histograms to absent.
  const Registry old = Registry::from_json(util::Json::parse(
      R"({"counters":{"c":2},"gauges":{},"timers":{"t":{"count":2,"seconds":0.4}}})"));
  EXPECT_EQ(old.counter("c"), 2u);
  EXPECT_DOUBLE_EQ(old.timer("t").min, 0.2);
  EXPECT_DOUBLE_EQ(old.timer("t").max, 0.2);
  EXPECT_EQ(old.histogram("t"), nullptr);
}

// ---------------------------------------------------------------- histogram

TEST(TelemetryHistogram, ZeroSamples) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(TelemetryHistogram, OneSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.record(4.2e-3);
  for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 4.2e-3) << "q=" << q;
  EXPECT_DOUBLE_EQ(h.min(), 4.2e-3);
  EXPECT_DOUBLE_EQ(h.max(), 4.2e-3);
}

TEST(TelemetryHistogram, BucketBoundariesAreExact) {
  // A value exactly on bucket i's lower bound must record into bucket i,
  // not a float-fuzz neighbor — the bound table is searched, not recomputed.
  for (int i = 1; i <= Histogram::kNumBounds; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i)), i) << i;
    EXPECT_GT(Histogram::bucket_lower_bound(i), Histogram::bucket_lower_bound(i - 1)) << i;
  }
  // Underflow: non-positive and sub-ns values land in bucket 0.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(0.5e-9), 0);
  Histogram h;
  h.record(0.0);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(TelemetryHistogram, OverflowSaturatesWithoutDroppingSamples) {
  Histogram h;
  h.record(1e6);  // ~11.6 days, far past the ~68.7s top bound
  h.record(2e6);
  EXPECT_EQ(h.buckets()[Histogram::kNumBuckets - 1], 2u);
  EXPECT_EQ(h.count(), 2u);
  // The overflow bucket has no upper bound; quantiles use the recorded max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2e6);
  EXPECT_LE(h.quantile(0.5), 2e6);
  EXPECT_GE(h.quantile(0.5), 1e6);
}

TEST(TelemetryHistogram, QuantilesMonotoneAndWithinExtrema) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-6);
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The median of 1..1000 us is near 500 us — well within one bucket width
  // (~19%) of the exact answer.
  EXPECT_NEAR(h.quantile(0.5), 500e-6, 500e-6 * 0.2);
}

TEST(TelemetryHistogram, JsonRoundTripPreservesQuantiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-6 * (1 + i % 17));
  const Histogram back = Histogram::from_json(util::Json::parse(h.to_json().dump()));
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.buckets(), h.buckets());
  for (double q : {0.5, 0.9, 0.99}) EXPECT_EQ(back.quantile(q), h.quantile(q)) << q;
}

TEST(TelemetryRegistry, MergeIsOrderIndependent) {
  // The same samples, split across three registries and merged in two
  // different orders, must yield bit-identical quantiles — this is what
  // makes histogram quantiles independent of thread count.
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) samples.push_back(1e-6 * (1 + (i * 37) % 100));

  Registry parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i)
    parts[i % 3].add_seconds("t", samples[i]);

  Registry forward, backward;
  for (int i = 0; i < 3; ++i) forward.merge_from(parts[i]);
  for (int i = 2; i >= 0; --i) backward.merge_from(parts[i]);

  const Histogram* hf = forward.histogram("t");
  const Histogram* hb = backward.histogram("t");
  ASSERT_NE(hf, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hf->buckets(), hb->buckets());
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(hf->quantile(q), hb->quantile(q)) << q;  // bit-identical
  }
  EXPECT_EQ(forward.timer("t").count, 300u);
  EXPECT_DOUBLE_EQ(forward.timer("t").min, backward.timer("t").min);
  EXPECT_DOUBLE_EQ(forward.timer("t").max, backward.timer("t").max);
  // Counters and gauges fold too: sum and max respectively.
  Registry a, b;
  a.add("c", 2);
  b.add("c", 3);
  a.gauge_max("g", 1.0);
  b.gauge_max("g", 5.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 5.0);
}

TEST(TelemetryTracer, SinkRouting) {
  Tracer off;
  EXPECT_FALSE(off.tracing());
  off.emit({EventKind::Refine, 1.0});  // must be a no-op, not a crash

  VectorSink sink;
  Tracer on(&sink);
  EXPECT_TRUE(on.tracing());
  on.emit({EventKind::Refine, 1.0});
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].kind, EventKind::Refine);
}

// -------------------------------------------------------------- integration

/// Two ranks; rank 1 waits on rank 0 most of each iteration, so the search
/// finds sync bottlenecks and refines enough to exercise every decision.
simmpi::ExecutionTrace imbalance_trace() {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "app"));
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < 800; ++i) {
      {
        FunctionScope f(r, "work", "work.c");
        r.compute(r.rank() == 1 ? 0.2 : 1.0);
      }
      {
        FunctionScope f(r, "exchange", "comm.c");
        if (r.rank() == 1) r.recv(0, 7);
        else r.send(1, 7, 64);
        r.barrier();
      }
    }
  });
  return simmpi::Simulator().run(b.build());
}

pc::PcConfig traced_config(EventSink* sink) {
  pc::PcConfig cfg;
  cfg.min_observation = 10.0;
  cfg.tick = 0.5;
  cfg.cost_limit = 0.05;
  cfg.trace_sink = sink;
  return cfg;
}

TEST(TelemetryIntegration, PruneHitsMatchDirectives) {
  const simmpi::ExecutionTrace trace = imbalance_trace();
  const metrics::TraceView view(trace);

  pc::DirectiveSet directives = pc::DirectiveSet::parse(
      "prune * /Machine\n"
      "prune CPUbound /SyncObject\n");

  VectorSink sink;
  pc::PerformanceConsultant consultant(view, traced_config(&sink), directives);
  const pc::DiagnosisResult result = consultant.run();

  std::size_t prune_hits = 0, instruments = 0;
  for (const Event& e : sink.events()) {
    if (e.kind == EventKind::PruneHit) {
      ++prune_hits;
      EXPECT_TRUE(e.detail == "subtree" || e.detail == "pair") << e.detail;
      // Every recorded hit names a pair the directive set really excludes.
      auto focus = resources::Focus::parse(e.focus, view.resources());
      ASSERT_TRUE(focus.has_value()) << e.focus;
      EXPECT_TRUE(directives.is_pruned(e.hypothesis, *focus))
          << e.hypothesis << " : " << e.focus;
    } else if (e.kind == EventKind::Instrument) {
      ++instruments;
    }
  }
  EXPECT_GT(prune_hits, 0u);
  EXPECT_EQ(prune_hits, result.stats.pruned_candidates);
  EXPECT_EQ(instruments, result.stats.pairs_tested);
  EXPECT_EQ(result.telemetry.prune_hits_subtree + result.telemetry.prune_hits_pair,
            result.stats.pruned_candidates);
}

TEST(TelemetryIntegration, EveryDecisionTypeRecorded) {
  const simmpi::ExecutionTrace trace = imbalance_trace();
  const metrics::TraceView view(trace);

  VectorSink sink;
  pc::PerformanceConsultant consultant(view, traced_config(&sink));
  const pc::DiagnosisResult result = consultant.run();

  std::size_t by_kind[std::size(kAllEventKinds)] = {};
  for (const Event& e : sink.events()) ++by_kind[static_cast<std::size_t>(e.kind)];
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::Instrument)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::ConcludeTrue)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::ConcludeFalse)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::Refine)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::ProbeInsert)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(EventKind::ProbeRemove)], 0u);
  EXPECT_EQ(by_kind[static_cast<std::size_t>(EventKind::PhaseBegin)], 1u);
  EXPECT_EQ(by_kind[static_cast<std::size_t>(EventKind::PhaseEnd)], 1u);

  // Summary counters agree with the event stream.
  EXPECT_EQ(result.telemetry.pairs_tested, result.stats.pairs_tested);
  EXPECT_EQ(result.telemetry.conclusions_true + result.telemetry.conclusions_false,
            by_kind[static_cast<std::size_t>(EventKind::ConcludeTrue)] +
                by_kind[static_cast<std::size_t>(EventKind::ConcludeFalse)]);
  EXPECT_EQ(result.telemetry.refinements,
            by_kind[static_cast<std::size_t>(EventKind::Refine)]);
  EXPECT_DOUBLE_EQ(result.telemetry.peak_cost, result.stats.peak_cost);
  EXPECT_GT(result.telemetry.avg_cost, 0.0);
  EXPECT_LE(result.telemetry.avg_cost, result.telemetry.peak_cost);
  EXPECT_FALSE(result.telemetry.phase_seconds.empty());
}

TEST(TelemetryIntegration, DisabledSinkLeavesDiagnosisIdentical) {
  const simmpi::ExecutionTrace trace = imbalance_trace();
  const metrics::TraceView view(trace);

  VectorSink sink;
  pc::PerformanceConsultant traced(view, traced_config(&sink));
  const pc::DiagnosisResult with = traced.run();

  pc::PerformanceConsultant plain(view, traced_config(nullptr));
  const pc::DiagnosisResult without = plain.run();
  EXPECT_FALSE(plain.tracer().tracing());

  ASSERT_EQ(with.bottlenecks.size(), without.bottlenecks.size());
  for (std::size_t i = 0; i < with.bottlenecks.size(); ++i) {
    EXPECT_EQ(with.bottlenecks[i].hypothesis, without.bottlenecks[i].hypothesis);
    EXPECT_EQ(with.bottlenecks[i].focus, without.bottlenecks[i].focus);
    EXPECT_DOUBLE_EQ(with.bottlenecks[i].t_found, without.bottlenecks[i].t_found);
    EXPECT_DOUBLE_EQ(with.bottlenecks[i].fraction, without.bottlenecks[i].fraction);
  }
  EXPECT_EQ(with.stats.nodes_created, without.stats.nodes_created);
  EXPECT_EQ(with.stats.pairs_tested, without.stats.pairs_tested);
  EXPECT_DOUBLE_EQ(with.stats.end_time, without.stats.end_time);
  // Counters (and so the summary) are collected even with tracing off.
  EXPECT_EQ(with.telemetry.pairs_tested, without.telemetry.pairs_tested);
  EXPECT_EQ(with.telemetry.conclusions_true, without.telemetry.conclusions_true);
  EXPECT_EQ(with.telemetry.refinements, without.telemetry.refinements);
}

TEST(TelemetryIntegration, SimulatorPhaseAndCounters) {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "app"));
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    r.compute(1.0);
    r.barrier();
  });
  const simmpi::SimProgram program = b.build();

  VectorSink sink;
  Tracer tracer(&sink);
  const simmpi::ExecutionTrace trace = simmpi::Simulator().run(program, &tracer);

  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.events()[0].kind, EventKind::PhaseBegin);
  EXPECT_EQ(sink.events()[0].detail, "simulate");
  EXPECT_EQ(sink.events()[1].kind, EventKind::PhaseEnd);
  EXPECT_DOUBLE_EQ(sink.events()[1].t, trace.duration);
  EXPECT_EQ(tracer.registry().counter("sim.ranks"), 2u);
  EXPECT_GT(tracer.registry().counter("sim.ops"), 0u);
  EXPECT_EQ(tracer.registry().timer("sim.run").count, 1u);
}

TEST(TelemetrySummary, ToJsonNamesEveryField) {
  pc::TelemetrySummary s;
  s.pairs_tested = 7;
  s.prune_hits_subtree = 2;
  s.peak_cost = 0.19;
  s.phase_seconds["pc.advance"] = 0.5;
  const util::Json j = s.to_json();
  EXPECT_EQ(j.at("pairs_tested").as_int(), 7);
  EXPECT_EQ(j.at("prune_hits_subtree").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("peak_cost").as_double(), 0.19);
  EXPECT_DOUBLE_EQ(j.at("phase_seconds").at("pc.advance").as_double(), 0.5);
}

}  // namespace
}  // namespace histpc::telemetry
