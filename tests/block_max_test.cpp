// Property and unit tests for the block-max metric engine (BlockIndex +
// the SIMD masked-sum kernels + MetricBatch's block-skip fast path).
//
//  * query_blocks must agree with the interval index and the linear-scan
//    oracle on every trace, focus, window, and block size — including
//    block size 1, sizes that leave ragged tail blocks, and sizes larger
//    than any rank's interval count (single-block);
//  * the three SIMD dispatch levels (scalar / SSE4.2 / AVX2) must be
//    bit-identical to each other — the kernels share one deterministic
//    4-lane accumulation contract precisely so a forced-scalar fallback
//    run reproduces the vectorized bits;
//  * MetricBatch with block skipping stays bit-identical to the
//    per-instance scan engine (the skip path elides only provably-zero
//    work), and its telemetry records nonzero skips for narrow probes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "metrics/block_index.h"
#include "metrics/metric_batch.h"
#include "metrics/metric_instance.h"
#include "metrics/simd_kernels.h"
#include "metrics/trace_view.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "telemetry/registry.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace histpc::metrics {
namespace {

using resources::Focus;
using simmpi::FunctionScope;
using simmpi::Recorder;

// ------------------------------------------------- random trace generation
// (same generator shape as metric_engine_test: every interval state and
// sync-object kind appears, functions cluster per round so block summaries
// actually discriminate).

struct RoundSpec {
  std::vector<int> func_of_rank;  ///< index into the pool, -1 = unscoped
  std::vector<double> compute;
  std::vector<double> io;  ///< 0 = no I/O this round
  int comm = 0;            ///< 0 = none, 1 = pairwise messages, 2 = barrier
  int tag = 0;
};

constexpr std::pair<const char*, const char*> kFuncPool[] = {
    {"kernel", "kern.c"}, {"solver", "kern.c"},     {"exchange", "comm.c"},
    {"pack", "comm.c"},   {"checkpoint", "disk.c"}, {"main", "main.c"},
};
constexpr int kPoolSize = static_cast<int>(std::size(kFuncPool));

simmpi::ExecutionTrace random_trace(util::Rng& rng) {
  const int nranks = 2 + static_cast<int>(rng.next_below(4));  // 2..5
  const int nrounds = 6 + static_cast<int>(rng.next_below(10));

  std::vector<RoundSpec> rounds(static_cast<std::size_t>(nrounds));
  for (auto& round : rounds) {
    for (int r = 0; r < nranks; ++r) {
      round.func_of_rank.push_back(rng.next_double() < 0.15
                                       ? -1
                                       : static_cast<int>(rng.next_below(kPoolSize)));
      round.compute.push_back(rng.uniform(0.01, 0.6));
      round.io.push_back(rng.next_double() < 0.3 ? rng.uniform(0.01, 0.2) : 0.0);
    }
    const double p = rng.next_double();
    round.comm = p < 0.4 ? 1 : (p < 0.6 ? 2 : 0);
    round.tag = 1 + static_cast<int>(rng.next_below(3));
  }

  simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(nranks, "node", "proc");
  simmpi::ProgramBuilder b(m);
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (const RoundSpec& round : rounds) {
      const auto rank = static_cast<std::size_t>(r.rank());
      const int f = round.func_of_rank[rank];
      if (f >= 0) {
        FunctionScope scope(r, kFuncPool[f].first, kFuncPool[f].second);
        r.compute(round.compute[rank]);
      } else {
        r.compute(round.compute[rank]);
      }
      if (round.io[rank] > 0) r.io(round.io[rank]);
      if (round.comm == 1 && nranks > 1) {
        if (r.rank() % 2 == 0 && r.rank() + 1 < r.size())
          r.send(r.rank() + 1, round.tag, 1 << 12);
        else if (r.rank() % 2 == 1)
          r.recv(r.rank() - 1, round.tag);
      } else if (round.comm == 2) {
        r.barrier();
      }
    }
  });
  return simmpi::Simulator().run(b.build());
}

Focus random_focus(util::Rng& rng, const TraceView& view) {
  const simmpi::ExecutionTrace& trace = view.trace();
  Focus f = Focus::whole_program(view.resources());

  const double code = rng.next_double();
  if (code < 0.4 && !trace.functions.empty()) {
    const auto& fi = trace.functions[rng.next_below(trace.functions.size())];
    f = f.with_part(0, "/Code/" + fi.module + "/" + fi.function);
  } else if (code < 0.6 && !trace.functions.empty()) {
    const auto& fi = trace.functions[rng.next_below(trace.functions.size())];
    f = f.with_part(0, "/Code/" + fi.module);
  }

  const double where = rng.next_double();
  if (where < 0.25) {
    f = f.with_part(1, "/Machine/" +
                           trace.machine.node_names[rng.next_below(
                               trace.machine.node_names.size())]);
  } else if (where < 0.5) {
    f = f.with_part(2, "/Process/" +
                           trace.machine.process_names[rng.next_below(
                               trace.machine.process_names.size())]);
  }

  const double sync = rng.next_double();
  if (sync < 0.25 && !trace.sync_objects.empty()) {
    f = f.with_part(3, "/SyncObject/" +
                           trace.sync_objects[rng.next_below(trace.sync_objects.size())]);
  } else if (sync < 0.35) {
    f = f.with_part(3, "/SyncObject/Message");
  }
  return f;
}

// ------------------------------------- block-max == index == scan (property)

TEST(BlockMaxProperty, QueryMatchesIndexAndScanOracles) {
  // Block sizes hit the edge shapes: per-interval (1), ragged tails (3, 7),
  // the production default, and single-block (larger than any rank).
  const std::size_t kBlockSizes[] = {1, 3, 7, BlockIndex::kDefaultBlockSize, 1u << 20};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    ASSERT_NO_THROW(trace.validate());
    const TraceView view(trace);
    // unique_ptr elements: BlockIndex owns atomics, so it is immovable.
    std::vector<std::unique_ptr<BlockIndex>> indexes;
    for (std::size_t bs : kBlockSizes)
      indexes.push_back(std::make_unique<BlockIndex>(trace, nullptr, bs));

    for (int i = 0; i < 25; ++i) {
      const Focus focus = random_focus(rng, view);
      const FocusFilter& filter = view.compiled(focus);
      double t0 = rng.uniform(-0.5, trace.duration + 0.5);
      double t1 = rng.uniform(-0.5, trace.duration + 0.5);
      if (t1 < t0) std::swap(t0, t1);
      for (MetricKind metric : kAllMetrics) {
        const double indexed = view.query(metric, filter, t0, t1);
        const double scanned = view.query_scan(metric, filter, t0, t1);
        const double viewed = view.query_blocks(metric, filter, t0, t1);
        EXPECT_NEAR(viewed, indexed, 1e-9)
            << "seed " << seed << " focus " << focus.name() << " metric "
            << metric_name(metric) << " window [" << t0 << ", " << t1 << ")";
        EXPECT_NEAR(viewed, scanned, 1e-9) << "seed " << seed;
        for (std::size_t bi = 0; bi < indexes.size(); ++bi) {
          const double blocked = indexes[bi]->query(filter, metric, t0, t1);
          EXPECT_NEAR(blocked, indexed, 1e-9)
              << "seed " << seed << " block size " << kBlockSizes[bi] << " focus "
              << focus.name() << " metric " << metric_name(metric) << " window ["
              << t0 << ", " << t1 << ")";
        }
      }
    }
    // The summaries must actually have pruned work somewhere across the
    // randomized workload (narrow foci exist by construction).
    const BlockIndex::Stats s = indexes[0]->stats();
    EXPECT_GT(s.blocks_visited, 0u);
  }
}

// ------------------------- SIMD dispatch levels are bit-identical (property)

TEST(BlockMaxProperty, SimdLevelsAreBitIdentical) {
  const util::CpuFeatures& cpu = util::cpu_features();
  std::vector<util::SimdLevel> levels = {util::SimdLevel::Scalar};
  if (cpu.has_sse42) levels.push_back(util::SimdLevel::Sse42);
  if (cpu.has_avx2) levels.push_back(util::SimdLevel::Avx2);
  if (levels.size() == 1)
    GTEST_LOG_(INFO) << "no vector units compiled/available; scalar-only run";

  // Direct kernel check on adversarial lengths (0, tails of 1..3, longer).
  util::Rng krng(7);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 64u, 1001u}) {
    std::vector<double> a(n), b(n);
    std::vector<std::uint8_t> state(n), mask0(n), maskl(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = krng.uniform(0.0, 100.0);
      b[i] = a[i] + krng.uniform(0.0, 2.0);
      state[i] = static_cast<std::uint8_t>(krng.next_below(3));
    }
    for (int pat = 0; pat < 8; ++pat) {
      const bool acc[3] = {(pat & 1) != 0, (pat & 2) != 0, (pat & 4) != 0};
      simd::build_state_mask(mask0.data(), state.data(), acc, n,
                             util::SimdLevel::Scalar);
      const double ref =
          simd::masked_sum(a.data(), b.data(), mask0.data(), n, util::SimdLevel::Scalar);
      for (util::SimdLevel level : levels) {
        simd::build_state_mask(maskl.data(), state.data(), acc, n, level);
        EXPECT_EQ(mask0, maskl) << "n=" << n << " pat=" << pat;
        EXPECT_DOUBLE_EQ(ref,
                         simd::masked_sum(a.data(), b.data(), maskl.data(), n, level))
            << "n=" << n << " pat=" << pat << " level " << util::simd_level_name(level);
      }
    }
  }

  // Whole-query check: a BlockIndex forced to each level returns the exact
  // bits of the forced-scalar one (the scalar-fallback variant of the
  // acceptance criteria).
  for (std::uint64_t seed = 31; seed <= 33; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    const TraceView view(trace);
    std::vector<std::unique_ptr<BlockIndex>> forced;
    for (util::SimdLevel level : levels)
      forced.push_back(std::make_unique<BlockIndex>(trace, nullptr, std::size_t{16}, level));
    for (int i = 0; i < 20; ++i) {
      const Focus focus = random_focus(rng, view);
      const FocusFilter& filter = view.compiled(focus);
      double t0 = rng.uniform(-0.5, trace.duration + 0.5);
      double t1 = rng.uniform(-0.5, trace.duration + 0.5);
      if (t1 < t0) std::swap(t0, t1);
      for (MetricKind metric : kAllMetrics) {
        const double scalar = forced[0]->query(filter, metric, t0, t1);
        for (std::size_t li = 1; li < forced.size(); ++li)
          EXPECT_DOUBLE_EQ(scalar, forced[li]->query(filter, metric, t0, t1))
              << "seed " << seed << " level "
              << util::simd_level_name(forced[li]->simd_level()) << " metric "
              << metric_name(metric);
      }
    }
  }
}

// --------------------- batch skip path == per-instance scan (bit-identical)

TEST(BlockMaxProperty, BatchWithBlockSkippingIsBitIdenticalToInstances) {
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    const TraceView view(trace);

    MetricBatch batch(view, /*eval_threads=*/0);
    std::vector<MetricInstance> instances;
    std::vector<MetricBatch::SlotId> slots;

    double now = 0.0;
    int added = 0;
    while (now < trace.duration) {
      const int join = static_cast<int>(rng.next_below(3));
      for (int j = 0; j < join && added < 12; ++j, ++added) {
        const Focus focus = random_focus(rng, view);
        const FocusFilter& filter = view.compiled(focus);
        const MetricKind metric = kAllMetrics[rng.next_below(std::size(kAllMetrics))];
        const double start = now + rng.uniform(0.0, 0.4);
        slots.push_back(batch.add(metric, filter, start));
        instances.emplace_back(view, metric, filter, start);
      }
      now += rng.uniform(0.05, 0.9);
      batch.advance_all(now);
      for (auto& inst : instances) inst.advance(now);
      for (std::size_t k = 0; k < slots.size(); ++k)
        EXPECT_DOUBLE_EQ(batch.value(slots[k]), instances[k].value()) << "seed " << seed;
    }
  }
}

TEST(BlockMax, BatchTelemetryRecordsBlockSkips) {
  // One big advance with probes that can never match anything (a sync
  // constraint on CpuTime) forces every whole block to be skipped.
  util::Rng rng(99);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  ASSERT_FALSE(trace.sync_objects.empty());
  const Focus narrow = Focus::whole_program(view.resources())
                           .with_part(3, "/SyncObject/" + trace.sync_objects[0]);
  telemetry::Registry registry;
  MetricBatch batch(view, 0, &registry);
  batch.add(MetricKind::CpuTime, view.compiled(narrow), 0.0);
  batch.advance_all(trace.duration + 1.0);
  EXPECT_GT(registry.counter("metrics.batch.blocks_considered"), 0u);
  EXPECT_EQ(registry.counter("metrics.batch.blocks_skipped"),
            registry.counter("metrics.batch.blocks_considered"));
}

// ------------------------------------------------------------ unit tests

/// Fixed two-rank trace: rank 0 computes 2s in kernel then sends; rank 1
/// waits ~2s, computes 1s, does 0.5s of I/O.
simmpi::ExecutionTrace small_trace() {
  simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(2, "node", "proc");
  simmpi::ProgramBuilder b(m);
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    if (r.rank() == 0) {
      {
        FunctionScope f(r, "kernel", "kern.c");
        r.compute(2.0);
      }
      r.send(1, 5, 100);
      r.compute(1.5);
    } else {
      r.recv(0, 5);
      r.compute(1.0);
      r.io(0.5);
    }
  });
  simmpi::NetworkModel net;
  net.latency = 0.0;
  net.bytes_per_second = 1e9;
  return simmpi::Simulator(net).run(b.build());
}

class BlockMaxUnit : public testing::Test {
 protected:
  BlockMaxUnit() : trace_(small_trace()), view_(trace_) {}
  simmpi::ExecutionTrace trace_;
  TraceView view_;
};

TEST_F(BlockMaxUnit, WindowInsideOneIntervalStraddlesBothEnds) {
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  const FocusFilter& filter = view_.compiled(f);
  EXPECT_NEAR(view_.query_blocks(MetricKind::CpuTime, filter, 0.5, 1.25), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(view_.query_blocks(MetricKind::CpuTime, filter, 0.5, 1.25),
                   view_.query_scan(MetricKind::CpuTime, filter, 0.5, 1.25));
}

TEST_F(BlockMaxUnit, ZeroWidthAndOutOfRangeWindowsAreZero) {
  const FocusFilter& filter = view_.compiled(Focus::whole_program(view_.resources()));
  for (MetricKind metric : kAllMetrics) {
    EXPECT_DOUBLE_EQ(view_.query_blocks(metric, filter, 1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(view_.query_blocks(metric, filter, -5.0, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(view_.query_blocks(metric, filter, trace_.duration + 1.0,
                                        trace_.duration + 2.0),
                     0.0);
  }
}

TEST_F(BlockMaxUnit, SingleBlockCoversWholeTrace) {
  // Block size far larger than any rank's interval count: one block per
  // rank; full-window queries exercise the fully-covered SUM path.
  BlockIndex one_block(trace_, nullptr, 1u << 20);
  ASSERT_EQ(one_block.num_blocks(0), 1u);
  const FocusFilter& filter = view_.compiled(Focus::whole_program(view_.resources()));
  for (MetricKind metric : kAllMetrics)
    EXPECT_NEAR(one_block.query(filter, metric, -1.0, trace_.duration + 1.0),
                view_.query(metric, filter, -1.0, trace_.duration + 1.0), 1e-9);
}

TEST_F(BlockMaxUnit, BlockSizeOneMatchesIndexEverywhere) {
  BlockIndex fine(trace_, nullptr, 1);
  const FocusFilter& filter = view_.compiled(Focus::whole_program(view_.resources()));
  for (double t0 = -0.25; t0 < trace_.duration; t0 += 0.45)
    for (double t1 = t0; t1 < trace_.duration + 0.5; t1 += 0.6)
      for (MetricKind metric : kAllMetrics)
        EXPECT_NEAR(fine.query(filter, metric, t0, t1),
                    view_.query(metric, filter, t0, t1), 1e-9)
            << "window [" << t0 << ", " << t1 << ")";
}

TEST_F(BlockMaxUnit, RebuiltFromSnapshotColumnsMatches) {
  // The trace-cache hit path: a BlockIndex adopting SoA columns must equal
  // one derived from the AoS intervals.
  simmpi::TraceColumns columns;
  columns.ranks.resize(trace_.ranks.size());
  for (std::size_t r = 0; r < trace_.ranks.size(); ++r) {
    auto& rc = columns.ranks[r];
    for (const auto& iv : trace_.ranks[r].intervals) {
      rc.t0.push_back(iv.t0);
      rc.t1.push_back(iv.t1);
      rc.state.push_back(static_cast<std::uint8_t>(iv.state));
      rc.func.push_back(iv.func);
      rc.sync.push_back(iv.sync_object);
    }
  }
  ASSERT_TRUE(columns.matches(trace_));
  BlockIndex from_columns(trace_, &columns, 4);
  BlockIndex from_trace(trace_, nullptr, 4);
  const FocusFilter& filter = view_.compiled(Focus::whole_program(view_.resources()));
  for (MetricKind metric : kAllMetrics)
    EXPECT_DOUBLE_EQ(from_columns.query(filter, metric, 0.0, trace_.duration),
                     from_trace.query(filter, metric, 0.0, trace_.duration));
}

// ------------------------------------------- consultant end-to-end parity

TEST(BlockMaxConsultant, DiagnosesIdenticalToScanEngine) {
  // The batched engine now rides the block-skip fast path; diagnoses must
  // still be bit-identical to the per-instance scan engine.
  apps::AppParams params;
  params.target_duration = 200.0;
  pc::PcConfig batched;
  batched.batched_eval = true;
  pc::PcConfig scan;
  scan.batched_eval = false;

  core::DiagnosisSession a("poisson_b", params, batched);
  core::DiagnosisSession b("poisson_b", params, scan);
  const pc::DiagnosisResult ra = a.diagnose();
  const pc::DiagnosisResult rb = b.diagnose();

  EXPECT_EQ(ra.stats.pairs_tested, rb.stats.pairs_tested);
  EXPECT_EQ(ra.stats.nodes_created, rb.stats.nodes_created);
  ASSERT_EQ(ra.bottlenecks.size(), rb.bottlenecks.size());
  for (std::size_t i = 0; i < ra.bottlenecks.size(); ++i) {
    EXPECT_EQ(ra.bottlenecks[i].hypothesis, rb.bottlenecks[i].hypothesis);
    EXPECT_EQ(ra.bottlenecks[i].focus, rb.bottlenecks[i].focus);
    EXPECT_DOUBLE_EQ(ra.bottlenecks[i].t_found, rb.bottlenecks[i].t_found);
    EXPECT_DOUBLE_EQ(ra.bottlenecks[i].fraction, rb.bottlenecks[i].fraction);
  }
}

}  // namespace
}  // namespace histpc::metrics
