#include <gtest/gtest.h>

#include "core/session.h"

namespace histpc::core {
namespace {

apps::AppParams quick(double duration = 200.0) {
  apps::AppParams p;
  p.target_duration = duration;
  return p;
}

TEST(Session, AppConstructorRunsTheApplication) {
  DiagnosisSession s("tester", quick(60.0));
  EXPECT_EQ(s.app_name(), "tester");
  EXPECT_EQ(s.trace().num_ranks(), 4);
  EXPECT_GT(s.trace().duration, 30.0);
  EXPECT_TRUE(s.view().resources().contains("/Process/Tester:1"));
}

TEST(Session, UnknownAppThrows) {
  EXPECT_THROW(DiagnosisSession("not-an-app", quick()), std::invalid_argument);
}

TEST(Session, LastShgPopulatedByDiagnose) {
  DiagnosisSession s("bubba", quick());
  EXPECT_TRUE(s.last_shg().empty());
  s.diagnose();
  EXPECT_NE(s.last_shg().find("TopLevelHypothesis"), std::string::npos);
}

TEST(Session, ConfigMutationAffectsNextDiagnosis) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const pc::DiagnosisResult normal = s.diagnose();
  s.config().threshold_override = 0.95;
  const pc::DiagnosisResult strict = s.diagnose();
  EXPECT_GT(normal.stats.bottlenecks, 0u);
  EXPECT_EQ(strict.stats.bottlenecks, 0u);
}

TEST(Session, RepeatedDiagnosesAreIndependent) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const pc::DiagnosisResult a = s.diagnose();
  const pc::DiagnosisResult b = s.diagnose();
  EXPECT_EQ(a.stats.pairs_tested, b.stats.pairs_tested);
  EXPECT_EQ(a.stats.bottlenecks, b.stats.bottlenecks);
}

TEST(Session, MakeRecordStripsVersionSuffixFromAppFamily) {
  DiagnosisSession s("poisson_c", quick(300.0));
  const auto record = s.make_record(s.diagnose(), "C");
  EXPECT_EQ(record.app, "poisson");
  EXPECT_EQ(record.version, "C");
  EXPECT_EQ(record.nranks, 4);
  EXPECT_DOUBLE_EQ(record.duration, s.trace().duration);
  EXPECT_TRUE(record.machine_process_one_to_one);
  EXPECT_FALSE(record.code_usage.empty());
}

TEST(Session, TraceConstructorUsesGivenName) {
  apps::AppParams p = quick(100.0);
  DiagnosisSession s(apps::run_app("ocean", p), pc::PcConfig{}, "oceanic");
  EXPECT_EQ(s.app_name(), "oceanic");
  const auto record = s.make_record(s.diagnose(), "1");
  EXPECT_EQ(record.app, "oceanic");
}

}  // namespace
}  // namespace histpc::core
