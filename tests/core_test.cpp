#include <gtest/gtest.h>

#include "core/session.h"
#include "core/variant_runner.h"

namespace histpc::core {
namespace {

apps::AppParams quick(double duration = 200.0) {
  apps::AppParams p;
  p.target_duration = duration;
  return p;
}

TEST(Session, AppConstructorRunsTheApplication) {
  DiagnosisSession s("tester", quick(60.0));
  EXPECT_EQ(s.app_name(), "tester");
  EXPECT_EQ(s.trace().num_ranks(), 4);
  EXPECT_GT(s.trace().duration, 30.0);
  EXPECT_TRUE(s.view().resources().contains("/Process/Tester:1"));
}

TEST(Session, UnknownAppThrows) {
  EXPECT_THROW(DiagnosisSession("not-an-app", quick()), std::invalid_argument);
}

TEST(Session, LastShgPopulatedByDiagnose) {
  DiagnosisSession s("bubba", quick());
  EXPECT_TRUE(s.last_shg().empty());
  s.diagnose();
  EXPECT_NE(s.last_shg().find("TopLevelHypothesis"), std::string::npos);
}

TEST(Session, ConfigMutationAffectsNextDiagnosis) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const pc::DiagnosisResult normal = s.diagnose();
  s.config().threshold_override = 0.95;
  const pc::DiagnosisResult strict = s.diagnose();
  EXPECT_GT(normal.stats.bottlenecks, 0u);
  EXPECT_EQ(strict.stats.bottlenecks, 0u);
}

TEST(Session, RepeatedDiagnosesAreIndependent) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const pc::DiagnosisResult a = s.diagnose();
  const pc::DiagnosisResult b = s.diagnose();
  EXPECT_EQ(a.stats.pairs_tested, b.stats.pairs_tested);
  EXPECT_EQ(a.stats.bottlenecks, b.stats.bottlenecks);
}

TEST(Session, MakeRecordStripsVersionSuffixFromAppFamily) {
  DiagnosisSession s("poisson_c", quick(300.0));
  const auto record = s.make_record(s.diagnose(), "C");
  EXPECT_EQ(record.app, "poisson");
  EXPECT_EQ(record.version, "C");
  EXPECT_EQ(record.nranks, 4);
  EXPECT_DOUBLE_EQ(record.duration, s.trace().duration);
  EXPECT_TRUE(record.machine_process_one_to_one);
  EXPECT_FALSE(record.code_usage.empty());
}

TEST(Session, TraceConstructorUsesGivenName) {
  apps::AppParams p = quick(100.0);
  DiagnosisSession s(apps::run_app("ocean", p), pc::PcConfig{}, "oceanic");
  EXPECT_EQ(s.app_name(), "oceanic");
  const auto record = s.make_record(s.diagnose(), "1");
  EXPECT_EQ(record.app, "oceanic");
}

// --------------------------------------------------------- variant runner

TEST(VariantRunner, Table1VariantsCoverThePaperConfigurations) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const auto record = s.make_record(s.diagnose(), "C");
  const auto variants = table1_variants(record);
  ASSERT_EQ(variants.size(), 6u);
  EXPECT_EQ(variants[0].name, "No Directives");
  EXPECT_TRUE(variants[0].directives.empty());
  EXPECT_EQ(variants[5].name, "Priorities & All Prunes");
  EXPECT_FALSE(variants[5].directives.empty());
  // Every directive-driven variant carries a distinct directive set name.
  for (std::size_t i = 1; i < variants.size(); ++i)
    for (std::size_t j = i + 1; j < variants.size(); ++j)
      EXPECT_NE(variants[i].name, variants[j].name);
}

TEST(VariantRunner, OutcomesDeterministicAcrossThreadCounts) {
  DiagnosisSession s("poisson_c", quick(400.0));
  const auto record = s.make_record(s.diagnose(), "C");
  const auto variants = table1_variants(record);

  const VariantRunReport seq = run_variants(s.view(), variants, /*threads=*/1);
  const VariantRunReport par = run_variants(s.view(), variants, /*threads=*/4);
  EXPECT_EQ(seq.threads, 1);
  EXPECT_EQ(par.threads, 4);

  // Same outcomes in input order regardless of which thread ran what.
  ASSERT_EQ(seq.outcomes.size(), variants.size());
  ASSERT_EQ(par.outcomes.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_EQ(seq.outcomes[i].name, variants[i].name);
    EXPECT_EQ(par.outcomes[i].name, variants[i].name);
    const auto& a = seq.outcomes[i].result;
    const auto& b = par.outcomes[i].result;
    EXPECT_EQ(a.stats.pairs_tested, b.stats.pairs_tested) << variants[i].name;
    EXPECT_EQ(a.stats.bottlenecks, b.stats.bottlenecks) << variants[i].name;
    EXPECT_DOUBLE_EQ(a.stats.end_time, b.stats.end_time) << variants[i].name;
    ASSERT_EQ(a.bottlenecks.size(), b.bottlenecks.size()) << variants[i].name;
    for (std::size_t k = 0; k < a.bottlenecks.size(); ++k) {
      EXPECT_EQ(a.bottlenecks[k].hypothesis, b.bottlenecks[k].hypothesis);
      EXPECT_EQ(a.bottlenecks[k].focus, b.bottlenecks[k].focus);
      EXPECT_DOUBLE_EQ(a.bottlenecks[k].t_found, b.bottlenecks[k].t_found);
    }
  }

  // The merged telemetry folds deterministically (counters are virtual-
  // time quantities; phase_seconds is wall clock and excluded).
  EXPECT_EQ(seq.combined.pairs_tested, par.combined.pairs_tested);
  EXPECT_EQ(seq.combined.conclusions_true, par.combined.conclusions_true);
  EXPECT_EQ(seq.combined.conclusions_false, par.combined.conclusions_false);
  EXPECT_EQ(seq.combined.refinements, par.combined.refinements);
  EXPECT_EQ(seq.combined.prune_hits_subtree, par.combined.prune_hits_subtree);
  EXPECT_EQ(seq.combined.prune_hits_pair, par.combined.prune_hits_pair);
  EXPECT_DOUBLE_EQ(seq.combined.peak_cost, par.combined.peak_cost);
  EXPECT_DOUBLE_EQ(seq.combined.avg_cost, par.combined.avg_cost);
}

TEST(VariantRunner, VariantErrorsPropagateByInputOrder) {
  DiagnosisSession s("bubba", quick(120.0));
  std::vector<DiagnosisVariant> variants(2);
  variants[0].name = "ok";
  variants[1].name = "broken";
  variants[1].config.tick = 0.0;  // rejected by the consultant
  EXPECT_THROW(run_variants(s.view(), variants, 2), std::invalid_argument);
}

TEST(VariantRunner, ZeroThreadsUsesHardwareConcurrency) {
  DiagnosisSession s("bubba", quick(120.0));
  std::vector<DiagnosisVariant> variants(1);
  variants[0].name = "only";
  const VariantRunReport report = run_variants(s.view(), variants, 0);
  EXPECT_GE(report.threads, 1);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].name, "only");
  EXPECT_GT(report.outcomes[0].wall_seconds, 0.0);
}

}  // namespace
}  // namespace histpc::core
