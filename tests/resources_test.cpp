#include <gtest/gtest.h>

#include "resources/focus.h"
#include "resources/focus_table.h"
#include "resources/resource_db.h"
#include "resources/resource_hierarchy.h"
#include "util/rng.h"

namespace histpc::resources {
namespace {

ResourceDb figure1_db() {
  // The program "Tester" of paper Figure 1.
  ResourceDb db = ResourceDb::with_standard_hierarchies();
  for (const char* r : {"/Code/main.C/main", "/Code/main.C/printstatus",
                        "/Code/testutil.C/verifyA", "/Code/testutil.C/verifyB",
                        "/Code/vect.C/vect::addEl", "/Code/vect.C/vect::findEl",
                        "/Code/vect.C/vect::print", "/Machine/CPU_1", "/Machine/CPU_2",
                        "/Machine/CPU_3", "/Machine/CPU_4", "/Process/Tester:1",
                        "/Process/Tester:2", "/Process/Tester:3", "/Process/Tester:4"})
    db.add_resource(r);
  return db;
}

// -------------------------------------------------------------- hierarchy

TEST(Hierarchy, RootNaming) {
  ResourceHierarchy h("Code");
  EXPECT_EQ(h.name(), "Code");
  EXPECT_EQ(h.node(h.root()).full_name, "/Code");
  EXPECT_EQ(h.node(h.root()).depth, 0);
  EXPECT_EQ(h.size(), 1u);
}

TEST(Hierarchy, InvalidNameThrows) {
  EXPECT_THROW(ResourceHierarchy(""), std::invalid_argument);
  EXPECT_THROW(ResourceHierarchy("a/b"), std::invalid_argument);
}

TEST(Hierarchy, AddChildIdempotent) {
  ResourceHierarchy h("Code");
  ResourceId a = h.add_child(h.root(), "mod.f");
  ResourceId b = h.add_child(h.root(), "mod.f");
  EXPECT_EQ(a, b);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.node(a).full_name, "/Code/mod.f");
  EXPECT_EQ(h.node(a).depth, 1);
}

TEST(Hierarchy, AddChildValidatesLabel) {
  ResourceHierarchy h("Code");
  EXPECT_THROW(h.add_child(h.root(), ""), std::invalid_argument);
  EXPECT_THROW(h.add_child(h.root(), "a/b"), std::invalid_argument);
  EXPECT_THROW(h.add_child(99, "x"), std::out_of_range);
}

TEST(Hierarchy, AddPathCreatesIntermediates) {
  ResourceHierarchy h("Code");
  ResourceId f = h.add_path("/Code/mod.f/fn");
  EXPECT_EQ(h.node(f).depth, 2);
  EXPECT_NE(h.find("/Code/mod.f"), kNoResource);
  EXPECT_EQ(h.node(h.node(f).parent).full_name, "/Code/mod.f");
}

TEST(Hierarchy, AddPathRejectsWrongHierarchy) {
  ResourceHierarchy h("Code");
  EXPECT_THROW(h.add_path("/Machine/x"), std::invalid_argument);
  EXPECT_THROW(h.add_path("Code/x"), std::invalid_argument);
}

TEST(Hierarchy, FindMissing) {
  ResourceHierarchy h("Code");
  EXPECT_EQ(h.find("/Code/none"), kNoResource);
  EXPECT_FALSE(h.contains("/Code/none"));
}

TEST(Hierarchy, LeavesUnder) {
  ResourceHierarchy h("Code");
  h.add_path("/Code/a/f1");
  h.add_path("/Code/a/f2");
  h.add_path("/Code/b");
  auto leaves = h.leaves_under(h.root());
  EXPECT_EQ(leaves.size(), 3u);
  auto a_leaves = h.leaves_under(h.find("/Code/a"));
  EXPECT_EQ(a_leaves.size(), 2u);
  auto self_leaf = h.leaves_under(h.find("/Code/a/f1"));
  ASSERT_EQ(self_leaf.size(), 1u);
  EXPECT_EQ(self_leaf[0], h.find("/Code/a/f1"));
}

TEST(Hierarchy, AncestorOrSelf) {
  ResourceHierarchy h("Code");
  ResourceId f = h.add_path("/Code/a/f1");
  ResourceId mod = h.find("/Code/a");
  EXPECT_TRUE(h.is_ancestor_or_self(h.root(), f));
  EXPECT_TRUE(h.is_ancestor_or_self(mod, f));
  EXPECT_TRUE(h.is_ancestor_or_self(f, f));
  EXPECT_FALSE(h.is_ancestor_or_self(f, mod));
}

TEST(Hierarchy, PreorderVisitsAllOnce) {
  ResourceHierarchy h("Code");
  h.add_path("/Code/a/f1");
  h.add_path("/Code/b/f2");
  auto order = h.preorder();
  EXPECT_EQ(order.size(), h.size());
  EXPECT_EQ(order.front(), h.root());
  // Parent precedes child.
  auto pos = [&](ResourceId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(h.find("/Code/a")), pos(h.find("/Code/a/f1")));
}

TEST(Hierarchy, RenderShowsTreeAndTags) {
  ResourceHierarchy h("Code");
  h.add_path("/Code/a/f1");
  std::unordered_map<std::string, std::string> tags{{"/Code/a/f1", "3"}};
  std::string s = h.render(&tags);
  EXPECT_NE(s.find("Code"), std::string::npos);
  EXPECT_NE(s.find("f1 [3]"), std::string::npos);
}

// --------------------------------------------------------------------- db

TEST(Db, StandardHierarchies) {
  ResourceDb db = ResourceDb::with_standard_hierarchies();
  EXPECT_EQ(db.num_hierarchies(), 4u);
  EXPECT_EQ(db.hierarchy(0).name(), "Code");
  EXPECT_TRUE(db.has_hierarchy("SyncObject"));
  EXPECT_EQ(db.hierarchy_index("Machine"), 1);
  EXPECT_EQ(db.hierarchy_index("Nope"), -1);
  EXPECT_THROW(db.hierarchy("Nope"), std::out_of_range);
}

TEST(Db, AddResourceCreatesHierarchyOnDemand) {
  ResourceDb db;
  db.add_resource("/Memory/bank0");
  EXPECT_TRUE(db.has_hierarchy("Memory"));
  EXPECT_TRUE(db.contains("/Memory/bank0"));
  EXPECT_FALSE(db.contains("/Memory/bank1"));
  EXPECT_FALSE(db.contains("/Other/x"));
  EXPECT_THROW(db.add_resource("no-slash"), std::invalid_argument);
}

TEST(Db, JsonRoundTrip) {
  ResourceDb db = figure1_db();
  ResourceDb back = ResourceDb::from_json(db.to_json());
  EXPECT_EQ(back.all_resource_names(), db.all_resource_names());
}

TEST(Db, CopyIsDeep) {
  ResourceDb db = figure1_db();
  ResourceDb copy = db;
  copy.add_resource("/Code/new.C/f");
  EXPECT_TRUE(copy.contains("/Code/new.C/f"));
  EXPECT_FALSE(db.contains("/Code/new.C/f"));
}

// ------------------------------------------------------------------ focus

TEST(Focus, WholeProgram) {
  ResourceDb db = figure1_db();
  Focus f = Focus::whole_program(db);
  EXPECT_TRUE(f.is_whole_program());
  EXPECT_EQ(f.name(), "</Code,/Machine,/Process,/SyncObject>");
  EXPECT_EQ(f.total_depth(db), 0);
}

TEST(Focus, ParseCanonical) {
  ResourceDb db = figure1_db();
  auto f = Focus::parse("</Code/testutil.C/verifyA,/Machine,/Process/Tester:2,/SyncObject>",
                        db);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->part(0), "/Code/testutil.C/verifyA");
  EXPECT_EQ(f->part(2), "/Process/Tester:2");
  EXPECT_EQ(f->total_depth(db), 3);
}

TEST(Focus, ParseReordersAndDefaults) {
  ResourceDb db = figure1_db();
  // Process part listed first, Machine and SyncObject omitted.
  auto f = Focus::parse("/Process/Tester:2,/Code/main.C", db);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->part(0), "/Code/main.C");
  EXPECT_EQ(f->part(1), "/Machine");
  EXPECT_EQ(f->part(2), "/Process/Tester:2");
  EXPECT_EQ(f->part(3), "/SyncObject");
}

TEST(Focus, ParseRejectsUnknownsAndDuplicates) {
  ResourceDb db = figure1_db();
  EXPECT_FALSE(Focus::parse("</Nope/x>", db).has_value());
  EXPECT_FALSE(Focus::parse("</Code/a,/Code/b>", db).has_value());
  EXPECT_FALSE(Focus::parse("</Code/missing.C>", db).has_value());
  EXPECT_FALSE(Focus::parse("<//>", db).has_value());
  EXPECT_FALSE(Focus::parse("</Code", db).has_value());
}

TEST(Focus, ParseWithoutValidationAcceptsMissingResources) {
  ResourceDb db = figure1_db();
  auto f = Focus::parse("</Code/missing.C>", db, /*validate_resources=*/false);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->part(0), "/Code/missing.C");
}

TEST(Focus, NameParsesBackToEqualFocus) {
  ResourceDb db = figure1_db();
  auto f = Focus::parse("</Code/vect.C,/Process/Tester:3>", db);
  ASSERT_TRUE(f.has_value());
  auto g = Focus::parse(f->name(), db);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*f, *g);
}

TEST(Focus, RefinementsMoveOneEdge) {
  ResourceDb db = figure1_db();
  Focus whole = Focus::whole_program(db);
  auto refs = whole.refinements(db);
  // Code has 3 modules, Machine 4 nodes, Process 4 processes, SyncObject 0.
  EXPECT_EQ(refs.size(), 3u + 4u + 4u);
  for (const Focus& r : refs) {
    EXPECT_EQ(r.total_depth(db), 1);
    EXPECT_TRUE(whole.contains(r));
  }
}

TEST(Focus, RefinementOfLeafPartStops) {
  ResourceDb db = figure1_db();
  auto f = Focus::parse("</Code/testutil.C/verifyA,/Machine/CPU_1,/Process/Tester:1>", db);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->refinements(db).empty());
}

TEST(Focus, ContainsIsPartwisePrefix) {
  ResourceDb db = figure1_db();
  Focus whole = Focus::whole_program(db);
  auto narrow = Focus::parse("</Code/vect.C/vect::print,/Process/Tester:1>", db);
  auto mid = Focus::parse("</Code/vect.C>", db);
  ASSERT_TRUE(narrow && mid);
  EXPECT_TRUE(whole.contains(*narrow));
  EXPECT_TRUE(mid->contains(*narrow));
  EXPECT_FALSE(narrow->contains(*mid));
  // Diverging parts are not contained.
  auto other = Focus::parse("</Code/main.C>", db);
  EXPECT_FALSE(mid->contains(*other));
}

/// Property: any focus assembled from db resources round-trips through
/// its canonical name, and refinement preserves containment.
class FocusFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FocusFuzz, NameRoundTripAndRefinementContainment) {
  util::Rng rng(GetParam());
  ResourceDb db = figure1_db();
  // Random walk: start at whole program, take random refinement steps.
  Focus f = Focus::whole_program(db);
  for (int step = 0; step < 6; ++step) {
    auto refs = f.refinements(db);
    if (refs.empty()) break;
    Focus child = refs[rng.next_below(refs.size())];
    // Containment and depth increase at each step.
    EXPECT_TRUE(f.contains(child));
    EXPECT_FALSE(child.contains(f));
    EXPECT_EQ(child.total_depth(db), f.total_depth(db) + 1);
    // Canonical-name round trip.
    auto parsed = Focus::parse(child.name(), db);
    ASSERT_TRUE(parsed.has_value()) << child.name();
    EXPECT_EQ(*parsed, child);
    f = std::move(child);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FocusFuzz, testing::Range<std::uint64_t>(1, 11));

TEST(Focus, WithPartReplaces) {
  ResourceDb db = figure1_db();
  Focus f = Focus::whole_program(db).with_part(2, "/Process/Tester:4");
  EXPECT_EQ(f.part(2), "/Process/Tester:4");
  EXPECT_EQ(f.part(0), "/Code");
}

// ------------------------------------------------------ parse diagnostics

TEST(Focus, ParseDiagnosticsNameTheFailingPart) {
  ResourceDb db = figure1_db();
  std::string error;

  EXPECT_FALSE(Focus::parse("</Code", db, true, &error).has_value());
  EXPECT_EQ(error, "unterminated '<' in focus '</Code'");

  EXPECT_FALSE(Focus::parse("Code/main.C", db, true, &error).has_value());
  EXPECT_EQ(error, "malformed part 'Code/main.C': expected /Hierarchy[/resource...]");

  EXPECT_FALSE(Focus::parse("</Nope/x>", db, true, &error).has_value());
  EXPECT_EQ(error, "part '/Nope/x' names unknown hierarchy 'Nope'");

  EXPECT_FALSE(Focus::parse("</Code/main.C,/Code/vect.C>", db, true, &error).has_value());
  EXPECT_EQ(error, "duplicate part for hierarchy 'Code': '/Code/vect.C'");

  EXPECT_FALSE(Focus::parse("</Code/missing.C>", db, true, &error).has_value());
  EXPECT_EQ(error, "part '/Code/missing.C' names a resource missing from hierarchy 'Code'");
}

TEST(Focus, ParseDiagnosticOptionalAndUntouchedOnSuccess) {
  ResourceDb db = figure1_db();
  // Null error pointer: failure still reported via nullopt.
  EXPECT_FALSE(Focus::parse("</Nope/x>", db).has_value());
  // Error string untouched when the parse succeeds.
  std::string error = "stale";
  EXPECT_TRUE(Focus::parse("</Code/main.C>", db, true, &error).has_value());
  EXPECT_EQ(error, "stale");
}

TEST(Focus, ParseWildcardPartEdgeCases) {
  ResourceDb db = figure1_db();
  // Empty angle brackets: every hierarchy defaults to its root.
  auto f = Focus::parse("<>", db);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_whole_program());
  // Blank comma-separated parts are skipped as wildcards, not errors.
  auto g = Focus::parse("< , /Process/Tester:1 , >", db);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->part(0), "/Code");
  EXPECT_EQ(g->part(2), "/Process/Tester:1");
  // A bare hierarchy root is an explicit wildcard for that hierarchy.
  auto h = Focus::parse("</Machine>", db);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->is_whole_program());
  // Whitespace-only input is the whole program.
  auto w = Focus::parse("   ", db);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->is_whole_program());
}

// ------------------------------------------------------------ focus table

TEST(FocusTable, WholeProgramIsIdZero) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  EXPECT_EQ(table.whole_program(), 0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.is_whole_program(table.whole_program()));
  EXPECT_EQ(table.total_depth(table.whole_program()), 0);
  EXPECT_EQ(table.name(0), Focus::whole_program(db).name());
}

TEST(FocusTable, InternDedupes) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  auto f = Focus::parse("</Code/vect.C,/Process/Tester:3>", db);
  ASSERT_TRUE(f.has_value());
  FocusId a = table.intern(*f);
  FocusId b = table.intern(*f);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, table.whole_program());
  EXPECT_EQ(table.to_focus(a), *f);
  EXPECT_EQ(table.name(a), f->name());
  EXPECT_EQ(table.total_depth(a), f->total_depth(db));
}

TEST(FocusTable, ParseMemoMatchesFocusParse) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  auto id = table.parse("/Process/Tester:2,/Code/main.C");
  ASSERT_TRUE(id.has_value());
  auto oracle = Focus::parse("/Process/Tester:2,/Code/main.C", db);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(table.to_focus(*id), *oracle);
  // Memoized: same text returns the same id.
  EXPECT_EQ(table.parse("/Process/Tester:2,/Code/main.C"), id);
  // Failures carry the same diagnostics as the string path.
  std::string error;
  EXPECT_FALSE(table.parse("</Code/missing.C>", &error).has_value());
  EXPECT_EQ(error, "part '/Code/missing.C' names a resource missing from hierarchy 'Code'");
}

TEST(FocusTable, WithPartIsIdArithmetic) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  const std::size_t proc = static_cast<std::size_t>(db.hierarchy_index("Process"));
  PartId tester4 = table.part_id(proc, "/Process/Tester:4");
  EXPECT_EQ(FocusTable::part_resource(tester4), db.hierarchy(proc).find("/Process/Tester:4"));
  FocusId narrowed = table.with_part(table.whole_program(), proc, tester4);
  EXPECT_EQ(table.to_focus(narrowed),
            Focus::whole_program(db).with_part(proc, "/Process/Tester:4"));
  // Replacing with the same part is the identity.
  EXPECT_EQ(table.with_part(narrowed, proc, tester4), narrowed);
}

TEST(FocusTable, ForeignPartsInternAboveBase) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  const std::size_t sync = static_cast<std::size_t>(db.hierarchy_index("SyncObject"));
  PartId foreign = table.part_id(sync, "/SyncObject/Message");
  EXPECT_GE(foreign, kForeignPartBase);
  EXPECT_EQ(FocusTable::part_resource(foreign), kNoResource);
  EXPECT_EQ(table.part_name(sync, foreign), "/SyncObject/Message");
  EXPECT_EQ(table.part_depth(sync, foreign), 1);
  // Same name, same foreign id.
  EXPECT_EQ(table.part_id(sync, "/SyncObject/Message"), foreign);
  // Foreign parts nest under the hierarchy root but not under each other.
  PartId root = table.part_id(sync, "/SyncObject");
  EXPECT_TRUE(table.part_within(sync, foreign, root));
  EXPECT_FALSE(table.part_within(sync, root, foreign));
}

TEST(FocusTable, RefinementsMatchStringOracle) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  FocusId whole = table.whole_program();
  const auto& refs = table.refinements(whole);
  auto oracle = Focus::whole_program(db).refinements(db);
  ASSERT_EQ(refs.size(), oracle.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(table.to_focus(refs[i]), oracle[i]) << "refinement " << i;
    EXPECT_TRUE(table.contains(whole, refs[i]));
    EXPECT_FALSE(table.contains(refs[i], whole));
  }
  // The reference is stable and the list is built once.
  EXPECT_EQ(&table.refinements(whole), &refs);
}

TEST(FocusTable, NamesBuiltCountsLazyMaterialization) {
  ResourceDb db = figure1_db();
  FocusTable table(db);
  auto f = Focus::parse("</Code/vect.C>", db);
  ASSERT_TRUE(f.has_value());
  FocusId id = table.intern(*f);
  table.refinements(id);  // structural work must not build names
  EXPECT_EQ(table.names_built(), 0u);
  table.name(id);
  EXPECT_EQ(table.names_built(), 1u);
  table.name(id);  // memoized: not rebuilt
  EXPECT_EQ(table.names_built(), 1u);
}

/// Property: a random refinement walk over ids mirrors the string walk
/// exactly — same names, depths, containment, and memoized round trips.
class FocusTableFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FocusTableFuzz, IdWalkMirrorsStringWalk) {
  util::Rng rng(GetParam());
  ResourceDb db = figure1_db();
  FocusTable table(db);
  Focus f = Focus::whole_program(db);
  FocusId id = table.whole_program();
  for (int step = 0; step < 6; ++step) {
    auto string_refs = f.refinements(db);
    const auto& id_refs = table.refinements(id);
    ASSERT_EQ(id_refs.size(), string_refs.size());
    if (string_refs.empty()) break;
    std::size_t pick = rng.next_below(string_refs.size());
    Focus child = string_refs[pick];
    FocusId child_id = id_refs[pick];
    EXPECT_EQ(table.name(child_id), child.name());
    EXPECT_EQ(table.to_focus(child_id), child);
    EXPECT_EQ(table.total_depth(child_id), child.total_depth(db));
    EXPECT_EQ(table.is_whole_program(child_id), child.is_whole_program());
    EXPECT_TRUE(table.contains(id, child_id));
    EXPECT_FALSE(table.contains(child_id, id));
    // Interning the equivalent string focus lands on the same id.
    EXPECT_EQ(table.intern(child), child_id);
    auto parsed = table.parse(child.name());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, child_id);
    f = std::move(child);
    id = child_id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FocusTableFuzz, testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace histpc::resources
