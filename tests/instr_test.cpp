#include <gtest/gtest.h>

#include "instr/cost_model.h"
#include "instr/instrumentation.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"

namespace histpc::instr {
namespace {

using metrics::MetricKind;
using resources::Focus;

simmpi::ExecutionTrace make_trace(int nranks = 4) {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(nranks, "node", "proc"));
  b.record([](simmpi::Recorder& r) {
    simmpi::FunctionScope f(r, "work", "mod.c");
    for (int i = 0; i < 20; ++i) {
      r.compute(1.0);
      r.barrier();
    }
  });
  return simmpi::Simulator().run(b.build());
}

class InstrTest : public testing::Test {
 protected:
  InstrTest() : trace_(make_trace()), view_(trace_) {}
  simmpi::ExecutionTrace trace_;
  metrics::TraceView view_;
};

TEST_F(InstrTest, CostGrowsWithFocusBreadth) {
  CostModel cm;
  const Focus whole = Focus::whole_program(view_.resources());
  const Focus mod = whole.with_part(0, "/Code/mod.c");
  const Focus func = whole.with_part(0, "/Code/mod.c/work");
  const double c_whole = cm.probe_cost(view_, whole, MetricKind::CpuTime);
  const double c_mod = cm.probe_cost(view_, mod, MetricKind::CpuTime);
  const double c_func = cm.probe_cost(view_, func, MetricKind::CpuTime);
  EXPECT_GT(c_whole, c_mod);
  EXPECT_GT(c_mod, c_func);
}

TEST_F(InstrTest, CostScalesWithSelectedRanks) {
  CostModel cm;
  const Focus whole = Focus::whole_program(view_.resources());
  const Focus one = whole.with_part(2, "/Process/proc:1");
  EXPECT_NEAR(cm.probe_cost(view_, whole, MetricKind::CpuTime),
              4 * cm.probe_cost(view_, one, MetricKind::CpuTime), 1e-12);
}

TEST_F(InstrTest, SyncConstraintAddsCost) {
  CostModel cm;
  const Focus whole = Focus::whole_program(view_.resources());
  const Focus sync = whole.with_part(3, "/SyncObject/Collective/Barrier");
  EXPECT_GT(cm.probe_cost(view_, sync, MetricKind::SyncWaitTime),
            cm.probe_cost(view_, whole, MetricKind::SyncWaitTime));
}

TEST_F(InstrTest, InsertionLatencyDelaysData) {
  InstrumentationManager mgr(view_, CostModel{}, /*insertion_latency=*/2.0);
  const Focus whole = Focus::whole_program(view_.resources());
  ProbeId p = mgr.insert(MetricKind::CpuTime, whole, /*now=*/1.0);
  mgr.advance(2.5);  // data collection starts at 3.0
  EXPECT_DOUBLE_EQ(mgr.read(p).observed, 0.0);
  EXPECT_DOUBLE_EQ(mgr.read(p).value, 0.0);
  mgr.advance(5.0);
  EXPECT_NEAR(mgr.read(p).observed, 2.0, 1e-9);
  EXPECT_GT(mgr.read(p).value, 0.0);
}

TEST_F(InstrTest, RemoveFreesCost) {
  InstrumentationManager mgr(view_, CostModel{}, 0.0);
  const Focus whole = Focus::whole_program(view_.resources());
  ProbeId a = mgr.insert(MetricKind::CpuTime, whole, 0.0);
  ProbeId b = mgr.insert(MetricKind::SyncWaitTime, whole, 0.0);
  const double both = mgr.total_cost();
  EXPECT_GT(both, 0.0);
  EXPECT_EQ(mgr.num_active(), 2u);
  mgr.remove(a);
  EXPECT_LT(mgr.total_cost(), both);
  EXPECT_EQ(mgr.num_active(), 1u);
  EXPECT_FALSE(mgr.is_active(a));
  EXPECT_TRUE(mgr.is_active(b));
  EXPECT_THROW(mgr.remove(a), std::logic_error);
  mgr.remove(b);
  EXPECT_NEAR(mgr.total_cost(), 0.0, 1e-12);
  EXPECT_EQ(mgr.total_inserted(), 2u);
}

TEST_F(InstrTest, PeakCostTracksHighWaterMark) {
  InstrumentationManager mgr(view_, CostModel{}, 0.0);
  const Focus whole = Focus::whole_program(view_.resources());
  ProbeId a = mgr.insert(MetricKind::CpuTime, whole, 0.0);
  const double peak = mgr.total_cost();
  mgr.remove(a);
  mgr.insert(MetricKind::CpuTime, whole.with_part(2, "/Process/proc:1"), 0.0);
  EXPECT_DOUBLE_EQ(mgr.peak_cost(), peak);
}

TEST_F(InstrTest, PredictMatchesInsertCost) {
  InstrumentationManager mgr(view_, CostModel{}, 0.0);
  const Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/mod.c");
  const double predicted = mgr.predict_cost(MetricKind::CpuTime, f);
  ProbeId p = mgr.insert(MetricKind::CpuTime, f, 0.0);
  EXPECT_DOUBLE_EQ(mgr.probe_cost(p), predicted);
}

TEST_F(InstrTest, SampleFractionNormalizes) {
  InstrumentationManager mgr(view_, CostModel{}, 0.0);
  const Focus whole = Focus::whole_program(view_.resources());
  ProbeId p = mgr.insert(MetricKind::ExecTime, whole, 0.0);
  mgr.advance(10.0);
  const ProbeSample s = mgr.read(p);
  EXPECT_EQ(s.selected_ranks, 4);
  EXPECT_NEAR(s.fraction, s.value / (s.observed * 4), 1e-12);
  // The program alternates compute/barrier, so exec fraction is ~1.
  EXPECT_NEAR(s.fraction, 1.0, 0.05);
}

TEST_F(InstrTest, NegativeLatencyRejected) {
  EXPECT_THROW(InstrumentationManager(view_, CostModel{}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace histpc::instr
