// Tests for the extension features: postmortem directive extraction
// (paper §6), trace serialization, SHG DOT export, perturbation modeling,
// and the I/O-bound workload's hypothesis path.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "apps/apps.h"
#include "core/session.h"
#include "history/analysis.h"
#include "history/generator.h"
#include "history/postmortem.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "simmpi/trace_io.h"

namespace histpc {
namespace {

using metrics::TraceView;

// ------------------------------------------------------------- postmortem

TEST(Postmortem, FindsSameSignificantBottlenecksAsOnlineSearch) {
  apps::AppParams p;
  p.target_duration = 1500.0;
  simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  TraceView view(trace);

  const pc::DiagnosisResult post = history::postmortem_diagnose(view);
  pc::PcConfig online_cfg;
  online_cfg.cost_limit = 1e9;  // unthrottled online search for comparison
  pc::PerformanceConsultant online_pc(view, online_cfg);
  const pc::DiagnosisResult online = online_pc.run();

  // Every clearly significant postmortem bottleneck appears online and
  // vice versa (marginal pairs may differ: whole-run vs windowed data).
  auto contains = [](const pc::DiagnosisResult& r, const pc::BottleneckReport& b) {
    return std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [&](const auto& x) {
      return x.hypothesis == b.hypothesis && x.focus == b.focus;
    });
  };
  for (const auto& b : post.bottlenecks) {
    if (b.fraction > 0.25) {
      EXPECT_TRUE(contains(online, b)) << b.hypothesis << " " << b.focus;
    }
  }
  for (const auto& b : online.bottlenecks) {
    if (b.fraction > 0.25) {
      EXPECT_TRUE(contains(post, b)) << b.hypothesis << " " << b.focus;
    }
  }
}

TEST(Postmortem, TimestampsAreZeroAndPairsCounted) {
  apps::AppParams p;
  p.target_duration = 300.0;
  simmpi::ExecutionTrace trace = apps::run_app("bubba", p);
  TraceView view(trace);
  const pc::DiagnosisResult r = history::postmortem_diagnose(view);
  ASSERT_GT(r.stats.bottlenecks, 0u);
  for (const auto& b : r.bottlenecks) EXPECT_DOUBLE_EQ(b.t_found, 0.0);
  EXPECT_EQ(r.stats.pairs_tested, r.stats.nodes_created);
}

TEST(Postmortem, ThresholdOverrideRespected) {
  apps::AppParams p;
  p.target_duration = 300.0;
  simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  TraceView view(trace);
  history::PostmortemOptions strict;
  strict.threshold_override = 0.9;
  EXPECT_EQ(history::postmortem_diagnose(view, strict).stats.bottlenecks, 0u);
}

TEST(Postmortem, MaxPairsBoundStopsCleanly) {
  apps::AppParams p;
  p.target_duration = 300.0;
  simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  TraceView view(trace);
  history::PostmortemOptions bounded;
  bounded.max_pairs = 10;
  const pc::DiagnosisResult r = history::postmortem_diagnose(view, bounded);
  EXPECT_LE(r.stats.pairs_tested, 10u);
  const std::size_t never_ran =
      std::count_if(r.nodes.begin(), r.nodes.end(), [](const auto& n) {
        return n.status == pc::NodeStatus::NeverRan;
      });
  EXPECT_GT(never_ran, 0u);
}

TEST(Postmortem, RecordDrivesAnOnlineSearchEffectively) {
  // The §6 scenario: raw data from "another tool" (here: a serialized
  // trace), no SHG — harvest directives postmortem, then direct an online
  // search.
  apps::AppParams p;
  p.target_duration = 1500.0;
  simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  TraceView view(trace);
  const history::ExperimentRecord record =
      history::postmortem_record("poisson", "C", view, {});
  EXPECT_FALSE(record.bottlenecks.empty());
  EXPECT_FALSE(record.code_usage.empty());

  pc::DirectiveSet directives = history::DirectiveGenerator().from_record(record);
  core::DiagnosisSession cold("poisson_c", p);
  core::DiagnosisSession directed("poisson_c", p);
  const pc::DiagnosisResult base = cold.diagnose();
  const pc::DiagnosisResult guided = directed.diagnose(directives);
  const auto reference = history::significant_bottlenecks(
      history::filter_pruned(base.bottlenecks, directives, directed.view().resources()),
      0.22);
  EXPECT_LT(guided.time_to_find(reference, 100.0),
            0.5 * base.time_to_find(reference, 100.0));
}

TEST(Postmortem, ExtendedHypothesisTreeEvaluated) {
  apps::AppParams p;
  p.target_duration = 300.0;
  simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  TraceView view(trace);
  history::PostmortemOptions opts;
  opts.hypotheses = pc::HypothesisSet::standard_extended();
  const pc::DiagnosisResult r = history::postmortem_diagnose(view, opts);
  EXPECT_TRUE(std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [](const auto& b) {
    return b.hypothesis == pc::kMessageWaitName;
  }));
}

// ---------------------------------------------------------------- trace IO

TEST(TraceIo, RoundTripPreservesEverything) {
  apps::AppParams p;
  p.target_duration = 60.0;
  const simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  const simmpi::ExecutionTrace back =
      simmpi::trace_from_json(simmpi::trace_to_json(trace));
  EXPECT_DOUBLE_EQ(back.duration, trace.duration);
  EXPECT_EQ(back.functions.size(), trace.functions.size());
  EXPECT_EQ(back.sync_objects, trace.sync_objects);
  EXPECT_EQ(back.machine.node_names, trace.machine.node_names);
  EXPECT_EQ(back.machine.process_names, trace.machine.process_names);
  ASSERT_EQ(back.num_ranks(), trace.num_ranks());
  for (int r = 0; r < trace.num_ranks(); ++r) {
    const auto& a = trace.ranks[r].intervals;
    const auto& b = back.ranks[r].intervals;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].t0, b[i].t0);
      EXPECT_DOUBLE_EQ(a[i].t1, b[i].t1);
      EXPECT_EQ(a[i].state, b[i].state);
      EXPECT_EQ(a[i].func, b[i].func);
      EXPECT_EQ(a[i].sync_object, b[i].sync_object);
    }
  }
}

TEST(TraceIo, FileRoundTripAndDiagnosis) {
  apps::AppParams p;
  p.target_duration = 200.0;
  const simmpi::ExecutionTrace trace = apps::run_app("bubba", p);
  const std::string path = testing::TempDir() + "/histpc_trace.json";
  simmpi::save_trace(trace, path);
  simmpi::ExecutionTrace loaded = simmpi::load_trace(path);
  // A loaded trace is diagnosable like a fresh one.
  core::DiagnosisSession session(std::move(loaded));
  EXPECT_GT(session.diagnose().stats.bottlenecks, 0u);
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadDocuments) {
  EXPECT_THROW(simmpi::trace_from_json(util::Json::parse("{}")), util::JsonError);
  EXPECT_THROW(simmpi::trace_from_json(util::Json::parse(
                   R"({"schema": "histpc-trace-v2"})")),
               util::JsonError);
  // Valid schema tag but inconsistent payload.
  apps::AppParams p;
  p.target_duration = 30.0;
  util::Json j = simmpi::trace_to_json(apps::run_app("tester", p));
  j["ranks"].as_array()[0]["intervals"].as_array().push_back(util::Json(1.0));
  EXPECT_THROW(simmpi::trace_from_json(j), util::JsonError);
}

TEST(TraceIo, ParseErrorsNameTheFieldAndSchema) {
  apps::AppParams p;
  p.target_duration = 30.0;
  util::Json j = simmpi::trace_to_json(apps::run_app("tester", p));
  // Corrupt one interval's state slot (index 2 within the third tuple).
  j["ranks"].as_array()[0]["intervals"].as_array()[2 * 5 + 2] = util::Json(7.0);
  try {
    simmpi::trace_from_json(j);
    FAIL() << "corrupt document parsed successfully";
  } catch (const util::JsonError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("histpc-trace-v1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ranks[0].intervals[2]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad state 7"), std::string::npos) << msg;
  }
}

// --------------------------------------------------------------- DOT export

TEST(ShgDot, ContainsNodesEdgesAndColors) {
  apps::AppParams p;
  p.target_duration = 400.0;
  simmpi::ExecutionTrace trace = apps::run_app("bubba", p);
  metrics::TraceView view(trace);
  pc::PerformanceConsultant consultant(view, pc::PcConfig{});
  consultant.run();
  const std::string dot = consultant.shg().to_dot();
  EXPECT_NE(dot.find("digraph shg"), std::string::npos);
  EXPECT_NE(dot.find("TopLevelHypothesis"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("#5aa469"), std::string::npos);  // at least one true node
  EXPECT_NE(dot.find("#d3d3d3"), std::string::npos);  // at least one false node
  EXPECT_EQ(dot.find('"') == std::string::npos, false);
}

// ------------------------------------------------------------- perturbation

TEST(Perturbation, InflatedCpuReadingsCreateSpuriousBottlenecks) {
  // Balanced program at ~18% CPU per focus area: ideal measurement stays
  // under the 20% threshold, perturbed measurement crosses it.
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "app"));
  b.record([](simmpi::Recorder& r) {
    simmpi::FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < 800; ++i) {
      {
        simmpi::FunctionScope f(r, "hot", "hot.c");
        r.compute(0.18);
      }
      r.io(0.82);
      r.barrier();
    }
  });
  const simmpi::ExecutionTrace trace = simmpi::Simulator().run(b.build());
  const metrics::TraceView view(trace);

  pc::PcConfig ideal;
  pc::PcConfig noisy = ideal;
  noisy.perturbation_factor = 8.0;  // strong, to make the effect decisive
  pc::PerformanceConsultant pc_ideal(view, ideal);
  pc::PerformanceConsultant pc_noisy(view, noisy);
  const auto count_cpu = [](const pc::DiagnosisResult& r) {
    return std::count_if(r.bottlenecks.begin(), r.bottlenecks.end(), [](const auto& x) {
      return x.hypothesis == pc::kCpuBoundName;
    });
  };
  EXPECT_EQ(count_cpu(pc_ideal.run()), 0);
  EXPECT_GT(count_cpu(pc_noisy.run()), 0);
}

TEST(Perturbation, NegativeFactorRejected) {
  apps::AppParams p;
  p.target_duration = 30.0;
  simmpi::ExecutionTrace trace = apps::run_app("tester", p);
  metrics::TraceView view(trace);
  pc::PcConfig cfg;
  cfg.perturbation_factor = -1.0;
  EXPECT_THROW(pc::PerformanceConsultant(view, cfg), std::invalid_argument);
}

// ------------------------------------------------- dynamic resource discovery

/// Two phases: a solver runs alone for ~300s, then a "remesh" function
/// appears and dominates (an adaptive code changing behaviour mid-run).
simmpi::ExecutionTrace adaptive_trace() {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "amr"));
  b.record([](simmpi::Recorder& r) {
    simmpi::FunctionScope fmain(r, "main", "amr.c");
    for (int i = 0; i < 300; ++i) {
      simmpi::FunctionScope f(r, "solve", "solver.c");
      r.compute(1.0);
    }
    for (int i = 0; i < 500; ++i) {
      {
        simmpi::FunctionScope f(r, "remesh", "remesh.c");
        r.compute(0.7);
      }
      simmpi::FunctionScope f(r, "solve", "solver.c");
      r.compute(0.3);
    }
  });
  return simmpi::Simulator().run(b.build());
}

TEST(Discovery, TraceViewReportsFirstAppearance) {
  const simmpi::ExecutionTrace trace = adaptive_trace();
  const TraceView view(trace);
  EXPECT_DOUBLE_EQ(view.discovery_time("/Code/solver.c/solve"), 0.0);
  EXPECT_DOUBLE_EQ(view.discovery_time("/Code/solver.c"), 0.0);
  EXPECT_NEAR(view.discovery_time("/Code/remesh.c/remesh"), 300.0, 1.0);
  EXPECT_NEAR(view.discovery_time("/Code/remesh.c"), 300.0, 1.0);
  EXPECT_DOUBLE_EQ(view.discovery_time("/Machine/node01"), 0.0);
  EXPECT_DOUBLE_EQ(view.discovery_time("/Process/amr:1"), 0.0);
  EXPECT_DOUBLE_EQ(view.discovery_time("/Code"), 0.0);  // hierarchy roots
  EXPECT_TRUE(std::isinf(view.discovery_time("/Code/ghost.c")));
}

TEST(Discovery, PoissonResourcesAppearEarly) {
  apps::AppParams p;
  p.target_duration = 300.0;
  const simmpi::ExecutionTrace trace = apps::run_app("poisson_c", p);
  const TraceView view(trace);
  EXPECT_LT(view.discovery_time("/Code/exchng2.f/exchng2"), 5.0);
  EXPECT_LT(view.discovery_time("/SyncObject/Message/3:0"), 5.0);
  // printstats only runs every 200 iterations.
  EXPECT_GT(view.discovery_time("/Code/stats.f/printstats"), 100.0);
}

TEST(Discovery, RespectingDiscoveryDelaysRefinement) {
  const simmpi::ExecutionTrace trace = adaptive_trace();
  const TraceView view(trace);
  pc::PcConfig cfg;
  cfg.respect_discovery_times = true;
  pc::PerformanceConsultant consultant(view, cfg);
  const pc::DiagnosisResult r = consultant.run();
  double remesh_found = -1;
  for (const auto& b : r.bottlenecks)
    if (b.focus.find("/Code/remesh.c") != std::string::npos) remesh_found = b.t_found;
  ASSERT_GT(remesh_found, 0) << "remesh should eventually be diagnosed";
  EXPECT_GT(remesh_found, 300.0) << "but not before the resource exists";
}

TEST(Discovery, DefaultModeTestsUndiscoveredResourcesEarly) {
  // With hierarchies pre-populated (the default), nothing waits: the
  // remesh pair is created as soon as its parent tests true. It may
  // conclude false on pre-phase-2 data — exactly the artifact the
  // discovery-aware mode avoids.
  const simmpi::ExecutionTrace trace = adaptive_trace();
  const TraceView view(trace);
  pc::PerformanceConsultant consultant(view, pc::PcConfig{});
  const pc::DiagnosisResult r = consultant.run();
  double earliest_remesh_test = 1e18;
  for (const auto& n : r.nodes)
    if (n.focus.find("/Code/remesh.c") != std::string::npos && n.conclude_time >= 0)
      earliest_remesh_test = std::min(earliest_remesh_test, n.conclude_time);
  EXPECT_LT(earliest_remesh_test, 300.0);
}

// ------------------------------------------------------------- seismic app

TEST(Seismic, IoBlockingHypothesisPathExercised) {
  apps::AppParams p;
  p.target_duration = 1200.0;
  core::DiagnosisSession session("seismic", p);
  const pc::DiagnosisResult r = session.diagnose();
  auto has = [&](const std::string& hyp, const std::string& sub) {
    return std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [&](const auto& b) {
      return b.hypothesis == hyp && b.focus.find(sub) != std::string::npos;
    });
  };
  EXPECT_TRUE(has(std::string(pc::kIoBlockingName), "/Code"));
  EXPECT_TRUE(has(std::string(pc::kIoBlockingName), "/Code/traceio.c"));
  // The shared-filesystem ranks read slowest.
  EXPECT_TRUE(has(std::string(pc::kIoBlockingName), "/Process/seismic:1"));
}

}  // namespace
}  // namespace histpc
