#include <gtest/gtest.h>

#include <filesystem>

#include "history/analysis.h"
#include "history/combiner.h"
#include "history/compare.h"
#include "history/execution_map.h"
#include "history/exp_snapshot.h"
#include "history/experiment.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "history/report.h"
#include "history/store.h"
#include "util/log.h"

namespace histpc::history {
namespace {

using pc::DirectiveSet;
using pc::NodeStatus;
using pc::Priority;

ExperimentRecord sample_record() {
  ExperimentRecord r;
  r.app = "poisson";
  r.version = "A";
  r.duration = 1000.0;
  r.nranks = 4;
  r.machine_process_one_to_one = true;
  r.threshold_used = 0.20;
  r.pairs_tested = 42;
  r.resources = resources::ResourceDb::with_standard_hierarchies();
  r.resources.add_resource("/Code/oned.f/main");
  r.resources.add_resource("/Code/sweep.f/sweep1d");
  r.resources.add_resource("/Code/init.f/init");
  r.resources.add_resource("/Machine/poona01");
  r.resources.add_resource("/Process/poisson1d:1");
  r.nodes = {
      {"ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>",
       NodeStatus::True, Priority::Medium, 100.0, 0.45},
      {"CPUbound", "</Code/init.f,/Machine,/Process,/SyncObject>", NodeStatus::False,
       Priority::Medium, 120.0, 0.004},
      {"CPUbound", "</Code,/Machine,/Process,/SyncObject>", NodeStatus::True,
       Priority::Medium, 50.0, 0.35},
      {"ExcessiveIOBlockingTime", "</Code,/Machine,/Process,/SyncObject>",
       NodeStatus::NeverRan, Priority::Low, -1.0, 0.0},
  };
  r.bottlenecks = {
      {"ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>", 100.0,
       0.45},
      {"CPUbound", "</Code,/Machine,/Process,/SyncObject>", 50.0, 0.35},
  };
  r.code_usage = {{"/Code/oned.f", 0.40},      {"/Code/oned.f/main", 0.40},
                  {"/Code/sweep.f", 0.55},     {"/Code/sweep.f/sweep1d", 0.55},
                  {"/Code/init.f", 0.002},     {"/Code/init.f/init", 0.002}};
  return r;
}

// ------------------------------------------------------------- experiment

TEST(Experiment, JsonRoundTrip) {
  ExperimentRecord r = sample_record();
  r.run_id = "poisson_A_1";
  ExperimentRecord back = ExperimentRecord::from_json(
      util::Json::parse(r.to_json().dump(2)));
  EXPECT_EQ(back.app, r.app);
  EXPECT_EQ(back.version, r.version);
  EXPECT_EQ(back.run_id, r.run_id);
  EXPECT_DOUBLE_EQ(back.duration, r.duration);
  EXPECT_EQ(back.nranks, r.nranks);
  EXPECT_EQ(back.machine_process_one_to_one, true);
  EXPECT_EQ(back.pairs_tested, 42u);
  ASSERT_EQ(back.nodes.size(), r.nodes.size());
  EXPECT_EQ(back.nodes[0].status, NodeStatus::True);
  EXPECT_EQ(back.nodes[3].status, NodeStatus::NeverRan);
  EXPECT_EQ(back.nodes[3].priority, Priority::Low);
  ASSERT_EQ(back.bottlenecks.size(), 2u);
  EXPECT_DOUBLE_EQ(back.bottlenecks[0].fraction, 0.45);
  EXPECT_EQ(back.code_usage.size(), r.code_usage.size());
  EXPECT_EQ(back.resources.all_resource_names(), r.resources.all_resource_names());
}

// ------------------------------------------------------------------ store

class StoreTest : public testing::Test {
 protected:
  // Per-test store directory: ctest runs each case as its own process in
  // parallel, so a shared path would let one constructor wipe another
  // test's store mid-run.
  StoreTest()
      : dir_(testing::TempDir() + "/histpc_store_test_" +
             testing::UnitTest::GetInstance()->current_test_info()->name()) {
    std::filesystem::remove_all(dir_);
  }
  ~StoreTest() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(StoreTest, SaveAssignsSequentialRunIds) {
  ExperimentStore store(dir_);
  EXPECT_EQ(store.save(sample_record()), "poisson_A_1");
  EXPECT_EQ(store.save(sample_record()), "poisson_A_2");
  ExperimentRecord b = sample_record();
  b.version = "B";
  EXPECT_EQ(store.save(b), "poisson_B_1");
  EXPECT_EQ(store.list().size(), 3u);
  EXPECT_EQ(store.list("poisson", "A").size(), 2u);
  EXPECT_EQ(store.list("poisson", "B").size(), 1u);
  EXPECT_EQ(store.list("other").size(), 0u);
}

TEST_F(StoreTest, LoadRoundTrip) {
  ExperimentStore store(dir_);
  const std::string id = store.save(sample_record());
  auto r = store.load(id);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->app, "poisson");
  EXPECT_EQ(r->run_id, id);
  EXPECT_FALSE(store.load("missing").has_value());
}

TEST_F(StoreTest, LatestUsesNumericSequence) {
  ExperimentStore store(dir_);
  for (int i = 0; i < 11; ++i) store.save(sample_record());
  auto latest = store.latest("poisson", "A");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_11");  // not poisson_A_9 lexicographically
}

TEST_F(StoreTest, SaveAfterRemovalNeverReusesIds) {
  ExperimentStore store(dir_);
  store.save(sample_record());              // poisson_A_1
  store.save(sample_record());              // poisson_A_2
  EXPECT_TRUE(store.remove("poisson_A_1"));
  // A new save must not collide with the surviving poisson_A_2.
  EXPECT_EQ(store.save(sample_record()), "poisson_A_3");
  ASSERT_TRUE(store.load("poisson_A_2").has_value());
}

TEST_F(StoreTest, CorruptedRecordThrowsOnLoad) {
  ExperimentStore store(dir_);
  const std::string id = store.save(sample_record());
  util::write_file(dir_ + "/" + id + ".histexp", "HPCEXB1\nnot a snapshot");
  EXPECT_THROW(store.load(id), ExpSnapshotError);
  // Legacy JSON records fail just as loudly.
  const std::string json_id = "poisson_A_7";
  util::write_file(dir_ + "/" + json_id + ".json", "{not json");
  EXPECT_THROW(store.load(json_id), util::JsonError);
}

TEST_F(StoreTest, TruncatedRecordIsQuarantinedByLatest) {
  ExperimentStore store(dir_);
  store.save(sample_record());                          // poisson_A_1
  const std::string id2 = store.save(sample_record());  // poisson_A_2
  // Simulate a crash mid-write: chop the newest record in half.
  const std::string path = dir_ + "/" + id2 + ".histexp";
  const std::string full = util::read_file(path);
  util::write_file(path, full.substr(0, full.size() / 2));

  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& msg) {
    if (level == util::LogLevel::Warn) warnings.push_back(msg);
  });
  // latest() skips the damaged file instead of aborting the diagnosis...
  auto latest = store.latest("poisson", "A");
  util::set_log_sink({});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_1");
  // ...and quarantines it by logging the path.
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find(path), std::string::npos) << warnings[0];
  // Naming the damaged record explicitly still fails loudly.
  EXPECT_THROW(store.load(id2), ExpSnapshotError);
}

TEST_F(StoreTest, ForeignFilesAreSkippedNotAssociated) {
  ExperimentStore store(dir_);
  util::write_file(dir_ + "/poisson_A_junk.json", "not a record");
  util::write_file(dir_ + "/notes.json", "{\"anything\": true}");
  util::set_log_sink([](util::LogLevel, const std::string&) {});
  // Numbering ignores the junk (no numeric tail) and starts at 1.
  EXPECT_EQ(store.save(sample_record()), "poisson_A_1");
  // Filtered listing and latest() associate by stored fields, so the
  // foreign files never show up as poisson runs.
  EXPECT_EQ(store.list("poisson", "A"), std::vector<std::string>{"poisson_A_1"});
  auto latest = store.latest("poisson", "A");
  util::set_log_sink({});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_1");
  // The unfiltered listing is a plain directory view and still sees them.
  EXPECT_EQ(store.list().size(), 3u);
}

TEST_F(StoreTest, UnderscoreNamesCannotCrossMatch) {
  ExperimentStore store(dir_);
  ExperimentRecord r1 = sample_record();
  r1.app = "a";
  r1.version = "b_c";
  ExperimentRecord r2 = sample_record();
  r2.app = "a_b";
  r2.version = "c";
  // Both would have produced the id prefix "a_b_c_" before escaping, and
  // prefix-based list() would have associated each with the other.
  EXPECT_EQ(store.save(r1), "a_b-c_1");
  EXPECT_EQ(store.save(r2), "a-b_c_1");
  EXPECT_EQ(store.list("a", "b_c"), std::vector<std::string>{"a_b-c_1"});
  EXPECT_EQ(store.list("a_b", "c"), std::vector<std::string>{"a-b_c_1"});
  auto latest = store.latest("a", "b_c");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->app, "a");
  EXPECT_EQ(latest->version, "b_c");

  // An app/version pair that *natively* collides with an escaped id shares
  // the filename counter (so files stay unique) but not the association.
  ExperimentRecord r3 = sample_record();
  r3.app = "a";
  r3.version = "b-c";
  EXPECT_EQ(store.save(r3), "a_b-c_2");
  EXPECT_EQ(store.list("a", "b-c"), std::vector<std::string>{"a_b-c_2"});
  EXPECT_EQ(store.list("a", "b_c"), std::vector<std::string>{"a_b-c_1"});
}

TEST_F(StoreTest, RemoveDeletesRecord) {
  ExperimentStore store(dir_);
  const std::string id = store.save(sample_record());
  EXPECT_TRUE(store.remove(id));
  EXPECT_FALSE(store.remove(id));
  EXPECT_FALSE(store.load(id).has_value());
}

// -------------------------------------------------------------- generator

TEST(Generator, GeneralPrunes) {
  GeneratorOptions opts;
  opts.historic_prunes = false;
  opts.priorities = false;
  DirectiveSet d = DirectiveGenerator(opts).from_record(sample_record());
  // SyncObject pruned from the two non-sync hypotheses + redundant machine.
  auto has_prune = [&](const std::string& hyp, const std::string& res) {
    return std::any_of(d.prunes.begin(), d.prunes.end(), [&](const auto& p) {
      return p.hypothesis == hyp && p.resource_prefix == res;
    });
  };
  EXPECT_TRUE(has_prune("CPUbound", "/SyncObject"));
  EXPECT_TRUE(has_prune("ExcessiveIOBlockingTime", "/SyncObject"));
  EXPECT_FALSE(has_prune("ExcessiveSyncWaitingTime", "/SyncObject"));
  EXPECT_TRUE(has_prune("*", "/Machine"));
  EXPECT_TRUE(d.priorities.empty());
}

TEST(Generator, MachinePruneOnlyWhenRedundant) {
  ExperimentRecord rec = sample_record();
  rec.machine_process_one_to_one = false;
  GeneratorOptions opts;
  opts.historic_prunes = false;
  DirectiveSet d = DirectiveGenerator(opts).from_record(rec);
  EXPECT_FALSE(std::any_of(d.prunes.begin(), d.prunes.end(),
                           [](const auto& p) { return p.resource_prefix == "/Machine"; }));
}

TEST(Generator, HistoricPrunesSmallCodeOnly) {
  GeneratorOptions opts;
  opts.general_prunes = false;
  opts.priorities = false;
  DirectiveSet d = DirectiveGenerator(opts).from_record(sample_record());
  // init.f is negligible (0.2% of execution); only the module root is
  // emitted, the function inside is covered.
  ASSERT_EQ(d.prunes.size(), 1u);
  EXPECT_EQ(d.prunes[0].hypothesis, "*");
  EXPECT_EQ(d.prunes[0].resource_prefix, "/Code/init.f");
}

TEST(Generator, PrioritiesFromConclusions) {
  GeneratorOptions opts;
  opts.general_prunes = false;
  opts.historic_prunes = false;
  DirectiveSet d = DirectiveGenerator(opts).from_record(sample_record());
  ASSERT_EQ(d.priorities.size(), 3u);  // 2 true -> high, 1 false -> low; NeverRan skipped
  auto prio = [&](const std::string& hyp, const std::string& focus) {
    return d.priority_of(hyp, focus);
  };
  EXPECT_EQ(prio("ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>"),
            Priority::High);
  EXPECT_EQ(prio("CPUbound", "</Code,/Machine,/Process,/SyncObject>"), Priority::High);
  EXPECT_EQ(prio("CPUbound", "</Code/init.f,/Machine,/Process,/SyncObject>"), Priority::Low);
  EXPECT_EQ(prio("ExcessiveIOBlockingTime", "</Code,/Machine,/Process,/SyncObject>"),
            Priority::Medium);
}

TEST(Generator, MultiRunPrioritiesHighBeatsLow) {
  ExperimentRecord a = sample_record();
  ExperimentRecord b = sample_record();
  // In run b, the sync pair tested false.
  b.nodes[0].status = NodeStatus::False;
  GeneratorOptions opts;
  opts.general_prunes = false;
  opts.historic_prunes = false;
  DirectiveSet d = DirectiveGenerator(opts).from_records({a, b});
  EXPECT_EQ(d.priority_of("ExcessiveSyncWaitingTime",
                          "</Code/sweep.f,/Machine,/Process,/SyncObject>"),
            Priority::High);
}

TEST(Generator, ThresholdFromSmallestSignificantFraction) {
  GeneratorOptions opts;
  opts.general_prunes = false;
  opts.historic_prunes = false;
  opts.priorities = false;
  opts.thresholds = true;
  opts.significance_floor = 0.10;
  opts.threshold_margin = 0.95;
  DirectiveSet d = DirectiveGenerator(opts).from_record(sample_record());
  // Sync fractions >= 0.10: {0.45} -> 0.4275. CPU: {0.35} -> 0.3325;
  // the 0.004 false node is below the floor and ignored.
  auto sync = d.threshold_for("ExcessiveSyncWaitingTime");
  auto cpu = d.threshold_for("CPUbound");
  ASSERT_TRUE(sync && cpu);
  EXPECT_NEAR(*sync, 0.4275, 1e-9);
  EXPECT_NEAR(*cpu, 0.3325, 1e-9);
  EXPECT_FALSE(d.threshold_for("ExcessiveIOBlockingTime").has_value());
}

TEST(Generator, EmptyRecordListYieldsNothing) {
  EXPECT_TRUE(DirectiveGenerator().from_records({}).empty());
}

// ----------------------------------------------------------------- mapper

TEST(Mapper, PositionalMachineAndProcessMapping) {
  resources::ResourceDb a = resources::ResourceDb::with_standard_hierarchies();
  resources::ResourceDb b = resources::ResourceDb::with_standard_hierarchies();
  for (int i = 1; i <= 4; ++i) {
    a.add_resource("/Machine/poona0" + std::to_string(i));
    b.add_resource("/Machine/poona1" + std::to_string(i));
    a.add_resource("/Process/app:" + std::to_string(i));
    b.add_resource("/Process/app:" + std::to_string(i));  // identical: no map
  }
  auto maps = suggest_mappings(a, b);
  ASSERT_EQ(maps.size(), 4u);
  EXPECT_EQ(maps[0].from, "/Machine/poona01");
  EXPECT_EQ(maps[0].to, "/Machine/poona11");
}

TEST(Mapper, CodeSimilarityMapping) {
  // The paper's Figure 3 scenario: version A vs version B names.
  resources::ResourceDb a = resources::ResourceDb::with_standard_hierarchies();
  resources::ResourceDb b = resources::ResourceDb::with_standard_hierarchies();
  for (const char* r : {"/Code/oned.f/main", "/Code/sweep.f/sweep1d",
                        "/Code/exchng1.f/exchng1", "/Code/diff.f/diff"})
    a.add_resource(r);
  for (const char* r : {"/Code/onednb.f/main", "/Code/nbsweep.f/nbsweep",
                        "/Code/nbexchng.f/nbexchng1", "/Code/diff.f/diff"})
    b.add_resource(r);
  auto maps = suggest_mappings(a, b);
  auto mapped_to = [&](const std::string& from) -> std::string {
    for (const auto& m : maps)
      if (m.from == from) return m.to;
    return "";
  };
  EXPECT_EQ(mapped_to("/Code/oned.f"), "/Code/onednb.f");
  EXPECT_EQ(mapped_to("/Code/sweep.f"), "/Code/nbsweep.f");
  EXPECT_EQ(mapped_to("/Code/exchng1.f"), "/Code/nbexchng.f");
  // Shared module needs no mapping.
  EXPECT_EQ(mapped_to("/Code/diff.f"), "");
  // Function-level mappings resolve too.
  EXPECT_EQ(mapped_to("/Code/exchng1.f/exchng1"), "/Code/nbexchng.f/nbexchng1");
}

TEST(Mapper, SimilarityCutoffDropsDissimilar) {
  resources::ResourceDb a = resources::ResourceDb::with_standard_hierarchies();
  resources::ResourceDb b = resources::ResourceDb::with_standard_hierarchies();
  a.add_resource("/Code/alpha.c");
  b.add_resource("/Code/zzzzzz.c");
  MapperOptions opts;
  opts.min_similarity = 0.6;
  EXPECT_TRUE(suggest_mappings(a, b, opts).empty());
}

// ---------------------------------------------------------- execution map

TEST(ExecutionMap, TagsResourcesByMembership) {
  resources::ResourceDb a = resources::ResourceDb::with_standard_hierarchies();
  resources::ResourceDb b = resources::ResourceDb::with_standard_hierarchies();
  a.add_resource("/Code/oned.f/main");
  a.add_resource("/Code/diff.f/diff");
  b.add_resource("/Code/onednb.f/main");
  b.add_resource("/Code/diff.f/diff");
  ExecutionMap map = build_execution_map(a, b);
  EXPECT_EQ(map.tags.at("/Code/oned.f"), "1");
  EXPECT_EQ(map.tags.at("/Code/onednb.f"), "2");
  EXPECT_EQ(map.tags.at("/Code/diff.f"), "3");
  EXPECT_EQ(map.tags.at("/Code"), "3");
  auto u1 = map.unique_to(1);
  EXPECT_EQ(u1.size(), 2u);  // oned.f and oned.f/main
  std::string rendered = map.render();
  EXPECT_NE(rendered.find("oned.f [1]"), std::string::npos);
  EXPECT_NE(rendered.find("onednb.f [2]"), std::string::npos);
  EXPECT_NE(rendered.find("diff.f [3]"), std::string::npos);
}

// --------------------------------------------------------------- combiner

DirectiveSet priorities_only(std::vector<pc::PriorityDirective> ps) {
  DirectiveSet d;
  d.priorities = std::move(ps);
  return d;
}

TEST(Combiner, IntersectionRequiresAgreement) {
  DirectiveSet a = priorities_only({{"H", "<f1>", Priority::High},
                                    {"H", "<f2>", Priority::High},
                                    {"H", "<f3>", Priority::Low}});
  DirectiveSet b = priorities_only({{"H", "<f1>", Priority::High},
                                    {"H", "<f2>", Priority::Low},
                                    {"H", "<f3>", Priority::Low}});
  DirectiveSet c = combine(a, b, CombineMode::Intersection);
  EXPECT_EQ(c.priority_of("H", "<f1>"), Priority::High);
  EXPECT_EQ(c.priority_of("H", "<f2>"), Priority::Medium);  // disagreement
  EXPECT_EQ(c.priority_of("H", "<f3>"), Priority::Low);
}

TEST(Combiner, UnionHighWinsOverLow) {
  DirectiveSet a = priorities_only({{"H", "<f1>", Priority::High},
                                    {"H", "<f2>", Priority::Low}});
  DirectiveSet b = priorities_only({{"H", "<f2>", Priority::High},
                                    {"H", "<f3>", Priority::Low}});
  DirectiveSet c = combine(a, b, CombineMode::Union);
  EXPECT_EQ(c.priority_of("H", "<f1>"), Priority::High);
  EXPECT_EQ(c.priority_of("H", "<f2>"), Priority::High);  // true in either wins
  EXPECT_EQ(c.priority_of("H", "<f3>"), Priority::Low);
}

TEST(Combiner, UnionIsASupersetOfIntersection) {
  DirectiveSet a = priorities_only({{"H", "<f1>", Priority::High},
                                    {"H", "<f2>", Priority::High},
                                    {"H", "<f4>", Priority::Low}});
  DirectiveSet b = priorities_only({{"H", "<f1>", Priority::High},
                                    {"H", "<f3>", Priority::High},
                                    {"H", "<f4>", Priority::Low}});
  DirectiveSet inter = combine(a, b, CombineMode::Intersection);
  DirectiveSet uni = combine(a, b, CombineMode::Union);
  EXPECT_GE(uni.priorities.size(), inter.priorities.size());
  for (const auto& p : inter.priorities) {
    if (p.priority != Priority::High) continue;
    EXPECT_EQ(uni.priority_of(p.hypothesis, p.focus), Priority::High);
  }
}

TEST(Combiner, DedupsPrunesAndConcatenatesMaps) {
  DirectiveSet a, b;
  a.prunes.push_back({"*", "/Machine"});
  b.prunes.push_back({"*", "/Machine"});
  a.maps.push_back({"/Machine/a", "/Machine/b"});
  DirectiveSet c = combine(a, b, CombineMode::Union);
  EXPECT_EQ(c.prunes.size(), 1u);
  EXPECT_EQ(c.maps.size(), 1u);
}

// --------------------------------------------------------------- analysis

TEST(Analysis, PrioritySimilarityMasks) {
  // Three sets patterned after Table 4.
  DirectiveSet a = priorities_only({{"H", "<common>", Priority::High},
                                    {"H", "<a-only>", Priority::High},
                                    {"H", "<ab>", Priority::High},
                                    {"H", "<low-common>", Priority::Low}});
  DirectiveSet b = priorities_only({{"H", "<common>", Priority::High},
                                    {"H", "<ab>", Priority::High},
                                    {"H", "<low-common>", Priority::Low}});
  DirectiveSet c = priorities_only({{"H", "<common>", Priority::High},
                                    {"H", "<c-only>", Priority::Low},
                                    {"H", "<low-common>", Priority::Low}});
  PrioritySimilarity sim = priority_similarity({a, b, c});
  EXPECT_EQ(sim.high.count_for(0b111), 1u);  // <common>
  EXPECT_EQ(sim.high.count_for(0b001), 1u);  // <a-only>
  EXPECT_EQ(sim.high.count_for(0b011), 1u);  // <ab>
  EXPECT_EQ(sim.high.total, 3u);
  EXPECT_EQ(sim.low.count_for(0b111), 1u);   // <low-common>
  EXPECT_EQ(sim.low.count_for(0b100), 1u);   // <c-only>
  EXPECT_EQ(sim.both.total, 5u);
}

TEST(Analysis, BottleneckOverlap) {
  std::vector<std::vector<pc::BottleneckReport>> runs(3);
  runs[0] = {{"H", "<x>", 1, 0.5}, {"H", "<y>", 2, 0.5}};
  runs[1] = {{"H", "<x>", 1, 0.5}};
  runs[2] = {{"H", "<x>", 1, 0.5}, {"H", "<z>", 3, 0.5}};
  MembershipCounts overlap = bottleneck_overlap(runs);
  EXPECT_EQ(overlap.count_for(0b111), 1u);
  EXPECT_EQ(overlap.count_for(0b001), 1u);
  EXPECT_EQ(overlap.count_for(0b100), 1u);
  EXPECT_EQ(overlap.total, 3u);
}

TEST(Analysis, MaskLabels) {
  std::vector<std::string> names{"A", "B", "C"};
  EXPECT_EQ(mask_label(0b001, names), "A only");
  EXPECT_EQ(mask_label(0b011, names), "A,B");
  EXPECT_EQ(mask_label(0b111, names), "A,B,C");
  EXPECT_EQ(mask_label(0, names), "(none)");
}

// ---------------------------------------------------------------- compare

TEST(Compare, ClassifiesResolvedAppearedAndCommon) {
  ExperimentRecord a = sample_record();
  ExperimentRecord b = sample_record();
  b.bottlenecks = {
      // The sync pair persists with a smaller fraction...
      {"ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>", 90.0,
       0.30},
      // ...the CPU whole-program pair resolved, and a new one appeared.
      {"ExcessiveIOBlockingTime", "</Code,/Machine,/Process,/SyncObject>", 40.0, 0.25},
  };
  const RunComparison cmp = compare_records(a, b);
  ASSERT_EQ(cmp.resolved.size(), 1u);
  EXPECT_EQ(cmp.resolved[0].hypothesis, "CPUbound");
  ASSERT_EQ(cmp.appeared.size(), 1u);
  EXPECT_EQ(cmp.appeared[0].hypothesis, "ExcessiveIOBlockingTime");
  ASSERT_EQ(cmp.common.size(), 1u);
  EXPECT_NEAR(cmp.common[0].delta(), -0.15, 1e-9);

  const std::string text = render_comparison(cmp, "a1", "a2");
  EXPECT_NE(text.find("resolved: 1, appeared: 1, common: 1"), std::string::npos);
  EXPECT_NE(text.find("45.0% -> 30.0% (-15.0%)"), std::string::npos);
}

TEST(Compare, MapsRunANamesIntoRunBNamespace) {
  ExperimentRecord a = sample_record();
  ExperimentRecord b = sample_record();
  // Run B renamed the module; without the map nothing matches.
  b.bottlenecks = {{"ExcessiveSyncWaitingTime",
                    "</Code/nbsweep.f,/Machine,/Process,/SyncObject>", 100.0, 0.45},
                   {"CPUbound", "</Code,/Machine,/Process,/SyncObject>", 50.0, 0.35}};
  const RunComparison unmapped = compare_records(a, b);
  EXPECT_EQ(unmapped.common.size(), 1u);  // only the whole-program CPU pair
  const RunComparison mapped =
      compare_records(a, b, {{"/Code/sweep.f", "/Code/nbsweep.f"}});
  EXPECT_EQ(mapped.common.size(), 2u);
  EXPECT_TRUE(mapped.resolved.empty());
  EXPECT_TRUE(mapped.appeared.empty());
}

// ----------------------------------------------------------------- report

TEST(Report, CoversHeadlineBottlenecksAndHarvest) {
  ExperimentRecord rec = sample_record();
  rec.run_id = "poisson_A_1";
  // A refined bottleneck so the "dominant" section has content.
  rec.bottlenecks.push_back({"ExcessiveSyncWaitingTime",
                             "</Code/sweep.f/sweep1d,/Machine,/Process/poisson1d:1,/SyncObject>",
                             120.0, 0.52});
  const std::string report = tuning_report(rec);
  EXPECT_NE(report.find("# Tuning report: poisson version A"), std::string::npos);
  EXPECT_NE(report.find("Where the time goes"), std::string::npos);
  EXPECT_NE(report.find("CPUbound: 35.0% — significant"), std::string::npos);
  EXPECT_NE(report.find("Dominant bottlenecks"), std::string::npos);
  EXPECT_NE(report.find("52.0%"), std::string::npos);
  EXPECT_NE(report.find("Hot spots by view"), std::string::npos);
  EXPECT_NE(report.find("/Code/sweep.f (ExcessiveSyncWaitingTime)"), std::string::npos);
  EXPECT_NE(report.find("Knowledge harvested"), std::string::npos);
  EXPECT_NE(report.find("priority directives"), std::string::npos);
}

TEST(Report, EmptyRecordRendersGracefully) {
  ExperimentRecord rec = sample_record();
  rec.bottlenecks.clear();
  rec.nodes.clear();
  const std::string report = tuning_report(rec);
  EXPECT_NE(report.find("(no whole-program conclusions recorded)"), std::string::npos);
  EXPECT_NE(report.find("(no refined bottlenecks"), std::string::npos);
}

TEST(Report, PlainTextMode) {
  ReportOptions opts;
  opts.markdown = false;
  const std::string report = tuning_report(sample_record(), opts);
  EXPECT_EQ(report.find("# "), std::string::npos);
  EXPECT_NE(report.find("== Tuning report"), std::string::npos);
}

TEST(Analysis, FilterPrunedDropsExcludedFoci) {
  resources::ResourceDb db = resources::ResourceDb::with_standard_hierarchies();
  db.add_resource("/Machine/n1");
  db.add_resource("/Code/a.f");
  std::vector<pc::BottleneckReport> ref = {
      {"H", "</Code,/Machine/n1,/Process,/SyncObject>", 1, 0.5},
      {"H", "</Code/a.f,/Machine,/Process,/SyncObject>", 2, 0.5},
  };
  DirectiveSet d;
  d.prunes.push_back({"*", "/Machine"});
  auto filtered = filter_pruned(ref, d, db);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].focus, "</Code/a.f,/Machine,/Process,/SyncObject>");
}

}  // namespace
}  // namespace histpc::history
