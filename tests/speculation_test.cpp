// Speculative parallel search: property tests that the multi-threaded
// Performance Consultant is observably identical to the serial oracle.
//
// The speculation layer (PcConfig::search_threads >= 2) pre-evaluates
// likely refinement candidates on a worker pool and serves their verdicts
// from a cache when the cost gate admits them. Its correctness contract is
// bit-identity: the conclusion stream, the full SHG, the stats, and the
// stored experiment record must match the serial run exactly, for every
// thread count, regardless of prediction accuracy or scheduling. These
// tests run full diagnoses at search_threads 1, 2, and 4 over the same
// randomized workloads and directive sets the focus-intern oracle uses and
// require exact equality — plus unit tests for the tick predictor, the
// SpecGroup replay (bit-identical to a live MetricBatch slot), and the
// worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "history/experiment.h"
#include "metrics/metric_batch.h"
#include "metrics/spec_eval.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/directives.h"
#include "pc/shg.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace histpc::pc {
namespace {

using metrics::TraceView;
using simmpi::FunctionScope;
using simmpi::Recorder;

/// Same randomized bottleneck workload as the focus-intern oracle tests:
/// the upper half of the ranks waits on the lower half inside "exchange",
/// with rng-varied rank count, compute asymmetry, tag, and an optional
/// extra hot function so different seeds exercise different SHG shapes —
/// and hence different speculation waves, cache hits, and mispredictions.
simmpi::ExecutionTrace random_trace(util::Rng& rng) {
  const int pairs = 1 + static_cast<int>(rng.next_below(2));  // 2 or 4 ranks
  const int ranks = 2 * pairs;
  const int tag = 3 + static_cast<int>(rng.next_below(5));
  const double fast = 0.1 + 0.1 * static_cast<double>(rng.next_below(3));
  const bool extra_func = rng.next_below(2) == 0;
  const int iters = 900;
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(ranks, "node", "app"));
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < iters; ++i) {
      {
        FunctionScope f(r, "work", "work.c");
        r.compute(r.rank() >= pairs ? fast : 1.0);
      }
      if (extra_func) {
        FunctionScope f(r, "checkpoint", "io.c");
        r.compute(0.05);
      }
      {
        FunctionScope f(r, "exchange", "comm.c");
        if (r.rank() >= pairs) {
          r.recv(r.rank() - pairs, tag);
        } else {
          r.send(r.rank() + pairs, tag, 64);
        }
        r.barrier();
      }
    }
  });
  simmpi::NetworkModel net;
  net.latency = 1e-4;
  return simmpi::Simulator(net).run(b.build());
}

/// Random directive sets spanning every directive kind, so speculation is
/// tested against prunes (candidates that never enter the queue),
/// priorities (queue order changes shift the admission set), and threshold
/// overrides (conclusion flips).
DirectiveSet random_directives(util::Rng& rng) {
  std::string text;
  if (rng.next_below(2) == 0) text += "prune * /Machine\n";
  if (rng.next_below(2) == 0) text += "prune CPUbound /SyncObject\n";
  if (rng.next_below(2) == 0) text += "prune ExcessiveSyncWaitingTime /Code/work.c\n";
  if (rng.next_below(2) == 0) text += "prune * /Process\n";
  if (rng.next_below(2) == 0)
    text += "prunepair CPUbound </Code/comm.c,/Machine,/Process,/SyncObject>\n";
  if (rng.next_below(2) == 0)
    text +=
        "priority ExcessiveSyncWaitingTime "
        "</Code/comm.c,/Machine,/Process,/SyncObject> high\n";
  if (rng.next_below(2) == 0)
    text += "priority CPUbound </Code/work.c,/Machine,/Process,/SyncObject> high\n";
  if (rng.next_below(2) == 0)
    text += "priority CPUbound </Code,/Machine,/Process,/SyncObject> low\n";
  if (rng.next_below(2) == 0) text += "threshold ExcessiveSyncWaitingTime 0.15\n";
  if (rng.next_below(2) == 0) text += "threshold * 0.25\n";
  return DirectiveSet::parse(text);
}

PcConfig quick_config(int search_threads) {
  PcConfig cfg;
  cfg.min_observation = 10.0;
  cfg.tick = 0.5;
  cfg.insertion_latency = 1.0;
  cfg.cost_limit = 0.05;
  cfg.interned_foci = true;
  cfg.search_threads = search_threads;
  return cfg;
}

/// Everything conclusion-relevant must match exactly. Engine-internal
/// telemetry (metrics.batch.* tick counts, pc.spec.* bookkeeping,
/// phase_seconds wall clock) legitimately differs between serial and
/// speculative runs — a speculated probe is evaluated in a private batch,
/// not the live one — and is deliberately not compared here.
void expect_identical(const DiagnosisResult& spec, const DiagnosisResult& serial) {
  ASSERT_EQ(spec.bottlenecks.size(), serial.bottlenecks.size());
  for (std::size_t i = 0; i < spec.bottlenecks.size(); ++i) {
    const auto& a = spec.bottlenecks[i];
    const auto& b = serial.bottlenecks[i];
    EXPECT_EQ(a.hypothesis, b.hypothesis) << "bottleneck " << i;
    EXPECT_EQ(a.focus, b.focus) << "bottleneck " << i;
    EXPECT_DOUBLE_EQ(a.t_found, b.t_found) << "bottleneck " << i;
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "bottleneck " << i;
  }

  ASSERT_EQ(spec.nodes.size(), serial.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const auto& a = spec.nodes[i];
    const auto& b = serial.nodes[i];
    EXPECT_EQ(a.hypothesis, b.hypothesis) << "node " << i;
    EXPECT_EQ(a.focus, b.focus) << "node " << i;
    EXPECT_EQ(a.status, b.status) << "node " << i;
    EXPECT_EQ(a.priority, b.priority) << "node " << i;
    EXPECT_DOUBLE_EQ(a.conclude_time, b.conclude_time) << "node " << i;
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "node " << i;
  }

  EXPECT_EQ(spec.stats.nodes_created, serial.stats.nodes_created);
  EXPECT_EQ(spec.stats.pairs_tested, serial.stats.pairs_tested);
  EXPECT_EQ(spec.stats.pruned_candidates, serial.stats.pruned_candidates);
  EXPECT_EQ(spec.stats.bottlenecks, serial.stats.bottlenecks);
  EXPECT_DOUBLE_EQ(spec.stats.end_time, serial.stats.end_time);
  EXPECT_DOUBLE_EQ(spec.stats.last_true_time, serial.stats.last_true_time);
  EXPECT_DOUBLE_EQ(spec.stats.peak_cost, serial.stats.peak_cost);

  EXPECT_EQ(spec.telemetry.pairs_tested, serial.telemetry.pairs_tested);
  EXPECT_EQ(spec.telemetry.conclusions_true, serial.telemetry.conclusions_true);
  EXPECT_EQ(spec.telemetry.conclusions_false, serial.telemetry.conclusions_false);
  EXPECT_EQ(spec.telemetry.refinements, serial.telemetry.refinements);
  EXPECT_EQ(spec.telemetry.prune_hits_subtree, serial.telemetry.prune_hits_subtree);
  EXPECT_EQ(spec.telemetry.prune_hits_pair, serial.telemetry.prune_hits_pair);
  EXPECT_EQ(spec.telemetry.priority_seeds, serial.telemetry.priority_seeds);
  EXPECT_EQ(spec.telemetry.cost_gate_engagements,
            serial.telemetry.cost_gate_engagements);
  EXPECT_DOUBLE_EQ(spec.telemetry.peak_cost, serial.telemetry.peak_cost);
  EXPECT_DOUBLE_EQ(spec.telemetry.avg_cost, serial.telemetry.avg_cost);
}

/// The tentpole acceptance property: for randomized workloads and
/// directive sets, search_threads in {1, 2, 4} produce bit-identical
/// conclusion streams, SHG snapshots, Figure-2 renderings, and stored
/// experiment records.
class SpeculationOracle : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SpeculationOracle, ParallelSearchMatchesSerialOracleExactly) {
  util::Rng rng(GetParam());
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  const DirectiveSet directives = random_directives(rng);

  PerformanceConsultant serial_pc(view, quick_config(1), directives);
  const DiagnosisResult serial = serial_pc.run();
  const std::string serial_shg = serial_pc.shg().render();
  const std::string serial_record =
      history::make_record("app", "1", view, serial, 0.20).to_json().dump();

  for (const int threads : {2, 4}) {
    PerformanceConsultant spec_pc(view, quick_config(threads), directives);
    const DiagnosisResult spec = spec_pc.run();
    SCOPED_TRACE("search_threads=" + std::to_string(threads));
    expect_identical(spec, serial);
    EXPECT_EQ(spec_pc.shg().render(), serial_shg);
    EXPECT_EQ(history::make_record("app", "1", view, spec, 0.20).to_json().dump(),
              serial_record);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeculationOracle,
                         testing::Range<std::uint64_t>(1, 13));

/// Guard against the layer silently never engaging: the scheduler's
/// launch/claim bookkeeping is decision-thread-deterministic (claims
/// depend only on which keys were launched, never on worker timing), so a
/// fixed seed must both launch and hit. The serial run reports all zeros.
TEST(Speculation, SpeculativeRunLaunchesAndHits) {
  util::Rng rng(5);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);

  PerformanceConsultant serial_pc(view, quick_config(1));
  const DiagnosisResult serial = serial_pc.run();
  EXPECT_EQ(serial.telemetry.spec_launched, 0u);
  EXPECT_EQ(serial.telemetry.spec_hits, 0u);

  PerformanceConsultant spec_pc(view, quick_config(2));
  const DiagnosisResult spec = spec_pc.run();
  EXPECT_GT(spec.telemetry.spec_launched, 0u);
  EXPECT_GT(spec.telemetry.spec_hits, 0u);
  EXPECT_GT(spec.telemetry.spec_hit_rate, 0.0);
  EXPECT_LE(spec.telemetry.spec_hit_rate, 1.0);
  EXPECT_EQ(spec.telemetry.spec_hits + spec.telemetry.spec_discarded,
            spec.telemetry.spec_launched);
}

/// search_threads = 0 means "all hardware threads" — still bit-identical.
TEST(Speculation, ZeroThreadsResolvesToHardwareAndStaysIdentical) {
  util::Rng rng(7);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);

  PerformanceConsultant serial_pc(view, quick_config(1));
  const DiagnosisResult serial = serial_pc.run();
  PerformanceConsultant spec_pc(view, quick_config(0));
  const DiagnosisResult spec = spec_pc.run();
  expect_identical(spec, serial);
  EXPECT_EQ(spec_pc.shg().render(), serial_pc.shg().render());
}

/// The tick predictor is the scheduler's whole theory of time: it must
/// agree with a literal replay of the consultant recurrence.
TEST(SpecEval, PredictConcludeTickMatchesLiteralReplay) {
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const double tick = 0.1 + 0.1 * static_cast<double>(rng.next_below(10));
    const double latency = 0.25 * static_cast<double>(rng.next_below(8));
    const double min_obs = 0.5 + 0.5 * static_cast<double>(rng.next_below(40));
    const double horizon = 5.0 + static_cast<double>(rng.next_below(40));
    const double activate =
        tick * static_cast<double>(rng.next_below(20));  // some earlier tick

    const double predicted = metrics::predict_conclude_tick(
        activate, latency, min_obs, tick, horizon);

    const double start = activate + latency;
    double expected = std::numeric_limits<double>::infinity();
    double t = activate;
    while (t < horizon) {
      t = std::min(t + tick, horizon);
      if (std::max(0.0, t - start) >= min_obs) {
        expected = t;
        break;
      }
    }
    ASSERT_EQ(predicted, expected)
        << "tick=" << tick << " latency=" << latency << " min_obs=" << min_obs
        << " horizon=" << horizon << " activate=" << activate;
    if (std::isfinite(predicted)) {
      EXPECT_GT(predicted, activate);
      EXPECT_LE(predicted, horizon);
    }
  }
}

TEST(SpecEval, PredictConcludeTickInfiniteWhenHorizonTooShort) {
  EXPECT_TRUE(std::isinf(
      metrics::predict_conclude_tick(0.0, 1.0, 100.0, 0.5, 10.0)));
}

/// The bit-identity core: a SpecGroup's replay from an activation tick
/// must reproduce, to the last bit, what a slot added to the consultant's
/// live batch at that tick observes at the conclusion tick — including the
/// prefix consumed before the slot existed.
TEST(SpecEval, GroupReplayMatchesLiveBatchSlotBitExactly) {
  util::Rng rng(3);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  const double tick = 0.5;
  const double latency = 1.0;
  const double min_obs = 10.0;
  const double horizon = trace.duration;

  const resources::Focus whole = resources::Focus::whole_program(view.resources());
  const metrics::FocusFilter& filter = view.compiled(whole);

  for (const double activate : {0.0, 4.5, 42.0}) {
    // Live path: batch ticked from 0 with the consultant recurrence, slot
    // added mid-flight at the activation tick, read at the conclusion tick.
    const double conclude =
        metrics::predict_conclude_tick(activate, latency, min_obs, tick, horizon);
    ASSERT_TRUE(std::isfinite(conclude));

    metrics::MetricBatch live(view);
    metrics::MetricBatch::SlotId slot = -1;
    double t = 0.0;
    live.advance_all(t);
    if (activate == 0.0) slot = live.add(metrics::MetricKind::CpuTime, filter, latency);
    while (t < conclude) {
      t = std::min(t + tick, horizon);
      if (slot < 0 && t >= activate)
        slot = live.add(metrics::MetricKind::CpuTime, filter, activate + latency);
      live.advance_all(t);
    }

    // Speculative path: private group replay from the activation tick.
    metrics::SpecGroup group({{metrics::MetricKind::CpuTime, &filter}}, activate,
                             latency, min_obs, tick, horizon);
    ASSERT_EQ(group.conclude_time(), conclude);
    group.run(view);
    ASSERT_TRUE(group.ready());
    const metrics::SpecSample& s = group.wait_sample(0);

    SCOPED_TRACE("activate=" + std::to_string(activate));
    EXPECT_EQ(s.value, live.value(slot));        // bitwise, not approximate
    EXPECT_EQ(s.observed, live.observed(slot));
    EXPECT_EQ(s.fraction, live.fraction(slot));
    EXPECT_TRUE(s.concluded);
    EXPECT_GT(group.eval_ns(), 0u);
  }
}

TEST(SpecEval, CancelledGroupPublishesEmptyAndCountsNoWork) {
  util::Rng rng(3);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  const metrics::FocusFilter& filter =
      view.compiled(resources::Focus::whole_program(view.resources()));

  metrics::SpecGroup group({{metrics::MetricKind::CpuTime, &filter}}, 0.0, 1.0,
                           10.0, 0.5, trace.duration);
  EXPECT_FALSE(group.ready());
  group.cancel();
  group.run(view);
  EXPECT_TRUE(group.ready());  // publishes done even when cancelled
  EXPECT_EQ(group.eval_ns(), 0u);
}

TEST(ThreadPool, RunsEveryTaskAndWaitsIdle) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitFromInsideTaskAndDestructorDrains) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i)
      pool.submit([&ran, &pool] {
        ran.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
  }  // destructor drains the nested submissions
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(util::ThreadPool::resolve(0), 1);
  EXPECT_GE(util::ThreadPool::resolve(-3), 1);
  EXPECT_EQ(util::ThreadPool::resolve(4), 4);
  EXPECT_EQ(util::ThreadPool::resolve(1), 1);
}

}  // namespace
}  // namespace histpc::pc
