#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "history/store.h"
#include "telemetry/event.h"
#include "telemetry/perf_record.h"
#include "util/json.h"
#include "util/log.h"
#include "util/strings.h"

namespace histpc::cli {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------- args

TEST(Args, ParsesPositionalsOptionsAndFlags) {
  Args args = Args::parse({"poisson_c", "--duration", "300", "--shg", "extra"},
                          {"duration"}, {"shg"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positional(0, "app"), "poisson_c");
  EXPECT_EQ(args.positional(1, "extra"), "extra");
  EXPECT_TRUE(args.has_flag("shg"));
  EXPECT_DOUBLE_EQ(args.option_or("duration", 0.0), 300.0);
  EXPECT_EQ(args.option_or("missing", std::string("dflt")), "dflt");
  EXPECT_EQ(args.option_or("missing", 7), 7);
}

TEST(Args, ErrorsAreSpecific) {
  EXPECT_THROW(Args::parse({"--unknown"}, {}, {}), ArgsError);
  EXPECT_THROW(Args::parse({"--duration"}, {"duration"}, {}), ArgsError);
  Args args = Args::parse({"--duration", "abc"}, {"duration"}, {});
  EXPECT_THROW(args.option_or("duration", 0.0), ArgsError);
  EXPECT_THROW(args.option_or("duration", 0), ArgsError);
  EXPECT_THROW(args.positional(5, "thing"), ArgsError);
}

TEST(Args, RejectsTrailingGarbageInNumbers) {
  // "8x" silently parsed as 8 once; strict parsing must reject anything
  // short of a full numeric token.
  Args args = Args::parse({"--duration", "300x", "--window", "5x", "--bins", "1e2"},
                          {"duration", "window", "bins"}, {});
  EXPECT_THROW(args.option_or("duration", 0.0), ArgsError);
  EXPECT_THROW(args.option_or("window", 0), ArgsError);
  // "1e2" is a fine double but not an integer.
  EXPECT_DOUBLE_EQ(args.option_or("bins", 0.0), 100.0);
  EXPECT_THROW(args.option_or("bins", 0), ArgsError);
}

// --------------------------------------------------------------- commands

class CliTest : public testing::Test {
 protected:
  // Per-test store directory: ctest runs each case as its own process in
  // parallel, so a shared path would let one constructor wipe another
  // test's store mid-run.
  CliTest()
      : store_dir_(testing::TempDir() + "/histpc_cli_store_" +
                   testing::UnitTest::GetInstance()->current_test_info()->name()) {
    fs::remove_all(store_dir_);
  }
  ~CliTest() override { fs::remove_all(store_dir_); }

  std::string run(const std::string& command, std::vector<std::string> tokens) {
    std::ostringstream out;
    EXPECT_EQ(run_command(command, tokens, out), 0) << command;
    return out.str();
  }

  std::string store_dir_;
};

TEST_F(CliTest, AppsListsRegistry) {
  const std::string out = run("apps", {});
  EXPECT_NE(out.find("poisson_c"), std::string::npos);
  EXPECT_NE(out.find("ocean"), std::string::npos);
  EXPECT_NE(out.find("seismic"), std::string::npos);
}

TEST_F(CliTest, ReportSummarizesTrace) {
  const std::string out = run("report", {"tester", "--duration", "50"});
  EXPECT_NE(out.find("rank 0"), std::string::npos);
  EXPECT_NE(out.find("whole-program fractions"), std::string::npos);
}

TEST_F(CliTest, RunStoresAndListShows) {
  const std::string out = run("run", {"poisson_c", "--duration", "300", "--store",
                                      store_dir_, "--version", "C"});
  EXPECT_NE(out.find("bottlenecks:"), std::string::npos);
  EXPECT_NE(out.find("stored experiment record 'poisson_C_1'"), std::string::npos);

  const std::string listing = run("list", {"--store", store_dir_});
  EXPECT_NE(listing.find("poisson_C_1"), std::string::npos);

  const std::string shown = run("show", {"poisson_C_1", "--store", store_dir_});
  EXPECT_NE(shown.find("version C"), std::string::npos);
  EXPECT_NE(shown.find("ExcessiveSyncWaitingTime"), std::string::npos);
}

TEST_F(CliTest, ListSkipsCorruptRecords) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  // A record damaged on disk (or a foreign .json dropped in the store
  // directory) must not abort the listing — it is skipped with a warning.
  util::write_file(store_dir_ + "/poisson_C_9.json", "{truncated");
  util::set_log_sink([](util::LogLevel, const std::string&) {});
  const std::string listing = run("list", {"--store", store_dir_});
  util::set_log_sink({});
  EXPECT_NE(listing.find("poisson_C_1"), std::string::npos);
  EXPECT_EQ(listing.find("poisson_C_9"), std::string::npos);
}

TEST_F(CliTest, HarvestRoundTripsThroughRunDirectives) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  const std::string dir_file = store_dir_ + "/directives.txt";
  const std::string harvested =
      run("harvest", {"poisson_C_1", "--store", store_dir_, "--out", dir_file});
  EXPECT_NE(harvested.find("priorities"), std::string::npos);
  ASSERT_TRUE(fs::exists(dir_file));
  const std::string directed =
      run("run", {"poisson_c", "--duration", "300", "--directives", dir_file});
  EXPECT_NE(directed.find("bottlenecks:"), std::string::npos);
}

TEST_F(CliTest, HarvestToStdoutRespectsOptionFlags) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  const std::string text = run(
      "harvest", {"poisson_C_1", "--store", store_dir_, "--no-priorities", "--thresholds"});
  EXPECT_EQ(text.find("priority "), std::string::npos);
  EXPECT_NE(text.find("threshold "), std::string::npos);
  EXPECT_NE(text.find("prune "), std::string::npos);
}

TEST_F(CliTest, MapAndDiffBetweenStoredRuns) {
  run("run", {"poisson_a", "--duration", "300", "--store", store_dir_, "--version", "A"});
  run("run", {"poisson_b", "--duration", "300", "--store", store_dir_, "--version", "B"});
  const std::string maps =
      run("map", {"poisson_A_1", "poisson_B_1", "--store", store_dir_});
  EXPECT_NE(maps.find("map /Code/oned.f /Code/onednb.f"), std::string::npos);
  const std::string diff =
      run("diff", {"poisson_A_1", "poisson_B_1", "--store", store_dir_});
  EXPECT_NE(diff.find("oned.f [1]"), std::string::npos);
  EXPECT_NE(diff.find("onednb.f [2]"), std::string::npos);
}

TEST_F(CliTest, VariantsRunsTheTable1Bundle) {
  const std::string out = run("variants", {"bubba", "--duration", "150", "--threads", "2"});
  EXPECT_NE(out.find("No Directives"), std::string::npos);
  EXPECT_NE(out.find("Priorities & All Prunes"), std::string::npos);
  EXPECT_NE(out.find("worker thread(s)"), std::string::npos);
  EXPECT_NE(out.find("pairs tested"), std::string::npos);
}

TEST_F(CliTest, SaveAndDiagnoseTrace) {
  const std::string trace_file = store_dir_ + "/trace.json";
  fs::create_directories(store_dir_);
  run("run", {"bubba", "--duration", "300", "--save-trace", trace_file});
  ASSERT_TRUE(fs::exists(trace_file));
  const std::string out = run("diagnose-trace", {trace_file});
  EXPECT_NE(out.find("CPUbound"), std::string::npos);
}

TEST_F(CliTest, RunPostmortemAndExtended) {
  const std::string out =
      run("run", {"poisson_c", "--duration", "300", "--postmortem", "--extended"});
  EXPECT_NE(out.find("postmortem evaluation"), std::string::npos);
  EXPECT_NE(out.find("ExcessiveMessageWaitingTime"), std::string::npos);
}

TEST_F(CliTest, TraceCacheMissesThenHits) {
  const std::string cache_dir = store_dir_ + "/trace-cache";
  const std::string cold =
      run("run", {"poisson_c", "--duration", "300", "--trace-cache", cache_dir});
  EXPECT_NE(cold.find("trace cache: miss (" + cache_dir + ")"), std::string::npos);

  std::size_t snapshots = 0;
  for (const auto& de : fs::directory_iterator(cache_dir))
    snapshots += de.path().extension() == ".htb";
  EXPECT_EQ(snapshots, 1u);

  const std::string warm =
      run("run", {"poisson_c", "--duration", "300", "--trace-cache", cache_dir});
  EXPECT_NE(warm.find("trace cache: hit (" + cache_dir + ")"), std::string::npos);
  // Identical diagnosis either way (everything after the cache-status line).
  const auto after_cache = [](const std::string& s) {
    return s.substr(s.find('\n', s.find("trace cache:")) + 1);
  };
  EXPECT_EQ(after_cache(cold), after_cache(warm));
}

TEST_F(CliTest, NoTraceCacheSwitchesTheCacheOff) {
  const std::string out =
      run("run", {"poisson_c", "--duration", "300", "--no-trace-cache"});
  EXPECT_EQ(out.find("trace cache:"), std::string::npos);
  EXPECT_NE(out.find("bottlenecks:"), std::string::npos);
}

TEST_F(CliTest, TraceCacheQuarantinesCorruptSnapshotsAndStillDiagnoses) {
  const std::string cache_dir = store_dir_ + "/trace-cache";
  run("run", {"poisson_c", "--duration", "300", "--trace-cache", cache_dir});
  for (const auto& de : fs::directory_iterator(cache_dir))
    if (de.path().extension() == ".htb")
      util::write_file(de.path().string(), "definitely not a snapshot");

  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& line) {
    if (level == util::LogLevel::Warn) warnings.push_back(line);
  });
  const std::string out =
      run("run", {"poisson_c", "--duration", "300", "--trace-cache", cache_dir});
  util::set_log_sink({});

  // The corrupt file is sidelined, the run falls back to simulation, and
  // the diagnosis still completes.
  EXPECT_NE(out.find("trace cache: miss"), std::string::npos);
  EXPECT_NE(out.find("bottlenecks:"), std::string::npos);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("quarantining corrupt trace snapshot"), std::string::npos);
  bool quarantined = false;
  for (const auto& de : fs::directory_iterator(cache_dir))
    quarantined |= de.path().extension() == ".quarantined";
  EXPECT_TRUE(quarantined);
}

TEST_F(CliTest, VariantsUsesTheTraceCache) {
  const std::string cache_dir = store_dir_ + "/trace-cache";
  run("variants", {"bubba", "--duration", "150", "--trace-cache", cache_dir});
  const std::string warm =
      run("variants", {"bubba", "--duration", "150", "--trace-cache", cache_dir});
  EXPECT_NE(warm.find("trace cache: hit"), std::string::npos);
}

TEST_F(CliTest, DotExportWritesFile) {
  const std::string dot_file = store_dir_ + "/shg.dot";
  fs::create_directories(store_dir_);
  run("run", {"bubba", "--duration", "300", "--dot", dot_file});
  ASSERT_TRUE(fs::exists(dot_file));
  const std::string dot = histpc::util::read_file(dot_file);
  EXPECT_NE(dot.find("digraph shg"), std::string::npos);
}

TEST_F(CliTest, ErrorsSurfaceAsExceptions) {
  std::ostringstream out;
  EXPECT_THROW(run_command("bogus", {}, out), ArgsError);
  EXPECT_THROW(run_command("show", {"missing_run", "--store", store_dir_}, out), ArgsError);
  EXPECT_THROW(run_command("run", {}, out), ArgsError);
}

TEST_F(CliTest, HarvestMultipleRunsAndCombine) {
  run("run", {"poisson_a", "--duration", "300", "--store", store_dir_, "--version", "A"});
  run("run", {"poisson_b", "--duration", "300", "--store", store_dir_, "--version", "B"});
  const std::string pooled =
      run("harvest", {"poisson_A_1", "poisson_B_1", "--store", store_dir_});
  EXPECT_NE(pooled.find("priority "), std::string::npos);
  const std::string intersect = run(
      "harvest",
      {"poisson_A_1", "poisson_B_1", "--store", store_dir_, "--combine", "intersect"});
  const std::string uni = run(
      "harvest", {"poisson_A_1", "poisson_B_1", "--store", store_dir_, "--combine", "union"});
  // The union is never smaller than the intersection.
  auto count = [](const std::string& text) {
    std::size_t n = 0, pos = 0;
    while ((pos = text.find("priority ", pos)) != std::string::npos) {
      ++n;
      pos += 9;
    }
    return n;
  };
  EXPECT_GE(count(uni), count(intersect));
  std::ostringstream sink;
  EXPECT_THROW(run_command("harvest", {"poisson_A_1", "--store", store_dir_, "--combine",
                                       "intersect"},
                           sink),
               ArgsError);
  EXPECT_THROW(run_command("harvest", {"poisson_A_1", "poisson_B_1", "--store", store_dir_,
                                       "--combine", "bogus"},
                           sink),
               ArgsError);
}

TEST_F(CliTest, HarvestWeightedAndSimilarTo) {
  for (int i = 0; i < 3; ++i)
    run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});

  const std::string weighted =
      run("harvest", {"poisson_C_1", "poisson_C_2", "poisson_C_3", "--store", store_dir_,
                      "--combine", "weighted", "--half-life", "2"});
  EXPECT_NE(weighted.find("priority "), std::string::npos);

  // --similar-to pulls in stored runs automatically and reports each pick.
  const std::string similar =
      run("harvest", {"--store", store_dir_, "--similar-to", "poisson_C_3", "--combine",
                      "weighted", "--max-runs", "2"});
  EXPECT_NE(similar.find("# similar run poisson_C_1"), std::string::npos);
  EXPECT_NE(similar.find("# similar run poisson_C_2"), std::string::npos);
  EXPECT_EQ(similar.find("# similar run poisson_C_3"), std::string::npos);  // the reference

  std::ostringstream sink;
  EXPECT_THROW(run_command("harvest", {"--store", store_dir_, "--similar-to", "poisson_C_3",
                                       "--min-similarity", "1.5x"},
                           sink),
               ArgsError);
}

TEST_F(CliTest, MigrateConvertsLegacyJsonStore) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  // Demote the record to a legacy JSON-only store.
  const std::string json = store_dir_ + "/legacy_C_1.json";
  auto record = history::ExperimentStore(store_dir_).load("poisson_C_1");
  ASSERT_TRUE(record.has_value());
  record->run_id = "legacy_C_1";
  util::write_file(json, record->to_json().dump(2));

  const std::string out = run("migrate", {"--store", store_dir_});
  EXPECT_NE(out.find("migrated 1 legacy JSON record(s)"), std::string::npos);
  EXPECT_TRUE(fs::exists(store_dir_ + "/legacy_C_1.histexp"));

  const std::string again = run("migrate", {"--store", store_dir_});
  EXPECT_NE(again.find("migrated 0"), std::string::npos);
}

TEST_F(CliTest, MigrateJobsIsDeterministic) {
  // --jobs N only parallelizes the parse/encode work; the summary line and
  // resulting store are identical for every thread count.
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  auto record = history::ExperimentStore(store_dir_).load("poisson_C_1");
  ASSERT_TRUE(record.has_value());
  for (int i = 1; i <= 4; ++i) {
    record->run_id = "legacy_C_" + std::to_string(i);
    util::write_file(store_dir_ + "/" + record->run_id + ".json", record->to_json().dump(2));
  }

  const std::string out = run("migrate", {"--store", store_dir_, "--jobs", "4"});
  EXPECT_NE(out.find("migrated 4 legacy JSON record(s)"), std::string::npos);
  for (int i = 1; i <= 4; ++i)
    EXPECT_TRUE(fs::exists(store_dir_ + "/legacy_C_" + std::to_string(i) + ".histexp"));
  EXPECT_NE(run("migrate", {"--store", store_dir_, "--jobs", "4"}).find("migrated 0"),
            std::string::npos);

  std::ostringstream sink;
  EXPECT_THROW(run_command("migrate", {"--store", store_dir_, "--jobs", "-1"}, sink),
               ArgsError);
}

TEST_F(CliTest, ListFiltersByStoredFields) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C",
              "--scenario", "strong"});
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "D",
              "--scenario", "weak"});

  const std::string all = run("list", {"--store", store_dir_});
  EXPECT_NE(all.find("poisson_C_1"), std::string::npos);
  EXPECT_NE(all.find("poisson_D_1"), std::string::npos);
  EXPECT_NE(all.find("strong"), std::string::npos);

  const std::string weak_only =
      run("list", {"--store", store_dir_, "--scenario", "weak"});
  EXPECT_EQ(weak_only.find("poisson_C_1"), std::string::npos);
  EXPECT_NE(weak_only.find("poisson_D_1"), std::string::npos);

  const std::string none = run("list", {"--store", store_dir_, "--version", "Z"});
  EXPECT_NE(none.find("(no records)"), std::string::npos);
}

TEST_F(CliTest, ReportBinsRendersHistogram) {
  const std::string out = run("report", {"seismic", "--duration", "120", "--bins", "20"});
  EXPECT_NE(out.find("time histogram (20 bins"), std::string::npos);
  // Three metric rows of 20 digits each.
  for (const char* label : {"cpu ", "sync", "io  "})
    EXPECT_NE(out.find(label), std::string::npos);
}

TEST_F(CliTest, CompareRendersMovement) {
  run("run", {"poisson_a", "--duration", "300", "--store", store_dir_, "--version", "A"});
  run("run", {"poisson_b", "--duration", "300", "--store", store_dir_, "--version", "B"});
  const std::string out =
      run("compare", {"poisson_A_1", "poisson_B_1", "--store", store_dir_});
  EXPECT_NE(out.find("comparison: poisson_A_1 -> poisson_B_1"), std::string::npos);
  EXPECT_NE(out.find("biggest movers"), std::string::npos);
}

TEST_F(CliTest, ShowReportRendersMarkdown) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  const std::string report =
      run("show", {"poisson_C_1", "--store", store_dir_, "--report"});
  EXPECT_NE(report.find("# Tuning report"), std::string::npos);
  EXPECT_NE(report.find("Hot spots by view"), std::string::npos);
}

TEST_F(CliTest, RunsJsonWorkloadSpec) {
  fs::create_directories(store_dir_);
  const std::string wl_file = store_dir_ + "/wl.json";
  histpc::util::write_file(wl_file, R"({
    "name": "clisolver",
    "ranks": 2,
    "iterations": 400,
    "body": [
      { "op": "compute", "seconds": 0.5, "factors": [1.0, 0.3],
        "function": "solve", "module": "solver.c" },
      { "op": "barrier" }
    ]
  })");
  const std::string out = run("run", {"--workload", wl_file, "--store", store_dir_,
                                      "--version", "1"});
  EXPECT_NE(out.find("running clisolver"), std::string::npos);
  EXPECT_NE(out.find("ExcessiveSyncWaitingTime"), std::string::npos);
  EXPECT_NE(out.find("stored experiment record 'clisolver_1_1'"), std::string::npos);
  const std::string report = run("report", {"--workload", wl_file});
  EXPECT_NE(report.find("whole-program fractions"), std::string::npos);
}

TEST_F(CliTest, RunRecordsChromeTelemetryTrace) {
  fs::create_directories(store_dir_);
  const std::string trace_file = store_dir_ + "/search.trace.json";
  const std::string out =
      run("run", {"poisson_a", "--duration", "400", "--trace", trace_file,
                  "--trace-format", "chrome"});
  EXPECT_NE(out.find("telemetry events to " + trace_file), std::string::npos);

  // The export must parse with the in-repo JSON reader and carry at least
  // one instant event per decision type the search exercised.
  const util::Json doc = util::Json::parse(util::read_file(trace_file));
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const std::vector<telemetry::Event> events = telemetry::from_chrome_trace(doc);
  std::size_t counts[std::size(telemetry::kAllEventKinds)] = {};
  for (const auto& e : events) ++counts[static_cast<std::size_t>(e.kind)];
  using telemetry::EventKind;
  for (EventKind kind : {EventKind::Instrument, EventKind::ConcludeTrue,
                         EventKind::ConcludeFalse, EventKind::Refine,
                         EventKind::ProbeInsert, EventKind::ProbeRemove,
                         EventKind::PhaseBegin, EventKind::PhaseEnd})
    EXPECT_GT(counts[static_cast<std::size_t>(kind)], 0u)
        << telemetry::event_kind_name(kind);

  const std::string report = run("trace-report", {trace_file});
  EXPECT_NE(report.find("by hypothesis:"), std::string::npos);
  EXPECT_NE(report.find("CPUbound"), std::string::npos);
  EXPECT_NE(report.find("probe inserts:"), std::string::npos);
}

TEST_F(CliTest, TraceRoundTripsThroughDiagnoseTrace) {
  fs::create_directories(store_dir_);
  const std::string sim_trace = store_dir_ + "/exec.json";
  run("run", {"poisson_a", "--duration", "300", "--save-trace", sim_trace});
  const std::string tele_trace = store_dir_ + "/search.jsonl";
  const std::string out = run("diagnose-trace", {sim_trace, "--trace", tele_trace});
  EXPECT_NE(out.find("telemetry events to " + tele_trace), std::string::npos);
  const std::vector<telemetry::Event> events = telemetry::load_trace_file(tele_trace);
  EXPECT_FALSE(events.empty());
  const std::string report = run("trace-report", {tele_trace});
  EXPECT_NE(report.find("peak active cost:"), std::string::npos);
}

TEST_F(CliTest, TraceReportDiagnosesEmptyAndCorruptFiles) {
  fs::create_directories(store_dir_);
  // An empty trace is a user mistake worth a pointed message, not a silent
  // zero-count report — and scripts need the non-zero exit.
  const std::string empty_file = store_dir_ + "/empty.jsonl";
  util::write_file(empty_file, "");
  std::ostringstream out;
  EXPECT_EQ(run_command("trace-report", {empty_file}, out), 1);
  EXPECT_NE(out.str().find("the trace is empty"), std::string::npos) << out.str();

  const std::string corrupt_file = store_dir_ + "/corrupt.jsonl";
  util::write_file(corrupt_file, "this is not an event\n");
  std::ostringstream out2;
  EXPECT_EQ(run_command("trace-report", {corrupt_file}, out2), 1);
  EXPECT_NE(out2.str().find("not a readable telemetry trace"), std::string::npos)
      << out2.str();
  EXPECT_NE(out2.str().find(corrupt_file), std::string::npos);
}

TEST_F(CliTest, TraceReportShowsPhaseLapExtrema) {
  fs::create_directories(store_dir_);
  const std::string trace_file = store_dir_ + "/search.jsonl";
  run("run", {"poisson_a", "--duration", "400", "--trace", trace_file});
  const std::string report = run("trace-report", {trace_file});
  EXPECT_NE(report.find("min lap"), std::string::npos);
  EXPECT_NE(report.find("max lap"), std::string::npos);
}

TEST_F(CliTest, RunAppendsPerfRecordAndPerfReportRendersIt) {
  const std::string out = run("run", {"poisson_c", "--duration", "300", "--store",
                                      store_dir_, "--version", "C"});
  EXPECT_NE(out.find("appended perf record to"), std::string::npos);
  ASSERT_TRUE(fs::exists(store_dir_ + "/perf-log/poisson_c.jsonl"));

  const std::string report =
      run("perf-report", {"--app", "poisson_c", "--store", store_dir_});
  EXPECT_NE(report.find("app:        poisson_c (version C, kind diagnose)"),
            std::string::npos)
      << report;
  // The session phases and the consultant's own timers both made it in.
  EXPECT_NE(report.find("session.diagnose"), std::string::npos);
  EXPECT_NE(report.find("pc.advance"), std::string::npos);
  EXPECT_NE(report.find("p50"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
}

TEST_F(CliTest, PerfReportJsonAndTableQuantilesAreBitIdentical) {
  run("run", {"poisson_c", "--duration", "300", "--store", store_dir_, "--version", "C"});
  const std::string table =
      run("perf-report", {"--app", "poisson_c", "--store", store_dir_});
  const std::string json_text =
      run("perf-report", {"--app", "poisson_c", "--store", store_dir_, "--json"});

  // Both outputs derive from the same Histogram::quantile doubles; the
  // table cell must be exactly fmt_seconds of the JSON value, for every
  // timer and every reported quantile.
  const util::Json rec = util::Json::parse(json_text);
  const auto& hists = rec.at("telemetry").at("histograms").as_object();
  std::size_t checked = 0;
  for (const auto& [name, h] : hists) {
    for (const char* q : {"p50", "p90", "p99"}) {
      EXPECT_NE(table.find(util::fmt_seconds(h.at(q).as_double())), std::string::npos)
          << name << " " << q;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(CliTest, PerfDiffDetectsInjectedSlowdownAndExitsNonZero) {
  fs::create_directories(store_dir_);
  // Synthetic history: five baseline records of ~2 ms laps, then a current
  // log whose latest record runs the same timer at 4 ms (the injected 2x
  // slowdown from the acceptance criteria).
  auto make_record = [](double lap) {
    telemetry::PerfRecord rec;
    rec.app = "synthetic";
    rec.kind = "diagnose";
    rec.machine = "host";
    rec.build = "build1";
    for (int i = 0; i < 8; ++i) rec.registry.add_seconds("hot.path", lap * (1.0 + 0.01 * i));
    return rec;
  };
  const std::string baseline_path = store_dir_ + "/baseline.jsonl";
  telemetry::PerfLog baseline(baseline_path);
  for (int i = 0; i < 5; ++i) baseline.append(make_record(2e-3 * (1.0 + 0.02 * (i - 2))));

  const std::string slow_path = store_dir_ + "/slow.jsonl";
  telemetry::PerfLog(slow_path).append(make_record(4e-3));
  std::ostringstream slow_out;
  EXPECT_EQ(run_command("perf-diff",
                        {"--log", slow_path, "--baseline", baseline_path}, slow_out),
            1);
  // Both the mean and the histogram median of the slowed timer regress.
  EXPECT_NE(slow_out.str().find("REGRESSED"), std::string::npos) << slow_out.str();
  EXPECT_NE(slow_out.str().find("2 regressed"), std::string::npos) << slow_out.str();

  // Unmodified code (same ~2 ms laps) passes with exit 0.
  const std::string ok_path = store_dir_ + "/ok.jsonl";
  telemetry::PerfLog(ok_path).append(make_record(2e-3));
  const std::string ok_out =
      run("perf-diff", {"--log", ok_path, "--baseline", baseline_path});
  EXPECT_EQ(ok_out.find("REGRESSED"), std::string::npos) << ok_out;
  EXPECT_NE(ok_out.find("0 regressed"), std::string::npos);

  // --json agrees on the verdict and exit code.
  std::ostringstream json_out;
  EXPECT_EQ(run_command("perf-diff",
                        {"--log", slow_path, "--baseline", baseline_path, "--json"},
                        json_out),
            1);
  EXPECT_GT(util::Json::parse(json_out.str()).at("regressions").as_int(), 0);
}

TEST_F(CliTest, PerfDiffWithoutHistoryExitsTwo) {
  fs::create_directories(store_dir_);
  // Missing log entirely: nothing to compare.
  std::ostringstream out;
  EXPECT_EQ(run_command("perf-diff", {"--log", store_dir_ + "/nope.jsonl"}, out), 2);
  EXPECT_NE(out.str().find("no perf records"), std::string::npos);

  // One record but no earlier runs and no --baseline: still nothing.
  const std::string lone_path = store_dir_ + "/lone.jsonl";
  telemetry::PerfRecord rec;
  rec.app = "synthetic";
  rec.registry.add_seconds("t", 1e-3);
  telemetry::PerfLog(lone_path).append(rec);
  std::ostringstream out2;
  EXPECT_EQ(run_command("perf-diff", {"--log", lone_path}, out2), 2);
  EXPECT_NE(out2.str().find("no baseline records"), std::string::npos);

  // perf-report on an empty log also signals "nothing here" with 2.
  std::ostringstream out3;
  EXPECT_EQ(run_command("perf-report", {"--log", store_dir_ + "/nope.jsonl"}, out3), 2);
}

TEST_F(CliTest, PerfDiffWindowZeroIsNothingToCompare) {
  fs::create_directories(store_dir_);
  const std::string log_path = store_dir_ + "/perf.jsonl";
  telemetry::PerfRecord rec;
  rec.app = "synthetic";
  rec.registry.add_seconds("t", 1e-3);
  telemetry::PerfLog log(log_path);
  log.append(rec);
  log.append(rec);

  // --window 0 selects no baseline records: exit 2, never "all clear" (the
  // old behaviour clamped 0 to 1 and reported a healthy diff).
  std::ostringstream out;
  EXPECT_EQ(run_command("perf-diff", {"--log", log_path, "--window", "0"}, out), 2);
  EXPECT_NE(out.str().find("nothing to compare"), std::string::npos);

  std::ostringstream sink;
  EXPECT_THROW(run_command("perf-diff", {"--log", log_path, "--window", "-1"}, sink),
               ArgsError);
  EXPECT_THROW(run_command("perf-diff", {"--log", log_path, "--window", "5x"}, sink),
               ArgsError);
}

TEST(CliUsage, MentionsEveryCommand) {
  const std::string u = usage();
  for (const char* cmd :
       {"apps", "report", "run", "list", "show", "harvest", "map", "diff", "diagnose-trace",
        "trace-report", "perf-report", "perf-diff", "migrate", "serve", "bench-client"})
    EXPECT_NE(u.find(cmd), std::string::npos) << cmd;
}

}  // namespace
}  // namespace histpc::cli
