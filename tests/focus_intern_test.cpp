// Satellite of the FocusTable interner: property tests that the ID-based
// search core is observably identical to the string-based oracle.
//
// The consultant keeps both paths behind PcConfig::interned_foci (the
// string path is the retained oracle, the same scan-vs-index pattern the
// metric engine and DirectiveIndex use). These tests run full diagnoses
// both ways over randomized workloads and directive sets and require the
// results to match exactly: bottlenecks, the complete SHG snapshot,
// stats, telemetry counters, and the Figure-2 rendering.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/directives.h"
#include "pc/shg.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "util/rng.h"

namespace histpc::pc {
namespace {

using metrics::TraceView;
using simmpi::FunctionScope;
using simmpi::Recorder;

/// Randomized bottleneck workload: `ranks` ranks where the upper half
/// waits on messages from the lower half inside "exchange"; rng varies
/// the rank count, compute asymmetry, message tag, and an optional extra
/// hot function so different seeds exercise different SHG shapes.
simmpi::ExecutionTrace random_trace(util::Rng& rng) {
  const int pairs = 1 + static_cast<int>(rng.next_below(2));  // 2 or 4 ranks
  const int ranks = 2 * pairs;
  const int tag = 3 + static_cast<int>(rng.next_below(5));
  const double fast = 0.1 + 0.1 * static_cast<double>(rng.next_below(3));
  const bool extra_func = rng.next_below(2) == 0;
  const int iters = 900;
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(ranks, "node", "app"));
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < iters; ++i) {
      {
        FunctionScope f(r, "work", "work.c");
        r.compute(r.rank() >= pairs ? fast : 1.0);
      }
      if (extra_func) {
        FunctionScope f(r, "checkpoint", "io.c");
        r.compute(0.05);
      }
      {
        FunctionScope f(r, "exchange", "comm.c");
        if (r.rank() >= pairs) {
          r.recv(r.rank() - pairs, tag);
        } else {
          r.send(r.rank() + pairs, tag, 64);
        }
        r.barrier();
      }
    }
  });
  simmpi::NetworkModel net;
  net.latency = 1e-4;
  return simmpi::Simulator(net).run(b.build());
}

/// Random directive sets spanning every directive kind: subtree prunes
/// (hierarchy and mid-tree), pair prunes, priorities (including foci the
/// trace cannot refine into), and threshold overrides.
DirectiveSet random_directives(util::Rng& rng) {
  std::string text;
  if (rng.next_below(2) == 0) text += "prune * /Machine\n";
  if (rng.next_below(2) == 0) text += "prune CPUbound /SyncObject\n";
  if (rng.next_below(2) == 0) text += "prune ExcessiveSyncWaitingTime /Code/work.c\n";
  if (rng.next_below(2) == 0) text += "prune * /Process\n";
  if (rng.next_below(2) == 0)
    text += "prunepair CPUbound </Code/comm.c,/Machine,/Process,/SyncObject>\n";
  if (rng.next_below(2) == 0)
    text +=
        "priority ExcessiveSyncWaitingTime "
        "</Code/comm.c,/Machine,/Process,/SyncObject> high\n";
  if (rng.next_below(2) == 0)
    text += "priority CPUbound </Code/work.c,/Machine,/Process,/SyncObject> high\n";
  if (rng.next_below(2) == 0)
    text += "priority CPUbound </Code,/Machine,/Process,/SyncObject> low\n";
  if (rng.next_below(2) == 0) text += "threshold ExcessiveSyncWaitingTime 0.15\n";
  if (rng.next_below(2) == 0) text += "threshold * 0.25\n";
  return DirectiveSet::parse(text);
}

PcConfig quick_config(bool interned) {
  PcConfig cfg;
  cfg.min_observation = 10.0;
  cfg.tick = 0.5;
  cfg.insertion_latency = 1.0;
  cfg.cost_limit = 0.05;
  cfg.interned_foci = interned;
  return cfg;
}

void expect_identical(const DiagnosisResult& id_result, const DiagnosisResult& str_result) {
  // Bottlenecks: same pairs, same order, same times and fractions.
  ASSERT_EQ(id_result.bottlenecks.size(), str_result.bottlenecks.size());
  for (std::size_t i = 0; i < id_result.bottlenecks.size(); ++i) {
    const auto& a = id_result.bottlenecks[i];
    const auto& b = str_result.bottlenecks[i];
    EXPECT_EQ(a.hypothesis, b.hypothesis) << "bottleneck " << i;
    EXPECT_EQ(a.focus, b.focus) << "bottleneck " << i;
    EXPECT_DOUBLE_EQ(a.t_found, b.t_found) << "bottleneck " << i;
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "bottleneck " << i;
  }

  // Full SHG snapshot: same nodes in the same creation order with the
  // same statuses, priorities, and conclusion data.
  ASSERT_EQ(id_result.nodes.size(), str_result.nodes.size());
  for (std::size_t i = 0; i < id_result.nodes.size(); ++i) {
    const auto& a = id_result.nodes[i];
    const auto& b = str_result.nodes[i];
    EXPECT_EQ(a.hypothesis, b.hypothesis) << "node " << i;
    EXPECT_EQ(a.focus, b.focus) << "node " << i;
    EXPECT_EQ(a.status, b.status) << "node " << i;
    EXPECT_EQ(a.priority, b.priority) << "node " << i;
    EXPECT_DOUBLE_EQ(a.conclude_time, b.conclude_time) << "node " << i;
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "node " << i;
  }

  // Search statistics.
  EXPECT_EQ(id_result.stats.nodes_created, str_result.stats.nodes_created);
  EXPECT_EQ(id_result.stats.pairs_tested, str_result.stats.pairs_tested);
  EXPECT_EQ(id_result.stats.pruned_candidates, str_result.stats.pruned_candidates);
  EXPECT_EQ(id_result.stats.bottlenecks, str_result.stats.bottlenecks);
  EXPECT_DOUBLE_EQ(id_result.stats.end_time, str_result.stats.end_time);
  EXPECT_DOUBLE_EQ(id_result.stats.last_true_time, str_result.stats.last_true_time);
  EXPECT_DOUBLE_EQ(id_result.stats.peak_cost, str_result.stats.peak_cost);

  // Telemetry counters (phase_seconds is wall clock and excluded).
  EXPECT_EQ(id_result.telemetry.pairs_tested, str_result.telemetry.pairs_tested);
  EXPECT_EQ(id_result.telemetry.conclusions_true, str_result.telemetry.conclusions_true);
  EXPECT_EQ(id_result.telemetry.conclusions_false, str_result.telemetry.conclusions_false);
  EXPECT_EQ(id_result.telemetry.refinements, str_result.telemetry.refinements);
  EXPECT_EQ(id_result.telemetry.prune_hits_subtree, str_result.telemetry.prune_hits_subtree);
  EXPECT_EQ(id_result.telemetry.prune_hits_pair, str_result.telemetry.prune_hits_pair);
  EXPECT_EQ(id_result.telemetry.priority_seeds, str_result.telemetry.priority_seeds);
  EXPECT_EQ(id_result.telemetry.cost_gate_engagements,
            str_result.telemetry.cost_gate_engagements);
  EXPECT_DOUBLE_EQ(id_result.telemetry.peak_cost, str_result.telemetry.peak_cost);
  EXPECT_DOUBLE_EQ(id_result.telemetry.avg_cost, str_result.telemetry.avg_cost);
}

/// Satellite 3: the ID-based search is observably identical to the
/// string-based oracle across randomized workloads and directive sets.
class InternOracle : public testing::TestWithParam<std::uint64_t> {};

TEST_P(InternOracle, IdSearchMatchesStringOracleExactly) {
  util::Rng rng(GetParam());
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  const DirectiveSet directives = random_directives(rng);

  PerformanceConsultant id_pc(view, quick_config(/*interned=*/true), directives);
  const DiagnosisResult id_result = id_pc.run();
  PerformanceConsultant str_pc(view, quick_config(/*interned=*/false), directives);
  const DiagnosisResult str_result = str_pc.run();

  expect_identical(id_result, str_result);
  // Figure-2 rendering: identical node labels, ordering, and indentation.
  EXPECT_EQ(id_pc.shg().render(), str_pc.shg().render());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternOracle, testing::Range<std::uint64_t>(1, 13));

/// Satellite 1: with no event sink attached, the interned search builds
/// canonical focus names only when the result snapshot is materialized —
/// exactly one per distinct node focus, never for probe foci, pruned or
/// deferred candidates.
TEST(InternTelemetry, CountersOnlySearchBuildsOnlySnapshotNames) {
  util::Rng rng(99);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  ASSERT_EQ(view.foci().names_built(), 0u);

  PerformanceConsultant pc(view, quick_config(/*interned=*/true));
  const DiagnosisResult result = pc.run();

  std::set<std::string> distinct_node_foci;
  for (const auto& node : result.nodes) distinct_node_foci.insert(node.focus);
  EXPECT_EQ(view.foci().names_built(), distinct_node_foci.size());
  EXPECT_GE(view.foci().size(), distinct_node_foci.size());
}

}  // namespace
}  // namespace histpc::pc
