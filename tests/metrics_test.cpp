#include <gtest/gtest.h>

#include "metrics/metric.h"
#include "metrics/metric_instance.h"
#include "metrics/trace_view.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"

namespace histpc::metrics {
namespace {

using resources::Focus;
using simmpi::FunctionScope;
using simmpi::Recorder;

/// Two ranks; rank 0: 2s compute in kernel, then sends; rank 1: waits ~2s
/// for the message (tag 5), then 1s compute in other, then 0.5s io.
simmpi::ExecutionTrace make_trace() {
  simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(2, "node", "proc");
  simmpi::ProgramBuilder b(m);
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    if (r.rank() == 0) {
      {
        FunctionScope f(r, "kernel", "kern.c");
        r.compute(2.0);
      }
      r.send(1, 5, 100);
      {
        FunctionScope f(r, "other", "other.c");
        r.compute(1.5);
      }
    } else {
      {
        FunctionScope f(r, "waitspot", "kern.c");
        r.recv(0, 5);
      }
      {
        FunctionScope f(r, "other", "other.c");
        r.compute(1.0);
      }
      r.io(0.5);
    }
  });
  simmpi::NetworkModel net;
  net.latency = 0.0;
  net.bytes_per_second = 1e9;
  return simmpi::Simulator(net).run(b.build());
}

class TraceViewTest : public testing::Test {
 protected:
  TraceViewTest() : trace_(make_trace()), view_(trace_) {}
  simmpi::ExecutionTrace trace_;
  TraceView view_;
};

TEST(Metric, NamesRoundTrip) {
  for (MetricKind m : kAllMetrics) {
    auto back = metric_from_name(metric_name(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(metric_from_name("bogus").has_value());
}

TEST(Metric, OnlySyncSupportsSyncConstraint) {
  EXPECT_TRUE(metric_supports_sync_constraint(MetricKind::SyncWaitTime));
  EXPECT_FALSE(metric_supports_sync_constraint(MetricKind::CpuTime));
  EXPECT_FALSE(metric_supports_sync_constraint(MetricKind::IoWaitTime));
}

TEST_F(TraceViewTest, BuildsAllHierarchies) {
  const auto& db = view_.resources();
  EXPECT_TRUE(db.contains("/Code/kern.c/kernel"));
  EXPECT_TRUE(db.contains("/Code/main.c/main"));
  EXPECT_TRUE(db.contains("/Machine/node01"));
  EXPECT_TRUE(db.contains("/Machine/node02"));
  EXPECT_TRUE(db.contains("/Process/proc:1"));
  EXPECT_TRUE(db.contains("/SyncObject/Message/5"));
}

TEST_F(TraceViewTest, WholeProgramTotals) {
  const Focus whole = Focus::whole_program(view_.resources());
  const double end = trace_.duration;
  // rank0: 3.5 cpu; rank1: 1 cpu + 2 sync + 0.5 io.
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, whole, 0, end), 4.5, 1e-9);
  EXPECT_NEAR(view_.query(MetricKind::SyncWaitTime, whole, 0, end), 2.0, 1e-6);
  EXPECT_NEAR(view_.query(MetricKind::IoWaitTime, whole, 0, end), 0.5, 1e-9);
  EXPECT_NEAR(view_.query(MetricKind::ExecTime, whole, 0, end), 7.0, 1e-6);
}

TEST_F(TraceViewTest, CodeConstraintSelectsFunction) {
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, f, 0, trace_.duration), 2.0, 1e-9);
  // Module-level selects both functions in kern.c (kernel cpu + waitspot sync).
  Focus mod = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c");
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, mod, 0, trace_.duration), 2.0, 1e-9);
  EXPECT_NEAR(view_.query(MetricKind::SyncWaitTime, mod, 0, trace_.duration), 2.0, 1e-6);
}

TEST_F(TraceViewTest, ProcessAndMachineConstraintsAgree) {
  Focus by_proc = Focus::whole_program(view_.resources()).with_part(2, "/Process/proc:2");
  Focus by_node = Focus::whole_program(view_.resources()).with_part(1, "/Machine/node02");
  const double end = trace_.duration;
  EXPECT_NEAR(view_.query(MetricKind::SyncWaitTime, by_proc, 0, end),
              view_.query(MetricKind::SyncWaitTime, by_node, 0, end), 1e-9);
  EXPECT_EQ(view_.compile(by_proc).num_selected_ranks, 1);
  EXPECT_EQ(view_.compile(by_node).num_selected_ranks, 1);
}

TEST_F(TraceViewTest, SyncConstrainedCpuIsZero) {
  // The wasted tests that the paper's general prunes avoid: CPU time under
  // a SyncObject constraint has no data.
  Focus f = Focus::whole_program(view_.resources()).with_part(3, "/SyncObject/Message/5");
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::CpuTime, f, 0, trace_.duration), 0.0);
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::IoWaitTime, f, 0, trace_.duration), 0.0);
  EXPECT_NEAR(view_.query(MetricKind::SyncWaitTime, f, 0, trace_.duration), 2.0, 1e-6);
}

TEST_F(TraceViewTest, UnknownResourceSelectsNothing) {
  auto f = Focus::parse("</Code/ghost.c>", view_.resources(), false);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::CpuTime, *f, 0, trace_.duration), 0.0);
}

TEST_F(TraceViewTest, EmptyFilterDiagnosticsNameTheFailingPart) {
  // A matching filter carries no diagnostics.
  Focus good = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c");
  EXPECT_TRUE(view_.compile(good).diagnostics.empty());
  // Parts naming resources this trace never created (e.g. directives
  // mapped from another execution) say what failed against what.
  auto ghost = Focus::parse("</Code/ghost.c>", view_.resources(), false);
  ASSERT_TRUE(ghost.has_value());
  const auto code_diag = view_.compile(*ghost).diagnostics;
  ASSERT_EQ(code_diag.size(), 1u);
  EXPECT_EQ(code_diag[0], "part '/Code/ghost.c' matched no recorded function in hierarchy 'Code'");

  auto multi = Focus::parse("</Code/ghost.c,/Machine/node99,/Process/proc:9>",
                            view_.resources(), false);
  ASSERT_TRUE(multi.has_value());
  const auto diags = view_.compile(*multi).diagnostics;
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[1], "part '/Machine/node99' matched no node in hierarchy 'Machine'");
  EXPECT_EQ(diags[2], "part '/Process/proc:9' matched no process in hierarchy 'Process'");

  auto sync = Focus::parse("</SyncObject/Message/42>", view_.resources(), false);
  ASSERT_TRUE(sync.has_value());
  const auto sync_diag = view_.compile(*sync).diagnostics;
  ASSERT_EQ(sync_diag.size(), 1u);
  EXPECT_EQ(sync_diag[0],
            "part '/SyncObject/Message/42' matched no synchronization object in hierarchy "
            "'SyncObject'");
}

TEST_F(TraceViewTest, FractionNormalizesPerSelectedRank) {
  Focus f = Focus::whole_program(view_.resources()).with_part(2, "/Process/proc:2");
  // Rank 1 waits 2s of 3.5s program (its own end time is 3.5).
  const double frac = view_.fraction(MetricKind::SyncWaitTime, f, 0.0, trace_.duration);
  EXPECT_NEAR(frac, 2.0 / trace_.duration, 1e-6);
  // Whole-program normalizes by both ranks.
  const Focus whole = Focus::whole_program(view_.resources());
  EXPECT_NEAR(view_.fraction(MetricKind::SyncWaitTime, whole, 0.0, trace_.duration),
              2.0 / (2 * trace_.duration), 1e-6);
}

TEST_F(TraceViewTest, FractionOfEmptyWindowIsZero) {
  const Focus whole = Focus::whole_program(view_.resources());
  EXPECT_DOUBLE_EQ(view_.fraction(MetricKind::CpuTime, whole, 1.0, 1.0), 0.0);
}

TEST_F(TraceViewTest, WindowQueriesClipIntervals) {
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  // Kernel runs on rank 0 during [0, 2).
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, f, 0.5, 1.25), 0.75, 1e-9);
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, f, 1.5, 10.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::CpuTime, f, 2.5, 3.0), 0.0);
}

TEST_F(TraceViewTest, FractionSeriesBinsSumToWholeFraction) {
  const Focus whole = Focus::whole_program(view_.resources());
  for (MetricKind metric : {MetricKind::CpuTime, MetricKind::SyncWaitTime}) {
    const auto series = view_.fraction_series(metric, whole, 0.0, trace_.duration, 7);
    ASSERT_EQ(series.size(), 7u);
    double mean = 0;
    for (double v : series) mean += v;
    mean /= 7.0;
    EXPECT_NEAR(mean, view_.fraction(metric, whole, 0.0, trace_.duration), 1e-9);
  }
}

TEST_F(TraceViewTest, FractionSeriesLocalizesActivity) {
  // The kernel runs only in [0, 2) on rank 0: the first bins carry all the
  // CPU fraction, the tail bins none.
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  const auto series = view_.fraction_series(MetricKind::CpuTime, f, 0.0, 3.5, 7);
  ASSERT_EQ(series.size(), 7u);
  EXPECT_GT(series[0], 0.4);
  EXPECT_DOUBLE_EQ(series[6], 0.0);
}

TEST_F(TraceViewTest, FractionSeriesEdgeCases) {
  const Focus whole = Focus::whole_program(view_.resources());
  EXPECT_TRUE(view_.fraction_series(MetricKind::CpuTime, whole, 0, 1, 0).empty());
  EXPECT_TRUE(view_.fraction_series(MetricKind::CpuTime, whole, 1, 1, 4).empty());
}

// -------------------------------------------------------- metric instance

TEST_F(TraceViewTest, InstanceStartTimeHidesHistory) {
  // Instrumentation inserted at t=2.1 misses the kernel phase entirely —
  // the Paradyn "missed data for interesting events" behaviour.
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  MetricInstance inst(view_, MetricKind::CpuTime, view_.compile(f), 2.1);
  inst.advance(trace_.duration);
  EXPECT_DOUBLE_EQ(inst.value(), 0.0);
  EXPECT_NEAR(inst.observed(), trace_.duration - 2.1, 1e-9);
}

TEST_F(TraceViewTest, InstanceStraddlingIntervalCountsPartially) {
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  MetricInstance inst(view_, MetricKind::CpuTime, view_.compile(f), 1.0);
  inst.advance(1.5);
  EXPECT_NEAR(inst.value(), 0.5, 1e-9);
  inst.advance(5.0);
  EXPECT_NEAR(inst.value(), 1.0, 1e-9);
}

TEST_F(TraceViewTest, AdvanceBackwardsIsANoop) {
  const Focus whole = Focus::whole_program(view_.resources());
  MetricInstance inst(view_, MetricKind::CpuTime, view_.compile(whole), 0.0);
  inst.advance(2.0);
  const double v = inst.value();
  inst.advance(1.0);
  EXPECT_DOUBLE_EQ(inst.value(), v);
}

/// Property: incremental accumulation across any tick pattern equals the
/// one-shot whole-window query.
class IncrementalEquivalence : public testing::TestWithParam<double> {};

TEST_P(IncrementalEquivalence, MatchesOneShot) {
  const simmpi::ExecutionTrace trace = make_trace();
  const TraceView view(trace);
  const double tick = GetParam();
  for (MetricKind metric : kAllMetrics) {
    const Focus whole = Focus::whole_program(view.resources());
    MetricInstance stepped(view, metric, view.compile(whole), 0.0);
    for (double t = tick; t < trace.duration + tick; t += tick) stepped.advance(t);
    MetricInstance oneshot(view, metric, view.compile(whole), 0.0);
    oneshot.advance(trace.duration + tick);
    EXPECT_NEAR(stepped.value(), oneshot.value(), 1e-9)
        << "metric " << metric_name(metric) << " tick " << tick;
  }
}

INSTANTIATE_TEST_SUITE_P(Ticks, IncrementalEquivalence,
                         testing::Values(0.05, 0.17, 0.5, 1.0, 3.3));

/// Property: queries over a partition of [0, T] sum to the whole.
class WindowAdditivity : public testing::TestWithParam<int> {};

TEST_P(WindowAdditivity, DisjointWindowsSum) {
  const simmpi::ExecutionTrace trace = make_trace();
  const TraceView view(trace);
  const int pieces = GetParam();
  const Focus whole = Focus::whole_program(view.resources());
  for (MetricKind metric : {MetricKind::CpuTime, MetricKind::SyncWaitTime}) {
    double sum = 0;
    for (int i = 0; i < pieces; ++i) {
      const double t0 = trace.duration * i / pieces;
      const double t1 = trace.duration * (i + 1) / pieces;
      sum += view.query(metric, whole, t0, t1);
    }
    EXPECT_NEAR(sum, view.query(metric, whole, 0, trace.duration), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, WindowAdditivity, testing::Values(2, 3, 7, 16));

}  // namespace
}  // namespace histpc::metrics
