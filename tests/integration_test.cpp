// End-to-end tests of the paper's workflows: diagnose, store, harvest,
// map, re-diagnose — across runs and across code versions.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/session.h"
#include "history/analysis.h"
#include "history/combiner.h"
#include "history/execution_map.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "history/store.h"

namespace histpc {
namespace {

using history::DirectiveGenerator;
using history::ExperimentStore;
using pc::DiagnosisResult;
using pc::DirectiveSet;

apps::AppParams short_run(double duration = 500.0) {
  apps::AppParams p;
  p.target_duration = duration;
  return p;
}

/// Count of reference bottlenecks found by `result`.
std::size_t coverage(const DiagnosisResult& result,
                     const std::vector<pc::BottleneckReport>& reference) {
  std::size_t found = 0;
  for (const auto& ref : reference)
    for (const auto& b : result.bottlenecks)
      if (b.hypothesis == ref.hypothesis && b.focus == ref.focus) {
        ++found;
        break;
      }
  return found;
}

TEST(Integration, DirectedRunFindsBaseSetMuchFaster) {
  core::DiagnosisSession base_session("poisson_c", short_run());
  const DiagnosisResult base = base_session.diagnose();
  ASSERT_GT(base.stats.bottlenecks, 5u);

  DirectiveGenerator gen;
  DirectiveSet directives = gen.from_record(base_session.make_record(base, "C"));
  ASSERT_FALSE(directives.priorities.empty());
  ASSERT_FALSE(directives.prunes.empty());

  core::DiagnosisSession directed_session("poisson_c", short_run());
  const DiagnosisResult directed = directed_session.diagnose(directives);

  const auto reference = history::filter_pruned(base.bottlenecks, directives,
                                                directed_session.view().resources());
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(coverage(directed, reference), reference.size());

  const double t_base = base.time_to_find(reference, 100.0);
  const double t_directed = directed.time_to_find(reference, 100.0);
  EXPECT_LT(t_directed, 0.35 * t_base)
      << "directives should cut diagnosis time by well over 65%";
}

TEST(Integration, DirectedRunProducesMoreDetailedDiagnosis) {
  // The paper's a1 -> a2 observation: search directives let the second run
  // test refined pairs the first run never reached before program end.
  core::DiagnosisSession s1("poisson_c", short_run(400.0));
  const DiagnosisResult base = s1.diagnose();
  const std::size_t base_never_ran =
      std::count_if(base.nodes.begin(), base.nodes.end(), [](const auto& n) {
        return n.status == pc::NodeStatus::NeverRan;
      });
  EXPECT_GT(base_never_ran, 0u) << "the base run should be cost-limited";

  DirectiveSet directives = DirectiveGenerator().from_record(s1.make_record(base, "C"));
  core::DiagnosisSession s2("poisson_c", short_run(400.0));
  const DiagnosisResult directed = s2.diagnose(directives);
  EXPECT_GT(directed.stats.bottlenecks, base.stats.bottlenecks);
}

TEST(Integration, CrossVersionDirectivesWithMapping) {
  // Harvest from version A, map names (Figure 3), diagnose version B.
  // Long runs: the base searches must complete so the harvested directive
  // sets cover the full bottleneck space (as in the paper's setup).
  core::DiagnosisSession session_a("poisson_a", short_run(3000.0));
  const DiagnosisResult base_a = session_a.diagnose();
  const auto record_a = session_a.make_record(base_a, "A");

  core::DiagnosisSession session_b("poisson_b", short_run(3000.0));
  const DiagnosisResult base_b = session_b.diagnose();

  DirectiveSet directives = DirectiveGenerator().from_record(record_a);
  directives.maps =
      history::suggest_mappings(record_a.resources, session_b.view().resources());
  ASSERT_FALSE(directives.maps.empty());

  core::DiagnosisSession directed_session("poisson_b", short_run(3000.0));
  const DiagnosisResult directed = directed_session.diagnose(directives);

  // Reference: the clearly significant base bottlenecks not excluded by
  // pruning. Pairs measured right at the 20% threshold legitimately flap
  // across runs (the paper's 113-of-115 agreement).
  const auto reference = history::significant_bottlenecks(
      history::filter_pruned(base_b.bottlenecks, directives,
                             directed_session.view().resources()),
      0.22);
  const double t_base = base_b.time_to_find(reference, 100.0);
  const double t_directed = directed.time_to_find(reference, 100.0);
  ASSERT_FALSE(std::isinf(t_directed)) << "mapped directives must still find the set";
  EXPECT_LT(t_directed, 0.5 * t_base);
}

TEST(Integration, UnmappedCrossVersionDirectivesAreWeaker) {
  // Without mapping, version-A code foci do not resolve in version B, so
  // fewer pairs can be seeded at high priority.
  core::DiagnosisSession session_a("poisson_a", short_run());
  const auto record_a = session_a.make_record(session_a.diagnose(), "A");
  DirectiveSet unmapped = DirectiveGenerator().from_record(record_a);

  DirectiveSet mapped = unmapped;
  core::DiagnosisSession probe_b("poisson_b", short_run(150.0));
  mapped.maps = history::suggest_mappings(record_a.resources, probe_b.view().resources());

  core::DiagnosisSession run_unmapped("poisson_b", short_run());
  core::DiagnosisSession run_mapped("poisson_b", short_run());
  const DiagnosisResult r_unmapped = run_unmapped.diagnose(unmapped);
  const DiagnosisResult r_mapped = run_mapped.diagnose(mapped);
  // The mapped run starts more high-priority instrumentation and so finds
  // its first bottlenecks in the first observation window.
  EXPECT_LE(r_mapped.bottlenecks.front().t_found, r_unmapped.bottlenecks.front().t_found);
  EXPECT_GE(r_mapped.stats.bottlenecks, r_unmapped.stats.bottlenecks);
}

TEST(Integration, StoreRoundTripPreservesDirectiveQuality) {
  const std::string dir = testing::TempDir() + "/histpc_integration_store";
  std::filesystem::remove_all(dir);
  ExperimentStore store(dir);

  core::DiagnosisSession s1("poisson_c", short_run());
  const DiagnosisResult base = s1.diagnose();
  const std::string run_id = store.save(s1.make_record(base, "C"));

  // A new process would reload from disk:
  auto loaded = store.load(run_id);
  ASSERT_TRUE(loaded.has_value());
  DirectiveSet from_disk = DirectiveGenerator().from_record(*loaded);
  DirectiveSet from_memory = DirectiveGenerator().from_record(s1.make_record(base, "C"));
  EXPECT_EQ(from_disk.serialize(), from_memory.serialize());
  std::filesystem::remove_all(dir);
}

TEST(Integration, DirectiveTextFileDrivesDiagnosis) {
  // The paper's workflow reads directives from an input file.
  core::DiagnosisSession s1("poisson_c", short_run());
  const DiagnosisResult base = s1.diagnose();
  DirectiveSet d = DirectiveGenerator().from_record(s1.make_record(base, "C"));
  const std::string path = testing::TempDir() + "/histpc_cycle_directives.txt";
  d.save(path);
  DirectiveSet loaded = DirectiveSet::load(path);
  EXPECT_EQ(loaded, d);
  core::DiagnosisSession s2("poisson_c", short_run());
  const DiagnosisResult directed = s2.diagnose(loaded);
  EXPECT_GT(directed.stats.bottlenecks, 0u);
  std::filesystem::remove(path);
}

TEST(Integration, CombinedDirectivesFromTwoVersionsWork) {
  core::DiagnosisSession sa("poisson_a", short_run());
  core::DiagnosisSession sb("poisson_b", short_run());
  const auto rec_a = sa.make_record(sa.diagnose(), "A");
  const auto rec_b = sb.make_record(sb.diagnose(), "B");

  core::DiagnosisSession sc("poisson_c", short_run());
  DirectiveGenerator gen;
  DirectiveSet da = gen.from_record(rec_a);
  da.maps = history::suggest_mappings(rec_a.resources, sc.view().resources());
  da.apply_mappings();
  DirectiveSet db = gen.from_record(rec_b);
  db.maps = history::suggest_mappings(rec_b.resources, sc.view().resources());
  db.apply_mappings();

  for (auto mode : {history::CombineMode::Intersection, history::CombineMode::Union}) {
    DirectiveSet combined = history::combine(da, db, mode);
    core::DiagnosisSession run("poisson_c", short_run());
    const DiagnosisResult r = run.diagnose(combined);
    EXPECT_GT(r.stats.bottlenecks, 0u);
  }
}

TEST(Integration, ExecutionMapShowsVersionDifferences) {
  core::DiagnosisSession sa("poisson_a", short_run(100.0));
  core::DiagnosisSession sb("poisson_b", short_run(100.0));
  history::ExecutionMap map = history::build_execution_map(sa.view().resources(),
                                                           sb.view().resources());
  EXPECT_EQ(map.tags.at("/Code/oned.f"), "1");
  EXPECT_EQ(map.tags.at("/Code/onednb.f"), "2");
  EXPECT_EQ(map.tags.at("/Code/diff.f"), "3");
  EXPECT_FALSE(map.unique_to(1).empty());
  EXPECT_FALSE(map.unique_to(2).empty());
}

TEST(Integration, SessionExposesShgRendering) {
  core::DiagnosisSession s("poisson_c", short_run(200.0));
  s.diagnose();
  const std::string& shg = s.last_shg();
  EXPECT_NE(shg.find("TopLevelHypothesis"), std::string::npos);
  EXPECT_NE(shg.find("ExcessiveSyncWaitingTime"), std::string::npos);
}

TEST(Integration, ExternalTraceConstructor) {
  apps::AppParams p = short_run(120.0);
  simmpi::ExecutionTrace trace = apps::run_app("bubba", p);
  core::DiagnosisSession s(std::move(trace));
  const DiagnosisResult r = s.diagnose();
  // bubba is CPU-bound: partition.C should surface.
  EXPECT_TRUE(std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [](const auto& b) {
    return b.hypothesis == "CPUbound" && b.focus.find("partition.C") != std::string::npos;
  }));
}

}  // namespace
}  // namespace histpc
