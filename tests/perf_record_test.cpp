// Tests for the self-diagnosis performance history: PerfRecord JSONL
// round-trips, PerfLog append/quarantine semantics, and the MAD-based
// cross-run regression detector (perf_diff) — including the acceptance
// scenario of a deliberately injected 2x slowdown against a 5-record
// baseline window.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/perf_diff.h"
#include "telemetry/perf_record.h"
#include "telemetry/registry.h"
#include "util/json.h"
#include "util/log.h"

namespace histpc::telemetry {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("perf_record_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A record with every field populated and a registry holding all four
/// telemetry kinds (so the round trip covers histogram buckets too).
PerfRecord sample_record(double lap_seconds = 2e-3) {
  PerfRecord rec;
  rec.app = "poisson_c";
  rec.version = "C";
  rec.kind = "diagnose";
  rec.machine = "testhost";
  rec.build = "abc1234";
  rec.config["threshold_override"] = "0.2";
  rec.config["batched_eval"] = "1";
  rec.registry.add("pc.pairs_tested", 42);
  rec.registry.gauge_max("pc.peak_cost", 0.19);
  for (int i = 0; i < 8; ++i)
    rec.registry.add_seconds("pc.advance", lap_seconds * (1.0 + 0.01 * i));
  return rec;
}

TEST(PerfRecord, JsonRoundTrip) {
  const PerfRecord rec = sample_record();
  const PerfRecord back = PerfRecord::from_json(util::Json::parse(rec.to_json().dump()));
  EXPECT_EQ(back.schema, PerfRecord::kSchemaVersion);
  EXPECT_EQ(back.app, rec.app);
  EXPECT_EQ(back.version, rec.version);
  EXPECT_EQ(back.kind, rec.kind);
  EXPECT_EQ(back.machine, rec.machine);
  EXPECT_EQ(back.build, rec.build);
  EXPECT_EQ(back.config, rec.config);
  // Registry equality via canonical JSON: covers counters, gauges, timer
  // extrema, and histogram buckets in one comparison.
  EXPECT_EQ(back.registry.to_json().dump(), rec.registry.to_json().dump());
  const Histogram* h = back.registry.histogram("pc.advance");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 8u);
}

TEST(PerfRecord, RejectsNewerSchema) {
  util::Json j = sample_record().to_json();
  j["schema"] = PerfRecord::kSchemaVersion + 1;
  EXPECT_THROW(PerfRecord::from_json(j), util::JsonError);
}

TEST(PerfLog, AppendReadAllAndLatest) {
  const std::string dir = fresh_dir("append");
  PerfLog log(dir + "/log.jsonl");
  EXPECT_TRUE(log.read_all().empty());
  EXPECT_FALSE(log.latest().has_value());

  for (int i = 0; i < 3; ++i) {
    PerfRecord rec = sample_record();
    rec.version = std::to_string(i);
    log.append(rec);
  }
  const std::vector<PerfRecord> all = log.read_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].version, "0");  // oldest first
  EXPECT_EQ(all[2].version, "2");
  ASSERT_TRUE(log.latest().has_value());
  EXPECT_EQ(log.latest()->version, "2");

  // The file really is JSONL: one parseable object per line.
  std::ifstream in(log.path());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(util::Json::parse(line).is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(PerfLog, QuarantinesCorruptLines) {
  const std::string dir = fresh_dir("quarantine");
  PerfLog log(dir + "/log.jsonl");
  log.append(sample_record());
  log.append(sample_record());

  // Corrupt the middle: insert one non-JSON line and one valid-JSON line
  // that is not a PerfRecord between the two good records.
  std::ifstream in(log.path());
  std::string first, second;
  std::getline(in, first);
  std::getline(in, second);
  in.close();
  std::ofstream out(log.path(), std::ios::trunc);
  out << first << "\n"
      << "{ not json at all\n"
      << "{\"schema\":99,\"app\":\"x\"}\n"
      << second << "\n";
  out.close();

  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& msg) {
    if (level == util::LogLevel::Warn) warnings.push_back(msg);
  });
  const std::vector<PerfRecord> all = log.read_all();
  util::set_log_sink({});

  EXPECT_EQ(all.size(), 2u);  // both good records survive
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("quarantining corrupt perf-log line 2"), std::string::npos)
      << warnings[0];
  EXPECT_NE(warnings[1].find("line 3"), std::string::npos) << warnings[1];
}

TEST(PerfLog, PathInStoreEscapesSeparators) {
  EXPECT_EQ(PerfLog::path_in_store(".histpc", "micro_core"),
            ".histpc/perf-log/micro_core.jsonl");
  EXPECT_EQ(PerfLog::path_in_store(".histpc", "a/b\\c"),
            ".histpc/perf-log/a-b-c.jsonl");
}

// ---------------------------------------------------------------- perf_diff

TEST(PerfDiff, MedianOf) {
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_of({9.0, 1.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

/// Five baseline records with ~2 ms laps and slight run-to-run jitter.
std::vector<PerfRecord> baseline_window() {
  std::vector<PerfRecord> baseline;
  for (int i = 0; i < 5; ++i)
    baseline.push_back(sample_record(2e-3 * (1.0 + 0.02 * (i - 2))));
  return baseline;
}

TEST(PerfDiff, UnchangedCurrentPasses) {
  const PerfDiffReport report = perf_diff(sample_record(2e-3), baseline_window());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_TRUE(report.notes.empty());  // same machine and build throughout
  // Both the mean and the histogram median are compared.
  bool saw_mean = false, saw_p50 = false;
  for (const PerfDiffEntry& e : report.entries) {
    if (e.metric == "pc.advance.mean") saw_mean = true;
    if (e.metric == "pc.advance.p50") saw_p50 = true;
    EXPECT_EQ(e.baseline_n, 5u);
  }
  EXPECT_TRUE(saw_mean);
  EXPECT_TRUE(saw_p50);
}

TEST(PerfDiff, DetectsInjectedTwoXSlowdown) {
  // The acceptance scenario: a deliberate 2x slowdown of pc.advance must
  // regress against the 5-record baseline window under default options.
  const PerfDiffReport report = perf_diff(sample_record(4e-3), baseline_window());
  EXPECT_GE(report.regressions, 1u);
  bool flagged = false;
  for (const PerfDiffEntry& e : report.entries) {
    if (e.metric != "pc.advance.mean") continue;
    flagged = e.regressed;
    EXPECT_NEAR(e.ratio, 2.0, 0.1);
    EXPECT_GT(e.current, e.median + e.band);
  }
  EXPECT_TRUE(flagged);
}

TEST(PerfDiff, DetectsSymmetricImprovement) {
  const PerfDiffReport report = perf_diff(sample_record(0.5e-3), baseline_window());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_GE(report.improvements, 1u);
}

TEST(PerfDiff, WindowLimitsBaseline) {
  // Nine old slow records followed by five fast ones: with the default
  // window of 5 only the fast tail counts, so a fast current run is clean.
  std::vector<PerfRecord> baseline;
  for (int i = 0; i < 9; ++i) baseline.push_back(sample_record(50e-3));
  for (const PerfRecord& rec : baseline_window()) baseline.push_back(rec);
  const PerfDiffReport report = perf_diff(sample_record(2e-3), baseline);
  EXPECT_EQ(report.regressions, 0u);
  for (const PerfDiffEntry& e : report.entries) EXPECT_EQ(e.baseline_n, 5u);
}

TEST(PerfDiff, NewMetricWithoutHistoryIsSkipped) {
  PerfRecord current = sample_record(2e-3);
  current.registry.add_seconds("brand.new_timer", 1.0);
  const PerfDiffReport report = perf_diff(current, baseline_window());
  for (const PerfDiffEntry& e : report.entries)
    EXPECT_EQ(e.metric.find("brand.new_timer"), std::string::npos) << e.metric;
}

TEST(PerfDiff, NotesMachineAndBuildMismatch) {
  PerfRecord current = sample_record(2e-3);
  current.machine = "otherhost";
  current.build = "fff9999";
  const PerfDiffReport report = perf_diff(current, baseline_window());
  ASSERT_GE(report.notes.size(), 2u);
  bool machine_note = false, build_note = false;
  for (const std::string& note : report.notes) {
    if (note.find("machine") != std::string::npos) machine_note = true;
    if (note.find("build") != std::string::npos) build_note = true;
  }
  EXPECT_TRUE(machine_note);
  EXPECT_TRUE(build_note);
}

TEST(PerfDiff, EmptyBaselineYieldsNoEntries) {
  const PerfDiffReport report = perf_diff(sample_record(), {});
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(report.regressions, 0u);
}

TEST(PerfDiff, ReportToJsonNamesEveryField) {
  const util::Json j = perf_diff(sample_record(4e-3), baseline_window()).to_json();
  EXPECT_GT(j.at("regressions").as_int(), 0);
  ASSERT_TRUE(j.at("entries").is_array());
  const util::Json& entry = j.at("entries").as_array().front();
  for (const char* key : {"metric", "current", "median", "band", "ratio", "regressed"})
    EXPECT_TRUE(entry.as_object().find(key) != nullptr) << key;
}

}  // namespace
}  // namespace histpc::telemetry
