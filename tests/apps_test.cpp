#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/session.h"
#include "metrics/trace_view.h"
#include "util/strings.h"

namespace histpc::apps {
namespace {

using metrics::MetricKind;
using metrics::TraceView;
using resources::Focus;

double fraction(const TraceView& view, MetricKind m, const std::string& part) {
  Focus f = Focus::whole_program(view.resources());
  if (!part.empty()) {
    auto comps = util::split(part, '/');
    int idx = view.resources().hierarchy_index(comps[1]);
    f = f.with_part(static_cast<std::size_t>(idx), part);
  }
  return view.fraction(m, f, 0.0, view.trace().duration);
}

// ------------------------------------------------------------- registry

class EveryApp : public testing::TestWithParam<std::string> {};

TEST_P(EveryApp, BuildsSimulatesAndValidates) {
  AppParams params;
  params.target_duration = 80.0;
  simmpi::ExecutionTrace trace = run_app(GetParam(), params);
  EXPECT_NO_THROW(trace.validate());
  EXPECT_GT(trace.duration, 10.0);
  EXPECT_GT(trace.totals().cpu, 0.0);
}

TEST_P(EveryApp, IsDeterministic) {
  AppParams params;
  params.target_duration = 50.0;
  simmpi::ExecutionTrace a = run_app(GetParam(), params);
  simmpi::ExecutionTrace b = run_app(GetParam(), params);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  for (int r = 0; r < a.num_ranks(); ++r)
    EXPECT_EQ(a.ranks[r].intervals.size(), b.ranks[r].intervals.size());
}

INSTANTIATE_TEST_SUITE_P(All, EveryApp,
                         testing::ValuesIn(app_names()),
                         [](const auto& param_info) { return param_info.param; });

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(build_app("nope"), std::invalid_argument);
  EXPECT_THROW(build_poisson('Z'), std::invalid_argument);
}

TEST(Registry, NodeBaseRenamesMachines) {
  AppParams p1, p2;
  p1.target_duration = p2.target_duration = 20.0;
  p1.node_base = 1;
  p2.node_base = 17;
  auto a = build_poisson('C', p1);
  auto b = build_poisson('C', p2);
  EXPECT_EQ(a.machine.node_names[0], "poona01");
  EXPECT_EQ(b.machine.node_names[0], "poona17");
}

// ------------------------------------------------------------- poisson C
// The calibration contract: version C reproduces the measured shape the
// paper reports in Section 4.2 for the 2-D decomposition on 4 nodes.

class PoissonCShape : public testing::Test {
 protected:
  static const simmpi::ExecutionTrace& trace() {
    static simmpi::ExecutionTrace t = [] {
      AppParams params;
      params.target_duration = 300.0;
      return run_app("poisson_c", params);
    }();
    return t;
  }
  static const TraceView& view() {
    static TraceView v(trace());
    return v;
  }
};

TEST_F(PoissonCShape, SyncDominatesExecution) {
  // "strongly dominated by synchronization waiting time".
  const double sync = fraction(view(), MetricKind::SyncWaitTime, "");
  EXPECT_GT(sync, 0.55);
  EXPECT_LT(sync, 0.75);
}

TEST_F(PoissonCShape, WaitConcentratedInExchng2AndMain) {
  // Paper: 45% of execution waiting in exchng2, 20% in main.
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Code/exchng2.f"), 0.45, 0.05);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Code/twod.f/main"), 0.20, 0.05);
}

TEST_F(PoissonCShape, WaitSplitsAcrossThreeTags) {
  // Paper: tags 3/0, 3/1, 3/-1 carry 27%, 19%, 20%.
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/SyncObject/Message/3:0"), 0.27,
              0.05);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/SyncObject/Message/3:1"), 0.19,
              0.05);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/SyncObject/Message/3:-1"), 0.20,
              0.05);
}

TEST_F(PoissonCShape, ProcessesThreeAndFourAreWaitDominated) {
  // Paper: processes 3 and 4 wait 81% and 86%; 1 and 2 wait 46% and 47%.
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Process/poisson2d:1"), 0.46, 0.06);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Process/poisson2d:2"), 0.47, 0.06);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Process/poisson2d:3"), 0.81, 0.06);
  EXPECT_NEAR(fraction(view(), MetricKind::SyncWaitTime, "/Process/poisson2d:4"), 0.86, 0.06);
}

TEST_F(PoissonCShape, IoIsNegligible) {
  EXPECT_LT(fraction(view(), MetricKind::IoWaitTime, ""), 0.02);
}

TEST_F(PoissonCShape, SmallFunctionsExistForHistoricPruning) {
  // init.f and stats.f give the directive generator something to prune.
  EXPECT_LT(fraction(view(), MetricKind::ExecTime, "/Code/init.f"), 0.01);
  EXPECT_LT(fraction(view(), MetricKind::ExecTime, "/Code/stats.f"), 0.01);
  EXPECT_TRUE(view().resources().contains("/Code/init.f/init"));
  EXPECT_TRUE(view().resources().contains("/Code/stats.f/printstats"));
}

// --------------------------------------------------------- version naming

TEST(PoissonNaming, VersionAMatchesPaperFigure3) {
  AppParams p;
  p.target_duration = 20.0;
  simmpi::ExecutionTrace trace = run_app("poisson_a", p);
  TraceView view(trace);
  for (const char* r : {"/Code/oned.f/main", "/Code/sweep.f/sweep1d",
                        "/Code/exchng1.f/exchng1", "/Code/diff.f/diff"})
    EXPECT_TRUE(view.resources().contains(r)) << r;
}

TEST(PoissonNaming, VersionBMatchesPaperFigure3) {
  AppParams p;
  p.target_duration = 20.0;
  simmpi::ExecutionTrace trace = run_app("poisson_b", p);
  TraceView view(trace);
  for (const char* r : {"/Code/onednb.f/main", "/Code/nbsweep.f/nbsweep",
                        "/Code/nbexchng.f/nbexchng1", "/Code/diff.f/diff"})
    EXPECT_TRUE(view.resources().contains(r)) << r;
}

TEST(PoissonNaming, VersionDIsVersionCCodeOnEightNodes) {
  AppParams p;
  p.target_duration = 20.0;
  auto c = build_poisson('C', p);
  auto d = build_poisson('D', p);
  EXPECT_EQ(c.num_ranks(), 4);
  EXPECT_EQ(d.num_ranks(), 8);
  // Same function table: same code.
  EXPECT_EQ(c.functions.size(), d.functions.size());
  for (std::size_t i = 0; i < c.functions.size(); ++i)
    EXPECT_EQ(c.functions[i], d.functions[i]);
}

// ------------------------------------------------------------------ ocean

TEST(Ocean, SignificantWaitsSitAboveTwentyPercent) {
  AppParams p;
  p.target_duration = 250.0;
  simmpi::ExecutionTrace trace = run_app("ocean", p);
  TraceView view(trace);
  // The dominant wait regions exceed ~21% (optimal threshold 20%) while
  // whole-program sync is clearly significant.
  const double sync = fraction(view, MetricKind::SyncWaitTime, "");
  EXPECT_GT(sync, 0.20);
  const double comm = fraction(view, MetricKind::SyncWaitTime, "/Code/comm.c");
  EXPECT_GT(comm, 0.20);
}

// ------------------------------------------------------------ tester/bubba

TEST(Tester, MatchesFigure1Resources) {
  AppParams p;
  // Long enough for the infrequent printstatus/vect::print calls to occur.
  p.target_duration = 60.0;
  simmpi::ExecutionTrace trace = run_app("tester", p);
  TraceView view(trace);
  for (const char* r :
       {"/Code/main.C/main", "/Code/main.C/printstatus", "/Code/testutil.C/verifyA",
        "/Code/testutil.C/verifyB", "/Code/vect.C/vect::addEl", "/Code/vect.C/vect::findEl",
        "/Code/vect.C/vect::print", "/Machine/CPU_1", "/Process/Tester:2"})
    EXPECT_TRUE(view.resources().contains(r)) << r;
}

TEST(TaskFarm, MasterWaitsOnResultsViaWildcards) {
  AppParams p;
  p.target_duration = 400.0;
  simmpi::ExecutionTrace trace = run_app("taskfarm", p);
  TraceView view(trace);
  // The master is wait-dominated, concentrated in collectResults on the
  // result tag; the slowest worker barely waits.
  EXPECT_GT(fraction(view, MetricKind::SyncWaitTime, "/Process/taskfarm:1"), 0.70);
  EXPECT_LT(fraction(view, MetricKind::SyncWaitTime, "/Process/taskfarm:4"), 0.30);
  EXPECT_GT(fraction(view, MetricKind::SyncWaitTime, "/Code/master.c/collectResults"), 0.15);
  EXPECT_TRUE(view.resources().contains("/SyncObject/Message/2"));
}

TEST(TaskFarm, DiagnosisFindsTheMasterBottleneck) {
  AppParams p;
  p.target_duration = 900.0;
  core::DiagnosisSession session("taskfarm", p);
  const pc::DiagnosisResult r = session.diagnose();
  EXPECT_TRUE(std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [](const auto& b) {
    return b.hypothesis == "ExcessiveSyncWaitingTime" &&
           b.focus.find("/Code/master.c") != std::string::npos;
  }));
}

TEST(Bubba, PartitionAndGoatAreHot) {
  AppParams p;
  p.target_duration = 100.0;
  simmpi::ExecutionTrace trace = run_app("bubba", p);
  TraceView view(trace);
  EXPECT_TRUE(view.resources().contains("/Machine/goat"));
  // partition.C dominates CPU; goat does the most work.
  EXPECT_GT(fraction(view, MetricKind::CpuTime, "/Code/partition.C"), 0.20);
  EXPECT_GT(fraction(view, MetricKind::CpuTime, "/Machine/goat"),
            fraction(view, MetricKind::CpuTime, "/Machine/moose"));
  EXPECT_LT(fraction(view, MetricKind::CpuTime, "/Code/channel.C"), 0.20);
  EXPECT_LT(fraction(view, MetricKind::CpuTime, "/Code/graph.C"), 0.20);
}

}  // namespace
}  // namespace histpc::apps
