#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace histpc::util {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("/a//b", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "b");
}

TEST(Strings, SplitSingleToken) {
  auto parts = split("abc", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  auto parts = split("", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitWsDropsRuns) {
  auto parts = split_ws("  map  /a\t/b \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "map");
  EXPECT_EQ(parts[1], "/a");
  EXPECT_EQ(parts[2], "/b");
}

TEST(Strings, SplitWsAllWhitespace) { EXPECT_TRUE(split_ws(" \t\n").empty()); }

TEST(Strings, JoinRoundTripsSplit) {
  const std::string s = "/Code/a.f/f1";
  EXPECT_EQ(join(split(s, '/'), "/"), s);
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/Code/a", "/Code"));
  EXPECT_FALSE(starts_with("/Co", "/Code"));
  EXPECT_TRUE(ends_with("a.f", ".f"));
  EXPECT_FALSE(ends_with("f", ".f"));
}

TEST(Strings, PathPrefixRequiresComponentBoundary) {
  EXPECT_TRUE(is_path_prefix("/Code/a.f", "/Code/a.f"));
  EXPECT_TRUE(is_path_prefix("/Code/a.f", "/Code/a.f/f1"));
  EXPECT_FALSE(is_path_prefix("/Code/a.f", "/Code/a.fx"));
  EXPECT_FALSE(is_path_prefix("/Code/a.f/f1", "/Code/a.f"));
  EXPECT_TRUE(is_path_prefix("", "/anything"));
}

TEST(Strings, EditDistanceKnownValues) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("exchng1", "nbexchng1"), 2u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
}

TEST(Strings, NameSimilarityRange) {
  EXPECT_DOUBLE_EQ(name_similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(name_similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(name_similarity("abc", "xyz"), 0.0);
  const double s = name_similarity("sweep.f", "nbsweep.f");
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 1.0);
}

TEST(Strings, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.25, 1), "1.2");  // round-to-even via printf
  EXPECT_EQ(fmt_double(3.14159, 3), "3.142");
  EXPECT_EQ(fmt_percent(0.935), "93.5%");
  EXPECT_EQ(fmt_percent(0.5, 0), "50%");
}

// ------------------------------------------------------------------- json

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_EQ(Json::parse("-12").as_int(), -12);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  Json j = Json::parse(R"({"a": [1, {"b": "x"}], "c": {}})");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
  EXPECT_EQ(j.at("a").as_array()[1].at("b").as_string(), "x");
  EXPECT_TRUE(j.at("c").as_object().empty());
}

TEST(Json, StringEscapes) {
  Json j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, DumpParseRoundTrip) {
  Json j = Json::object();
  j["name"] = "exchng2";
  j["frac"] = 0.451;
  j["count"] = 42;
  j["flag"] = true;
  Json arr = Json::array();
  arr.push_back("x");
  arr.push_back(Json());
  j["list"] = std::move(arr);
  for (int indent : {0, 2}) {
    Json back = Json::parse(j.dump(indent));
    EXPECT_TRUE(back == j) << "indent=" << indent;
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  std::string s = j.dump();
  EXPECT_LT(s.find("\"z\""), s.find("\"a\""));
}

TEST(Json, CopiesAreDeep) {
  Json a = Json::parse(R"({"k": [1, 2], "o": {"x": 1}})");
  Json b = a;
  b["k"].as_array().push_back(Json(3));
  b["o"]["x"] = 2;
  b["new"] = "only-in-b";
  EXPECT_EQ(a.at("k").as_array().size(), 2u);
  EXPECT_EQ(a.at("o").at("x").as_int(), 1);
  EXPECT_FALSE(a.as_object().contains("new"));
  // Assignment too, including self-assignment safety.
  Json c;
  c = a;
  c["k"].as_array().clear();
  EXPECT_EQ(a.at("k").as_array().size(), 2u);
  a = *&a;
  EXPECT_EQ(a.at("k").as_array().size(), 2u);
}

TEST(Json, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, WrongTypeAccessThrows) {
  Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(Json().as_array(), JsonError);
}

TEST(Json, GetOrFallbacks) {
  Json j = Json::parse(R"({"a": 1.5, "s": "v", "b": true})");
  EXPECT_DOUBLE_EQ(j.get_or("a", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(j.get_or("missing", 7.0), 7.0);
  EXPECT_EQ(j.get_or("s", std::string("d")), "v");
  EXPECT_EQ(j.get_or("missing", std::string("d")), "d");
  EXPECT_EQ(j.get_or("b", false), true);
  EXPECT_EQ(j.get_or("missing", true), true);
}

TEST(Json, AtThrowsOnMissingKey) {
  Json j = Json::parse("{}");
  EXPECT_THROW(j.at("nope"), JsonError);
}

TEST(Json, IntegersSerializeWithoutExponent) {
  Json j(1234567.0);
  EXPECT_EQ(j.dump(), "1234567");
}

TEST(Json, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/histpc_json_test.json";
  write_file(path, "{\"k\": 3}");
  Json j = Json::parse(read_file(path));
  EXPECT_EQ(j.at("k").as_int(), 3);
  std::filesystem::remove(path);
}

TEST(Json, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/histpc/file.json"), JsonError);
}

// --------------------------------------------------------- json fuzzing

/// Build a random JSON document from a seeded generator.
Json random_json(Rng& rng, int depth) {
  const int kind = depth <= 0 ? static_cast<int>(rng.next_below(4))
                              : static_cast<int>(rng.next_below(6));
  switch (kind) {
    case 0: return Json();
    case 1: return Json(rng.next_below(2) == 0);
    case 2: {
      // Mix integers and fractions, positive and negative.
      double v = rng.uniform(-1e6, 1e6);
      if (rng.next_below(2) == 0) v = std::floor(v);
      return Json(v);
    }
    case 3: {
      std::string s;
      const std::size_t len = rng.next_below(12);
      const char alphabet[] = "abc XYZ/\\\"\n\t_0189";
      for (std::size_t i = 0; i < len; ++i)
        s += alphabet[rng.next_below(sizeof(alphabet) - 1)];
      return Json(std::move(s));
    }
    case 4: {
      Json arr = Json::array();
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(random_json(rng, depth - 1));
      return arr;
    }
    default: {
      Json obj = Json::object();
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i)
        obj["k" + std::to_string(i)] = random_json(rng, depth - 1);
      return obj;
    }
  }
}

class JsonFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, DumpParseRoundTripsRandomDocuments) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Json doc = random_json(rng, 4);
    for (int indent : {0, 2}) {
      const Json back = Json::parse(doc.dump(indent));
      EXPECT_TRUE(back == doc) << doc.dump();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
  // All lines up to the last have equal-ish structure: value column starts
  // at the same offset in header and rows.
  auto lines = split(s, '\n');
  EXPECT_EQ(lines[0].find("value"), lines[3].find("22"));
}

TEST(Table, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, TooManyCellsThrows) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"with\"quote", "with\nnewline"});
  std::string s = w.to_string();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), std::invalid_argument);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i)
    if (a2.next_u64() != c.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(42);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.normal(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, NextBelowBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(7), 7u);
}

// -------------------------------------------------------------------- log

TEST(Log, LevelParsingAndNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::Info);
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
}

TEST(Log, SetAndGetLevel) {
  LogLevel prev = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  HISTPC_LOG(Debug) << "filtered out, should not crash";
  set_log_level(prev);
}

TEST(Log, SinkCapturesLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  HISTPC_LOG(Warn) << "captured " << 42;
  set_log_sink({});  // restore the stderr default
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "captured 42");
  HISTPC_LOG(Warn) << "back to stderr, sink must no longer fire";
  EXPECT_EQ(captured.size(), 1u);
}

TEST(Log, UnknownLevelWarnsOnceThenStaysQuiet) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& msg) { captured.push_back(msg); });
  // A value no other test uses: the once-per-distinct-value memory is
  // process-wide, so reuse would make this order-dependent.
  EXPECT_EQ(parse_log_level("utterly-bogus-level"), LogLevel::Info);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("utterly-bogus-level"), std::string::npos);
  EXPECT_EQ(parse_log_level("utterly-bogus-level"), LogLevel::Info);
  EXPECT_EQ(captured.size(), 1u);  // warned once, not per call
  set_log_sink({});
}

}  // namespace
}  // namespace histpc::util
