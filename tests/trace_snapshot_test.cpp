// Binary trace snapshots (histpc-trace-bin-v1) and the content-addressed
// trace cache: JSON <-> binary round-trip property tests (the JSON schema
// is the oracle), corrupt-snapshot handling (truncation, flipped bytes,
// wrong version -> quarantine, never abort), the committed golden fixture
// that locks the on-disk layout, LRU eviction, and the end-to-end oracle:
// diagnosis results are bit-identical between simulated and cache-loaded
// traces.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "core/session.h"
#include "simmpi/trace_cache.h"
#include "simmpi/trace_io.h"
#include "simmpi/trace_snapshot.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"

namespace histpc {
namespace {

namespace fs = std::filesystem;
using simmpi::ExecutionTrace;
using simmpi::IntervalState;
using simmpi::TraceCache;
using simmpi::TraceCacheConfig;
using simmpi::TraceColumns;

std::string temp_dir(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / ("trace_snapshot_" + name);
  fs::remove_all(path);
  fs::create_directories(path);
  return path.string();
}

/// Exact (==, not near) equality on every field; the binary format must
/// round-trip doubles bit-for-bit, like the JSON writer's %.17g does.
void expect_traces_equal(const ExecutionTrace& a, const ExecutionTrace& b) {
  EXPECT_EQ(a.machine.node_names, b.machine.node_names);
  EXPECT_EQ(a.machine.node_speeds, b.machine.node_speeds);
  EXPECT_EQ(a.machine.rank_to_node, b.machine.rank_to_node);
  EXPECT_EQ(a.machine.process_names, b.machine.process_names);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t f = 0; f < a.functions.size(); ++f) {
    EXPECT_EQ(a.functions[f].function, b.functions[f].function);
    EXPECT_EQ(a.functions[f].module, b.functions[f].module);
  }
  EXPECT_EQ(a.sync_objects, b.sync_objects);
  EXPECT_EQ(a.duration, b.duration);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].end_time, b.ranks[r].end_time);
    ASSERT_EQ(a.ranks[r].intervals.size(), b.ranks[r].intervals.size());
    for (std::size_t i = 0; i < a.ranks[r].intervals.size(); ++i) {
      const auto& x = a.ranks[r].intervals[i];
      const auto& y = b.ranks[r].intervals[i];
      EXPECT_EQ(x.t0, y.t0);
      EXPECT_EQ(x.t1, y.t1);
      EXPECT_EQ(x.state, y.state);
      EXPECT_EQ(x.func, y.func);
      EXPECT_EQ(x.sync_object, y.sync_object);
    }
  }
}

/// A randomized but always-valid trace: monotone non-overlapping intervals,
/// ids in range, duration = max rank end time.
ExecutionTrace random_trace(util::Rng& rng) {
  ExecutionTrace t;
  const std::size_t nnodes = 1 + rng.next_below(3);
  const std::size_t nranks = 1 + rng.next_below(4);
  const std::size_t nfuncs = rng.next_below(4);
  const std::size_t nsyncs = rng.next_below(4);
  for (std::size_t n = 0; n < nnodes; ++n) {
    t.machine.node_names.push_back("node" + std::to_string(n));
    t.machine.node_speeds.push_back(rng.uniform(0.5, 2.0));
  }
  for (std::size_t r = 0; r < nranks; ++r) {
    t.machine.rank_to_node.push_back(static_cast<int>(rng.next_below(nnodes)));
    t.machine.process_names.push_back("rand:" + std::to_string(r));
  }
  for (std::size_t f = 0; f < nfuncs; ++f)
    t.functions.push_back({"f" + std::to_string(f), "m" + std::to_string(f % 2)});
  for (std::size_t s = 0; s < nsyncs; ++s)
    t.sync_objects.push_back("Message/" + std::to_string(s));

  t.ranks.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    double time = 0.0;
    const std::size_t n = rng.next_below(30);
    for (std::size_t i = 0; i < n; ++i) {
      simmpi::Interval iv;
      if (rng.next_below(4) == 0) time += rng.uniform(0.0, 0.5);  // gap
      iv.t0 = time;
      time += rng.uniform(1e-6, 2.0);
      iv.t1 = time;
      iv.state = static_cast<IntervalState>(rng.next_below(3));
      iv.func = nfuncs > 0 && rng.next_below(3) != 0
                    ? static_cast<simmpi::FuncId>(rng.next_below(nfuncs))
                    : simmpi::kNoFunc;
      iv.sync_object = iv.state == IntervalState::SyncWait && nsyncs > 0 &&
                               rng.next_below(3) != 0
                           ? static_cast<simmpi::SyncObjectId>(rng.next_below(nsyncs))
                           : simmpi::kNoSyncObject;
      t.ranks[r].intervals.push_back(iv);
    }
    t.ranks[r].end_time = time + rng.uniform(0.0, 0.1);
    t.duration = std::max(t.duration, t.ranks[r].end_time);
  }
  t.validate();
  return t;
}

/// The hand-built trace behind the committed golden fixture. Never change
/// this (or the fixture) without bumping the format version.
ExecutionTrace golden_trace() {
  ExecutionTrace t;
  t.machine.node_names = {"nodeA", "nodeB"};
  t.machine.node_speeds = {1.0, 0.5};
  t.machine.rank_to_node = {0, 1};
  t.machine.process_names = {"golden:0", "golden:1"};
  t.functions = {{"solve", "solver.c"}, {"exchange", "comm.c"}};
  t.sync_objects = {"Message/3:0", "Collective/Barrier"};
  t.ranks.resize(2);
  t.ranks[0].intervals = {
      {0.0, 1.0, IntervalState::Cpu, 0, simmpi::kNoSyncObject},
      {1.0, 1.5, IntervalState::SyncWait, 1, 0},
      {1.5, 2.25, IntervalState::Cpu, simmpi::kNoFunc, simmpi::kNoSyncObject},
  };
  t.ranks[0].end_time = 2.25;
  t.ranks[1].intervals = {
      {0.0, 0.5, IntervalState::IoWait, 0, simmpi::kNoSyncObject},
      {0.5, 2.0, IntervalState::SyncWait, 1, 1},
  };
  t.ranks[1].end_time = 2.0;
  t.duration = 2.25;
  t.validate();
  return t;
}

// ------------------------------------------------- round-trip properties

TEST(TraceSnapshot, RoundTripIsExactOnRandomizedTraces) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    util::Rng rng(seed);
    const ExecutionTrace t = random_trace(rng);
    TraceColumns cols;
    const ExecutionTrace back = simmpi::decode_trace_snapshot(
        simmpi::encode_trace_snapshot(t), &cols);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_traces_equal(t, back);
    back.validate();
    EXPECT_TRUE(cols.matches(back));
  }
}

TEST(TraceSnapshot, AgreesWithJsonOracleFieldForField) {
  // The JSON schema round-trips doubles exactly (%.17g); decoding both
  // serializations of the same trace must produce identical traces.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    util::Rng rng(seed);
    const ExecutionTrace t = random_trace(rng);
    const ExecutionTrace via_json = simmpi::trace_from_json(simmpi::trace_to_json(t));
    const ExecutionTrace via_binary = simmpi::decode_trace_snapshot(
        simmpi::encode_trace_snapshot(t));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_traces_equal(via_json, via_binary);
  }
}

TEST(TraceSnapshot, RoundTripsRealAppTraces) {
  for (const char* app : {"poisson_c", "taskfarm"}) {
    apps::AppParams p;
    p.target_duration = 150.0;
    const ExecutionTrace t = apps::run_app(app, p);
    TraceColumns cols;
    const ExecutionTrace back =
        simmpi::decode_trace_snapshot(simmpi::encode_trace_snapshot(t), &cols);
    SCOPED_TRACE(app);
    expect_traces_equal(t, back);
    EXPECT_TRUE(cols.matches(t));
  }
}

TEST(TraceSnapshot, ColumnsMirrorIntervals) {
  const ExecutionTrace t = golden_trace();
  TraceColumns cols;
  simmpi::decode_trace_snapshot(simmpi::encode_trace_snapshot(t), &cols);
  ASSERT_EQ(cols.ranks.size(), 2u);
  EXPECT_EQ(cols.ranks[0].t0, (std::vector<double>{0.0, 1.0, 1.5}));
  EXPECT_EQ(cols.ranks[0].t1, (std::vector<double>{1.0, 1.5, 2.25}));
  EXPECT_EQ(cols.ranks[0].state, (std::vector<std::uint8_t>{0, 1, 0}));
  EXPECT_EQ(cols.ranks[0].func, (std::vector<simmpi::FuncId>{0, 1, simmpi::kNoFunc}));
  EXPECT_EQ(cols.ranks[1].sync,
            (std::vector<simmpi::SyncObjectId>{simmpi::kNoSyncObject, 1}));
}

// ---------------------------------------------------- corrupt snapshots

TEST(TraceSnapshot, TruncationAlwaysThrowsCleanly) {
  const std::string bytes = simmpi::encode_trace_snapshot(golden_trace());
  const std::size_t cuts[] = {0, 1, 7, 8, 11, 12, 15, 16, 40,
                              bytes.size() / 2, bytes.size() - 1};
  for (std::size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    EXPECT_THROW(simmpi::decode_trace_snapshot(std::string_view(bytes).substr(0, cut)),
                 simmpi::SnapshotError);
  }
}

TEST(TraceSnapshot, FlippedByteFailsTheCrc) {
  const std::string pristine = simmpi::encode_trace_snapshot(golden_trace());
  for (std::size_t pos : {std::size_t{20}, pristine.size() / 2, pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    SCOPED_TRACE("flip at " + std::to_string(pos));
    try {
      simmpi::decode_trace_snapshot(bytes);
      FAIL() << "corrupt snapshot decoded successfully";
    } catch (const simmpi::SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
    }
  }
}

TEST(TraceSnapshot, WrongVersionRejected) {
  std::string bytes = simmpi::encode_trace_snapshot(golden_trace());
  bytes[8] = 2;  // the version field follows the 8-byte magic
  try {
    simmpi::decode_trace_snapshot(bytes);
    FAIL() << "future-version snapshot decoded successfully";
  } catch (const simmpi::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(TraceSnapshot, BadMagicRejected) {
  std::string bytes = simmpi::encode_trace_snapshot(golden_trace());
  bytes[0] = 'X';
  EXPECT_THROW(simmpi::decode_trace_snapshot(bytes), simmpi::SnapshotError);
}

// ------------------------------------------------------- golden fixture

TEST(TraceSnapshot, GoldenFixtureLocksOnDiskLayout) {
  const std::string path =
      std::string(HISTPC_TEST_DATA_DIR) + "/golden.histpc-trace-bin-v1";
  const std::string fixture = util::read_file(path);
  // Byte-identical encode: any (even accidental) format change trips this.
  EXPECT_EQ(simmpi::encode_trace_snapshot(golden_trace()), fixture);
  expect_traces_equal(golden_trace(), simmpi::decode_trace_snapshot(fixture));
}

// ----------------------------------------------------------- TraceCache

TEST(TraceCacheTest, MissThenStoreThenHit) {
  telemetry::Registry reg;
  const TraceCache cache({temp_dir("miss_store_hit"), 64 << 20}, &reg);
  const ExecutionTrace t = golden_trace();
  const simmpi::TraceKey key{42, 43};

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(reg.counter("trace_cache.miss"), 1u);

  cache.store(key, t);
  EXPECT_EQ(reg.counter("trace_cache.store"), 1u);

  TraceColumns cols;
  const auto hit = cache.load(key, &cols);
  ASSERT_TRUE(hit.has_value());
  expect_traces_equal(t, *hit);
  EXPECT_TRUE(cols.matches(*hit));
  EXPECT_EQ(reg.counter("trace_cache.hit"), 1u);
}

TEST(TraceCacheTest, ContentKeyIsStableAndSensitive) {
  apps::AppParams p;
  p.target_duration = 150.0;
  const simmpi::SimProgram program = apps::build_app("poisson_c", p);
  const simmpi::NetworkModel net = apps::network_for("poisson_c");
  const simmpi::TraceKey key = simmpi::trace_content_key(program, net);
  EXPECT_EQ(key, simmpi::trace_content_key(program, net));  // deterministic

  apps::AppParams longer = p;
  longer.target_duration = 300.0;
  EXPECT_NE(key, simmpi::trace_content_key(apps::build_app("poisson_c", longer), net));
  simmpi::NetworkModel slow = net;
  slow.bytes_per_second /= 2;
  EXPECT_NE(key, simmpi::trace_content_key(program, slow));
}

TEST(TraceCacheTest, QuarantinesCorruptSnapshotAndRecovers) {
  telemetry::Registry reg;
  const std::string dir = temp_dir("quarantine");
  const TraceCache cache({dir, 64 << 20}, &reg);
  const simmpi::TraceKey key{7, 8};
  cache.store(key, golden_trace());

  // Corrupt the stored snapshot in place.
  util::write_file(cache.path_for(key), "garbage, not a snapshot");

  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& line) {
    if (level == util::LogLevel::Warn) warnings.push_back(line);
  });
  const auto result = cache.load(key);
  util::set_log_sink({});

  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(reg.counter("trace_cache.quarantined"), 1u);
  EXPECT_EQ(reg.counter("trace_cache.miss"), 1u);
  EXPECT_FALSE(fs::exists(cache.path_for(key)));
  EXPECT_TRUE(fs::exists(cache.path_for(key) + ".quarantined"));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("quarantining corrupt trace snapshot"), std::string::npos);

  // The slot is reusable: a fresh store serves hits again.
  cache.store(key, golden_trace());
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(TraceCacheTest, KeyMismatchIsAMissNotAHit) {
  telemetry::Registry reg;
  const std::string dir = temp_dir("key_mismatch");
  const TraceCache cache({dir, 64 << 20}, &reg);
  const ExecutionTrace t = golden_trace();
  cache.store({5, 500}, t);

  // Same filename (primary digest), different check digest — a filename
  // collision or a renamed file. Must not serve the stored trace.
  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& line) {
    if (level == util::LogLevel::Warn) warnings.push_back(line);
  });
  EXPECT_FALSE(cache.load({5, 501}).has_value());
  util::set_log_sink({});
  EXPECT_EQ(reg.counter("trace_cache.key_mismatch"), 1u);
  EXPECT_EQ(reg.counter("trace_cache.miss"), 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("key mismatch"), std::string::npos);
  // The file survives the mismatch: the slot's true owner still hits.
  EXPECT_TRUE(cache.load({5, 500}).has_value());
  EXPECT_EQ(reg.counter("trace_cache.hit"), 1u);

  // A raw snapshot without the key header (pre-TraceKey cache file) cannot
  // be verified; it is quarantined like any other unvalidatable file.
  cache.store({6, 600}, t);
  util::write_file(cache.path_for({6, 600}), simmpi::encode_trace_snapshot(t));
  util::set_log_sink([&](util::LogLevel level, const std::string& line) {
    if (level == util::LogLevel::Warn) warnings.push_back(line);
  });
  EXPECT_FALSE(cache.load({6, 600}).has_value());
  util::set_log_sink({});
  EXPECT_TRUE(fs::exists(cache.path_for({6, 600}) + ".quarantined"));
}

TEST(TraceCacheTest, EvictsLeastRecentlyUsedPastByteCap) {
  telemetry::Registry reg;
  const std::string dir = temp_dir("evict");
  const ExecutionTrace t = golden_trace();
  const std::uint64_t snapshot_bytes = simmpi::encode_trace_snapshot(t).size();
  // Room for two snapshots, not three.
  const TraceCache cache({dir, snapshot_bytes * 5 / 2}, &reg);

  cache.store({1, 1}, t);
  cache.store({2, 2}, t);
  // Age the first two so mtime order is unambiguous even on coarse clocks.
  const auto old = fs::file_time_type::clock::now() - std::chrono::hours(2);
  fs::last_write_time(cache.path_for({1, 1}), old);
  fs::last_write_time(cache.path_for({2, 2}), old + std::chrono::minutes(1));
  EXPECT_EQ(reg.counter("trace_cache.evicted"), 0u);

  cache.store({3, 3}, t);
  EXPECT_EQ(reg.counter("trace_cache.evicted"), 1u);
  EXPECT_FALSE(fs::exists(cache.path_for({1, 1})));  // oldest gone
  EXPECT_TRUE(fs::exists(cache.path_for({2, 2})));
  EXPECT_TRUE(fs::exists(cache.path_for({3, 3})));
}

TEST(TraceCacheTest, HitTouchKeepsHotEntryThroughEviction) {
  // True LRU, not FIFO: a load() must refresh the entry's recency, so a
  // hot old entry outlives a cold newer one when the cap forces eviction.
  telemetry::Registry reg;
  const std::string dir = temp_dir("touch");
  const ExecutionTrace t = golden_trace();
  const std::uint64_t snapshot_bytes = simmpi::encode_trace_snapshot(t).size();
  const TraceCache cache({dir, snapshot_bytes * 5 / 2}, &reg);

  cache.store({1, 1}, t);
  cache.store({2, 2}, t);
  // Make 1 the older entry, then heat it with a hit.
  const auto old = fs::file_time_type::clock::now() - std::chrono::hours(2);
  fs::last_write_time(cache.path_for({1, 1}), old);
  fs::last_write_time(cache.path_for({2, 2}), old + std::chrono::hours(1));
  ASSERT_TRUE(cache.load({1, 1}).has_value());

  cache.store({3, 3}, t);  // over cap: evicts the least recently USED
  EXPECT_EQ(reg.counter("trace_cache.evicted"), 1u);
  EXPECT_TRUE(fs::exists(cache.path_for({1, 1})));   // hot survives
  EXPECT_FALSE(fs::exists(cache.path_for({2, 2})));  // cold goes
  EXPECT_TRUE(fs::exists(cache.path_for({3, 3})));
}

// ------------------------------------------------- session-level oracle

void expect_results_identical(const pc::DiagnosisResult& a, const pc::DiagnosisResult& b) {
  ASSERT_EQ(a.bottlenecks.size(), b.bottlenecks.size());
  for (std::size_t i = 0; i < a.bottlenecks.size(); ++i) {
    EXPECT_EQ(a.bottlenecks[i].hypothesis, b.bottlenecks[i].hypothesis);
    EXPECT_EQ(a.bottlenecks[i].focus, b.bottlenecks[i].focus);
    EXPECT_EQ(a.bottlenecks[i].t_found, b.bottlenecks[i].t_found);
    EXPECT_EQ(a.bottlenecks[i].fraction, b.bottlenecks[i].fraction);
  }
  EXPECT_EQ(a.stats.nodes_created, b.stats.nodes_created);
  EXPECT_EQ(a.stats.pairs_tested, b.stats.pairs_tested);
  EXPECT_EQ(a.stats.bottlenecks, b.stats.bottlenecks);
  EXPECT_EQ(a.stats.end_time, b.stats.end_time);
  EXPECT_EQ(a.stats.last_true_time, b.stats.last_true_time);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].hypothesis, b.nodes[i].hypothesis);
    EXPECT_EQ(a.nodes[i].focus, b.nodes[i].focus);
    EXPECT_EQ(a.nodes[i].status, b.nodes[i].status);
    EXPECT_EQ(a.nodes[i].fraction, b.nodes[i].fraction);
  }
}

TEST(TraceCacheSession, DiagnosisBitIdenticalAcrossSimulateAndCacheLoad) {
  apps::AppParams p;
  p.target_duration = 300.0;
  pc::PcConfig cached_cfg;
  cached_cfg.trace_cache_dir = temp_dir("oracle");

  core::DiagnosisSession plain("poisson_c", p);              // no cache
  core::DiagnosisSession cold("poisson_c", p, cached_cfg);   // miss + store
  core::DiagnosisSession warm("poisson_c", p, cached_cfg);   // hit

  EXPECT_EQ(cold.registry().counter("trace_cache.miss"), 1u);
  EXPECT_EQ(warm.registry().counter("trace_cache.hit"), 1u);
  EXPECT_GT(warm.registry().timer("session.trace_load").seconds, 0.0);
  EXPECT_EQ(warm.registry().timer("session.simulate").count, 0u);

  expect_traces_equal(plain.trace(), cold.trace());
  expect_traces_equal(plain.trace(), warm.trace());

  const pc::DiagnosisResult r_plain = plain.diagnose();
  const pc::DiagnosisResult r_cold = cold.diagnose();
  const pc::DiagnosisResult r_warm = warm.diagnose();
  expect_results_identical(r_plain, r_cold);
  expect_results_identical(r_plain, r_warm);
}

TEST(TraceCacheSession, CorruptSnapshotFallsBackToSimulation) {
  apps::AppParams p;
  p.target_duration = 150.0;
  pc::PcConfig cfg;
  cfg.trace_cache_dir = temp_dir("session_fallback");

  core::DiagnosisSession cold("poisson_c", p, cfg);
  // Trash every snapshot in the cache directory.
  for (const auto& de : fs::directory_iterator(cfg.trace_cache_dir))
    if (de.path().extension() == ".htb") util::write_file(de.path().string(), "zap");

  util::set_log_sink([](util::LogLevel, const std::string&) {});  // keep output clean
  core::DiagnosisSession recovered("poisson_c", p, cfg);
  util::set_log_sink({});

  EXPECT_EQ(recovered.registry().counter("trace_cache.quarantined"), 1u);
  EXPECT_EQ(recovered.registry().counter("trace_cache.hit"), 0u);
  EXPECT_GT(recovered.registry().timer("session.simulate").count, 0u);
  expect_traces_equal(cold.trace(), recovered.trace());
  expect_results_identical(cold.diagnose(), recovered.diagnose());
}

}  // namespace
}  // namespace histpc
