// Property and unit tests for the indexed/batched metric engine: the
// columnar IntervalIndex and MetricBatch must agree with the retained
// linear-scan oracle (MetricInstance) on every trace, focus, and window.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.h"
#include "metrics/interval_index.h"
#include "metrics/metric_batch.h"
#include "metrics/metric_instance.h"
#include "metrics/trace_view.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "util/rng.h"

namespace histpc::metrics {
namespace {

using resources::Focus;
using simmpi::FunctionScope;
using simmpi::Recorder;

// ------------------------------------------------- random trace generation

struct RoundSpec {
  std::vector<int> func_of_rank;  ///< index into the pool, -1 = unscoped
  std::vector<double> compute;
  std::vector<double> io;  ///< 0 = no I/O this round
  int comm = 0;            ///< 0 = none, 1 = pairwise messages, 2 = barrier
  int tag = 0;
};

constexpr std::pair<const char*, const char*> kFuncPool[] = {
    {"kernel", "kern.c"}, {"solver", "kern.c"},     {"exchange", "comm.c"},
    {"pack", "comm.c"},   {"checkpoint", "disk.c"}, {"main", "main.c"},
};
constexpr int kPoolSize = static_cast<int>(std::size(kFuncPool));

/// A random-but-deterministic SPMD program: random per-rank function scopes,
/// compute and I/O bursts, interleaved with pairwise messages (random tags)
/// and barriers so every interval state and sync-object kind appears.
simmpi::ExecutionTrace random_trace(util::Rng& rng) {
  const int nranks = 2 + static_cast<int>(rng.next_below(4));  // 2..5
  const int nrounds = 6 + static_cast<int>(rng.next_below(10));

  std::vector<RoundSpec> rounds(static_cast<std::size_t>(nrounds));
  for (auto& round : rounds) {
    for (int r = 0; r < nranks; ++r) {
      round.func_of_rank.push_back(rng.next_double() < 0.15
                                       ? -1
                                       : static_cast<int>(rng.next_below(kPoolSize)));
      round.compute.push_back(rng.uniform(0.01, 0.6));
      round.io.push_back(rng.next_double() < 0.3 ? rng.uniform(0.01, 0.2) : 0.0);
    }
    const double p = rng.next_double();
    round.comm = p < 0.4 ? 1 : (p < 0.6 ? 2 : 0);
    round.tag = 1 + static_cast<int>(rng.next_below(3));
  }

  simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(nranks, "node", "proc");
  simmpi::ProgramBuilder b(m);
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (const RoundSpec& round : rounds) {
      const auto rank = static_cast<std::size_t>(r.rank());
      const int f = round.func_of_rank[rank];
      if (f >= 0) {
        FunctionScope scope(r, kFuncPool[f].first, kFuncPool[f].second);
        r.compute(round.compute[rank]);
      } else {
        r.compute(round.compute[rank]);
      }
      if (round.io[rank] > 0) r.io(round.io[rank]);
      if (round.comm == 1 && nranks > 1) {
        // Even ranks send to their odd neighbour; a trailing odd-man-out
        // rank sits the exchange round out.
        if (r.rank() % 2 == 0 && r.rank() + 1 < r.size())
          r.send(r.rank() + 1, round.tag, 1 << 12);
        else if (r.rank() % 2 == 1)
          r.recv(r.rank() - 1, round.tag);
      } else if (round.comm == 2) {
        r.barrier();
      }
    }
  });
  return simmpi::Simulator().run(b.build());
}

/// A random focus drawn from resources that exist in the trace (plus the
/// unconstrained root for each hierarchy).
Focus random_focus(util::Rng& rng, const TraceView& view) {
  const simmpi::ExecutionTrace& trace = view.trace();
  Focus f = Focus::whole_program(view.resources());

  const double code = rng.next_double();
  if (code < 0.4 && !trace.functions.empty()) {
    const auto& fi = trace.functions[rng.next_below(trace.functions.size())];
    f = f.with_part(0, "/Code/" + fi.module + "/" + fi.function);
  } else if (code < 0.6 && !trace.functions.empty()) {
    const auto& fi = trace.functions[rng.next_below(trace.functions.size())];
    f = f.with_part(0, "/Code/" + fi.module);
  }

  const double where = rng.next_double();
  if (where < 0.25) {
    f = f.with_part(1, "/Machine/" +
                           trace.machine.node_names[rng.next_below(
                               trace.machine.node_names.size())]);
  } else if (where < 0.5) {
    f = f.with_part(2, "/Process/" +
                           trace.machine.process_names[rng.next_below(
                               trace.machine.process_names.size())]);
  }

  const double sync = rng.next_double();
  if (sync < 0.25 && !trace.sync_objects.empty()) {
    f = f.with_part(3, "/SyncObject/" +
                           trace.sync_objects[rng.next_below(trace.sync_objects.size())]);
  } else if (sync < 0.35) {
    f = f.with_part(3, "/SyncObject/Message");
  }
  return f;
}

// --------------------------------------------- indexed == scan (property)

TEST(MetricEngineProperty, IndexedQueryMatchesScanOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    ASSERT_NO_THROW(trace.validate());
    const TraceView view(trace);
    for (int i = 0; i < 40; ++i) {
      const Focus focus = random_focus(rng, view);
      const FocusFilter& filter = view.compiled(focus);
      double t0 = rng.uniform(-0.5, trace.duration + 0.5);
      double t1 = rng.uniform(-0.5, trace.duration + 0.5);
      if (t1 < t0) std::swap(t0, t1);
      for (MetricKind metric : kAllMetrics) {
        const double indexed = view.query(metric, filter, t0, t1);
        const double scanned = view.query_scan(metric, filter, t0, t1);
        EXPECT_NEAR(indexed, scanned, 1e-9)
            << "seed " << seed << " focus " << focus.name() << " metric "
            << metric_name(metric) << " window [" << t0 << ", " << t1 << ")";
      }
    }
  }
}

// ------------------------------------- batch == per-instance scan (exact)

TEST(MetricEngineProperty, SequentialBatchIsBitIdenticalToInstances) {
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    const TraceView view(trace);

    MetricBatch batch(view, /*eval_threads=*/0);
    std::vector<MetricInstance> instances;
    std::vector<MetricBatch::SlotId> slots;
    std::vector<const FocusFilter*> filters;

    // Slots join the batch mid-run (start >= current cursor), mirroring how
    // the consultant inserts probes over time.
    double now = 0.0;
    int added = 0;
    while (now < trace.duration) {
      const int join = static_cast<int>(rng.next_below(3));
      for (int j = 0; j < join && added < 12; ++j, ++added) {
        const Focus focus = random_focus(rng, view);
        const FocusFilter& filter = view.compiled(focus);
        const MetricKind metric = kAllMetrics[rng.next_below(std::size(kAllMetrics))];
        const double start = now + rng.uniform(0.0, 0.4);
        slots.push_back(batch.add(metric, filter, start));
        instances.emplace_back(view, metric, filter, start);
        filters.push_back(&filter);
      }
      now += rng.uniform(0.05, 0.9);
      batch.advance_all(now);
      for (auto& inst : instances) inst.advance(now);
      for (std::size_t k = 0; k < slots.size(); ++k) {
        EXPECT_DOUBLE_EQ(batch.value(slots[k]), instances[k].value()) << "seed " << seed;
        EXPECT_DOUBLE_EQ(batch.observed(slots[k]), instances[k].observed());
      }
    }
  }
}

TEST(MetricEngine, RemovedSlotStopsAccumulating) {
  util::Rng rng(42);
  const simmpi::ExecutionTrace trace = random_trace(rng);
  const TraceView view(trace);
  const FocusFilter& filter = view.compiled(Focus::whole_program(view.resources()));

  MetricBatch batch(view, 0);
  const auto kept = batch.add(MetricKind::ExecTime, filter, 0.0);
  const auto removed = batch.add(MetricKind::ExecTime, filter, 0.0);
  const double mid = trace.duration / 2;
  batch.advance_all(mid);
  const double at_removal = batch.value(removed);
  EXPECT_GT(at_removal, 0.0);
  batch.remove(removed);
  batch.advance_all(trace.duration);
  EXPECT_DOUBLE_EQ(batch.value(removed), at_removal);
  EXPECT_GT(batch.value(kept), at_removal);
  EXPECT_EQ(batch.num_active(), 1u);
}

// ------------------------------------------------------- threaded batch

TEST(MetricEngineProperty, ThreadedBatchMatchesSequential) {
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    util::Rng rng(seed);
    const simmpi::ExecutionTrace trace = random_trace(rng);
    const TraceView view(trace);

    MetricBatch seq(view, 0);
    MetricBatch par(view, 4);
    std::vector<MetricBatch::SlotId> sslots, pslots;
    for (int i = 0; i < 10; ++i) {
      const Focus focus = random_focus(rng, view);
      const FocusFilter& filter = view.compiled(focus);
      const MetricKind metric = kAllMetrics[rng.next_below(std::size(kAllMetrics))];
      const double start = rng.uniform(0.0, trace.duration / 3);
      sslots.push_back(seq.add(metric, filter, start));
      pslots.push_back(par.add(metric, filter, start));
    }
    for (double t = 0.3; t < trace.duration + 0.3; t += 0.3) {
      seq.advance_all(t);
      par.advance_all(t);
    }
    for (std::size_t k = 0; k < sslots.size(); ++k)
      EXPECT_NEAR(seq.value(sslots[k]), par.value(pslots[k]), 1e-9) << "seed " << seed;
  }
}

// ------------------------------------------------------------ unit tests

/// Fixed two-rank trace (same shape as metrics_test): rank 0 computes 2s in
/// kernel then sends; rank 1 waits ~2s, computes 1s, does 0.5s of I/O.
simmpi::ExecutionTrace small_trace() {
  simmpi::MachineSpec m = simmpi::MachineSpec::one_to_one(2, "node", "proc");
  simmpi::ProgramBuilder b(m);
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    if (r.rank() == 0) {
      {
        FunctionScope f(r, "kernel", "kern.c");
        r.compute(2.0);
      }
      r.send(1, 5, 100);
      r.compute(1.5);
    } else {
      r.recv(0, 5);
      r.compute(1.0);
      r.io(0.5);
    }
  });
  simmpi::NetworkModel net;
  net.latency = 0.0;
  net.bytes_per_second = 1e9;
  return simmpi::Simulator(net).run(b.build());
}

class MetricEngineUnit : public testing::Test {
 protected:
  MetricEngineUnit() : trace_(small_trace()), view_(trace_) {}
  simmpi::ExecutionTrace trace_;
  TraceView view_;
};

TEST_F(MetricEngineUnit, WindowInsideOneIntervalStraddlesBothEnds) {
  // [0.5, 1.25) lies strictly inside the kernel's [0, 2) interval: the
  // index's boundary clipping handles a window with no interior.
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  const FocusFilter& filter = view_.compiled(f);
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, filter, 0.5, 1.25), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::CpuTime, filter, 0.5, 1.25),
                   view_.query_scan(MetricKind::CpuTime, filter, 0.5, 1.25));
}

TEST_F(MetricEngineUnit, WindowStraddlingIntervalBoundaryClips) {
  Focus f = Focus::whole_program(view_.resources()).with_part(0, "/Code/kern.c/kernel");
  const FocusFilter& filter = view_.compiled(f);
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, filter, 1.5, 10.0), 0.5, 1e-12);
  EXPECT_NEAR(view_.query(MetricKind::CpuTime, filter, -3.0, 0.25), 0.25, 1e-12);
}

TEST_F(MetricEngineUnit, ZeroWidthWindowIsZero) {
  const FocusFilter& filter = view_.compiled(Focus::whole_program(view_.resources()));
  for (MetricKind metric : kAllMetrics) {
    EXPECT_DOUBLE_EQ(view_.query(metric, filter, 1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(view_.fraction(metric, filter, 1.0, 1.0), 0.0);
  }
}

TEST_F(MetricEngineUnit, EmptyRankSelectionIsZeroEverywhere) {
  FocusFilter filter = view_.compile(Focus::whole_program(view_.resources()));
  filter.ranks.assign(filter.ranks.size(), false);
  filter.finalize();
  EXPECT_EQ(filter.num_selected_ranks, 0);
  EXPECT_DOUBLE_EQ(view_.query(MetricKind::ExecTime, filter, 0.0, trace_.duration), 0.0);
  EXPECT_DOUBLE_EQ(view_.fraction(MetricKind::ExecTime, filter, 0.0, trace_.duration), 0.0);

  MetricBatch batch(view_, 0);
  const auto slot = batch.add(MetricKind::ExecTime, filter, 0.0);
  batch.advance_all(trace_.duration);
  EXPECT_DOUBLE_EQ(batch.value(slot), 0.0);
  EXPECT_DOUBLE_EQ(batch.fraction(slot), 0.0);
}

TEST_F(MetricEngineUnit, CompiledCacheReturnsStableReferences) {
  const Focus whole = Focus::whole_program(view_.resources());
  const FocusFilter* first = &view_.compiled(whole);
  // Churn the cache with every function-level focus; the first reference
  // must survive (MetricBatch keeps such pointers for the whole search).
  for (const auto& fi : trace_.functions)
    view_.compiled(whole.with_part(0, "/Code/" + fi.module + "/" + fi.function));
  EXPECT_EQ(first, &view_.compiled(whole));
  EXPECT_EQ(first->num_selected_ranks, 2);
}

// ------------------------------------------- consultant end-to-end parity

TEST(MetricEngineConsultant, BatchedAndScanEnginesProduceIdenticalDiagnoses) {
  apps::AppParams params;
  params.target_duration = 300.0;
  pc::PcConfig batched;
  batched.batched_eval = true;
  pc::PcConfig scan;
  scan.batched_eval = false;

  core::DiagnosisSession a("poisson_a", params, batched);
  core::DiagnosisSession b("poisson_a", params, scan);
  const pc::DiagnosisResult ra = a.diagnose();
  const pc::DiagnosisResult rb = b.diagnose();

  EXPECT_EQ(ra.stats.pairs_tested, rb.stats.pairs_tested);
  EXPECT_EQ(ra.stats.nodes_created, rb.stats.nodes_created);
  ASSERT_EQ(ra.bottlenecks.size(), rb.bottlenecks.size());
  for (std::size_t i = 0; i < ra.bottlenecks.size(); ++i) {
    EXPECT_EQ(ra.bottlenecks[i].hypothesis, rb.bottlenecks[i].hypothesis);
    EXPECT_EQ(ra.bottlenecks[i].focus, rb.bottlenecks[i].focus);
    EXPECT_DOUBLE_EQ(ra.bottlenecks[i].t_found, rb.bottlenecks[i].t_found);
    EXPECT_DOUBLE_EQ(ra.bottlenecks[i].fraction, rb.bottlenecks[i].fraction);
  }
}

}  // namespace
}  // namespace histpc::metrics
