// Fleet-scale experiment store: binary columnar snapshots, the on-disk run
// index, JSON->binary migration (against the committed golden fixture),
// natural run-id ordering, and the N-run directive aggregators. The JSON
// schema is the round-trip oracle throughout: a record is "the same" when
// its to_json().dump() is bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "history/combiner.h"
#include "history/exp_snapshot.h"
#include "history/experiment.h"
#include "history/generator.h"
#include "history/similarity.h"
#include "history/store.h"
#include "util/json.h"
#include "util/log.h"

namespace histpc::history {
namespace {

namespace fs = std::filesystem;
using pc::DirectiveSet;
using pc::NodeStatus;
using pc::Priority;

ExperimentRecord base_record() {
  ExperimentRecord r;
  r.app = "poisson";
  r.version = "A";
  r.machine = "poona01";
  r.scenario = "strong-scaling";
  r.duration = 1000.0;
  r.nranks = 4;
  r.machine_process_one_to_one = true;
  r.threshold_used = 0.20;
  r.pairs_tested = 42;
  r.resources = resources::ResourceDb::with_standard_hierarchies();
  r.resources.add_resource("/Code/oned.f/main");
  r.resources.add_resource("/Code/sweep.f/sweep1d");
  r.resources.add_resource("/Code/init.f/init");
  r.resources.add_resource("/Machine/poona01");
  r.resources.add_resource("/Process/poisson1d:1");
  r.nodes = {
      {"ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>",
       NodeStatus::True, Priority::Medium, 100.0, 0.45},
      {"CPUbound", "</Code/init.f,/Machine,/Process,/SyncObject>", NodeStatus::False,
       Priority::Medium, 120.0, 0.004},
      {"CPUbound", "</Code,/Machine,/Process,/SyncObject>", NodeStatus::True,
       Priority::Medium, 50.0, 0.35},
  };
  r.bottlenecks = {
      {"ExcessiveSyncWaitingTime", "</Code/sweep.f,/Machine,/Process,/SyncObject>", 100.0,
       0.45},
  };
  r.code_usage = {{"/Code/oned.f", 0.40},  {"/Code/oned.f/main", 0.40},
                  {"/Code/sweep.f", 0.55}, {"/Code/sweep.f/sweep1d", 0.55},
                  {"/Code/init.f", 0.002}, {"/Code/init.f/init", 0.002}};
  return r;
}

/// Variations exercising every encoder branch: empty strings, empty SoA
/// sections, legacy records without machine/scenario, odd doubles.
std::vector<ExperimentRecord> varied_records() {
  std::vector<ExperimentRecord> out;
  out.push_back(base_record());

  ExperimentRecord legacy = base_record();
  legacy.machine.clear();
  legacy.scenario.clear();
  legacy.run_id = "legacy_7";
  out.push_back(legacy);

  ExperimentRecord empty;
  empty.app = "bare";
  empty.version = "";
  empty.resources = resources::ResourceDb::with_standard_hierarchies();
  out.push_back(empty);

  ExperimentRecord odd = base_record();
  odd.duration = 0.1 + 0.2;  // not exactly representable: bit-exact f64 matters
  odd.threshold_used = 1e-300;
  odd.pairs_tested = 1ull << 40;
  odd.nodes.push_back({"ExcessiveIOBlockingTime", "</Code,/Machine,/Process,/SyncObject>",
                       NodeStatus::NeverRan, Priority::Low, -1.0, 0.0});
  out.push_back(odd);
  return out;
}

std::string dump(const ExperimentRecord& r) { return r.to_json().dump(2); }

/// Captures Warn+ lines for the test body and keeps ctest output clean.
class LogCapture {
 public:
  LogCapture() {
    util::set_log_sink([this](util::LogLevel level, const std::string& msg) {
      if (level >= util::LogLevel::Warn) warnings_.push_back(msg);
    });
  }
  ~LogCapture() { util::set_log_sink({}); }
  std::size_t warn_count() const { return warnings_.size(); }

 private:
  std::vector<std::string> warnings_;
};

void expect_same_directives(const DirectiveSet& a, const DirectiveSet& b) {
  EXPECT_EQ(a.prunes, b.prunes);
  EXPECT_EQ(a.pair_prunes, b.pair_prunes);
  EXPECT_EQ(a.priorities, b.priorities);
  EXPECT_EQ(a.thresholds, b.thresholds);
  EXPECT_EQ(a.maps, b.maps);
}

class ExpStoreTest : public testing::Test {
 protected:
  ExpStoreTest()
      : dir_(testing::TempDir() + "/histpc_exp_store_test_" +
             testing::UnitTest::GetInstance()->current_test_info()->name()) {
    fs::remove_all(dir_);
  }
  ~ExpStoreTest() override { fs::remove_all(dir_); }

  void write_file(const std::string& path, const std::string& bytes) {
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

// ------------------------------------------------------ binary snapshot

TEST(ExpSnapshotTest, RoundTripMatchesJsonOracleBitForBit) {
  for (const ExperimentRecord& r : varied_records()) {
    const std::string bytes = encode_experiment_record(r);
    const ExperimentRecord back = decode_experiment_record(bytes);
    EXPECT_EQ(dump(back), dump(r)) << "record " << r.app << "/" << r.run_id;
    // Deterministic encoder: same record, same bytes.
    EXPECT_EQ(encode_experiment_record(back), bytes);
  }
}

TEST(ExpSnapshotTest, EveryTruncationThrows) {
  const std::string bytes = encode_experiment_record(base_record());
  for (std::size_t n = 0; n < bytes.size(); n += 7)
    EXPECT_THROW(decode_experiment_record(std::string_view(bytes).substr(0, n)),
                 ExpSnapshotError)
        << "prefix of " << n << " bytes decoded";
}

TEST(ExpSnapshotTest, CorruptionIsDetected) {
  const std::string good = encode_experiment_record(base_record());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_experiment_record(bad_magic), ExpSnapshotError);

  std::string bad_version = good;
  bad_version[8] = static_cast<char>(0x7f);
  EXPECT_THROW(decode_experiment_record(bad_version), ExpSnapshotError);

  // A payload bit-flip must trip the CRC trailer even when the field
  // itself would still parse.
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_experiment_record(flipped), ExpSnapshotError);

  EXPECT_THROW(decode_experiment_record(good + "tail"), ExpSnapshotError);
}

// ------------------------------------------------- golden JSON migration

TEST_F(ExpStoreTest, GoldenJsonFixtureMigratesBitIdentically) {
  // The committed fixture is a legacy record: written before the binary
  // format (or machine/scenario) existed. Dropping it into a store
  // directory must load, migrate to binary, and survive the binary round
  // trip without changing a single JSON byte of the record.
  const std::string golden = std::string(HISTPC_TEST_DATA_DIR) + "/golden_record.json";
  fs::create_directories(dir_);
  fs::copy_file(golden, dir_ + "/poisson_A_3.json");

  const ExperimentRecord oracle =
      ExperimentRecord::from_json(util::Json::parse(util::read_file(golden)));
  EXPECT_EQ(oracle.machine, "");  // legacy defaults exercised
  EXPECT_EQ(oracle.scenario, "");

  ExperimentStore store(dir_);
  auto via_json = store.load("poisson_A_3");
  ASSERT_TRUE(via_json.has_value());
  EXPECT_EQ(dump(*via_json), dump(oracle));

  // load() migrated: the binary file now exists and a fresh instance
  // (cold index) answers from it, bit-identically.
  ASSERT_TRUE(fs::exists(dir_ + "/poisson_A_3.histexp"));
  ExperimentStore fresh(dir_);
  auto via_binary = fresh.load("poisson_A_3");
  ASSERT_TRUE(via_binary.has_value());
  EXPECT_EQ(dump(*via_binary), dump(oracle));

  // The DirectiveSet harvested through the binary path matches the JSON
  // oracle field for field — the acceptance bar for migration.
  GeneratorOptions opts;
  opts.thresholds = true;
  const DirectiveGenerator gen(opts);
  expect_same_directives(gen.from_record(*via_binary), gen.from_record(oracle));
}

TEST_F(ExpStoreTest, MigrateAllConvertsEveryLegacyRecord) {
  fs::create_directories(dir_);
  for (int i = 1; i <= 3; ++i) {
    ExperimentRecord r = base_record();
    r.run_id = "poisson_A_" + std::to_string(i);
    write_file(dir_ + "/" + r.run_id + ".json", r.to_json().dump(2));
  }
  write_file(dir_ + "/broken.json", "{not json");

  ExperimentStore store(dir_);
  LogCapture logs;
  EXPECT_EQ(store.migrate_all(), 3u);
  for (int i = 1; i <= 3; ++i)
    EXPECT_TRUE(fs::exists(dir_ + "/poisson_A_" + std::to_string(i) + ".histexp"));
  EXPECT_FALSE(fs::exists(dir_ + "/broken.histexp"));
  // Second pass: nothing left to migrate.
  EXPECT_EQ(ExperimentStore(dir_).migrate_all(), 0u);
}

// ------------------------------------------------------------- the index

TEST_F(ExpStoreTest, SummariesAnswerWithoutLoadingRecords) {
  ExperimentStore store(dir_);
  ExperimentRecord r = base_record();
  store.save(r);
  r.scenario = "weak-scaling";
  store.save(r);
  r.machine = "poona02";
  store.save(r);

  EXPECT_EQ(store.summaries().size(), 3u);
  EXPECT_EQ(store.summaries({.app = "", .version = "", .machine = "", .scenario = "weak-scaling"}).size(), 2u);
  EXPECT_EQ(store.summaries({.app = "", .version = "", .machine = "poona02", .scenario = ""}).size(), 1u);
  EXPECT_EQ(store.summaries({.app = "", .version = "", .machine = "poona02", .scenario = "strong-scaling"}).size(),
            0u);

  const auto all = store.summaries();
  EXPECT_EQ(all[0].run_id, "poisson_A_1");
  EXPECT_EQ(all[0].nranks, 4);
  EXPECT_EQ(all[0].duration, 1000.0);
  EXPECT_EQ(all[0].bottlenecks, 1u);
}

TEST_F(ExpStoreTest, DeletedIndexIsRebuilt) {
  {
    ExperimentStore store(dir_);
    for (int i = 0; i < 5; ++i) store.save(base_record());
  }
  ASSERT_TRUE(fs::remove(dir_ + "/index-v1.jsonl"));

  ExperimentStore fresh(dir_);
  EXPECT_EQ(fresh.summaries().size(), 5u);
  auto latest = fresh.latest({.app = "poisson", .version = "", .machine = "", .scenario = ""});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_5");
  EXPECT_TRUE(fs::exists(dir_ + "/index-v1.jsonl"));  // heal pass rewrote it
}

TEST_F(ExpStoreTest, CorruptIndexLineIsSkippedAndCompactedAway) {
  {
    ExperimentStore store(dir_);
    store.save(base_record());
  }
  {
    std::ofstream f(dir_ + "/index-v1.jsonl", std::ios::app);
    f << "{this line is garbage\n";
  }

  std::size_t warns_during_fold = 0;
  {
    LogCapture logs;
    ExperimentStore fresh(dir_);
    EXPECT_EQ(fresh.summaries().size(), 1u);
    warns_during_fold = logs.warn_count();
  }
  EXPECT_GE(warns_during_fold, 1u);

  // The fold flagged compaction: the rewritten file parses clean.
  LogCapture quiet;
  ExperimentStore again(dir_);
  EXPECT_EQ(again.summaries().size(), 1u);
  EXPECT_EQ(quiet.warn_count(), 0u);
}

TEST_F(ExpStoreTest, StaleIndexEntryForVanishedFileIsDropped) {
  {
    ExperimentStore store(dir_);
    store.save(base_record());
    store.save(base_record());
  }
  fs::remove(dir_ + "/poisson_A_1.histexp");

  ExperimentStore fresh(dir_);
  const auto entries = fresh.summaries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].run_id, "poisson_A_2");
  EXPECT_EQ(fresh.list().size(), 1u);
}

TEST_F(ExpStoreTest, RemoveTombstonesAcrossInstances) {
  {
    ExperimentStore store(dir_);
    store.save(base_record());
    store.save(base_record());
    EXPECT_TRUE(store.remove("poisson_A_1"));
    EXPECT_FALSE(store.remove("poisson_A_1"));
    EXPECT_EQ(store.summaries().size(), 1u);
  }
  // A fresh instance folds the tombstone line, not just the cached state.
  ExperimentStore fresh(dir_);
  EXPECT_EQ(fresh.summaries().size(), 1u);
  EXPECT_FALSE(fresh.load("poisson_A_1").has_value());
}

TEST_F(ExpStoreTest, SaveUpdatesTheLiveIndex) {
  ExperimentStore store(dir_);
  EXPECT_EQ(store.summaries().size(), 0u);  // index now cached (empty)
  store.save(base_record());
  EXPECT_EQ(store.summaries().size(), 1u);  // visible without a rebuild
  auto latest = store.latest({.app = "poisson", .version = "A", .machine = "", .scenario = ""});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_1");
}

TEST_F(ExpStoreTest, IndexedLatestMatchesScanOracle) {
  ExperimentStore store(dir_);
  ExperimentRecord r = base_record();
  for (int i = 0; i < 6; ++i) store.save(r);
  r.version = "B";
  for (int i = 0; i < 3; ++i) store.save(r);

  for (const auto& [app, version] :
       std::vector<std::pair<std::string, std::string>>{
           {"poisson", "A"}, {"poisson", "B"}, {"poisson", ""}, {"", ""}, {"other", ""}}) {
    auto indexed = store.latest(app, version);
    auto scanned = store.scan_latest(app, version);
    ASSERT_EQ(indexed.has_value(), scanned.has_value()) << app << "/" << version;
    if (indexed) {
      EXPECT_EQ(indexed->run_id, scanned->run_id) << app << "/" << version;
    }
  }
}

// ------------------------------------------------- natural run-id order

TEST(RunIdOrderTest, NumericTailsCompareNumerically) {
  EXPECT_TRUE(run_id_natural_less("run_9", "run_10"));
  EXPECT_FALSE(run_id_natural_less("run_10", "run_9"));
  EXPECT_TRUE(run_id_natural_less("run_2", "run_11"));
  EXPECT_FALSE(run_id_natural_less("run_3", "run_3"));
  // Different heads or non-numeric tails: plain lexicographic.
  EXPECT_TRUE(run_id_natural_less("alpha_2", "beta_1"));
  EXPECT_TRUE(run_id_natural_less("run_final", "run_last"));
}

TEST_F(ExpStoreTest, ListAndLatestSurviveNumericRollover) {
  ExperimentStore store(dir_);
  std::vector<std::string> ids;
  for (int i = 0; i < 13; ++i) ids.push_back(store.save(base_record()));
  ASSERT_EQ(ids.back(), "poisson_A_13");

  // list() must return 1..13 in numeric order: _9 before _10, not after _1.
  const auto listed = store.list();
  ASSERT_EQ(listed.size(), 13u);
  for (int i = 0; i < 13; ++i)
    EXPECT_EQ(listed[static_cast<std::size_t>(i)],
              "poisson_A_" + std::to_string(i + 1));

  auto latest = store.latest("poisson", "A");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->run_id, "poisson_A_13");  // not poisson_A_9

  // Same ordering through the filtered (index-backed) listing and after a
  // cold restart.
  EXPECT_EQ(store.list("poisson", "A"), listed);
  ExperimentStore fresh(dir_);
  EXPECT_EQ(fresh.list(), listed);
}

// --------------------------------------------------- N-run aggregation

DirectiveSet directives_for(std::initializer_list<std::pair<const char*, Priority>> pairs) {
  DirectiveSet s;
  for (const auto& [focus, prio] : pairs)
    s.priorities.push_back({"CPUbound", focus, prio});
  return s;
}

TEST(CombineRunsTest, NEqualsTwoMatchesPairwiseCombine) {
  // Pairs high/low/mixed/one-sided, plus prunes, thresholds and maps on
  // both sides — every field combine() touches.
  DirectiveSet a = directives_for({{"<f1>", Priority::High},
                                   {"<f2>", Priority::Low},
                                   {"<f3>", Priority::High},
                                   {"<f4>", Priority::Low}});
  a.prunes = {{"*", "/SyncObject"}, {"CPUbound", "/Code/init.f"}};
  a.pair_prunes = {{"CPUbound", "<f9>"}};
  a.thresholds = {{"CPUbound", 0.10}, {"*", 0.15}};
  a.maps = {{"/Code/oned.f", "/Code/onednb.f"}};

  DirectiveSet b = directives_for({{"<f1>", Priority::High},
                                   {"<f2>", Priority::High},
                                   {"<f3>", Priority::Low},
                                   {"<f5>", Priority::High}});
  b.prunes = {{"*", "/SyncObject"}, {"IObound", "/Code"}};
  b.thresholds = {{"CPUbound", 0.25}};
  b.maps = {{"/Code/a.f", "/Code/b.f"}};

  for (CombineMode mode : {CombineMode::Intersection, CombineMode::Union}) {
    expect_same_directives(combine_runs({a, b}, mode), combine(a, b, mode));
    expect_same_directives(combine_runs({b, a}, mode), combine(b, a, mode));
  }
}

TEST(CombineRunsTest, IntersectionRequiresAllRunsUnionAnyRun) {
  const DirectiveSet s1 = directives_for({{"<f1>", Priority::High}, {"<f2>", Priority::Low}});
  const DirectiveSet s2 = directives_for({{"<f1>", Priority::High}, {"<f2>", Priority::Low}});
  const DirectiveSet s3 = directives_for({{"<f1>", Priority::High}, {"<f2>", Priority::High}});

  const DirectiveSet inter = combine_runs({s1, s2, s3}, CombineMode::Intersection);
  ASSERT_EQ(inter.priorities.size(), 1u);  // <f2> disagreed; <f1> high everywhere
  EXPECT_EQ(inter.priorities[0].focus, "<f1>");
  EXPECT_EQ(inter.priorities[0].priority, Priority::High);

  const DirectiveSet uni = combine_runs({s1, s2, s3}, CombineMode::Union);
  ASSERT_EQ(uni.priorities.size(), 2u);  // <f2> high in one run -> high
  EXPECT_EQ(uni.priorities[1].priority, Priority::High);
}

TEST(CombineWeightedTest, DeterministicAndSortedOutput) {
  DirectiveSet a = directives_for({{"<f2>", Priority::High}, {"<f1>", Priority::High}});
  a.prunes = {{"CPUbound", "/Code/z"}, {"*", "/SyncObject"}};
  DirectiveSet b = directives_for({{"<f3>", Priority::Low}, {"<f1>", Priority::High}});
  b.prunes = {{"*", "/SyncObject"}};

  const DirectiveSet once = combine_weighted({a, b});
  const DirectiveSet twice = combine_weighted({a, b});
  expect_same_directives(once, twice);
  for (std::size_t i = 1; i < once.priorities.size(); ++i)
    EXPECT_LE(once.priorities[i - 1].focus, once.priorities[i].focus);
}

TEST(CombineWeightedTest, RecentRunsOutvoteAncientOnes) {
  // Three old runs say <f1> is Low; the newest says High. With a short
  // half-life the newest run's weight (1.0) beats the decayed 0.875 of the
  // old trio, so the pair stays High. Pure frequency voting (no decay)
  // would flip it Low.
  const DirectiveSet old_low = directives_for({{"<f1>", Priority::Low}});
  const DirectiveSet new_high = directives_for({{"<f1>", Priority::High}});
  const std::vector<DirectiveSet> sets = {old_low, old_low, old_low, new_high};

  WeightedCombineOptions fast_decay;
  fast_decay.half_life_runs = 1.0;
  const DirectiveSet recency = combine_weighted(sets, fast_decay);
  ASSERT_EQ(recency.priorities.size(), 1u);
  EXPECT_EQ(recency.priorities[0].priority, Priority::High);

  WeightedCombineOptions no_decay;
  no_decay.half_life_runs = 0.0;
  const DirectiveSet frequency = combine_weighted(sets, no_decay);
  ASSERT_EQ(frequency.priorities.size(), 1u);
  EXPECT_EQ(frequency.priorities[0].priority, Priority::Low);
}

TEST(CombineWeightedTest, LoneAncientPruneIsDropped) {
  DirectiveSet ancient;
  ancient.prunes = {{"CPUbound", "/Code/init.f"}};
  DirectiveSet recent1, recent2;

  WeightedCombineOptions opts;
  opts.half_life_runs = 1.0;  // ancient weight 0.25 vs total 1.75
  const DirectiveSet out = combine_weighted({ancient, recent1, recent2}, opts);
  EXPECT_TRUE(out.prunes.empty());

  // The same prune proposed by the newest run survives.
  const DirectiveSet out2 = combine_weighted({recent1, recent2, ancient}, opts);
  ASSERT_EQ(out2.prunes.size(), 1u);
}

TEST(CombineWeightedTest, GeneratorWeightedPathAgreesWithManualPipeline) {
  // from_records_weighted must be exactly: harvest each record, then
  // combine_weighted — no hidden pooling.
  ExperimentRecord r1 = base_record();
  ExperimentRecord r2 = base_record();
  r2.nodes[1].status = NodeStatus::True;  // diverge the harvests

  const DirectiveGenerator gen;
  std::vector<DirectiveSet> sets = {gen.from_record(r1), gen.from_record(r2)};
  expect_same_directives(gen.from_records_weighted({r1, r2}), combine_weighted(sets));
}

// ------------------------------------------------------- run similarity

TEST(SimilarityTest, ScoresAreBoundedAndAppGated) {
  const ExperimentRecord ref = base_record();
  EXPECT_DOUBLE_EQ(run_similarity(ref, ref), 1.0);

  ExperimentRecord other_app = base_record();
  other_app.app = "fft";
  EXPECT_DOUBLE_EQ(run_similarity(ref, other_app), 0.0);

  ExperimentRecord drifted = base_record();
  drifted.version = "B";
  drifted.machine = "other-host";
  const double s = run_similarity(ref, drifted);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(SimilarityTest, SelectionIsDeterministicAndOldestFirst) {
  const ExperimentRecord ref = base_record();
  std::vector<ExperimentRecord> candidates;
  for (int i = 1; i <= 4; ++i) {
    ExperimentRecord c = base_record();
    c.run_id = "poisson_A_" + std::to_string(i);
    candidates.push_back(c);
  }
  ExperimentRecord foreign = base_record();
  foreign.app = "fft";
  foreign.run_id = "fft_A_1";
  candidates.push_back(foreign);

  const auto picked = select_similar_runs(candidates, ref, 3, 0.25);
  ASSERT_EQ(picked.size(), 3u);
  // Identical scores: ties break toward the smaller run_id, and the final
  // order is oldest-first for the weighted combiner.
  EXPECT_EQ(picked[0].run_id, "poisson_A_1");
  EXPECT_EQ(picked[1].run_id, "poisson_A_2");
  EXPECT_EQ(picked[2].run_id, "poisson_A_3");
  for (const auto& p : picked) EXPECT_DOUBLE_EQ(p.similarity, 1.0);

  // The foreign app scored 0 and can never clear min_similarity.
  const auto all = select_similar_runs(candidates, ref, 99, 0.0);
  for (const auto& p : all) EXPECT_NE(p.run_id, "fft_A_1");
}

// -------------------------------------------------- concurrent readers
//
// `histpc serve` points many worker threads at one ExperimentStore. These
// run under the tsan preset (see CMakePresets.json's test filter): a data
// race in the shared_mutex discipline fails the job even when the
// assertions below happen to pass.

class ExpStoreConcurrency : public ExpStoreTest {};

TEST_F(ExpStoreConcurrency, ParallelReadersMatchTheSerialOracle) {
  ExperimentStore store(dir_);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    ExperimentRecord r = base_record();
    r.version = i % 2 ? "A" : "B";
    ids.push_back(store.save(r));
  }
  const auto oracle_summaries = store.summaries();
  const auto oracle_latest = store.latest("poisson", "A");
  ASSERT_TRUE(oracle_latest.has_value());

  // A fresh instance so the first readers also race on index build.
  ExperimentStore shared(dir_);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 20; ++iter) {
        if (shared.summaries().size() != oracle_summaries.size()) ++failures;
        const auto rec = shared.try_load(ids[(t + iter) % ids.size()]);
        if (!rec.has_value()) ++failures;
        const auto latest = shared.latest("poisson", "A");
        if (!latest.has_value() || latest->run_id != oracle_latest->run_id) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ExpStoreConcurrency, ConcurrentLazyMigrationIsRaceFree) {
  // Legacy JSON records migrate to binary on first read; many threads
  // hitting the same cold records must each get the full record and leave
  // one coherent index behind.
  fs::create_directories(dir_);
  std::vector<std::string> ids;
  for (int i = 1; i <= 6; ++i) {
    ExperimentRecord r = base_record();
    r.run_id = "poisson_A_" + std::to_string(i);
    write_file(dir_ + "/" + r.run_id + ".json", r.to_json().dump(2));
    ids.push_back(r.run_id);
  }

  ExperimentStore store(dir_);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto rec = store.try_load(ids[(t + i) % ids.size()]);
        if (!rec.has_value() || rec->app != "poisson") ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& id : ids) EXPECT_TRUE(fs::exists(dir_ + "/" + id + ".histexp"));
  // A cold instance sees every migrated record through the index.
  EXPECT_EQ(ExperimentStore(dir_).summaries().size(), ids.size());
}

TEST_F(ExpStoreConcurrency, ParallelMigrateAllIsDeterministic) {
  // migrate_all(jobs) parallelizes the parse/encode, then folds
  // sequentially in sorted order: count and resulting index must be
  // identical for every thread count.
  for (const int jobs : {1, 2, 4}) {
    const std::string dir = dir_ + "_jobs" + std::to_string(jobs);
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (int i = 1; i <= 5; ++i) {
      ExperimentRecord r = base_record();
      r.run_id = "poisson_A_" + std::to_string(i);
      write_file(dir + "/" + r.run_id + ".json", r.to_json().dump(2));
    }
    write_file(dir + "/broken.json", "{not json");

    LogCapture logs;
    ExperimentStore store(dir);
    EXPECT_EQ(store.migrate_all(jobs), 5u) << "jobs=" << jobs;
    EXPECT_EQ(store.summaries().size(), 5u) << "jobs=" << jobs;
    EXPECT_EQ(ExperimentStore(dir).migrate_all(jobs), 0u) << "jobs=" << jobs;
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace histpc::history
