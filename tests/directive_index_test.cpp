// DirectiveIndex vs the DirectiveSet scan oracle, plus the directive-set
// robustness properties this PR hardens: serialize/parse round-trips,
// line-numbered parse failures, and deterministic threshold-conflict
// resolution in merge()/combine().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "history/combiner.h"
#include "pc/directive_index.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "resources/focus.h"
#include "util/log.h"
#include "util/rng.h"

namespace histpc::pc {
namespace {

using resources::Focus;

// ------------------------------------------------------------- PrefixSet

TEST(PrefixSet, MatchesAncestorsExactAndSelf) {
  PrefixSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains_prefix_of("/Code/a.f"));
  set.insert("/Code/a.f");
  set.insert("/Machine");
  set.insert("/Code/a.f");  // duplicate: ignored
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains_prefix_of("/Code/a.f"));        // exact
  EXPECT_TRUE(set.contains_prefix_of("/Code/a.f/f1"));     // descendant
  EXPECT_TRUE(set.contains_prefix_of("/Machine/n1/cpu0"));  // deep descendant
  EXPECT_FALSE(set.contains_prefix_of("/Code/a.fx"));       // not a '/' boundary
  EXPECT_FALSE(set.contains_prefix_of("/Code"));            // ancestor of a stored prefix
  EXPECT_FALSE(set.contains_prefix_of("/SyncObject/sem"));
}

TEST(PrefixSet, EmptyPrefixMatchesEverySlashPath) {
  // util::is_path_prefix("", name) holds for any name starting with '/';
  // the truncation walk must descend all the way to the empty candidate.
  PrefixSet set;
  set.insert("");
  EXPECT_TRUE(set.contains_prefix_of("/Code"));
  EXPECT_TRUE(set.contains_prefix_of("/Code/a.f/f1"));
  EXPECT_FALSE(set.contains_prefix_of("Code"));  // no leading '/', no boundary
}

// --------------------------------------------- randomized set construction

const std::vector<std::string>& hypothesis_pool() {
  static const std::vector<std::string> pool = {
      std::string(kAnyHypothesis), "CPUbound", "ExcessiveSyncWaitingTime",
      "ExcessiveIOBlockingTime",   "TotalExecutionTime"};
  return pool;
}

const std::vector<std::string>& resource_pool() {
  static const std::vector<std::string> pool = {
      "/Code",          "/Code/a.f",    "/Code/a.f/f1", "/Code/b.f",
      "/Code/b.f/main", "/Machine/n1",  "/Process/p1",  "/SyncObject/sem",
      "/Machine",       "/SyncObject/msgtag/42"};
  return pool;
}

resources::ResourceDb make_db() {
  auto db = resources::ResourceDb::with_standard_hierarchies();
  db.add_resource("/Code/a.f/f1");
  db.add_resource("/Code/b.f/main");
  db.add_resource("/Machine/n1");
  db.add_resource("/Process/p1");
  db.add_resource("/SyncObject/sem");
  db.add_resource("/SyncObject/msgtag/42");
  return db;
}

/// Query foci spanning the interesting cases: unconstrained, one part
/// constrained at several depths, and multiple parts constrained at once.
std::vector<Focus> make_focus_pool(const resources::ResourceDb& db) {
  const Focus whole = Focus::whole_program(db);
  std::vector<Focus> pool = {whole};
  pool.push_back(whole.with_part(0, "/Code/a.f"));
  pool.push_back(whole.with_part(0, "/Code/a.f/f1"));
  pool.push_back(whole.with_part(0, "/Code/b.f/main"));
  pool.push_back(whole.with_part(1, "/Machine/n1"));
  pool.push_back(whole.with_part(2, "/Process/p1"));
  pool.push_back(whole.with_part(3, "/SyncObject/sem"));
  pool.push_back(whole.with_part(3, "/SyncObject/msgtag/42"));
  pool.push_back(
      whole.with_part(0, "/Code/a.f").with_part(3, "/SyncObject/sem"));
  pool.push_back(
      whole.with_part(0, "/Code/b.f/main").with_part(1, "/Machine/n1"));
  return pool;
}

template <typename T>
const T& pick(util::Rng& rng, const std::vector<T>& pool) {
  return pool[rng.next_below(pool.size())];
}

/// A random directive set drawing hypotheses (including "*"), resources,
/// and focus names from the shared pools. Deliberately generates duplicate
/// priority and threshold entries so the scan's tie-breaking rules (first
/// priority wins; first exact threshold wins, last wildcard is fallback)
/// are exercised, not just assumed.
DirectiveSet random_set(util::Rng& rng, const std::vector<Focus>& foci) {
  DirectiveSet set;
  const auto n_prunes = rng.next_below(6);
  for (std::uint64_t i = 0; i < n_prunes; ++i)
    set.prunes.push_back({pick(rng, hypothesis_pool()), pick(rng, resource_pool())});
  const auto n_pairs = rng.next_below(5);
  for (std::uint64_t i = 0; i < n_pairs; ++i)
    set.pair_prunes.push_back({pick(rng, hypothesis_pool()), pick(rng, foci).name()});
  const auto n_prios = rng.next_below(8);
  for (std::uint64_t i = 0; i < n_prios; ++i)
    set.priorities.push_back({pick(rng, hypothesis_pool()), pick(rng, foci).name(),
                              static_cast<Priority>(rng.next_below(3))});
  const auto n_thresholds = rng.next_below(6);
  for (std::uint64_t i = 0; i < n_thresholds; ++i)
    set.thresholds.push_back({pick(rng, hypothesis_pool()),
                              static_cast<double>(1 + rng.next_below(998)) / 1000.0});
  return set;
}

// ------------------------------------------------- scan-vs-index property

class DirectiveIndexFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectiveIndexFuzz, IndexAgreesWithScanOnRandomQueries) {
  util::Rng rng(GetParam());
  const resources::ResourceDb db = make_db();
  const std::vector<Focus> foci = make_focus_pool(db);
  // Queries include every pool hypothesis (among them the literal "*") and
  // names no directive mentions.
  std::vector<std::string> query_hyps = hypothesis_pool();
  query_hyps.push_back("NoSuchHypothesis");

  for (int round = 0; round < 40; ++round) {
    const DirectiveSet set = random_set(rng, foci);
    const DirectiveIndex index(set);
    for (const auto& hyp : query_hyps) {
      for (const Focus& focus : foci) {
        EXPECT_EQ(index.prune_match(hyp, focus), set.prune_match(hyp, focus))
            << "hyp=" << hyp << " focus=" << focus.name() << "\n"
            << set.serialize();
        EXPECT_EQ(index.priority_of(hyp, focus.name()), set.priority_of(hyp, focus.name()))
            << "hyp=" << hyp << " focus=" << focus.name() << "\n"
            << set.serialize();
      }
      EXPECT_EQ(index.threshold_for(hyp), set.threshold_for(hyp))
          << "hyp=" << hyp << "\n"
          << set.serialize();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectiveIndexFuzz, testing::Range<std::uint64_t>(1, 21));

TEST(DirectiveIndex, EmptySetMatchesScanDefaults) {
  const resources::ResourceDb db = make_db();
  const Focus whole = Focus::whole_program(db);
  const DirectiveSet set;
  const DirectiveIndex index(set);
  EXPECT_EQ(index.prune_match("CPUbound", whole), DirectiveSet::PruneKind::None);
  EXPECT_EQ(index.priority_of("CPUbound", whole.name()), Priority::Medium);
  EXPECT_EQ(index.threshold_for("CPUbound"), std::nullopt);
}

TEST(DirectiveIndex, SubtreeReportedOverPairWhenBothMatch) {
  // The scan checks subtree prunes before pair prunes; the index must
  // report the same kind for a pair covered by both.
  const resources::ResourceDb db = make_db();
  const Focus narrowed = Focus::whole_program(db).with_part(0, "/Code/a.f/f1");
  DirectiveSet set;
  set.pair_prunes.push_back({"CPUbound", narrowed.name()});
  set.prunes.push_back({"CPUbound", "/Code/a.f"});
  const DirectiveIndex index(set);
  EXPECT_EQ(set.prune_match("CPUbound", narrowed), DirectiveSet::PruneKind::Subtree);
  EXPECT_EQ(index.prune_match("CPUbound", narrowed), DirectiveSet::PruneKind::Subtree);
  // For another hypothesis only the wildcard-free pair prune is out of
  // reach; nothing matches.
  EXPECT_EQ(index.prune_match("TotalExecutionTime", narrowed),
            DirectiveSet::PruneKind::None);
}

// ------------------------------------------------- serialize/parse round-trip

class DirectiveRoundTrip : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectiveRoundTrip, ParseOfSerializeReproducesTheSet) {
  util::Rng rng(GetParam());
  const resources::ResourceDb db = make_db();
  const std::vector<Focus> foci = make_focus_pool(db);
  for (int round = 0; round < 25; ++round) {
    DirectiveSet set = random_set(rng, foci);
    // Maps aren't produced by random_set; add some so every directive kind
    // round-trips. Thresholds are multiples of 1/1000, within
    // fmt_double's 4 digits, so the text form is exact.
    const auto n_maps = rng.next_below(3);
    for (std::uint64_t i = 0; i < n_maps; ++i)
      set.maps.push_back({pick(rng, resource_pool()), pick(rng, resource_pool())});
    const DirectiveSet reparsed = DirectiveSet::parse(set.serialize());
    EXPECT_EQ(reparsed, set) << set.serialize();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectiveRoundTrip, testing::Range<std::uint64_t>(1, 11));

TEST(Directives, MalformedLinesReportTheirLineNumber) {
  // The failing line's number (not just "line 1") must appear, with the
  // earlier valid lines parsed silently.
  const std::string text =
      "# comment\n"
      "prune * /Machine\n"
      "threshold CPUbound 1.5\n";
  try {
    DirectiveSet::parse(text);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  try {
    DirectiveSet::parse("prune * /Machine\npriority A <f> sideways\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

// ------------------------------------------ threshold-conflict resolution

TEST(Directives, MergeResolvesThresholdConflictsToMaxWithWarning) {
  DirectiveSet a;
  a.thresholds.push_back({"CPUbound", 0.10});
  DirectiveSet b;
  b.thresholds.push_back({"CPUbound", 0.30});
  b.thresholds.push_back({"ExcessiveSyncWaitingTime", 0.20});

  std::vector<std::string> warnings;
  util::set_log_sink([&](util::LogLevel level, const std::string& msg) {
    if (level == util::LogLevel::Warn) warnings.push_back(msg);
  });
  a.merge(b);
  util::set_log_sink({});

  // Regardless of which input came first, the surviving value is the max.
  ASSERT_EQ(a.thresholds.size(), 2u);
  EXPECT_EQ(a.threshold_for("CPUbound"), 0.30);
  EXPECT_EQ(a.threshold_for("ExcessiveSyncWaitingTime"), 0.20);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("CPUbound"), std::string::npos) << warnings[0];
}

TEST(Directives, AgreeingDuplicateThresholdsCollapseSilently) {
  DirectiveSet set;
  set.thresholds.push_back({"CPUbound", 0.25});
  set.thresholds.push_back({"CPUbound", 0.25});
  std::vector<std::string> warnings;
  util::set_log_sink(
      [&](util::LogLevel, const std::string& msg) { warnings.push_back(msg); });
  set.resolve_threshold_conflicts();
  util::set_log_sink({});
  EXPECT_EQ(set.thresholds.size(), 1u);
  EXPECT_TRUE(warnings.empty());
}

TEST(Combiner, CombineThresholdsAreOrderIndependent) {
  DirectiveSet a;
  a.thresholds.push_back({"CPUbound", 0.10});
  a.thresholds.push_back({std::string(kAnyHypothesis), 0.05});
  DirectiveSet b;
  b.thresholds.push_back({"CPUbound", 0.40});

  util::set_log_sink([](util::LogLevel, const std::string&) {});
  const DirectiveSet ab = history::combine(a, b, history::CombineMode::Union);
  const DirectiveSet ba = history::combine(b, a, history::CombineMode::Union);
  util::set_log_sink({});

  EXPECT_EQ(ab.threshold_for("CPUbound"), 0.40);
  EXPECT_EQ(ba.threshold_for("CPUbound"), 0.40);
  EXPECT_EQ(ab.threshold_for("SomethingElse"), 0.05);  // wildcard survives
}

}  // namespace
}  // namespace histpc::pc
