#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "history/experiment.h"
#include "history/generator.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "pc/shg.h"
#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "util/rng.h"

namespace histpc::pc {
namespace {

using metrics::TraceView;
using resources::Focus;
using simmpi::FunctionScope;
using simmpi::Recorder;

/// 4 ranks; ranks 3 and 4 spend most of each iteration waiting on tag 9
/// inside "exchange" while ranks 1 and 2 compute: whole-program sync wait
/// is ~40%, concentrated on app:3/app:4, comm.c and Message/9.
// The default duration is generous so the undirected cost-limited search
// completes before program end; tests of truncation pass a short duration.
simmpi::ExecutionTrace bottleneck_trace(double duration = 2500.0) {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(4, "node", "app"));
  const int iters = static_cast<int>(duration);
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < iters; ++i) {
      {
        FunctionScope f(r, "work", "work.c");
        r.compute(r.rank() >= 2 ? 0.2 : 1.0);
      }
      {
        FunctionScope f(r, "exchange", "comm.c");
        if (r.rank() >= 2) {
          r.recv(r.rank() - 2, 9);
        } else {
          r.send(r.rank() + 2, 9, 64);
        }
        r.barrier();
      }
    }
  });
  simmpi::NetworkModel net;
  net.latency = 1e-4;
  return simmpi::Simulator(net).run(b.build());
}

/// Balanced program: everyone computes identically; no waits beyond noise.
simmpi::ExecutionTrace balanced_trace(double duration = 300.0) {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "app"));
  b.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < static_cast<int>(duration); ++i) {
      r.compute(1.0);
      r.barrier();
    }
  });
  return simmpi::Simulator().run(b.build());
}

/// Phase change: no waiting for the first 200 iterations, then rank 1
/// waits ~70% of each iteration (a behaviour that emerges mid-run).
simmpi::ExecutionTrace phase_change_trace() {
  simmpi::ProgramBuilder b(simmpi::MachineSpec::one_to_one(2, "node", "app"));
  b.record([](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < 600; ++i) {
      const bool second_phase = i >= 200;
      if (r.rank() == 0) {
        r.compute(1.0);
        if (second_phase) r.send(1, 4, 64);
      } else {
        r.compute(second_phase ? 0.3 : 1.0);
        if (second_phase) r.recv(0, 4);
      }
      r.barrier();
    }
  });
  return simmpi::Simulator().run(b.build());
}

PcConfig quick_config() {
  PcConfig cfg;
  cfg.min_observation = 10.0;
  cfg.tick = 0.5;
  cfg.insertion_latency = 1.0;
  cfg.cost_limit = 0.05;
  return cfg;
}

// --------------------------------------------------------------- hypotheses

TEST(Hypotheses, StandardSet) {
  HypothesisSet set = HypothesisSet::standard();
  EXPECT_EQ(set.size(), 3u);
  ASSERT_TRUE(set.index_of(kSyncWaitName).has_value());
  EXPECT_TRUE(set.at(*set.index_of(kSyncWaitName)).sync_related);
  EXPECT_FALSE(set.at(*set.index_of(kCpuBoundName)).sync_related);
  EXPECT_FALSE(set.index_of("Nope").has_value());
}

// --------------------------------------------------------------- directives

TEST(Directives, ParseSerializeRoundTrip) {
  const char* text =
      "# harvested from poisson_A_1\n"
      "map /Code/oned.f /Code/onednb.f\n"
      "prune * /Machine\n"
      "prune CPUbound /SyncObject\n"
      "threshold ExcessiveSyncWaitingTime 0.12\n"
      "priority ExcessiveSyncWaitingTime </Code/exchng1.f,/Machine,/Process,/SyncObject> high\n"
      "priority CPUbound </Code,/Machine,/Process,/SyncObject> low\n";
  DirectiveSet d = DirectiveSet::parse(text);
  EXPECT_EQ(d.maps.size(), 1u);
  EXPECT_EQ(d.prunes.size(), 2u);
  EXPECT_EQ(d.thresholds.size(), 1u);
  EXPECT_EQ(d.priorities.size(), 2u);
  DirectiveSet back = DirectiveSet::parse(d.serialize());
  EXPECT_EQ(back, d);
}

TEST(Directives, ParseErrorsNameTheLine) {
  try {
    DirectiveSet::parse("prune *\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(DirectiveSet::parse("bogus x y\n"), std::invalid_argument);
  EXPECT_THROW(DirectiveSet::parse("priority H F wrong\n"), std::invalid_argument);
  EXPECT_THROW(DirectiveSet::parse("threshold H 1.5\n"), std::invalid_argument);
  EXPECT_THROW(DirectiveSet::parse("threshold H abc\n"), std::invalid_argument);
  EXPECT_THROW(DirectiveSet::parse("map noslash /a\n"), std::invalid_argument);
  EXPECT_THROW(DirectiveSet::parse("prune * noslash\n"), std::invalid_argument);
}

TEST(Directives, PruneSemantics) {
  resources::ResourceDb db = resources::ResourceDb::with_standard_hierarchies();
  db.add_resource("/Code/a.f/f1");
  db.add_resource("/Machine/n1");
  DirectiveSet d;
  d.prunes.push_back({"*", "/Machine"});
  d.prunes.push_back({"CPUbound", "/Code/a.f"});

  const Focus whole = Focus::whole_program(db);
  // Root parts are never pruned: the unconstrained view stays testable.
  EXPECT_FALSE(d.is_pruned("CPUbound", whole));
  // Below a pruned hierarchy root: pruned for every hypothesis.
  EXPECT_TRUE(d.is_pruned("AnyHyp", whole.with_part(1, "/Machine/n1")));
  // Hypothesis-specific prune.
  EXPECT_TRUE(d.is_pruned("CPUbound", whole.with_part(0, "/Code/a.f")));
  EXPECT_TRUE(d.is_pruned("CPUbound", whole.with_part(0, "/Code/a.f/f1")));
  EXPECT_FALSE(d.is_pruned("ExcessiveSyncWaitingTime", whole.with_part(0, "/Code/a.f")));
}

TEST(Directives, PriorityLookup) {
  DirectiveSet d;
  d.priorities.push_back({"H", "<f1>", Priority::High});
  d.priorities.push_back({"H", "<f2>", Priority::Low});
  EXPECT_EQ(d.priority_of("H", "<f1>"), Priority::High);
  EXPECT_EQ(d.priority_of("H", "<f2>"), Priority::Low);
  EXPECT_EQ(d.priority_of("H", "<f3>"), Priority::Medium);
  EXPECT_EQ(d.priority_of("Other", "<f1>"), Priority::Medium);
}

TEST(Directives, ThresholdPrecedence) {
  DirectiveSet d;
  d.thresholds.push_back({"*", 0.30});
  d.thresholds.push_back({"H", 0.12});
  EXPECT_DOUBLE_EQ(*d.threshold_for("H"), 0.12);
  EXPECT_DOUBLE_EQ(*d.threshold_for("Other"), 0.30);
  DirectiveSet none;
  EXPECT_FALSE(none.threshold_for("H").has_value());
}

TEST(Directives, MappingRewritesLongestPrefix) {
  std::vector<MapDirective> maps{{"/Code/oned.f", "/Code/onednb.f"},
                                 {"/Code/oned.f/sweep", "/Code/onednb.f/nbsweep"}};
  EXPECT_EQ(apply_maps_to_resource(maps, "/Code/oned.f"), "/Code/onednb.f");
  EXPECT_EQ(apply_maps_to_resource(maps, "/Code/oned.f/main"), "/Code/onednb.f/main");
  // Longest match wins over the shorter module-level map.
  EXPECT_EQ(apply_maps_to_resource(maps, "/Code/oned.f/sweep"), "/Code/onednb.f/nbsweep");
  EXPECT_EQ(apply_maps_to_resource(maps, "/Code/other.f"), "/Code/other.f");
}

TEST(Directives, ApplyMappingsRewritesFociAndPrunes) {
  DirectiveSet d;
  d.maps.push_back({"/Machine/node01", "/Machine/node17"});
  d.prunes.push_back({"*", "/Machine/node01"});
  d.priorities.push_back(
      {"H", "</Code,/Machine/node01,/Process,/SyncObject>", Priority::High});
  d.apply_mappings();
  EXPECT_EQ(d.prunes[0].resource_prefix, "/Machine/node17");
  EXPECT_EQ(d.priorities[0].focus, "</Code,/Machine/node17,/Process,/SyncObject>");
}

TEST(Directives, FileRoundTrip) {
  DirectiveSet d;
  d.prunes.push_back({"*", "/Machine"});
  const std::string path = testing::TempDir() + "/histpc_directives.txt";
  d.save(path);
  EXPECT_EQ(DirectiveSet::load(path), d);
}

// --------------------------------------------------------------------- shg

TEST(Shg, DedupAndMultiParent) {
  HypothesisSet hyps = HypothesisSet::standard();
  SearchHistoryGraph shg(hyps);
  resources::ResourceDb db = resources::ResourceDb::with_standard_hierarchies();
  db.add_resource("/Code/a.f");
  const Focus whole = Focus::whole_program(db);
  int a = shg.add_node(0, whole, shg.root(), 0.0);
  int b = shg.add_node(1, whole, shg.root(), 0.0);
  EXPECT_NE(a, b);
  // Same (hyp, focus) from a different parent converges to the same node.
  int c = shg.add_node(1, whole, a, 1.0);
  EXPECT_EQ(b, c);
  EXPECT_EQ(shg.node(b).parents.size(), 2u);
  EXPECT_EQ(shg.find(1, whole.name()), b);
  EXPECT_EQ(shg.find(2, whole.name()), -1);
  EXPECT_EQ(shg.hypothesis_name(shg.root()), "TopLevelHypothesis");
}

TEST(Shg, RenderListsNodesWithStatus) {
  HypothesisSet hyps = HypothesisSet::standard();
  SearchHistoryGraph shg(hyps);
  resources::ResourceDb db = resources::ResourceDb::with_standard_hierarchies();
  const Focus whole = Focus::whole_program(db);
  int a = shg.add_node(0, whole, shg.root(), 0.0);
  shg.node(a).status = NodeStatus::True;
  shg.node(a).fraction = 0.42;
  shg.node(a).conclude_time = 11.0;
  std::string s = shg.render();
  EXPECT_NE(s.find("TopLevelHypothesis"), std::string::npos);
  EXPECT_NE(s.find("CPUbound"), std::string::npos);
  EXPECT_NE(s.find("[true 42.0% @11.0s]"), std::string::npos);
}

// --------------------------------------------------------------- consultant

TEST(Consultant, FindsPlantedBottleneck) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PerformanceConsultant consultant(view, quick_config());
  const DiagnosisResult r = consultant.run();
  ASSERT_GT(r.stats.bottlenecks, 0u);
  auto has = [&](const std::string& hyp, const std::string& focus_sub) {
    return std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [&](const auto& b) {
      return b.hypothesis == hyp && b.focus.find(focus_sub) != std::string::npos;
    });
  };
  // The planted wait: rank 3, function exchange, tag 9.
  EXPECT_TRUE(has(std::string(kSyncWaitName), "/Process/app:4"));
  EXPECT_TRUE(has(std::string(kSyncWaitName), "/Code/comm.c"));
  EXPECT_TRUE(has(std::string(kSyncWaitName), "/SyncObject/Message/9"));
  EXPECT_TRUE(has(std::string(kCpuBoundName), "/Code/work.c"));
  // No I/O in the program.
  EXPECT_FALSE(has(std::string(kIoBlockingName), "/Code"));
}

TEST(Consultant, BalancedProgramYieldsOnlyCpu) {
  const auto trace = balanced_trace();
  const TraceView view(trace);
  PerformanceConsultant consultant(view, quick_config());
  const DiagnosisResult r = consultant.run();
  for (const auto& b : r.bottlenecks) EXPECT_EQ(b.hypothesis, kCpuBoundName);
  EXPECT_GT(r.stats.bottlenecks, 0u);  // CPUbound everywhere
}

TEST(Consultant, RunIsSingleUse) {
  const auto trace = balanced_trace(50.0);
  const TraceView view(trace);
  PerformanceConsultant consultant(view, quick_config());
  consultant.run();
  EXPECT_THROW(consultant.run(), std::logic_error);
}

TEST(Consultant, PrunesReduceTestingWithoutAddingBottlenecks) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PerformanceConsultant base_pc(view, quick_config());
  const DiagnosisResult base = base_pc.run();

  DirectiveSet d;
  d.prunes.push_back({std::string(kCpuBoundName), "/SyncObject"});
  d.prunes.push_back({std::string(kIoBlockingName), "/SyncObject"});
  d.prunes.push_back({std::string(kAnyHypothesis), "/Machine"});
  PerformanceConsultant pruned_pc(view, quick_config(), d);
  const DiagnosisResult pruned = pruned_pc.run();

  EXPECT_LT(pruned.stats.pairs_tested, base.stats.pairs_tested);
  EXPECT_GT(pruned.stats.pruned_candidates, 0u);
  // Every pruned-run bottleneck also exists in the base run.
  for (const auto& b : pruned.bottlenecks) {
    EXPECT_TRUE(std::any_of(base.bottlenecks.begin(), base.bottlenecks.end(),
                            [&](const auto& x) {
                              return x.hypothesis == b.hypothesis && x.focus == b.focus;
                            }))
        << b.hypothesis << " : " << b.focus;
  }
}

TEST(Consultant, HighPriorityPairFoundImmediately) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);

  // Without directives, the refined pair is found late.
  PerformanceConsultant base_pc(view, quick_config());
  const DiagnosisResult base = base_pc.run();
  const std::string target_focus =
      "</Code/comm.c/exchange,/Machine,/Process/app:4,/SyncObject>";
  double base_time = -1;
  for (const auto& b : base.bottlenecks)
    if (b.focus == target_focus) base_time = b.t_found;
  ASSERT_GT(base_time, 0) << "base run should find the refined pair";

  DirectiveSet d;
  d.priorities.push_back({std::string(kSyncWaitName), target_focus, Priority::High});
  PerformanceConsultant directed_pc(view, quick_config(), d);
  const DiagnosisResult directed = directed_pc.run();
  double directed_time = -1;
  for (const auto& b : directed.bottlenecks)
    if (b.focus == target_focus) directed_time = b.t_found;
  ASSERT_GT(directed_time, 0);
  // Instrumented at search start: found right after the first observation
  // window, far earlier than in the undirected search.
  EXPECT_NEAR(directed_time, 11.0, 2.0);
  EXPECT_LT(directed_time, base_time);
}

TEST(Consultant, LowPriorityTestedAfterMedium) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  // Deprioritize the whole-program sync hypothesis; it should conclude
  // later than in the undirected run.
  const std::string whole = Focus::whole_program(view.resources()).name();
  DirectiveSet d;
  d.priorities.push_back({std::string(kSyncWaitName), whole, Priority::Low});
  PerformanceConsultant pc1(view, quick_config(), d);
  const DiagnosisResult low = pc1.run();
  PerformanceConsultant pc2(view, quick_config());
  const DiagnosisResult base = pc2.run();
  auto time_of = [&](const DiagnosisResult& r) {
    for (const auto& b : r.bottlenecks)
      if (b.hypothesis == kSyncWaitName && b.focus == whole) return b.t_found;
    return -1.0;
  };
  EXPECT_GE(time_of(low), time_of(base));
}

TEST(Consultant, PersistentHighPriorityCatchesEmergentBehaviour) {
  const auto trace = phase_change_trace();
  const TraceView view(trace);
  const std::string focus = "</Code,/Machine,/Process/app:2,/SyncObject/Message/4>";
  DirectiveSet d;
  d.priorities.push_back({std::string(kSyncWaitName), focus, Priority::High});

  PcConfig cfg = quick_config();
  cfg.persistent_high_priority = true;
  PerformanceConsultant pc(view, cfg, d);
  const DiagnosisResult r = pc.run();
  double found = -1;
  for (const auto& b : r.bottlenecks)
    if (b.focus == focus) found = b.t_found;
  // Concluded false at ~11s (quiet first phase), flipped true once the
  // second phase pushed the cumulative fraction over the threshold.
  ASSERT_GT(found, 0) << "persistent pair should flip to true";
  EXPECT_GT(found, 200.0);
}

TEST(Consultant, ThresholdOverrideChangesVerdicts) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PcConfig strict = quick_config();
  strict.threshold_override = 0.9;  // nothing is 90% of execution
  PerformanceConsultant pc(view, strict);
  const DiagnosisResult r = pc.run();
  EXPECT_EQ(r.stats.bottlenecks, 0u);
}

/// Property: raising the threshold never increases the bottleneck count.
class ThresholdMonotonicity : public testing::TestWithParam<double> {};

TEST_P(ThresholdMonotonicity, CountsAreOrdered) {
  static const simmpi::ExecutionTrace trace = bottleneck_trace();
  const TraceView view(trace);
  const double threshold = GetParam();
  // Unthrottled budget: with a cost limit, a lower threshold's larger
  // search can be truncated by program end (the paper's "stopped before
  // completion"), which breaks strict monotonicity by design.
  PcConfig lo = quick_config();
  lo.cost_limit = 100.0;
  lo.threshold_override = threshold;
  PcConfig hi = quick_config();
  hi.cost_limit = 100.0;
  hi.threshold_override = threshold + 0.1;
  PerformanceConsultant pc_lo(view, lo);
  PerformanceConsultant pc_hi(view, hi);
  EXPECT_GE(pc_lo.run().stats.bottlenecks, pc_hi.run().stats.bottlenecks);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThresholdMonotonicity,
                         testing::Values(0.05, 0.10, 0.15, 0.20, 0.30, 0.40));

TEST(Consultant, ShortProgramLeavesPairsUntested) {
  const auto trace = bottleneck_trace(60.0);  // barely enough for a few waves
  const TraceView view(trace);
  PerformanceConsultant pc(view, quick_config());
  const DiagnosisResult r = pc.run();
  const std::size_t never_ran =
      std::count_if(r.nodes.begin(), r.nodes.end(),
                    [](const NodeSnapshot& n) { return n.status == NodeStatus::NeverRan; });
  EXPECT_GT(never_ran, 0u);
  EXPECT_LE(r.stats.end_time, trace.duration + 1e-9);
}

TEST(Consultant, CostLimitThrottlesConcurrency) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PcConfig tight = quick_config();
  tight.cost_limit = 0.01;
  PcConfig loose = quick_config();
  loose.cost_limit = 0.5;
  PerformanceConsultant pc_tight(view, tight);
  PerformanceConsultant pc_loose(view, loose);
  const DiagnosisResult rt = pc_tight.run();
  const DiagnosisResult rl = pc_loose.run();
  // A looser budget lets the search finish earlier (more concurrency).
  EXPECT_LE(rl.stats.end_time, rt.stats.end_time);
  EXPECT_GE(rl.stats.peak_cost, rt.stats.peak_cost);
}

TEST(Consultant, InvalidConfigRejected) {
  const auto trace = balanced_trace(50.0);
  const TraceView view(trace);
  PcConfig bad = quick_config();
  bad.tick = 0.0;
  EXPECT_THROW(PerformanceConsultant(view, bad), std::invalid_argument);
}

// ----------------------------------------------- hypothesis-tree expansion

TEST(Hypotheses, ExtendedSetHasSyncChildren) {
  HypothesisSet set = HypothesisSet::standard_extended();
  EXPECT_EQ(set.size(), 5u);
  const auto roots = set.roots();
  EXPECT_EQ(roots.size(), 3u);  // the two wait children are not roots
  const int sync = *set.index_of(kSyncWaitName);
  ASSERT_EQ(set.at(sync).children.size(), 2u);
  const Hypothesis& msg = set.at(set.at(sync).children[0]);
  EXPECT_EQ(msg.name, kMessageWaitName);
  EXPECT_EQ(msg.sync_scope, "/SyncObject/Message");
  EXPECT_TRUE(msg.sync_related);
}

TEST(Hypotheses, BadChildIndexRejected) {
  HypothesisSet set;
  Hypothesis h;
  h.name = "X";
  h.children = {5};
  EXPECT_THROW(set.add(h), std::out_of_range);
}

TEST(Consultant, HypothesisRefinementFindsScopedWaits) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PcConfig cfg = quick_config();
  cfg.hypotheses = HypothesisSet::standard_extended();
  PerformanceConsultant pc(view, cfg);
  const DiagnosisResult r = pc.run();
  // The planted wait is message wait (tag 9): the scoped child hypothesis
  // tests true; the collective child (barrier only, negligible) does not
  // dominate.
  bool message_true = false;
  for (const auto& b : r.bottlenecks)
    if (b.hypothesis == kMessageWaitName) message_true = true;
  EXPECT_TRUE(message_true);
  // Child hypotheses are never tested at top level (not roots).
  for (const auto& n : r.nodes) {
    if (n.hypothesis != kMessageWaitName && n.hypothesis != kCollectiveWaitName) continue;
    // Every scoped node hangs below a true sync-wait parent, so its focus
    // never contradicts the scope.
    EXPECT_EQ(n.focus.find("/SyncObject/Collective"),
              n.hypothesis == kMessageWaitName ? std::string::npos : n.focus.find("/SyncObject/Collective"));
  }
}

TEST(Consultant, ScopeIncompatiblePairsAreNeverCreated) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PcConfig cfg = quick_config();
  cfg.hypotheses = HypothesisSet::standard_extended();
  PerformanceConsultant pc(view, cfg);
  const DiagnosisResult r = pc.run();
  for (const auto& n : r.nodes) {
    if (n.hypothesis == kMessageWaitName) {
      EXPECT_EQ(n.focus.find("/SyncObject/Collective"), std::string::npos) << n.focus;
    }
    if (n.hypothesis == kCollectiveWaitName) {
      EXPECT_EQ(n.focus.find("/SyncObject/Message"), std::string::npos) << n.focus;
    }
  }
}

// ---------------------------------------------------------------- pair prunes

TEST(Directives, PairPruneParseAndSerialize) {
  const char* text =
      "prunepair CPUbound </Code/a.f,/Machine,/Process,/SyncObject>\n";
  DirectiveSet d = DirectiveSet::parse(text);
  ASSERT_EQ(d.pair_prunes.size(), 1u);
  EXPECT_EQ(d.pair_prunes[0].hypothesis, "CPUbound");
  EXPECT_EQ(DirectiveSet::parse(d.serialize()), d);
  EXPECT_THROW(DirectiveSet::parse("prunepair onlyone\n"), std::invalid_argument);
}

TEST(Directives, PairPruneMatchesExactPairOnly) {
  resources::ResourceDb db = resources::ResourceDb::with_standard_hierarchies();
  db.add_resource("/Code/a.f");
  DirectiveSet d;
  const Focus whole = Focus::whole_program(db);
  const Focus narrowed = whole.with_part(0, "/Code/a.f");
  d.pair_prunes.push_back({"CPUbound", narrowed.name()});
  EXPECT_TRUE(d.is_pruned("CPUbound", narrowed));
  EXPECT_FALSE(d.is_pruned("ExcessiveSyncWaitingTime", narrowed));
  EXPECT_FALSE(d.is_pruned("CPUbound", whole));
  // Wildcard hypothesis applies to all.
  DirectiveSet w;
  w.pair_prunes.push_back({"*", narrowed.name()});
  EXPECT_TRUE(w.is_pruned("Whatever", narrowed));
}

TEST(Directives, PairPruneMappingRewritesFocus) {
  DirectiveSet d;
  d.maps.push_back({"/Code/oned.f", "/Code/onednb.f"});
  d.pair_prunes.push_back({"H", "</Code/oned.f,/Machine,/Process,/SyncObject>"});
  d.apply_mappings();
  EXPECT_EQ(d.pair_prunes[0].focus, "</Code/onednb.f,/Machine,/Process,/SyncObject>");
}

TEST(Consultant, PairPrunesSkipExactTests) {
  const auto trace = bottleneck_trace();
  const TraceView view(trace);
  PerformanceConsultant base_pc(view, quick_config());
  const DiagnosisResult base = base_pc.run();

  // Prune every pair that tested false in the base run.
  DirectiveSet d;
  for (const auto& n : base.nodes)
    if (n.status == NodeStatus::False) d.pair_prunes.push_back({n.hypothesis, n.focus});
  ASSERT_FALSE(d.pair_prunes.empty());

  PerformanceConsultant pruned_pc(view, quick_config(), d);
  const DiagnosisResult pruned = pruned_pc.run();
  EXPECT_LE(pruned.stats.pairs_tested,
            base.stats.pairs_tested - d.pair_prunes.size() + 8 /*new deeper pairs*/);
  // All clearly-true base bottlenecks are still found (pairs measured at
  // the threshold can legitimately conclude differently run to run).
  for (const auto& b : base.bottlenecks) {
    if (b.fraction < 0.22) continue;
    EXPECT_TRUE(std::any_of(pruned.bottlenecks.begin(), pruned.bottlenecks.end(),
                            [&](const auto& x) {
                              return x.hypothesis == b.hypothesis && x.focus == b.focus;
                            }))
        << b.hypothesis << " : " << b.focus;
  }
}

TEST(Generator, FalsePairPrunesFromRecord) {
  const auto trace = bottleneck_trace(600.0);
  const TraceView view(trace);
  PerformanceConsultant pc(view, quick_config());
  const DiagnosisResult result = pc.run();
  const history::ExperimentRecord record =
      history::make_record("test", "1", view, result, 0.2);
  history::GeneratorOptions opts;
  opts.false_pair_prunes = true;
  opts.priorities = false;
  opts.general_prunes = false;
  opts.historic_prunes = false;
  const DirectiveSet d = history::DirectiveGenerator(opts).from_record(record);
  std::size_t false_nodes = 0;
  for (const auto& n : result.nodes)
    if (n.status == NodeStatus::False) ++false_nodes;
  EXPECT_EQ(d.pair_prunes.size(), false_nodes);
  EXPECT_TRUE(d.priorities.empty());
}

// ----------------------------------------------------- directive fuzzing

/// Property sweep: random directive sets (priorities, prunes, pair prunes,
/// thresholds drawn from the base run's own nodes) must never crash the
/// search, and basic invariants must hold regardless of direction.
class DirectiveFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectiveFuzz, SearchInvariantsHoldUnderRandomDirection) {
  static const simmpi::ExecutionTrace trace = bottleneck_trace(800.0);
  const TraceView view(trace);
  PerformanceConsultant base_pc(view, quick_config());
  static const DiagnosisResult base = [&] {
    PerformanceConsultant pc(view, quick_config());
    return pc.run();
  }();

  util::Rng rng(GetParam());
  DirectiveSet d;
  for (const auto& n : base.nodes) {
    switch (rng.next_below(6)) {
      case 0:
        d.priorities.push_back({n.hypothesis, n.focus, Priority::High});
        break;
      case 1:
        d.priorities.push_back({n.hypothesis, n.focus, Priority::Low});
        break;
      case 2:
        d.pair_prunes.push_back({n.hypothesis, n.focus});
        break;
      default:
        break;  // leave the pair alone
    }
  }
  if (rng.next_below(2)) d.prunes.push_back({"*", "/Machine"});
  if (rng.next_below(2))
    d.thresholds.push_back({"ExcessiveSyncWaitingTime", rng.uniform(0.05, 0.5)});

  PerformanceConsultant pc(view, quick_config(), d);
  const DiagnosisResult r = pc.run();

  // Invariants: every reported bottleneck crossed its threshold; counters
  // are consistent; nothing pruned was tested.
  EXPECT_EQ(r.stats.bottlenecks, r.bottlenecks.size());
  EXPECT_LE(r.stats.pairs_tested, r.stats.nodes_created + d.priorities.size());
  for (const auto& b : r.bottlenecks) {
    EXPECT_GE(b.fraction, 0.05 - 1e-9);
    EXPECT_LE(b.t_found, r.stats.end_time + 1e-9);
  }
  for (const auto& n : r.nodes) {
    auto focus = resources::Focus::parse(n.focus, view.resources(), false);
    ASSERT_TRUE(focus.has_value());
    if (d.is_pruned(n.hypothesis, *focus))
      ADD_FAILURE() << "pruned pair was created: " << n.hypothesis << " " << n.focus;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectiveFuzz, testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------ time_to_find

TEST(TimeToFind, QuantileSemantics) {
  DiagnosisResult r;
  r.bottlenecks = {{"H", "<a>", 10.0, 0.5}, {"H", "<b>", 20.0, 0.5}, {"H", "<c>", 30.0, 0.5},
                   {"H", "<d>", 40.0, 0.5}};
  const auto& ref = r.bottlenecks;
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 75.0), 30.0);
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 100.0), 40.0);
  // 60% of 4 = 2.4 -> needs 3 found.
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 60.0), 30.0);
}

TEST(TimeToFind, MissingItemsYieldInfinity) {
  DiagnosisResult r;
  r.bottlenecks = {{"H", "<a>", 10.0, 0.5}};
  std::vector<BottleneckReport> ref = {{"H", "<a>", 0, 0}, {"H", "<zzz>", 0, 0}};
  EXPECT_DOUBLE_EQ(r.time_to_find(ref, 50.0), 10.0);
  EXPECT_TRUE(std::isinf(r.time_to_find(ref, 100.0)));
  EXPECT_DOUBLE_EQ(r.time_to_find({}, 100.0), 0.0);
}

}  // namespace
}  // namespace histpc::pc
