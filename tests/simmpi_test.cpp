#include <gtest/gtest.h>

#include <cmath>

#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "simmpi/trace.h"
#include "util/rng.h"

namespace histpc::simmpi {
namespace {

MachineSpec machine_of(int nranks) {
  return MachineSpec::one_to_one(nranks, "node", "proc");
}

NetworkModel fast_net() {
  NetworkModel net;
  net.latency = 0.001;
  net.bytes_per_second = 1.0e6;  // 1 MB/s: 1 MB message = 1.001 s transfer
  net.eager_limit = 1024;
  return net;
}

ExecutionTrace simulate(const std::function<void(Recorder&)>& body, int nranks,
                        NetworkModel net = fast_net(), MachineSpec machine = {}) {
  if (machine.rank_to_node.empty()) machine = machine_of(nranks);
  ProgramBuilder builder(machine);
  builder.record(body);
  return Simulator(net).run(builder.build());
}

double total_state(const ExecutionTrace& t, int rank, IntervalState s) {
  double sum = 0;
  for (const auto& iv : t.ranks[rank].intervals)
    if (iv.state == s) sum += iv.duration();
  return sum;
}

// ----------------------------------------------------------- machine spec

TEST(MachineSpec, OneToOneLayout) {
  MachineSpec m = MachineSpec::one_to_one(3, "poona", "app", 5);
  EXPECT_EQ(m.num_nodes(), 3);
  EXPECT_EQ(m.num_ranks(), 3);
  EXPECT_EQ(m.node_names[0], "poona05");
  EXPECT_EQ(m.process_names[2], "app:3");
  EXPECT_NO_THROW(m.validate());
}

TEST(MachineSpec, ValidateCatchesBadPlacement) {
  MachineSpec m = machine_of(2);
  m.rank_to_node[1] = 7;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = machine_of(2);
  m.node_speeds[0] = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  EXPECT_THROW(MachineSpec::one_to_one(0, "n", "p"), std::invalid_argument);
}

// --------------------------------------------------------------- recorder

TEST(Recorder, RejectsInvalidArguments) {
  ProgramBuilder b(machine_of(2));
  EXPECT_THROW(b.record([](Recorder& r) { r.compute(-1.0); }), std::invalid_argument);
  EXPECT_THROW(b.record([](Recorder& r) { r.send(5, 0, 10); }), std::invalid_argument);
  EXPECT_THROW(b.record([](Recorder& r) { r.send(r.rank(), 0, 10); }), std::invalid_argument);
  EXPECT_THROW(b.record([](Recorder& r) { r.wait(0); }), std::invalid_argument);
  EXPECT_THROW(b.record([](Recorder& r) { r.func_exit(); }), std::logic_error);
}

TEST(Recorder, DetectsUnbalancedFunctionScopes) {
  ProgramBuilder b(machine_of(1));
  EXPECT_THROW(b.record([](Recorder& r) { r.func_enter("f", "m"); }), std::logic_error);
}

TEST(Recorder, BuilderSingleUse) {
  ProgramBuilder b(machine_of(1));
  b.record([](Recorder& r) { r.compute(1.0); });
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
  EXPECT_THROW(b.record([](Recorder&) {}), std::logic_error);
}

TEST(Recorder, InternsFunctionsAcrossRanks) {
  ProgramBuilder b(machine_of(2));
  b.record([](Recorder& r) {
    FunctionScope f(r, "work", "mod.f");
    r.compute(1.0);
  });
  SimProgram p = b.build();
  EXPECT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].function, "work");
  EXPECT_EQ(p.functions[0].module, "mod.f");
}

// -------------------------------------------------------------- simulator

TEST(Simulator, ComputeScalesWithNodeSpeed) {
  MachineSpec m = machine_of(2);
  m.node_speeds[1] = 2.0;
  ExecutionTrace t = simulate([](Recorder& r) { r.compute(4.0); }, 2, fast_net(), m);
  EXPECT_DOUBLE_EQ(t.ranks[0].end_time, 4.0);
  EXPECT_DOUBLE_EQ(t.ranks[1].end_time, 2.0);
  EXPECT_DOUBLE_EQ(t.duration, 4.0);
}

TEST(Simulator, EagerSendDoesNotBlockSender) {
  // Rank 0 sends a small message and keeps computing; rank 1 receives late.
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.send(1, 0, 100);  // below eager limit
          r.compute(5.0);
        } else {
          r.compute(1.0);
          r.recv(0, 0);
        }
      },
      2);
  EXPECT_DOUBLE_EQ(t.ranks[0].end_time, 5.0);          // no send wait
  EXPECT_NEAR(t.ranks[1].end_time, 1.0, 1e-6);         // message arrived long ago
  EXPECT_NEAR(total_state(t, 1, IntervalState::SyncWait), 0.0, 1e-9);
}

TEST(Simulator, RecvWaitsForArrival) {
  // Rank 1 posts the receive immediately; rank 0 sends after 2s compute.
  const NetworkModel net = fast_net();
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.compute(2.0);
          r.send(1, 7, 100);
        } else {
          r.recv(0, 7);
        }
      },
      2);
  const double expected_arrival = 2.0 + net.transfer_time(100);
  EXPECT_NEAR(t.ranks[1].end_time, expected_arrival, 1e-9);
  EXPECT_NEAR(total_state(t, 1, IntervalState::SyncWait), expected_arrival, 1e-9);
  // The wait interval carries the message's sync object.
  const auto& iv = t.ranks[1].intervals.at(0);
  EXPECT_EQ(iv.state, IntervalState::SyncWait);
  ASSERT_NE(iv.sync_object, kNoSyncObject);
  EXPECT_EQ(t.sync_objects[iv.sync_object], "Message/7");
}

TEST(Simulator, RendezvousSendBlocksUntilRecvPosted) {
  const NetworkModel net = fast_net();
  const std::size_t big = 2 * 1024 * 1024;  // over the eager limit
  ExecutionTrace t = simulate(
      [&](Recorder& r) {
        if (r.rank() == 0) {
          r.send(1, 0, big);
        } else {
          r.compute(3.0);
          r.recv(0, 0);
        }
      },
      2);
  const double transfer_end = 3.0 + net.transfer_time(big);
  EXPECT_NEAR(t.ranks[0].end_time, transfer_end, 1e-9);
  EXPECT_NEAR(total_state(t, 0, IntervalState::SyncWait), transfer_end, 1e-9);
  EXPECT_NEAR(t.ranks[1].end_time, transfer_end, 1e-9);
}

TEST(Simulator, NonblockingOverlapsComputeWithTransfer) {
  const NetworkModel net = fast_net();
  const std::size_t big = 2 * 1024 * 1024;
  ExecutionTrace t = simulate(
      [&](Recorder& r) {
        if (r.rank() == 0) {
          RequestId req = r.isend(1, 0, big);
          r.compute(5.0);  // overlaps the transfer
          r.wait(req);
        } else {
          RequestId req = r.irecv(0, 0);
          r.compute(5.0);
          r.wait(req);
        }
      },
      2);
  // Transfer (about 2.1s) completes under the 5s compute on both sides.
  EXPECT_NEAR(t.ranks[0].end_time, 5.0, 1e-6);
  EXPECT_NEAR(t.ranks[1].end_time, 5.0, 1e-6);
  EXPECT_NEAR(total_state(t, 0, IntervalState::SyncWait), 0.0, 1e-9);
  (void)net;
}

TEST(Simulator, MessagesDoNotOvertakeWithinChannel) {
  // Two sends on the same channel must match receives in order; the recv
  // loop measures both and the second cannot complete before the first.
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.send(1, 0, 100);
          r.compute(2.0);
          r.send(1, 0, 100);
        } else {
          r.recv(0, 0);      // gets the first message quickly
          r.recv(0, 0);      // must wait for the second
        }
      },
      2);
  // Second recv waits for the send posted at t=2.
  EXPECT_GT(t.ranks[1].end_time, 2.0);
}

TEST(Simulator, BarrierReleasesAllAtLatestArrival) {
  const NetworkModel net = fast_net();
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        r.compute(1.0 * (r.rank() + 1));  // arrivals at 1, 2, 3
        r.barrier();
      },
      3);
  const double release = 3.0 + net.collective_cost(3, 0);
  for (int rank = 0; rank < 3; ++rank) EXPECT_NEAR(t.ranks[rank].end_time, release, 1e-9);
  EXPECT_NEAR(total_state(t, 0, IntervalState::SyncWait), release - 1.0, 1e-9);
  EXPECT_NEAR(total_state(t, 2, IntervalState::SyncWait), release - 3.0, 1e-9);
}

TEST(Simulator, AllreduceCostGrowsWithBytes) {
  const NetworkModel net = fast_net();
  EXPECT_GT(net.collective_cost(4, 1 << 20), net.collective_cost(4, 0));
  EXPECT_DOUBLE_EQ(net.collective_cost(1, 1 << 20), 0.0);
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        r.compute(1.0);
        r.allreduce(1 << 20);
      },
      4);
  EXPECT_NEAR(t.duration, 1.0 + net.collective_cost(4, 1 << 20), 1e-9);
  // Sync object is the collective.
  bool found = false;
  for (const auto& iv : t.ranks[0].intervals)
    if (iv.state == IntervalState::SyncWait && iv.sync_object != kNoSyncObject &&
        t.sync_objects[iv.sync_object] == "Collective/Allreduce")
      found = true;
  EXPECT_TRUE(found);
}

TEST(Simulator, GatherAndAlltoallScaleLinearly) {
  const NetworkModel net = fast_net();
  auto run_with = [&](auto op) {
    return simulate(
        [&](Recorder& r) {
          r.compute(1.0);
          op(r);
        },
        4);
  };
  const ExecutionTrace bcast = run_with([](Recorder& r) { r.bcast(1 << 20); });
  const ExecutionTrace gather = run_with([](Recorder& r) { r.gather(1 << 20); });
  const ExecutionTrace alltoall = run_with([](Recorder& r) { r.alltoall(1 << 20); });
  // Tree-shaped bcast costs log2(4)=2 rounds; gather/alltoall pay N-1=3
  // transfers.
  EXPECT_NEAR(bcast.duration, 1.0 + 2 * net.transfer_time(1 << 20), 1e-9);
  EXPECT_NEAR(gather.duration, 1.0 + 3 * net.transfer_time(1 << 20), 1e-9);
  EXPECT_DOUBLE_EQ(gather.duration, alltoall.duration);
  // Each carries its own sync object.
  bool found = false;
  for (const auto& name : gather.sync_objects)
    if (name == "Collective/Gather") found = true;
  EXPECT_TRUE(found);
}

TEST(Simulator, CollectiveKindMismatchThrows) {
  EXPECT_THROW(simulate(
                   [](Recorder& r) {
                     if (r.rank() == 0) r.barrier();
                     else r.allreduce(8);
                   },
                   2),
               std::logic_error);
}

TEST(Simulator, DeadlockIsDetected) {
  // Both ranks receive first: no message can ever arrive.
  EXPECT_THROW(simulate(
                   [](Recorder& r) {
                     r.recv(1 - r.rank(), 0);
                     r.send(1 - r.rank(), 0, 10);
                   },
                   2),
               std::runtime_error);
}

TEST(Simulator, MutualRendezvousSendsDeadlock) {
  EXPECT_THROW(simulate(
                   [](Recorder& r) {
                     r.send(1 - r.rank(), 0, 2 * 1024 * 1024);
                     r.recv(1 - r.rank(), 0);
                   },
                   2),
               std::runtime_error);
}

TEST(Simulator, WaitingTwiceOnARequestThrows) {
  EXPECT_THROW(simulate(
                   [](Recorder& r) {
                     if (r.rank() == 0) {
                       RequestId q = r.irecv(1, 0);
                       r.wait(q);
                       r.wait(q);
                     } else {
                       r.send(0, 0, 10);
                       r.send(0, 0, 10);
                     }
                   },
                   2),
               std::logic_error);
}

TEST(Simulator, WaitallCoversOutstandingRequests) {
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.irecv(1, 0);
          r.irecv(1, 1);
          r.waitall();
        } else {
          r.compute(1.0);
          r.send(0, 0, 10);
          r.compute(1.0);
          r.send(0, 1, 10);
        }
      },
      2);
  EXPECT_GT(t.ranks[0].end_time, 2.0);  // waited for the later message
  // The dominant wait is attributed to tag 1 (the last to arrive).
  const auto& iv = t.ranks[0].intervals.at(0);
  EXPECT_EQ(iv.state, IntervalState::SyncWait);
  EXPECT_EQ(t.sync_objects[iv.sync_object], "Message/1");
}

TEST(Simulator, WildcardPairReceivesAllMessagesByLastArrival) {
  // Two senders with different finish times; the master's two wildcard
  // receives consume both messages, and the master is done exactly when
  // the last message arrives — regardless of pairing order.
  const NetworkModel net = fast_net();
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.recv(kAnySource, 5);
          r.recv(kAnySource, 5);
        } else if (r.rank() == 1) {
          r.compute(3.0);
          r.send(0, 5, 100);
        } else {
          r.compute(1.0);
          r.send(0, 5, 100);
        }
      },
      3);
  EXPECT_NEAR(t.ranks[0].end_time, 3.0 + net.transfer_time(100), 1e-9);
  EXPECT_NEAR(total_state(t, 0, IntervalState::SyncWait), t.ranks[0].end_time, 1e-9);
}

TEST(Simulator, WildcardSelectsEarliestPostedPendingSend) {
  // Rank 0 parks on a specific receive first, so both rendezvous sends are
  // pending when its wildcards post: the first wildcard must take rank 2's
  // earlier send (1 MB, t=1), the second rank 1's (2 MB, t=3).
  const NetworkModel net = fast_net();
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.recv(1, 0);  // parks rank 0 so the others run ahead
          r.recv(kAnySource, 5);
          r.recv(kAnySource, 5);
        } else if (r.rank() == 1) {
          r.send(0, 0, 64);
          r.compute(3.0);
          r.send(0, 5, 2 * 1024 * 1024);
        } else {
          r.compute(1.0);
          r.send(0, 5, 1 * 1024 * 1024);
        }
      },
      3);
  const auto& ivs = t.ranks[0].intervals;
  ASSERT_GE(ivs.size(), 2u);
  const auto& second_to_last = ivs[ivs.size() - 2];
  const auto& last = ivs[ivs.size() - 1];
  EXPECT_NEAR(second_to_last.t1, 1.0 + net.transfer_time(1024 * 1024), 1e-6);
  EXPECT_NEAR(last.t1, 3.0 + net.transfer_time(2 * 1024 * 1024), 1e-6);
}

TEST(Simulator, WildcardTieBreaksByLowestSourceRank) {
  // Both workers send at exactly t=0; the wildcard drains rank 1 first.
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.recv(kAnySource, 0);
          r.compute(10.0);          // ensure the second send sits unmatched
          r.recv(2, 0);             // must still find rank 2's message
        } else {
          r.send(0, 0, 100);
        }
      },
      3);
  EXPECT_NO_THROW(t.validate());
  EXPECT_GT(t.ranks[0].end_time, 10.0);
}

TEST(Simulator, WildcardQueuedBeforeAnySend) {
  const NetworkModel net = fast_net();
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.recv(kAnySource, 9);  // posted long before any send exists
        } else if (r.rank() == 1) {
          r.compute(2.0);
          r.send(0, 9, 100);
        }
      },
      2);
  EXPECT_NEAR(t.ranks[0].end_time, 2.0 + net.transfer_time(100), 1e-9);
  EXPECT_NEAR(total_state(t, 0, IntervalState::SyncWait), t.ranks[0].end_time, 1e-9);
}

TEST(Simulator, SpecificRecvTakesPriorityOverWildcard) {
  // A specific receive posted on the channel consumes the send even though
  // a wildcard was queued earlier on another rank... (same rank here: the
  // wildcard waits for the *second* send).
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          RequestId wild = r.irecv(kAnySource, 3);
          r.recv(1, 3);  // matches the first message
          r.wait(wild);  // completes with the second
        } else {
          r.compute(1.0);
          r.send(0, 3, 100);
          r.compute(4.0);
          r.send(0, 3, 100);
        }
      },
      2);
  EXPECT_GT(t.ranks[0].end_time, 5.0);  // waited for the second send
}

TEST(Simulator, WildcardSendersCannotUseAnySource) {
  ProgramBuilder b(machine_of(2));
  EXPECT_THROW(b.record([](Recorder& r) { r.send(kAnySource, 0, 10); }),
               std::invalid_argument);
  EXPECT_THROW(b.record([](Recorder& r) { r.isend(kAnySource, 0, 10); }),
               std::invalid_argument);
}

TEST(Simulator, UnmatchedWildcardDeadlocks) {
  EXPECT_THROW(simulate(
                   [](Recorder& r) {
                     if (r.rank() == 0) r.recv(kAnySource, 0);
                     else r.compute(1.0);
                   },
                   2),
               std::runtime_error);
}

TEST(Simulator, IoIsAttributedAsIoWait) {
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        FunctionScope f(r, "checkpoint", "io.c");
        r.io(2.5);
      },
      1);
  EXPECT_DOUBLE_EQ(total_state(t, 0, IntervalState::IoWait), 2.5);
  EXPECT_EQ(t.ranks[0].intervals.at(0).func, 0);
}

TEST(Simulator, FunctionAttributionIsInnermost) {
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        FunctionScope outer(r, "main", "main.c");
        r.compute(1.0);
        {
          FunctionScope inner(r, "kernel", "kern.c");
          r.compute(2.0);
        }
        r.compute(0.5);
      },
      1);
  ASSERT_EQ(t.ranks[0].intervals.size(), 3u);
  EXPECT_EQ(t.functions[t.ranks[0].intervals[0].func].function, "main");
  EXPECT_EQ(t.functions[t.ranks[0].intervals[1].func].function, "kernel");
  EXPECT_EQ(t.functions[t.ranks[0].intervals[2].func].function, "main");
}

TEST(Simulator, CommTagNamedSyncObjects) {
  ExecutionTrace t = simulate(
      [](Recorder& r) {
        if (r.rank() == 0) {
          r.compute(1.0);
          r.send(1, -1, 10, 3);
        } else {
          r.recv(0, -1, 3);
        }
      },
      2);
  bool found = false;
  for (const auto& name : t.sync_objects)
    if (name == "Message/3:-1") found = true;
  EXPECT_TRUE(found);
}

TEST(Simulator, EmptyProgramRejected) {
  SimProgram p;
  EXPECT_THROW(Simulator().run(p), std::invalid_argument);
}

TEST(Trace, SummaryMentionsEveryRank) {
  ExecutionTrace t = simulate([](Recorder& r) { r.compute(1.0); }, 3);
  std::string s = t.summary();
  for (int rank = 0; rank < 3; ++rank)
    EXPECT_NE(s.find("rank " + std::to_string(rank)), std::string::npos);
}

// ----------------------------------------------------------------- jitter

TEST(Jitter, ZeroJitterIsExact) {
  ProgramBuilder a(machine_of(1)), b(machine_of(1), {0.0, 99});
  auto body = [](Recorder& r) { r.compute(2.0); };
  a.record(body);
  b.record(body);
  EXPECT_DOUBLE_EQ(a.build().procs[0].ops[0].seconds, 2.0);
  EXPECT_DOUBLE_EQ(b.build().procs[0].ops[0].seconds, 2.0);
}

TEST(Jitter, SeededJitterIsReproducibleAndBounded) {
  auto record_durations = [](std::uint64_t seed) {
    ProgramBuilder b(machine_of(1), {0.05, seed});
    b.record([](Recorder& r) {
      for (int i = 0; i < 200; ++i) r.compute(1.0);
    });
    const SimProgram program = b.build();
    std::vector<double> out;
    for (const Op& op : program.procs[0].ops) out.push_back(op.seconds);
    return out;
  };
  const auto a = record_durations(7);
  const auto b = record_durations(7);
  const auto c = record_durations(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  double sum = 0;
  for (double d : a) {
    EXPECT_GT(d, 0.0);
    EXPECT_NEAR(d, 1.0, 0.3);  // 5% sigma: 6-sigma bound with slack
    sum += d;
  }
  EXPECT_NEAR(sum / a.size(), 1.0, 0.02);
}

TEST(Jitter, InvalidJitterRejected) {
  EXPECT_THROW(ProgramBuilder(machine_of(1), {-0.1, 0}), std::invalid_argument);
  EXPECT_THROW(ProgramBuilder(machine_of(1), {0.9, 0}), std::invalid_argument);
}

// --------------------------------------------- property: random programs

struct RandomProgramParam {
  std::uint64_t seed;
  int nranks;
};

class RandomProgramTest : public testing::TestWithParam<RandomProgramParam> {};

/// Generate a random but deadlock-free SPMD program: rounds of imbalanced
/// compute followed by nonblocking ring exchanges and occasional
/// collectives.
SimProgram random_program(std::uint64_t seed, int nranks) {
  util::Rng shape_rng(seed);
  const int rounds = 3 + static_cast<int>(shape_rng.next_below(15));
  std::vector<double> work(nranks);
  std::vector<std::size_t> bytes(rounds);
  std::vector<int> kind(rounds);
  for (auto& w : work) w = shape_rng.uniform(0.05, 1.0);
  for (int i = 0; i < rounds; ++i) {
    bytes[i] = 64 + shape_rng.next_below(4 * 1024 * 1024);
    kind[i] = static_cast<int>(shape_rng.next_below(3));
  }
  ProgramBuilder builder(machine_of(nranks));
  builder.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", "main.c");
    for (int i = 0; i < rounds; ++i) {
      {
        FunctionScope fw(r, "work", "work.c");
        r.compute(work[r.rank()] * (1.0 + i % 3));
      }
      switch (kind[i]) {
        case 0: {  // ring exchange
          const int next = (r.rank() + 1) % r.size();
          const int prev = (r.rank() + r.size() - 1) % r.size();
          RequestId req = r.irecv(prev, i);
          r.send(next, i, bytes[i]);
          r.wait(req);
          break;
        }
        case 1:
          r.barrier();
          break;
        case 2:
          r.allreduce(bytes[i] % 4096);
          break;
      }
    }
  });
  return builder.build();
}

TEST_P(RandomProgramTest, TraceInvariantsHold) {
  const auto param = GetParam();
  SimProgram p = random_program(param.seed, param.nranks);
  ExecutionTrace t = Simulator(fast_net()).run(p);
  // validate() checks monotone non-overlapping intervals and id ranges;
  // run() already calls it, but be explicit.
  EXPECT_NO_THROW(t.validate());
  // Per-rank attributed time never exceeds the rank's end time.
  for (int rank = 0; rank < t.num_ranks(); ++rank) {
    auto totals = t.totals_for_rank(rank);
    EXPECT_LE(totals.total(), t.ranks[rank].end_time + 1e-6);
    EXPECT_GT(t.ranks[rank].end_time, 0.0);
  }
  EXPECT_GT(t.totals().cpu, 0.0);
}

TEST_P(RandomProgramTest, SimulationIsDeterministic) {
  const auto param = GetParam();
  ExecutionTrace a = Simulator(fast_net()).run(random_program(param.seed, param.nranks));
  ExecutionTrace b = Simulator(fast_net()).run(random_program(param.seed, param.nranks));
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  for (int rank = 0; rank < a.num_ranks(); ++rank) {
    ASSERT_EQ(a.ranks[rank].intervals.size(), b.ranks[rank].intervals.size());
    for (std::size_t i = 0; i < a.ranks[rank].intervals.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.ranks[rank].intervals[i].t0, b.ranks[rank].intervals[i].t0);
      EXPECT_DOUBLE_EQ(a.ranks[rank].intervals[i].t1, b.ranks[rank].intervals[i].t1);
      EXPECT_EQ(a.ranks[rank].intervals[i].sync_object, b.ranks[rank].intervals[i].sync_object);
    }
  }
}

TEST_P(RandomProgramTest, CollectivesSynchronizeEndTimes) {
  const auto param = GetParam();
  // Append a final barrier: all ranks must then end at the same time.
  SimProgram p = random_program(param.seed, param.nranks);
  for (auto& proc : p.procs) {
    Op op;
    op.kind = OpKind::Barrier;
    proc.ops.push_back(op);
  }
  ExecutionTrace t = Simulator(fast_net()).run(p);
  for (int rank = 1; rank < t.num_ranks(); ++rank)
    EXPECT_NEAR(t.ranks[rank].end_time, t.ranks[0].end_time, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramTest,
                         testing::Values(RandomProgramParam{1, 2}, RandomProgramParam{2, 3},
                                         RandomProgramParam{3, 4}, RandomProgramParam{4, 4},
                                         RandomProgramParam{5, 8}, RandomProgramParam{6, 5},
                                         RandomProgramParam{7, 2}, RandomProgramParam{8, 7},
                                         RandomProgramParam{9, 6}, RandomProgramParam{10, 8}),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param.seed) + "_ranks" +
                                  std::to_string(param_info.param.nranks);
                         });

}  // namespace
}  // namespace histpc::simmpi
