// Diagnosis-as-a-service: the HTTP framing, the DiagnosisServer's
// endpoints and admission control, and the acceptance oracle — a served
// diagnosis is bit-identical to a one-shot local run, at every server
// thread count. These run under the tsan preset (see CMakePresets.json):
// the concurrency claims are checked by the race detector, not just by
// the assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "pc/consultant.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/session_pool.h"
#include "telemetry/perf_record.h"
#include "util/json.h"
#include "util/log.h"

namespace histpc::serve {
namespace {

namespace fs = std::filesystem;

constexpr const char* kApp = "poisson_a";
constexpr double kDuration = 1500.0;

std::string temp_dir(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / ("serve_test_" + name);
  fs::remove_all(path);
  fs::create_directories(path);
  return path.string();
}

ServeConfig test_config(const std::string& scratch) {
  ServeConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.threads = 2;
  cfg.store_dir = scratch + "/store";
  cfg.trace_cache_dir = scratch + "/trace-cache";
  cfg.perf_log = false;  // tests that want the log opt back in
  return cfg;
}

std::string diagnose_body(const std::string& extra = "") {
  std::string body = "{\"app\": \"" + std::string(kApp) +
                     "\", \"duration\": " + std::to_string(kDuration);
  if (!extra.empty()) body += ", " + extra;
  return body + "}";
}

/// The one-shot local result, serialized exactly as the server serializes
/// its "result" object. Mirrors SessionPool::diagnose's consultant setup
/// with the request defaults.
std::string oracle_result_dump() {
  apps::AppParams params;
  params.target_duration = kDuration;
  params.node_base = 1;
  core::DiagnosisSession session(kApp, params, {});
  pc::PcConfig config;
  config.threshold_override = -1.0;
  config.cost_limit = 0.05;
  config.search_threads = 1;
  pc::PerformanceConsultant consultant(session.view(), config, {});
  const pc::DiagnosisResult result = consultant.run();
  return diagnose_result_json(kApp, result, "").dump();
}

// ------------------------------------------------------------ round trip

TEST(ServeTest, DiagnoseRoundTripOverSocket) {
  DiagnosisServer server(test_config(temp_dir("roundtrip")));
  server.start();

  const auto health = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);

  const auto resp = http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body());
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->status, 200) << resp->body;
  const util::Json reply = util::Json::parse(resp->body);
  EXPECT_EQ(reply.at("result").at("app").as_string(), kApp);
  EXPECT_GT(reply.at("result").at("bottlenecks").as_array().size(), 0u);
  EXPECT_FALSE(reply.at("server").at("warm_view").as_bool());  // first build is cold

  // Same request again: result cache hit, warm.
  const auto again = http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body());
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->status, 200);
  const util::Json reply2 = util::Json::parse(again->body);
  EXPECT_TRUE(reply2.at("server").at("warm_view").as_bool());
  EXPECT_TRUE(reply2.at("server").at("result_cache_hit").as_bool());
  EXPECT_EQ(reply2.at("result").dump(), reply.at("result").dump());

  const auto stats = http_get("127.0.0.1", server.port(), "/stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(util::Json::parse(stats->body).at("diagnoses").as_double(), 2.0);

  // /list answers from the (empty) store.
  const auto list = http_post("127.0.0.1", server.port(), "/list", "{}");
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->status, 200);
  EXPECT_EQ(util::Json::parse(list->body).at("records").as_array().size(), 0u);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeTest, ShutdownEndpointReleasesWait) {
  DiagnosisServer server(test_config(temp_dir("shutdown")));
  server.start();
  std::thread waiter([&] { server.wait(); });
  const auto resp = http_post("127.0.0.1", server.port(), "/shutdown", "");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  waiter.join();  // wait() returned — the CLI's serve loop exits this way
  server.stop();
}

// ------------------------------------------------- malformed requests

TEST(ServeTest, MalformedRequestsFailCleanAndServerStaysUp) {
  ServeConfig cfg = test_config(temp_dir("malformed"));
  cfg.max_body_bytes = 512;
  DiagnosisServer server(cfg);
  server.start();
  util::set_log_sink([](util::LogLevel, const std::string&) {});  // expected warns

  struct Case {
    const char* name;
    const char* target;
    std::string body;
    int expect;
  };
  const Case cases[] = {
      {"body not json", "/diagnose", "{not json", 400},
      {"app wrong type", "/diagnose", "{\"app\": 42}", 400},
      {"app missing", "/diagnose", "{}", 400},
      {"unknown app", "/diagnose", "{\"app\": \"no_such_program\"}", 400},
      {"negative duration", "/diagnose", "{\"app\": \"poisson_a\", \"duration\": -1}", 400},
      {"bad directives", "/diagnose",
       "{\"app\": \"poisson_a\", \"directives\": \"gibberish: [\"}", 400},
      {"unknown endpoint", "/nope", "{}", 404},
      {"perf-report without app", "/perf-report", "{}", 400},
      {"oversized body", "/diagnose", std::string(1024, 'x'), 413},
  };
  for (const Case& c : cases) {
    const auto resp = http_post("127.0.0.1", server.port(), c.target, c.body);
    ASSERT_TRUE(resp.has_value()) << c.name;
    EXPECT_EQ(resp->status, c.expect) << c.name << ": " << resp->body;
    // Every error body is itself well-formed JSON naming the failure.
    const util::Json j = util::Json::parse(resp->body);
    EXPECT_FALSE(j.at("error").as_string().empty()) << c.name;
  }
  util::set_log_sink({});

  // The server survived all of it and still diagnoses.
  const auto ok = http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
  EXPECT_GE(server.stats().http_errors, std::size(cases));
  server.stop();
}

// --------------------------------------------------- admission control

TEST(ServeTest, FullQueueShedsWith429) {
  ServeConfig cfg = test_config(temp_dir("shed"));
  cfg.threads = 1;
  cfg.queue_depth = 1;  // one request in flight is already "full"
  DiagnosisServer server(cfg);
  server.start();

  // Occupy the single worker deterministically.
  std::thread sleeper([&] {
    const auto resp =
        http_post("127.0.0.1", server.port(), "/debug/sleep", "{\"ms\": 1500}");
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 200);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().in_flight < 1 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(server.stats().in_flight, 1);

  // Admission happens on the acceptor: even a cheap request is shed.
  const auto shed = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, 429);
  EXPECT_GE(server.stats().shed, 1u);

  sleeper.join();
  // Load drained: admitted again.
  const auto after = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, 200);
  server.stop();
}

// ------------------------------------------------------------ deadlines

TEST(ServeTest, DeadlineLimitedSearchReportsAndNeverCaches) {
  DiagnosisServer server(test_config(temp_dir("deadline")));
  server.start();

  const std::string limited = diagnose_body("\"deadline_ms\": 0.5");
  const auto first = http_post("127.0.0.1", server.port(), "/diagnose", limited);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->status, 200) << first->body;
  const util::Json reply = util::Json::parse(first->body);
  EXPECT_TRUE(reply.at("result").at("stats").at("deadline_hit").as_bool());
  EXPECT_FALSE(reply.at("server").at("result_cache_hit").as_bool());

  // A deadline-limited result reflects wall-clock timing; repeating the
  // request must re-run the search, never serve a memoized copy.
  const auto second = http_post("127.0.0.1", server.port(), "/diagnose", limited);
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->status, 200);
  EXPECT_FALSE(
      util::Json::parse(second->body).at("server").at("result_cache_hit").as_bool());
  EXPECT_EQ(server.stats().result_cache_hits, 0u);

  // Without the deadline the same request completes the full search.
  const auto full = http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body());
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->status, 200);
  EXPECT_FALSE(
      util::Json::parse(full->body).at("result").at("stats").at("deadline_hit").as_bool());
  server.stop();
}

// ---------------------------------------------------------- perf records

TEST(ServeTest, EveryDiagnosisAppendsAServePerfRecord) {
  ServeConfig cfg = test_config(temp_dir("perflog"));
  cfg.perf_log = true;
  DiagnosisServer server(cfg);
  server.start();
  for (int i = 0; i < 3; ++i) {
    const auto resp = http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body());
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, 200);
  }

  // The running server reports its own latest record.
  const auto report =
      http_post("127.0.0.1", server.port(), "/perf-report", "{\"app\": \"serve\"}");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->status, 200) << report->body;
  server.stop();

  // And the log is the standard per-store layout `histpc perf-diff
  // --app serve` reads.
  const telemetry::PerfLog log(telemetry::PerfLog::path_in_store(cfg.store_dir, "serve"));
  const auto records = log.read_all();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.kind, "serve");
    EXPECT_EQ(rec.app, "serve");
    EXPECT_EQ(rec.config.at("app"), kApp);
    EXPECT_TRUE(rec.registry.timers().contains("serve.request"));
  }
}

// ------------------------------------------------- bit-identity oracle

TEST(ServeOracle, ConcurrentServedResultsMatchOneShotBitForBit) {
  // The acceptance bar: a diagnosis served concurrently — any server
  // thread count, any per-request search_threads — is byte-identical to
  // the one-shot local run. Everything timing-dependent lives in the
  // reply's "server" object; "result" must be pure.
  const std::string oracle = oracle_result_dump();

  for (const int server_threads : {1, 2, 4}) {
    ServeConfig cfg = test_config(temp_dir("oracle_t" + std::to_string(server_threads)));
    cfg.threads = server_threads;
    DiagnosisServer server(cfg);
    server.start();

    const int clients = 2 * server_threads;
    std::vector<std::thread> threads;
    std::vector<std::string> dumps(static_cast<std::size_t>(clients));
    std::atomic<int> failures{0};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        // Odd clients bypass the result cache so real searches overlap;
        // search_threads cycles 1/2/4 (the cache key ignores it — results
        // are thread-count-invariant by construction).
        std::string extra = "\"search_threads\": " + std::to_string(1 << (c % 3));
        if (c % 2) extra += ", \"no_result_cache\": true";
        const auto resp =
            http_post("127.0.0.1", server.port(), "/diagnose", diagnose_body(extra));
        if (!resp || resp->status != 200) {
          ++failures;
          return;
        }
        dumps[static_cast<std::size_t>(c)] =
            util::Json::parse(resp->body).at("result").dump();
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0) << "server_threads=" << server_threads;
    for (int c = 0; c < clients; ++c)
      EXPECT_EQ(dumps[static_cast<std::size_t>(c)], oracle)
          << "server_threads=" << server_threads << " client=" << c;
    server.stop();
  }
}

}  // namespace
}  // namespace histpc::serve
