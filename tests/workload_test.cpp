#include <gtest/gtest.h>

#include "apps/workload_spec.h"
#include "core/session.h"
#include "metrics/trace_view.h"

namespace histpc::apps {
namespace {

using util::Json;

Json base_spec() {
  return Json::parse(R"({
    "name": "wl",
    "ranks": 4,
    "iterations": 50,
    "body": [
      { "op": "compute", "seconds": 0.5, "function": "solve", "module": "solver.c" },
      { "op": "barrier" }
    ]
  })");
}

TEST(Workload, BuildsAndRuns) {
  const simmpi::ExecutionTrace trace = run_workload(base_spec());
  EXPECT_EQ(trace.num_ranks(), 4);
  // 50 iterations of 0.5s compute + barriers.
  EXPECT_NEAR(trace.duration, 25.0, 0.5);
  EXPECT_NO_THROW(trace.validate());
  const metrics::TraceView view(trace);
  EXPECT_TRUE(view.resources().contains("/Code/solver.c/solve"));
  EXPECT_TRUE(view.resources().contains("/Code/wl.c/main"));
  EXPECT_TRUE(view.resources().contains("/Process/wl:1"));
}

TEST(Workload, FactorsScalePerRank) {
  Json spec = base_spec();
  spec["body"].as_array()[0]["factors"] =
      Json::parse(R"([1.0, 1.0, 0.5, 0.5])");
  const simmpi::ExecutionTrace trace = run_workload(spec);
  const metrics::TraceView view(trace);
  // Slow-factor ranks wait at the barrier ~half of every iteration.
  auto frac = [&](const char* proc) {
    auto f = resources::Focus::whole_program(view.resources())
                 .with_part(2, std::string("/Process/") + proc);
    return view.fraction(metrics::MetricKind::SyncWaitTime, f, 0, trace.duration);
  };
  EXPECT_LT(frac("wl:1"), 0.05);
  EXPECT_NEAR(frac("wl:3"), 0.5, 0.05);
}

TEST(Workload, MachineSpeedsApply) {
  Json spec = base_spec();
  spec["machine"] = Json::parse(R"({"speeds": [2.0, 1.0, 1.0, 1.0]})");
  const simmpi::ExecutionTrace trace = run_workload(spec);
  // Rank 0 computes twice as fast, so it waits at barriers.
  const metrics::TraceView view(trace);
  auto f = resources::Focus::whole_program(view.resources()).with_part(2, "/Process/wl:1");
  EXPECT_NEAR(view.fraction(metrics::MetricKind::SyncWaitTime, f, 0, trace.duration), 0.5,
              0.05);
}

TEST(Workload, EveryCadence) {
  Json spec = base_spec();
  spec["iterations"] = 40;
  spec["body"].push_back(Json::parse(
      R"({ "op": "io", "seconds": 1.0, "every": 10, "function": "ckpt", "module": "io.c" })"));
  const simmpi::ExecutionTrace trace = run_workload(spec);
  const metrics::TraceView view(trace);
  auto f = resources::Focus::whole_program(view.resources()).with_part(0, "/Code/io.c");
  // 4 of 40 iterations do 1s of I/O each.
  EXPECT_NEAR(view.query(metrics::MetricKind::IoWaitTime, f, 0, trace.duration) / 4.0, 4.0,
              0.01);
}

TEST(Workload, ExchangePatterns) {
  for (const char* pattern : {"ring", "pairs", "butterfly"}) {
    Json spec = base_spec();
    Json step = Json::parse(
        R"({ "op": "exchange", "bytes": 500000, "tag": 3, "function": "x", "module": "x.c" })");
    step["pattern"] = pattern;
    spec["body"].push_back(std::move(step));
    const simmpi::ExecutionTrace trace = run_workload(spec);
    const metrics::TraceView view(trace);
    EXPECT_TRUE(view.resources().contains("/SyncObject/Message/3")) << pattern;
    EXPECT_GT(trace.totals().sync_wait, 0.0) << pattern;
  }
}

TEST(Workload, CollectiveOps) {
  for (const char* op : {"bcast", "gather", "alltoall"}) {
    Json spec = base_spec();
    Json step = Json::parse(R"({ "bytes": 100000 })");
    step["op"] = op;
    spec["body"].push_back(std::move(step));
    const simmpi::ExecutionTrace trace = run_workload(spec);
    const metrics::TraceView view(trace);
    std::string name = std::string("/SyncObject/Collective/") +
                       (op[0] == 'b' ? "Bcast" : op[0] == 'g' ? "Gather" : "Alltoall");
    EXPECT_TRUE(view.resources().contains(name)) << name;
  }
}

TEST(Workload, NetworkOverride) {
  Json spec = base_spec();
  spec["body"].push_back(Json::parse(
      R"({ "op": "exchange", "pattern": "ring", "bytes": 1000000, "function": "x", "module": "x.c" })"));
  Json slow = spec;
  slow["network"] = Json::parse(R"({"latency": 0.001, "bandwidth": 1000000.0})");
  const double fast_time = run_workload(spec).duration;
  const double slow_time = run_workload(slow).duration;
  EXPECT_GT(slow_time, fast_time + 10.0);  // 1 MB at 1 MB/s adds ~1s per iteration
}

TEST(Workload, InitRunsOnce) {
  Json spec = base_spec();
  spec["init"] = Json::parse(
      R"([{ "op": "compute", "seconds": 3.0, "function": "setup", "module": "init.c" }])");
  const simmpi::ExecutionTrace trace = run_workload(spec);
  const metrics::TraceView view(trace);
  auto f = resources::Focus::whole_program(view.resources()).with_part(0, "/Code/init.c");
  EXPECT_NEAR(view.query(metrics::MetricKind::CpuTime, f, 0, trace.duration), 12.0, 0.01);
}

TEST(Workload, Deterministic) {
  const simmpi::ExecutionTrace a = run_workload(base_spec());
  const simmpi::ExecutionTrace b = run_workload(base_spec());
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
}

TEST(Workload, DiagnosableEndToEnd) {
  Json spec = base_spec();
  spec["iterations"] = 500;
  spec["body"].as_array()[0]["factors"] = Json::parse(R"([1.0, 1.0, 0.3, 0.3])");
  core::DiagnosisSession session(run_workload(spec), pc::PcConfig{}, "wl");
  const pc::DiagnosisResult r = session.diagnose();
  EXPECT_TRUE(std::any_of(r.bottlenecks.begin(), r.bottlenecks.end(), [](const auto& b) {
    return b.hypothesis == pc::kSyncWaitName && b.focus.find("/Process/wl:3") != std::string::npos;
  }));
}

TEST(Workload, ValidationErrors) {
  auto expect_error = [](const char* json, const char* why) {
    EXPECT_THROW(build_workload(Json::parse(json)), WorkloadError) << why;
  };
  expect_error(R"([])", "not an object");
  expect_error(R"({"ranks": 0, "iterations": 1, "body": [{"op": "barrier"}]})", "bad ranks");
  expect_error(R"({"ranks": 2, "iterations": 0, "body": [{"op": "barrier"}]})",
               "bad iterations");
  expect_error(R"({"ranks": 2, "iterations": 1})", "missing body");
  expect_error(R"({"ranks": 2, "iterations": 1, "body": []})", "empty body");
  expect_error(R"({"ranks": 2, "iterations": 1, "body": [{"op": "fly"}]})", "unknown op");
  expect_error(R"({"ranks": 2, "iterations": 1, "body": [{"op": "compute"}]})",
               "compute without seconds");
  expect_error(
      R"({"ranks": 2, "iterations": 1,
          "body": [{"op": "compute", "seconds": 1, "factors": [1.0]}]})",
      "factor count mismatch");
  expect_error(
      R"({"ranks": 3, "iterations": 1, "body": [{"op": "exchange", "pattern": "pairs"}]})",
      "odd pairs");
  expect_error(
      R"({"ranks": 2, "iterations": 1,
          "body": [{"op": "compute", "seconds": 1, "function": "f"}]})",
      "function without module");
  expect_error(
      R"({"ranks": 2, "iterations": 1, "body": [{"op": "barrier", "every": 0}]})",
      "bad every");
  expect_error(
      R"({"ranks": 2, "iterations": 1, "body": [{"op": "barrier"}],
          "network": {"bandwidth": -1}})",
      "bad network");
  expect_error(
      R"({"ranks": 2, "iterations": 1, "body": [{"op": "barrier"}],
          "machine": {"speeds": [1.0]}})",
      "speeds count mismatch");
}

}  // namespace
}  // namespace histpc::apps
