#!/usr/bin/env bash
# Full pre-merge check: build the release and asan-ubsan presets and run
# the test suite under both. The sanitizer run exercises the threaded
# metric-evaluation path (MetricEngineProperty.ThreadedBatchMatchesSequential)
# under ASan/UBSan, catching data races' memory effects and UB in the index.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for preset in release asan-ubsan; do
  echo "==> configure: $preset"
  cmake --preset "$preset"
  echo "==> build: $preset"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test: $preset"
  ctest --preset "$preset" -j "$jobs"
done

echo "All checks passed."
