#!/usr/bin/env python3
"""Validate BENCH_metrics.json written by bench/micro_core.

Usage: validate_bench_metrics.py [cold|warm|serve]

Checks that every expected section and key is present and not NaN. The
optional mode argument asserts the trace-cache behaviour of the run that
just finished: a `cold` run (empty cache directory) must record a cache
miss, a `warm` run must record a cache hit and no miss — so CI catches a
regression in snapshot keying, decoding, or cache lookup, not just a
missing metric.

`serve` mode validates only the serve_load section (written by `histpc
bench-client --out` or bench/serve_load, which don't produce the
micro_core sections): load points must carry ordered positive latency
percentiles, a low-RPS smoke run must shed nothing, and when the section
reports warm_speedup_vs_cold it must clear the 5x acceptance bar.
"""

import json
import sys

REQUIRED = {
    "metric_query": [
        "indexed_ns_per_query",
        "scan_ns_per_query",
        "speedup_vs_scan",
        "p50_ns_per_query",
        "p99_ns_per_query",
    ],
    "block_skip": [
        "intervals",
        "block_size",
        "simd_level",
        "simd_lane_width",
        "block_ns_per_query",
        "indexed_ns_per_query",
        "scan_ns_per_query",
        "speedup_vs_indexed",
        "speedup_vs_scan",
        "blocks_skipped_ratio",
        "p50_ns_per_query",
        "p99_ns_per_query",
    ],
    "directive_lookup": ["scan_ns_per_lookup", "indexed_ns_per_lookup", "speedup_vs_scan"],
    "store_query": [
        "runs",
        "indexed_ns_per_query",
        "indexed_cold_ns_per_query",
        "scan_binary_ns_per_query",
        "json_scan_ns_per_query",
        "speedup_vs_json_scan",
        "speedup_vs_binary_scan",
        "p50_ns_per_query",
        "p99_ns_per_query",
    ],
    "directive_gen_nruns": [
        "runs",
        "pooled_ns_per_gen",
        "pairwise_fold_ns_per_gen",
        "nrun_combine_ns_per_gen",
        "weighted_ns_per_gen",
    ],
    "focus_intern": ["string_ns_per_op", "interned_ns_per_op", "speedup_vs_string"],
    "parallel_variants": [
        "variants",
        "threads",
        "hardware_concurrency",
        "sequential_seconds",
        "parallel_seconds",
        "speedup_vs_sequential",
    ],
    "speculative_search": [
        "threads",
        "hardware_concurrency",
        "serial_seconds",
        "parallel_seconds",
        "speedup_vs_serial",
        "spec_launched",
        "spec_hits",
        "spec_discarded",
        "spec_hit_rate",
        "spec_wasted_seconds",
    ],
    "trace_snapshot": [
        "intervals",
        "cold_simulate_ns",
        "encode_ns",
        "warm_load_ns",
        "speedup_vs_simulate",
        "binary_bytes",
        "json_bytes",
        "json_bytes_vs_binary",
        "cache_hits",
        "cache_misses",
    ],
    "table1_directives": ["end_to_end_seconds"],
    "telemetry": ["events_recorded", "summary"],
}


def validate_serve(metrics: dict) -> None:
    if "serve_load" not in metrics:
        sys.exit("BENCH_metrics.json: missing section 'serve_load'")
    serve = metrics["serve_load"]
    points = serve.get("points")
    if not points:
        sys.exit("serve_load: no load points recorded")
    for i, point in enumerate(points):
        for key in ("offered_rps", "achieved_rps", "sent", "ok", "shed", "errors",
                    "p50_ms", "p99_ms", "shed_rate"):
            if key not in point:
                sys.exit(f"serve_load: point {i} missing {key!r}")
        if not point["p50_ms"] > 0:
            sys.exit(f"serve_load: point {i} p50_ms {point['p50_ms']} not positive — "
                     "no successful request was ever timed")
        if point["p99_ms"] < point["p50_ms"]:
            sys.exit(f"serve_load: point {i} p99_ms {point['p99_ms']} < "
                     f"p50_ms {point['p50_ms']}")
        if point["errors"] != 0:
            sys.exit(f"serve_load: point {i} saw {point['errors']} transport errors")
    # The smoke run drives well under capacity: admission control must not
    # have engaged (first point only; saturation points are meant to shed).
    if points[0]["shed_rate"] != 0:
        sys.exit(f"serve_load: shed_rate {points[0]['shed_rate']} at low load — "
                 "admission control shed requests a healthy server should absorb")
    if "warm_speedup_vs_cold" in serve and serve["warm_speedup_vs_cold"] < 5:
        sys.exit(f"serve_load: warm served request only "
                 f"{serve['warm_speedup_vs_cold']:.1f}x over a cold one-shot "
                 "(acceptance bar is 5x)")
    print("BENCH_metrics.json serve_load OK:", len(points), "load point(s)")


def main() -> None:
    mode = sys.argv[1] if len(sys.argv) > 1 else None
    if mode not in (None, "cold", "warm", "serve"):
        sys.exit(f"unknown mode {mode!r}: expected 'cold', 'warm', or 'serve'")

    with open("BENCH_metrics.json") as f:
        metrics = json.load(f)

    if mode == "serve":
        validate_serve(metrics)
        return

    for section, keys in REQUIRED.items():
        if section not in metrics:
            sys.exit(f"BENCH_metrics.json: missing section {section!r}")
        for key in keys:
            if key not in metrics[section]:
                sys.exit(f"BENCH_metrics.json: missing {section}.{key}")
            value = metrics[section][key]
            if isinstance(value, (int, float)) and not value == value:
                sys.exit(f"BENCH_metrics.json: {section}.{key} is NaN")

    # The histogram-derived percentiles must be ordered and positive: a
    # zero p50 means the sampled path never recorded into the registry.
    for section in ("metric_query", "block_skip", "store_query"):
        p50, p99 = metrics[section]["p50_ns_per_query"], metrics[section]["p99_ns_per_query"]
        if not p50 > 0:
            sys.exit(f"{section}: p50_ns_per_query {p50} not positive — "
                     "the sampled timing path recorded no histogram laps")
        if p99 < p50:
            sys.exit(f"{section}: p99_ns_per_query {p99} < p50_ns_per_query {p50}")

    block_skip = metrics["block_skip"]
    ratio = block_skip["blocks_skipped_ratio"]
    if not 0.0 < ratio <= 1.0:
        sys.exit(f"block_skip: blocks_skipped_ratio {ratio} outside (0, 1] — "
                 "the summaries pruned nothing on the phase-clustered trace")
    if block_skip["speedup_vs_indexed"] != block_skip["speedup_vs_indexed"] or \
            block_skip["speedup_vs_indexed"] <= 0:
        sys.exit("block_skip: speedup_vs_indexed missing or non-positive")
    if block_skip["simd_lane_width"] not in (1, 2, 4):
        sys.exit(f"block_skip: unexpected simd_lane_width {block_skip['simd_lane_width']}")

    # Experiment-store acceptance bar: at >= 1000 stored runs the indexed
    # latest() must beat the legacy JSON re-parse by >= 10x.
    store_query = metrics["store_query"]
    if store_query["runs"] < 1000:
        sys.exit(f"store_query: benchmarked {store_query['runs']} runs, expected >= 1000")
    if store_query["speedup_vs_json_scan"] < 10:
        sys.exit(f"store_query: indexed latest() only "
                 f"{store_query['speedup_vs_json_scan']:.1f}x over JSON re-parse "
                 "(acceptance bar is 10x at 1000 runs)")

    # Speculative search acceptance: the predictor must genuinely engage
    # (launches with a non-zero hit rate — bit-identity is the property
    # tests' job, efficiency is checked here), and on a multi-core host the
    # parallel search must be no slower than the serial oracle (small
    # tolerance for timer noise). Single-core hosts skip the wall-clock
    # assertion: with no second core the offload cannot pay for itself.
    spec = metrics["speculative_search"]
    if spec["spec_launched"] < 1:
        sys.exit("speculative_search: no candidates were ever speculated")
    if not 0.0 < spec["spec_hit_rate"] <= 1.0:
        sys.exit(f"speculative_search: spec_hit_rate {spec['spec_hit_rate']} "
                 "outside (0, 1] — the admission predictor never came true")
    if spec["spec_hits"] + spec["spec_discarded"] != spec["spec_launched"]:
        sys.exit("speculative_search: hits + discarded != launched "
                 "(speculation bookkeeping leaked entries)")
    if spec["hardware_concurrency"] >= 2 and \
            spec["parallel_seconds"] > spec["serial_seconds"] * 1.10:
        sys.exit(f"speculative_search: {spec['threads']:.0f}-thread search took "
                 f"{spec['parallel_seconds']:.3f}s vs {spec['serial_seconds']:.3f}s "
                 "serial — speculation made the search slower on a multi-core host")

    snapshot = metrics["trace_snapshot"]
    if mode == "cold" and snapshot["cache_misses"] < 1:
        sys.exit("trace_snapshot: cold run recorded no trace-cache miss")
    if mode == "warm":
        if snapshot["cache_hits"] < 1:
            sys.exit("trace_snapshot: warm run recorded no trace-cache hit")
        if snapshot["cache_misses"] != 0:
            sys.exit("trace_snapshot: warm run re-simulated instead of hitting the cache")

    print("BENCH_metrics.json OK:", ", ".join(sorted(metrics)))


if __name__ == "__main__":
    main()
