#!/usr/bin/env bash
# Regenerate tests/data/perf_baseline.jsonl — the committed 5-record
# baseline window that CI's bench-smoke job diffs fresh micro_core runs
# against (histpc perf-diff --baseline).
#
# Run from the repo root after a perf-relevant change lands:
#
#   ./scripts/refresh_perf_baseline.sh [build-dir]
#
# The build dir defaults to build-release (the `release` CMake preset);
# micro_core must already be built there. Each iteration runs the bench in
# --quick mode from a scratch directory so the trace cache and perf log
# start empty, then the five fresh records are concatenated into the
# fixture. Commit the result together with the change that moved the
# numbers.
set -euo pipefail

build_dir=${1:-build-release}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
bench="$repo_root/$build_dir/bench/micro_core"
fixture="$repo_root/tests/data/perf_baseline.jsonl"

if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built — run: cmake --preset release && cmake --build $build_dir --target micro_core" >&2
  exit 1
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

: > "$fixture.tmp"
for i in 1 2 3 4 5; do
  echo "baseline run $i/5..."
  rundir="$scratch/run$i"
  mkdir -p "$rundir"
  (cd "$rundir" && "$bench" --quick > /dev/null)
  cat "$rundir/perf-log/micro_core.jsonl" >> "$fixture.tmp"
done
mv "$fixture.tmp" "$fixture"
echo "wrote $(wc -l < "$fixture") records to $fixture"
