// The paper's Section 6 extension in action: performance data exists (a
// serialized trace — stand-in for "results gathered with different
// monitoring tools"), but no Performance Consultant ever ran on it, so
// there is no Search History Graph to harvest from. Postmortem evaluation
// replays the hypothesis refinement over the raw data and produces the
// directives anyway.
#include <cstdio>

#include "core/session.h"
#include "history/analysis.h"
#include "history/generator.h"
#include "history/postmortem.h"
#include "simmpi/trace_io.h"
#include "util/strings.h"

using namespace histpc;

int main() {
  // A "foreign" measurement: some tool monitored the run and left a trace
  // file behind.
  apps::AppParams params;
  params.target_duration = 1200.0;
  const std::string trace_file = "foreign_trace.json";
  simmpi::save_trace(apps::run_app("poisson_c", params), trace_file);
  std::printf("wrote %s (pretend another tool produced it)\n\n", trace_file.c_str());

  // Import it and evaluate the hypothesis tree postmortem.
  const simmpi::ExecutionTrace trace = simmpi::load_trace(trace_file);
  const metrics::TraceView view(trace);
  history::PostmortemOptions opts;
  opts.hypotheses = pc::HypothesisSet::standard_extended();
  const history::ExperimentRecord record =
      history::postmortem_record("poisson", "C", view, opts);
  std::printf("postmortem evaluation: %zu pairs tested, %zu true\n", record.pairs_tested,
              record.bottlenecks.size());

  // Harvest directives exactly as if the record came from a live run...
  pc::DirectiveSet directives = history::DirectiveGenerator().from_record(record);
  std::printf("harvested %zu prunes, %zu priorities\n\n", directives.prunes.size(),
              directives.priorities.size());

  // ...and use them to direct a live diagnosis of the next execution.
  core::DiagnosisSession cold("poisson_c", params);
  core::DiagnosisSession directed("poisson_c", params);
  const pc::DiagnosisResult base = cold.diagnose();
  const pc::DiagnosisResult guided = directed.diagnose(directives);
  const auto reference = history::significant_bottlenecks(
      history::filter_pruned(base.bottlenecks, directives, directed.view().resources()),
      0.22);
  const double t_base = base.time_to_find(reference, 100.0);
  const double t_guided = guided.time_to_find(reference, 100.0);
  std::printf("time to locate the significant bottleneck set: %.1fs cold, %.1fs directed",
              t_base, t_guided);
  if (t_guided < t_base)
    std::printf(" (%s faster)", util::fmt_percent((t_base - t_guided) / t_base).c_str());
  std::printf("\n");
  return 0;
}
