// The profile-analyze-change cycle of Section 4.3: a developer revises an
// application through versions A -> B -> C -> D, and every diagnosis after
// the first is directed by the knowledge stored from the runs before it —
// including resource mapping across renamed modules, functions, processes
// and machine nodes.
#include <cstdio>
#include <memory>

#include "core/session.h"
#include "history/analysis.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "history/store.h"
#include "util/strings.h"

using namespace histpc;

namespace {

apps::AppParams params_for(char version) {
  apps::AppParams p;
  // Scaled down from the bench settings; the cycle still shows the shape.
  p.target_duration = version == 'D' ? 2500.0 : 1200.0;
  p.node_base = 1 + 4 * (version - 'A');  // fresh node names every run
  return p;
}

}  // namespace

int main() {
  history::ExperimentStore store("tuning_cycle_store");
  history::DirectiveGenerator generator;

  std::unique_ptr<history::ExperimentRecord> previous;
  for (char version : {'A', 'B', 'C', 'D'}) {
    const std::string app = std::string("poisson_") + static_cast<char>(version - 'A' + 'a');
    core::DiagnosisSession session(app, params_for(version));
    std::printf("== version %c (%d ranks, %.0fs run) ==\n", version,
                session.trace().num_ranks(), session.trace().duration);

    // Cold diagnosis for reference.
    core::DiagnosisSession cold(app, params_for(version));
    const pc::DiagnosisResult base = cold.diagnose();

    pc::DiagnosisResult result = base;
    if (previous) {
      pc::DirectiveSet directives = generator.from_record(*previous);
      directives.maps =
          history::suggest_mappings(previous->resources, session.view().resources());
      std::printf("  using %zu priorities, %zu prunes, %zu mappings from version %s\n",
                  directives.priorities.size(), directives.prunes.size(),
                  directives.maps.size(), previous->version.c_str());
      result = session.diagnose(directives);

      const auto reference = history::significant_bottlenecks(
          history::filter_pruned(base.bottlenecks, directives, session.view().resources()),
          0.22);
      const double t_base = base.time_to_find(reference, 100.0);
      const double t_directed = result.time_to_find(reference, 100.0);
      if (t_directed < t_base)
        std::printf("  bottleneck set located in %.1fs instead of %.1fs (%s faster)\n",
                    t_directed, t_base,
                    util::fmt_percent((t_base - t_directed) / t_base).c_str());
    } else {
      std::printf("  no history yet: single-button search, %zu pairs tested, done at %.1fs\n",
                  base.stats.pairs_tested, base.stats.last_true_time);
    }

    // Store this run; the next version will be directed by it.
    history::ExperimentRecord record =
        session.make_record(result, std::string(1, version));
    const std::string run_id = store.save(record);
    std::printf("  stored as %s\n\n", run_id.c_str());
    previous = std::make_unique<history::ExperimentRecord>(std::move(record));
  }

  std::printf("store now holds: ");
  for (const auto& id : store.list()) std::printf("%s ", id.c_str());
  std::printf("\n");
  return 0;
}
