// Postmortem workload report for the Poisson applications.
//
// Prints the measured execution-time distribution of a version (default C)
// the same way Section 4.2 of the paper describes it: total synchronization
// share, wait by function, wait by message tag, and wait by process. Used
// to check the simulated workload against the paper's reported shape.
//
// Usage: poisson_report [A|B|C|D] [target_duration_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/apps.h"
#include "metrics/trace_view.h"
#include "util/strings.h"

using namespace histpc;

namespace {

resources::Focus with(const metrics::TraceView& view, const std::string& part) {
  resources::Focus f = resources::Focus::whole_program(view.resources());
  auto parts = util::split(part, '/');
  int idx = view.resources().hierarchy_index(parts[1]);
  return f.with_part(static_cast<std::size_t>(idx), part);
}

void report_fraction(const metrics::TraceView& view, metrics::MetricKind metric,
                     const std::string& label, const resources::Focus& focus) {
  const double frac = view.fraction(metric, focus, 0.0, view.trace().duration);
  std::printf("  %-42s %6s\n", label.c_str(), util::fmt_percent(frac).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char version = argc > 1 ? argv[1][0] : 'C';
  apps::AppParams params;
  if (argc > 2) params.target_duration = std::atof(argv[2]);
  else params.target_duration = 300.0;  // a short run suffices for the report

  simmpi::Simulator sim(apps::poisson_network());
  const simmpi::ExecutionTrace trace = sim.run(apps::build_poisson(version, params));
  const metrics::TraceView view(trace);

  std::printf("Poisson version %c: %d ranks, %.1f virtual seconds\n\n", version,
              trace.num_ranks(), trace.duration);
  std::printf("%s\n", trace.summary().c_str());

  const auto whole = resources::Focus::whole_program(view.resources());
  std::printf("whole-program fractions:\n");
  report_fraction(view, metrics::MetricKind::CpuTime, "CPU", whole);
  report_fraction(view, metrics::MetricKind::SyncWaitTime, "sync wait", whole);
  report_fraction(view, metrics::MetricKind::IoWaitTime, "I/O wait", whole);

  std::printf("\nsync wait by code resource:\n");
  const auto& code = view.resources().hierarchy(resources::kCodeHierarchy);
  for (auto id : code.preorder()) {
    if (id == code.root()) continue;
    report_fraction(view, metrics::MetricKind::SyncWaitTime, code.node(id).full_name,
                    with(view, code.node(id).full_name));
  }

  std::printf("\nsync wait by message tag / collective:\n");
  const auto& sync = view.resources().hierarchy(resources::kSyncObjectHierarchy);
  for (auto id : sync.preorder()) {
    if (sync.node(id).depth != 2) continue;
    report_fraction(view, metrics::MetricKind::SyncWaitTime, sync.node(id).full_name,
                    with(view, sync.node(id).full_name));
  }

  std::printf("\nsync wait by process (normalized per process):\n");
  const auto& proc = view.resources().hierarchy(resources::kProcessHierarchy);
  for (auto id : proc.preorder()) {
    if (id == proc.root()) continue;
    report_fraction(view, metrics::MetricKind::SyncWaitTime, proc.node(id).full_name,
                    with(view, proc.node(id).full_name));
  }
  return 0;
}
