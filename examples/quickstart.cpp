// Quickstart: diagnose an application run, save what was learned, and run
// a second, history-directed diagnosis — the paper's core workflow.
#include <cstdio>

#include "core/session.h"
#include "history/analysis.h"
#include "history/generator.h"
#include "history/store.h"
#include "util/strings.h"

using namespace histpc;

int main() {
  // 1. First encounter with the program: the "single button" search.
  //    (Short run: a scaled-down version C of the Poisson application.)
  apps::AppParams params;
  params.target_duration = 400.0;
  core::DiagnosisSession session("poisson_c", params);

  std::printf("== undirected diagnosis ==\n");
  const pc::DiagnosisResult base = session.diagnose();
  std::printf("bottlenecks: %zu, pairs tested: %zu, last found at %.1fs\n",
              base.stats.bottlenecks, base.stats.pairs_tested, base.stats.last_true_time);

  // 2. Persist the run: resource hierarchies + search results.
  history::ExperimentStore store("quickstart_store");
  const std::string run_id = store.save(session.make_record(base, "C"));
  std::printf("saved experiment record '%s'\n\n", run_id.c_str());

  // 3. Harvest search directives from the stored run.
  history::DirectiveGenerator generator;
  const auto record = store.load(run_id);
  pc::DirectiveSet directives = generator.from_record(*record);
  std::printf("harvested %zu prunes, %zu priorities\n", directives.prunes.size(),
              directives.priorities.size());

  // 4. Diagnose the next execution with the directives: bottlenecks are
  //    re-located far faster and with less instrumentation.
  core::DiagnosisSession second("poisson_c", params);
  const pc::DiagnosisResult directed = second.diagnose(directives);
  std::printf("\n== directed diagnosis ==\n");
  std::printf("bottlenecks: %zu, pairs tested: %zu, last found at %.1fs\n",
              directed.stats.bottlenecks, directed.stats.pairs_tested,
              directed.stats.last_true_time);

  // The evaluation set: base bottlenecks that the directives do not prune
  // by design (the /Machine hierarchy is redundant here, so machine foci
  // drop out).
  const auto reference =
      history::filter_pruned(base.bottlenecks, directives, second.view().resources());
  std::printf("reference bottleneck set: %zu of %zu base bottlenecks\n", reference.size(),
              base.bottlenecks.size());
  const double t_base = base.time_to_find(reference, 100.0);
  const double t_directed = directed.time_to_find(reference, 100.0);
  if (t_directed < t_base)
    std::printf("\ntime to locate the full base bottleneck set: %.1fs -> %.1fs (%s faster)\n",
                t_base, t_directed,
                util::fmt_percent((t_base - t_directed) / t_base).c_str());
  return 0;
}
