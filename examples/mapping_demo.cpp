// Resource mapping between executions (Section 3.2 / Figure 3).
//
// Run version A, rename the machine nodes (a new scheduler placement) and
// switch to version B's code, then show: the execution map of what
// changed, the auto-suggested `map` directives, and a user-supplied
// mapping file merged on top of them.
#include <cstdio>

#include "core/session.h"
#include "history/execution_map.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "pc/directives.h"

using namespace histpc;

int main() {
  apps::AppParams params_a;
  params_a.target_duration = 600.0;
  params_a.node_base = 1;  // poona01..poona04
  core::DiagnosisSession session_a("poisson_a", params_a);
  const auto record_a = session_a.make_record(session_a.diagnose(), "A");

  apps::AppParams params_b;
  params_b.target_duration = 600.0;
  params_b.node_base = 21;  // poona21..poona24: a different placement
  core::DiagnosisSession session_b("poisson_b", params_b);

  // 1. What changed between the executions?
  const history::ExecutionMap map =
      history::build_execution_map(record_a.resources, session_b.view().resources());
  std::printf("resources unique to the version A run (mapping candidates):\n");
  for (const auto& name : map.unique_to(1)) std::printf("  %s\n", name.c_str());
  std::printf("\n");

  // 2. Auto-suggested mapping directives.
  const auto suggested =
      history::suggest_mappings(record_a.resources, session_b.view().resources());
  std::printf("auto-suggested mapping directives:\n");
  for (const auto& m : suggested) std::printf("  map %s %s\n", m.from.c_str(), m.to.c_str());

  // 3. The workflow with a user-written mapping file: the paper's format,
  //    parsed by DirectiveSet (user maps can correct or extend the
  //    suggestions).
  const char* user_maps =
      "map /Code/oned.f /Code/onednb.f\n"
      "map /Code/sweep.f /Code/nbsweep.f\n"
      "map /Code/sweep.f/sweep1d /Code/nbsweep.f/nbsweep\n"
      "map /Code/exchng1.f /Code/nbexchng.f\n"
      "map /Code/exchng1.f/exchng1 /Code/nbexchng.f/nbexchng1\n";
  pc::DirectiveSet directives = history::DirectiveGenerator().from_record(record_a);
  directives.merge(pc::DirectiveSet::parse(user_maps));
  // Machine/process placement still comes from the auto-mapper.
  for (const auto& m : suggested)
    if (m.from.rfind("/Code", 0) != 0) directives.maps.push_back(m);

  const pc::DiagnosisResult directed = session_b.diagnose(directives);
  std::printf("\ndirected diagnosis of version B using version A history:\n");
  std::printf("  %zu bottlenecks, first at %.1fs, %zu pairs tested\n",
              directed.stats.bottlenecks,
              directed.bottlenecks.empty() ? 0.0 : directed.bottlenecks.front().t_found,
              directed.stats.pairs_tested);
  return 0;
}
