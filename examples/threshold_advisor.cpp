// Harvesting thresholds from historical data (Section 3.1 / 4.2).
//
// The default 20% threshold misses bottlenecks on some applications and
// over-instruments others; the right level is application-specific. This
// example measures an application once, derives a threshold from the run's
// recorded fractions, and shows the directed re-diagnosis reporting the
// regions the default missed.
#include <cstdio>

#include "core/session.h"
#include "history/generator.h"
#include "util/strings.h"

using namespace histpc;

namespace {

void advise(const std::string& app, double duration) {
  apps::AppParams params;
  params.target_duration = duration;
  core::DiagnosisSession session(app, params);
  std::printf("== %s ==\n", app.c_str());

  // First run with the stock 20% threshold.
  const pc::DiagnosisResult base = session.diagnose();
  std::printf("  default 20%% threshold: %zu bottlenecks from %zu pairs\n",
              base.stats.bottlenecks, base.stats.pairs_tested);

  // Harvest a threshold from what the run measured.
  history::GeneratorOptions opts;
  opts.general_prunes = false;
  opts.historic_prunes = false;
  opts.priorities = false;
  opts.thresholds = true;
  const pc::DirectiveSet directives =
      history::DirectiveGenerator(opts).from_record(session.make_record(base, "1"));
  for (const auto& t : directives.thresholds)
    std::printf("  harvested: threshold %s %s\n", t.hypothesis.c_str(),
                util::fmt_percent(t.threshold, 1).c_str());

  // Re-diagnose with the harvested thresholds.
  core::DiagnosisSession directed(app, params);
  const pc::DiagnosisResult tuned = directed.diagnose(directives);
  std::printf("  harvested thresholds:   %zu bottlenecks from %zu pairs\n\n",
              tuned.stats.bottlenecks, tuned.stats.pairs_tested);
}

}  // namespace

int main() {
  // Two applications with different bottleneck profiles: the harvested
  // thresholds differ, which is the point (paper: 12% for the MPI Poisson
  // code, 20% for the PVM ocean code).
  advise("poisson_c", 1500.0);
  advise("ocean", 1500.0);
  return 0;
}
