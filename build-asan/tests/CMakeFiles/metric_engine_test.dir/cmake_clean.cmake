file(REMOVE_RECURSE
  "CMakeFiles/metric_engine_test.dir/metric_engine_test.cpp.o"
  "CMakeFiles/metric_engine_test.dir/metric_engine_test.cpp.o.d"
  "metric_engine_test"
  "metric_engine_test.pdb"
  "metric_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
