# Empty dependencies file for metric_engine_test.
# This may be replaced when dependencies are built.
