file(REMOVE_RECURSE
  "CMakeFiles/simmpi_test.dir/simmpi_test.cpp.o"
  "CMakeFiles/simmpi_test.dir/simmpi_test.cpp.o.d"
  "simmpi_test"
  "simmpi_test.pdb"
  "simmpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
