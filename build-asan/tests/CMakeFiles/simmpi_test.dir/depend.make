# Empty dependencies file for simmpi_test.
# This may be replaced when dependencies are built.
