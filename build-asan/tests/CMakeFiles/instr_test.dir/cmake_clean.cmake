file(REMOVE_RECURSE
  "CMakeFiles/instr_test.dir/instr_test.cpp.o"
  "CMakeFiles/instr_test.dir/instr_test.cpp.o.d"
  "instr_test"
  "instr_test.pdb"
  "instr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
