# Empty dependencies file for instr_test.
# This may be replaced when dependencies are built.
