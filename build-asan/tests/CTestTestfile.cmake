# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/resources_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simmpi_test[1]_include.cmake")
include("/root/repo/build-asan/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-asan/tests/metric_engine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/instr_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pc_test[1]_include.cmake")
include("/root/repo/build-asan/tests/history_test[1]_include.cmake")
include("/root/repo/build-asan/tests/apps_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cli_test[1]_include.cmake")
