# Empty compiler generated dependencies file for table2_thresholds.
# This may be replaced when dependencies are built.
