file(REMOVE_RECURSE
  "CMakeFiles/table2_thresholds.dir/bench/table2_thresholds.cpp.o"
  "CMakeFiles/table2_thresholds.dir/bench/table2_thresholds.cpp.o.d"
  "bench/table2_thresholds"
  "bench/table2_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
