# Empty compiler generated dependencies file for table3_versions.
# This may be replaced when dependencies are built.
