file(REMOVE_RECURSE
  "CMakeFiles/table3_versions.dir/bench/table3_versions.cpp.o"
  "CMakeFiles/table3_versions.dir/bench/table3_versions.cpp.o.d"
  "bench/table3_versions"
  "bench/table3_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
