# Empty compiler generated dependencies file for a1a2_detail.
# This may be replaced when dependencies are built.
