file(REMOVE_RECURSE
  "CMakeFiles/a1a2_detail.dir/bench/a1a2_detail.cpp.o"
  "CMakeFiles/a1a2_detail.dir/bench/a1a2_detail.cpp.o.d"
  "bench/a1a2_detail"
  "bench/a1a2_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1a2_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
