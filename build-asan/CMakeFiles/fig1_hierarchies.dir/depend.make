# Empty dependencies file for fig1_hierarchies.
# This may be replaced when dependencies are built.
