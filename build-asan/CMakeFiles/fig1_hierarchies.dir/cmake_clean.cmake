file(REMOVE_RECURSE
  "CMakeFiles/fig1_hierarchies.dir/bench/fig1_hierarchies.cpp.o"
  "CMakeFiles/fig1_hierarchies.dir/bench/fig1_hierarchies.cpp.o.d"
  "bench/fig1_hierarchies"
  "bench/fig1_hierarchies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hierarchies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
