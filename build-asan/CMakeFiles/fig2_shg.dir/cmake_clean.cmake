file(REMOVE_RECURSE
  "CMakeFiles/fig2_shg.dir/bench/fig2_shg.cpp.o"
  "CMakeFiles/fig2_shg.dir/bench/fig2_shg.cpp.o.d"
  "bench/fig2_shg"
  "bench/fig2_shg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_shg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
