# Empty compiler generated dependencies file for fig2_shg.
# This may be replaced when dependencies are built.
