file(REMOVE_RECURSE
  "CMakeFiles/combine_ab.dir/bench/combine_ab.cpp.o"
  "CMakeFiles/combine_ab.dir/bench/combine_ab.cpp.o.d"
  "bench/combine_ab"
  "bench/combine_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combine_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
