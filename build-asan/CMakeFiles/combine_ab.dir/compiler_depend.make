# Empty compiler generated dependencies file for combine_ab.
# This may be replaced when dependencies are built.
