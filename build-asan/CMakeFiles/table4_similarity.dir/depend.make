# Empty dependencies file for table4_similarity.
# This may be replaced when dependencies are built.
