file(REMOVE_RECURSE
  "CMakeFiles/table4_similarity.dir/bench/table4_similarity.cpp.o"
  "CMakeFiles/table4_similarity.dir/bench/table4_similarity.cpp.o.d"
  "bench/table4_similarity"
  "bench/table4_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
