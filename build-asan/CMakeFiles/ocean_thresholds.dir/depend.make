# Empty dependencies file for ocean_thresholds.
# This may be replaced when dependencies are built.
