file(REMOVE_RECURSE
  "CMakeFiles/ocean_thresholds.dir/bench/ocean_thresholds.cpp.o"
  "CMakeFiles/ocean_thresholds.dir/bench/ocean_thresholds.cpp.o.d"
  "bench/ocean_thresholds"
  "bench/ocean_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
