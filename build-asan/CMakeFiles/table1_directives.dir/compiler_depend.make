# Empty compiler generated dependencies file for table1_directives.
# This may be replaced when dependencies are built.
