file(REMOVE_RECURSE
  "CMakeFiles/table1_directives.dir/bench/table1_directives.cpp.o"
  "CMakeFiles/table1_directives.dir/bench/table1_directives.cpp.o.d"
  "bench/table1_directives"
  "bench/table1_directives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
