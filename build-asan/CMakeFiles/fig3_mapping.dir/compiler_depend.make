# Empty compiler generated dependencies file for fig3_mapping.
# This may be replaced when dependencies are built.
