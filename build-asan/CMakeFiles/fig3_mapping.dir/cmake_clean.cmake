file(REMOVE_RECURSE
  "CMakeFiles/fig3_mapping.dir/bench/fig3_mapping.cpp.o"
  "CMakeFiles/fig3_mapping.dir/bench/fig3_mapping.cpp.o.d"
  "bench/fig3_mapping"
  "bench/fig3_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
