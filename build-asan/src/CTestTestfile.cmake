# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("resources")
subdirs("simmpi")
subdirs("metrics")
subdirs("instr")
subdirs("pc")
subdirs("history")
subdirs("apps")
subdirs("core")
subdirs("cli")
