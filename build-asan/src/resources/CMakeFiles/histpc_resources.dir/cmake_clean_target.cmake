file(REMOVE_RECURSE
  "libhistpc_resources.a"
)
