file(REMOVE_RECURSE
  "CMakeFiles/histpc_resources.dir/focus.cpp.o"
  "CMakeFiles/histpc_resources.dir/focus.cpp.o.d"
  "CMakeFiles/histpc_resources.dir/resource_db.cpp.o"
  "CMakeFiles/histpc_resources.dir/resource_db.cpp.o.d"
  "CMakeFiles/histpc_resources.dir/resource_hierarchy.cpp.o"
  "CMakeFiles/histpc_resources.dir/resource_hierarchy.cpp.o.d"
  "libhistpc_resources.a"
  "libhistpc_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
