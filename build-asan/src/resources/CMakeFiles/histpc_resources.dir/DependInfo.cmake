
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/focus.cpp" "src/resources/CMakeFiles/histpc_resources.dir/focus.cpp.o" "gcc" "src/resources/CMakeFiles/histpc_resources.dir/focus.cpp.o.d"
  "/root/repo/src/resources/resource_db.cpp" "src/resources/CMakeFiles/histpc_resources.dir/resource_db.cpp.o" "gcc" "src/resources/CMakeFiles/histpc_resources.dir/resource_db.cpp.o.d"
  "/root/repo/src/resources/resource_hierarchy.cpp" "src/resources/CMakeFiles/histpc_resources.dir/resource_hierarchy.cpp.o" "gcc" "src/resources/CMakeFiles/histpc_resources.dir/resource_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
