# Empty dependencies file for histpc_resources.
# This may be replaced when dependencies are built.
