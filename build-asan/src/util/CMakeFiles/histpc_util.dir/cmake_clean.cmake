file(REMOVE_RECURSE
  "CMakeFiles/histpc_util.dir/csv.cpp.o"
  "CMakeFiles/histpc_util.dir/csv.cpp.o.d"
  "CMakeFiles/histpc_util.dir/json.cpp.o"
  "CMakeFiles/histpc_util.dir/json.cpp.o.d"
  "CMakeFiles/histpc_util.dir/log.cpp.o"
  "CMakeFiles/histpc_util.dir/log.cpp.o.d"
  "CMakeFiles/histpc_util.dir/strings.cpp.o"
  "CMakeFiles/histpc_util.dir/strings.cpp.o.d"
  "CMakeFiles/histpc_util.dir/table.cpp.o"
  "CMakeFiles/histpc_util.dir/table.cpp.o.d"
  "libhistpc_util.a"
  "libhistpc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
