# Empty dependencies file for histpc_util.
# This may be replaced when dependencies are built.
