file(REMOVE_RECURSE
  "libhistpc_util.a"
)
