file(REMOVE_RECURSE
  "libhistpc_core.a"
)
