# Empty dependencies file for histpc_core.
# This may be replaced when dependencies are built.
