file(REMOVE_RECURSE
  "CMakeFiles/histpc_core.dir/session.cpp.o"
  "CMakeFiles/histpc_core.dir/session.cpp.o.d"
  "libhistpc_core.a"
  "libhistpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
