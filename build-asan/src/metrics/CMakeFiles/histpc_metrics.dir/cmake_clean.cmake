file(REMOVE_RECURSE
  "CMakeFiles/histpc_metrics.dir/interval_index.cpp.o"
  "CMakeFiles/histpc_metrics.dir/interval_index.cpp.o.d"
  "CMakeFiles/histpc_metrics.dir/metric.cpp.o"
  "CMakeFiles/histpc_metrics.dir/metric.cpp.o.d"
  "CMakeFiles/histpc_metrics.dir/metric_batch.cpp.o"
  "CMakeFiles/histpc_metrics.dir/metric_batch.cpp.o.d"
  "CMakeFiles/histpc_metrics.dir/metric_instance.cpp.o"
  "CMakeFiles/histpc_metrics.dir/metric_instance.cpp.o.d"
  "CMakeFiles/histpc_metrics.dir/trace_view.cpp.o"
  "CMakeFiles/histpc_metrics.dir/trace_view.cpp.o.d"
  "libhistpc_metrics.a"
  "libhistpc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
