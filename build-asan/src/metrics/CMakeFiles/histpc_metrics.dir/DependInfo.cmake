
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/interval_index.cpp" "src/metrics/CMakeFiles/histpc_metrics.dir/interval_index.cpp.o" "gcc" "src/metrics/CMakeFiles/histpc_metrics.dir/interval_index.cpp.o.d"
  "/root/repo/src/metrics/metric.cpp" "src/metrics/CMakeFiles/histpc_metrics.dir/metric.cpp.o" "gcc" "src/metrics/CMakeFiles/histpc_metrics.dir/metric.cpp.o.d"
  "/root/repo/src/metrics/metric_batch.cpp" "src/metrics/CMakeFiles/histpc_metrics.dir/metric_batch.cpp.o" "gcc" "src/metrics/CMakeFiles/histpc_metrics.dir/metric_batch.cpp.o.d"
  "/root/repo/src/metrics/metric_instance.cpp" "src/metrics/CMakeFiles/histpc_metrics.dir/metric_instance.cpp.o" "gcc" "src/metrics/CMakeFiles/histpc_metrics.dir/metric_instance.cpp.o.d"
  "/root/repo/src/metrics/trace_view.cpp" "src/metrics/CMakeFiles/histpc_metrics.dir/trace_view.cpp.o" "gcc" "src/metrics/CMakeFiles/histpc_metrics.dir/trace_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/simmpi/CMakeFiles/histpc_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/resources/CMakeFiles/histpc_resources.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
