file(REMOVE_RECURSE
  "libhistpc_metrics.a"
)
