# Empty dependencies file for histpc_metrics.
# This may be replaced when dependencies are built.
