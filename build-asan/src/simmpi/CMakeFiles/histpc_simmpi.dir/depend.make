# Empty dependencies file for histpc_simmpi.
# This may be replaced when dependencies are built.
