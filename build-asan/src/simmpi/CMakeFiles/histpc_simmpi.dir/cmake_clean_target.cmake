file(REMOVE_RECURSE
  "libhistpc_simmpi.a"
)
