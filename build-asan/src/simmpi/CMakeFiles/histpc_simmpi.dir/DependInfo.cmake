
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/program.cpp" "src/simmpi/CMakeFiles/histpc_simmpi.dir/program.cpp.o" "gcc" "src/simmpi/CMakeFiles/histpc_simmpi.dir/program.cpp.o.d"
  "/root/repo/src/simmpi/simulator.cpp" "src/simmpi/CMakeFiles/histpc_simmpi.dir/simulator.cpp.o" "gcc" "src/simmpi/CMakeFiles/histpc_simmpi.dir/simulator.cpp.o.d"
  "/root/repo/src/simmpi/trace.cpp" "src/simmpi/CMakeFiles/histpc_simmpi.dir/trace.cpp.o" "gcc" "src/simmpi/CMakeFiles/histpc_simmpi.dir/trace.cpp.o.d"
  "/root/repo/src/simmpi/trace_io.cpp" "src/simmpi/CMakeFiles/histpc_simmpi.dir/trace_io.cpp.o" "gcc" "src/simmpi/CMakeFiles/histpc_simmpi.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
