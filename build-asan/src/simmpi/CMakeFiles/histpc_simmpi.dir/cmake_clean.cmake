file(REMOVE_RECURSE
  "CMakeFiles/histpc_simmpi.dir/program.cpp.o"
  "CMakeFiles/histpc_simmpi.dir/program.cpp.o.d"
  "CMakeFiles/histpc_simmpi.dir/simulator.cpp.o"
  "CMakeFiles/histpc_simmpi.dir/simulator.cpp.o.d"
  "CMakeFiles/histpc_simmpi.dir/trace.cpp.o"
  "CMakeFiles/histpc_simmpi.dir/trace.cpp.o.d"
  "CMakeFiles/histpc_simmpi.dir/trace_io.cpp.o"
  "CMakeFiles/histpc_simmpi.dir/trace_io.cpp.o.d"
  "libhistpc_simmpi.a"
  "libhistpc_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
