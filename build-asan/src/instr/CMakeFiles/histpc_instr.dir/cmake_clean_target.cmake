file(REMOVE_RECURSE
  "libhistpc_instr.a"
)
