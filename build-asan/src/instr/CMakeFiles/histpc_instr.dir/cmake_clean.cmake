file(REMOVE_RECURSE
  "CMakeFiles/histpc_instr.dir/cost_model.cpp.o"
  "CMakeFiles/histpc_instr.dir/cost_model.cpp.o.d"
  "CMakeFiles/histpc_instr.dir/instrumentation.cpp.o"
  "CMakeFiles/histpc_instr.dir/instrumentation.cpp.o.d"
  "libhistpc_instr.a"
  "libhistpc_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
