# Empty dependencies file for histpc_instr.
# This may be replaced when dependencies are built.
