
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/misc_apps.cpp" "src/apps/CMakeFiles/histpc_apps.dir/misc_apps.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/misc_apps.cpp.o.d"
  "/root/repo/src/apps/ocean.cpp" "src/apps/CMakeFiles/histpc_apps.dir/ocean.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/ocean.cpp.o.d"
  "/root/repo/src/apps/poisson.cpp" "src/apps/CMakeFiles/histpc_apps.dir/poisson.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/poisson.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/histpc_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/seismic.cpp" "src/apps/CMakeFiles/histpc_apps.dir/seismic.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/seismic.cpp.o.d"
  "/root/repo/src/apps/taskfarm.cpp" "src/apps/CMakeFiles/histpc_apps.dir/taskfarm.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/taskfarm.cpp.o.d"
  "/root/repo/src/apps/workload_spec.cpp" "src/apps/CMakeFiles/histpc_apps.dir/workload_spec.cpp.o" "gcc" "src/apps/CMakeFiles/histpc_apps.dir/workload_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/simmpi/CMakeFiles/histpc_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
