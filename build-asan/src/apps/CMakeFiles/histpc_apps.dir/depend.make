# Empty dependencies file for histpc_apps.
# This may be replaced when dependencies are built.
