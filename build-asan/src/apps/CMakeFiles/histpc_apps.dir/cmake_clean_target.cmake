file(REMOVE_RECURSE
  "libhistpc_apps.a"
)
