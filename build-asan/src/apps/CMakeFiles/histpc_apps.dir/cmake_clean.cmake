file(REMOVE_RECURSE
  "CMakeFiles/histpc_apps.dir/misc_apps.cpp.o"
  "CMakeFiles/histpc_apps.dir/misc_apps.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/ocean.cpp.o"
  "CMakeFiles/histpc_apps.dir/ocean.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/poisson.cpp.o"
  "CMakeFiles/histpc_apps.dir/poisson.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/registry.cpp.o"
  "CMakeFiles/histpc_apps.dir/registry.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/seismic.cpp.o"
  "CMakeFiles/histpc_apps.dir/seismic.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/taskfarm.cpp.o"
  "CMakeFiles/histpc_apps.dir/taskfarm.cpp.o.d"
  "CMakeFiles/histpc_apps.dir/workload_spec.cpp.o"
  "CMakeFiles/histpc_apps.dir/workload_spec.cpp.o.d"
  "libhistpc_apps.a"
  "libhistpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
