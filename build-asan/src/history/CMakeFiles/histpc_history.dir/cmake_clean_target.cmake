file(REMOVE_RECURSE
  "libhistpc_history.a"
)
