file(REMOVE_RECURSE
  "CMakeFiles/histpc_history.dir/analysis.cpp.o"
  "CMakeFiles/histpc_history.dir/analysis.cpp.o.d"
  "CMakeFiles/histpc_history.dir/combiner.cpp.o"
  "CMakeFiles/histpc_history.dir/combiner.cpp.o.d"
  "CMakeFiles/histpc_history.dir/compare.cpp.o"
  "CMakeFiles/histpc_history.dir/compare.cpp.o.d"
  "CMakeFiles/histpc_history.dir/execution_map.cpp.o"
  "CMakeFiles/histpc_history.dir/execution_map.cpp.o.d"
  "CMakeFiles/histpc_history.dir/experiment.cpp.o"
  "CMakeFiles/histpc_history.dir/experiment.cpp.o.d"
  "CMakeFiles/histpc_history.dir/generator.cpp.o"
  "CMakeFiles/histpc_history.dir/generator.cpp.o.d"
  "CMakeFiles/histpc_history.dir/mapper.cpp.o"
  "CMakeFiles/histpc_history.dir/mapper.cpp.o.d"
  "CMakeFiles/histpc_history.dir/postmortem.cpp.o"
  "CMakeFiles/histpc_history.dir/postmortem.cpp.o.d"
  "CMakeFiles/histpc_history.dir/report.cpp.o"
  "CMakeFiles/histpc_history.dir/report.cpp.o.d"
  "CMakeFiles/histpc_history.dir/store.cpp.o"
  "CMakeFiles/histpc_history.dir/store.cpp.o.d"
  "libhistpc_history.a"
  "libhistpc_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
