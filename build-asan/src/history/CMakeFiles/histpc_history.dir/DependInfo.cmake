
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/analysis.cpp" "src/history/CMakeFiles/histpc_history.dir/analysis.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/analysis.cpp.o.d"
  "/root/repo/src/history/combiner.cpp" "src/history/CMakeFiles/histpc_history.dir/combiner.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/combiner.cpp.o.d"
  "/root/repo/src/history/compare.cpp" "src/history/CMakeFiles/histpc_history.dir/compare.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/compare.cpp.o.d"
  "/root/repo/src/history/execution_map.cpp" "src/history/CMakeFiles/histpc_history.dir/execution_map.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/execution_map.cpp.o.d"
  "/root/repo/src/history/experiment.cpp" "src/history/CMakeFiles/histpc_history.dir/experiment.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/experiment.cpp.o.d"
  "/root/repo/src/history/generator.cpp" "src/history/CMakeFiles/histpc_history.dir/generator.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/generator.cpp.o.d"
  "/root/repo/src/history/mapper.cpp" "src/history/CMakeFiles/histpc_history.dir/mapper.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/mapper.cpp.o.d"
  "/root/repo/src/history/postmortem.cpp" "src/history/CMakeFiles/histpc_history.dir/postmortem.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/postmortem.cpp.o.d"
  "/root/repo/src/history/report.cpp" "src/history/CMakeFiles/histpc_history.dir/report.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/report.cpp.o.d"
  "/root/repo/src/history/store.cpp" "src/history/CMakeFiles/histpc_history.dir/store.cpp.o" "gcc" "src/history/CMakeFiles/histpc_history.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/pc/CMakeFiles/histpc_pc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metrics/CMakeFiles/histpc_metrics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/instr/CMakeFiles/histpc_instr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simmpi/CMakeFiles/histpc_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/resources/CMakeFiles/histpc_resources.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
