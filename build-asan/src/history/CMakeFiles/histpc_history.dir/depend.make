# Empty dependencies file for histpc_history.
# This may be replaced when dependencies are built.
