# Empty dependencies file for histpc.
# This may be replaced when dependencies are built.
