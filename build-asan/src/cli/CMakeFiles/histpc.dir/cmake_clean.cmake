file(REMOVE_RECURSE
  "CMakeFiles/histpc.dir/main.cpp.o"
  "CMakeFiles/histpc.dir/main.cpp.o.d"
  "histpc"
  "histpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
