file(REMOVE_RECURSE
  "libhistpc_cli.a"
)
