file(REMOVE_RECURSE
  "CMakeFiles/histpc_cli.dir/args.cpp.o"
  "CMakeFiles/histpc_cli.dir/args.cpp.o.d"
  "CMakeFiles/histpc_cli.dir/commands.cpp.o"
  "CMakeFiles/histpc_cli.dir/commands.cpp.o.d"
  "libhistpc_cli.a"
  "libhistpc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
