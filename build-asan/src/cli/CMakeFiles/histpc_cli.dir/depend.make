# Empty dependencies file for histpc_cli.
# This may be replaced when dependencies are built.
