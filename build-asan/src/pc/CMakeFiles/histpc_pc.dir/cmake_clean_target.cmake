file(REMOVE_RECURSE
  "libhistpc_pc.a"
)
