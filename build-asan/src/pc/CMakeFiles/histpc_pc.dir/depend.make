# Empty dependencies file for histpc_pc.
# This may be replaced when dependencies are built.
