file(REMOVE_RECURSE
  "CMakeFiles/histpc_pc.dir/consultant.cpp.o"
  "CMakeFiles/histpc_pc.dir/consultant.cpp.o.d"
  "CMakeFiles/histpc_pc.dir/directives.cpp.o"
  "CMakeFiles/histpc_pc.dir/directives.cpp.o.d"
  "CMakeFiles/histpc_pc.dir/hypothesis.cpp.o"
  "CMakeFiles/histpc_pc.dir/hypothesis.cpp.o.d"
  "CMakeFiles/histpc_pc.dir/shg.cpp.o"
  "CMakeFiles/histpc_pc.dir/shg.cpp.o.d"
  "libhistpc_pc.a"
  "libhistpc_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histpc_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
