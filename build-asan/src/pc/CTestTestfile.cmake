# CMake generated Testfile for 
# Source directory: /root/repo/src/pc
# Build directory: /root/repo/build-asan/src/pc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
