file(REMOVE_RECURSE
  "CMakeFiles/postmortem_import.dir/postmortem_import.cpp.o"
  "CMakeFiles/postmortem_import.dir/postmortem_import.cpp.o.d"
  "postmortem_import"
  "postmortem_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postmortem_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
