# Empty compiler generated dependencies file for postmortem_import.
# This may be replaced when dependencies are built.
