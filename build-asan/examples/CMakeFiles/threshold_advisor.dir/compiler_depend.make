# Empty compiler generated dependencies file for threshold_advisor.
# This may be replaced when dependencies are built.
