file(REMOVE_RECURSE
  "CMakeFiles/threshold_advisor.dir/threshold_advisor.cpp.o"
  "CMakeFiles/threshold_advisor.dir/threshold_advisor.cpp.o.d"
  "threshold_advisor"
  "threshold_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
