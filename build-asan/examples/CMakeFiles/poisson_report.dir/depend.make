# Empty dependencies file for poisson_report.
# This may be replaced when dependencies are built.
