file(REMOVE_RECURSE
  "CMakeFiles/poisson_report.dir/poisson_report.cpp.o"
  "CMakeFiles/poisson_report.dir/poisson_report.cpp.o.d"
  "poisson_report"
  "poisson_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
