# Empty compiler generated dependencies file for tuning_cycle.
# This may be replaced when dependencies are built.
