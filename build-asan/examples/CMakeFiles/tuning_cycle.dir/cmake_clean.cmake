file(REMOVE_RECURSE
  "CMakeFiles/tuning_cycle.dir/tuning_cycle.cpp.o"
  "CMakeFiles/tuning_cycle.dir/tuning_cycle.cpp.o.d"
  "tuning_cycle"
  "tuning_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
