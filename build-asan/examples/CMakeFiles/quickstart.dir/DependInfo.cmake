
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/histpc_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/history/CMakeFiles/histpc_history.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/apps/CMakeFiles/histpc_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pc/CMakeFiles/histpc_pc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/instr/CMakeFiles/histpc_instr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metrics/CMakeFiles/histpc_metrics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simmpi/CMakeFiles/histpc_simmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/resources/CMakeFiles/histpc_resources.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/histpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
