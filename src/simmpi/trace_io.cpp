#include "simmpi/trace_io.h"

#include <stdexcept>

namespace histpc::simmpi {

using util::Json;
using util::JsonArray;

Json trace_to_json(const ExecutionTrace& trace) {
  Json j = Json::object();
  j["schema"] = "histpc-trace-v1";
  j["duration"] = trace.duration;

  Json machine = Json::object();
  Json nodes = Json::array();
  for (std::size_t i = 0; i < trace.machine.node_names.size(); ++i) {
    Json n = Json::object();
    n["name"] = trace.machine.node_names[i];
    n["speed"] = trace.machine.node_speeds[i];
    nodes.push_back(std::move(n));
  }
  machine["nodes"] = std::move(nodes);
  Json ranks_meta = Json::array();
  for (std::size_t r = 0; r < trace.machine.rank_to_node.size(); ++r) {
    Json m = Json::object();
    m["process"] = trace.machine.process_names[r];
    m["node"] = trace.machine.rank_to_node[r];
    ranks_meta.push_back(std::move(m));
  }
  machine["ranks"] = std::move(ranks_meta);
  j["machine"] = std::move(machine);

  Json funcs = Json::array();
  for (const auto& f : trace.functions) {
    Json e = Json::object();
    e["function"] = f.function;
    e["module"] = f.module;
    funcs.push_back(std::move(e));
  }
  j["functions"] = std::move(funcs);

  Json syncs = Json::array();
  for (const auto& s : trace.sync_objects) syncs.push_back(s);
  j["sync_objects"] = std::move(syncs);

  Json ranks = Json::array();
  for (const auto& rt : trace.ranks) {
    Json r = Json::object();
    r["end_time"] = rt.end_time;
    JsonArray flat;
    flat.reserve(rt.intervals.size() * 5);
    for (const auto& iv : rt.intervals) {
      flat.emplace_back(iv.t0);
      flat.emplace_back(iv.t1);
      flat.emplace_back(static_cast<int>(iv.state));
      flat.emplace_back(static_cast<int>(iv.func));
      flat.emplace_back(static_cast<int>(iv.sync_object));
    }
    r["intervals"] = Json(std::move(flat));
    ranks.push_back(std::move(r));
  }
  j["ranks"] = std::move(ranks);
  return j;
}

ExecutionTrace trace_from_json(const Json& j) {
  if (j.get_or("schema", std::string()) != "histpc-trace-v1")
    throw util::JsonError("trace: unknown or missing schema tag");
  ExecutionTrace trace;
  trace.duration = j.at("duration").as_double();

  const Json& machine = j.at("machine");
  for (const auto& n : machine.at("nodes").as_array()) {
    trace.machine.node_names.push_back(n.at("name").as_string());
    trace.machine.node_speeds.push_back(n.at("speed").as_double());
  }
  for (const auto& m : machine.at("ranks").as_array()) {
    trace.machine.process_names.push_back(m.at("process").as_string());
    trace.machine.rank_to_node.push_back(static_cast<int>(m.at("node").as_int()));
  }
  trace.machine.validate();

  for (const auto& f : j.at("functions").as_array())
    trace.functions.push_back({f.at("function").as_string(), f.at("module").as_string()});
  for (const auto& s : j.at("sync_objects").as_array())
    trace.sync_objects.push_back(s.as_string());

  for (const auto& r : j.at("ranks").as_array()) {
    RankTrace rt;
    rt.end_time = r.at("end_time").as_double();
    const auto& flat = r.at("intervals").as_array();
    if (flat.size() % 5 != 0)
      throw util::JsonError("trace: interval array length not a multiple of 5");
    rt.intervals.reserve(flat.size() / 5);
    for (std::size_t i = 0; i < flat.size(); i += 5) {
      Interval iv;
      iv.t0 = flat[i].as_double();
      iv.t1 = flat[i + 1].as_double();
      const int state = static_cast<int>(flat[i + 2].as_int());
      if (state < 0 || state > 2) throw util::JsonError("trace: bad interval state");
      iv.state = static_cast<IntervalState>(state);
      iv.func = static_cast<FuncId>(flat[i + 3].as_int());
      iv.sync_object = static_cast<SyncObjectId>(flat[i + 4].as_int());
      rt.intervals.push_back(iv);
    }
    trace.ranks.push_back(std::move(rt));
  }
  trace.validate();
  return trace;
}

void save_trace(const ExecutionTrace& trace, const std::string& path) {
  util::write_file(path, trace_to_json(trace).dump());
}

ExecutionTrace load_trace(const std::string& path) {
  return trace_from_json(Json::parse(util::read_file(path)));
}

}  // namespace histpc::simmpi
