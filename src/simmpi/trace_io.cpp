#include "simmpi/trace_io.h"

#include <stdexcept>

namespace histpc::simmpi {

using util::Json;
using util::JsonArray;

namespace {

constexpr const char* kTraceSchema = "histpc-trace-v1";

/// Parse-error style matches Focus::parse: name the offending field (with
/// its array index) and the schema, so a hand-edited or foreign document
/// fails with an actionable message.
[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw util::JsonError("trace (" + std::string(kTraceSchema) + "): " + where + ": " + what);
}

/// Run `fn`, prefixing any JsonError it throws with the field context.
template <typename Fn>
decltype(auto) in_field(const std::string& where, Fn&& fn) {
  try {
    return fn();
  } catch (const util::JsonError& e) {
    fail(where, e.what());
  }
}

}  // namespace

Json trace_to_json(const ExecutionTrace& trace) {
  Json j = Json::object();
  j["schema"] = "histpc-trace-v1";
  j["duration"] = trace.duration;

  Json machine = Json::object();
  Json nodes = Json::array();
  for (std::size_t i = 0; i < trace.machine.node_names.size(); ++i) {
    Json n = Json::object();
    n["name"] = trace.machine.node_names[i];
    n["speed"] = trace.machine.node_speeds[i];
    nodes.push_back(std::move(n));
  }
  machine["nodes"] = std::move(nodes);
  Json ranks_meta = Json::array();
  for (std::size_t r = 0; r < trace.machine.rank_to_node.size(); ++r) {
    Json m = Json::object();
    m["process"] = trace.machine.process_names[r];
    m["node"] = trace.machine.rank_to_node[r];
    ranks_meta.push_back(std::move(m));
  }
  machine["ranks"] = std::move(ranks_meta);
  j["machine"] = std::move(machine);

  Json funcs = Json::array();
  for (const auto& f : trace.functions) {
    Json e = Json::object();
    e["function"] = f.function;
    e["module"] = f.module;
    funcs.push_back(std::move(e));
  }
  j["functions"] = std::move(funcs);

  Json syncs = Json::array();
  for (const auto& s : trace.sync_objects) syncs.push_back(s);
  j["sync_objects"] = std::move(syncs);

  Json ranks = Json::array();
  for (const auto& rt : trace.ranks) {
    Json r = Json::object();
    r["end_time"] = rt.end_time;
    JsonArray flat;
    flat.reserve(rt.intervals.size() * 5);
    for (const auto& iv : rt.intervals) {
      flat.emplace_back(iv.t0);
      flat.emplace_back(iv.t1);
      flat.emplace_back(static_cast<int>(iv.state));
      flat.emplace_back(static_cast<int>(iv.func));
      flat.emplace_back(static_cast<int>(iv.sync_object));
    }
    r["intervals"] = Json(std::move(flat));
    ranks.push_back(std::move(r));
  }
  j["ranks"] = std::move(ranks);
  return j;
}

ExecutionTrace trace_from_json(const Json& j) {
  const std::string schema = j.get_or("schema", std::string());
  if (schema != kTraceSchema)
    fail("schema", schema.empty() ? std::string("missing schema tag")
                                  : "unknown schema '" + schema + "'");
  ExecutionTrace trace;
  trace.duration = in_field("duration", [&] { return j.at("duration").as_double(); });

  const Json& machine = in_field("machine", [&]() -> const Json& { return j.at("machine"); });
  {
    const auto& nodes =
        in_field("machine.nodes", [&]() -> const JsonArray& { return machine.at("nodes").as_array(); });
    for (std::size_t i = 0; i < nodes.size(); ++i)
      in_field("machine.nodes[" + std::to_string(i) + "]", [&] {
        trace.machine.node_names.push_back(nodes[i].at("name").as_string());
        trace.machine.node_speeds.push_back(nodes[i].at("speed").as_double());
      });
    const auto& ranks_meta =
        in_field("machine.ranks", [&]() -> const JsonArray& { return machine.at("ranks").as_array(); });
    for (std::size_t i = 0; i < ranks_meta.size(); ++i)
      in_field("machine.ranks[" + std::to_string(i) + "]", [&] {
        trace.machine.process_names.push_back(ranks_meta[i].at("process").as_string());
        trace.machine.rank_to_node.push_back(static_cast<int>(ranks_meta[i].at("node").as_int()));
      });
  }
  trace.machine.validate();

  {
    const auto& funcs =
        in_field("functions", [&]() -> const JsonArray& { return j.at("functions").as_array(); });
    for (std::size_t i = 0; i < funcs.size(); ++i)
      in_field("functions[" + std::to_string(i) + "]", [&] {
        trace.functions.push_back(
            {funcs[i].at("function").as_string(), funcs[i].at("module").as_string()});
      });
    const auto& syncs = in_field(
        "sync_objects", [&]() -> const JsonArray& { return j.at("sync_objects").as_array(); });
    for (std::size_t i = 0; i < syncs.size(); ++i)
      in_field("sync_objects[" + std::to_string(i) + "]",
               [&] { trace.sync_objects.push_back(syncs[i].as_string()); });
  }

  const auto& ranks =
      in_field("ranks", [&]() -> const JsonArray& { return j.at("ranks").as_array(); });
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const std::string where = "ranks[" + std::to_string(r) + "]";
    RankTrace rt;
    rt.end_time = in_field(where + ".end_time", [&] { return ranks[r].at("end_time").as_double(); });
    const auto& flat = in_field(
        where + ".intervals", [&]() -> const JsonArray& { return ranks[r].at("intervals").as_array(); });
    if (flat.size() % 5 != 0)
      fail(where + ".intervals", "length " + std::to_string(flat.size()) +
                                     " is not a multiple of 5 [t0, t1, state, func, sync]");
    rt.intervals.reserve(flat.size() / 5);
    for (std::size_t i = 0; i < flat.size(); i += 5) {
      const std::string iv_where = where + ".intervals[" + std::to_string(i / 5) + "]";
      in_field(iv_where, [&] {
        Interval iv;
        iv.t0 = flat[i].as_double();
        iv.t1 = flat[i + 1].as_double();
        const int state = static_cast<int>(flat[i + 2].as_int());
        // Plain JsonError: the in_field wrapper prefixes the context.
        if (state < 0 || state > 2)
          throw util::JsonError("bad state " + std::to_string(state) + " (expected 0..2)");
        iv.state = static_cast<IntervalState>(state);
        iv.func = static_cast<FuncId>(flat[i + 3].as_int());
        iv.sync_object = static_cast<SyncObjectId>(flat[i + 4].as_int());
        rt.intervals.push_back(iv);
      });
    }
    trace.ranks.push_back(std::move(rt));
  }
  trace.validate();
  return trace;
}

void save_trace(const ExecutionTrace& trace, const std::string& path) {
  util::write_file(path, trace_to_json(trace).dump());
}

ExecutionTrace load_trace(const std::string& path) {
  return trace_from_json(Json::parse(util::read_file(path)));
}

}  // namespace histpc::simmpi
