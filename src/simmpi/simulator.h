// Deterministic discrete-event simulation of recorded SPMD programs.
//
// Messaging model (LogP-flavored):
//  * eager sends (bytes <= eager_limit) complete locally at post time; the
//    message arrives at the destination latency + bytes/bandwidth later.
//  * rendezvous sends block until the matching receive is posted; the
//    transfer then runs from max(post times) and both sides complete at its
//    end. A blocked rendezvous sender accrues synchronization wait time.
//  * receives complete at max(post time, message arrival); the gap is
//    synchronization wait attributed to the message's tag resource.
//  * collectives (barrier / allreduce) release all ranks at the latest
//    arrival plus a log2(N) tree cost; the gap from each rank's arrival is
//    synchronization wait on the collective's sync object.
//
// Matching is FIFO per (src, dst, tag, comm) channel, which — together with
// per-rank sequential execution — preserves MPI's non-overtaking rule.
// Wildcard receives are not supported (the reproduced applications never
// use them), keeping matching fully deterministic.
#pragma once

#include <cstddef>

#include "simmpi/program.h"
#include "simmpi/trace.h"
#include "telemetry/tracer.h"

namespace histpc::simmpi {

struct NetworkModel {
  double latency = 40e-6;              ///< per-message latency (seconds)
  double bytes_per_second = 90.0e6;    ///< point-to-point bandwidth
  std::size_t eager_limit = 16 * 1024; ///< eager/rendezvous protocol switch
  /// Local CPU cost of posting a send/receive. Zero by default so traces
  /// stay compact; applications model their own messaging overhead as
  /// explicit compute.
  double post_overhead = 0.0;

  double transfer_time(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) / bytes_per_second;
  }
  /// Tree-structured collective cost for `nranks` participants.
  double collective_cost(int nranks, std::size_t bytes) const;
};

class Simulator {
 public:
  explicit Simulator(NetworkModel net = {}) : net_(net) {}

  const NetworkModel& network() const { return net_; }

  /// Execute `program` to completion. Throws std::runtime_error on
  /// deadlock (with a per-rank diagnostic) and std::logic_error on
  /// malformed programs (collective kind mismatch, double wait, ...).
  ExecutionTrace run(const SimProgram& program) const { return run(program, nullptr); }

  /// As above, with telemetry: a "simulate" phase spanning the virtual
  /// execution, simulation volume counters (ranks, ops, intervals), and a
  /// wall-clock "sim.run" timer in the tracer's registry.
  ExecutionTrace run(const SimProgram& program, telemetry::Tracer* tracer) const;

 private:
  NetworkModel net_;
};

}  // namespace histpc::simmpi
