#include "simmpi/program.h"

#include <cstdio>
#include <stdexcept>

namespace histpc::simmpi {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::Compute: return "Compute";
    case OpKind::Io: return "Io";
    case OpKind::Send: return "Send";
    case OpKind::Recv: return "Recv";
    case OpKind::Isend: return "Isend";
    case OpKind::Irecv: return "Irecv";
    case OpKind::Wait: return "Wait";
    case OpKind::Waitall: return "Waitall";
    case OpKind::Barrier: return "Barrier";
    case OpKind::Allreduce: return "Allreduce";
    case OpKind::Bcast: return "Bcast";
    case OpKind::Gather: return "Gather";
    case OpKind::Alltoall: return "Alltoall";
    case OpKind::FuncEnter: return "FuncEnter";
    case OpKind::FuncExit: return "FuncExit";
  }
  return "?";
}

MachineSpec MachineSpec::one_to_one(int nranks, std::string_view node_prefix,
                                    std::string_view process_prefix, int node_base) {
  if (nranks <= 0) throw std::invalid_argument("one_to_one: nranks must be positive");
  MachineSpec m;
  for (int i = 0; i < nranks; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%02d", std::string(node_prefix).c_str(), node_base + i);
    m.node_names.emplace_back(buf);
    m.node_speeds.push_back(1.0);
    m.rank_to_node.push_back(i);
    m.process_names.push_back(std::string(process_prefix) + ":" + std::to_string(i + 1));
  }
  return m;
}

void MachineSpec::validate() const {
  if (node_names.empty()) throw std::invalid_argument("MachineSpec: no nodes");
  if (node_names.size() != node_speeds.size())
    throw std::invalid_argument("MachineSpec: node_names/node_speeds size mismatch");
  if (rank_to_node.size() != process_names.size())
    throw std::invalid_argument("MachineSpec: rank_to_node/process_names size mismatch");
  if (rank_to_node.empty()) throw std::invalid_argument("MachineSpec: no ranks");
  for (int node : rank_to_node)
    if (node < 0 || node >= num_nodes())
      throw std::invalid_argument("MachineSpec: rank placed on nonexistent node");
  for (double s : node_speeds)
    if (!(s > 0.0)) throw std::invalid_argument("MachineSpec: node speed must be positive");
}

void Recorder::compute(double seconds) {
  if (seconds < 0) throw std::invalid_argument("compute: negative duration");
  Op op;
  op.kind = OpKind::Compute;
  op.seconds = builder_.jittered(seconds);
  out_.ops.push_back(op);
}

void Recorder::io(double seconds) {
  if (seconds < 0) throw std::invalid_argument("io: negative duration");
  Op op;
  op.kind = OpKind::Io;
  op.seconds = seconds;
  out_.ops.push_back(op);
}

void Recorder::check_peer(int peer, bool allow_any) const {
  if (allow_any && peer == kAnySource) return;
  if (peer < 0 || peer >= size_)
    throw std::invalid_argument("peer rank " + std::to_string(peer) + " out of range [0," +
                                std::to_string(size_) + ")");
  if (peer == rank_) throw std::invalid_argument("self-messaging is not supported");
}

void Recorder::send(int dest, int tag, std::size_t bytes, int comm) {
  check_peer(dest);
  Op op;
  op.kind = OpKind::Send;
  op.peer = dest;
  op.tag = tag;
  op.comm = comm;
  op.bytes = bytes;
  out_.ops.push_back(op);
}

void Recorder::recv(int src, int tag, int comm) {
  check_peer(src, /*allow_any=*/true);
  Op op;
  op.kind = OpKind::Recv;
  op.peer = src;
  op.tag = tag;
  op.comm = comm;
  out_.ops.push_back(op);
}

RequestId Recorder::isend(int dest, int tag, std::size_t bytes, int comm) {
  check_peer(dest);
  Op op;
  op.kind = OpKind::Isend;
  op.peer = dest;
  op.tag = tag;
  op.comm = comm;
  op.bytes = bytes;
  op.request = next_request_++;
  out_.ops.push_back(op);
  return op.request;
}

RequestId Recorder::irecv(int src, int tag, int comm) {
  check_peer(src, /*allow_any=*/true);
  Op op;
  op.kind = OpKind::Irecv;
  op.peer = src;
  op.tag = tag;
  op.comm = comm;
  op.request = next_request_++;
  out_.ops.push_back(op);
  return op.request;
}

void Recorder::wait(RequestId request) {
  if (request < 0 || request >= next_request_)
    throw std::invalid_argument("wait: unknown request " + std::to_string(request));
  Op op;
  op.kind = OpKind::Wait;
  op.request = request;
  out_.ops.push_back(op);
}

void Recorder::waitall() {
  Op op;
  op.kind = OpKind::Waitall;
  out_.ops.push_back(op);
}

void Recorder::barrier() {
  Op op;
  op.kind = OpKind::Barrier;
  out_.ops.push_back(op);
}

void Recorder::allreduce(std::size_t bytes) {
  Op op;
  op.kind = OpKind::Allreduce;
  op.bytes = bytes;
  out_.ops.push_back(op);
}

void Recorder::bcast(std::size_t bytes) {
  Op op;
  op.kind = OpKind::Bcast;
  op.bytes = bytes;
  out_.ops.push_back(op);
}

void Recorder::gather(std::size_t bytes) {
  Op op;
  op.kind = OpKind::Gather;
  op.bytes = bytes;
  out_.ops.push_back(op);
}

void Recorder::alltoall(std::size_t bytes) {
  Op op;
  op.kind = OpKind::Alltoall;
  op.bytes = bytes;
  out_.ops.push_back(op);
}

void Recorder::func_enter(std::string_view function, std::string_view module) {
  Op op;
  op.kind = OpKind::FuncEnter;
  op.func = builder_.intern_function(function, module);
  out_.ops.push_back(op);
  ++open_funcs_;
}

void Recorder::func_exit() {
  if (open_funcs_ <= 0) throw std::logic_error("func_exit without matching func_enter");
  Op op;
  op.kind = OpKind::FuncExit;
  out_.ops.push_back(op);
  --open_funcs_;
}

ProgramBuilder::ProgramBuilder(MachineSpec machine, RecordingOptions options)
    : machine_(std::move(machine)), options_(options), rng_(options.seed) {
  machine_.validate();
  if (options_.compute_jitter < 0 || options_.compute_jitter > 0.5)
    throw std::invalid_argument("compute_jitter must be in [0, 0.5]");
  procs_.resize(machine_.rank_to_node.size());
}

double ProgramBuilder::jittered(double seconds) {
  if (options_.compute_jitter <= 0.0 || seconds <= 0.0) return seconds;
  // Multiplicative noise, floored so a duration can never invert.
  const double factor = 1.0 + options_.compute_jitter * rng_.normal();
  return seconds * std::max(0.1, factor);
}

void ProgramBuilder::record(const std::function<void(Recorder&)>& body) {
  if (built_) throw std::logic_error("ProgramBuilder reused after build()");
  for (int r = 0; r < static_cast<int>(procs_.size()); ++r) {
    procs_[r].ops.clear();
    Recorder rec(*this, r, static_cast<int>(procs_.size()), procs_[r]);
    body(rec);
    if (rec.open_funcs_ != 0)
      throw std::logic_error("rank " + std::to_string(r) + " left " +
                             std::to_string(rec.open_funcs_) + " function scope(s) open");
  }
}

FuncId ProgramBuilder::intern_function(std::string_view function, std::string_view module) {
  auto key = std::make_pair(std::string(function), std::string(module));
  if (auto it = func_index_.find(key); it != func_index_.end()) return it->second;
  FuncId id = static_cast<FuncId>(functions_.size());
  functions_.push_back(FuncInfo{key.first, key.second});
  func_index_.emplace(std::move(key), id);
  return id;
}

SimProgram ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder::build called twice");
  built_ = true;
  SimProgram p;
  p.machine = std::move(machine_);
  p.procs = std::move(procs_);
  p.functions = std::move(functions_);
  return p;
}

}  // namespace histpc::simmpi
