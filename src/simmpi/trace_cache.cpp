#include "simmpi/trace_cache.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "simmpi/trace_snapshot.h"
#include "util/json.h"  // read_file
#include "util/log.h"

namespace histpc::simmpi {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSnapshotExtension = ".htb";

/// Cache-file key header: magic + the full TraceKey, ahead of the
/// snapshot bytes. Distinct from the snapshot's own magic so a raw
/// snapshot dropped into the cache directory is recognized as unverified.
constexpr char kKeyMagic[8] = {'H', 'P', 'C', 'C', 'K', 'F', '1', '\n'};
constexpr std::size_t kKeyHeaderSize = sizeof(kKeyMagic) + 2 * sizeof(std::uint64_t);

std::uint64_t read_le_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void append_le_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

/// Incremental FNV-1a 64. Every value is folded in as canonical
/// little-endian bytes, so the digest is platform-stable.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
    bytes(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<std::size_t>(i)] = digits[v & 0xF];
  return s;
}

/// Unique-per-call temp name next to `path`; concurrent writers (parallel
/// sessions sharing one cache directory) never collide, and the final
/// rename is atomic either way.
std::string temp_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

namespace {

std::uint64_t hash_trace_inputs(const SimProgram& program, const NetworkModel& net,
                                const char* seed) {
  Fnv1a h;
  h.str(seed);

  h.f64(net.latency);
  h.f64(net.bytes_per_second);
  h.u64(net.eager_limit);
  h.f64(net.post_overhead);

  const MachineSpec& m = program.machine;
  h.u64(m.node_names.size());
  for (const std::string& n : m.node_names) h.str(n);
  for (double s : m.node_speeds) h.f64(s);
  h.u64(m.rank_to_node.size());
  for (int r : m.rank_to_node) h.i64(r);
  for (const std::string& p : m.process_names) h.str(p);

  h.u64(program.functions.size());
  for (const FuncInfo& f : program.functions) {
    h.str(f.function);
    h.str(f.module);
  }

  h.u64(program.procs.size());
  for (const ProcessProgram& proc : program.procs) {
    h.u64(proc.ops.size());
    for (const Op& op : proc.ops) {
      h.u8(static_cast<std::uint8_t>(op.kind));
      h.f64(op.seconds);
      h.i64(op.peer);
      h.i64(op.tag);
      h.i64(op.comm);
      h.u64(op.bytes);
      h.i64(op.request);
      h.i64(op.func);
    }
  }
  return h.digest();
}

}  // namespace

TraceKey trace_content_key(const SimProgram& program, const NetworkModel& net) {
  // Two independent digests of the same serialization: the primary keeps
  // its pre-TraceKey seed so cache file names stay stable across the
  // format change; the check digest uses a different seed, so agreeing on
  // both by accident requires a 128-bit collision.
  return {hash_trace_inputs(program, net, "histpc-trace-key-v1"),
          hash_trace_inputs(program, net, "histpc-trace-check-v1")};
}

TraceCache::TraceCache(TraceCacheConfig config, telemetry::Registry* registry)
    : config_(std::move(config)), registry_(registry) {}

void TraceCache::count(const char* name) const {
  if (registry_) registry_->add(name, 1);
}

std::string TraceCache::path_for(const TraceKey& key) const {
  return (fs::path(config_.directory) / (hex16(key.primary) + kSnapshotExtension)).string();
}

std::optional<ExecutionTrace> TraceCache::load(const TraceKey& key, TraceColumns* columns) const {
  const std::string path = path_for(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    count("trace_cache.miss");
    return std::nullopt;
  }
  try {
    // Verify the stored key material before decoding: the filename only
    // carries 64 of the key's 128 bits, and files can be renamed or
    // copied. A mismatch is a miss (the caller re-simulates and store()
    // overwrites the file), not corruption — the snapshot may be a
    // perfectly valid trace of some *other* configuration.
    std::string header(kKeyHeaderSize, '\0');
    {
      std::ifstream in(path, std::ios::binary);
      if (!in.read(header.data(), static_cast<std::streamsize>(header.size())))
        throw SnapshotError("snapshot shorter than its key header");
    }
    if (std::memcmp(header.data(), kKeyMagic, sizeof(kKeyMagic)) != 0)
      throw SnapshotError("bad cache key header magic");
    const auto* p = reinterpret_cast<const unsigned char*>(header.data() + sizeof(kKeyMagic));
    const TraceKey stored{read_le_u64(p), read_le_u64(p + 8)};
    if (!(stored == key)) {
      count("trace_cache.key_mismatch");
      count("trace_cache.miss");
      HISTPC_LOG(Warn) << "trace cache key mismatch for " << path
                       << " (stored " << hex16(stored.primary) << "/" << hex16(stored.check)
                       << ", wanted " << hex16(key.primary) << "/" << hex16(key.check)
                       << ") — treating as miss";
      return std::nullopt;
    }
    ExecutionTrace trace = load_trace_snapshot(path, columns, kKeyHeaderSize);
    count("trace_cache.hit");
    // Touch for LRU; best-effort (a failed touch only skews eviction).
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return trace;
  } catch (const std::exception& e) {
    // Same hardening rule as the experiment store: a file that fails
    // validation is moved aside so it cannot poison future loads, and the
    // caller re-simulates.
    count("trace_cache.quarantined");
    count("trace_cache.miss");
    const std::string quarantined = path + ".quarantined";
    fs::rename(path, quarantined, ec);
    if (ec) fs::remove(path, ec);
    HISTPC_LOG(Warn) << "quarantining corrupt trace snapshot " << path << ": " << e.what();
    return std::nullopt;
  }
}

void TraceCache::store(const TraceKey& key, const ExecutionTrace& trace) const {
  const std::string path = path_for(key);
  try {
    fs::create_directories(config_.directory);
    std::string bytes;
    bytes.append(kKeyMagic, sizeof(kKeyMagic));
    append_le_u64(bytes, key.primary);
    append_le_u64(bytes, key.check);
    bytes += encode_trace_snapshot(trace);
    const std::string tmp = temp_path_for(path);
    util::write_file(tmp, bytes);
    fs::rename(tmp, path);
    count("trace_cache.store");
    evict_over_cap(path);
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "failed to store trace snapshot " << path << ": " << e.what();
  }
}

void TraceCache::evict_over_cap(const std::string& just_written) const {
  struct Entry {
    fs::path path;
    std::uint64_t size;
    fs::file_time_type mtime;
  };
  std::error_code ec;
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  for (const auto& de : fs::directory_iterator(config_.directory, ec)) {
    if (de.path().extension() != kSnapshotExtension) continue;
    Entry e{de.path(), de.file_size(ec), de.last_write_time(ec)};
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= config_.max_bytes) return;
  // Oldest first; equal mtimes (coarse filesystem clocks) break by path so
  // concurrent evictors agree on the victim order.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  for (const Entry& e : entries) {
    if (total <= config_.max_bytes) break;
    if (e.path == fs::path(just_written)) continue;  // never evict the newest write
    if (fs::remove(e.path, ec)) {
      total -= e.size;
      count("trace_cache.evicted");
      HISTPC_LOG(Debug) << "evicted trace snapshot " << e.path.string() << " (" << e.size
                        << " bytes) to stay under cache cap";
    }
  }
}

}  // namespace histpc::simmpi
