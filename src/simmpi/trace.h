// Execution traces: the observable output of a simulated run.
//
// Each rank's timeline is a sequence of non-overlapping intervals tagged
// with a state (CPU / synchronization wait / I/O wait), the innermost
// active function, and — for waits — the synchronization object involved.
// The instrumentation layer samples these intervals; nothing downstream of
// the trace knows it came from a simulator rather than a real machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simmpi/ops.h"
#include "simmpi/program.h"

namespace histpc::simmpi {

enum class IntervalState : std::uint8_t {
  Cpu,       ///< computing
  SyncWait,  ///< blocked in send/recv/wait/collective
  IoWait,    ///< blocked on I/O
};

/// Index into ExecutionTrace::sync_objects; kNoSyncObject for CPU/IO.
using SyncObjectId = std::int32_t;
inline constexpr SyncObjectId kNoSyncObject = -1;

struct Interval {
  double t0 = 0.0;
  double t1 = 0.0;
  IntervalState state = IntervalState::Cpu;
  FuncId func = kNoFunc;
  SyncObjectId sync_object = kNoSyncObject;

  double duration() const { return t1 - t0; }
};

struct RankTrace {
  /// Sorted by time and non-overlapping: both t0 and t1 are non-decreasing
  /// across the vector. The metric layer's interval index binary-searches
  /// these columns; validate() enforces the invariant.
  std::vector<Interval> intervals;
  double end_time = 0.0;
};

/// Columnar (SoA) mirror of one rank's interval timeline. The binary
/// snapshot format (trace_snapshot.h) stores traces in exactly this
/// layout, and the metric layer's IntervalIndex can adopt the columns
/// wholesale on a cache hit instead of re-deriving them interval by
/// interval.
struct RankColumns {
  std::vector<double> t0, t1;
  std::vector<std::uint8_t> state;  ///< IntervalState values
  std::vector<FuncId> func;
  std::vector<SyncObjectId> sync;

  std::size_t size() const { return t0.size(); }
};

struct TraceColumns {
  std::vector<RankColumns> ranks;

  /// True when the columns mirror `trace` shape-for-shape (same rank
  /// count, same per-rank interval counts, consistent column lengths).
  /// Consumers adopting the columns must check this first.
  bool matches(const struct ExecutionTrace& trace) const;
};

struct ExecutionTrace {
  MachineSpec machine;
  std::vector<FuncInfo> functions;
  /// Sync object names relative to the SyncObject hierarchy root, e.g.
  /// "Message/3:0" or "Collective/Barrier".
  std::vector<std::string> sync_objects;
  std::vector<RankTrace> ranks;
  /// Wall-clock duration: max over rank end times.
  double duration = 0.0;

  int num_ranks() const { return static_cast<int>(ranks.size()); }

  /// Sum of interval counts across ranks (sizing hook for the metric
  /// layer's columnar index).
  std::size_t total_intervals() const;

  /// Total time each rank spent in each state; index [rank][state].
  struct StateTotals {
    double cpu = 0.0;
    double sync_wait = 0.0;
    double io_wait = 0.0;
    double total() const { return cpu + sync_wait + io_wait; }
  };
  StateTotals totals_for_rank(int rank) const;
  StateTotals totals() const;

  /// Internal-consistency checks (monotone non-overlapping intervals,
  /// valid function/sync ids). Throws std::logic_error on violation;
  /// exercised heavily by property tests.
  void validate() const;

  /// Human-readable per-rank state summary (debugging aid).
  std::string summary() const;
};

}  // namespace histpc::simmpi
