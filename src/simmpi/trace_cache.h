// TraceCache: content-addressed store of binary trace snapshots.
//
// The simulator is deterministic: a given (recorded program, network
// model) pair — the machine spec travels inside the program — always
// produces the same ExecutionTrace. The cache exploits that by keying
// snapshots on a stable FNV-1a hash of those inputs, so a session that
// would re-simulate an already-seen configuration instead reloads the
// trace at memory-bandwidth speed (the `session.trace_load` timer vs the
// `session.simulate` one).
//
// Robustness mirrors the experiment store's hardening rules:
//  * writes are atomic (unique temp file in the cache directory, then
//    rename), so readers never observe a partial snapshot;
//  * loads validate strictly (magic, version, CRC, field ranges); any
//    failure quarantines the file (renamed to "<name>.quarantined") with a
//    warning and reports a miss — the caller falls back to simulating, so
//    a corrupt cache can cost time but never correctness;
//  * the directory is capped by total snapshot bytes with LRU eviction
//    (least-recently-used by file mtime; hits touch the file).
//
// When a telemetry::Registry is attached, the cache maintains the
// `trace_cache.hit` / `trace_cache.miss` / `trace_cache.store` /
// `trace_cache.evicted` / `trace_cache.quarantined` counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "simmpi/trace.h"
#include "telemetry/registry.h"

namespace histpc::simmpi {

/// Stable 64-bit content hash of everything that determines a simulated
/// trace: the network model, the machine spec, the function table, and
/// every recorded op of every rank. FNV-1a over a canonical little-endian
/// byte serialization — the same inputs hash identically across runs,
/// platforms, and processes.
std::uint64_t trace_content_key(const SimProgram& program, const NetworkModel& net);

struct TraceCacheConfig {
  std::string directory;
  /// Byte-size cap on the sum of snapshot files; LRU-evicted past it.
  std::uint64_t max_bytes = 256ull << 20;
};

class TraceCache {
 public:
  explicit TraceCache(TraceCacheConfig config, telemetry::Registry* registry = nullptr);

  const TraceCacheConfig& config() const { return config_; }

  /// Snapshot path for `key`: "<dir>/<016x key>.htb".
  std::string path_for(std::uint64_t key) const;

  /// Load the snapshot for `key`. Returns the trace (and fills `columns`
  /// when non-null) on a hit; nullopt on a miss or after quarantining a
  /// file that failed validation. Never throws on corrupt input.
  std::optional<ExecutionTrace> load(std::uint64_t key, TraceColumns* columns = nullptr) const;

  /// Store a snapshot for `key` (atomic write-then-rename), then enforce
  /// the byte cap. Failures are logged and swallowed: the cache is an
  /// optimization, never a reason to fail a diagnosis.
  void store(std::uint64_t key, const ExecutionTrace& trace) const;

 private:
  void count(const char* name) const;
  void evict_over_cap(const std::string& just_written) const;

  TraceCacheConfig config_;
  telemetry::Registry* registry_;
};

}  // namespace histpc::simmpi
