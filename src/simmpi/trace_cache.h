// TraceCache: content-addressed store of binary trace snapshots.
//
// The simulator is deterministic: a given (recorded program, network
// model) pair — the machine spec travels inside the program — always
// produces the same ExecutionTrace. The cache exploits that by keying
// snapshots on a stable FNV-1a hash of those inputs (TraceKey), so a
// session that would re-simulate an already-seen configuration instead
// reloads the trace at memory-bandwidth speed (the `session.trace_load`
// timer vs the `session.simulate` one). Each cache file carries the full
// key material in a small header ("HPCCKF1\n" + primary + check digests)
// that is re-verified on every hit, so a hit is served only for the exact
// inputs that produced the snapshot.
//
// Robustness mirrors the experiment store's hardening rules:
//  * writes are atomic (unique temp file in the cache directory, then
//    rename), so readers never observe a partial snapshot;
//  * loads validate strictly (magic, version, CRC, field ranges); any
//    failure quarantines the file (renamed to "<name>.quarantined") with a
//    warning and reports a miss — the caller falls back to simulating, so
//    a corrupt cache can cost time but never correctness;
//  * the directory is capped by total snapshot bytes with LRU eviction
//    (least-recently-used by file mtime; hits touch the file).
//
// When a telemetry::Registry is attached, the cache maintains the
// `trace_cache.hit` / `trace_cache.miss` / `trace_cache.store` /
// `trace_cache.evicted` / `trace_cache.quarantined` /
// `trace_cache.key_mismatch` counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "simmpi/trace.h"
#include "telemetry/registry.h"

namespace histpc::simmpi {

/// Content key of everything that determines a simulated trace: the
/// network model, the machine spec, the function table, and every recorded
/// op of every rank. Two independent FNV-1a digests over the same
/// canonical little-endian serialization, differing only in seed: the
/// primary digest addresses the cache file, and the check digest is stored
/// inside it and re-verified on every hit, so a filename collision (or a
/// hand-renamed file) is detected instead of silently serving the wrong
/// trace. Same inputs hash identically across runs, platforms, processes.
struct TraceKey {
  std::uint64_t primary = 0;  ///< addresses the snapshot file
  std::uint64_t check = 0;    ///< verified against the file header on load

  bool operator==(const TraceKey&) const = default;
};

TraceKey trace_content_key(const SimProgram& program, const NetworkModel& net);

struct TraceCacheConfig {
  std::string directory;
  /// Byte-size cap on the sum of snapshot files; LRU-evicted past it.
  std::uint64_t max_bytes = 256ull << 20;
};

class TraceCache {
 public:
  explicit TraceCache(TraceCacheConfig config, telemetry::Registry* registry = nullptr);

  const TraceCacheConfig& config() const { return config_; }

  /// Snapshot path for `key`: "<dir>/<016x key.primary>.htb".
  std::string path_for(const TraceKey& key) const;

  /// Load the snapshot for `key`. Returns the trace (and fills `columns`
  /// when non-null) on a hit; nullopt on a miss or after quarantining a
  /// file that failed validation. A file whose stored key material does
  /// not match `key` (filename collision, renamed or pre-key-header
  /// legacy file) counts as a miss with a warning and bumps
  /// `trace_cache.key_mismatch`; the file is left for store() to
  /// overwrite. Never throws on corrupt input.
  std::optional<ExecutionTrace> load(const TraceKey& key, TraceColumns* columns = nullptr) const;

  /// Store a snapshot for `key` (atomic write-then-rename) with the full
  /// key material in the file header, then enforce the byte cap. Failures
  /// are logged and swallowed: the cache is an optimization, never a
  /// reason to fail a diagnosis.
  void store(const TraceKey& key, const ExecutionTrace& trace) const;

 private:
  void count(const char* name) const;
  void evict_over_cap(const std::string& just_written) const;

  TraceCacheConfig config_;
  telemetry::Registry* registry_;
};

}  // namespace histpc::simmpi
