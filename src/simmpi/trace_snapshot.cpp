#include "simmpi/trace_snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/cpu_features.h"
#include "util/json.h"  // read_file / write_file

namespace histpc::simmpi {

namespace {

constexpr std::size_t kHeaderSize = 12;  // magic (8) + version (4)
constexpr std::size_t kTrailerSize = 4;  // CRC32

// The payload checksum is CRC-32C (Castagnoli, reflected polynomial
// 0x82F63B78) rather than the zip/png CRC-32: it has a hardware
// instruction on x86-64 (SSE4.2), and the checksum pass over a
// multi-megabyte snapshot would otherwise dominate the warm-load path the
// trace cache exists to make cheap.

std::uint32_t crc32c_sw(const char* p, std::size_t n, std::uint32_t crc) {
  // Slice-by-8 software fallback (~1 ns/byte vs ~3 ns/byte for the naive
  // byte-at-a-time loop).
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int s = 1; s < 8; ++s) t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    return t;
  }();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    if constexpr (std::endian::native != std::endian::little) {
      // The slicing tables assume little-endian word loads.
      auto bswap = [](std::uint32_t v) {
        return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24);
      };
      lo = bswap(lo);
      hi = bswap(hi);
    }
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^ tables[3][hi & 0xFFu] ^
          tables[2][(hi >> 8) & 0xFFu] ^ tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n)
    crc = tables[0][(crc ^ static_cast<unsigned char>(*p)) & 0xFFu] ^ (crc >> 8);
  return crc;
}

#if defined(HISTPC_ENABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HISTPC_HAVE_HW_CRC32C 1

// CRC is linear over GF(2): appending `len` zero bytes to a message maps
// its CRC through a fixed 32x32 bit matrix, so crc(A||B) =
// shift_len(B)(crc(A)) ^ crc0(B). We precompute that operator for one
// fixed block size as four 256-entry tables (Adler's matrix-squaring
// trick from zlib's crc32_combine) and use it to merge independent lanes.
struct CrcShift {
  std::uint32_t t[4][256];
};

std::uint32_t gf2_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

CrcShift make_crc_shift(std::size_t zero_bytes) {
  // Operator for one zero bit of a reflected CRC: bit 0 folds the
  // polynomial in, every other bit shifts down by one.
  std::uint32_t a[32], b[32];
  a[0] = 0x82F63B78u;
  for (int i = 1; i < 32; ++i) a[i] = 1u << (i - 1);
  std::uint32_t* cur = a;
  std::uint32_t* nxt = b;
  for (std::size_t bits = 1; bits < 8 * zero_bytes; bits <<= 1) {
    for (int i = 0; i < 32; ++i) nxt[i] = gf2_times(cur, cur[i]);  // square
    std::swap(cur, nxt);
  }
  CrcShift s;
  for (int k = 0; k < 4; ++k)
    for (std::uint32_t i = 0; i < 256; ++i) s.t[k][i] = gf2_times(cur, i << (8 * k));
  return s;
}

std::uint32_t apply_crc_shift(const CrcShift& s, std::uint32_t crc) {
  return s.t[0][crc & 0xFFu] ^ s.t[1][(crc >> 8) & 0xFFu] ^ s.t[2][(crc >> 16) & 0xFFu] ^
         s.t[3][crc >> 24];
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const char* p, std::size_t n,
                                                          std::uint32_t crc) {
  // The crc32 instruction has multi-cycle latency but single-cycle
  // throughput, so one dependency chain runs at a third of peak; run
  // three independent lanes per block and merge them with the
  // precomputed shift operator.
  constexpr std::size_t kLane = 1024;
  static const CrcShift shift_lane = make_crc_shift(kLane);
  std::uint64_t c0 = crc;
  while (n >= 3 * kLane) {
    std::uint64_t c1 = 0, c2 = 0;
    const char* p1 = p + kLane;
    const char* p2 = p + 2 * kLane;
    for (std::size_t i = 0; i < kLane; i += 8) {
      std::uint64_t v0, v1, v2;
      std::memcpy(&v0, p + i, 8);
      std::memcpy(&v1, p1 + i, 8);
      std::memcpy(&v2, p2 + i, 8);
      c0 = __builtin_ia32_crc32di(c0, v0);
      c1 = __builtin_ia32_crc32di(c1, v1);
      c2 = __builtin_ia32_crc32di(c2, v2);
    }
    c0 = apply_crc_shift(shift_lane, static_cast<std::uint32_t>(c0)) ^ c1;
    c0 = apply_crc_shift(shift_lane, static_cast<std::uint32_t>(c0)) ^ c2;
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c0 = __builtin_ia32_crc32di(c0, v);
    p += 8;
    n -= 8;
  }
  while (n--)
    c0 = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c0),
                                static_cast<unsigned char>(*p++));
  return static_cast<std::uint32_t>(c0);
}
#endif

std::uint32_t crc32c(std::string_view bytes) {
#ifdef HISTPC_HAVE_HW_CRC32C
  // Shared runtime dispatch (util/cpu_features): the same probe the metric
  // kernels use, so HISTPC_NO_SIMD / HISTPC_SIMD also steer the CRC path.
  static const bool hw = util::cpu_features().selected >= util::SimdLevel::Sse42;
  if (hw) return crc32c_hw(bytes.data(), bytes.size(), 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
#endif
  return crc32c_sw(bytes.data(), bytes.size(), 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

// --- writer -------------------------------------------------------------

[[maybe_unused]] void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 8);
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Append a whole column. On little-endian targets the element bytes are
/// already in wire order, so the column is one memcpy-style append.
template <typename T>
void put_column(std::string& out, const std::vector<T>& col) {
  if (col.empty()) return;  // data() of an empty vector may be null
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(col.data()), col.size() * sizeof(T));
  } else {
    for (const T& v : col) {
      if constexpr (sizeof(T) == 8)
        put_u64(out, std::bit_cast<std::uint64_t>(v));
      else if constexpr (sizeof(T) == 4)
        put_u32(out, std::bit_cast<std::uint32_t>(v));
      else
        put_u8(out, std::bit_cast<std::uint8_t>(v));
    }
  }
}

// --- reader -------------------------------------------------------------

struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;

  /// Throws SnapshotError naming `what` if fewer than `n` bytes remain.
  void need(std::size_t n, const char* what) const {
    if (n > size - off)
      throw SnapshotError("snapshot truncated reading " + std::string(what) + " at offset " +
                          std::to_string(off));
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[off++]);
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
    off += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
    off += 8;
    return v;
  }

  std::int32_t i32(const char* what) { return static_cast<std::int32_t>(u32(what)); }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    need(n, what);
    std::string s(data + off, n);
    off += n;
    return s;
  }

  /// Read `n` elements into `col`. The element count was produced by a
  /// length field, so the remaining-bytes check also bounds the allocation.
  template <typename T>
  void column(std::vector<T>& col, std::size_t n, const char* what) {
    need(n * sizeof(T), what);
    col.resize(n);
    if (n == 0) return;  // data() of an empty vector may be null
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(col.data(), data + off, n * sizeof(T));
      off += n * sizeof(T);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if constexpr (sizeof(T) == 8)
          col[i] = std::bit_cast<T>(u64(what));
        else if constexpr (sizeof(T) == 4)
          col[i] = std::bit_cast<T>(u32(what));
        else
          col[i] = std::bit_cast<T>(u8(what));
      }
    }
  }
};

}  // namespace

std::string encode_trace_snapshot(const ExecutionTrace& trace) {
  std::string out;
  out.reserve(kHeaderSize + 64 + trace.total_intervals() * 25 + kTrailerSize);
  out.append(kTraceSnapshotMagic);
  put_u32(out, kTraceSnapshotVersion);

  put_f64(out, trace.duration);

  const MachineSpec& m = trace.machine;
  put_u32(out, static_cast<std::uint32_t>(m.node_names.size()));
  for (const std::string& name : m.node_names) put_str(out, name);
  put_column(out, m.node_speeds);
  put_u32(out, static_cast<std::uint32_t>(m.rank_to_node.size()));
  put_column(out, m.rank_to_node);
  for (const std::string& proc : m.process_names) put_str(out, proc);

  put_u32(out, static_cast<std::uint32_t>(trace.functions.size()));
  for (const FuncInfo& f : trace.functions) {
    put_str(out, f.function);
    put_str(out, f.module);
  }
  put_u32(out, static_cast<std::uint32_t>(trace.sync_objects.size()));
  for (const std::string& s : trace.sync_objects) put_str(out, s);

  for (const RankTrace& rt : trace.ranks) {
    put_f64(out, rt.end_time);
    const std::size_t n = rt.intervals.size();
    put_u64(out, static_cast<std::uint64_t>(n));
    // Transpose AoS intervals into wire columns through small scratch
    // vectors; the per-column appends are then bulk copies.
    RankColumns cols;
    cols.t0.reserve(n);
    cols.t1.reserve(n);
    cols.state.reserve(n);
    cols.func.reserve(n);
    cols.sync.reserve(n);
    for (const Interval& iv : rt.intervals) {
      cols.t0.push_back(iv.t0);
      cols.t1.push_back(iv.t1);
      cols.state.push_back(static_cast<std::uint8_t>(iv.state));
      cols.func.push_back(iv.func);
      cols.sync.push_back(iv.sync_object);
    }
    put_column(out, cols.t0);
    put_column(out, cols.t1);
    put_column(out, cols.state);
    put_column(out, cols.func);
    put_column(out, cols.sync);
  }

  put_u32(out, crc32c(std::string_view(out).substr(kHeaderSize)));
  return out;
}

ExecutionTrace decode_trace_snapshot(std::string_view bytes, TraceColumns* columns) {
  if (bytes.size() < kHeaderSize + kTrailerSize)
    throw SnapshotError("snapshot too small (" + std::to_string(bytes.size()) + " bytes)");
  if (bytes.substr(0, kTraceSnapshotMagic.size()) != kTraceSnapshotMagic)
    throw SnapshotError("bad snapshot magic (not a histpc-trace-bin file)");

  Cursor cur{bytes.data(), bytes.size() - kTrailerSize, kTraceSnapshotMagic.size()};
  const std::uint32_t version = cur.u32("format version");
  if (version != kTraceSnapshotVersion)
    throw SnapshotError("unsupported snapshot version " + std::to_string(version) +
                        " (expected " + std::to_string(kTraceSnapshotVersion) + ")");

  const std::string_view payload =
      bytes.substr(kHeaderSize, bytes.size() - kHeaderSize - kTrailerSize);
  Cursor trailer{bytes.data(), bytes.size(), bytes.size() - kTrailerSize};
  const std::uint32_t stored_crc = trailer.u32("payload CRC");
  const std::uint32_t computed_crc = crc32c(payload);
  if (stored_crc != computed_crc)
    throw SnapshotError("snapshot CRC mismatch (stored " + std::to_string(stored_crc) +
                        ", computed " + std::to_string(computed_crc) + ")");

  ExecutionTrace trace;
  trace.duration = cur.f64("duration");

  MachineSpec& m = trace.machine;
  const std::uint32_t nnodes = cur.u32("node count");
  m.node_names.reserve(nnodes);
  for (std::uint32_t i = 0; i < nnodes; ++i) m.node_names.push_back(cur.str("node name"));
  cur.column(m.node_speeds, nnodes, "node speeds");
  const std::uint32_t nranks = cur.u32("rank count");
  cur.column(m.rank_to_node, nranks, "rank placement");
  m.process_names.reserve(nranks);
  for (std::uint32_t i = 0; i < nranks; ++i)
    m.process_names.push_back(cur.str("process name"));
  m.validate();

  const std::uint32_t nfuncs = cur.u32("function count");
  trace.functions.reserve(nfuncs);
  for (std::uint32_t i = 0; i < nfuncs; ++i) {
    FuncInfo f;
    f.function = cur.str("function name");
    f.module = cur.str("module name");
    trace.functions.push_back(std::move(f));
  }
  const std::uint32_t nsyncs = cur.u32("sync object count");
  trace.sync_objects.reserve(nsyncs);
  for (std::uint32_t i = 0; i < nsyncs; ++i)
    trace.sync_objects.push_back(cur.str("sync object name"));

  trace.ranks.resize(nranks);
  if (columns) {
    columns->ranks.clear();
    columns->ranks.resize(nranks);
  }
  const FuncId func_limit = static_cast<FuncId>(nfuncs);
  const SyncObjectId sync_limit = static_cast<SyncObjectId>(nsyncs);
  double max_end = 0.0;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    RankTrace& rt = trace.ranks[r];
    rt.end_time = cur.f64("rank end time");
    const std::uint64_t n64 = cur.u64("interval count");
    if (n64 > std::numeric_limits<std::uint32_t>::max())
      throw SnapshotError("implausible interval count on rank " + std::to_string(r));
    const std::size_t n = static_cast<std::size_t>(n64);
    RankColumns cols;
    cur.column(cols.t0, n, "t0 column");
    cur.column(cols.t1, n, "t1 column");
    cur.column(cols.state, n, "state column");
    cur.column(cols.func, n, "func column");
    cur.column(cols.sync, n, "sync column");
    // One fused pass builds the AoS intervals and enforces the semantic
    // invariants of ExecutionTrace::validate() while the columns are
    // cache-hot; a final validate() over the multi-megabyte trace would
    // cost a measurable slice of the warm-load budget.
    rt.intervals.resize(n);
    Interval* out = rt.intervals.data();
    double prev_end = 0.0;
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double t0 = cols.t0[i];
      const double t1 = cols.t1[i];
      const std::uint8_t state = cols.state[i];
      const FuncId func = cols.func[i];
      const SyncObjectId sync = cols.sync[i];
      ok &= state <= 2;
      ok &= t1 >= t0 && t0 + 1e-9 >= prev_end;
      ok &= func == kNoFunc || (func >= 0 && func < func_limit);
      ok &= sync == kNoSyncObject ||
            (state == static_cast<std::uint8_t>(IntervalState::SyncWait) && sync >= 0 &&
             sync < sync_limit);
      prev_end = t1;
      out[i].t0 = t0;
      out[i].t1 = t1;
      out[i].state = static_cast<IntervalState>(state);
      out[i].func = func;
      out[i].sync_object = sync;
    }
    if (!ok || prev_end > rt.end_time + 1e-9)
      throw SnapshotError("invalid interval data on rank " + std::to_string(r));
    max_end = std::max(max_end, rt.end_time);
    if (columns) columns->ranks[r] = std::move(cols);
  }
  if (std::abs(max_end - trace.duration) > 1e-6)
    throw SnapshotError("duration does not match max rank end time");

  if (cur.off != cur.size)
    throw SnapshotError("snapshot has " + std::to_string(cur.size - cur.off) +
                        " trailing payload bytes");
  return trace;
}

void save_trace_snapshot(const ExecutionTrace& trace, const std::string& path) {
  util::write_file(path, encode_trace_snapshot(trace));
}

ExecutionTrace load_trace_snapshot(const std::string& path, TraceColumns* columns) {
#if defined(__unix__) || defined(__APPLE__)
  // Decode straight out of the page cache: copying a multi-megabyte
  // snapshot into a string first costs a third of the warm-load budget.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct ::stat st {};
    const bool statted = ::fstat(fd, &st) == 0 && st.st_size > 0;
    void* map = statted ? ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                                 MAP_PRIVATE, fd, 0)
                        : MAP_FAILED;
    ::close(fd);
    if (map != MAP_FAILED) {
      struct Unmap {
        void* p;
        std::size_t n;
        ~Unmap() { ::munmap(p, n); }
      } guard{map, static_cast<std::size_t>(st.st_size)};
      return decode_trace_snapshot(
          std::string_view(static_cast<const char*>(map), guard.n), columns);
    }
  }
#endif
  return decode_trace_snapshot(util::read_file(path), columns);
}

}  // namespace histpc::simmpi
