#include "simmpi/trace_snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/binio.h"
#include "util/crc32c.h"
#include "util/json.h"  // read_file / write_file

namespace histpc::simmpi {

namespace {

constexpr std::size_t kHeaderSize = 12;  // magic (8) + version (4)
constexpr std::size_t kTrailerSize = 4;  // CRC32

// Wire helpers and the CRC live in util (binio.h / crc32c.h), shared with
// the experiment-record codec; the cursor is instantiated with this
// format's error type so malformed input keeps throwing SnapshotError.
using util::crc32c;
using util::binio::put_column;
using util::binio::put_f64;
using util::binio::put_str;
using util::binio::put_u32;
using util::binio::put_u64;
using Cursor = util::binio::Cursor<SnapshotError>;

}  // namespace

std::string encode_trace_snapshot(const ExecutionTrace& trace) {
  std::string out;
  out.reserve(kHeaderSize + 64 + trace.total_intervals() * 25 + kTrailerSize);
  out.append(kTraceSnapshotMagic);
  put_u32(out, kTraceSnapshotVersion);

  put_f64(out, trace.duration);

  const MachineSpec& m = trace.machine;
  put_u32(out, static_cast<std::uint32_t>(m.node_names.size()));
  for (const std::string& name : m.node_names) put_str(out, name);
  put_column(out, m.node_speeds);
  put_u32(out, static_cast<std::uint32_t>(m.rank_to_node.size()));
  put_column(out, m.rank_to_node);
  for (const std::string& proc : m.process_names) put_str(out, proc);

  put_u32(out, static_cast<std::uint32_t>(trace.functions.size()));
  for (const FuncInfo& f : trace.functions) {
    put_str(out, f.function);
    put_str(out, f.module);
  }
  put_u32(out, static_cast<std::uint32_t>(trace.sync_objects.size()));
  for (const std::string& s : trace.sync_objects) put_str(out, s);

  for (const RankTrace& rt : trace.ranks) {
    put_f64(out, rt.end_time);
    const std::size_t n = rt.intervals.size();
    put_u64(out, static_cast<std::uint64_t>(n));
    // Transpose AoS intervals into wire columns through small scratch
    // vectors; the per-column appends are then bulk copies.
    RankColumns cols;
    cols.t0.reserve(n);
    cols.t1.reserve(n);
    cols.state.reserve(n);
    cols.func.reserve(n);
    cols.sync.reserve(n);
    for (const Interval& iv : rt.intervals) {
      cols.t0.push_back(iv.t0);
      cols.t1.push_back(iv.t1);
      cols.state.push_back(static_cast<std::uint8_t>(iv.state));
      cols.func.push_back(iv.func);
      cols.sync.push_back(iv.sync_object);
    }
    put_column(out, cols.t0);
    put_column(out, cols.t1);
    put_column(out, cols.state);
    put_column(out, cols.func);
    put_column(out, cols.sync);
  }

  put_u32(out, crc32c(std::string_view(out).substr(kHeaderSize)));
  return out;
}

ExecutionTrace decode_trace_snapshot(std::string_view bytes, TraceColumns* columns) {
  if (bytes.size() < kHeaderSize + kTrailerSize)
    throw SnapshotError("snapshot too small (" + std::to_string(bytes.size()) + " bytes)");
  if (bytes.substr(0, kTraceSnapshotMagic.size()) != kTraceSnapshotMagic)
    throw SnapshotError("bad snapshot magic (not a histpc-trace-bin file)");

  Cursor cur{bytes.data(), bytes.size() - kTrailerSize, kTraceSnapshotMagic.size()};
  const std::uint32_t version = cur.u32("format version");
  if (version != kTraceSnapshotVersion)
    throw SnapshotError("unsupported snapshot version " + std::to_string(version) +
                        " (expected " + std::to_string(kTraceSnapshotVersion) + ")");

  const std::string_view payload =
      bytes.substr(kHeaderSize, bytes.size() - kHeaderSize - kTrailerSize);
  Cursor trailer{bytes.data(), bytes.size(), bytes.size() - kTrailerSize};
  const std::uint32_t stored_crc = trailer.u32("payload CRC");
  const std::uint32_t computed_crc = crc32c(payload);
  if (stored_crc != computed_crc)
    throw SnapshotError("snapshot CRC mismatch (stored " + std::to_string(stored_crc) +
                        ", computed " + std::to_string(computed_crc) + ")");

  ExecutionTrace trace;
  trace.duration = cur.f64("duration");

  MachineSpec& m = trace.machine;
  const std::uint32_t nnodes = cur.u32("node count");
  m.node_names.reserve(nnodes);
  for (std::uint32_t i = 0; i < nnodes; ++i) m.node_names.push_back(cur.str("node name"));
  cur.column(m.node_speeds, nnodes, "node speeds");
  const std::uint32_t nranks = cur.u32("rank count");
  cur.column(m.rank_to_node, nranks, "rank placement");
  m.process_names.reserve(nranks);
  for (std::uint32_t i = 0; i < nranks; ++i)
    m.process_names.push_back(cur.str("process name"));
  m.validate();

  const std::uint32_t nfuncs = cur.u32("function count");
  trace.functions.reserve(nfuncs);
  for (std::uint32_t i = 0; i < nfuncs; ++i) {
    FuncInfo f;
    f.function = cur.str("function name");
    f.module = cur.str("module name");
    trace.functions.push_back(std::move(f));
  }
  const std::uint32_t nsyncs = cur.u32("sync object count");
  trace.sync_objects.reserve(nsyncs);
  for (std::uint32_t i = 0; i < nsyncs; ++i)
    trace.sync_objects.push_back(cur.str("sync object name"));

  trace.ranks.resize(nranks);
  if (columns) {
    columns->ranks.clear();
    columns->ranks.resize(nranks);
  }
  const FuncId func_limit = static_cast<FuncId>(nfuncs);
  const SyncObjectId sync_limit = static_cast<SyncObjectId>(nsyncs);
  double max_end = 0.0;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    RankTrace& rt = trace.ranks[r];
    rt.end_time = cur.f64("rank end time");
    const std::uint64_t n64 = cur.u64("interval count");
    if (n64 > std::numeric_limits<std::uint32_t>::max())
      throw SnapshotError("implausible interval count on rank " + std::to_string(r));
    const std::size_t n = static_cast<std::size_t>(n64);
    RankColumns cols;
    cur.column(cols.t0, n, "t0 column");
    cur.column(cols.t1, n, "t1 column");
    cur.column(cols.state, n, "state column");
    cur.column(cols.func, n, "func column");
    cur.column(cols.sync, n, "sync column");
    // One fused pass builds the AoS intervals and enforces the semantic
    // invariants of ExecutionTrace::validate() while the columns are
    // cache-hot; a final validate() over the multi-megabyte trace would
    // cost a measurable slice of the warm-load budget.
    rt.intervals.resize(n);
    Interval* out = rt.intervals.data();
    double prev_end = 0.0;
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double t0 = cols.t0[i];
      const double t1 = cols.t1[i];
      const std::uint8_t state = cols.state[i];
      const FuncId func = cols.func[i];
      const SyncObjectId sync = cols.sync[i];
      ok &= state <= 2;
      ok &= t1 >= t0 && t0 + 1e-9 >= prev_end;
      ok &= func == kNoFunc || (func >= 0 && func < func_limit);
      ok &= sync == kNoSyncObject ||
            (state == static_cast<std::uint8_t>(IntervalState::SyncWait) && sync >= 0 &&
             sync < sync_limit);
      prev_end = t1;
      out[i].t0 = t0;
      out[i].t1 = t1;
      out[i].state = static_cast<IntervalState>(state);
      out[i].func = func;
      out[i].sync_object = sync;
    }
    if (!ok || prev_end > rt.end_time + 1e-9)
      throw SnapshotError("invalid interval data on rank " + std::to_string(r));
    max_end = std::max(max_end, rt.end_time);
    if (columns) columns->ranks[r] = std::move(cols);
  }
  if (std::abs(max_end - trace.duration) > 1e-6)
    throw SnapshotError("duration does not match max rank end time");

  if (cur.off != cur.size)
    throw SnapshotError("snapshot has " + std::to_string(cur.size - cur.off) +
                        " trailing payload bytes");
  return trace;
}

void save_trace_snapshot(const ExecutionTrace& trace, const std::string& path) {
  util::write_file(path, encode_trace_snapshot(trace));
}

ExecutionTrace load_trace_snapshot(const std::string& path, TraceColumns* columns,
                                   std::size_t offset) {
#if defined(__unix__) || defined(__APPLE__)
  // Decode straight out of the page cache: copying a multi-megabyte
  // snapshot into a string first costs a third of the warm-load budget.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct ::stat st {};
    const bool statted = ::fstat(fd, &st) == 0 && st.st_size > 0;
    void* map = statted ? ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                                 MAP_PRIVATE, fd, 0)
                        : MAP_FAILED;
    ::close(fd);
    if (map != MAP_FAILED) {
      struct Unmap {
        void* p;
        std::size_t n;
        ~Unmap() { ::munmap(p, n); }
      } guard{map, static_cast<std::size_t>(st.st_size)};
      if (guard.n < offset) throw SnapshotError("snapshot shorter than its header");
      return decode_trace_snapshot(
          std::string_view(static_cast<const char*>(map) + offset, guard.n - offset),
          columns);
    }
  }
#endif
  const std::string data = util::read_file(path);
  if (data.size() < offset) throw SnapshotError("snapshot shorter than its header");
  return decode_trace_snapshot(std::string_view(data).substr(offset), columns);
}

}  // namespace histpc::simmpi
