// Program recording: turn per-rank C++ functions into op sequences.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simmpi/ops.h"
#include "util/rng.h"

namespace histpc::simmpi {

/// Machine description: nodes (with relative CPU speeds) and the rank->node
/// placement. Node and process *names* feed the Machine and Process resource
/// hierarchies; renaming nodes between runs reproduces the paper's mapping
/// problem without changing behaviour.
struct MachineSpec {
  std::vector<std::string> node_names;   ///< e.g. {"poona01", ..., "poona04"}
  std::vector<double> node_speeds;       ///< relative CPU speed, 1.0 = nominal
  std::vector<int> rank_to_node;         ///< placement, size = nranks
  std::vector<std::string> process_names;///< e.g. {"poisson:1", ...}, size = nranks

  /// nranks ranks placed 1:1 on nodes "<prefix><base+i>" (zero-padded to 2).
  static MachineSpec one_to_one(int nranks, std::string_view node_prefix,
                                std::string_view process_prefix, int node_base = 1);

  int num_nodes() const { return static_cast<int>(node_names.size()); }
  int num_ranks() const { return static_cast<int>(rank_to_node.size()); }
  double speed_of_rank(int rank) const { return node_speeds.at(rank_to_node.at(rank)); }

  /// Throws std::invalid_argument if sizes/placement are inconsistent.
  void validate() const;
};

struct ProcessProgram {
  std::vector<Op> ops;
};

/// Recording-time variability model. Real executions of the same program
/// differ run to run (the paper reports medians over repeated runs with
/// standard deviations of 3-17 s); seeded multiplicative noise on compute
/// durations reproduces that while keeping every "run" bit-reproducible
/// for a given seed.
struct RecordingOptions {
  /// Relative standard deviation of compute durations (0 = exact).
  double compute_jitter = 0.0;
  std::uint64_t seed = 0;
};

/// A complete recorded SPMD program, ready for simulation.
struct SimProgram {
  MachineSpec machine;
  std::vector<ProcessProgram> procs;
  std::vector<FuncInfo> functions;  ///< shared, interned function table

  int num_ranks() const { return static_cast<int>(procs.size()); }
};

class ProgramBuilder;

/// Handed to application code, one per rank; records intent without
/// simulating. Blocking/nonblocking distinction therefore only matters at
/// simulation time.
class Recorder {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  void compute(double seconds);
  void io(double seconds);

  void send(int dest, int tag, std::size_t bytes, int comm = 0);
  /// `src` may be kAnySource.
  void recv(int src, int tag, int comm = 0);
  RequestId isend(int dest, int tag, std::size_t bytes, int comm = 0);
  /// `src` may be kAnySource.
  RequestId irecv(int src, int tag, int comm = 0);
  void wait(RequestId request);
  void waitall();
  void barrier();
  void allreduce(std::size_t bytes);
  void bcast(std::size_t bytes);
  void gather(std::size_t bytes);
  void alltoall(std::size_t bytes);

  void func_enter(std::string_view function, std::string_view module);
  void func_exit();

 private:
  friend class ProgramBuilder;
  Recorder(ProgramBuilder& builder, int rank, int size, ProcessProgram& out)
      : builder_(builder), rank_(rank), size_(size), out_(out) {}

  void check_peer(int peer, bool allow_any = false) const;

  ProgramBuilder& builder_;
  int rank_;
  int size_;
  ProcessProgram& out_;
  RequestId next_request_ = 0;
  int open_funcs_ = 0;
};

/// RAII function scoping; gives ops Code-hierarchy attribution.
class FunctionScope {
 public:
  FunctionScope(Recorder& r, std::string_view function, std::string_view module) : r_(r) {
    r_.func_enter(function, module);
  }
  ~FunctionScope() { r_.func_exit(); }
  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

 private:
  Recorder& r_;
};

/// Records an SPMD program: runs `body` once per rank with a Recorder.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(MachineSpec machine, RecordingOptions options = {});

  /// Run `body(recorder)` for every rank, in rank order.
  void record(const std::function<void(Recorder&)>& body);

  /// Finalize; the builder must not be reused afterwards.
  SimProgram build();

  FuncId intern_function(std::string_view function, std::string_view module);

 private:
  friend class Recorder;
  /// Apply the jitter model to a nominal compute duration.
  double jittered(double seconds);

  MachineSpec machine_;
  RecordingOptions options_;
  util::Rng rng_;
  std::vector<ProcessProgram> procs_;
  std::vector<FuncInfo> functions_;
  std::map<std::pair<std::string, std::string>, FuncId> func_index_;
  bool built_ = false;
};

}  // namespace histpc::simmpi
