#include "simmpi/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace histpc::simmpi {

double NetworkModel::collective_cost(int nranks, std::size_t bytes) const {
  if (nranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
  return rounds * (latency + static_cast<double>(bytes) / bytes_per_second);
}

namespace {

constexpr double kEps = 1e-12;

struct SimRequest {
  bool is_send = false;
  double post_time = 0.0;
  bool complete = false;
  double complete_time = 0.0;
  SyncObjectId sync_object = kNoSyncObject;
  bool waited = false;  ///< consumed by Wait/Waitall
};

struct PendingSend {
  int src_rank;
  std::int32_t req;  ///< sim-request index on the source rank
  double post_time;
  std::size_t bytes;
  bool eager;
};

struct PendingRecv {
  int dst_rank;
  std::int32_t req;  ///< sim-request index on the destination rank
  double post_time;
};

struct Channel {
  std::deque<PendingSend> sends;
  std::deque<PendingRecv> recvs;
  /// The channel's sync object ("Message/<comm:>tag"), interned lazily on
  /// the first post so sync-object discovery order matches execution order;
  /// later posts reuse the id without rebuilding the name.
  SyncObjectId sync = kNoSyncObject;
};

struct ChanKey {
  int src, dst, tag, comm;
  bool operator<(const ChanKey& o) const {
    return std::tie(src, dst, tag, comm) < std::tie(o.src, o.dst, o.tag, o.comm);
  }
};

struct WildKey {
  int dst, tag, comm;
  bool operator<(const WildKey& o) const {
    return std::tie(dst, tag, comm) < std::tie(o.dst, o.tag, o.comm);
  }
};

enum class BlockKind : std::uint8_t { None, Wait, Waitall, Collective };

struct CollectiveState {
  OpKind kind = OpKind::Barrier;
  std::size_t bytes = 0;
  int arrived = 0;
  double max_arrival = 0.0;
  bool released = false;
  double release_time = 0.0;
};

struct RankState {
  double t = 0.0;
  std::size_t ip = 0;
  bool done = false;
  std::vector<FuncId> func_stack;
  std::vector<SimRequest> requests;
  /// recorder-visible request id -> sim-request index
  std::unordered_map<RequestId, std::int32_t> recorder_req;

  BlockKind block = BlockKind::None;
  double block_start = 0.0;
  std::int32_t wait_req = -1;          ///< for BlockKind::Wait
  std::vector<std::int32_t> waitall;   ///< for BlockKind::Waitall

  std::size_t collective_epoch = 0;

  std::vector<Interval> intervals;

  FuncId current_func() const { return func_stack.empty() ? kNoFunc : func_stack.back(); }
};

class SimRun {
 public:
  SimRun(const NetworkModel& net, const SimProgram& program)
      : net_(net), program_(program), nranks_(program.num_ranks()) {
    program_.machine.validate();
    states_.resize(static_cast<std::size_t>(nranks_));
    in_queue_.assign(static_cast<std::size_t>(nranks_), false);
    intern_channels();
  }

  ExecutionTrace execute() {
    for (int r = 0; r < nranks_; ++r) enqueue(r);
    while (!runq_.empty()) {
      int r = runq_.front();
      runq_.pop_front();
      in_queue_[static_cast<std::size_t>(r)] = false;
      advance(r);
    }
    check_all_done();
    return finish();
  }

 private:
  void enqueue(int rank) {
    auto idx = static_cast<std::size_t>(rank);
    if (in_queue_[idx] || states_[idx].done) return;
    in_queue_[idx] = true;
    runq_.push_back(rank);
  }

  SyncObjectId intern_sync(const std::string& name) {
    if (auto it = sync_index_.find(name); it != sync_index_.end()) return it->second;
    SyncObjectId id = static_cast<SyncObjectId>(sync_objects_.size());
    sync_objects_.push_back(name);
    sync_index_.emplace(name, id);
    return id;
  }

  SyncObjectId message_sync(int comm, int tag) {
    std::string name = "Message/";
    if (comm != 0) name += std::to_string(comm) + ":";
    name += std::to_string(tag);
    return intern_sync(name);
  }

  void record(RankState& st, double t0, double t1, IntervalState state, FuncId func,
              SyncObjectId sync = kNoSyncObject) {
    if (t1 - t0 <= kEps) return;
    Interval iv;
    iv.t0 = t0;
    iv.t1 = t1;
    iv.state = state;
    iv.func = func;
    iv.sync_object = state == IntervalState::SyncWait ? sync : kNoSyncObject;
    st.intervals.push_back(iv);
  }

  /// One pre-pass over the recorded ops interns every (src, dst, tag, comm)
  /// channel into a dense id and annotates each messaging op with its
  /// channel, so the event loop never hashes or compares composite keys.
  /// The pass also sizes per-rank interval/request storage: every op records
  /// at most one interval, and each point-to-point op registers one request.
  /// Wildcard receives never name a channel; their candidate lists (all
  /// channels addressed to a destination with a given tag/comm, sorted by
  /// source rank) come from the same interned universe.
  void intern_channels() {
    std::map<ChanKey, std::int32_t> index;
    op_channel_.resize(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
      const auto& ops = program_.procs[static_cast<std::size_t>(r)].ops;
      auto& oc = op_channel_[static_cast<std::size_t>(r)];
      oc.assign(ops.size(), -1);
      std::size_t nreqs = 0;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        ChanKey key{};
        switch (op.kind) {
          case OpKind::Send:
          case OpKind::Isend:
            key = ChanKey{r, op.peer, op.tag, op.comm};
            break;
          case OpKind::Recv:
          case OpKind::Irecv:
            ++nreqs;
            if (op.peer == kAnySource) continue;
            key = ChanKey{op.peer, r, op.tag, op.comm};
            break;
          default:
            continue;
        }
        if (op.kind == OpKind::Send || op.kind == OpKind::Isend) ++nreqs;
        auto [it, inserted] = index.emplace(key, static_cast<std::int32_t>(index.size()));
        oc[i] = it->second;
      }
      auto& st = states_[static_cast<std::size_t>(r)];
      st.intervals.reserve(ops.size());
      st.requests.reserve(nreqs);
    }
    channels_.resize(index.size());
    // ChanKey order is (src, dst, tag, comm)-lexicographic, so appending in
    // map order leaves every candidate list sorted by source rank — the
    // wildcard tie-break the ordered channel map used to provide.
    for (const auto& [key, id] : index)
      wild_candidates_[WildKey{key.dst, key.tag, key.comm}].push_back(id);
  }

  /// The interned channel of the op `rank` is currently executing.
  Channel& channel_of(int rank, std::size_t ip) {
    return channels_[static_cast<std::size_t>(
        op_channel_[static_cast<std::size_t>(rank)][ip])];
  }

  /// Complete one matched send/receive pair, waking blocked ranks.
  void complete_pair(const PendingSend& s, const PendingRecv& r) {
    auto& sreq = states_[static_cast<std::size_t>(s.src_rank)].requests[s.req];
    auto& rreq = states_[static_cast<std::size_t>(r.dst_rank)].requests[r.req];
    double arrival;
    if (s.eager) {
      arrival = s.post_time + net_.transfer_time(s.bytes);
      // The eager send request completed locally at post time already.
    } else {
      const double start = std::max(s.post_time, r.post_time);
      arrival = start + net_.transfer_time(s.bytes);
      sreq.complete = true;
      sreq.complete_time = arrival;
      enqueue(s.src_rank);
    }
    rreq.complete = true;
    rreq.complete_time = arrival;
    enqueue(r.dst_rank);
  }

  /// FIFO-match pending sends and receives on a channel.
  void try_match(Channel& ch) {
    while (!ch.sends.empty() && !ch.recvs.empty()) {
      complete_pair(ch.sends.front(), ch.recvs.front());
      ch.sends.pop_front();
      ch.recvs.pop_front();
    }
  }

  /// After specific receives are satisfied, feed leftover sends on this
  /// channel to any wildcard receives waiting at the destination.
  void try_match_wildcards(Channel& ch, int dst, int tag, int comm) {
    auto it = wild_recvs_.find(WildKey{dst, tag, comm});
    if (it == wild_recvs_.end()) return;
    auto& wild = it->second;
    while (!ch.sends.empty() && !wild.empty()) {
      complete_pair(ch.sends.front(), wild.front());
      ch.sends.pop_front();
      wild.pop_front();
    }
    if (wild.empty()) wild_recvs_.erase(it);
  }

  std::int32_t register_request(RankState& st, bool is_send, double post_time,
                                SyncObjectId sync) {
    SimRequest req;
    req.is_send = is_send;
    req.post_time = post_time;
    req.sync_object = sync;
    st.requests.push_back(req);
    return static_cast<std::int32_t>(st.requests.size() - 1);
  }

  /// Post a send from `rank`; returns the sim-request index.
  std::int32_t post_send(int rank, const Op& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const bool eager = op.bytes <= net_.eager_limit;
    Channel& ch = channel_of(rank, st.ip);
    if (ch.sync == kNoSyncObject) ch.sync = message_sync(op.comm, op.tag);
    std::int32_t req = register_request(st, true, st.t, ch.sync);
    if (eager) {
      st.requests[req].complete = true;
      st.requests[req].complete_time = st.t;
    }
    ch.sends.push_back(PendingSend{rank, req, st.t, op.bytes, eager});
    try_match(ch);
    try_match_wildcards(ch, op.peer, op.tag, op.comm);
    return req;
  }

  std::int32_t post_recv(int rank, const Op& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    if (op.peer == kAnySource) {
      std::int32_t req =
          register_request(st, false, st.t, message_sync(op.comm, op.tag));
      post_wildcard_recv(rank, op, req);
      return req;
    }
    Channel& ch = channel_of(rank, st.ip);
    if (ch.sync == kNoSyncObject) ch.sync = message_sync(op.comm, op.tag);
    std::int32_t req = register_request(st, false, st.t, ch.sync);
    ch.recvs.push_back(PendingRecv{rank, req, st.t});
    try_match(ch);
    return req;
  }

  /// Match a wildcard receive against the earliest-posted unmatched send
  /// addressed to `rank` with the right tag/comm (ties: lowest source
  /// rank, which the candidate lists' src ordering provides); queue it
  /// otherwise.
  void post_wildcard_recv(int rank, const Op& op, std::int32_t req) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const PendingRecv pending{rank, req, st.t};
    Channel* best = nullptr;
    if (auto it = wild_candidates_.find(WildKey{rank, op.tag, op.comm});
        it != wild_candidates_.end()) {
      for (std::int32_t id : it->second) {
        Channel& ch = channels_[static_cast<std::size_t>(id)];
        if (ch.sends.empty()) continue;
        // Only unmatched sends sit in the queue; specific receives would
        // already have consumed the front.
        if (!best || ch.sends.front().post_time < best->sends.front().post_time)
          best = &ch;
      }
    }
    if (best) {
      complete_pair(best->sends.front(), pending);
      best->sends.pop_front();
    } else {
      wild_recvs_[WildKey{rank, op.tag, op.comm}].push_back(pending);
    }
  }

  void begin_wait(RankState& st, std::int32_t req) {
    st.block = BlockKind::Wait;
    st.block_start = st.t;
    st.wait_req = req;
  }

  /// Returns true if the block condition is satisfied and the rank resumed
  /// (wait interval recorded, time advanced). False = stay parked.
  bool try_unblock(int rank) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    switch (st.block) {
      case BlockKind::None:
        return true;
      case BlockKind::Wait: {
        const SimRequest& req = st.requests[st.wait_req];
        if (!req.complete) return false;
        const double resume = std::max(st.t, req.complete_time);
        record(st, st.block_start, resume, IntervalState::SyncWait, st.current_func(),
               req.sync_object);
        st.t = resume;
        st.block = BlockKind::None;
        st.wait_req = -1;
        return true;
      }
      case BlockKind::Waitall: {
        double latest = st.t;
        SyncObjectId dominant = kNoSyncObject;
        for (std::int32_t r : st.waitall) {
          const SimRequest& req = st.requests[r];
          if (!req.complete) return false;
          if (req.complete_time >= latest) {
            latest = req.complete_time;
            dominant = req.sync_object;
          }
        }
        record(st, st.block_start, latest, IntervalState::SyncWait, st.current_func(),
               dominant);
        st.t = latest;
        st.block = BlockKind::None;
        st.waitall.clear();
        return true;
      }
      case BlockKind::Collective: {
        const CollectiveState& coll = collectives_[st.collective_epoch];
        if (!coll.released) return false;
        const double resume = std::max(st.t, coll.release_time);
        SyncObjectId sync = intern_sync(collective_sync_name(coll.kind));
        record(st, st.block_start, resume, IntervalState::SyncWait, st.current_func(), sync);
        st.t = resume;
        st.block = BlockKind::None;
        ++st.collective_epoch;
        return true;
      }
    }
    return false;
  }

  static std::string collective_sync_name(OpKind kind) {
    switch (kind) {
      case OpKind::Barrier: return "Collective/Barrier";
      case OpKind::Allreduce: return "Collective/Allreduce";
      case OpKind::Bcast: return "Collective/Bcast";
      case OpKind::Gather: return "Collective/Gather";
      case OpKind::Alltoall: return "Collective/Alltoall";
      default: return "Collective/Unknown";
    }
  }

  /// Cost of a collective after the last participant arrives. Tree-shaped
  /// operations pay log2(N) rounds; gather and all-to-all are dominated by
  /// the N-1 point-to-point transfers at the bottleneck rank.
  double collective_release_cost(OpKind kind, std::size_t bytes) const {
    switch (kind) {
      case OpKind::Gather:
      case OpKind::Alltoall:
        return static_cast<double>(nranks_ - 1) * net_.transfer_time(bytes);
      default:
        return net_.collective_cost(nranks_, bytes);
    }
  }

  void arrive_collective(int rank, const Op& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const std::size_t epoch = st.collective_epoch;
    if (epoch >= collectives_.size()) collectives_.resize(epoch + 1);
    CollectiveState& coll = collectives_[epoch];
    if (coll.arrived == 0) {
      coll.kind = op.kind;
      coll.bytes = op.bytes;
    } else if (coll.kind != op.kind) {
      throw std::logic_error("collective mismatch at epoch " + std::to_string(epoch) +
                             ": rank " + std::to_string(rank) + " called " +
                             op_kind_name(op.kind) + " but epoch is " +
                             op_kind_name(coll.kind));
    }
    ++coll.arrived;
    coll.max_arrival = std::max(coll.max_arrival, st.t);
    st.block = BlockKind::Collective;
    st.block_start = st.t;
    if (coll.arrived == nranks_) {
      coll.released = true;
      coll.release_time = coll.max_arrival + collective_release_cost(coll.kind, coll.bytes);
      for (int r = 0; r < nranks_; ++r) enqueue(r);
    }
  }

  void advance(int rank) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const auto& ops = program_.procs[static_cast<std::size_t>(rank)].ops;
    while (true) {
      if (st.block != BlockKind::None) {
        if (!try_unblock(rank)) return;  // stay parked; a match will re-enqueue
        ++st.ip;                          // the blocking op is now consumed
        continue;
      }
      if (st.ip >= ops.size()) {
        if (!st.done) {
          st.done = true;
          if (!st.func_stack.empty())
            throw std::logic_error("rank " + std::to_string(rank) +
                                   " finished with open function scopes");
        }
        return;
      }
      const Op& op = ops[st.ip];
      switch (op.kind) {
        case OpKind::Compute: {
          const double dur = op.seconds / program_.machine.speed_of_rank(rank);
          record(st, st.t, st.t + dur, IntervalState::Cpu, st.current_func());
          st.t += dur;
          ++st.ip;
          break;
        }
        case OpKind::Io: {
          record(st, st.t, st.t + op.seconds, IntervalState::IoWait, st.current_func());
          st.t += op.seconds;
          ++st.ip;
          break;
        }
        case OpKind::FuncEnter:
          st.func_stack.push_back(op.func);
          ++st.ip;
          break;
        case OpKind::FuncExit:
          st.func_stack.pop_back();
          ++st.ip;
          break;
        case OpKind::Isend: {
          std::int32_t req = post_send(rank, op);
          st.recorder_req[op.request] = req;
          st.t += net_.post_overhead;
          ++st.ip;
          break;
        }
        case OpKind::Irecv: {
          std::int32_t req = post_recv(rank, op);
          st.recorder_req[op.request] = req;
          st.t += net_.post_overhead;
          ++st.ip;
          break;
        }
        case OpKind::Send: {
          std::int32_t req = post_send(rank, op);
          st.t += net_.post_overhead;
          st.requests[req].waited = true;
          begin_wait(st, req);  // eager sends unblock immediately
          break;                // ip advanced after unblock
        }
        case OpKind::Recv: {
          std::int32_t req = post_recv(rank, op);
          st.t += net_.post_overhead;
          st.requests[req].waited = true;
          begin_wait(st, req);
          break;
        }
        case OpKind::Wait: {
          auto it = st.recorder_req.find(op.request);
          if (it == st.recorder_req.end())
            throw std::logic_error("Wait on unposted request on rank " + std::to_string(rank));
          if (st.requests[it->second].waited)
            throw std::logic_error("request waited twice on rank " + std::to_string(rank));
          st.requests[it->second].waited = true;
          begin_wait(st, it->second);
          break;
        }
        case OpKind::Waitall: {
          st.block = BlockKind::Waitall;
          st.block_start = st.t;
          st.waitall.clear();
          // Iterate in sim-request order so the "dominant" sync object of a
          // tied waitall is deterministic.
          for (std::int32_t idx = 0; idx < static_cast<std::int32_t>(st.requests.size());
               ++idx) {
            if (!st.requests[idx].waited) {
              st.requests[idx].waited = true;
              st.waitall.push_back(idx);
            }
          }
          break;
        }
        case OpKind::Barrier:
        case OpKind::Allreduce:
        case OpKind::Bcast:
        case OpKind::Gather:
        case OpKind::Alltoall:
          arrive_collective(rank, op);
          break;
      }
    }
  }

  void check_all_done() const {
    std::ostringstream os;
    bool deadlock = false;
    for (int r = 0; r < nranks_; ++r) {
      const auto& st = states_[static_cast<std::size_t>(r)];
      if (!st.done) {
        deadlock = true;
        const auto& ops = program_.procs[static_cast<std::size_t>(r)].ops;
        os << "  rank " << r << " blocked at op " << st.ip << "/" << ops.size();
        if (st.ip < ops.size()) os << " (" << op_kind_name(ops[st.ip].kind) << ")";
        os << " t=" << st.t << "\n";
      }
    }
    if (deadlock)
      throw std::runtime_error("simulation deadlock — unmatched communication:\n" + os.str());
  }

  ExecutionTrace finish() {
    ExecutionTrace trace;
    trace.machine = program_.machine;
    trace.functions = program_.functions;
    trace.sync_objects = std::move(sync_objects_);
    trace.ranks.resize(static_cast<std::size_t>(nranks_));
    double max_end = 0.0;
    for (int r = 0; r < nranks_; ++r) {
      auto& st = states_[static_cast<std::size_t>(r)];
      trace.ranks[static_cast<std::size_t>(r)].intervals = std::move(st.intervals);
      trace.ranks[static_cast<std::size_t>(r)].end_time = st.t;
      max_end = std::max(max_end, st.t);
    }
    trace.duration = max_end;
    return trace;
  }

  const NetworkModel& net_;
  const SimProgram& program_;
  int nranks_;
  std::vector<RankState> states_;
  /// Dense channel table; ids assigned by intern_channels().
  std::vector<Channel> channels_;
  /// Per rank, per op: interned channel id (-1 for non-messaging ops and
  /// wildcard receives). Indexed by the instruction pointer.
  std::vector<std::vector<std::int32_t>> op_channel_;
  /// Channel ids addressed to (dst, tag, comm), sorted by source rank.
  std::map<WildKey, std::vector<std::int32_t>> wild_candidates_;
  std::map<WildKey, std::deque<PendingRecv>> wild_recvs_;
  std::vector<CollectiveState> collectives_;
  std::vector<std::string> sync_objects_;
  std::unordered_map<std::string, SyncObjectId> sync_index_;
  std::deque<int> runq_;
  std::vector<bool> in_queue_;
};

}  // namespace

ExecutionTrace Simulator::run(const SimProgram& program, telemetry::Tracer* tracer) const {
  if (program.num_ranks() == 0) throw std::invalid_argument("empty program");
  std::optional<telemetry::ScopedTimer> timer;
  if (tracer) timer.emplace(tracer->registry(), "sim.run");
  SimRun run(net_, program);
  ExecutionTrace trace = run.execute();
  trace.validate();
  if (tracer) {
    telemetry::Registry& reg = tracer->registry();
    reg.add("sim.ranks", static_cast<std::uint64_t>(program.num_ranks()));
    std::uint64_t ops = 0, intervals = 0;
    for (const auto& proc : program.procs) ops += proc.ops.size();
    for (const auto& rank : trace.ranks) intervals += rank.intervals.size();
    reg.add("sim.ops", ops);
    reg.add("sim.intervals", intervals);
    if (tracer->tracing()) {
      telemetry::Event begin;
      begin.kind = telemetry::EventKind::PhaseBegin;
      begin.detail = "simulate";
      tracer->emit(std::move(begin));
      telemetry::Event end;
      end.kind = telemetry::EventKind::PhaseEnd;
      end.t = trace.duration;
      end.detail = "simulate";
      tracer->emit(std::move(end));
    }
  }
  return trace;
}

}  // namespace histpc::simmpi
