// Binary columnar trace snapshots: the `histpc-trace-bin-v1` format.
//
// The JSON schema in trace_io.h stays the human-readable debug format and
// the round-trip oracle; this format exists so a trace produced once can
// be reloaded at memory-bandwidth speed. Layout (all integers and doubles
// little-endian):
//
//   magic "HPCTRB1\n" (8 bytes)
//   u32   format version (= 1)
//   payload:
//     f64 duration
//     u32 num_nodes;     per node: str name;  f64 speed[num_nodes]
//     u32 num_ranks;     i32 rank_to_node[num_ranks]; per rank: str process
//     u32 num_functions; per function: str function, str module
//     u32 num_syncs;     per object: str name
//     per rank: f64 end_time; u64 n;
//               f64 t0[n]; f64 t1[n]; u8 state[n]; i32 func[n]; i32 sync[n]
//   u32   CRC-32C (Castagnoli) of the payload
//
// Strings are length-prefixed (u32 byte count, then bytes, no terminator).
// Interval data is stored column-by-column (SoA) so readers can adopt the
// buffers wholesale — decode_trace_snapshot optionally hands them out as a
// TraceColumns for IntervalIndex to build from without per-interval work.
//
// Decoding is strict: bad magic, unknown version, a CRC mismatch, truncated
// or trailing bytes, and out-of-range enum values all throw SnapshotError.
// Callers that must never abort on corrupt input (the trace cache) catch it
// and fall back to simulating.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "simmpi/trace.h"

namespace histpc::simmpi {

inline constexpr std::string_view kTraceSnapshotMagic = "HPCTRB1\n";
inline constexpr std::uint32_t kTraceSnapshotVersion = 1;

/// Malformed snapshot bytes (truncation, bad magic/version, CRC mismatch,
/// invalid field values). The message names the offending field.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize `trace` to histpc-trace-bin-v1 bytes.
std::string encode_trace_snapshot(const ExecutionTrace& trace);

/// Parse and validate snapshot bytes. Throws SnapshotError on malformed
/// input and std::logic_error when the decoded trace fails its invariants
/// (ExecutionTrace::validate). When `columns` is non-null it receives the
/// decoded SoA interval columns (same data as the returned trace).
ExecutionTrace decode_trace_snapshot(std::string_view bytes, TraceColumns* columns = nullptr);

/// File convenience wrappers (atomic write, like the JSON ones). `offset`
/// skips a caller-owned prefix (e.g. the trace cache's key header) before
/// decoding; a file shorter than the offset is a SnapshotError.
void save_trace_snapshot(const ExecutionTrace& trace, const std::string& path);
ExecutionTrace load_trace_snapshot(const std::string& path, TraceColumns* columns = nullptr,
                                   std::size_t offset = 0);

}  // namespace histpc::simmpi
