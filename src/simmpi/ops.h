// Operation model for simulated SPMD message-passing programs.
//
// Applications are ordinary C++ functions run once per rank against a
// Recorder; the recorded op sequence is then executed by the discrete-event
// Simulator. This trace-then-simulate split is valid because the studied
// applications' control flow does not depend on message contents (the paper
// fixed iteration counts for the same reason).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace histpc::simmpi {

/// Function-table index; kNoFunc means "outside any recorded function".
using FuncId = std::int32_t;
inline constexpr FuncId kNoFunc = -1;

/// Request handle returned by nonblocking operations (per-rank sequence).
using RequestId = std::int32_t;

/// Wildcard source for receives (MPI_ANY_SOURCE). Matching is
/// deterministic: among the sends pending *at matching time*, the
/// earliest-posted unmatched one wins, ties broken by the lowest source
/// rank; specific receives on a channel take priority over wildcards.
/// Caveat: the simulator advances ranks by dataflow, not global time, so
/// the pending set can differ from a time-ordered execution's — pairing
/// may differ from real MPI, but completion times remain causally
/// consistent (a receive never completes before both it and its message
/// exist), which is all the metric layer observes.
inline constexpr int kAnySource = -1;

enum class OpKind : std::uint8_t {
  Compute,    ///< CPU burst of `seconds` (scaled by the node's speed)
  Io,         ///< I/O wait of `seconds` (not CPU-scaled)
  Send,       ///< blocking send to `peer` with `tag`/`comm`, `bytes`
  Recv,       ///< blocking receive from `peer`
  Isend,      ///< nonblocking send; completes via Wait/Waitall
  Irecv,      ///< nonblocking receive; completes via Wait/Waitall
  Wait,       ///< block until request `request` completes
  Waitall,    ///< block until every outstanding request completes
  Barrier,    ///< collective barrier
  Allreduce,  ///< collective reduction of `bytes` (modeled as barrier + tree cost)
  Bcast,      ///< collective broadcast of `bytes`
  Gather,     ///< collective gather of `bytes` per rank
  Alltoall,   ///< collective all-to-all of `bytes` per pair
  FuncEnter,  ///< push function `func` (zero simulated time)
  FuncExit,   ///< pop function (zero simulated time)
};

struct Op {
  OpKind kind = OpKind::Compute;
  double seconds = 0.0;
  int peer = -1;
  int tag = 0;
  int comm = 0;
  std::size_t bytes = 0;
  RequestId request = -1;
  FuncId func = kNoFunc;
};

/// Entry in the program-wide function table.
struct FuncInfo {
  std::string function;  ///< e.g. "exchng2"
  std::string module;    ///< e.g. "exchng2.f"

  bool operator==(const FuncInfo&) const = default;
};

const char* op_kind_name(OpKind kind);

}  // namespace histpc::simmpi
