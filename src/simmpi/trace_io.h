// Execution trace serialization.
//
// Traces round-trip through a JSON schema so performance data can be
// archived next to the experiment store or produced by other tools and
// diagnosed postmortem (history::postmortem_diagnose). The schema keeps
// interval payloads as flat arrays [t0, t1, state, func, sync] per rank to
// stay compact and fast to parse.
#pragma once

#include <string>

#include "simmpi/trace.h"
#include "util/json.h"

namespace histpc::simmpi {

util::Json trace_to_json(const ExecutionTrace& trace);

/// Parse and validate; throws util::JsonError on malformed documents —
/// messages name the schema and the offending field/array index, e.g.
/// "trace (histpc-trace-v1): ranks[0].intervals[3]: bad state 7" — and
/// std::logic_error when the decoded trace fails its invariants.
ExecutionTrace trace_from_json(const util::Json& j);

/// File convenience wrappers (atomic write).
void save_trace(const ExecutionTrace& trace, const std::string& path);
ExecutionTrace load_trace(const std::string& path);

}  // namespace histpc::simmpi
