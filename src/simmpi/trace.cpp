#include "simmpi/trace.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace histpc::simmpi {

ExecutionTrace::StateTotals ExecutionTrace::totals_for_rank(int rank) const {
  StateTotals t;
  for (const Interval& iv : ranks.at(rank).intervals) {
    switch (iv.state) {
      case IntervalState::Cpu: t.cpu += iv.duration(); break;
      case IntervalState::SyncWait: t.sync_wait += iv.duration(); break;
      case IntervalState::IoWait: t.io_wait += iv.duration(); break;
    }
  }
  return t;
}

ExecutionTrace::StateTotals ExecutionTrace::totals() const {
  StateTotals sum;
  for (int r = 0; r < num_ranks(); ++r) {
    StateTotals t = totals_for_rank(r);
    sum.cpu += t.cpu;
    sum.sync_wait += t.sync_wait;
    sum.io_wait += t.io_wait;
  }
  return sum;
}

bool TraceColumns::matches(const ExecutionTrace& trace) const {
  if (ranks.size() != trace.ranks.size()) return false;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankColumns& rc = ranks[r];
    const std::size_t n = trace.ranks[r].intervals.size();
    if (rc.t0.size() != n || rc.t1.size() != n || rc.state.size() != n ||
        rc.func.size() != n || rc.sync.size() != n)
      return false;
  }
  return true;
}

std::size_t ExecutionTrace::total_intervals() const {
  std::size_t n = 0;
  for (const RankTrace& rt : ranks) n += rt.intervals.size();
  return n;
}

void ExecutionTrace::validate() const {
  if (static_cast<int>(ranks.size()) != machine.num_ranks())
    throw std::logic_error("trace: rank count does not match machine spec");
  double max_end = 0.0;
  for (int r = 0; r < num_ranks(); ++r) {
    const RankTrace& rt = ranks[r];
    double prev_end = 0.0;
    for (const Interval& iv : rt.intervals) {
      if (iv.t1 < iv.t0)
        throw std::logic_error("trace: interval with negative duration on rank " +
                               std::to_string(r));
      if (iv.t0 + 1e-9 < prev_end)
        throw std::logic_error("trace: overlapping intervals on rank " + std::to_string(r));
      if (iv.t1 + 1e-9 < prev_end)
        throw std::logic_error("trace: interval end times not sorted on rank " +
                               std::to_string(r));
      if (iv.func != kNoFunc &&
          (iv.func < 0 || iv.func >= static_cast<FuncId>(functions.size())))
        throw std::logic_error("trace: invalid function id");
      if (iv.state == IntervalState::SyncWait) {
        if (iv.sync_object != kNoSyncObject &&
            (iv.sync_object < 0 ||
             iv.sync_object >= static_cast<SyncObjectId>(sync_objects.size())))
          throw std::logic_error("trace: invalid sync object id");
      } else if (iv.sync_object != kNoSyncObject) {
        throw std::logic_error("trace: non-wait interval carries a sync object");
      }
      prev_end = iv.t1;
    }
    if (prev_end > rt.end_time + 1e-9)
      throw std::logic_error("trace: intervals extend past rank end time");
    max_end = std::max(max_end, rt.end_time);
  }
  if (std::abs(max_end - duration) > 1e-6)
    throw std::logic_error("trace: duration does not match max rank end time");
}

std::string ExecutionTrace::summary() const {
  std::ostringstream os;
  os << "trace: " << num_ranks() << " ranks, duration " << util::fmt_double(duration, 2)
     << "s\n";
  for (int r = 0; r < num_ranks(); ++r) {
    StateTotals t = totals_for_rank(r);
    double denom = ranks[r].end_time > 0 ? ranks[r].end_time : 1.0;
    os << "  rank " << r << " (" << machine.process_names[r] << " on "
       << machine.node_names[machine.rank_to_node[r]] << "): cpu "
       << util::fmt_percent(t.cpu / denom) << ", sync " << util::fmt_percent(t.sync_wait / denom)
       << ", io " << util::fmt_percent(t.io_wait / denom) << ", end "
       << util::fmt_double(ranks[r].end_time, 2) << "s\n";
  }
  return os.str();
}

}  // namespace histpc::simmpi
