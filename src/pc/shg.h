// The Search History Graph (SHG): a DAG whose nodes are the
// (hypothesis : focus) pairs the Performance Consultant has considered.
// Different refinement paths can reach the same pair, so nodes are deduped
// by (hypothesis, canonical focus name) and may have multiple parents.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "instr/instrumentation.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "resources/focus.h"
#include "resources/focus_table.h"

namespace histpc::pc {

enum class NodeStatus {
  Pending,  ///< created, waiting for instrumentation budget
  Active,   ///< instrumented, collecting data
  True,     ///< concluded a bottleneck
  False,    ///< concluded not a bottleneck
  Pruned,   ///< excluded by a pruning directive (never instrumented)
  NeverRan, ///< still Pending/Active when the program ended
};

const char* node_status_name(NodeStatus s);

struct ShgNode {
  int id = -1;
  int hyp = -1;  ///< index into the HypothesisSet; -1 for the virtual root
  /// String mode only (interned mode leaves it empty and carries `fid`).
  resources::Focus focus;
  /// Canonical name in string mode (and the root's label in both modes);
  /// interned mode resolves names lazily — use
  /// SearchHistoryGraph::focus_name(id), not this field.
  std::string focus_name;
  /// Interned mode only; kNoFocus in string mode and for the virtual root.
  resources::FocusId fid = resources::kNoFocus;
  NodeStatus status = NodeStatus::Pending;
  Priority priority = Priority::Medium;
  bool persistent = false;

  instr::ProbeId probe = instr::kNoProbe;
  double enqueue_time = 0.0;
  double activate_time = -1.0;
  double conclude_time = -1.0;   ///< first conclusion
  double first_true_time = -1.0; ///< first time the node tested true
  double fraction = 0.0;         ///< measured fraction at (last) conclusion

  std::vector<int> parents;
  std::vector<int> children;
};

class SearchHistoryGraph {
 public:
  /// With a null `foci` the graph runs in string mode: nodes keyed by
  /// (hypothesis, canonical focus name), names materialized eagerly — the
  /// property-tested oracle. With a table it runs in interned mode: nodes
  /// keyed by (hypothesis, FocusId), names resolved lazily through the
  /// table. The table must outlive the graph.
  explicit SearchHistoryGraph(const HypothesisSet& hyps,
                              resources::FocusTable* foci = nullptr);

  /// The virtual (TopLevelHypothesis : WholeProgram) root, id 0.
  int root() const { return 0; }

  const resources::FocusTable* foci() const { return foci_; }

  /// Find a node by (hypothesis index, canonical focus name); -1 if absent.
  /// Works in both modes (interned mode parses the name through the table).
  int find(int hyp, const std::string& focus_name) const;

  /// Find a node by (hypothesis index, focus id); interned mode only.
  int find(int hyp, resources::FocusId fid) const;

  /// Create (or return the existing) node and link it under `parent`.
  /// Works in both modes (interned mode interns the focus first).
  int add_node(int hyp, resources::Focus focus, int parent, double now);

  /// Id twin; interned mode only. No name is materialized.
  int add_node(int hyp, resources::FocusId fid, int parent, double now);

  /// Canonical focus name of a node, resolved per mode (string mode: the
  /// stored name; interned mode: the table's memoized name).
  const std::string& focus_name(int id) const;

  ShgNode& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  const ShgNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const { return nodes_.size(); }

  const HypothesisSet& hypotheses() const { return hyps_; }

  /// Hypothesis name of a node ("TopLevelHypothesis" for the root).
  std::string hypothesis_name(int id) const;

  /// Counts by status (excluding the virtual root).
  std::size_t count(NodeStatus status) const;

  /// Paradyn-style list-box rendering (paper Fig. 2): indentation by
  /// refinement depth, one line per node with its status.
  std::string render() const;

  /// Graphviz export: one node per (hypothesis : focus) pair, colored by
  /// status like Paradyn's display (true dark, false light), every
  /// refinement edge included — unlike render(), converging DAG paths are
  /// fully visible. Feed to `dot -Tsvg`.
  std::string to_dot() const;

 private:
  /// Dedup key in interned mode: hypothesis index packed with the FocusId.
  static std::uint64_t id_key(int hyp, resources::FocusId fid) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hyp)) << 32) |
           static_cast<std::uint32_t>(fid);
  }
  int link_existing(int existing, int parent);
  int append_node(ShgNode&& n, int parent);

  const HypothesisSet& hyps_;
  resources::FocusTable* foci_ = nullptr;  ///< null = string mode
  std::vector<ShgNode> nodes_;
  std::map<std::pair<int, std::string>, int> index_;        ///< string mode
  std::unordered_map<std::uint64_t, int> id_index_;         ///< interned mode
};

}  // namespace histpc::pc
