// The Search History Graph (SHG): a DAG whose nodes are the
// (hypothesis : focus) pairs the Performance Consultant has considered.
// Different refinement paths can reach the same pair, so nodes are deduped
// by (hypothesis, canonical focus name) and may have multiple parents.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "instr/instrumentation.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "resources/focus.h"

namespace histpc::pc {

enum class NodeStatus {
  Pending,  ///< created, waiting for instrumentation budget
  Active,   ///< instrumented, collecting data
  True,     ///< concluded a bottleneck
  False,    ///< concluded not a bottleneck
  Pruned,   ///< excluded by a pruning directive (never instrumented)
  NeverRan, ///< still Pending/Active when the program ended
};

const char* node_status_name(NodeStatus s);

struct ShgNode {
  int id = -1;
  int hyp = -1;  ///< index into the HypothesisSet; -1 for the virtual root
  resources::Focus focus;
  std::string focus_name;
  NodeStatus status = NodeStatus::Pending;
  Priority priority = Priority::Medium;
  bool persistent = false;

  instr::ProbeId probe = instr::kNoProbe;
  double enqueue_time = 0.0;
  double activate_time = -1.0;
  double conclude_time = -1.0;   ///< first conclusion
  double first_true_time = -1.0; ///< first time the node tested true
  double fraction = 0.0;         ///< measured fraction at (last) conclusion

  std::vector<int> parents;
  std::vector<int> children;
};

class SearchHistoryGraph {
 public:
  explicit SearchHistoryGraph(const HypothesisSet& hyps);

  /// The virtual (TopLevelHypothesis : WholeProgram) root, id 0.
  int root() const { return 0; }

  /// Find a node by (hypothesis index, canonical focus name); -1 if absent.
  int find(int hyp, const std::string& focus_name) const;

  /// Create (or return the existing) node and link it under `parent`.
  int add_node(int hyp, resources::Focus focus, int parent, double now);

  ShgNode& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  const ShgNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const { return nodes_.size(); }

  const HypothesisSet& hypotheses() const { return hyps_; }

  /// Hypothesis name of a node ("TopLevelHypothesis" for the root).
  std::string hypothesis_name(int id) const;

  /// Counts by status (excluding the virtual root).
  std::size_t count(NodeStatus status) const;

  /// Paradyn-style list-box rendering (paper Fig. 2): indentation by
  /// refinement depth, one line per node with its status.
  std::string render() const;

  /// Graphviz export: one node per (hypothesis : focus) pair, colored by
  /// status like Paradyn's display (true dark, false light), every
  /// refinement edge included — unlike render(), converging DAG paths are
  /// fully visible. Feed to `dot -Tsvg`.
  std::string to_dot() const;

 private:
  const HypothesisSet& hyps_;
  std::vector<ShgNode> nodes_;
  std::map<std::pair<int, std::string>, int> index_;
};

}  // namespace histpc::pc
