#include "pc/shg.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace histpc::pc {

const char* node_status_name(NodeStatus s) {
  switch (s) {
    case NodeStatus::Pending: return "pending";
    case NodeStatus::Active: return "active";
    case NodeStatus::True: return "true";
    case NodeStatus::False: return "false";
    case NodeStatus::Pruned: return "pruned";
    case NodeStatus::NeverRan: return "never-ran";
  }
  return "?";
}

SearchHistoryGraph::SearchHistoryGraph(const HypothesisSet& hyps,
                                       resources::FocusTable* foci)
    : hyps_(hyps), foci_(foci) {
  ShgNode root;
  root.id = 0;
  root.hyp = -1;
  root.focus_name = "<WholeProgram>";
  root.status = NodeStatus::True;  // the virtual root is trivially true
  root.conclude_time = 0.0;
  root.first_true_time = 0.0;
  nodes_.push_back(std::move(root));
}

int SearchHistoryGraph::find(int hyp, const std::string& focus_name) const {
  if (foci_) {
    auto fid = foci_->parse(focus_name);
    return fid ? find(hyp, *fid) : -1;
  }
  auto it = index_.find({hyp, focus_name});
  return it == index_.end() ? -1 : it->second;
}

int SearchHistoryGraph::find(int hyp, resources::FocusId fid) const {
  auto it = id_index_.find(id_key(hyp, fid));
  return it == id_index_.end() ? -1 : it->second;
}

const std::string& SearchHistoryGraph::focus_name(int id) const {
  const ShgNode& n = node(id);
  if (foci_ && n.fid != resources::kNoFocus) return foci_->name(n.fid);
  return n.focus_name;
}

int SearchHistoryGraph::link_existing(int existing, int parent) {
  // Converging refinement path: just add the edge (DAG property).
  ShgNode& n = nodes_[static_cast<std::size_t>(existing)];
  if (std::find(n.parents.begin(), n.parents.end(), parent) == n.parents.end()) {
    n.parents.push_back(parent);
    nodes_[static_cast<std::size_t>(parent)].children.push_back(existing);
  }
  return existing;
}

int SearchHistoryGraph::append_node(ShgNode&& n, int parent) {
  n.id = static_cast<int>(nodes_.size());
  n.parents.push_back(parent);
  nodes_.push_back(std::move(n));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(static_cast<int>(nodes_.size()) - 1);
  return static_cast<int>(nodes_.size()) - 1;
}

int SearchHistoryGraph::add_node(int hyp, resources::Focus focus, int parent, double now) {
  if (foci_) return add_node(hyp, foci_->intern(focus), parent, now);
  std::string name = focus.name();
  if (int existing = find(hyp, name); existing >= 0) return link_existing(existing, parent);
  ShgNode n;
  n.hyp = hyp;
  n.focus = std::move(focus);
  n.focus_name = std::move(name);
  n.enqueue_time = now;
  index_.emplace(std::make_pair(hyp, n.focus_name), static_cast<int>(nodes_.size()));
  return append_node(std::move(n), parent);
}

int SearchHistoryGraph::add_node(int hyp, resources::FocusId fid, int parent, double now) {
  if (int existing = find(hyp, fid); existing >= 0) return link_existing(existing, parent);
  ShgNode n;
  n.hyp = hyp;
  n.fid = fid;
  n.enqueue_time = now;
  id_index_.emplace(id_key(hyp, fid), static_cast<int>(nodes_.size()));
  return append_node(std::move(n), parent);
}

std::string SearchHistoryGraph::hypothesis_name(int id) const {
  const ShgNode& n = node(id);
  if (n.hyp < 0) return std::string(kTopLevelHypothesisName);
  return hyps_.at(n.hyp).name;
}

std::size_t SearchHistoryGraph::count(NodeStatus status) const {
  std::size_t c = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].status == status) ++c;
  return c;
}

std::string SearchHistoryGraph::to_dot() const {
  auto color_of = [](NodeStatus s) {
    switch (s) {
      case NodeStatus::True: return "#5aa469";     // tested true: dark green
      case NodeStatus::False: return "#d3d3d3";    // tested false: light grey
      case NodeStatus::Pruned: return "#f2c9c9";
      case NodeStatus::NeverRan: return "#ffffff";
      default: return "#fff3c4";                   // pending/active: amber
    }
  };
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream os;
  os << "digraph shg {\n  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ShgNode& n = nodes_[i];
    std::string label = i == 0 ? std::string(kTopLevelHypothesisName)
                               : hypothesis_name(static_cast<int>(i)) + "\\n" +
                                     escape(focus_name(static_cast<int>(i)));
    if (n.conclude_time >= 0 && i != 0)
      label += "\\n" + std::string(util::fmt_percent(n.fraction)) + " @" +
               util::fmt_double(n.conclude_time, 1) + "s";
    os << "  n" << i << " [label=\"" << label << "\", fillcolor=\"" << color_of(n.status)
       << "\"];\n";
  }
  for (const ShgNode& n : nodes_)
    for (int child : n.children) os << "  n" << n.id << " -> n" << child << ";\n";
  os << "}\n";
  return os.str();
}

std::string SearchHistoryGraph::render() const {
  std::ostringstream os;
  // DAG nodes can have several parents; render under the first parent only
  // (Paradyn's list box does the same and marks the node elsewhere).
  std::vector<bool> rendered(nodes_.size(), false);
  auto emit = [&](auto&& self, int id, int depth) -> void {
    const ShgNode& n = node(id);
    for (int i = 0; i < depth; ++i) os << "  ";
    if (id == root()) {
      os << kTopLevelHypothesisName;
    } else {
      os << hypothesis_name(id) << " : " << focus_name(id);
    }
    os << "  [" << node_status_name(n.status);
    if (n.status == NodeStatus::True || n.status == NodeStatus::False)
      os << " " << util::fmt_percent(n.fraction) << " @" << util::fmt_double(n.conclude_time, 1)
         << "s";
    os << "]";
    if (rendered[static_cast<std::size_t>(id)]) {
      os << " (see above)\n";
      return;
    }
    rendered[static_cast<std::size_t>(id)] = true;
    os << "\n";
    for (int child : n.children) {
      if (node(child).parents.front() == id || !rendered[static_cast<std::size_t>(child)])
        self(self, child, depth + 1);
    }
  };
  emit(emit, root(), 0);
  return os.str();
}

}  // namespace histpc::pc
