#include "pc/speculation.h"

#include <algorithm>
#include <cstring>

namespace histpc::pc {

SpeculationCache::SpeculationCache(const metrics::TraceView& view,
                                   util::ThreadPool& pool, Params params)
    : view_(view), pool_(pool), params_(params) {}

SpeculationCache::Key SpeculationCache::make_key(metrics::MetricKind metric,
                                                 resources::FocusId fid,
                                                 double activate_time) {
  // Exact-bits keying: the prediction is only valid if activation happens
  // at the tick it was computed for, and the loop's tick values are exact
  // doubles from a shared recurrence — no epsilon needed or wanted.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(activate_time));
  std::memcpy(&bits, &activate_time, sizeof(bits));
  return Key{static_cast<int>(metric), fid, bits};
}

bool SpeculationCache::contains(metrics::MetricKind metric, resources::FocusId fid,
                                double activate_time) const {
  return entries_.count(make_key(metric, fid, activate_time)) > 0;
}

void SpeculationCache::launch_wave(std::vector<Candidate> candidates,
                                   double activate_time) {
  if (candidates.empty() || finished_) return;
  // Chunk the wave so each worker amortizes one trace walk over several
  // slots, the same trick the live batch plays.
  const std::size_t workers = static_cast<std::size_t>(pool_.size());
  const std::size_t chunk =
      (candidates.size() + workers - 1) / std::max<std::size_t>(1, workers);
  for (std::size_t begin = 0; begin < candidates.size(); begin += chunk) {
    const std::size_t end = std::min(candidates.size(), begin + chunk);
    std::vector<metrics::SpecGroup::Request> requests;
    requests.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      requests.push_back({candidates[i].metric, candidates[i].filter});
    auto group = std::make_shared<metrics::SpecGroup>(
        std::move(requests), activate_time, params_.insertion_latency,
        params_.min_observation, params_.tick, params_.horizon);
    const std::size_t gi = groups_.size();
    groups_.push_back(group);
    claimed_.push_back(0);
    for (std::size_t i = begin; i < end; ++i)
      entries_[make_key(candidates[i].metric, candidates[i].fid, activate_time)] =
          Entry{gi, i - begin};
    stats_.launched += end - begin;
    ++stats_.groups;
    pool_.submit([group, view = &view_] { group->run(*view); });
  }
}

std::optional<metrics::SpecHandle> SpeculationCache::claim(metrics::MetricKind metric,
                                                           resources::FocusId fid,
                                                           double now) {
  const auto it = entries_.find(make_key(metric, fid, now));
  if (it == entries_.end()) return std::nullopt;
  const Entry e = it->second;
  entries_.erase(it);
  ++claimed_[e.group];
  ++stats_.hits;
  return metrics::SpecHandle{groups_[e.group], e.slot};
}

void SpeculationCache::invalidate_stale(double now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::shared_ptr<metrics::SpecGroup>& g = groups_[it->second.group];
    if (g->activate_time() <= now) {
      // The assumed activation tick has passed; the key can never be
      // claimed again. Cancelling is only useful (and only safe to treat
      // as skippable) when nothing from the group was claimed.
      if (claimed_[it->second.group] == 0) g->cancel();
      ++stats_.discarded;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SpeculationCache::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& [key, e] : entries_) {
    if (claimed_[e.group] == 0) groups_[e.group]->cancel();
    ++stats_.discarded;
  }
  entries_.clear();
  // Wait for in-flight groups so eval_ns is final (cancelled unstarted
  // groups return immediately).
  pool_.wait_idle();
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    stats_.eval_ns += groups_[gi]->eval_ns();
    if (claimed_[gi] == 0) stats_.wasted_ns += groups_[gi]->eval_ns();
  }
}

}  // namespace histpc::pc
