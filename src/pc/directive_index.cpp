#include "pc/directive_index.h"

#include <algorithm>

#include "pc/hypothesis.h"

namespace histpc::pc {

void PrefixSet::insert(std::string prefix) {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), prefix);
  if (it != sorted_.end() && *it == prefix) return;
  sorted_.insert(it, std::move(prefix));
}

bool PrefixSet::contains_prefix_of(std::string_view name) const {
  if (sorted_.empty()) return false;
  // A path-prefix of `name` is `name` itself or `name` cut at a '/'
  // boundary (is_path_prefix: equal, or followed by '/'). Successive
  // rfind('/') truncations enumerate exactly those candidates, longest
  // first, down to the empty string (which path-prefixes any "/..." name).
  std::string_view candidate = name;
  for (;;) {
    if (std::binary_search(sorted_.begin(), sorted_.end(), candidate)) return true;
    if (candidate.empty()) return false;
    const auto pos = candidate.rfind('/');
    if (pos == std::string_view::npos) return false;
    candidate = candidate.substr(0, pos);
  }
}

std::string DirectiveIndex::pair_key(std::string_view hypothesis, std::string_view focus) {
  // '\x1f' cannot appear in either token: both come from whitespace-split
  // directive lines or canonical focus names.
  std::string key;
  key.reserve(hypothesis.size() + 1 + focus.size());
  key.append(hypothesis);
  key.push_back('\x1f');
  key.append(focus);
  return key;
}

std::string_view DirectiveIndex::pair_key_view(std::string_view hypothesis,
                                               std::string_view focus) {
  // Lookup-side twin of pair_key: the transparent hash functors let the
  // maps probe with a string_view, so queries reuse one buffer instead of
  // allocating a key per candidate on the consultant's hot path.
  thread_local std::string buf;
  buf.assign(hypothesis);
  buf.push_back('\x1f');
  buf.append(focus);
  return buf;
}

DirectiveIndex::DirectiveIndex(const DirectiveSet& set) {
  for (const PruneDirective& p : set.prunes) {
    if (p.hypothesis == kAnyHypothesis)
      subtree_any_.insert(p.resource_prefix);
    else
      subtree_by_hyp_[p.hypothesis].insert(p.resource_prefix);
  }
  for (const PairPruneDirective& p : set.pair_prunes) {
    if (p.hypothesis == kAnyHypothesis)
      pair_prunes_any_.insert(p.focus);
    else
      pair_prunes_.insert(pair_key(p.hypothesis, p.focus));
  }
  for (const PriorityDirective& p : set.priorities)
    priorities_.emplace(pair_key(p.hypothesis, p.focus), p.priority);
  for (const ThresholdDirective& t : set.thresholds) {
    thresholds_.emplace(t.hypothesis, t.threshold);
    if (t.hypothesis == kAnyHypothesis) threshold_any_ = t.threshold;
  }
}

DirectiveSet::PruneKind DirectiveIndex::prune_match(std::string_view hypothesis,
                                                    const resources::Focus& focus) const {
  const PrefixSet* hyp_bucket = nullptr;
  if (!subtree_by_hyp_.empty()) {
    auto it = subtree_by_hyp_.find(hypothesis);
    if (it != subtree_by_hyp_.end()) hyp_bucket = &it->second;
  }
  if (!subtree_any_.empty() || hyp_bucket) {
    for (const std::string& part : focus.parts()) {
      if (!is_constrained_part(part)) continue;  // a root part is never pruned
      if (subtree_any_.contains_prefix_of(part)) return DirectiveSet::PruneKind::Subtree;
      if (hyp_bucket && hyp_bucket->contains_prefix_of(part))
        return DirectiveSet::PruneKind::Subtree;
    }
  }
  if (!pair_prunes_.empty() || !pair_prunes_any_.empty()) {
    const std::string name = focus.name();
    if (pair_prunes_any_.find(name) != pair_prunes_any_.end())
      return DirectiveSet::PruneKind::Pair;
    if (!pair_prunes_.empty() &&
        pair_prunes_.find(pair_key_view(hypothesis, name)) != pair_prunes_.end())
      return DirectiveSet::PruneKind::Pair;
  }
  return DirectiveSet::PruneKind::None;
}

Priority DirectiveIndex::priority_of(std::string_view hypothesis,
                                     std::string_view focus_name) const {
  if (priorities_.empty()) return Priority::Medium;
  auto it = priorities_.find(pair_key_view(hypothesis, focus_name));
  return it == priorities_.end() ? Priority::Medium : it->second;
}

std::optional<double> DirectiveIndex::threshold_for(std::string_view hypothesis) const {
  if (auto it = thresholds_.find(hypothesis); it != thresholds_.end()) return it->second;
  return threshold_any_;
}

void DirectiveIndex::bind(resources::FocusTable& table, const HypothesisSet& hyps) {
  table_ = &table;
  const std::size_t nh = table.num_hierarchies();

  hyp_names_.clear();
  for (const Hypothesis& h : hyps.all()) hyp_names_.push_back(h.name);

  // Subtree prunes -> per-hierarchy coverage bitmaps. covered[rid] is the
  // oracle's per-part test evaluated once per resource: every non-root
  // full name is a constrained part, and contains_prefix_of already walks
  // the ancestor truncations. Roots stay 0 (never pruned).
  auto build_cover = [&](const PrefixSet& set) {
    std::vector<std::vector<std::uint8_t>> cover;
    if (set.empty()) return cover;
    cover.resize(nh);
    for (std::size_t h = 0; h < nh; ++h) {
      const resources::ResourceHierarchy& tree = table.hierarchy(h);
      cover[h].assign(tree.size(), 0);
      for (std::size_t rid = 1; rid < tree.size(); ++rid)
        cover[h][rid] = set.contains_prefix_of(
                            tree.node(static_cast<resources::ResourceId>(rid)).full_name)
                            ? 1
                            : 0;
    }
    return cover;
  };
  any_cover_ = build_cover(subtree_any_);
  hyp_cover_.assign(hyps.size(), {});
  for (std::size_t i = 0; i < hyps.size(); ++i)
    if (auto it = subtree_by_hyp_.find(hyp_names_[i]); it != subtree_by_hyp_.end())
      hyp_cover_[i] = build_cover(it->second);

  // A directive focus string matches a real focus's canonical name iff it
  // parses (with resource validation) and re-canonicalizes to itself —
  // name() is injective, so anything else can never equal a real node's
  // name and is dropped from the id maps (the string maps keep it for the
  // oracle and for load-time text queries).
  auto canonical_id = [&](std::string_view focus) -> std::optional<resources::FocusId> {
    auto fid = table.parse(focus);
    if (!fid) return std::nullopt;
    if (table.to_focus(*fid).name() != focus) return std::nullopt;
    return fid;
  };
  auto split_pair_key = [](std::string_view key) {
    const auto sep = key.find('\x1f');
    return std::make_pair(key.substr(0, sep), key.substr(sep + 1));
  };

  id_pair_prunes_.clear();
  id_pair_prunes_any_.clear();
  for (const std::string& focus : pair_prunes_any_)
    if (auto fid = canonical_id(focus)) id_pair_prunes_any_.insert(*fid);
  for (const std::string& key : pair_prunes_) {
    auto [hyp_name, focus] = split_pair_key(key);
    auto hyp = hyps.index_of(hyp_name);
    if (!hyp) continue;
    if (auto fid = canonical_id(focus)) id_pair_prunes_.insert(id_pair_key(*hyp, *fid));
  }
  id_priorities_.clear();
  for (const auto& [key, priority] : priorities_) {
    auto [hyp_name, focus] = split_pair_key(key);
    auto hyp = hyps.index_of(hyp_name);
    if (!hyp) continue;
    if (auto fid = canonical_id(focus))
      id_priorities_.emplace(id_pair_key(*hyp, *fid), priority);
  }

  threshold_by_hyp_.clear();
  for (const std::string& name : hyp_names_)
    threshold_by_hyp_.push_back(threshold_for(name));
}

DirectiveSet::PruneKind DirectiveIndex::prune_match(int hyp,
                                                    resources::FocusId focus) const {
  const auto& hyp_cov = hyp_cover_.at(static_cast<std::size_t>(hyp));
  if (!any_cover_.empty() || !hyp_cov.empty()) {
    for (std::size_t h = 0; h < table_->num_hierarchies(); ++h) {
      const resources::PartId pid = table_->part(focus, h);
      if (pid == 0) continue;  // a root part is never pruned
      const resources::ResourceId rid = resources::FocusTable::part_resource(pid);
      if (rid == resources::kNoResource) {
        // Foreign part: fall back to the oracle's string test.
        const std::string& pname = table_->part_name(h, pid);
        if (!is_constrained_part(pname)) continue;
        if (subtree_any_.contains_prefix_of(pname)) return DirectiveSet::PruneKind::Subtree;
        if (auto it = subtree_by_hyp_.find(hyp_names_.at(static_cast<std::size_t>(hyp)));
            it != subtree_by_hyp_.end() && it->second.contains_prefix_of(pname))
          return DirectiveSet::PruneKind::Subtree;
        continue;
      }
      const auto urid = static_cast<std::size_t>(rid);
      if (!any_cover_.empty() && any_cover_[h][urid]) return DirectiveSet::PruneKind::Subtree;
      if (!hyp_cov.empty() && hyp_cov[h][urid]) return DirectiveSet::PruneKind::Subtree;
    }
  }
  if (!id_pair_prunes_any_.empty() &&
      id_pair_prunes_any_.find(focus) != id_pair_prunes_any_.end())
    return DirectiveSet::PruneKind::Pair;
  if (!id_pair_prunes_.empty() &&
      id_pair_prunes_.find(id_pair_key(hyp, focus)) != id_pair_prunes_.end())
    return DirectiveSet::PruneKind::Pair;
  return DirectiveSet::PruneKind::None;
}

Priority DirectiveIndex::priority_of(int hyp, resources::FocusId focus) const {
  if (id_priorities_.empty()) return Priority::Medium;
  auto it = id_priorities_.find(id_pair_key(hyp, focus));
  return it == id_priorities_.end() ? Priority::Medium : it->second;
}

}  // namespace histpc::pc
