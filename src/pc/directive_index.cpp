#include "pc/directive_index.h"

#include <algorithm>

#include "pc/hypothesis.h"

namespace histpc::pc {

void PrefixSet::insert(std::string prefix) {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), prefix);
  if (it != sorted_.end() && *it == prefix) return;
  sorted_.insert(it, std::move(prefix));
}

bool PrefixSet::contains_prefix_of(std::string_view name) const {
  if (sorted_.empty()) return false;
  // A path-prefix of `name` is `name` itself or `name` cut at a '/'
  // boundary (is_path_prefix: equal, or followed by '/'). Successive
  // rfind('/') truncations enumerate exactly those candidates, longest
  // first, down to the empty string (which path-prefixes any "/..." name).
  std::string_view candidate = name;
  for (;;) {
    if (std::binary_search(sorted_.begin(), sorted_.end(), candidate)) return true;
    if (candidate.empty()) return false;
    const auto pos = candidate.rfind('/');
    if (pos == std::string_view::npos) return false;
    candidate = candidate.substr(0, pos);
  }
}

std::string DirectiveIndex::pair_key(std::string_view hypothesis, std::string_view focus) {
  // '\x1f' cannot appear in either token: both come from whitespace-split
  // directive lines or canonical focus names.
  std::string key;
  key.reserve(hypothesis.size() + 1 + focus.size());
  key.append(hypothesis);
  key.push_back('\x1f');
  key.append(focus);
  return key;
}

std::string_view DirectiveIndex::pair_key_view(std::string_view hypothesis,
                                               std::string_view focus) {
  // Lookup-side twin of pair_key: the transparent hash functors let the
  // maps probe with a string_view, so queries reuse one buffer instead of
  // allocating a key per candidate on the consultant's hot path.
  thread_local std::string buf;
  buf.assign(hypothesis);
  buf.push_back('\x1f');
  buf.append(focus);
  return buf;
}

DirectiveIndex::DirectiveIndex(const DirectiveSet& set) {
  for (const PruneDirective& p : set.prunes) {
    if (p.hypothesis == kAnyHypothesis)
      subtree_any_.insert(p.resource_prefix);
    else
      subtree_by_hyp_[p.hypothesis].insert(p.resource_prefix);
  }
  for (const PairPruneDirective& p : set.pair_prunes) {
    if (p.hypothesis == kAnyHypothesis)
      pair_prunes_any_.insert(p.focus);
    else
      pair_prunes_.insert(pair_key(p.hypothesis, p.focus));
  }
  for (const PriorityDirective& p : set.priorities)
    priorities_.emplace(pair_key(p.hypothesis, p.focus), p.priority);
  for (const ThresholdDirective& t : set.thresholds) {
    thresholds_.emplace(t.hypothesis, t.threshold);
    if (t.hypothesis == kAnyHypothesis) threshold_any_ = t.threshold;
  }
}

DirectiveSet::PruneKind DirectiveIndex::prune_match(std::string_view hypothesis,
                                                    const resources::Focus& focus) const {
  const PrefixSet* hyp_bucket = nullptr;
  if (!subtree_by_hyp_.empty()) {
    auto it = subtree_by_hyp_.find(hypothesis);
    if (it != subtree_by_hyp_.end()) hyp_bucket = &it->second;
  }
  if (!subtree_any_.empty() || hyp_bucket) {
    for (const std::string& part : focus.parts()) {
      if (!is_constrained_part(part)) continue;  // a root part is never pruned
      if (subtree_any_.contains_prefix_of(part)) return DirectiveSet::PruneKind::Subtree;
      if (hyp_bucket && hyp_bucket->contains_prefix_of(part))
        return DirectiveSet::PruneKind::Subtree;
    }
  }
  if (!pair_prunes_.empty() || !pair_prunes_any_.empty()) {
    const std::string name = focus.name();
    if (pair_prunes_any_.find(name) != pair_prunes_any_.end())
      return DirectiveSet::PruneKind::Pair;
    if (!pair_prunes_.empty() &&
        pair_prunes_.find(pair_key_view(hypothesis, name)) != pair_prunes_.end())
      return DirectiveSet::PruneKind::Pair;
  }
  return DirectiveSet::PruneKind::None;
}

Priority DirectiveIndex::priority_of(std::string_view hypothesis,
                                     std::string_view focus_name) const {
  if (priorities_.empty()) return Priority::Medium;
  auto it = priorities_.find(pair_key_view(hypothesis, focus_name));
  return it == priorities_.end() ? Priority::Medium : it->second;
}

std::optional<double> DirectiveIndex::threshold_for(std::string_view hypothesis) const {
  if (auto it = thresholds_.find(hypothesis); it != thresholds_.end()) return it->second;
  return threshold_any_;
}

}  // namespace histpc::pc
