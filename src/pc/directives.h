// Search directives: the paper's mechanism for feeding historical knowledge
// into the Performance Consultant.
//
//  * prune      — ignore a resource subtree for a hypothesis ("*" = all)
//  * priority   — order testing of a (hypothesis : focus) pair; high pairs
//                 are instrumented at search start and persist all run
//  * threshold  — hypothesis test level (fraction of execution time)
//  * map        — resource-name equivalence between executions, applied to
//                 the directive list before the search starts
//
// Text format, one directive per line ('#' comments):
//   prune * /Machine
//   prune CPUbound /SyncObject
//   priority ExcessiveSyncWaitingTime </Code/exchng2.f,/Machine,/Process,/SyncObject> high
//   threshold ExcessiveSyncWaitingTime 0.12
//   map /Code/oned.f /Code/onednb.f
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "resources/focus.h"

namespace histpc::pc {

/// A focus part constrains below its hierarchy root iff it has a second
/// '/'. Root parts ("/Code", "/Machine") are never pruned: a prune names a
/// subtree *within* a hierarchy, and matching the bare root would cut the
/// entire search. Shared by the scan (prune_match) and the DirectiveIndex.
inline bool is_constrained_part(std::string_view part) {
  return part.find('/', 1) != std::string_view::npos;
}

enum class Priority { Low = 0, Medium = 1, High = 2 };

const char* priority_name(Priority p);
std::optional<Priority> priority_from_name(std::string_view name);

struct PruneDirective {
  std::string hypothesis;       ///< hypothesis name or "*"
  std::string resource_prefix;  ///< e.g. "/SyncObject" or "/Code/oned.f/diff"

  bool operator==(const PruneDirective&) const = default;
};

/// Pair-level prune: skip one exact (hypothesis : focus) test — used for
/// pairs that tested false in previous executions. Text form:
///   prunepair <hypothesis> <focus>
struct PairPruneDirective {
  std::string hypothesis;
  std::string focus;  ///< canonical focus name "<...>"

  bool operator==(const PairPruneDirective&) const = default;
};

struct PriorityDirective {
  std::string hypothesis;
  std::string focus;  ///< canonical focus name "<...>"
  Priority priority = Priority::Medium;

  bool operator==(const PriorityDirective&) const = default;
};

struct ThresholdDirective {
  std::string hypothesis;  ///< hypothesis name or "*"
  double threshold = 0.20;

  bool operator==(const ThresholdDirective&) const = default;
};

struct MapDirective {
  std::string from;
  std::string to;

  bool operator==(const MapDirective&) const = default;
};

class DirectiveSet {
 public:
  std::vector<PruneDirective> prunes;
  std::vector<PairPruneDirective> pair_prunes;
  std::vector<PriorityDirective> priorities;
  std::vector<ThresholdDirective> thresholds;
  std::vector<MapDirective> maps;

  bool empty() const {
    return prunes.empty() && pair_prunes.empty() && priorities.empty() &&
           thresholds.empty() && maps.empty();
  }

  /// Which directive kind (if any) excludes (hypothesis : focus). A focus
  /// is subtree-pruned when any of its parts constrains below a hierarchy
  /// root and lies within a pruned prefix for that hypothesis, and
  /// pair-pruned when the exact pair is listed. Subtree prunes are checked
  /// first, so a pair covered by both reports Subtree.
  enum class PruneKind { None, Subtree, Pair };
  PruneKind prune_match(std::string_view hypothesis, const resources::Focus& focus) const;

  /// Is (hypothesis : focus) excluded by any prune directive?
  bool is_pruned(std::string_view hypothesis, const resources::Focus& focus) const {
    return prune_match(hypothesis, focus) != PruneKind::None;
  }

  /// Priority of (hypothesis : focus name); Medium when no directive
  /// matches.
  Priority priority_of(std::string_view hypothesis, std::string_view focus_name) const;

  /// Threshold override for a hypothesis, if any (specific name beats "*").
  std::optional<double> threshold_for(std::string_view hypothesis) const;

  /// Rewrite resource names in prunes and priority foci using the map
  /// directives: any component with a mapped prefix is rewritten. The
  /// paper applies mappings to the extracted directive list before the
  /// Performance Consultant reads it; call this once before the search.
  void apply_mappings();

  /// Append all directives from `other`, then resolve duplicate
  /// thresholds (resolve_threshold_conflicts).
  void merge(const DirectiveSet& other);

  /// Collapse duplicate threshold directives for the same hypothesis into
  /// one entry, keeping the *maximum* value (the conservative choice: a
  /// higher threshold reports fewer, stronger bottlenecks) and logging a
  /// Warn line when the duplicates disagree. Without this, threshold_for's
  /// first-match rule silently lets whichever input happened to come first
  /// win when sets are merged or combined. First-occurrence order is
  /// preserved, so the wildcard-fallback position is unchanged.
  void resolve_threshold_conflicts();

  /// Parse the text format; throws std::invalid_argument with a line
  /// number on malformed input.
  static DirectiveSet parse(std::string_view text);
  std::string serialize() const;

  /// Convenience: parse from / save to a file.
  static DirectiveSet load(const std::string& path);
  void save(const std::string& path) const;

  bool operator==(const DirectiveSet&) const = default;
};

/// Apply map directives to a single resource name (longest matching prefix
/// wins; one rewrite, no chaining).
std::string apply_maps_to_resource(const std::vector<MapDirective>& maps,
                                   std::string_view resource);

/// Apply map directives to each part of a canonical focus name.
std::string apply_maps_to_focus_name(const std::vector<MapDirective>& maps,
                                     std::string_view focus_name);

}  // namespace histpc::pc
