// DirectiveIndex: O(1)–O(log n) lookup structures over a DirectiveSet.
//
// The (hypothesis : focus) directive lookup sits on the Performance
// Consultant's innermost refinement loop: every candidate produced by
// refine() is checked against the prune directives and assigned a queue
// priority, and every conclusion reads a threshold. The DirectiveSet scan
// methods walk the full directive list per call, which on harvested sets
// (hundreds to thousands of table1/table3-style directives) costs more
// than the batched metric evaluation they gate. The index is built once —
// the consultant constructs it right after apply_mappings() — and answers
// the same three queries from hash maps and sorted prefix arrays.
//
// The DirectiveSet scans survive unchanged as the property-tested oracle
// (tests/directive_index_test.cpp), mirroring the metric engine's
// scan-vs-index pattern: for every (hypothesis, focus) query the index
// returns exactly what the scan returns, including its tie-breaking rules
// (first matching priority wins; first exact threshold wins, last wildcard
// is the fallback).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "resources/focus_table.h"

namespace histpc::pc {

/// A sorted set of resource-name prefixes answering "is any stored prefix
/// a path-prefix of `name`?" (util::is_path_prefix semantics) in
/// O(depth(name) · log n): every path-prefix of `name` is `name` truncated
/// at a '/' boundary, so the query binary-searches each truncation,
/// longest first. Also reused by the directive generator to keep harvested
/// prune lists subtree-root-only.
class PrefixSet {
 public:
  /// Sorted insert; duplicates are ignored.
  void insert(std::string prefix);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// True when some stored prefix equals `name` or is an ancestor of it.
  bool contains_prefix_of(std::string_view name) const;

 private:
  std::vector<std::string> sorted_;
};

namespace detail {
/// Transparent hashing so queries take string_views without materializing
/// std::string keys.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const { return a == b; }
};
}  // namespace detail

class DirectiveIndex {
 public:
  DirectiveIndex() = default;

  /// Builds the index over `set`. The index holds copies of the directive
  /// strings, not references: it stays valid if `set` is destroyed, but it
  /// does NOT see later mutations — rebuild after changing the set (the
  /// consultant builds it once, after apply_mappings()).
  explicit DirectiveIndex(const DirectiveSet& set);

  /// Same contract and result as DirectiveSet::prune_match.
  DirectiveSet::PruneKind prune_match(std::string_view hypothesis,
                                      const resources::Focus& focus) const;

  bool is_pruned(std::string_view hypothesis, const resources::Focus& focus) const {
    return prune_match(hypothesis, focus) != DirectiveSet::PruneKind::None;
  }

  /// Same contract and result as DirectiveSet::priority_of.
  Priority priority_of(std::string_view hypothesis, std::string_view focus_name) const;

  /// Same contract and result as DirectiveSet::threshold_for.
  std::optional<double> threshold_for(std::string_view hypothesis) const;

  /// Compile the directive strings against a focus table so the interned
  /// search can query by (hypothesis index, FocusId) with no string work:
  ///  * subtree prunes become per-hierarchy coverage bitmaps over
  ///    ResourceIds (covered iff contains_prefix_of(full_name), roots
  ///    forced out — a root part is never pruned);
  ///  * pair prunes and priorities become id-keyed maps. A directive focus
  ///    string matches a real focus iff it parses and re-canonicalizes to
  ///    itself (canonical names are injective), so non-canonical or
  ///    unresolvable entries are provably unmatchable and dropped.
  /// The table pointer is retained; it must outlive the index. Load-time
  /// directive text keeps using the string_view lookups above.
  void bind(resources::FocusTable& table, const HypothesisSet& hyps);
  bool bound() const { return table_ != nullptr; }

  /// Id twins of prune_match / is_pruned / priority_of / threshold_for;
  /// valid after bind(). Same results as the string lookups on the
  /// corresponding hypothesis name and canonical focus name.
  DirectiveSet::PruneKind prune_match(int hyp, resources::FocusId focus) const;
  bool is_pruned(int hyp, resources::FocusId focus) const {
    return prune_match(hyp, focus) != DirectiveSet::PruneKind::None;
  }
  Priority priority_of(int hyp, resources::FocusId focus) const;
  std::optional<double> threshold_for(int hyp) const {
    return threshold_by_hyp_.at(static_cast<std::size_t>(hyp));
  }

 private:
  static std::uint64_t id_pair_key(int hyp, resources::FocusId focus) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hyp)) << 32) |
           static_cast<std::uint32_t>(focus);
  }
  static std::string pair_key(std::string_view hypothesis, std::string_view focus);
  /// Allocation-free lookup key over a reused thread-local buffer; the
  /// returned view is invalidated by the next call on the same thread.
  static std::string_view pair_key_view(std::string_view hypothesis,
                                        std::string_view focus);

  /// Subtree prunes, bucketed by hypothesis; "*" prunes live in their own
  /// bucket checked for every hypothesis.
  std::unordered_map<std::string, PrefixSet, detail::StringHash, detail::StringEq>
      subtree_by_hyp_;
  PrefixSet subtree_any_;

  /// Exact-pair prunes keyed on (hypothesis, focus name), with the
  /// wildcard-hypothesis entries keyed on focus name alone.
  std::unordered_set<std::string, detail::StringHash, detail::StringEq> pair_prunes_;
  std::unordered_set<std::string, detail::StringHash, detail::StringEq> pair_prunes_any_;

  /// First directive per (hypothesis, focus) wins, as in the scan.
  std::unordered_map<std::string, Priority, detail::StringHash, detail::StringEq>
      priorities_;

  /// First directive per hypothesis name (including a literal "*" key)
  /// wins; threshold_any_ is the last wildcard, the scan's fallback value.
  std::unordered_map<std::string, double, detail::StringHash, detail::StringEq>
      thresholds_;
  std::optional<double> threshold_any_;

  // ---- id-keyed structures, populated by bind() ----
  resources::FocusTable* table_ = nullptr;
  /// Hypothesis names by index (for the foreign-part oracle fallback).
  std::vector<std::string> hyp_names_;
  /// any_cover_[hier][rid]: rid lies under a wildcard-hypothesis subtree
  /// prune (roots always 0). hyp_cover_[hyp] likewise per hypothesis
  /// (empty vector = no subtree prunes for that hypothesis).
  std::vector<std::vector<std::uint8_t>> any_cover_;
  std::vector<std::vector<std::vector<std::uint8_t>>> hyp_cover_;
  std::unordered_set<std::uint64_t> id_pair_prunes_;
  std::unordered_set<resources::FocusId> id_pair_prunes_any_;
  std::unordered_map<std::uint64_t, Priority> id_priorities_;
  std::vector<std::optional<double>> threshold_by_hyp_;
};

}  // namespace histpc::pc
