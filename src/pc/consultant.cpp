#include "pc/consultant.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace histpc::pc {

using resources::Focus;

double DiagnosisResult::time_to_find(const std::vector<BottleneckReport>& reference,
                                     double percent) const {
  if (reference.empty() || percent <= 0.0)
    return 0.0;
  std::vector<double> found_times;
  for (const BottleneckReport& ref : reference) {
    for (const BottleneckReport& b : bottlenecks) {
      if (b.hypothesis == ref.hypothesis && b.focus == ref.focus) {
        found_times.push_back(b.t_found);
        break;
      }
    }
  }
  const std::size_t needed = static_cast<std::size_t>(
      std::ceil(percent / 100.0 * static_cast<double>(reference.size()) - 1e-9));
  if (found_times.size() < needed) return std::numeric_limits<double>::infinity();
  std::sort(found_times.begin(), found_times.end());
  return needed == 0 ? 0.0 : found_times[needed - 1];
}

util::Json TelemetrySummary::to_json() const {
  util::Json j = util::Json::object();
  j["pairs_tested"] = pairs_tested;
  j["conclusions_true"] = conclusions_true;
  j["conclusions_false"] = conclusions_false;
  j["refinements"] = refinements;
  j["prune_hits_subtree"] = prune_hits_subtree;
  j["prune_hits_pair"] = prune_hits_pair;
  j["priority_seeds"] = priority_seeds;
  j["cost_gate_engagements"] = cost_gate_engagements;
  j["peak_cost"] = peak_cost;
  j["avg_cost"] = avg_cost;
  j["spec_launched"] = spec_launched;
  j["spec_hits"] = spec_hits;
  j["spec_discarded"] = spec_discarded;
  j["spec_hit_rate"] = spec_hit_rate;
  j["spec_wasted_seconds"] = spec_wasted_seconds;
  util::Json phases = util::Json::object();
  for (const auto& [name, seconds] : phase_seconds) phases[name] = seconds;
  j["phase_seconds"] = std::move(phases);
  return j;
}

PerformanceConsultant::PerformanceConsultant(const metrics::TraceView& view, PcConfig config,
                                             DirectiveSet directives)
    : view_(view),
      config_(std::move(config)),
      directives_(std::move(directives)),
      tracer_(config_.trace_sink),
      instr_(view, config_.cost_model, config_.insertion_latency,
             config_.perturbation_factor,
             instr::EvalConfig{config_.batched_eval, config_.eval_threads}, &tracer_),
      shg_(config_.hypotheses, config_.interned_foci ? &view.foci() : nullptr) {
  if (config_.tick <= 0 || config_.min_observation <= 0)
    throw std::invalid_argument("PcConfig: tick and min_observation must be positive");
  directives_.apply_mappings();
  // Built after apply_mappings(): the index snapshots the directive
  // strings and must see the rewritten resource names.
  directive_index_ = DirectiveIndex(directives_);
  if (config_.interned_foci) {
    foci_ = &view_.foci();
    directive_index_.bind(*foci_, config_.hypotheses);
    sync_idx_ = view_.resources().hierarchy_index(resources::kSyncObjectHierarchy);
    scope_pids_.assign(config_.hypotheses.size(), resources::kNoPart);
    for (std::size_t i = 0; i < config_.hypotheses.size(); ++i) {
      const Hypothesis& h = config_.hypotheses.at(static_cast<int>(i));
      if (!h.sync_scope.empty() && sync_idx_ >= 0)
        scope_pids_[i] =
            foci_->part_id(static_cast<std::size_t>(sync_idx_), h.sync_scope);
    }
  }
  thresholds_by_hyp_.reserve(config_.hypotheses.size());
  for (std::size_t i = 0; i < config_.hypotheses.size(); ++i) {
    const Hypothesis& h = config_.hypotheses.at(static_cast<int>(i));
    double t = h.default_threshold;
    if (config_.threshold_override > 0) t = config_.threshold_override;
    if (auto d = directive_index_.threshold_for(h.name)) t = *d;
    thresholds_by_hyp_.push_back(t);
  }
}

void PerformanceConsultant::trace_event(telemetry::EventKind kind, double t, int hyp,
                                        const std::string& focus_name, double value,
                                        double threshold, const char* detail) {
  if (!tracer_.tracing()) return;
  telemetry::Event e;
  e.kind = kind;
  e.t = t;
  if (hyp >= 0) e.hypothesis = config_.hypotheses.at(hyp).name;
  e.focus = focus_name;
  e.value = value;
  e.threshold = threshold;
  e.cost = instr_.total_cost();
  e.detail = detail;
  tracer_.emit(std::move(e));
}

void PerformanceConsultant::note_prune_hit(DirectiveSet::PruneKind kind, int hyp,
                                           const resources::Focus& focus, double now) {
  ++pruned_candidates_;
  const bool pair = kind == DirectiveSet::PruneKind::Pair;
  tracer_.registry().add(pair ? "pc.prune_hit.pair" : "pc.prune_hit.subtree");
  if (tracer_.tracing())
    trace_event(telemetry::EventKind::PruneHit, now, hyp, focus.name(), 0.0, 0.0,
                pair ? "pair" : "subtree");
}

void PerformanceConsultant::note_prune_hit_id(DirectiveSet::PruneKind kind, int hyp,
                                              resources::FocusId fid, double now) {
  ++pruned_candidates_;
  const bool pair = kind == DirectiveSet::PruneKind::Pair;
  tracer_.registry().add(pair ? "pc.prune_hit.pair" : "pc.prune_hit.subtree");
  if (tracer_.tracing())
    trace_event(telemetry::EventKind::PruneHit, now, hyp, foci_->name(fid), 0.0, 0.0,
                pair ? "pair" : "subtree");
}

std::optional<Focus> PerformanceConsultant::probe_focus(int hyp, const Focus& focus) const {
  const Hypothesis& h = config_.hypotheses.at(hyp);
  if (h.sync_scope.empty()) return focus;
  const int sync_idx =
      view_.resources().hierarchy_index(resources::kSyncObjectHierarchy);
  if (sync_idx < 0 || static_cast<std::size_t>(sync_idx) >= focus.size()) return focus;
  const std::string& part = focus.part(static_cast<std::size_t>(sync_idx));
  if (util::is_path_prefix(h.sync_scope, part)) return focus;  // already inside the scope
  if (util::is_path_prefix(part, h.sync_scope))                // root or an ancestor: narrow it
    return focus.with_part(static_cast<std::size_t>(sync_idx), h.sync_scope);
  return std::nullopt;  // disjoint: the pair can never be true
}

std::optional<resources::FocusId> PerformanceConsultant::probe_focus_id(
    int hyp, resources::FocusId focus) const {
  const resources::PartId scope = scope_pids_[static_cast<std::size_t>(hyp)];
  if (scope == resources::kNoPart || sync_idx_ < 0) return focus;
  const auto uidx = static_cast<std::size_t>(sync_idx_);
  const resources::PartId part = foci_->part(focus, uidx);
  if (foci_->part_within(uidx, part, scope)) return focus;  // already inside the scope
  if (foci_->part_within(uidx, scope, part))                // root or an ancestor: narrow it
    return foci_->with_part(focus, uidx, scope);
  return std::nullopt;  // disjoint: the pair can never be true
}

void PerformanceConsultant::seed_high_priority_nodes() {
  for (const PriorityDirective& d : directives_.priorities) {
    if (d.priority != Priority::High) continue;
    auto hyp = config_.hypotheses.index_of(d.hypothesis);
    if (!hyp) {
      HISTPC_LOG(Debug) << "skipping priority directive for unknown hypothesis " << d.hypothesis;
      continue;
    }
    int id = -1;
    if (foci_) {
      auto fid = foci_->parse(d.focus);
      if (!fid) {
        // Unmapped or version-specific resource; the paper's mapper handles
        // most of these, the remainder are silently dropped as in Paradyn.
        HISTPC_LOG(Debug) << "skipping priority directive with unresolvable focus "
                          << d.focus;
        continue;
      }
      if (!probe_focus_id(*hyp, *fid)) continue;  // scope-incompatible pair
      if (directive_index_.is_pruned(*hyp, *fid)) continue;
      id = shg_.add_node(*hyp, *fid, shg_.root(), 0.0);
    } else {
      auto focus = Focus::parse(d.focus, view_.resources());
      if (!focus) {
        HISTPC_LOG(Debug) << "skipping priority directive with unresolvable focus "
                          << d.focus;
        continue;
      }
      if (!probe_focus(*hyp, *focus)) continue;  // scope-incompatible pair
      if (directive_index_.is_pruned(d.hypothesis, *focus)) continue;
      id = shg_.add_node(*hyp, *focus, shg_.root(), 0.0);
    }
    ShgNode& n = shg_.node(id);
    if (n.status != NodeStatus::Pending || n.probe != instr::kNoProbe) continue;  // deduped
    n.priority = Priority::High;
    n.persistent = config_.persistent_high_priority;
    tracer_.registry().add("pc.priority_seed");
    if (tracer_.tracing())
      trace_event(telemetry::EventKind::PrioritySeed, 0.0, *hyp, shg_.focus_name(id));
    // Queued ahead of everything else: instrumented from search start, but
    // still subject to the instrumentation cost ceiling (a large seed set
    // is enabled in throttled waves, exactly like ordinary expansion).
    enqueue(id);
  }
}

void PerformanceConsultant::seed_top_level() {
  if (foci_) {
    const resources::FocusId whole = foci_->whole_program();
    for (int hyp : config_.hypotheses.roots()) {
      if (auto kind = directive_index_.prune_match(hyp, whole);
          kind != DirectiveSet::PruneKind::None) {
        note_prune_hit_id(kind, hyp, whole, 0.0);
        continue;
      }
      int id = shg_.add_node(hyp, whole, shg_.root(), 0.0);
      ShgNode& n = shg_.node(id);
      if (n.status == NodeStatus::Pending && n.probe == instr::kNoProbe) {
        n.priority = directive_index_.priority_of(hyp, whole);
        enqueue(id);
      }
    }
    return;
  }
  const Focus whole = Focus::whole_program(view_.resources());
  for (int hyp : config_.hypotheses.roots()) {
    if (auto kind = directive_index_.prune_match(config_.hypotheses.at(hyp).name, whole);
        kind != DirectiveSet::PruneKind::None) {
      note_prune_hit(kind, hyp, whole, 0.0);
      continue;
    }
    int id = shg_.add_node(hyp, whole, shg_.root(), 0.0);
    ShgNode& n = shg_.node(id);
    if (n.status == NodeStatus::Pending && n.probe == instr::kNoProbe) {
      n.priority = directive_index_.priority_of(config_.hypotheses.at(hyp).name, n.focus_name);
      enqueue(id);
    }
  }
}

void PerformanceConsultant::enqueue(int id) {
  switch (shg_.node(id).priority) {
    case Priority::High: queue_high_.push_back(id); break;
    case Priority::Medium: queue_medium_.push_back(id); break;
    case Priority::Low: queue_low_.push_back(id); break;
  }
}

int PerformanceConsultant::pop_pending() {
  for (auto* q : {&queue_high_, &queue_medium_, &queue_low_}) {
    while (!q->empty()) {
      int id = q->front();
      q->pop_front();
      if (shg_.node(id).status == NodeStatus::Pending) return id;
    }
  }
  return -1;
}

void PerformanceConsultant::activate(int id, double now) {
  ShgNode& n = shg_.node(id);
  const Hypothesis& h = config_.hypotheses.at(n.hyp);
  // Node creation rejects scope-incompatible pairs, so the adjusted focus
  // always exists here.
  if (foci_) {
    const resources::FocusId pfid = *probe_focus_id(n.hyp, n.fid);
    std::optional<metrics::SpecHandle> handle;
    // Persistent pairs need live per-tick samples (flip detection), so
    // they are never speculated and never claimed.
    if (spec_ && !n.persistent) handle = spec_->claim(h.metric, pfid, now);
    n.probe = handle ? instr_.insert_speculated(h.metric, pfid, now, std::move(*handle))
                     : instr_.insert(h.metric, pfid, now);
  } else {
    n.probe = instr_.insert(h.metric, *probe_focus(n.hyp, n.focus), now);
  }
  n.status = NodeStatus::Active;
  n.activate_time = now;
  active_.push_back(id);
  ++unconcluded_active_;
  tracer_.registry().add("pc.instrument");
  if (tracer_.tracing())
    trace_event(telemetry::EventKind::Instrument, now, n.hyp, shg_.focus_name(id),
                instr_.probe_cost(n.probe), threshold_for(n.hyp));
  HISTPC_LOG(Trace) << "t=" << now << " activate " << h.name << " : " << shg_.focus_name(id)
                    << " (cost " << instr_.probe_cost(n.probe) << ", total "
                    << instr_.total_cost() << ")";
}

void PerformanceConsultant::activate_pending(double now) {
  // Expansion is throttled, not strictly capped: activation proceeds while
  // the running total is below the limit, so one node may overshoot. This
  // guarantees progress even for probes individually costlier than the
  // limit. The persistent high-priority baseline is excluded from the
  // meter (it was deliberately enabled at search start).
  while (instr_.total_cost() - persistent_cost_ < config_.cost_limit) {
    int id = pop_pending();
    if (cost_gated_) {
      // Cost fell back under the ceiling: expansion resumes (or the queue
      // drained while gated — the stall is over either way).
      cost_gated_ = false;
      tracer_.registry().add("pc.cost_gate_release");
      trace_event(telemetry::EventKind::CostGate, now, -1, std::string(),
                  instr_.total_cost() - persistent_cost_, config_.cost_limit,
                  "released");
    }
    if (id < 0) return;
    activate(id, now);
  }
  // The ceiling halted expansion with work still queued: record the
  // engagement edge (one event per stall, not one per tick).
  if (!cost_gated_ && has_pending()) {
    cost_gated_ = true;
    tracer_.registry().add("pc.cost_gate");
    trace_event(telemetry::EventKind::CostGate, now, -1, std::string(),
                instr_.total_cost() - persistent_cost_, config_.cost_limit, "engaged");
  }
}

void PerformanceConsultant::consider_candidate(int hyp, Focus&& focus, int parent,
                                               double now) {
  const std::string& hyp_name = config_.hypotheses.at(hyp).name;
  if (!probe_focus(hyp, focus)) return;  // scope-incompatible, never true
  if (auto kind = directive_index_.prune_match(hyp_name, focus);
      kind != DirectiveSet::PruneKind::None) {
    note_prune_hit(kind, hyp, focus, now);
    return;
  }
  if (config_.respect_discovery_times) {
    double available = 0.0;
    for (const std::string& part : focus.parts())
      available = std::max(available, view_.discovery_time(part));
    if (available > now) {
      // Not yet observable: retried once the resource has appeared.
      if (std::isfinite(available))
        deferred_.push_back({hyp, std::move(focus), resources::kNoFocus, parent, available});
      return;
    }
  }
  int cid = shg_.add_node(hyp, std::move(focus), parent, now);
  ShgNode& cn = shg_.node(cid);
  if (cn.status == NodeStatus::Pending && cn.probe == instr::kNoProbe &&
      cn.enqueue_time == now && cn.parents.size() == 1 && cn.parents.front() == parent) {
    // Freshly created by this refinement: assign priority and queue it.
    cn.priority = directive_index_.priority_of(hyp_name, cn.focus_name);
    enqueue(cid);
  }
}

void PerformanceConsultant::consider_candidate_id(int hyp, resources::FocusId fid,
                                                  int parent, double now) {
  if (!probe_focus_id(hyp, fid)) return;  // scope-incompatible, never true
  if (auto kind = directive_index_.prune_match(hyp, fid);
      kind != DirectiveSet::PruneKind::None) {
    note_prune_hit_id(kind, hyp, fid, now);
    return;
  }
  if (config_.respect_discovery_times) {
    double available = 0.0;
    for (std::size_t h = 0; h < foci_->num_hierarchies(); ++h) {
      const resources::PartId pid = foci_->part(fid, h);
      const resources::ResourceId rid = resources::FocusTable::part_resource(pid);
      available = std::max(available, rid != resources::kNoResource
                                          ? view_.discovery_time(h, rid)
                                          : view_.discovery_time(foci_->part_name(h, pid)));
    }
    if (available > now) {
      // Not yet observable: retried once the resource has appeared.
      if (std::isfinite(available))
        deferred_.push_back({hyp, Focus(), fid, parent, available});
      return;
    }
  }
  int cid = shg_.add_node(hyp, fid, parent, now);
  ShgNode& cn = shg_.node(cid);
  if (cn.status == NodeStatus::Pending && cn.probe == instr::kNoProbe &&
      cn.enqueue_time == now && cn.parents.size() == 1 && cn.parents.front() == parent) {
    // Freshly created by this refinement: assign priority and queue it.
    cn.priority = directive_index_.priority_of(hyp, fid);
    enqueue(cid);
  }
}

void PerformanceConsultant::release_discovered(double now) {
  if (deferred_.empty()) return;
  std::vector<DeferredCandidate> still_waiting;
  std::vector<DeferredCandidate> ripe;
  for (auto& c : deferred_) {
    (c.available_at <= now ? ripe : still_waiting).push_back(std::move(c));
  }
  deferred_ = std::move(still_waiting);
  for (auto& c : ripe) {
    if (foci_)
      consider_candidate_id(c.hyp, c.fid, c.parent, now);
    else
      consider_candidate(c.hyp, std::move(c.focus), c.parent, now);
  }
}

void PerformanceConsultant::refine(int id, double now) {
  // Copy what we need up front: add_node() may grow the SHG's node vector
  // and invalidate references into it.
  const int parent_hyp = shg_.node(id).hyp;
  tracer_.registry().add("pc.refine");
  if (tracer_.tracing())
    trace_event(telemetry::EventKind::Refine, now, parent_hyp, shg_.focus_name(id));

  if (foci_) {
    const resources::FocusId parent_fid = shg_.node(id).fid;
    // Expansion kind 1: a more specific focus, same hypothesis. The
    // refinement list is memoized in the table; the reference is stable
    // across the interns consider_candidate_id performs.
    for (resources::FocusId child : foci_->refinements(parent_fid))
      consider_candidate_id(parent_hyp, child, id, now);
    // Expansion kind 2: a more specific hypothesis, same focus.
    for (int child_hyp : config_.hypotheses.at(parent_hyp).children)
      consider_candidate_id(child_hyp, parent_fid, id, now);
    return;
  }
  const Focus parent_focus = shg_.node(id).focus;
  // Expansion kind 1: a more specific focus, same hypothesis.
  for (Focus& child : parent_focus.refinements(view_.resources()))
    consider_candidate(parent_hyp, std::move(child), id, now);
  // Expansion kind 2: a more specific hypothesis, same focus.
  for (int child_hyp : config_.hypotheses.at(parent_hyp).children)
    consider_candidate(child_hyp, Focus(parent_focus), id, now);
}

void PerformanceConsultant::conclude(int id, const instr::ProbeSample& sample, double now) {
  {
    ShgNode& n = shg_.node(id);
    const Hypothesis& h = config_.hypotheses.at(n.hyp);
    n.fraction = sample.fraction;
    n.conclude_time = now;
    --unconcluded_active_;
    const double threshold = threshold_for(n.hyp);
    const bool is_true = sample.fraction >= threshold;
    if (is_true) {
      n.status = NodeStatus::True;
      n.first_true_time = now;
      found_.push_back({id, now, sample.fraction});
      tracer_.registry().add("pc.conclude_true");
      if (tracer_.tracing())
        trace_event(telemetry::EventKind::ConcludeTrue, now, n.hyp, shg_.focus_name(id),
                    sample.fraction, threshold);
      HISTPC_LOG(Debug) << "t=" << now << " TRUE " << h.name << " : " << shg_.focus_name(id)
                        << " (" << sample.fraction << ")";
    } else {
      n.status = NodeStatus::False;
      tracer_.registry().add("pc.conclude_false");
      if (tracer_.tracing())
        trace_event(telemetry::EventKind::ConcludeFalse, now, n.hyp, shg_.focus_name(id),
                    sample.fraction, threshold);
      HISTPC_LOG(Trace) << "t=" << now << " false " << h.name << " : " << shg_.focus_name(id)
                        << " (" << sample.fraction << ")";
    }
  }
  // refine() can reallocate the SHG node storage; re-read the node after.
  if (shg_.node(id).status == NodeStatus::True) refine(id, now);
  const ShgNode& n = shg_.node(id);
  if (n.persistent) {
    // The probe stays for the rest of the run, but settled monitoring is
    // cheap (low-frequency sampling); it leaves the expansion meter.
    persistent_cost_ += instr_.probe_cost(n.probe);
  } else {
    instr_.remove(n.probe);
    active_.erase(std::find(active_.begin(), active_.end(), id));
  }
}

void PerformanceConsultant::check_persistent_flip(int id, const instr::ProbeSample& sample,
                                                  double now) {
  bool flipped = false;
  {
    ShgNode& n = shg_.node(id);
    n.fraction = sample.fraction;
    const double threshold = threshold_for(n.hyp);
    if (n.status == NodeStatus::False && sample.fraction >= threshold) {
      // A behaviour that emerged after the first conclusion: persistent
      // testing catches it (the reason high-priority pairs stay
      // instrumented for the whole run).
      n.status = NodeStatus::True;
      n.first_true_time = now;
      found_.push_back({id, now, sample.fraction});
      tracer_.registry().add("pc.conclude_true");
      if (tracer_.tracing())
        trace_event(telemetry::EventKind::ConcludeTrue, now, n.hyp, shg_.focus_name(id),
                    sample.fraction, threshold, "persistent_flip");
      flipped = true;
    }
  }
  if (flipped) refine(id, now);  // may reallocate SHG nodes
}

void PerformanceConsultant::init_speculation(double horizon) {
  horizon_ = horizon;
  const int threads = util::ThreadPool::resolve(config_.search_threads);
  // Speculation needs FocusId cache keys; in string (oracle) mode the
  // knob is silently serial.
  if (threads < 2 || !foci_) return;
  spec_pool_ = std::make_unique<util::ThreadPool>(threads - 1);
  SpeculationCache::Params params;
  params.insertion_latency = config_.insertion_latency;
  params.min_observation = config_.min_observation;
  params.tick = config_.tick;
  params.horizon = horizon;
  spec_ = std::make_unique<SpeculationCache>(view_, *spec_pool_, params);
}

void PerformanceConsultant::speculate(double now) {
  // Memoization: between conclusions/activations nothing below can change
  // (the wave and admission set are pure over this signature), so the
  // per-tick cost of the scheduler collapses to this comparison. Every
  // event that shifts the admission simulation moves one of these values:
  // conclusions shrink active_ or reclassify persistent cost, activations
  // grow active_ and total cost, refinements grow the SHG and the queues.
  const auto sig = std::make_tuple(shg_.size(), active_.size(), unconcluded_active_,
                                   instr_.total_cost(), persistent_cost_,
                                   queue_high_.size(), queue_medium_.size(),
                                   queue_low_.size());
  if (sig == spec_sig_ && (!std::isfinite(spec_wave_) || spec_wave_ > now)) return;
  spec_sig_ = sig;

  spec_->invalidate_stale(now);

  // A node's conclusion tick is fixed once it activates, so the replayed
  // recurrence (which the prediction must walk tick by tick to stay
  // bit-faithful) is cached per node and recomputed only if the node is
  // ever re-activated at a different time.
  auto predicted = [this](int id, const ShgNode& n) {
    auto [it, fresh] = spec_predict_.try_emplace(id);
    if (fresh || it->second.first != n.activate_time)
      it->second = {n.activate_time,
                    metrics::predict_conclude_tick(
                        n.activate_time, config_.insertion_latency,
                        config_.min_observation, config_.tick, horizon_)};
    return it->second.second;
  };

  // Predict the next activation wave: every conclusion tick is pure
  // arithmetic over (activate_time, latency, min_observation, tick), so
  // the earliest conclusion among the active probes — the moment the gate
  // next frees cost and admits new candidates — is known exactly, ahead
  // of time. Probes that never reach min_observation before the horizon
  // predict +inf and are ignored.
  double wave = std::numeric_limits<double>::infinity();
  for (int id : active_) {
    const ShgNode& n = shg_.node(id);
    if (n.status != NodeStatus::Active) continue;
    wave = std::min(wave, predicted(id, n));
  }
  spec_wave_ = wave;
  if (!std::isfinite(wave) || wave <= now) return;

  // Simulate the wave's cost-gate admission exactly: conclusions at the
  // wave free their probes' cost from the expansion meter (removal for
  // ordinary probes, reclassification for persistent ones — same meter
  // effect), then activate_pending() admits queued candidates in priority
  // order while the meter is under the limit, each adding its predicted
  // probe cost (one overshoot allowed, like the real loop). Speculating
  // precisely this admission set — instead of a fixed top-K — is what
  // keeps the hit rate high and the discard pile small; the residual
  // mispredictions come from refinements and persistent flips that land
  // at the wave tick itself, and those simply fall back to the live
  // engine.
  double meter = instr_.total_cost() - persistent_cost_;
  for (int id : active_) {
    const ShgNode& n = shg_.node(id);
    if (n.status != NodeStatus::Active) continue;
    if (predicted(id, n) == wave) meter -= instr_.probe_cost(n.probe);
  }

  std::vector<SpeculationCache::Candidate> cands;
  std::vector<std::pair<int, resources::FocusId>> seen;
  bool gate_closed = false;
  for (auto* q : {&queue_high_, &queue_medium_, &queue_low_}) {
    if (gate_closed) break;
    for (int id : *q) {
      const ShgNode& n = shg_.node(id);
      if (n.status != NodeStatus::Pending) continue;
      if (meter >= config_.cost_limit) {
        gate_closed = true;
        break;
      }
      const Hypothesis& h = config_.hypotheses.at(n.hyp);
      const auto pfid = probe_focus_id(n.hyp, n.fid);
      if (!pfid) continue;
      // Admitted: its cost occupies the meter whether or not we
      // speculate it (persistent seeds are admitted but need live
      // per-tick samples, so they are never pre-evaluated). The cost
      // model is pure over (focus, metric), so price each pair once.
      const std::pair<int, resources::FocusId> cost_key{static_cast<int>(h.metric),
                                                        *pfid};
      auto cost_it = spec_cost_.find(cost_key);
      if (cost_it == spec_cost_.end())
        cost_it = spec_cost_
                      .emplace(cost_key,
                               config_.cost_model.probe_cost(view_, *pfid, h.metric))
                      .first;
      meter += cost_it->second;
      if (n.persistent) continue;
      const std::pair<int, resources::FocusId> key{static_cast<int>(h.metric), *pfid};
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      if (spec_->contains(h.metric, *pfid, wave)) continue;
      cands.push_back({h.metric, *pfid, &view_.compiled(*pfid)});
    }
  }
  if (!cands.empty()) spec_->launch_wave(std::move(cands), wave);
}

bool PerformanceConsultant::has_pending() const {
  for (const auto* q : {&queue_high_, &queue_medium_, &queue_low_})
    for (int id : *q)
      if (shg_.node(id).status == NodeStatus::Pending) return true;
  return false;
}

bool PerformanceConsultant::search_finished() const {
  if (unconcluded_active_ > 0) return false;
  if (!deferred_.empty()) return false;  // resources still to be discovered
  // Persistent pairs are tested "throughout the entire program run": while
  // any are live, keep ticking so late-emerging behaviours can flip them.
  if (persistent_cost_ > 0.0) return false;
  for (const auto* q : {&queue_high_, &queue_medium_, &queue_low_})
    for (int id : *q)
      if (shg_.node(id).status == NodeStatus::Pending) return false;
  return true;
}

DiagnosisResult PerformanceConsultant::run() {
  if (ran_) throw std::logic_error("PerformanceConsultant::run called twice");
  ran_ = true;

  trace_event(telemetry::EventKind::PhaseBegin, 0.0, -1, std::string(), 0.0, 0.0,
              "search");
  seed_high_priority_nodes();
  seed_top_level();

  const double horizon = std::min(config_.max_time, view_.trace().duration);
  init_speculation(horizon);
  const auto wall_start = std::chrono::steady_clock::now();
  double t = 0.0;
  activate_pending(t);
  if (spec_) speculate(t);
  while (t < horizon) {
    if (search_finished()) break;
    // Deadline propagation: a served request's wall budget ends the search
    // at a tick boundary, so the partial result is a well-formed prefix
    // (every reported conclusion used the normal observation window).
    if (config_.wall_budget_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                .count() >= config_.wall_budget_seconds) {
      deadline_hit_ = true;
      tracer_.registry().add("pc.deadline_hit");
      break;
    }
    const double t_prev = t;
    t = std::min(t + config_.tick, horizon);
    cost_integral_ += instr_.total_cost() * (t - t_prev);
    {
      telemetry::ScopedTimer timer(tracer_.registry(), "pc.advance");
      instr_.advance(t);
    }
    release_discovered(t);
    {
      telemetry::ScopedTimer timer(tracer_.registry(), "pc.evaluate");
      // Snapshot: conclusions may refine, which appends to active_.
      const std::vector<int> active_now = active_;
      for (int id : active_now) {
        ShgNode& n = shg_.node(id);
        if (n.probe == instr::kNoProbe || !instr_.is_active(n.probe)) continue;
        const instr::ProbeSample sample = instr_.read(n.probe);
        if (n.status == NodeStatus::Active) {
          if (sample.observed >= config_.min_observation) conclude(id, sample, t);
        } else if (n.persistent) {
          check_persistent_flip(id, sample, t);
        }
      }
    }
    {
      telemetry::ScopedTimer timer(tracer_.registry(), "pc.expand");
      activate_pending(t);
    }
    if (spec_) {
      telemetry::ScopedTimer timer(tracer_.registry(), "pc.speculate");
      speculate(t);
    }
  }
  trace_event(telemetry::EventKind::PhaseEnd, t, -1, std::string(), 0.0, 0.0, "search");
  if (spec_) {
    // Settle the speculation layer before reporting: everything unclaimed
    // is discarded, and the stats fold into the (unsynchronized) registry
    // here on the decision thread only.
    spec_->finish();
    const SpeculationCache::Stats& st = spec_->stats();
    telemetry::Registry& reg = tracer_.registry();
    reg.add("pc.spec.launched", st.launched);
    reg.add("pc.spec.hit", st.hits);
    reg.add("pc.spec.discarded", st.discarded);
    reg.add("pc.spec.groups", st.groups);
    reg.add("pc.spec.wasted_ns", st.wasted_ns);
    reg.add("pc.spec.eval_ns", st.eval_ns);
  }
  return build_result(t);
}

DiagnosisResult PerformanceConsultant::build_result(double end_time) {
  DiagnosisResult result;
  result.bottlenecks.reserve(found_.size());
  for (const Found& f : found_)
    result.bottlenecks.push_back(
        {shg_.hypothesis_name(f.id), shg_.focus_name(f.id), f.t, f.fraction});
  std::stable_sort(result.bottlenecks.begin(), result.bottlenecks.end(),
                   [](const BottleneckReport& a, const BottleneckReport& b) {
                     return a.t_found < b.t_found;
                   });
  for (std::size_t i = 1; i < shg_.size(); ++i) {
    ShgNode& n = shg_.node(static_cast<int>(i));
    if (n.status == NodeStatus::Pending || n.status == NodeStatus::Active) {
      // The program ended before this pair could be (fully) tested — the
      // paper's "stopped before completion due to cost limits".
      if (n.status == NodeStatus::Active) --unconcluded_active_;
      n.status = NodeStatus::NeverRan;
    }
    NodeSnapshot snap;
    snap.hypothesis = shg_.hypothesis_name(static_cast<int>(i));
    snap.focus = shg_.focus_name(static_cast<int>(i));
    snap.status = n.status;
    snap.priority = n.priority;
    snap.conclude_time = n.conclude_time;
    snap.fraction = n.fraction;
    result.nodes.push_back(std::move(snap));
  }
  result.stats.nodes_created = shg_.size() - 1;
  result.stats.pairs_tested = instr_.total_inserted();
  result.stats.pruned_candidates = pruned_candidates_;
  result.stats.bottlenecks = result.bottlenecks.size();
  result.stats.end_time = end_time;
  result.stats.last_true_time =
      result.bottlenecks.empty() ? 0.0 : result.bottlenecks.back().t_found;
  result.stats.peak_cost = instr_.peak_cost();
  result.stats.deadline_hit = deadline_hit_;

  const telemetry::Registry& reg = tracer_.registry();
  TelemetrySummary& tel = result.telemetry;
  tel.pairs_tested = instr_.total_inserted();
  tel.conclusions_true = reg.counter("pc.conclude_true");
  tel.conclusions_false = reg.counter("pc.conclude_false");
  tel.refinements = reg.counter("pc.refine");
  tel.prune_hits_subtree = reg.counter("pc.prune_hit.subtree");
  tel.prune_hits_pair = reg.counter("pc.prune_hit.pair");
  tel.priority_seeds = reg.counter("pc.priority_seed");
  tel.cost_gate_engagements = reg.counter("pc.cost_gate");
  tel.peak_cost = instr_.peak_cost();
  tel.avg_cost = end_time > 0.0 ? cost_integral_ / end_time : 0.0;
  tel.spec_launched = reg.counter("pc.spec.launched");
  tel.spec_hits = reg.counter("pc.spec.hit");
  tel.spec_discarded = reg.counter("pc.spec.discarded");
  tel.spec_hit_rate = tel.spec_launched > 0
                          ? static_cast<double>(tel.spec_hits) /
                                static_cast<double>(tel.spec_launched)
                          : 0.0;
  tel.spec_wasted_seconds =
      static_cast<double>(reg.counter("pc.spec.wasted_ns")) * 1e-9;
  for (const auto& [name, stat] : reg.timers())
    tel.phase_seconds[name] = stat.seconds;
  return result;
}

}  // namespace histpc::pc
