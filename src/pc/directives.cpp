#include "pc/directives.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "pc/hypothesis.h"
#include "util/json.h"  // read_file / write_file
#include "util/log.h"
#include "util/strings.h"

namespace histpc::pc {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::Low: return "low";
    case Priority::Medium: return "medium";
    case Priority::High: return "high";
  }
  return "?";
}

std::optional<Priority> priority_from_name(std::string_view name) {
  if (name == "low") return Priority::Low;
  if (name == "medium") return Priority::Medium;
  if (name == "high") return Priority::High;
  return std::nullopt;
}

DirectiveSet::PruneKind DirectiveSet::prune_match(std::string_view hypothesis,
                                                  const resources::Focus& focus) const {
  for (const PruneDirective& p : prunes) {
    if (p.hypothesis != kAnyHypothesis && p.hypothesis != hypothesis) continue;
    for (const std::string& part : focus.parts()) {
      if (!is_constrained_part(part)) continue;  // a root part is never pruned
      if (util::is_path_prefix(p.resource_prefix, part)) return PruneKind::Subtree;
    }
  }
  if (!pair_prunes.empty()) {
    const std::string name = focus.name();
    for (const PairPruneDirective& p : pair_prunes)
      if (p.focus == name && (p.hypothesis == kAnyHypothesis || p.hypothesis == hypothesis))
        return PruneKind::Pair;
  }
  return PruneKind::None;
}

Priority DirectiveSet::priority_of(std::string_view hypothesis,
                                   std::string_view focus_name) const {
  for (const PriorityDirective& p : priorities)
    if (p.hypothesis == hypothesis && p.focus == focus_name) return p.priority;
  return Priority::Medium;
}

std::optional<double> DirectiveSet::threshold_for(std::string_view hypothesis) const {
  std::optional<double> wildcard;
  for (const ThresholdDirective& t : thresholds) {
    if (t.hypothesis == hypothesis) return t.threshold;
    if (t.hypothesis == kAnyHypothesis) wildcard = t.threshold;
  }
  return wildcard;
}

std::string apply_maps_to_resource(const std::vector<MapDirective>& maps,
                                   std::string_view resource) {
  const MapDirective* best = nullptr;
  for (const MapDirective& m : maps) {
    if (util::is_path_prefix(m.from, resource)) {
      if (!best || m.from.size() > best->from.size()) best = &m;
    }
  }
  if (!best) return std::string(resource);
  return best->to + std::string(resource.substr(best->from.size()));
}

std::string apply_maps_to_focus_name(const std::vector<MapDirective>& maps,
                                     std::string_view focus_name) {
  std::string_view inner = focus_name;
  bool bracketed = false;
  if (!inner.empty() && inner.front() == '<' && inner.back() == '>') {
    inner = inner.substr(1, inner.size() - 2);
    bracketed = true;
  }
  std::vector<std::string> mapped;
  for (auto part : util::split_view(inner, ','))
    mapped.push_back(apply_maps_to_resource(maps, util::trim(part)));
  std::string joined = util::join(mapped, ",");
  return bracketed ? "<" + joined + ">" : joined;
}

void DirectiveSet::apply_mappings() {
  if (maps.empty()) return;
  for (PruneDirective& p : prunes)
    p.resource_prefix = apply_maps_to_resource(maps, p.resource_prefix);
  for (PairPruneDirective& p : pair_prunes) p.focus = apply_maps_to_focus_name(maps, p.focus);
  for (PriorityDirective& p : priorities) p.focus = apply_maps_to_focus_name(maps, p.focus);
}

void DirectiveSet::merge(const DirectiveSet& other) {
  prunes.insert(prunes.end(), other.prunes.begin(), other.prunes.end());
  pair_prunes.insert(pair_prunes.end(), other.pair_prunes.begin(), other.pair_prunes.end());
  priorities.insert(priorities.end(), other.priorities.begin(), other.priorities.end());
  thresholds.insert(thresholds.end(), other.thresholds.begin(), other.thresholds.end());
  maps.insert(maps.end(), other.maps.begin(), other.maps.end());
  resolve_threshold_conflicts();
}

void DirectiveSet::resolve_threshold_conflicts() {
  if (thresholds.size() < 2) return;
  std::vector<ThresholdDirective> resolved;
  resolved.reserve(thresholds.size());
  for (const ThresholdDirective& t : thresholds) {
    auto it = std::find_if(resolved.begin(), resolved.end(), [&](const ThresholdDirective& r) {
      return r.hypothesis == t.hypothesis;
    });
    if (it == resolved.end()) {
      resolved.push_back(t);
      continue;
    }
    if (it->threshold != t.threshold) {
      HISTPC_LOG(Warn) << "conflicting thresholds for '" << t.hypothesis << "' ("
                       << util::fmt_double(it->threshold, 4) << " vs "
                       << util::fmt_double(t.threshold, 4) << "); keeping the max";
      it->threshold = std::max(it->threshold, t.threshold);
    }
  }
  thresholds = std::move(resolved);
}

DirectiveSet DirectiveSet::parse(std::string_view text) {
  DirectiveSet set;
  int lineno = 0;
  for (auto line_view : util::split_view(text, '\n')) {
    ++lineno;
    auto line = util::trim(line_view);
    if (line.empty() || line.front() == '#') continue;
    auto tokens = util::split_ws(line);
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("directive parse error, line " + std::to_string(lineno) +
                                  ": " + why);
    };
    const std::string& kind = tokens[0];
    if (kind == "prune") {
      if (tokens.size() != 3) fail("prune expects: prune <hypothesis|*> <resource>");
      if (tokens[2].empty() || tokens[2][0] != '/') fail("resource must start with '/'");
      set.prunes.push_back({tokens[1], tokens[2]});
    } else if (kind == "prunepair") {
      if (tokens.size() != 3) fail("prunepair expects: prunepair <hypothesis> <focus>");
      set.pair_prunes.push_back({tokens[1], tokens[2]});
    } else if (kind == "priority") {
      if (tokens.size() != 4) fail("priority expects: priority <hypothesis> <focus> <level>");
      auto level = priority_from_name(tokens[3]);
      if (!level) fail("unknown priority level '" + tokens[3] + "'");
      set.priorities.push_back({tokens[1], tokens[2], *level});
    } else if (kind == "threshold") {
      if (tokens.size() != 3) fail("threshold expects: threshold <hypothesis|*> <fraction>");
      double value = 0;
      try {
        // Require full consumption: "0.2;" is a typo, not 0.2.
        std::size_t consumed = 0;
        value = std::stod(tokens[2], &consumed);
        if (consumed != tokens[2].size()) fail("bad threshold value '" + tokens[2] + "'");
      } catch (const std::exception&) {
        fail("bad threshold value '" + tokens[2] + "'");
      }
      if (value <= 0.0 || value >= 1.0) fail("threshold must be in (0,1)");
      set.thresholds.push_back({tokens[1], value});
    } else if (kind == "map") {
      if (tokens.size() != 3) fail("map expects: map <resource1> <resource2>");
      if (tokens[1][0] != '/' || tokens[2][0] != '/') fail("resources must start with '/'");
      set.maps.push_back({tokens[1], tokens[2]});
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  return set;
}

std::string DirectiveSet::serialize() const {
  std::ostringstream os;
  for (const auto& m : maps) os << "map " << m.from << " " << m.to << "\n";
  for (const auto& p : prunes) os << "prune " << p.hypothesis << " " << p.resource_prefix << "\n";
  for (const auto& p : pair_prunes) os << "prunepair " << p.hypothesis << " " << p.focus << "\n";
  for (const auto& t : thresholds)
    os << "threshold " << t.hypothesis << " " << util::fmt_double(t.threshold, 4) << "\n";
  for (const auto& p : priorities)
    os << "priority " << p.hypothesis << " " << p.focus << " " << priority_name(p.priority)
       << "\n";
  return os.str();
}

DirectiveSet DirectiveSet::load(const std::string& path) {
  return parse(util::read_file(path));
}

void DirectiveSet::save(const std::string& path) const {
  util::write_file(path, serialize());
}

}  // namespace histpc::pc
