// SpeculationCache: the Performance Consultant's speculative search layer
// (FastDiagP-style pre-computation adapted to the paper's cost-gated
// refinement loop).
//
// The decision loop stays serial and authoritative; a fixed worker pool
// pre-evaluates the refinement candidates most likely to be admitted next
// by the cost gate, so that when a candidate is activated its verdict is
// already computed. The cache is the hand-off point:
//
//  * Work unit: one predicted activation wave — the pending candidates
//    (priority order, persistent seeds excluded) assumed to activate at
//    the earliest conclusion tick of the currently active probes (the
//    moment the gate next frees cost). A wave is split into
//    worker-count chunks, each evaluated by one metrics::SpecGroup over a
//    private MetricBatch.
//  * Versioning: the cache key is (metric, probe focus id, activation
//    tick bits) — the activation tick IS the entry's version. A
//    prediction that comes true is claimed by activate() with exactly
//    that key; once the loop ticks past an entry's assumed activation the
//    key can never match again and the sweep discards it.
//  * Invalidation: invalidate_stale(now) drops every entry whose assumed
//    activation tick is <= now and unclaimed (counted as discarded;
//    groups none of whose entries were claimed are cancelled so queued
//    work is skipped). finish() discards whatever remains at the end of
//    the search and finalizes the wasted-work accounting.
//
// Determinism: a claim hands the instrumentation layer a sample that is
// bit-identical to what the live engine would have produced (see
// metrics/spec_eval.h), and a miss simply falls back to the live engine —
// so the conclusion stream cannot depend on thread count, scheduling, or
// how good the predictions were. Every member function here runs on the
// decision thread; the only cross-thread traffic is inside SpecGroup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "metrics/spec_eval.h"
#include "metrics/trace_view.h"
#include "resources/focus_table.h"
#include "util/thread_pool.h"

namespace histpc::pc {

class SpeculationCache {
 public:
  /// The consultant's tick arithmetic, fixed for the whole search.
  struct Params {
    double insertion_latency = 1.0;
    double min_observation = 10.0;
    double tick = 0.5;
    double horizon = 0.0;
  };

  /// One refinement candidate of a wave. `filter` is the compiled filter
  /// of the *probe* focus (scope-adjusted), owned by the TraceView cache.
  struct Candidate {
    metrics::MetricKind metric = metrics::MetricKind::CpuTime;
    resources::FocusId fid = resources::kNoFocus;
    const metrics::FocusFilter* filter = nullptr;
  };

  struct Stats {
    std::uint64_t launched = 0;   ///< candidates handed to workers
    std::uint64_t hits = 0;       ///< claimed at a matching activation
    std::uint64_t discarded = 0;  ///< stale-swept or left over at finish()
    std::uint64_t groups = 0;     ///< SpecGroup tasks submitted
    /// Evaluation nanoseconds spent on groups none of whose candidates
    /// were ever claimed — the price of wrong predictions. Finalized by
    /// finish(); partially claimed groups count as useful.
    std::uint64_t wasted_ns = 0;
    /// Evaluation nanoseconds across every group, claimed or not — the
    /// total work moved off the decision thread. Finalized by finish().
    std::uint64_t eval_ns = 0;
  };

  SpeculationCache(const metrics::TraceView& view, util::ThreadPool& pool,
                   Params params);

  /// True if (metric, fid, activation tick) is already cached or in
  /// flight — the scheduler's relaunch guard while the gate stalls.
  bool contains(metrics::MetricKind metric, resources::FocusId fid,
                double activate_time) const;

  /// Launch one wave's candidates, chunked across the pool's workers.
  /// Duplicate keys within the wave must be pre-filtered by the caller.
  void launch_wave(std::vector<Candidate> candidates, double activate_time);

  /// Activation came true: hand over the precomputed verdict, or nullopt
  /// on a miss (never launched, or launched for a different tick). A hit
  /// removes the entry — each prediction is consumable exactly once.
  std::optional<metrics::SpecHandle> claim(metrics::MetricKind metric,
                                           resources::FocusId fid, double now);

  /// Discard entries whose assumed activation tick has passed unclaimed.
  void invalidate_stale(double now);

  /// End of search: discard everything left, cancel unstarted work, wait
  /// for in-flight groups, and finalize Stats::wasted_ns.
  void finish();

  const Stats& stats() const { return stats_; }

 private:
  using Key = std::tuple<int, resources::FocusId, std::uint64_t>;
  static Key make_key(metrics::MetricKind metric, resources::FocusId fid,
                      double activate_time);

  struct Entry {
    std::size_t group = 0;  ///< index into groups_
    std::size_t slot = 0;   ///< request index within the group
  };

  const metrics::TraceView& view_;
  util::ThreadPool& pool_;
  Params params_;
  std::map<Key, Entry> entries_;
  std::vector<std::shared_ptr<metrics::SpecGroup>> groups_;
  std::vector<std::uint32_t> claimed_;  ///< per-group claim counts
  Stats stats_;
  bool finished_ = false;
};

}  // namespace histpc::pc
