// Performance hypotheses: the "why is it slow" questions the Performance
// Consultant tests. Each hypothesis compares a continuously measured metric
// fraction against a threshold; instances where the measured value exceeds
// the threshold are bottlenecks.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metric.h"

namespace histpc::pc {

/// Wildcard accepted by directives to mean "every hypothesis".
inline constexpr std::string_view kAnyHypothesis = "*";

struct Hypothesis {
  std::string name;                ///< e.g. "ExcessiveSyncWaitingTime"
  metrics::MetricKind metric;
  double default_threshold = 0.20; ///< fraction of execution time
  /// True for hypotheses about synchronization; only these benefit from
  /// SyncObject-hierarchy refinement (the basis of the paper's general
  /// pruning directive).
  bool sync_related = false;
  /// More specific hypotheses tested (at the same focus) when this one is
  /// true — the paper's second kind of expansion, "a more specific
  /// hypothesis". Indices into the owning HypothesisSet.
  std::vector<int> children;
  /// Implicit SyncObject scope of the metric, e.g. "/SyncObject/Message"
  /// for ExcessiveMessageWaitingTime. Empty = unscoped. A focus whose
  /// SyncObject part falls outside the scope is incompatible with the
  /// hypothesis and is never tested.
  std::string sync_scope;
};

/// A tree of hypotheses. The virtual TopLevelHypothesis root is handled by
/// the search itself; the set's roots are tested at WholeProgram first and
/// expanded (by focus and by child hypothesis) when true.
class HypothesisSet {
 public:
  /// Paradyn's defaults: CPUbound, ExcessiveSyncWaitingTime,
  /// ExcessiveIOBlockingTime (paper Fig. 2), each with a 20% threshold,
  /// no child hypotheses.
  static HypothesisSet standard();

  /// standard() plus sync-wait child hypotheses:
  /// ExcessiveSyncWaitingTime -> {ExcessiveMessageWaitingTime,
  /// ExcessiveCollectiveWaitingTime}, scoped to the corresponding
  /// SyncObject subtrees.
  static HypothesisSet standard_extended();

  int add(Hypothesis h);
  const std::vector<Hypothesis>& all() const { return hyps_; }
  const Hypothesis& at(int idx) const { return hyps_.at(static_cast<std::size_t>(idx)); }
  std::size_t size() const { return hyps_.size(); }

  /// Index by name; nullopt if unknown.
  std::optional<int> index_of(std::string_view name) const;

  /// Hypotheses that are nobody's child: the TopLevelHypothesis expansion.
  std::vector<int> roots() const;

 private:
  std::vector<Hypothesis> hyps_;
};

inline constexpr std::string_view kTopLevelHypothesisName = "TopLevelHypothesis";
inline constexpr std::string_view kCpuBoundName = "CPUbound";
inline constexpr std::string_view kSyncWaitName = "ExcessiveSyncWaitingTime";
inline constexpr std::string_view kIoBlockingName = "ExcessiveIOBlockingTime";
inline constexpr std::string_view kMessageWaitName = "ExcessiveMessageWaitingTime";
inline constexpr std::string_view kCollectiveWaitName = "ExcessiveCollectiveWaitingTime";

}  // namespace histpc::pc
