// The Performance Consultant: online, automated bottleneck search over a
// (simulated) running program, optionally guided by historical search
// directives.
//
// Search mechanics (Section 2 of the paper):
//  * The virtual root (TopLevelHypothesis : WholeProgram) expands into each
//    hypothesis at WholeProgram.
//  * A node is tested by instrumenting its (hypothesis : focus) pair; after
//    a minimum observation window the measured fraction of execution time
//    is compared with the hypothesis threshold: true = bottleneck.
//  * True nodes are refined: one child per single-edge move down a resource
//    hierarchy. False nodes are not refined and their instrumentation is
//    deleted.
//  * Expansion halts while the predicted cost of enabled instrumentation
//    exceeds the cost limit and resumes when deletions bring it back down.
//
// Directive handling (Section 3):
//  * prunes remove (hypothesis : focus) candidates before they are created;
//  * high-priority pairs are instrumented at search start and persist for
//    the entire run (their conclusions can flip as data accumulates);
//  * priorities order the pending queue (high > medium > low, FIFO within);
//  * thresholds override hypothesis defaults.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "instr/instrumentation.h"
#include "metrics/trace_view.h"
#include "pc/directive_index.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"
#include "pc/shg.h"
#include "pc/speculation.h"
#include "telemetry/tracer.h"
#include "util/thread_pool.h"

namespace histpc::pc {

struct PcConfig {
  HypothesisSet hypotheses = HypothesisSet::standard();
  instr::CostModel cost_model;
  /// Seconds of collected data required before a conclusion.
  double min_observation = 10.0;
  /// Virtual sampling interval of the search loop.
  double tick = 0.5;
  /// Expansion halts while total instrumentation cost exceeds this
  /// fraction of execution.
  double cost_limit = 0.05;
  /// Delay between an instrumentation request and data collection.
  double insertion_latency = 1.0;
  /// When > 0, overrides every hypothesis threshold (used for the paper's
  /// threshold sweeps). Directive thresholds still take precedence.
  double threshold_override = -1.0;
  /// Hard stop; the search also stops when the trace ends.
  double max_time = std::numeric_limits<double>::infinity();
  /// Wall-clock budget for one run() in seconds; <= 0 (default) means
  /// unlimited. When the budget expires the search stops at the end of the
  /// current tick and the result carries stats.deadline_hit — this is how
  /// `histpc serve` propagates a request's deadline into the consultant
  /// loop. A deadline makes the *extent* of the search timing-dependent,
  /// so deadline-limited results are never bit-identity oracles (and the
  /// server never caches them).
  double wall_budget_seconds = 0.0;
  /// Keep high-priority pairs instrumented for the whole run (paper
  /// behaviour). Off = treat them as ordinary one-shot tests (ablation).
  bool persistent_high_priority = true;
  /// Measurement-perturbation model: CPU-time samples read high by this
  /// factor times the currently enabled instrumentation cost. Zero = ideal
  /// measurement (default); see instr::InstrumentationManager.
  double perturbation_factor = 0.0;
  /// When on, the search can only refine into resources the application
  /// has already exercised (TraceView::discovery_time): an online tool
  /// learns about functions and message tags as they first appear.
  /// Candidates naming undiscovered resources wait until their discovery
  /// time. Off by default (resources known up front, as when a static
  /// analysis pre-populated the hierarchies).
  bool respect_discovery_times = false;
  /// Metric-evaluation engine. Batched (default) services every active
  /// probe with one pass over each rank's new intervals per tick; off =
  /// the reference per-instance scan. Results are bit-identical
  /// (property-tested); the scan engine is kept as the oracle.
  bool batched_eval = true;
  /// > 1 enables rank-parallel batched evaluation with that many worker
  /// threads. Values can differ from the sequential engines in the last
  /// few ulps (floating-point summation order), never beyond.
  int eval_threads = 0;
  /// Speculative parallel search. 1 (default) = the pure serial decision
  /// loop (the oracle); N >= 2 = the same serial loop plus N-1 worker
  /// threads that pre-evaluate the refinement candidates most likely to
  /// be admitted next by the cost gate (pc/speculation.h); 0 =
  /// hardware_concurrency. Conclusions are bit-identical for every value
  /// — a correct prediction hands the loop the exact sample the live
  /// engine would have produced, and a wrong one falls back to the live
  /// engine — so this is purely a wall-clock knob (property-tested in
  /// tests/speculation_test.cpp). Requires interned_foci; silently serial
  /// otherwise.
  int search_threads = 1;
  /// Run the search on interned FocusIds (the view's FocusTable): SHG
  /// keying, directive lookups, refinement expansion, and instrumentation
  /// requests become integer operations, and focus names are materialized
  /// only for results, logs, and trace events. Off = the string-based
  /// reference path, kept as the property-tested oracle — both modes
  /// produce identical DiagnosisResults (tests/focus_intern_test.cpp).
  bool interned_foci = true;
  /// Structured-event destination (see telemetry/tracer.h). Null — the
  /// default — discards events at the cost of one pointer test per
  /// decision; counters and the DiagnosisResult telemetry summary are
  /// collected either way.
  telemetry::EventSink* trace_sink = nullptr;
  /// Directory of the content-addressed binary trace-snapshot cache
  /// (simmpi::TraceCache). Empty — the default — simulates every session
  /// from scratch. When set, a DiagnosisSession built from an app name
  /// keys the cache on (recorded program, network model) and reloads an
  /// already-simulated trace instead of re-running the simulator; the
  /// telemetry swap is `session.simulate` → `session.trace_load`, with
  /// `trace_cache.hit` / `trace_cache.miss` counters either way.
  std::string trace_cache_dir;
  /// Byte cap on the snapshot cache directory (LRU-evicted past it).
  std::uint64_t trace_cache_max_bytes = 256ull << 20;
};

struct BottleneckReport {
  std::string hypothesis;
  std::string focus;
  double t_found = 0.0;   ///< virtual time the node first tested true
  double fraction = 0.0;  ///< measured fraction at that conclusion
};

struct NodeSnapshot {
  std::string hypothesis;
  std::string focus;
  NodeStatus status = NodeStatus::Pending;
  Priority priority = Priority::Medium;
  double conclude_time = -1.0;
  double fraction = 0.0;
};

struct DiagnosisStats {
  std::size_t nodes_created = 0;   ///< SHG nodes excluding the virtual root
  std::size_t pairs_tested = 0;    ///< nodes that were instrumented
  std::size_t pruned_candidates = 0;
  std::size_t bottlenecks = 0;     ///< nodes that tested true
  double end_time = 0.0;           ///< virtual time the search stopped
  double last_true_time = 0.0;     ///< time the final bottleneck was found
  double peak_cost = 0.0;
  /// True when PcConfig::wall_budget_seconds expired before the search
  /// finished on its own — the reported bottlenecks are a prefix of what
  /// an unbounded search would have found.
  bool deadline_hit = false;
};

/// Search-telemetry rollup, filled for every diagnosis (tracing on or
/// off): what the search did, what the directives saved it from doing, and
/// where the wall-clock went.
struct TelemetrySummary {
  std::uint64_t pairs_tested = 0;       ///< probes inserted (== stats.pairs_tested)
  std::uint64_t conclusions_true = 0;   ///< includes persistent-pair flips
  std::uint64_t conclusions_false = 0;
  std::uint64_t refinements = 0;        ///< true nodes expanded
  std::uint64_t prune_hits_subtree = 0; ///< candidates cut by subtree prunes
  std::uint64_t prune_hits_pair = 0;    ///< candidates cut by exact-pair prunes
  std::uint64_t priority_seeds = 0;     ///< high-priority pairs queued at start
  std::uint64_t cost_gate_engagements = 0;  ///< times the cost ceiling halted expansion
  double peak_cost = 0.0;               ///< max active instrumentation cost
  double avg_cost = 0.0;                ///< time-weighted mean over the search
  /// Speculative search (search_threads >= 2; all zero when serial):
  /// candidates pre-evaluated, predictions that came true, predictions
  /// discarded, and the evaluation wall time spent on never-claimed work.
  std::uint64_t spec_launched = 0;
  std::uint64_t spec_hits = 0;
  std::uint64_t spec_discarded = 0;
  double spec_hit_rate = 0.0;  ///< hits / launched; 0 when nothing launched
  double spec_wasted_seconds = 0.0;
  /// Wall seconds by phase ("pc.advance", "pc.evaluate", "pc.expand",
  /// "pc.speculate" when speculating, plus "session.*" entries when run
  /// through a DiagnosisSession).
  std::map<std::string, double> phase_seconds;

  util::Json to_json() const;
};

struct DiagnosisResult {
  std::vector<BottleneckReport> bottlenecks;  ///< sorted by t_found
  std::vector<NodeSnapshot> nodes;            ///< full SHG snapshot
  DiagnosisStats stats;
  TelemetrySummary telemetry;

  /// Time by which `percent` (0..100] of the bottlenecks in `reference`
  /// had been found in this result; +inf if never. `reference` entries are
  /// matched by (hypothesis, focus).
  double time_to_find(const std::vector<BottleneckReport>& reference, double percent) const;
};

class PerformanceConsultant {
 public:
  PerformanceConsultant(const metrics::TraceView& view, PcConfig config,
                        DirectiveSet directives = {});

  /// Run the search to completion (or to the end of the program).
  DiagnosisResult run();

  /// Valid after run(); used for Figure 2 style rendering.
  const SearchHistoryGraph& shg() const { return shg_; }
  const instr::InstrumentationManager& instrumentation() const { return instr_; }
  const telemetry::Tracer& tracer() const { return tracer_; }

 private:
  double threshold_for(int hyp) const {
    return thresholds_by_hyp_[static_cast<std::size_t>(hyp)];
  }
  /// The focus actually instrumented for a node: the node's focus with the
  /// hypothesis's implicit SyncObject scope applied. nullopt when the
  /// focus's SyncObject part lies outside the scope (incompatible pair).
  std::optional<resources::Focus> probe_focus(int hyp, const resources::Focus& focus) const;
  /// Id twin (interned mode): pure PartId comparisons; narrowing may
  /// intern a focus whose SyncObject part is foreign to the db.
  std::optional<resources::FocusId> probe_focus_id(int hyp, resources::FocusId focus) const;
  void seed_high_priority_nodes();
  void seed_top_level();
  void enqueue(int id);
  int pop_pending();
  /// Create (or dedup) a candidate (hyp : focus) under `parent`, honoring
  /// scope compatibility, prunes, and discovery times. Undiscovered
  /// candidates are deferred and retried by release_discovered().
  void consider_candidate(int hyp, resources::Focus&& focus, int parent, double now);
  /// Id twin (interned mode): no name hashing, no part-string copies.
  void consider_candidate_id(int hyp, resources::FocusId fid, int parent, double now);
  void release_discovered(double now);
  void activate(int id, double now);
  void activate_pending(double now);
  /// Spin up the speculation layer (pool + cache) when configured; called
  /// once at the top of run(), after the horizon is known.
  void init_speculation(double horizon);
  /// One scheduling round: sweep stale entries, predict the next
  /// activation wave, and launch not-yet-speculated pending candidates.
  void speculate(double now);
  void conclude(int id, const instr::ProbeSample& sample, double now);
  void refine(int id, double now);
  void check_persistent_flip(int id, const instr::ProbeSample& sample, double now);
  bool search_finished() const;
  bool has_pending() const;
  DiagnosisResult build_result(double end_time);
  /// Record a prune hit (registry counter + event) for a rejected candidate.
  void note_prune_hit(DirectiveSet::PruneKind kind, int hyp,
                      const resources::Focus& focus, double now);
  /// Id twin: materializes the focus name only when an event sink is
  /// attached (counters-only searches stay name-free).
  void note_prune_hit_id(DirectiveSet::PruneKind kind, int hyp,
                         resources::FocusId fid, double now);
  /// Emit a search event when tracing is on; no-op (and no string
  /// materialization) otherwise. `hyp` < 0 omits the hypothesis.
  void trace_event(telemetry::EventKind kind, double t, int hyp,
                   const std::string& focus_name, double value = 0.0,
                   double threshold = 0.0, const char* detail = "");

  const metrics::TraceView& view_;
  PcConfig config_;
  DirectiveSet directives_;
  /// Built once from directives_ after apply_mappings(); answers the
  /// per-candidate prune/priority/threshold queries in O(1)–O(log n)
  /// instead of scanning the directive list (DirectiveSet remains the
  /// property-tested oracle).
  DirectiveIndex directive_index_;
  // Declared before instr_: the instrumentation manager (and through it the
  // batched metric engine) reports into this tracer.
  telemetry::Tracer tracer_;
  instr::InstrumentationManager instr_;
  SearchHistoryGraph shg_;

  /// Interned-mode state (config_.interned_foci): the view's FocusTable —
  /// null in string (oracle) mode. The table is owned by the TraceView and
  /// internally synchronized, so several consultants (parallel variant
  /// runs) share it safely.
  resources::FocusTable* foci_ = nullptr;
  /// Index of the SyncObject hierarchy (for probe_focus_id), -1 if absent.
  int sync_idx_ = -1;
  /// Per-hypothesis interned sync_scope PartId (kNoPart when unscoped).
  std::vector<resources::PartId> scope_pids_;
  /// Effective thresholds resolved once at construction (directive >
  /// override > hypothesis default); read on every conclusion.
  std::vector<double> thresholds_by_hyp_;

  struct DeferredCandidate {
    int hyp;
    resources::Focus focus;      ///< string mode (empty in interned mode)
    resources::FocusId fid;      ///< interned mode (kNoFocus in string mode)
    int parent;
    double available_at;
  };
  std::vector<DeferredCandidate> deferred_;  ///< awaiting resource discovery

  /// Priority-tiered FIFO queues. Deques: pop_pending() consumes from the
  /// front while refinement pushes to the back, and a vector front-erase
  /// made each pop O(queue length).
  std::deque<int> queue_high_, queue_medium_, queue_low_;
  std::vector<int> active_;             ///< node ids with live probes
  std::size_t unconcluded_active_ = 0;  ///< active nodes awaiting first conclusion
  /// Cost of the standing high-priority instrumentation. The expansion
  /// throttle meters the search's *additional* instrumentation above this
  /// baseline; otherwise a large persistent set would freeze the search
  /// for the whole run.
  double persistent_cost_ = 0.0;
  std::size_t pruned_candidates_ = 0;
  /// Expansion currently halted by the cost ceiling (edge-detected so one
  /// long stall emits a single cost_gate event, not one per tick).
  bool cost_gated_ = false;
  /// Integral of total instrumentation cost over virtual time (for the
  /// summary's time-weighted average).
  double cost_integral_ = 0.0;
  /// True conclusions in discovery order; names are materialized only in
  /// build_result() so a counters-only search stays string-free.
  struct Found {
    int id;
    double t;
    double fraction;
  };
  std::vector<Found> found_;
  /// Speculation layer (null unless search_threads >= 2 and interned
  /// mode). The pool is declared before the cache: cache.finish() runs in
  /// run(), and destruction order (cache, then pool) keeps tasks — which
  /// hold shared_ptrs to their groups — valid either way.
  std::unique_ptr<util::ThreadPool> spec_pool_;
  std::unique_ptr<SpeculationCache> spec_;
  double horizon_ = 0.0;  ///< run()'s search horizon, for wave prediction
  /// Memoization of speculate(): the (wave, admission set) computation is
  /// a pure function of the search state summarized here, so ticks that
  /// conclude or activate nothing skip the recomputation entirely. A
  /// missed recomputation can only cost efficiency (an unspeculated
  /// candidate falls back to the live engine), never correctness.
  std::tuple<std::size_t, std::size_t, std::size_t, double, double, std::size_t,
             std::size_t, std::size_t>
      spec_sig_{};
  double spec_wave_ = -1.0;
  /// node id -> (activate_time it was computed for, predicted conclude
  /// tick): the tick-by-tick replay is walked once per activation.
  std::unordered_map<int, std::pair<double, double>> spec_predict_;
  /// (metric, focus) -> predicted probe cost: the model is pure, so each
  /// pair is priced once per search.
  std::map<std::pair<int, resources::FocusId>, double> spec_cost_;
  bool ran_ = false;
  bool deadline_hit_ = false;  ///< wall_budget_seconds expired mid-search
};

}  // namespace histpc::pc
