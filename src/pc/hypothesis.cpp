#include "pc/hypothesis.h"

#include <stdexcept>

namespace histpc::pc {

HypothesisSet HypothesisSet::standard() {
  HypothesisSet set;
  set.add({std::string(kCpuBoundName), metrics::MetricKind::CpuTime, 0.20, false, {}, ""});
  set.add({std::string(kSyncWaitName), metrics::MetricKind::SyncWaitTime, 0.20, true, {}, ""});
  set.add({std::string(kIoBlockingName), metrics::MetricKind::IoWaitTime, 0.20, false, {}, ""});
  return set;
}

HypothesisSet HypothesisSet::standard_extended() {
  HypothesisSet set = standard();
  const int msg = set.add({std::string(kMessageWaitName), metrics::MetricKind::SyncWaitTime,
                           0.20, true, {}, "/SyncObject/Message"});
  const int coll = set.add({std::string(kCollectiveWaitName), metrics::MetricKind::SyncWaitTime,
                            0.20, true, {}, "/SyncObject/Collective"});
  const int sync = *set.index_of(kSyncWaitName);
  set.hyps_[static_cast<std::size_t>(sync)].children = {msg, coll};
  return set;
}

int HypothesisSet::add(Hypothesis h) {
  for (int child : h.children)
    if (child < 0 || child >= static_cast<int>(hyps_.size()))
      throw std::out_of_range("hypothesis child index out of range");
  hyps_.push_back(std::move(h));
  return static_cast<int>(hyps_.size() - 1);
}

std::optional<int> HypothesisSet::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < hyps_.size(); ++i)
    if (hyps_[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::vector<int> HypothesisSet::roots() const {
  std::vector<bool> is_child(hyps_.size(), false);
  for (const auto& h : hyps_)
    for (int c : h.children) is_child[static_cast<std::size_t>(c)] = true;
  std::vector<int> out;
  for (std::size_t i = 0; i < hyps_.size(); ++i)
    if (!is_child[i]) out.push_back(static_cast<int>(i));
  return out;
}

}  // namespace histpc::pc
