#include "instr/instrumentation.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "metrics/metric.h"

namespace histpc::instr {

InstrumentationManager::InstrumentationManager(const metrics::TraceView& view,
                                               CostModel cost_model, double insertion_latency,
                                               double perturbation_factor, EvalConfig eval,
                                               telemetry::Tracer* tracer)
    : view_(view),
      cost_model_(cost_model),
      insertion_latency_(insertion_latency),
      perturbation_factor_(perturbation_factor),
      eval_(eval),
      tracer_(tracer) {
  if (insertion_latency < 0) throw std::invalid_argument("negative insertion latency");
  if (perturbation_factor < 0) throw std::invalid_argument("negative perturbation factor");
  if (eval_.batched)
    batch_ = std::make_unique<metrics::MetricBatch>(
        view_, eval_.threads, tracer_ ? &tracer_->registry() : nullptr);
}

ProbeId InstrumentationManager::insert(metrics::MetricKind metric,
                                       const resources::Focus& focus, double now) {
  // The compiled-filter cache makes repeated insertions over the same
  // focus (and the cost model's compile of it) a hash lookup.
  const metrics::FocusFilter& filter = view_.compiled(focus);
  return insert_probe(metric, filter, cost_model_.probe_cost(view_, focus, metric), now,
                      tracer_ && tracer_->tracing() ? focus.name() : std::string());
}

ProbeId InstrumentationManager::insert(metrics::MetricKind metric,
                                       resources::FocusId focus, double now) {
  const metrics::FocusFilter& filter = view_.compiled(focus);
  return insert_probe(metric, filter, cost_model_.probe_cost(view_, focus, metric), now,
                      tracer_ && tracer_->tracing() ? view_.foci().name(focus)
                                                    : std::string());
}

ProbeId InstrumentationManager::insert_speculated(metrics::MetricKind metric,
                                                  resources::FocusId focus, double now,
                                                  metrics::SpecHandle handle) {
  const metrics::FocusFilter& filter = view_.compiled(focus);
  Probe p;
  p.metric = metric;
  p.selected_ranks = filter.num_selected_ranks;
  p.cost = cost_model_.probe_cost(view_, focus, metric);
  p.spec = std::move(handle);
  p.start = now + insertion_latency_;
  p.active = true;
  p.focus_name = tracer_ && tracer_->tracing() ? view_.foci().name(focus) : std::string();
  probes_.push_back(std::move(p));
  total_cost_ += probes_.back().cost;
  peak_cost_ = std::max(peak_cost_, total_cost_);
  ++total_inserted_;
  ++num_active_;
  last_time_ = std::max(last_time_, now);
  if (tracer_) {
    tracer_->registry().add("instr.inserts");
    tracer_->registry().gauge_max("instr.peak_cost", peak_cost_);
    if (tracer_->tracing()) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::ProbeInsert;
      e.t = now;
      e.focus = probes_.back().focus_name;
      e.value = probes_.back().cost;
      e.cost = total_cost_;
      e.detail = metrics::metric_name(metric);
      tracer_->emit(std::move(e));
    }
  }
  return static_cast<ProbeId>(probes_.size() - 1);
}

ProbeId InstrumentationManager::insert_probe(metrics::MetricKind metric,
                                             const metrics::FocusFilter& filter,
                                             double cost, double now,
                                             std::string focus_name_if_tracing) {
  Probe p;
  p.metric = metric;
  p.selected_ranks = filter.num_selected_ranks;
  p.cost = cost;
  p.start = now + insertion_latency_;
  if (eval_.batched) {
    p.slot = batch_->add(metric, filter, now + insertion_latency_);
  } else {
    p.instance.emplace(view_, metric, filter, now + insertion_latency_);
  }
  p.active = true;
  p.focus_name = std::move(focus_name_if_tracing);
  probes_.push_back(std::move(p));
  total_cost_ += probes_.back().cost;
  peak_cost_ = std::max(peak_cost_, total_cost_);
  ++total_inserted_;
  ++num_active_;
  last_time_ = std::max(last_time_, now);
  if (tracer_) {
    tracer_->registry().add("instr.inserts");
    tracer_->registry().gauge_max("instr.peak_cost", peak_cost_);
    if (tracer_->tracing()) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::ProbeInsert;
      e.t = now;
      e.focus = probes_.back().focus_name;
      e.value = probes_.back().cost;
      e.cost = total_cost_;
      e.detail = metrics::metric_name(metric);
      tracer_->emit(std::move(e));
    }
  }
  return static_cast<ProbeId>(probes_.size() - 1);
}

void InstrumentationManager::remove(ProbeId id) {
  Probe& p = probes_.at(static_cast<std::size_t>(id));
  if (!p.active) throw std::logic_error("probe removed twice");
  p.active = false;
  if (batch_ && p.slot >= 0) batch_->remove(p.slot);
  total_cost_ -= p.cost;
  --num_active_;
  // Numerical hygiene: total cost is a running sum of removals; clamp tiny
  // negative residue.
  if (total_cost_ < 0 && total_cost_ > -1e-12) total_cost_ = 0;
  if (tracer_) {
    tracer_->registry().add("instr.removes");
    if (tracer_->tracing()) {
      telemetry::Event e;
      e.kind = telemetry::EventKind::ProbeRemove;
      e.t = last_time_;
      e.focus = p.focus_name;
      e.value = p.cost;
      e.cost = total_cost_;
      tracer_->emit(std::move(e));
    }
  }
}

bool InstrumentationManager::is_active(ProbeId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < probes_.size() &&
         probes_[static_cast<std::size_t>(id)].active;
}

void InstrumentationManager::advance(double now) {
  last_time_ = std::max(last_time_, now);
  if (batch_) {
    batch_->advance_all(now);
    return;
  }
  for (Probe& p : probes_)
    if (p.active && p.instance) p.instance->advance(now);
}

ProbeSample InstrumentationManager::read(ProbeId id) const {
  const Probe& p = probes_.at(static_cast<std::size_t>(id));
  ProbeSample s;
  if (p.spec) {
    if (last_time_ >= p.spec.group->conclude_time()) {
      // The wave's conclusion tick: the decision loop consumes this
      // probe's verdict now. The worker has had the whole
      // activation-to-conclusion window to finish; block only if it is
      // somehow still in flight, and account the stall.
      if (tracer_ && !p.spec.group->ready()) {
        const auto wait_start = std::chrono::steady_clock::now();
        (void)p.spec.group->wait_sample(p.spec.index);
        tracer_->registry().add_seconds(
            "pc.spec.wait", std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wait_start)
                                .count());
      }
      const metrics::SpecSample& ss = p.spec.group->wait_sample(p.spec.index);
      s.value = ss.value;
      s.observed = ss.observed;
      s.fraction = ss.fraction;
    } else {
      // Pre-conclusion reads: the loop only tests the observed-window
      // length (and never concludes before the predicted tick, by the
      // shared tick arithmetic), so value/fraction are never consumed
      // here. observed matches MetricBatch::observed bit for bit.
      s.observed = std::max(0.0, last_time_ - p.start);
    }
  } else if (batch_) {
    s.value = batch_->value(p.slot);
    s.observed = batch_->observed(p.slot);
    s.fraction = batch_->fraction(p.slot);
  } else {
    const auto& inst = *p.instance;
    s.value = inst.value();
    s.observed = inst.observed();
    s.fraction = inst.fraction();
  }
  s.selected_ranks = p.selected_ranks;
  // Perturbation: probe executions are CPU work the application would not
  // otherwise do, so CPU-time readings are inflated in proportion to the
  // instrumentation currently enabled.
  if (perturbation_factor_ > 0 && p.metric == metrics::MetricKind::CpuTime) {
    const double inflation = 1.0 + perturbation_factor_ * total_cost_;
    s.value *= inflation;
    s.fraction *= inflation;
  }
  return s;
}

double InstrumentationManager::probe_cost(ProbeId id) const {
  return probes_.at(static_cast<std::size_t>(id)).cost;
}

double InstrumentationManager::predict_cost(metrics::MetricKind metric,
                                            const resources::Focus& focus) const {
  return cost_model_.probe_cost(view_, focus, metric);
}

}  // namespace histpc::instr
