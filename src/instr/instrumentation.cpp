#include "instr/instrumentation.h"

#include <stdexcept>

namespace histpc::instr {

InstrumentationManager::InstrumentationManager(const metrics::TraceView& view,
                                               CostModel cost_model, double insertion_latency,
                                               double perturbation_factor)
    : view_(view),
      cost_model_(cost_model),
      insertion_latency_(insertion_latency),
      perturbation_factor_(perturbation_factor) {
  if (insertion_latency < 0) throw std::invalid_argument("negative insertion latency");
  if (perturbation_factor < 0) throw std::invalid_argument("negative perturbation factor");
}

ProbeId InstrumentationManager::insert(metrics::MetricKind metric,
                                       const resources::Focus& focus, double now) {
  Probe p;
  p.metric = metric;
  p.cost = cost_model_.probe_cost(view_, focus, metric);
  p.instance.emplace(view_, metric, view_.compile(focus), now + insertion_latency_);
  p.active = true;
  probes_.push_back(std::move(p));
  total_cost_ += probes_.back().cost;
  peak_cost_ = std::max(peak_cost_, total_cost_);
  ++total_inserted_;
  ++num_active_;
  return static_cast<ProbeId>(probes_.size() - 1);
}

void InstrumentationManager::remove(ProbeId id) {
  Probe& p = probes_.at(static_cast<std::size_t>(id));
  if (!p.active) throw std::logic_error("probe removed twice");
  p.active = false;
  total_cost_ -= p.cost;
  --num_active_;
  // Numerical hygiene: total cost is a running sum of removals; clamp tiny
  // negative residue.
  if (total_cost_ < 0 && total_cost_ > -1e-12) total_cost_ = 0;
}

bool InstrumentationManager::is_active(ProbeId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < probes_.size() &&
         probes_[static_cast<std::size_t>(id)].active;
}

void InstrumentationManager::advance(double now) {
  for (Probe& p : probes_)
    if (p.active) p.instance->advance(now);
}

ProbeSample InstrumentationManager::read(ProbeId id) const {
  const Probe& p = probes_.at(static_cast<std::size_t>(id));
  const auto& inst = *p.instance;
  ProbeSample s;
  s.value = inst.value();
  s.observed = inst.observed();
  s.fraction = inst.fraction();
  s.selected_ranks = inst.filter().num_selected_ranks;
  // Perturbation: probe executions are CPU work the application would not
  // otherwise do, so CPU-time readings are inflated in proportion to the
  // instrumentation currently enabled.
  if (perturbation_factor_ > 0 && p.metric == metrics::MetricKind::CpuTime) {
    const double inflation = 1.0 + perturbation_factor_ * total_cost_;
    s.value *= inflation;
    s.fraction *= inflation;
  }
  return s;
}

double InstrumentationManager::probe_cost(ProbeId id) const {
  return probes_.at(static_cast<std::size_t>(id)).cost;
}

double InstrumentationManager::predict_cost(metrics::MetricKind metric,
                                            const resources::Focus& focus) const {
  return cost_model_.probe_cost(view_, focus, metric);
}

}  // namespace histpc::instr
