#include "instr/cost_model.h"

#include "util/strings.h"

namespace histpc::instr {

double CostModel::probe_cost(const metrics::TraceView& view, const resources::Focus& focus,
                             metrics::MetricKind metric) const {
  (void)metric;  // all time metrics instrument the same points in this model
  const auto& db = view.resources();
  double cost = base_per_rank;

  // Code-part breadth.
  int code_idx = db.hierarchy_index(resources::kCodeHierarchy);
  if (code_idx >= 0 && static_cast<std::size_t>(code_idx) < focus.size()) {
    const auto comps = util::split(focus.part(static_cast<std::size_t>(code_idx)), '/');
    const std::size_t depth = comps.size() - 2;  // 0 = root, 1 = module, 2 = function
    if (depth == 0) cost *= whole_code_multiplier;
    else if (depth == 1) cost *= module_multiplier;
  }

  // SyncObject constraint.
  int sync_idx = db.hierarchy_index(resources::kSyncObjectHierarchy);
  if (sync_idx >= 0 && static_cast<std::size_t>(sync_idx) < focus.size()) {
    const auto comps = util::split(focus.part(static_cast<std::size_t>(sync_idx)), '/');
    if (comps.size() > 2) cost *= sync_constrained_multiplier;
  }

  // Number of instrumented processes (cached compile: the manager compiles
  // the same focus again when the probe is inserted).
  cost *= std::max(1, view.compiled(focus).num_selected_ranks);
  return cost;
}

double CostModel::probe_cost(const metrics::TraceView& view, resources::FocusId focus,
                             metrics::MetricKind metric) const {
  (void)metric;
  const auto& db = view.resources();
  resources::FocusTable& table = view.foci();
  double cost = base_per_rank;

  int code_idx = db.hierarchy_index(resources::kCodeHierarchy);
  if (code_idx >= 0 && static_cast<std::size_t>(code_idx) < table.num_hierarchies()) {
    const auto h = static_cast<std::size_t>(code_idx);
    const int depth = table.part_depth(h, table.part(focus, h));
    if (depth == 0) cost *= whole_code_multiplier;
    else if (depth == 1) cost *= module_multiplier;
  }

  int sync_idx = db.hierarchy_index(resources::kSyncObjectHierarchy);
  if (sync_idx >= 0 && static_cast<std::size_t>(sync_idx) < table.num_hierarchies()) {
    const auto h = static_cast<std::size_t>(sync_idx);
    if (table.part_depth(h, table.part(focus, h)) > 0) cost *= sync_constrained_multiplier;
  }

  cost *= std::max(1, view.compiled(focus).num_selected_ranks);
  return cost;
}

}  // namespace histpc::instr
