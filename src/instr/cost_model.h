// Instrumentation cost model.
//
// Dynamic instrumentation perturbs the application; Paradyn continually
// tracks the predicted cost of enabled instrumentation as a fraction of
// execution and halts search expansion above a threshold. We model a
// probe's cost from the breadth of its focus: instrumenting every function
// on every process costs far more than one function on one process.
#pragma once

#include "metrics/metric.h"
#include "metrics/trace_view.h"
#include "resources/focus.h"

namespace histpc::instr {

struct CostModel {
  /// Cost (fraction of one process's execution) of a function-granularity
  /// probe on a single process.
  double base_per_rank = 0.004;
  /// Multiplier when the Code part selects a whole module (more
  /// instrumentation points).
  double module_multiplier = 2.5;
  /// Multiplier when the Code part is the hierarchy root (every function).
  double whole_code_multiplier = 8.0;
  /// Extra factor when the focus constrains the SyncObject hierarchy
  /// (per-message filtering at each synchronization point).
  double sync_constrained_multiplier = 1.5;

  /// Predicted cost fraction of a probe for (metric : focus).
  double probe_cost(const metrics::TraceView& view, const resources::Focus& focus,
                    metrics::MetricKind metric) const;

  /// Id twin: same value, part depths read from the view's FocusTable
  /// instead of splitting part strings.
  double probe_cost(const metrics::TraceView& view, resources::FocusId focus,
                    metrics::MetricKind metric) const;
};

}  // namespace histpc::instr
