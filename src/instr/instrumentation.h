// InstrumentationManager: the Dyninst/Paradyn dynamic-instrumentation
// substitute. Probes are inserted and deleted at virtual times; a probe
// observes data only after its insertion completes (request time +
// insertion latency), and the sum of active probe costs is the load the
// Performance Consultant's expansion throttle watches.
//
// Two metric-evaluation engines service the probes:
//  * batched (default): all probes share one MetricBatch — each rank's new
//    intervals are visited once per advance and fanned out to every
//    matching probe;
//  * per-instance scan: one MetricInstance per probe, each walking its own
//    cursors. Kept as the reference oracle; the batched engine is
//    property-tested bit-identical against it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "instr/cost_model.h"
#include "metrics/metric_batch.h"
#include "metrics/metric_instance.h"
#include "metrics/spec_eval.h"
#include "telemetry/tracer.h"

namespace histpc::instr {

using ProbeId = std::int32_t;
inline constexpr ProbeId kNoProbe = -1;

struct ProbeSample {
  double value = 0.0;     ///< metric seconds since insertion
  double observed = 0.0;  ///< seconds of data collected
  double fraction = 0.0;  ///< value / (observed * selected ranks)
  int selected_ranks = 0;
};

/// Metric-evaluation engine selection (PcConfig carries one of these).
struct EvalConfig {
  /// Batched engine (one interval pass fanned out to all probes) vs the
  /// reference per-instance scan. Values are bit-identical.
  bool batched = true;
  /// > 1 enables rank-parallel batched evaluation with that many worker
  /// threads (sequential when <= 1 or when the scan engine is selected).
  int threads = 0;
};

class InstrumentationManager {
 public:
  /// `perturbation_factor` models the measurement error instrumentation
  /// itself introduces: probe executions burn CPU, so CPU-time samples
  /// read high by factor * (current total cost). Zero (the default) gives
  /// ideal measurements; the cost ceiling exists precisely to keep this
  /// term small on a real machine.
  /// `tracer`, when given, receives probe_insert/probe_remove events and
  /// instrumentation counters; the batched engine reports its per-tick
  /// evaluation volume into the same registry. Null = no telemetry.
  InstrumentationManager(const metrics::TraceView& view, CostModel cost_model,
                         double insertion_latency, double perturbation_factor = 0.0,
                         EvalConfig eval = {}, telemetry::Tracer* tracer = nullptr);

  /// Request insertion of a probe for (metric : focus) at time `now`. Data
  /// collection begins at now + insertion latency.
  ProbeId insert(metrics::MetricKind metric, const resources::Focus& focus, double now);

  /// Id twin: the focus is an id in the view's FocusTable. No focus-name
  /// string is built unless event tracing is on.
  ProbeId insert(metrics::MetricKind metric, resources::FocusId focus, double now);

  /// Insert a probe whose verdict was speculatively precomputed: the probe
  /// carries full cost (the application would have paid it) but is backed
  /// by the handle's SpecSample instead of a live engine slot. read()
  /// before the group's conclusion tick reports only the observed-window
  /// length (the decision loop never consumes value/fraction of an
  /// unconcluded probe); at the conclusion tick it returns the
  /// precomputed sample — bit-identical to what a live slot would have
  /// produced — blocking on the worker only if the evaluation is somehow
  /// still in flight.
  ProbeId insert_speculated(metrics::MetricKind metric, resources::FocusId focus,
                            double now, metrics::SpecHandle handle);

  /// Delete a probe, releasing its cost immediately.
  void remove(ProbeId id);

  bool is_active(ProbeId id) const;

  /// Advance all active probes' accumulators to `now`.
  void advance(double now);

  /// Current sample for an active probe (advance() first).
  ProbeSample read(ProbeId id) const;

  double probe_cost(ProbeId id) const;
  /// Predicted cost of a probe that has not been inserted yet.
  double predict_cost(metrics::MetricKind metric, const resources::Focus& focus) const;

  /// Sum of active probe costs (the expansion throttle input).
  double total_cost() const { return total_cost_; }
  /// Largest total cost seen over the run.
  double peak_cost() const { return peak_cost_; }
  /// Lifetime number of insertions.
  std::size_t total_inserted() const { return total_inserted_; }
  std::size_t num_active() const { return num_active_; }

  double insertion_latency() const { return insertion_latency_; }
  const EvalConfig& eval_config() const { return eval_; }

 private:
  /// Common insertion tail once the filter, cost, and (only-if-tracing)
  /// focus name have been resolved by the string or id front end.
  ProbeId insert_probe(metrics::MetricKind metric, const metrics::FocusFilter& filter,
                       double cost, double now, std::string focus_name_if_tracing);

  struct Probe {
    std::optional<metrics::MetricInstance> instance;  ///< scan engine only
    metrics::MetricBatch::SlotId slot = -1;           ///< batched engine only
    metrics::SpecHandle spec;                         ///< speculated probes only
    metrics::MetricKind metric = metrics::MetricKind::CpuTime;
    std::string focus_name;  ///< populated only while event tracing is on
    int selected_ranks = 0;
    double cost = 0.0;
    double start = 0.0;  ///< observation start (insert time + latency)
    bool active = false;
  };

  const metrics::TraceView& view_;
  CostModel cost_model_;
  double insertion_latency_;
  double perturbation_factor_;
  EvalConfig eval_;
  telemetry::Tracer* tracer_ = nullptr;
  std::unique_ptr<metrics::MetricBatch> batch_;
  std::vector<Probe> probes_;
  double last_time_ = 0.0;  ///< most recent insert/advance time (for removals)
  double total_cost_ = 0.0;
  double peak_cost_ = 0.0;
  std::size_t total_inserted_ = 0;
  std::size_t num_active_ = 0;
};

}  // namespace histpc::instr
