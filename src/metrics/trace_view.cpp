#include "metrics/trace_view.h"

#include <algorithm>
#include <limits>

#include "metrics/block_index.h"
#include "metrics/interval_index.h"
#include "metrics/metric_instance.h"
#include "util/strings.h"

namespace histpc::metrics {

using resources::Focus;
using resources::ResourceDb;
using simmpi::ExecutionTrace;
using simmpi::Interval;
using simmpi::IntervalState;

bool FocusFilter::matches(const Interval& iv, MetricKind metric) const {
  // State/metric correspondence first (cheapest reject).
  switch (metric) {
    case MetricKind::CpuTime:
      if (iv.state != IntervalState::Cpu) return false;
      break;
    case MetricKind::SyncWaitTime:
      if (iv.state != IntervalState::SyncWait) return false;
      break;
    case MetricKind::IoWaitTime:
      if (iv.state != IntervalState::IoWait) return false;
      break;
    case MetricKind::ExecTime:
      break;  // every attributed interval counts
  }
  // SyncObject constraint: only wait intervals carry a sync object; other
  // states cannot satisfy a constrained part.
  if (!sync_unconstrained) {
    if (iv.state != IntervalState::SyncWait || iv.sync_object == simmpi::kNoSyncObject)
      return false;
    if (!sync_objects[static_cast<std::size_t>(iv.sync_object)]) return false;
  }
  if (iv.func == simmpi::kNoFunc) return accept_nofunc;
  return funcs[static_cast<std::size_t>(iv.func)];
}

void FocusFilter::finalize() {
  num_selected_ranks =
      static_cast<int>(std::count(ranks.begin(), ranks.end(), true));
  all_funcs =
      accept_nofunc && std::find(funcs.begin(), funcs.end(), false) == funcs.end();
  selected_funcs.clear();
  if (!all_funcs)
    for (std::size_t f = 0; f < funcs.size(); ++f)
      if (funcs[f]) selected_funcs.push_back(static_cast<std::int32_t>(f));
  selected_syncs.clear();
  if (!sync_unconstrained)
    for (std::size_t s = 0; s < sync_objects.size(); ++s)
      if (sync_objects[s]) selected_syncs.push_back(static_cast<std::int32_t>(s));

  func_words.assign((funcs.size() + 1 + 63) / 64, 0);
  for (std::size_t f = 0; f < funcs.size(); ++f)
    if (funcs[f]) func_words[f / 64] |= std::uint64_t{1} << (f % 64);
  if (accept_nofunc)
    func_words[funcs.size() / 64] |= std::uint64_t{1} << (funcs.size() % 64);
  sync_words.assign(sync_unconstrained ? 0 : (sync_objects.size() + 63) / 64, 0);
  if (!sync_unconstrained)
    for (std::size_t s = 0; s < sync_objects.size(); ++s)
      if (sync_objects[s]) sync_words[s / 64] |= std::uint64_t{1} << (s % 64);
}

TraceView::TraceView(const ExecutionTrace& trace, const simmpi::TraceColumns* columns)
    : trace_(trace), db_(ResourceDb::with_standard_hierarchies()) {
  auto& code = db_.hierarchy(resources::kCodeHierarchy);
  for (const auto& f : trace.functions) {
    resources::ResourceId mod = code.add_child(code.root(), f.module);
    code.add_child(mod, f.function);
  }
  auto& machine = db_.hierarchy(resources::kMachineHierarchy);
  for (const auto& n : trace.machine.node_names) machine.add_child(machine.root(), n);
  auto& process = db_.hierarchy(resources::kProcessHierarchy);
  for (const auto& p : trace.machine.process_names) process.add_child(process.root(), p);
  auto& sync = db_.hierarchy(resources::kSyncObjectHierarchy);
  for (const auto& s : trace.sync_objects) sync.add_path("/SyncObject/" + s);

  compute_discovery_times();
  index_ = std::make_unique<IntervalIndex>(trace_, columns);
  blocks_ = std::make_unique<BlockIndex>(trace_, columns);
  // The db is complete from here on: the table's hierarchy snapshot and
  // the per-ResourceId discovery vectors stay valid for the view's life.
  foci_ = std::make_unique<resources::FocusTable>(db_);
  discovery_by_resource_.resize(db_.num_hierarchies());
  for (std::size_t h = 0; h < db_.num_hierarchies(); ++h) {
    const auto& tree = db_.hierarchy(h);
    auto& times = discovery_by_resource_[h];
    times.resize(tree.size());
    for (std::size_t rid = 0; rid < tree.size(); ++rid)
      times[rid] = discovery_time(tree.node(static_cast<resources::ResourceId>(rid)).full_name);
  }
}

TraceView::~TraceView() = default;

void TraceView::compute_discovery_times() {
  // Machine and process resources are known at startup.
  for (const auto& n : trace_.machine.node_names) discovery_["/Machine/" + n] = 0.0;
  for (const auto& p : trace_.machine.process_names) discovery_["/Process/" + p] = 0.0;

  // Functions, modules, and sync objects appear when first executed. One
  // linear pass; intervals are time-sorted per rank, so the first sighting
  // per rank is the earliest on that rank.
  std::vector<double> func_first(trace_.functions.size(),
                                 std::numeric_limits<double>::infinity());
  std::vector<double> sync_first(trace_.sync_objects.size(),
                                 std::numeric_limits<double>::infinity());
  for (const auto& rank : trace_.ranks) {
    std::vector<bool> func_seen(trace_.functions.size(), false);
    std::vector<bool> sync_seen(trace_.sync_objects.size(), false);
    for (const auto& iv : rank.intervals) {
      if (iv.func != simmpi::kNoFunc && !func_seen[iv.func]) {
        func_seen[iv.func] = true;
        func_first[iv.func] = std::min(func_first[iv.func], iv.t0);
      }
      if (iv.sync_object != simmpi::kNoSyncObject && !sync_seen[iv.sync_object]) {
        sync_seen[iv.sync_object] = true;
        sync_first[iv.sync_object] = std::min(sync_first[iv.sync_object], iv.t0);
      }
    }
  }
  for (std::size_t f = 0; f < trace_.functions.size(); ++f) {
    const auto& fi = trace_.functions[f];
    const std::string func_name = "/Code/" + fi.module + "/" + fi.function;
    const std::string mod_name = "/Code/" + fi.module;
    discovery_[func_name] = func_first[f];
    auto [it, inserted] = discovery_.emplace(mod_name, func_first[f]);
    if (!inserted) it->second = std::min(it->second, func_first[f]);
  }
  for (std::size_t s = 0; s < trace_.sync_objects.size(); ++s) {
    std::string name = "/SyncObject/" + trace_.sync_objects[s];
    discovery_[name] = sync_first[s];
    // Intermediate levels (e.g. /SyncObject/Message) appear with their
    // first child.
    auto slash = name.rfind('/');
    const std::string parent = name.substr(0, slash);
    auto [it, inserted] = discovery_.emplace(parent, sync_first[s]);
    if (!inserted) it->second = std::min(it->second, sync_first[s]);
  }
}

double TraceView::discovery_time(const std::string& resource_name) const {
  // Hierarchy roots are always known.
  if (resource_name.find('/', 1) == std::string::npos) return 0.0;
  auto it = discovery_.find(resource_name);
  return it == discovery_.end() ? std::numeric_limits<double>::infinity() : it->second;
}

FocusFilter TraceView::compile(const Focus& focus) const {
  FocusFilter filter;
  const std::size_t nfuncs = trace_.functions.size();
  const std::size_t nranks = static_cast<std::size_t>(trace_.num_ranks());
  const std::size_t nsync = trace_.sync_objects.size();
  filter.funcs.assign(nfuncs, true);
  filter.ranks.assign(nranks, true);
  filter.sync_objects.assign(nsync, true);

  for (std::size_t h = 0; h < focus.size() && h < db_.num_hierarchies(); ++h) {
    const std::string& part = focus.part(h);
    auto comps = util::split(part, '/');
    // comps = {"", HierarchyName, labels...}
    if (comps.size() <= 2) continue;  // hierarchy root: unconstrained
    const std::string& hname = comps[1];
    if (hname == resources::kCodeHierarchy) {
      filter.accept_nofunc = false;
      const std::string& module = comps[2];
      const std::string* function = comps.size() > 3 ? &comps[3] : nullptr;
      bool any = false;
      for (std::size_t f = 0; f < nfuncs; ++f) {
        const auto& fi = trace_.functions[f];
        filter.funcs[f] =
            fi.module == module && (function == nullptr || fi.function == *function);
        any = any || filter.funcs[f];
      }
      if (!any)
        filter.diagnostics.push_back("part '" + part +
                                     "' matched no recorded function in hierarchy 'Code'");
    } else if (hname == resources::kMachineHierarchy) {
      const std::string& node = comps[2];
      bool any = false;
      for (std::size_t r = 0; r < nranks; ++r) {
        int node_idx = trace_.machine.rank_to_node[r];
        if (trace_.machine.node_names[static_cast<std::size_t>(node_idx)] != node)
          filter.ranks[r] = false;
        else
          any = true;
      }
      if (!any)
        filter.diagnostics.push_back("part '" + part +
                                     "' matched no node in hierarchy 'Machine'");
    } else if (hname == resources::kProcessHierarchy) {
      const std::string& proc = comps[2];
      bool any = false;
      for (std::size_t r = 0; r < nranks; ++r) {
        if (trace_.machine.process_names[r] != proc)
          filter.ranks[r] = false;
        else
          any = true;
      }
      if (!any)
        filter.diagnostics.push_back("part '" + part +
                                     "' matched no process in hierarchy 'Process'");
    } else if (hname == resources::kSyncObjectHierarchy) {
      filter.sync_unconstrained = false;
      bool any = false;
      for (std::size_t s = 0; s < nsync; ++s) {
        std::string full = "/SyncObject/" + trace_.sync_objects[s];
        filter.sync_objects[s] = util::is_path_prefix(part, full);
        any = any || filter.sync_objects[s];
      }
      if (!any)
        filter.diagnostics.push_back(
            "part '" + part + "' matched no synchronization object in hierarchy 'SyncObject'");
    }
    // Unknown hierarchies (not represented in the trace) select everything;
    // the PC never refines into them because the db lacks them.
  }

  filter.finalize();
  return filter;
}

const FocusFilter& TraceView::compiled(const Focus& focus) const {
  std::string key = focus.name();
  std::lock_guard<std::mutex> lock(filter_mu_);
  auto it = filter_cache_.find(key);
  if (it == filter_cache_.end())
    it = filter_cache_.emplace(std::move(key), compile(focus)).first;
  return it->second;
}

const FocusFilter& TraceView::compiled(resources::FocusId focus) const {
  std::lock_guard<std::mutex> lock(filter_mu_);
  const auto idx = static_cast<std::size_t>(focus);
  if (filters_by_id_.size() <= idx) filters_by_id_.resize(idx + 1);
  if (!filters_by_id_[idx])
    filters_by_id_[idx] = std::make_unique<FocusFilter>(compile(foci_->to_focus(focus)));
  return *filters_by_id_[idx];
}

double TraceView::query(MetricKind metric, const Focus& focus, double t0, double t1) const {
  return query(metric, compiled(focus), t0, t1);
}

double TraceView::query(MetricKind metric, const FocusFilter& filter, double t0,
                        double t1) const {
  return index_->query(filter, metric, t0, t1);
}

double TraceView::query_blocks(MetricKind metric, const FocusFilter& filter, double t0,
                               double t1) const {
  return blocks_->query(filter, metric, t0, t1);
}

double TraceView::query_scan(MetricKind metric, const FocusFilter& filter, double t0,
                             double t1) const {
  MetricInstance inst(*this, metric, filter, t0);
  inst.advance(t1);
  return inst.value();
}

std::vector<double> TraceView::fraction_series(MetricKind metric, const Focus& focus,
                                               double t0, double t1,
                                               std::size_t bins) const {
  std::vector<double> out;
  if (bins == 0 || t1 <= t0) return out;
  const FocusFilter& filter = compiled(focus);
  MetricInstance inst(*this, metric, filter, t0);
  const double bin_width = (t1 - t0) / static_cast<double>(bins);
  const double denom = bin_width * std::max(1, filter.num_selected_ranks);
  double prev = 0.0;
  out.reserve(bins);
  for (std::size_t b = 1; b <= bins; ++b) {
    inst.advance(t0 + bin_width * static_cast<double>(b));
    out.push_back((inst.value() - prev) / denom);
    prev = inst.value();
  }
  return out;
}

double TraceView::fraction(MetricKind metric, const Focus& focus, double t0, double t1) const {
  return fraction(metric, compiled(focus), t0, t1);
}

double TraceView::fraction(MetricKind metric, const FocusFilter& filter, double t0,
                           double t1) const {
  const double window = t1 - t0;
  if (window <= 0.0 || filter.num_selected_ranks == 0) return 0.0;
  return query(metric, filter, t0, t1) / (window * filter.num_selected_ranks);
}

}  // namespace histpc::metrics
