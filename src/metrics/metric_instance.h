// MetricInstance: incremental accumulation of one metric under one focus.
//
// This models a Paradyn metric-focus pair's data stream: values exist only
// from the instance's start time (instrumentation insertion) onward —
// earlier behaviour is invisible, which is exactly the "missed data for
// interesting events" effect historical directives fix.
//
// advance() walks each rank's interval list with a persistent cursor, so a
// full diagnosis costs O(total intervals) per instance regardless of how
// many ticks the Performance Consultant runs.
#pragma once

#include <vector>

#include "metrics/trace_view.h"

namespace histpc::metrics {

class MetricInstance {
 public:
  MetricInstance(const TraceView& view, MetricKind metric, FocusFilter filter,
                 double start_time);

  /// Accumulate data in [max(start, last advance), to).
  void advance(double to);

  /// Metric seconds accumulated so far.
  double value() const { return value_; }
  /// Length of the observed window: advance target minus start (never
  /// negative).
  double observed() const { return observed_; }
  double start_time() const { return start_; }
  MetricKind metric() const { return metric_; }
  const FocusFilter& filter() const { return filter_; }

  /// value / (observed * selected ranks); 0 when nothing observed.
  double fraction() const;

 private:
  const TraceView& view_;
  MetricKind metric_;
  FocusFilter filter_;
  double start_;
  double cursor_;
  double value_ = 0.0;
  double observed_ = 0.0;
  std::vector<std::size_t> rank_pos_;  ///< per-rank interval cursor
};

}  // namespace histpc::metrics
