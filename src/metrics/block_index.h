// BlockIndex: block-max summaries over the SoA trace columns, the
// skip-then-SIMD evaluation tier above the interval index.
//
// Per rank, intervals are grouped into fixed-size blocks of consecutive
// postings; each block stores
//
//  * min/max timestamps (first t0, last t1 — both columns are
//    non-decreasing, ExecutionTrace::validate),
//  * total and max duration per interval state,
//  * coverage bitmaps: which FuncIds (plus a trailing no-function slot)
//    and which sync objects appear in the block,
//
// so a windowed metric query can classify each block without touching its
// intervals — the block-max-WAND idiom from search engines:
//
//  * SKIP: the accepted states hold zero time, or the filter's
//    function/sync words miss every interval in the block;
//  * SUM: the block lies entirely inside the window and the filter
//    provably covers every interval that the accepted states select —
//    accumulate the per-state totals, O(1);
//  * KERNEL: otherwise run the vectorized masked sum (simd_kernels.h)
//    over the block's (sub)range of the columns.
//
// The window's (up to two) straddling intervals are clipped directly,
// exactly like IntervalIndex, so clipping semantics match the oracles.
// Values agree with the interval-index and scan oracles to floating-point
// summation order (blocks group additions differently); the equivalence —
// and the bit-identity of the three SIMD dispatch levels — is
// property-tested in block_max_test.cpp. MetricBatch uses only the SKIP
// classification (block_may_contribute), which elides provably-zero work
// and therefore keeps diagnosis values bit-identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "metrics/metric.h"
#include "simmpi/trace.h"
#include "util/cpu_features.h"

namespace histpc::metrics {

struct FocusFilter;

class BlockIndex {
 public:
  /// Postings per block. 128 keeps a block's summary row in one cache line
  /// neighbourhood while amortizing the classification to <1% of a block's
  /// interval work.
  static constexpr std::size_t kDefaultBlockSize = 128;

  /// Query-path classification counters (relaxed atomics: the index is
  /// shared read-mostly across parallel variant runs).
  struct Stats {
    std::uint64_t blocks_visited = 0;  ///< blocks classified by queries
    std::uint64_t blocks_skipped = 0;  ///< rejected from the summary alone
    std::uint64_t blocks_summed = 0;   ///< O(1) accumulated from totals
    std::uint64_t blocks_kernel = 0;   ///< masked-sum kernel runs
  };

  /// Builds columns and summaries in one linear pass. When `columns`
  /// mirrors the trace (e.g. decoded from a binary snapshot on a
  /// trace-cache hit) the time/state/func/sync columns are adopted by bulk
  /// copy. `block_size` must be >= 1; `level` defaults to the process-wide
  /// runtime dispatch and is overridable for forced-scalar tests.
  explicit BlockIndex(const simmpi::ExecutionTrace& trace,
                      const simmpi::TraceColumns* columns = nullptr,
                      std::size_t block_size = kDefaultBlockSize,
                      util::SimdLevel level = util::cpu_features().selected);

  /// Metric seconds accumulated in [t0, t1) across the filter's selected
  /// ranks. `filter` must be finalized (TraceView::compile qualifies).
  double query(const FocusFilter& filter, MetricKind metric, double t0, double t1) const;

  /// Single-rank variant; does not check the filter's rank selection.
  double query_rank(int rank, const FocusFilter& filter, MetricKind metric, double t0,
                    double t1) const;

  std::size_t block_size() const { return block_size_; }
  util::SimdLevel simd_level() const { return level_; }
  Stats stats() const;

  // --- per-block summary probes (MetricBatch's skip path) ---------------
  std::size_t num_blocks(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].nblocks;
  }
  /// Interval position one past block `b`'s last interval on `rank`.
  std::size_t block_end(int rank, std::size_t b) const;
  double block_min_t0(int rank, std::size_t b) const {
    return ranks_[static_cast<std::size_t>(rank)].min_t0[b];
  }
  double block_max_t1(int rank, std::size_t b) const {
    return ranks_[static_cast<std::size_t>(rank)].max_t1[b];
  }
  /// True unless the summary proves no interval in the block can
  /// contribute to (filter, metric). A false return is a proof of zero
  /// contribution for any time window.
  bool block_may_contribute(int rank, std::size_t b, const FocusFilter& filter,
                            MetricKind metric) const;

 private:
  static constexpr std::size_t kNumStates = 3;  // Cpu, SyncWait, IoWait
  /// Block flag: some SyncWait interval carries no sync object (it can
  /// never match a sync-constrained filter, but blocks full-coverage SUM).
  static constexpr std::uint8_t kHasUnsyncedWait = 1;

  struct RankBlocks {
    // Interval columns (SoA). fslot maps kNoFunc to the trailing slot
    // (nfuncs), matching the FocusFilter::func_words bit layout.
    std::vector<double> t0, t1;
    std::vector<std::uint8_t> state;
    std::vector<std::uint32_t> fslot;
    std::vector<std::int32_t> sync;
    // Per-block summaries, indexed [block] (word bitmaps [block * words]).
    std::vector<double> min_t0, max_t1;
    std::array<std::vector<double>, kNumStates> state_total;
    std::array<std::vector<double>, kNumStates> state_max;
    std::vector<std::uint8_t> flags;
    std::vector<std::uint64_t> func_words;
    std::vector<std::uint64_t> sync_words;
    std::size_t nblocks = 0;
  };

  /// States that can contribute under (filter, metric): accepted_states of
  /// the metric, intersected with {SyncWait} when the filter is
  /// sync-constrained.
  static std::array<bool, kNumStates> effective_states(const FocusFilter& filter,
                                                       MetricKind metric);

  bool may_contribute(const RankBlocks& rb, std::size_t b,
                      const std::array<bool, kNumStates>& states,
                      const FocusFilter& filter) const;
  bool fully_covered(const RankBlocks& rb, std::size_t b, const FocusFilter& filter) const;

  /// Masked-sum kernel over column positions [i0, i1) of one rank.
  double kernel_sum(const RankBlocks& rb, std::size_t i0, std::size_t i1,
                    const std::array<bool, kNumStates>& states,
                    const FocusFilter& filter) const;

  std::size_t block_size_;
  util::SimdLevel level_;
  std::size_t fwords_ = 1;  ///< words per block func bitmap (nfuncs+1 bits)
  std::size_t swords_ = 0;  ///< words per block sync bitmap
  std::vector<RankBlocks> ranks_;

  mutable std::atomic<std::uint64_t> stat_visited_{0};
  mutable std::atomic<std::uint64_t> stat_skipped_{0};
  mutable std::atomic<std::uint64_t> stat_summed_{0};
  mutable std::atomic<std::uint64_t> stat_kernel_{0};
};

}  // namespace histpc::metrics
