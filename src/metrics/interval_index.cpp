#include "metrics/interval_index.h"

#include <algorithm>

#include "metrics/trace_view.h"

namespace histpc::metrics {

using simmpi::ExecutionTrace;
using simmpi::Interval;
using simmpi::IntervalState;

namespace {

constexpr std::size_t kSyncWaitState = static_cast<std::size_t>(IntervalState::SyncWait);

/// Which interval states contribute to a metric (mirrors the state switch
/// in FocusFilter::matches).
std::array<bool, 3> accepted_states(MetricKind metric) {
  switch (metric) {
    case MetricKind::CpuTime: return {true, false, false};
    case MetricKind::SyncWaitTime: return {false, true, false};
    case MetricKind::IoWaitTime: return {false, false, true};
    case MetricKind::ExecTime: return {true, true, true};
  }
  return {false, false, false};
}

bool func_accepted(const FocusFilter& filter, simmpi::FuncId func) {
  if (func == simmpi::kNoFunc) return filter.accept_nofunc;
  return filter.funcs[static_cast<std::size_t>(func)];
}

/// First posting entry at or after interval position `bound`.
std::size_t posting_lower_bound(const std::vector<std::uint32_t>& pos, std::size_t bound) {
  return static_cast<std::size_t>(
      std::lower_bound(pos.begin(), pos.end(), static_cast<std::uint32_t>(bound)) -
      pos.begin());
}

}  // namespace

IntervalIndex::IntervalIndex(const ExecutionTrace& trace,
                             const simmpi::TraceColumns* columns) : trace_(trace) {
  const std::size_t nfuncs = trace.functions.size();
  const std::size_t nsync = trace.sync_objects.size();
  // Snapshot-decoded columns must mirror the trace exactly; a mismatch
  // (defensive — matches() guards shape only) falls back to the AoS scan.
  const bool adopt = columns != nullptr && columns->matches(trace);
  ranks_.resize(trace.ranks.size());
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    const auto& ivs = trace.ranks[r].intervals;
    RankIndex& ri = ranks_[r];
    const std::size_t n = ivs.size();
    for (auto& c : ri.cum) c.assign(n + 1, 0.0);
    ri.func_postings.resize(nfuncs + 1);  // trailing slot = kNoFunc intervals
    ri.sync_postings.resize(nsync);

    auto index_interval = [&](std::size_t i, std::size_t s, simmpi::FuncId func,
                              simmpi::SyncObjectId sync, double d) {
      for (std::size_t st = 0; st < kNumStates; ++st)
        ri.cum[st][i + 1] = ri.cum[st][i] + (st == s ? d : 0.0);
      const std::size_t fslot =
          func == simmpi::kNoFunc ? nfuncs : static_cast<std::size_t>(func);
      ri.func_postings[fslot].pos.push_back(static_cast<std::uint32_t>(i));
      if (s == kSyncWaitState && sync != simmpi::kNoSyncObject)
        ri.sync_postings[static_cast<std::size_t>(sync)].pos.push_back(
            static_cast<std::uint32_t>(i));
    };

    if (adopt) {
      // Bulk column adoption: the time columns arrive ready-made, and the
      // per-interval pass reads the columnar buffers.
      const simmpi::RankColumns& rc = columns->ranks[r];
      ri.t0 = rc.t0;
      ri.t1 = rc.t1;
      for (std::size_t i = 0; i < n; ++i)
        index_interval(i, static_cast<std::size_t>(rc.state[i]), rc.func[i], rc.sync[i],
                       rc.t1[i] - rc.t0[i]);
    } else {
      ri.t0.reserve(n);
      ri.t1.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Interval& iv = ivs[i];
        ri.t0.push_back(iv.t0);
        ri.t1.push_back(iv.t1);
        index_interval(i, static_cast<std::size_t>(iv.state), iv.func, iv.sync_object,
                       iv.t1 - iv.t0);
      }
    }

    for (Posting& p : ri.func_postings) {
      for (auto& c : p.cum) c.assign(p.pos.size() + 1, 0.0);
      for (std::size_t k = 0; k < p.pos.size(); ++k) {
        const Interval& iv = ivs[p.pos[k]];
        const std::size_t s = static_cast<std::size_t>(iv.state);
        const double d = iv.t1 - iv.t0;
        for (std::size_t st = 0; st < kNumStates; ++st)
          p.cum[st][k + 1] = p.cum[st][k] + (st == s ? d : 0.0);
      }
    }
    for (Posting& p : ri.sync_postings) {
      // Sync postings only ever hold SyncWait intervals; one row suffices.
      auto& c = p.cum[kSyncWaitState];
      c.assign(p.pos.size() + 1, 0.0);
      for (std::size_t k = 0; k < p.pos.size(); ++k) {
        const Interval& iv = ivs[p.pos[k]];
        c[k + 1] = c[k] + (iv.t1 - iv.t0);
      }
    }
  }
}

std::size_t IntervalIndex::first_ending_after(int rank, double t) const {
  const auto& t1 = ranks_[static_cast<std::size_t>(rank)].t1;
  return static_cast<std::size_t>(std::upper_bound(t1.begin(), t1.end(), t) - t1.begin());
}

double IntervalIndex::interior_sum(const RankIndex& ri,
                                   const std::vector<Interval>& ivs,
                                   const FocusFilter& filter, MetricKind metric,
                                   std::size_t a, std::size_t b) const {
  const auto states = accepted_states(metric);
  double v = 0.0;

  if (!filter.sync_unconstrained) {
    // Only SyncWait intervals carrying a selected object can match.
    if (!states[kSyncWaitState]) return 0.0;
    for (std::int32_t obj : filter.selected_syncs) {
      const Posting& p = ri.sync_postings[static_cast<std::size_t>(obj)];
      const std::size_t j1 = posting_lower_bound(p.pos, a);
      const std::size_t j2 = posting_lower_bound(p.pos, b);
      if (filter.all_funcs) {
        v += p.cum[kSyncWaitState][j2] - p.cum[kSyncWaitState][j1];
      } else {
        for (std::size_t j = j1; j < j2; ++j) {
          const Interval& iv = ivs[p.pos[j]];
          if (func_accepted(filter, iv.func)) v += iv.t1 - iv.t0;
        }
      }
    }
    return v;
  }

  if (filter.all_funcs) {
    for (std::size_t st = 0; st < kNumStates; ++st)
      if (states[st]) v += ri.cum[st][b] - ri.cum[st][a];
    return v;
  }

  auto add_posting = [&](const Posting& p) {
    const std::size_t j1 = posting_lower_bound(p.pos, a);
    const std::size_t j2 = posting_lower_bound(p.pos, b);
    for (std::size_t st = 0; st < kNumStates; ++st)
      if (states[st]) v += p.cum[st][j2] - p.cum[st][j1];
  };
  for (std::int32_t f : filter.selected_funcs)
    add_posting(ri.func_postings[static_cast<std::size_t>(f)]);
  if (filter.accept_nofunc) add_posting(ri.func_postings.back());
  return v;
}

double IntervalIndex::query_rank(int rank, const FocusFilter& filter, MetricKind metric,
                                 double t0, double t1) const {
  const RankIndex& ri = ranks_[static_cast<std::size_t>(rank)];
  if (t1 <= t0 || ri.t0.empty()) return 0.0;
  const auto& ivs = trace_.ranks[static_cast<std::size_t>(rank)].intervals;
  // Intervals intersecting [t0, t1) are the contiguous range [lo, hi).
  const std::size_t lo = static_cast<std::size_t>(
      std::upper_bound(ri.t1.begin(), ri.t1.end(), t0) - ri.t1.begin());
  const std::size_t hi = static_cast<std::size_t>(
      std::lower_bound(ri.t0.begin(), ri.t0.end(), t1) - ri.t0.begin());
  if (lo >= hi) return 0.0;

  double v = 0.0;
  // Only the range's first and last interval can straddle a window edge;
  // evaluate them directly so clipping matches the scan path exactly.
  auto clip_add = [&](std::size_t i) {
    const Interval& iv = ivs[i];
    if (!filter.matches(iv, metric)) return;
    const double a = std::max(iv.t0, t0);
    const double b = std::min(iv.t1, t1);
    if (b > a) v += b - a;
  };
  if (hi - lo <= 2) {
    for (std::size_t i = lo; i < hi; ++i) clip_add(i);
    return v;
  }
  clip_add(lo);
  v += interior_sum(ri, ivs, filter, metric, lo + 1, hi - 1);
  clip_add(hi - 1);
  return v;
}

double IntervalIndex::query(const FocusFilter& filter, MetricKind metric, double t0,
                            double t1) const {
  double v = 0.0;
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    if (filter.rank_selected(static_cast<int>(r)))
      v += query_rank(static_cast<int>(r), filter, metric, t0, t1);
  return v;
}

}  // namespace histpc::metrics
