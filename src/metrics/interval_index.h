// IntervalIndex: a columnar, binary-searchable view of an ExecutionTrace.
//
// Built once per trace, it answers "metric seconds in [t0, t1) under a
// compiled focus filter" in O(log n) per rank instead of the O(n) scan a
// fresh MetricInstance performs:
//
//  * per-rank SoA time columns (t0, t1) — intervals are time-sorted and
//    non-overlapping (ExecutionTrace::validate), so the intervals that
//    intersect any window form one contiguous range found by binary search;
//  * per-(rank, state) prefix-sum duration arrays — an unconstrained query
//    over the interior of the range is two array lookups per state;
//  * per-(rank, function) and per-(rank, sync-object) posting lists with
//    their own prefix sums — constrained queries touch only the selected
//    resources' intervals.
//
// The (up to two) intervals straddling a window edge are evaluated
// directly against the filter, so clipping semantics match the scan path
// exactly. Whole-window values agree with MetricInstance to floating-point
// summation order (prefix-sum differences group additions differently);
// the equivalence is property-tested in metric_engine_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/metric.h"
#include "simmpi/trace.h"

namespace histpc::metrics {

struct FocusFilter;

class IntervalIndex {
 public:
  /// Builds the columns in one linear pass; the index keeps a reference to
  /// `trace`, which must outlive it. When `columns` is non-null and mirrors
  /// the trace (TraceColumns::matches) — e.g. decoded from a binary trace
  /// snapshot — the time columns are adopted by bulk copy and the scan runs
  /// over the columnar buffers instead of the AoS intervals.
  explicit IntervalIndex(const simmpi::ExecutionTrace& trace,
                         const simmpi::TraceColumns* columns = nullptr);

  /// Metric seconds accumulated in [t0, t1) across the filter's selected
  /// ranks. `filter` must come from TraceView::compile (it carries the
  /// derived selection lists the index dispatches on).
  double query(const FocusFilter& filter, MetricKind metric, double t0, double t1) const;

  /// Single-rank variant; does not check the filter's rank selection.
  double query_rank(int rank, const FocusFilter& filter, MetricKind metric, double t0,
                    double t1) const;

  /// Position of the first interval on `rank` with end time > t: where an
  /// incremental cursor starting at time t begins.
  std::size_t first_ending_after(int rank, double t) const;

 private:
  static constexpr std::size_t kNumStates = 3;  // Cpu, SyncWait, IoWait

  /// Interval positions for one resource on one rank, with per-state
  /// cumulative durations (cum[s][k] = summed duration of the first k
  /// postings in state s; sync postings fill only the SyncWait row).
  struct Posting {
    std::vector<std::uint32_t> pos;
    std::array<std::vector<double>, kNumStates> cum;
  };

  struct RankIndex {
    std::vector<double> t0, t1;                       // time columns
    std::array<std::vector<double>, kNumStates> cum;  // per-state prefix sums
    std::vector<Posting> func_postings;  // [0, nfuncs) + one slot for kNoFunc
    std::vector<Posting> sync_postings;  // SyncWait intervals per object
  };

  /// Sum over fully-contained intervals [a, b) on one rank.
  double interior_sum(const RankIndex& ri, const std::vector<simmpi::Interval>& ivs,
                      const FocusFilter& filter, MetricKind metric, std::size_t a,
                      std::size_t b) const;

  const simmpi::ExecutionTrace& trace_;
  std::vector<RankIndex> ranks_;
};

}  // namespace histpc::metrics
