#include "metrics/block_index.h"

#include <algorithm>

#include "metrics/simd_kernels.h"
#include "metrics/trace_view.h"

namespace histpc::metrics {

using simmpi::ExecutionTrace;
using simmpi::Interval;
using simmpi::IntervalState;

namespace {

constexpr std::size_t kSyncWaitState = static_cast<std::size_t>(IntervalState::SyncWait);

/// Which interval states contribute to a metric (mirrors the state switch
/// in FocusFilter::matches; same table as IntervalIndex).
std::array<bool, 3> accepted_states(MetricKind metric) {
  switch (metric) {
    case MetricKind::CpuTime: return {true, false, false};
    case MetricKind::SyncWaitTime: return {false, true, false};
    case MetricKind::IoWaitTime: return {false, false, true};
    case MetricKind::ExecTime: return {true, true, true};
  }
  return {false, false, false};
}

bool word_bit(const std::vector<std::uint64_t>& words, std::size_t bit) {
  return (words[bit / 64] >> (bit % 64)) & 1u;
}

}  // namespace

BlockIndex::BlockIndex(const ExecutionTrace& trace, const simmpi::TraceColumns* columns,
                       std::size_t block_size, util::SimdLevel level)
    : block_size_(std::max<std::size_t>(1, block_size)), level_(level) {
  const std::size_t nfuncs = trace.functions.size();
  const std::size_t nsync = trace.sync_objects.size();
  fwords_ = (nfuncs + 1 + 63) / 64;  // +1: trailing no-function slot
  swords_ = (nsync + 63) / 64;
  const bool adopt = columns != nullptr && columns->matches(trace);

  ranks_.resize(trace.ranks.size());
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    RankBlocks& rb = ranks_[r];
    const std::size_t n = trace.ranks[r].intervals.size();

    // Interval columns: adopt the snapshot-decoded buffers when they
    // mirror the trace, otherwise derive them from the AoS intervals.
    if (adopt) {
      const simmpi::RankColumns& rc = columns->ranks[r];
      rb.t0 = rc.t0;
      rb.t1 = rc.t1;
      rb.state = rc.state;
      rb.sync = rc.sync;
      rb.fslot.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        rb.fslot[i] = rc.func[i] == simmpi::kNoFunc
                          ? static_cast<std::uint32_t>(nfuncs)
                          : static_cast<std::uint32_t>(rc.func[i]);
    } else {
      rb.t0.reserve(n);
      rb.t1.reserve(n);
      rb.state.reserve(n);
      rb.fslot.reserve(n);
      rb.sync.reserve(n);
      for (const Interval& iv : trace.ranks[r].intervals) {
        rb.t0.push_back(iv.t0);
        rb.t1.push_back(iv.t1);
        rb.state.push_back(static_cast<std::uint8_t>(iv.state));
        rb.fslot.push_back(iv.func == simmpi::kNoFunc
                               ? static_cast<std::uint32_t>(nfuncs)
                               : static_cast<std::uint32_t>(iv.func));
        rb.sync.push_back(iv.sync_object);
      }
    }

    // Per-block summaries in one linear pass over the columns.
    rb.nblocks = (n + block_size_ - 1) / block_size_;
    rb.min_t0.assign(rb.nblocks, 0.0);
    rb.max_t1.assign(rb.nblocks, 0.0);
    for (auto& c : rb.state_total) c.assign(rb.nblocks, 0.0);
    for (auto& c : rb.state_max) c.assign(rb.nblocks, 0.0);
    rb.flags.assign(rb.nblocks, 0);
    rb.func_words.assign(rb.nblocks * fwords_, 0);
    rb.sync_words.assign(rb.nblocks * swords_, 0);
    for (std::size_t b = 0; b < rb.nblocks; ++b) {
      const std::size_t i0 = b * block_size_;
      const std::size_t i1 = std::min(n, i0 + block_size_);
      // Both time columns are non-decreasing (ExecutionTrace::validate),
      // so the block extremes are its first t0 and last t1.
      rb.min_t0[b] = rb.t0[i0];
      rb.max_t1[b] = rb.t1[i1 - 1];
      std::uint64_t* fw = rb.func_words.data() + b * fwords_;
      std::uint64_t* sw = rb.sync_words.data() + b * swords_;
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t s = rb.state[i];
        const double d = rb.t1[i] - rb.t0[i];
        rb.state_total[s][b] += d;
        rb.state_max[s][b] = std::max(rb.state_max[s][b], d);
        fw[rb.fslot[i] / 64] |= std::uint64_t{1} << (rb.fslot[i] % 64);
        if (s == kSyncWaitState) {
          if (rb.sync[i] == simmpi::kNoSyncObject)
            rb.flags[b] |= kHasUnsyncedWait;
          else
            sw[static_cast<std::size_t>(rb.sync[i]) / 64] |=
                std::uint64_t{1} << (static_cast<std::size_t>(rb.sync[i]) % 64);
        }
      }
    }
  }
}

std::array<bool, BlockIndex::kNumStates> BlockIndex::effective_states(
    const FocusFilter& filter, MetricKind metric) {
  auto states = accepted_states(metric);
  if (!filter.sync_unconstrained) {
    // Only SyncWait intervals carrying a selected object can match.
    states[0] = false;
    states[2] = false;
  }
  return states;
}

std::size_t BlockIndex::block_end(int rank, std::size_t b) const {
  const RankBlocks& rb = ranks_[static_cast<std::size_t>(rank)];
  return std::min(rb.t0.size(), (b + 1) * block_size_);
}

bool BlockIndex::may_contribute(const RankBlocks& rb, std::size_t b,
                                const std::array<bool, kNumStates>& states,
                                const FocusFilter& filter) const {
  // Accepted states hold zero time in the block → zero contribution
  // (zero-duration intervals clip to zero in every evaluation path).
  double total = 0.0;
  for (std::size_t s = 0; s < kNumStates; ++s)
    if (states[s]) total += rb.state_total[s][b];
  if (total == 0.0) return false;

  // Function coverage: no interval's function slot is accepted → nothing
  // in the block can match, whatever its state.
  const std::uint64_t* fw = rb.func_words.data() + b * fwords_;
  std::uint64_t hit = 0;
  for (std::size_t w = 0; w < fwords_; ++w) hit |= fw[w] & filter.func_words[w];
  if (hit == 0) return false;

  if (!filter.sync_unconstrained) {
    const std::uint64_t* sw = rb.sync_words.data() + b * swords_;
    std::uint64_t shit = 0;
    for (std::size_t w = 0; w < swords_; ++w) shit |= sw[w] & filter.sync_words[w];
    if (shit == 0) return false;
  }
  return true;
}

bool BlockIndex::block_may_contribute(int rank, std::size_t b, const FocusFilter& filter,
                                      MetricKind metric) const {
  return may_contribute(ranks_[static_cast<std::size_t>(rank)], b,
                        effective_states(filter, metric), filter);
}

bool BlockIndex::fully_covered(const RankBlocks& rb, std::size_t b,
                               const FocusFilter& filter) const {
  // Every function slot present in the block must be accepted.
  const std::uint64_t* fw = rb.func_words.data() + b * fwords_;
  for (std::size_t w = 0; w < fwords_; ++w)
    if (fw[w] & ~filter.func_words[w]) return false;
  if (filter.sync_unconstrained) return true;
  // Sync-constrained: every SyncWait interval must carry a selected
  // object (unsynced waits can never match).
  if (rb.flags[b] & kHasUnsyncedWait) return false;
  const std::uint64_t* sw = rb.sync_words.data() + b * swords_;
  for (std::size_t w = 0; w < swords_; ++w)
    if (sw[w] & ~filter.sync_words[w]) return false;
  return true;
}

double BlockIndex::kernel_sum(const RankBlocks& rb, std::size_t i0, std::size_t i1,
                              const std::array<bool, kNumStates>& states,
                              const FocusFilter& filter) const {
  const std::size_t n = i1 - i0;
  static thread_local std::vector<std::uint8_t> mask_buf;
  mask_buf.resize(n);
  std::uint8_t* mask = mask_buf.data();
  const bool acc[3] = {states[0], states[1], states[2]};
  simd::build_state_mask(mask, rb.state.data() + i0, acc, n, level_);
  if (!filter.all_funcs)
    for (std::size_t i = 0; i < n; ++i)
      if (mask[i] && !word_bit(filter.func_words, rb.fslot[i0 + i])) mask[i] = 0;
  if (!filter.sync_unconstrained) {
    // The state mask already restricts to SyncWait (effective_states).
    for (std::size_t i = 0; i < n; ++i) {
      const simmpi::SyncObjectId so = rb.sync[i0 + i];
      if (mask[i] &&
          (so == simmpi::kNoSyncObject ||
           !word_bit(filter.sync_words, static_cast<std::size_t>(so))))
        mask[i] = 0;
    }
  }
  return simd::masked_sum(rb.t0.data() + i0, rb.t1.data() + i0, mask, n, level_);
}

double BlockIndex::query_rank(int rank, const FocusFilter& filter, MetricKind metric,
                              double t0, double t1) const {
  const RankBlocks& rb = ranks_[static_cast<std::size_t>(rank)];
  if (t1 <= t0 || rb.t0.empty()) return 0.0;
  // Intervals intersecting [t0, t1) are the contiguous range [lo, hi) —
  // identical bounds to IntervalIndex::query_rank.
  const std::size_t lo = static_cast<std::size_t>(
      std::upper_bound(rb.t1.begin(), rb.t1.end(), t0) - rb.t1.begin());
  const std::size_t hi = static_cast<std::size_t>(
      std::lower_bound(rb.t0.begin(), rb.t0.end(), t1) - rb.t0.begin());
  if (lo >= hi) return 0.0;

  const auto states = effective_states(filter, metric);
  double v = 0.0;
  // Only the range's first and last interval can straddle a window edge;
  // evaluate them directly so clipping matches the index and scan paths.
  auto clip_add = [&](std::size_t i) {
    if (!states[rb.state[i]]) return;
    if (!word_bit(filter.func_words, rb.fslot[i])) return;
    if (!filter.sync_unconstrained &&
        (rb.sync[i] == simmpi::kNoSyncObject ||
         !word_bit(filter.sync_words, static_cast<std::size_t>(rb.sync[i]))))
      return;
    const double a = std::max(rb.t0[i], t0);
    const double b = std::min(rb.t1[i], t1);
    if (b > a) v += b - a;
  };
  if (hi - lo <= 2) {
    for (std::size_t i = lo; i < hi; ++i) clip_add(i);
    return v;
  }
  clip_add(lo);

  // Interior positions [lo+1, hi-1) are fully contained in the window:
  // classify block by block from the summaries.
  const std::size_t a = lo + 1, b = hi - 1;
  std::uint64_t visited = 0, skipped = 0, summed = 0, kernel = 0;
  for (std::size_t blk = a / block_size_; blk * block_size_ < b; ++blk) {
    const std::size_t i0 = std::max(a, blk * block_size_);
    const std::size_t i1 = std::min(b, std::min(rb.t0.size(), (blk + 1) * block_size_));
    ++visited;
    if (!may_contribute(rb, blk, states, filter)) {
      ++skipped;
      continue;
    }
    const bool whole_block =
        i0 == blk * block_size_ && i1 == std::min(rb.t0.size(), (blk + 1) * block_size_);
    if (whole_block && fully_covered(rb, blk, filter)) {
      for (std::size_t s = 0; s < kNumStates; ++s)
        if (states[s]) v += rb.state_total[s][blk];
      ++summed;
    } else {
      v += kernel_sum(rb, i0, i1, states, filter);
      ++kernel;
    }
  }
  stat_visited_.fetch_add(visited, std::memory_order_relaxed);
  stat_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  stat_summed_.fetch_add(summed, std::memory_order_relaxed);
  stat_kernel_.fetch_add(kernel, std::memory_order_relaxed);

  clip_add(hi - 1);
  return v;
}

double BlockIndex::query(const FocusFilter& filter, MetricKind metric, double t0,
                         double t1) const {
  double v = 0.0;
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    if (filter.rank_selected(static_cast<int>(r)))
      v += query_rank(static_cast<int>(r), filter, metric, t0, t1);
  return v;
}

BlockIndex::Stats BlockIndex::stats() const {
  Stats s;
  s.blocks_visited = stat_visited_.load(std::memory_order_relaxed);
  s.blocks_skipped = stat_skipped_.load(std::memory_order_relaxed);
  s.blocks_summed = stat_summed_.load(std::memory_order_relaxed);
  s.blocks_kernel = stat_kernel_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace histpc::metrics
