#include "metrics/spec_eval.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "metrics/metric_batch.h"

namespace histpc::metrics {

double predict_conclude_tick(double activate_time, double insertion_latency,
                             double min_observation, double tick, double horizon) {
  // Mirror of the decision loop: same recurrence, same observed-window
  // formula as MetricBatch::observed (cursor - start, floored at zero),
  // same >= comparison as the conclusion check. The doubles produced here
  // are bitwise the ones the loop will produce.
  const double start = activate_time + insertion_latency;
  double t = activate_time;
  while (t < horizon) {
    t = std::min(t + tick, horizon);
    if (std::max(0.0, t - start) >= min_observation) return t;
  }
  return std::numeric_limits<double>::infinity();
}

SpecGroup::SpecGroup(std::vector<Request> requests, double activate_time,
                     double insertion_latency, double min_observation, double tick,
                     double horizon)
    : requests_(std::move(requests)),
      activate_(activate_time),
      latency_(insertion_latency),
      tick_(tick),
      horizon_(horizon),
      conclude_(predict_conclude_tick(activate_time, insertion_latency,
                                      min_observation, tick, horizon)) {}

void SpecGroup::run(const TraceView& view) {
  if (cancelled_.load(std::memory_order_relaxed)) {
    // Still publish (empty) so a racing wait_sample can never hang; the
    // scheduler guarantees cancelled groups are unclaimed, so nobody
    // reads the samples.
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    cv_.notify_all();
    return;
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Private single-threaded batch, no registry: the only shared state it
  // reads (interval columns, block summaries, compiled filters) is
  // immutable, so this is safe concurrently with the live engine.
  MetricBatch batch(view, 0, nullptr);

  // Consume the trace prefix before any slot exists. A slot added at time
  // T in the live batch never sees contributions before T either, and the
  // shared rank cursors end up at identical positions whether the prefix
  // was consumed in one jump or tick by tick (both consume exactly the
  // intervals with t1 <= T), so the replay below is bit-identical to the
  // live slot's history.
  batch.advance_all(activate_);

  std::vector<MetricBatch::SlotId> slots;
  slots.reserve(requests_.size());
  for (const Request& r : requests_)
    slots.push_back(batch.add(r.metric, *r.filter, activate_ + latency_));

  // The consultant's exact recurrence. Stop once the wave's conclusion
  // tick is reached — the decision loop reads a speculated probe's value
  // only at conclusion, never later (non-persistent probes are removed
  // when they conclude).
  double t = activate_;
  while (t < horizon_) {
    t = std::min(t + tick_, horizon_);
    batch.advance_all(t);
    if (t >= conclude_) break;
  }

  std::vector<SpecSample> samples(requests_.size());
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    SpecSample& s = samples[i];
    s.value = batch.value(slots[i]);
    s.observed = batch.observed(slots[i]);
    s.fraction = batch.fraction(slots[i]);
    s.conclude_time = conclude_;
    s.concluded = std::isfinite(conclude_);
  }

  eval_ns_.store(static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count()),
                 std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  samples_ = std::move(samples);
  done_ = true;
  cv_.notify_all();
}

bool SpecGroup::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

const SpecSample& SpecGroup::wait_sample(std::size_t i) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return samples_.at(i);
}

}  // namespace histpc::metrics
