// Metric definitions: continuously measured values the Performance
// Consultant's hypotheses are computed from (Paradyn's metric layer).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace histpc::metrics {

enum class MetricKind {
  CpuTime,       ///< seconds of computation
  SyncWaitTime,  ///< seconds blocked in synchronization
  IoWaitTime,    ///< seconds blocked in I/O
  ExecTime,      ///< observed execution seconds (CPU + waits)
};

inline constexpr MetricKind kAllMetrics[] = {
    MetricKind::CpuTime, MetricKind::SyncWaitTime, MetricKind::IoWaitTime, MetricKind::ExecTime};

std::string_view metric_name(MetricKind kind);
std::optional<MetricKind> metric_from_name(std::string_view name);

/// True for metrics that remain meaningful when the focus constrains the
/// SyncObject hierarchy below its root. CPU/IO/Exec time has no
/// synchronization-object dimension: constraining it yields zero — the
/// wasted tests the paper's general pruning directives eliminate.
bool metric_supports_sync_constraint(MetricKind kind);

}  // namespace histpc::metrics
