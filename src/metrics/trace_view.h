// TraceView: the bridge between a simulated execution and the diagnosis
// layers. It derives the program's resource hierarchies from the trace and
// compiles foci into fast per-interval filters.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metric.h"
#include "resources/focus.h"
#include "resources/resource_db.h"
#include "simmpi/trace.h"

namespace histpc::metrics {

/// A Focus compiled against one trace: constant-time per-interval matching.
struct FocusFilter {
  /// Per-FuncId acceptance; `accept_nofunc` covers intervals outside any
  /// recorded function (only when the Code part is the hierarchy root).
  std::vector<bool> funcs;
  bool accept_nofunc = true;
  /// Per-rank acceptance (Machine and Process parts combined).
  std::vector<bool> ranks;
  /// Per-SyncObjectId acceptance for wait intervals.
  std::vector<bool> sync_objects;
  /// True when the SyncObject part is the hierarchy root (no constraint).
  bool sync_unconstrained = true;

  int num_selected_ranks = 0;

  bool rank_selected(int rank) const { return ranks[static_cast<std::size_t>(rank)]; }

  /// Does `iv` contribute to `metric` under this filter?
  bool matches(const simmpi::Interval& iv, MetricKind metric) const;
};

class TraceView {
 public:
  /// Builds resource hierarchies from the trace. The view keeps a reference
  /// to `trace`; the trace must outlive the view.
  explicit TraceView(const simmpi::ExecutionTrace& trace);

  const simmpi::ExecutionTrace& trace() const { return trace_; }
  const resources::ResourceDb& resources() const { return db_; }

  /// Compile `focus` for interval matching. Parts naming resources missing
  /// from this trace select nothing (relevant when directives from another
  /// run were not fully mapped).
  FocusFilter compile(const resources::Focus& focus) const;

  /// Direct whole-window query: metric seconds accumulated in [t0, t1).
  /// Used postmortem and by tests; the online path uses MetricInstance.
  double query(MetricKind metric, const resources::Focus& focus, double t0, double t1) const;

  /// Fraction of execution: query(...) normalized by window * selected ranks.
  double fraction(MetricKind metric, const resources::Focus& focus, double t0, double t1) const;

  /// Time histogram (Paradyn's phase view): the metric's fraction of
  /// execution in each of `bins` equal slices of [t0, t1). Useful for
  /// spotting behaviour that changes over the run.
  std::vector<double> fraction_series(MetricKind metric, const resources::Focus& focus,
                                      double t0, double t1, std::size_t bins) const;

  /// Virtual time a resource first became observable: the first interval
  /// attributed to a function (and its module) or synchronization object.
  /// Machine and process resources exist from t=0. Unknown resources
  /// return +infinity. An online tool cannot refine into a resource before
  /// it is discovered (PcConfig::respect_discovery_times).
  double discovery_time(const std::string& resource_name) const;

 private:
  void compute_discovery_times();

  const simmpi::ExecutionTrace& trace_;
  resources::ResourceDb db_;
  std::unordered_map<std::string, double> discovery_;
};

}  // namespace histpc::metrics
