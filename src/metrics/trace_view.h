// TraceView: the bridge between a simulated execution and the diagnosis
// layers. It derives the program's resource hierarchies from the trace,
// compiles foci into fast per-interval filters (cached by canonical focus
// name), and answers window queries through a columnar interval index.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metric.h"
#include "resources/focus.h"
#include "resources/focus_table.h"
#include "resources/resource_db.h"
#include "simmpi/trace.h"

namespace histpc::metrics {

class BlockIndex;
class IntervalIndex;

/// A Focus compiled against one trace: constant-time per-interval matching.
struct FocusFilter {
  /// Per-FuncId acceptance; `accept_nofunc` covers intervals outside any
  /// recorded function (only when the Code part is the hierarchy root).
  std::vector<bool> funcs;
  bool accept_nofunc = true;
  /// Per-rank acceptance (Machine and Process parts combined).
  std::vector<bool> ranks;
  /// Per-SyncObjectId acceptance for wait intervals.
  std::vector<bool> sync_objects;
  /// True when the SyncObject part is the hierarchy root (no constraint).
  bool sync_unconstrained = true;

  int num_selected_ranks = 0;

  /// Derived selections (finalize() computes them; the interval index
  /// dispatches on them instead of re-scanning the bitmaps per query).
  bool all_funcs = true;                     ///< every function + nofunc accepted
  std::vector<std::int32_t> selected_funcs;  ///< accepted FuncIds when !all_funcs
  std::vector<std::int32_t> selected_syncs;  ///< accepted ids when !sync_unconstrained

  /// Word-packed twins of the acceptance bitmaps for the block-max engine's
  /// summary intersections: bit f of func_words mirrors funcs[f], and one
  /// extra trailing bit (index funcs.size()) mirrors accept_nofunc — the
  /// same slot layout BlockIndex uses for its per-block coverage words.
  /// sync_words is empty while sync_unconstrained.
  std::vector<std::uint64_t> func_words;
  std::vector<std::uint64_t> sync_words;

  /// Why the filter selects nothing, when it does: one line per focus part
  /// that matched no function/rank/sync-object in this trace (directives
  /// mapped from another run may name resources this execution never
  /// created). Empty for filters that select at least one interval source.
  std::vector<std::string> diagnostics;

  bool rank_selected(int rank) const { return ranks[static_cast<std::size_t>(rank)]; }

  /// Does `iv` contribute to `metric` under this filter?
  bool matches(const simmpi::Interval& iv, MetricKind metric) const;

  /// Recompute num_selected_ranks and the derived selection lists from the
  /// bitmaps. TraceView::compile calls this; hand-built filters must too
  /// before reaching the interval index.
  void finalize();
};

class TraceView {
 public:
  /// Builds resource hierarchies and the interval index from the trace.
  /// The view keeps a reference to `trace`; the trace must outlive the
  /// view. `columns` — the SoA buffers decoded from a binary trace
  /// snapshot — lets the interval index adopt ready-made columns instead
  /// of re-deriving them (see IntervalIndex); it is only read during
  /// construction.
  explicit TraceView(const simmpi::ExecutionTrace& trace,
                     const simmpi::TraceColumns* columns = nullptr);
  ~TraceView();
  TraceView(TraceView&&) = default;

  const simmpi::ExecutionTrace& trace() const { return trace_; }
  const resources::ResourceDb& resources() const { return db_; }
  const IntervalIndex& index() const { return *index_; }
  /// The block-max summary tier (block_index.h). MetricBatch consults its
  /// per-block probes to skip provably-zero blocks; query_blocks() serves
  /// whole windows through its skip/sum/SIMD-kernel classification.
  const BlockIndex& blocks() const { return *blocks_; }

  /// The focus interner over this view's (immutable) resource db. Returned
  /// non-const from a const view: the table is internally synchronized and
  /// append-only, like the filter caches (interning is memoization, not
  /// observable mutation). Shared by every consultant — and every parallel
  /// variant — diagnosing this view.
  resources::FocusTable& foci() const { return *foci_; }

  /// Compile `focus` for interval matching. Parts naming resources missing
  /// from this trace select nothing (relevant when directives from another
  /// run were not fully mapped).
  FocusFilter compile(const resources::Focus& focus) const;

  /// Cached compile: one filter per canonical focus name for the lifetime
  /// of the view. The returned reference is stable (never invalidated by
  /// later calls). Thread-safe: both filter caches share one mutex, so
  /// parallel variant runs may compile concurrently.
  const FocusFilter& compiled(const resources::Focus& focus) const;

  /// Id-keyed twin of compiled(): no name materialization, one vector slot
  /// per FocusId. Same stability and thread-safety guarantees.
  const FocusFilter& compiled(resources::FocusId focus) const;

  /// Direct whole-window query: metric seconds accumulated in [t0, t1).
  /// Served by the interval index in O(log n) per rank.
  double query(MetricKind metric, const resources::Focus& focus, double t0, double t1) const;
  /// Overload for callers that already hold a compiled filter.
  double query(MetricKind metric, const FocusFilter& filter, double t0, double t1) const;

  /// Reference oracle: the same window query answered by a linear
  /// MetricInstance scan. Kept for property-testing the indexed path.
  double query_scan(MetricKind metric, const FocusFilter& filter, double t0, double t1) const;

  /// The same window query answered by the block-max engine: skip blocks
  /// the summaries prove empty, O(1)-accumulate fully-covered blocks, run
  /// the SIMD masked-sum kernel over the rest. Agrees with query() and
  /// query_scan() to floating-point summation order (property-tested in
  /// block_max_test.cpp).
  double query_blocks(MetricKind metric, const FocusFilter& filter, double t0,
                      double t1) const;

  /// Fraction of execution: query(...) normalized by window * selected ranks.
  double fraction(MetricKind metric, const resources::Focus& focus, double t0, double t1) const;
  double fraction(MetricKind metric, const FocusFilter& filter, double t0, double t1) const;

  /// Time histogram (Paradyn's phase view): the metric's fraction of
  /// execution in each of `bins` equal slices of [t0, t1). Useful for
  /// spotting behaviour that changes over the run.
  std::vector<double> fraction_series(MetricKind metric, const resources::Focus& focus,
                                      double t0, double t1, std::size_t bins) const;

  /// Virtual time a resource first became observable: the first interval
  /// attributed to a function (and its module) or synchronization object.
  /// Machine and process resources exist from t=0. Unknown resources
  /// return +infinity. An online tool cannot refine into a resource before
  /// it is discovered (PcConfig::respect_discovery_times).
  double discovery_time(const std::string& resource_name) const;

  /// Id-keyed twin: discovery time of resource `rid` in hierarchy
  /// `hierarchy_idx` (precomputed per-resource vectors, no name lookup).
  double discovery_time(std::size_t hierarchy_idx, resources::ResourceId rid) const {
    return discovery_by_resource_.at(hierarchy_idx)[static_cast<std::size_t>(rid)];
  }

 private:
  void compute_discovery_times();

  const simmpi::ExecutionTrace& trace_;
  resources::ResourceDb db_;
  std::unordered_map<std::string, double> discovery_;
  /// discovery_ mirrored onto ResourceIds: [hierarchy][rid] (roots 0.0).
  std::vector<std::vector<double>> discovery_by_resource_;
  std::unique_ptr<IntervalIndex> index_;
  std::unique_ptr<BlockIndex> blocks_;
  /// Focus interner over db_. unique_ptr: the table is non-movable and
  /// snapshots hierarchy pointers, which stay valid if the view moves.
  std::unique_ptr<resources::FocusTable> foci_;
  /// Guards both filter caches (compiled() by name and by id).
  mutable std::mutex filter_mu_;
  /// Keyed by canonical focus name; node-based map keeps references stable.
  mutable std::unordered_map<std::string, FocusFilter> filter_cache_;
  /// Indexed by FocusId; unique_ptr slots keep references stable.
  mutable std::vector<std::unique_ptr<FocusFilter>> filters_by_id_;
};

}  // namespace histpc::metrics
