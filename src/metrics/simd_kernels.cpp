#include "metrics/simd_kernels.h"

#include <cstring>

#if defined(HISTPC_ENABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HISTPC_HAVE_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace histpc::metrics::simd {

namespace {

// --- scalar fallbacks ----------------------------------------------------
// The scalar masked sum emulates the vector lane structure exactly (four
// accumulators over i%4, combined ((l0+l1)+(l2+l3)), sequential tail) so a
// forced-scalar run reproduces the SIMD bits — see the header contract.

double masked_sum_scalar(const double* t0, const double* t1, const std::uint8_t* mask,
                         std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    if (mask[i]) l0 += t1[i] - t0[i];
    if (mask[i + 1]) l1 += t1[i + 1] - t0[i + 1];
    if (mask[i + 2]) l2 += t1[i + 2] - t0[i + 2];
    if (mask[i + 3]) l3 += t1[i + 3] - t0[i + 3];
  }
  double v = (l0 + l1) + (l2 + l3);
  for (std::size_t i = n4; i < n; ++i)
    if (mask[i]) v += t1[i] - t0[i];
  return v;
}

void build_state_mask_scalar(std::uint8_t* mask, const std::uint8_t* state,
                             const bool (&accepted)[3], std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] = accepted[state[i]] ? 0xFFu : 0x00u;
}

#ifdef HISTPC_HAVE_X86_KERNELS

// --- SSE4.2 --------------------------------------------------------------
// Two 2-lane registers hold the same four accumulator lanes the AVX2
// register holds: accA = lanes (0, 1), accB = lanes (2, 3).

__attribute__((target("sse4.2"))) double masked_sum_sse42(const double* t0,
                                                          const double* t1,
                                                          const std::uint8_t* mask,
                                                          std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m128d accA = _mm_setzero_pd();
  __m128d accB = _mm_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d dA = _mm_sub_pd(_mm_loadu_pd(t1 + i), _mm_loadu_pd(t0 + i));
    const __m128d dB = _mm_sub_pd(_mm_loadu_pd(t1 + i + 2), _mm_loadu_pd(t0 + i + 2));
    std::int32_t mbits;
    std::memcpy(&mbits, mask + i, 4);
    const __m128i mv = _mm_cvtsi32_si128(mbits);
    // pmovsxbq: 0xFF sign-extends to an all-ones 64-bit lane mask.
    const __m128i mA = _mm_cvtepi8_epi64(mv);
    const __m128i mB = _mm_cvtepi8_epi64(_mm_srli_epi32(mv, 16));
    accA = _mm_add_pd(accA, _mm_and_pd(dA, _mm_castsi128_pd(mA)));
    accB = _mm_add_pd(accB, _mm_and_pd(dB, _mm_castsi128_pd(mB)));
  }
  alignas(16) double a[2];
  alignas(16) double b[2];
  _mm_store_pd(a, accA);
  _mm_store_pd(b, accB);
  double v = (a[0] + a[1]) + (b[0] + b[1]);
  for (std::size_t i = n4; i < n; ++i)
    if (mask[i]) v += t1[i] - t0[i];
  return v;
}

__attribute__((target("sse4.2"))) void build_state_mask_sse42(std::uint8_t* mask,
                                                              const std::uint8_t* state,
                                                              const bool (&accepted)[3],
                                                              std::size_t n) {
  const std::size_t n16 = n & ~std::size_t{15};
  for (std::size_t i = 0; i < n16; i += 16) {
    const __m128i sv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + i));
    __m128i m = _mm_setzero_si128();
    for (int s = 0; s < 3; ++s)
      if (accepted[s])
        m = _mm_or_si128(m, _mm_cmpeq_epi8(sv, _mm_set1_epi8(static_cast<char>(s))));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mask + i), m);
  }
  for (std::size_t i = n16; i < n; ++i)
    mask[i] = accepted[state[i]] ? 0xFFu : 0x00u;
}

// --- AVX2 ----------------------------------------------------------------

__attribute__((target("avx2"))) double masked_sum_avx2(const double* t0, const double* t1,
                                                       const std::uint8_t* mask,
                                                       std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(t1 + i), _mm256_loadu_pd(t0 + i));
    std::int32_t mbits;
    std::memcpy(&mbits, mask + i, 4);
    const __m256i lanes = _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(mbits));
    acc = _mm256_add_pd(acc, _mm256_and_pd(d, _mm256_castsi256_pd(lanes)));
  }
  alignas(32) double l[4];
  _mm256_store_pd(l, acc);
  double v = (l[0] + l[1]) + (l[2] + l[3]);
  for (std::size_t i = n4; i < n; ++i)
    if (mask[i]) v += t1[i] - t0[i];
  return v;
}

__attribute__((target("avx2"))) void build_state_mask_avx2(std::uint8_t* mask,
                                                           const std::uint8_t* state,
                                                           const bool (&accepted)[3],
                                                           std::size_t n) {
  const std::size_t n32 = n & ~std::size_t{31};
  for (std::size_t i = 0; i < n32; i += 32) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + i));
    __m256i m = _mm256_setzero_si256();
    for (int s = 0; s < 3; ++s)
      if (accepted[s])
        m = _mm256_or_si256(m,
                            _mm256_cmpeq_epi8(sv, _mm256_set1_epi8(static_cast<char>(s))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i), m);
  }
  for (std::size_t i = n32; i < n; ++i)
    mask[i] = accepted[state[i]] ? 0xFFu : 0x00u;
}

#endif  // HISTPC_HAVE_X86_KERNELS

}  // namespace

double masked_sum(const double* t0, const double* t1, const std::uint8_t* mask,
                  std::size_t n, util::SimdLevel level) {
#ifdef HISTPC_HAVE_X86_KERNELS
  if (level == util::SimdLevel::Avx2) return masked_sum_avx2(t0, t1, mask, n);
  if (level == util::SimdLevel::Sse42) return masked_sum_sse42(t0, t1, mask, n);
#else
  (void)level;
#endif
  return masked_sum_scalar(t0, t1, mask, n);
}

void build_state_mask(std::uint8_t* mask, const std::uint8_t* state,
                      const bool (&accepted)[3], std::size_t n, util::SimdLevel level) {
#ifdef HISTPC_HAVE_X86_KERNELS
  if (level == util::SimdLevel::Avx2) return build_state_mask_avx2(mask, state, accepted, n);
  if (level == util::SimdLevel::Sse42)
    return build_state_mask_sse42(mask, state, accepted, n);
#else
  (void)level;
#endif
  return build_state_mask_scalar(mask, state, accepted, n);
}

}  // namespace histpc::metrics::simd
