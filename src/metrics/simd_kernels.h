// Vectorized accumulation kernels for the block-max metric engine.
//
// Every kernel is dispatched on a util::SimdLevel chosen by the caller
// (BlockIndex caches util::cpu_features().selected once) and obeys one
// deterministic accumulation contract so the three dispatch levels are
// bit-identical to each other:
//
//   * the leading multiple-of-4 prefix is summed into four independent
//     accumulator lanes, lane j taking elements i0+j, i0+4+j, ... —
//     exactly the lanes an AVX2 register holds and the two lane pairs two
//     SSE registers hold;
//   * lanes combine as ((l0 + l1) + (l2 + l3));
//   * the up-to-3 tail elements are then added sequentially.
//
// Masked-out elements contribute +0.0, which is exact under IEEE-754
// round-to-nearest (all summands here are non-negative), so "skip the
// element" and "add a zeroed lane" produce the same bits. The property
// tests in block_max_test.cpp assert scalar == SSE4.2 == AVX2 exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace histpc::metrics::simd {

/// Sum of (t1[i] - t0[i]) over i in [0, n) where mask[i] != 0. Mask bytes
/// must be 0x00 or 0xFF (build_state_mask and the filter mask builders
/// guarantee this; 0xFF sign-extends to an all-ones lane mask).
double masked_sum(const double* t0, const double* t1, const std::uint8_t* mask,
                  std::size_t n, util::SimdLevel level);

/// mask[i] = accepted[state[i]] ? 0xFF : 0x00 for i in [0, n). States must
/// be < 3 (IntervalState values; ExecutionTrace::validate enforces this).
void build_state_mask(std::uint8_t* mask, const std::uint8_t* state,
                      const bool (&accepted)[3], std::size_t n, util::SimdLevel level);

}  // namespace histpc::metrics::simd
