#include "metrics/metric_instance.h"

#include <algorithm>

namespace histpc::metrics {

MetricInstance::MetricInstance(const TraceView& view, MetricKind metric, FocusFilter filter,
                               double start_time)
    : view_(view),
      metric_(metric),
      filter_(std::move(filter)),
      start_(start_time),
      cursor_(start_time),
      rank_pos_(static_cast<std::size_t>(view.trace().num_ranks()), 0) {
  // Skip intervals that end before the start time so the first advance()
  // does not scan history invisible to this instance. End times are sorted
  // (ExecutionTrace::validate), so the start position is a binary search.
  const auto& ranks = view_.trace().ranks;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& ivs = ranks[r].intervals;
    rank_pos_[r] = static_cast<std::size_t>(
        std::upper_bound(ivs.begin(), ivs.end(), start_,
                         [](double t, const simmpi::Interval& iv) { return t < iv.t1; }) -
        ivs.begin());
  }
}

void MetricInstance::advance(double to) {
  if (to <= cursor_) return;
  const auto& ranks = view_.trace().ranks;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    if (!filter_.rank_selected(static_cast<int>(r))) continue;
    const auto& ivs = ranks[r].intervals;
    std::size_t pos = rank_pos_[r];
    while (pos < ivs.size() && ivs[pos].t0 < to) {
      const auto& iv = ivs[pos];
      if (filter_.matches(iv, metric_)) {
        const double lo = std::max({iv.t0, cursor_, start_});
        const double hi = std::min(iv.t1, to);
        if (hi > lo) value_ += hi - lo;
      }
      if (iv.t1 <= to) {
        ++pos;  // fully consumed
      } else {
        break;  // straddles `to`; revisit next advance
      }
    }
    rank_pos_[r] = pos;
  }
  cursor_ = to;
  observed_ = std::max(0.0, cursor_ - start_);
}

double MetricInstance::fraction() const {
  if (observed_ <= 0.0 || filter_.num_selected_ranks == 0) return 0.0;
  return value_ / (observed_ * filter_.num_selected_ranks);
}

}  // namespace histpc::metrics
