// Speculative probe evaluation: precompute the verdict a Performance
// Consultant probe *would* reach if it were activated at a given future
// tick, bit-identically to the live engine.
//
// The consultant's decision loop advances virtual time through the exact
// recurrence `t = min(t + tick, horizon)` and concludes a probe at the
// first tick where its observed window reaches min_observation. Both the
// live engines (MetricBatch slot, MetricInstance) and this module clip
// every interval per tick as lo = max(iv.t0, cursor, start),
// hi = min(iv.t1, to) and accumulate in (tick, rank, interval) order, so a
// speculative replay of the same tick sequence produces the same value to
// the last bit (a property the metric-engine tests enforce). That is the
// whole correctness story of the speculative search: a cache hit hands the
// decision loop numbers indistinguishable from the ones the live engine
// would have produced, so conclusions cannot depend on thread count,
// scheduling, or prediction accuracy.
//
// A SpecGroup bundles the candidates of one predicted activation wave into
// a single task: one private MetricBatch walks the trace once and fans out
// to all slots, amortizing the interval walk the way the live batch does.
// Everything a group touches is immutable shared state (TraceView columns,
// BlockIndex summaries, compiled FocusFilters) or group-local, so any
// number of groups may run concurrently with the decision loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "metrics/metric.h"
#include "metrics/trace_view.h"

namespace histpc::metrics {

/// Tick arithmetic shared by the scheduler and the evaluator: the first
/// tick of the consultant recurrence (starting from `activate_time`) at
/// which a probe inserted at `activate_time` has observed at least
/// `min_observation`, or +infinity if the horizon arrives first. Pure
/// arithmetic — no trace data — so the decision loop can predict
/// conclusion times of active probes without evaluating anything.
double predict_conclude_tick(double activate_time, double insertion_latency,
                             double min_observation, double tick, double horizon);

/// The verdict one speculative evaluation precomputes: the probe's sample
/// at its conclusion tick (or at the horizon when it never concludes).
struct SpecSample {
  double value = 0.0;
  double observed = 0.0;
  double fraction = 0.0;
  /// First tick with observed >= min_observation; +inf if the horizon
  /// cuts the window short (the probe would end as NeverRan).
  double conclude_time = std::numeric_limits<double>::infinity();
  bool concluded = false;
};

/// One activation wave's worth of speculative work: the metric-focus pairs
/// predicted to activate together at `activate_time`, evaluated in a
/// single shared-walk pass. Built and claimed by the decision thread;
/// run() executes on a worker. The decision thread never mutates a group
/// after launch, so the only cross-thread state is the done flag/condvar
/// and the cancellation token.
class SpecGroup {
 public:
  struct Request {
    MetricKind metric = MetricKind::CpuTime;
    /// Compiled filter owned by the TraceView cache (stable reference).
    const FocusFilter* filter = nullptr;
  };

  SpecGroup(std::vector<Request> requests, double activate_time,
            double insertion_latency, double min_observation, double tick,
            double horizon);

  /// Worker entry point: replay the consultant's tick recurrence from
  /// activate_time over a private MetricBatch holding every request.
  /// Returns immediately (publishing nothing) if cancel() won the race.
  void run(const TraceView& view);

  /// Abandon the group: a not-yet-started run() becomes a no-op. Safe to
  /// call at any time from the decision thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool ready() const;

  /// Block until run() has published, then return request i's sample.
  const SpecSample& wait_sample(std::size_t i) const;

  /// The shared conclusion tick (all requests in a wave share activation
  /// time, hence conclusion time). Precomputed in the constructor with
  /// predict_conclude_tick — available before run() executes, which is
  /// what lets the instrumentation layer decide *whether* to wait without
  /// waiting.
  double conclude_time() const { return conclude_; }

  double activate_time() const { return activate_; }
  std::size_t size() const { return requests_.size(); }

  /// Nanoseconds run() spent evaluating; 0 until ready or if cancelled
  /// before starting. Used for wasted-work accounting of discarded groups.
  std::uint64_t eval_ns() const { return eval_ns_.load(std::memory_order_relaxed); }

 private:
  std::vector<Request> requests_;
  double activate_;
  double latency_;
  double tick_;
  double horizon_;
  double conclude_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  std::vector<SpecSample> samples_;
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> eval_ns_{0};
};

/// A claimed slice of a SpecGroup: what the speculation cache hands the
/// instrumentation layer when a predicted activation comes true. Holding
/// the shared_ptr keeps the group alive for the probe's lifetime even
/// after the cache drops it.
struct SpecHandle {
  std::shared_ptr<SpecGroup> group;
  std::size_t index = 0;
  explicit operator bool() const { return group != nullptr; }
};

}  // namespace histpc::metrics
