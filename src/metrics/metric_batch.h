// MetricBatch: batched evaluation of many concurrent metric-focus pairs.
//
// The Performance Consultant keeps tens of probes live at once and ticks
// them all to the same virtual time. Advancing each MetricInstance
// separately walks every rank's cursor once per instance per tick; the
// batch inverts the loop — each rank's new intervals are visited once per
// tick and fanned out to every active slot whose filter selects that rank.
//
// Slots share one time cursor and one per-rank position, so a tick costs
// O(new intervals * matching slots) instead of
// O(instances * (ranks + new intervals)).
//
// Equivalence: with eval_threads <= 1 a slot's value is accumulated in
// exactly the same order as a MetricInstance advanced over the same tick
// pattern (rank-major, interval order), so values are bit-identical to the
// scan path. With eval_threads > 1 ranks are partitioned across a
// persistent worker pool and per-thread partial sums are reduced in thread
// order — deterministic for a fixed thread count, but grouped differently,
// so values may differ from the sequential path in the last few ulps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "metrics/trace_view.h"
#include "telemetry/registry.h"

namespace histpc::metrics {

class MetricBatch {
 public:
  using SlotId = std::int32_t;

  /// `eval_threads` > 1 enables the rank-parallel mode with that many
  /// workers (capped at the rank count). `registry`, when given, receives
  /// per-tick evaluation counters ("metrics.batch.ticks",
  /// "metrics.batch.intervals", and the block-skip pair
  /// "metrics.batch.blocks_considered" / "metrics.batch.blocks_skipped");
  /// it is bumped from advance_all on the caller's thread only, so the
  /// unsynchronized Registry is safe here.
  explicit MetricBatch(const TraceView& view, int eval_threads = 0,
                       telemetry::Registry* registry = nullptr);
  ~MetricBatch();
  MetricBatch(const MetricBatch&) = delete;
  MetricBatch& operator=(const MetricBatch&) = delete;

  /// Register a metric-focus pair observing data from `start_time` on.
  /// Keeps a pointer to `filter`; the caller guarantees it outlives the
  /// batch (TraceView::compiled references qualify).
  SlotId add(MetricKind metric, const FocusFilter& filter, double start_time);
  void remove(SlotId id);

  /// Accumulate every active slot's data in [cursor, to). All slots share
  /// the cursor; backwards targets are no-ops.
  void advance_all(double to);

  double value(SlotId id) const;
  /// Length of the observed window: cursor minus slot start (never negative).
  double observed(SlotId id) const;
  /// value / (observed * selected ranks); 0 when nothing observed.
  double fraction(SlotId id) const;

  std::size_t num_active() const { return num_active_; }
  double cursor() const { return cursor_; }

 private:
  struct Slot {
    const FocusFilter* filter = nullptr;
    MetricKind metric = MetricKind::CpuTime;
    double start = 0.0;
    double value = 0.0;
    bool active = false;
  };

  /// Block-skip telemetry for one advance: blocks whose summaries were
  /// consulted, and how many were jumped over entirely.
  struct BlockCounters {
    std::uint64_t considered = 0;
    std::uint64_t skipped = 0;
  };

  /// Walk rank `r`'s new intervals in [cursor_, to) and fan each out to the
  /// rank's active slots; `accum(slot, seconds)` receives the matches.
  /// Blocks fully inside the tick consult the view's BlockIndex summaries:
  /// slots the summary proves contribution-free drop out of the block's
  /// fan-out, and a block provably empty for every slot is jumped over
  /// without touching its intervals. Only exactly-zero contributions are
  /// elided, so slot values stay bit-identical to the plain interval walk.
  /// `scratch` is the caller's reusable sub-fan-out buffer.
  template <typename Accum>
  void process_rank(std::size_t r, double to, Accum&& accum, BlockCounters& counters,
                    std::vector<SlotId>& scratch);

  void rebuild_rank_slots();
  void advance_sequential(double to, BlockCounters& counters);
  void advance_parallel(double to);
  void worker_loop(std::size_t tid);

  const TraceView& view_;
  telemetry::Registry* registry_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<std::size_t> rank_pos_;          ///< shared per-rank cursor
  std::vector<std::vector<SlotId>> rank_slots_;  ///< active slots per rank
  std::vector<SlotId> scratch_;                  ///< sequential-path sub-fan-out
  bool rank_slots_dirty_ = true;
  double cursor_ = 0.0;
  std::size_t num_active_ = 0;

  // Persistent worker pool (only spun up when eval_threads > 1). Workers
  // own disjoint rank chunks; each accumulates into its partials_ row,
  // which the caller reduces in thread order after the tick.
  std::size_t nthreads_ = 0;
  std::vector<std::thread> workers_;
  std::vector<std::vector<double>> partials_;
  std::vector<BlockCounters> thread_counters_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  double job_to_ = 0.0;
  bool shutdown_ = false;
};

}  // namespace histpc::metrics
