#include "metrics/metric_batch.h"

#include <algorithm>
#include <stdexcept>

#include "metrics/block_index.h"

namespace histpc::metrics {

using simmpi::Interval;

MetricBatch::MetricBatch(const TraceView& view, int eval_threads,
                         telemetry::Registry* registry)
    : view_(view),
      registry_(registry),
      rank_pos_(static_cast<std::size_t>(view.trace().num_ranks()), 0),
      rank_slots_(static_cast<std::size_t>(view.trace().num_ranks())) {
  const std::size_t nranks = rank_pos_.size();
  if (eval_threads > 1 && nranks > 1) {
    nthreads_ = std::min<std::size_t>(static_cast<std::size_t>(eval_threads), nranks);
    partials_.resize(nthreads_);
    workers_.reserve(nthreads_);
    for (std::size_t t = 0; t < nthreads_; ++t)
      workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

MetricBatch::~MetricBatch() {
  if (nthreads_ > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

MetricBatch::SlotId MetricBatch::add(MetricKind metric, const FocusFilter& filter,
                                     double start_time) {
  Slot s;
  s.filter = &filter;
  s.metric = metric;
  s.start = start_time;
  s.active = true;
  slots_.push_back(s);
  ++num_active_;
  rank_slots_dirty_ = true;
  return static_cast<SlotId>(slots_.size() - 1);
}

void MetricBatch::remove(SlotId id) {
  Slot& s = slots_.at(static_cast<std::size_t>(id));
  if (!s.active) throw std::logic_error("MetricBatch: slot removed twice");
  s.active = false;
  --num_active_;
  rank_slots_dirty_ = true;
}

void MetricBatch::rebuild_rank_slots() {
  for (std::size_t r = 0; r < rank_slots_.size(); ++r) {
    rank_slots_[r].clear();
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].active && slots_[i].filter->rank_selected(static_cast<int>(r)))
        rank_slots_[r].push_back(static_cast<SlotId>(i));
  }
  rank_slots_dirty_ = false;
}

template <typename Accum>
void MetricBatch::process_rank(std::size_t r, double to, Accum&& accum,
                               BlockCounters& counters, std::vector<SlotId>& scratch) {
  const auto& ivs = view_.trace().ranks[r].intervals;
  const std::vector<SlotId>& fanout = rank_slots_[r];
  const BlockIndex& blocks = view_.blocks();
  const std::size_t bsize = blocks.block_size();
  const int rank = static_cast<int>(r);
  std::size_t pos = rank_pos_[r];
  while (pos < ivs.size() && ivs[pos].t0 < to) {
    // Block fast path: when the block holding `pos` ends inside this tick,
    // every remaining interval in it is fully consumable, and the block
    // summary can prove whole slots contribution-free for all of them
    // (block_may_contribute is monotone over subsets). Slots it disproves
    // leave the block's fan-out; if none survive, jump the block without
    // touching its intervals. Only exactly-zero contributions are elided —
    // a zero-duration interval clips to hi <= lo and a summary reject
    // means matches() is false or the clip is empty for every interval —
    // so slot values stay bit-identical to the plain walk.
    const std::size_t b = pos / bsize;
    const double block_max_t1 = blocks.block_max_t1(rank, b);
    if (block_max_t1 <= to) {
      ++counters.considered;
      scratch.clear();
      for (SlotId sid : fanout) {
        const Slot& s = slots_[static_cast<std::size_t>(sid)];
        if (s.start < block_max_t1 &&
            blocks.block_may_contribute(rank, b, *s.filter, s.metric))
          scratch.push_back(sid);
      }
      const std::size_t bend = blocks.block_end(rank, b);
      if (scratch.empty()) {
        ++counters.skipped;
        pos = bend;
        continue;
      }
      for (; pos < bend; ++pos) {
        const Interval& iv = ivs[pos];
        for (SlotId sid : scratch) {
          const Slot& s = slots_[static_cast<std::size_t>(sid)];
          if (!s.filter->matches(iv, s.metric)) continue;
          const double lo = std::max({iv.t0, cursor_, s.start});
          const double hi = std::min(iv.t1, to);
          if (hi > lo) accum(sid, hi - lo);
        }
      }
      continue;
    }
    // Boundary block (extends past `to`): the original per-interval walk.
    const Interval& iv = ivs[pos];
    if (!fanout.empty()) {
      for (SlotId sid : fanout) {
        const Slot& s = slots_[static_cast<std::size_t>(sid)];
        if (!s.filter->matches(iv, s.metric)) continue;
        const double lo = std::max({iv.t0, cursor_, s.start});
        const double hi = std::min(iv.t1, to);
        if (hi > lo) accum(sid, hi - lo);
      }
    }
    if (iv.t1 <= to) {
      ++pos;  // fully consumed
    } else {
      break;  // straddles `to`; revisit next advance
    }
  }
  rank_pos_[r] = pos;
}

void MetricBatch::advance_sequential(double to, BlockCounters& counters) {
  for (std::size_t r = 0; r < rank_pos_.size(); ++r)
    process_rank(
        r, to,
        [this](SlotId sid, double d) { slots_[static_cast<std::size_t>(sid)].value += d; },
        counters, scratch_);
}

void MetricBatch::advance_parallel(double to) {
  for (auto& p : partials_) p.assign(slots_.size(), 0.0);
  thread_counters_.assign(nthreads_, BlockCounters{});
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_to_ = to;
    remaining_ = nthreads_;
    ++generation_;
  }
  cv_start_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
  }
  // Reduce in thread (= rank-chunk) order: deterministic for a fixed
  // thread count.
  for (const auto& partial : partials_)
    for (std::size_t i = 0; i < partial.size(); ++i)
      if (partial[i] != 0.0) slots_[i].value += partial[i];
}

void MetricBatch::worker_loop(std::size_t tid) {
  const std::size_t nranks = rank_pos_.size();
  const std::size_t chunk = (nranks + nthreads_ - 1) / nthreads_;
  const std::size_t begin = tid * chunk;
  const std::size_t end = std::min(nranks, begin + chunk);
  std::vector<SlotId> scratch;
  std::uint64_t seen = 0;
  while (true) {
    double to;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      to = job_to_;
    }
    std::vector<double>& partial = partials_[tid];
    for (std::size_t r = begin; r < end; ++r)
      process_rank(
          r, to,
          [&partial](SlotId sid, double d) {
            partial[static_cast<std::size_t>(sid)] += d;
          },
          thread_counters_[tid], scratch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void MetricBatch::advance_all(double to) {
  if (to <= cursor_) return;
  if (rank_slots_dirty_) rebuild_rank_slots();
  // Consumed-interval telemetry from the rank cursors, so the fan-out loop
  // itself stays untouched (and the worker threads never see registry_).
  std::size_t consumed_before = 0;
  if (registry_)
    for (std::size_t p : rank_pos_) consumed_before += p;
  BlockCounters bc;
  if (nthreads_ > 0 && num_active_ > 0) {
    advance_parallel(to);
    for (const BlockCounters& c : thread_counters_) {
      bc.considered += c.considered;
      bc.skipped += c.skipped;
    }
  } else {
    advance_sequential(to, bc);
  }
  cursor_ = to;
  if (registry_) {
    std::size_t consumed_after = 0;
    for (std::size_t p : rank_pos_) consumed_after += p;
    registry_->add("metrics.batch.ticks");
    registry_->add("metrics.batch.intervals", consumed_after - consumed_before);
    registry_->add("metrics.batch.blocks_considered", bc.considered);
    registry_->add("metrics.batch.blocks_skipped", bc.skipped);
    // Cumulative classification stats from the view's block-max tier
    // (populated by query_blocks callers; the batch path skips only).
    const BlockIndex::Stats bs = view_.blocks().stats();
    registry_->gauge_set("metrics.blocks.summary_skips",
                         static_cast<double>(bs.blocks_skipped));
    registry_->gauge_set("metrics.blocks.simd_kernel_runs",
                         static_cast<double>(bs.blocks_kernel));
  }
}

double MetricBatch::value(SlotId id) const {
  return slots_.at(static_cast<std::size_t>(id)).value;
}

double MetricBatch::observed(SlotId id) const {
  return std::max(0.0, cursor_ - slots_.at(static_cast<std::size_t>(id)).start);
}

double MetricBatch::fraction(SlotId id) const {
  const Slot& s = slots_.at(static_cast<std::size_t>(id));
  const double obs = std::max(0.0, cursor_ - s.start);
  if (obs <= 0.0 || s.filter->num_selected_ranks == 0) return 0.0;
  return s.value / (obs * s.filter->num_selected_ranks);
}

}  // namespace histpc::metrics
