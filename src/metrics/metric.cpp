#include "metrics/metric.h"

namespace histpc::metrics {

std::string_view metric_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::CpuTime: return "cpu_time";
    case MetricKind::SyncWaitTime: return "sync_wait_time";
    case MetricKind::IoWaitTime: return "io_wait_time";
    case MetricKind::ExecTime: return "exec_time";
  }
  return "?";
}

std::optional<MetricKind> metric_from_name(std::string_view name) {
  for (MetricKind m : kAllMetrics)
    if (metric_name(m) == name) return m;
  return std::nullopt;
}

bool metric_supports_sync_constraint(MetricKind kind) {
  return kind == MetricKind::SyncWaitTime;
}

}  // namespace histpc::metrics
