// Parallel variant runner: execute several independent diagnoses of one
// execution concurrently on a small thread pool.
//
// The paper's evaluations are bundles of diagnoses over the *same* run —
// table 1's six directive configurations, the ablations, the threshold
// sweeps. Each diagnosis is an independent online search, so once the
// expensive shared state is immutable-or-synchronized they parallelize
// trivially:
//  * the TraceView (trace, resource db, interval index) is built once and
//    only read;
//  * the view's FocusTable is append-only and internally synchronized, so
//    concurrent consultants intern into one shared table (ids agree across
//    variants, memoized names/refinements are computed once);
//  * the view's compiled-filter caches are mutex-guarded.
// Everything else (SHG, instrumentation, tracer) is per-consultant.
//
// Determinism: outcomes are stored by input index and the combined
// telemetry is an input-order fold, so the report is byte-identical
// regardless of scheduling or thread count (tests/core_test.cpp asserts
// threads=1 == threads=N).
#pragma once

#include <string>
#include <vector>

#include "history/experiment.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"

namespace histpc::core {

/// One diagnosis configuration to run against the shared TraceView.
struct DiagnosisVariant {
  std::string name;
  pc::PcConfig config;
  pc::DirectiveSet directives;
};

struct VariantOutcome {
  std::string name;
  pc::DiagnosisResult result;
  double wall_seconds = 0.0;  ///< this variant's own search wall time
};

struct VariantRunReport {
  std::vector<VariantOutcome> outcomes;  ///< input order, independent of scheduling
  /// Input-order merge of the per-variant telemetry (combine_telemetry).
  pc::TelemetrySummary combined;
  double wall_seconds = 0.0;  ///< whole bundle, including thread start/join
  int threads = 1;            ///< workers actually used
};

/// Deterministic input-order fold of the per-variant summaries: counters
/// and phase_seconds summed, peak_cost maxed, avg_cost weighted by each
/// variant's virtual search duration.
pc::TelemetrySummary combine_telemetry(const std::vector<VariantOutcome>& outcomes);

/// Run every variant against `view` on a pool of `threads` workers
/// (0 = hardware_concurrency; always clamped to [1, variants.size()]).
/// Workers claim variants from an atomic counter; a variant that throws
/// rethrows from here (first by input order) after the pool drains.
VariantRunReport run_variants(const metrics::TraceView& view,
                              const std::vector<DiagnosisVariant>& variants,
                              int threads = 0);

/// The six table-1 configurations (No Directives, Prunes Only, General
/// Prunes Only, Historic Prunes Only, Priorities Only, Priorities & All
/// Prunes), with directives generated from `record`. Every variant copies
/// `base` as its PcConfig.
std::vector<DiagnosisVariant> table1_variants(const history::ExperimentRecord& record,
                                              const pc::PcConfig& base = {});

}  // namespace histpc::core
