#include "core/session.h"

#include <optional>

#include "simmpi/simulator.h"
#include "simmpi/trace_cache.h"

namespace histpc::core {

DiagnosisSession::DiagnosisSession(const std::string& app_name, apps::AppParams params,
                                   pc::PcConfig config)
    : app_name_(app_name), config_(std::move(config)) {
  simmpi::TraceColumns columns;
  const simmpi::TraceColumns* columns_ptr = nullptr;
  if (config_.trace_cache_dir.empty()) {
    telemetry::ScopedTimer timer(registry_, "session.simulate");
    trace_ = std::make_unique<simmpi::ExecutionTrace>(apps::run_app(app_name, params));
  } else {
    // Recording is cheap and deterministic; the recorded program plus the
    // network model is exactly what the content key covers, so a cache hit
    // skips only the expensive part (the simulation itself).
    simmpi::SimProgram program;
    const simmpi::NetworkModel net = apps::network_for(app_name);
    {
      telemetry::ScopedTimer timer(registry_, "session.record");
      program = apps::build_app(app_name, params);
    }
    simmpi::TraceCache cache({config_.trace_cache_dir, config_.trace_cache_max_bytes},
                             &registry_);
    const simmpi::TraceKey key = simmpi::trace_content_key(program, net);
    std::optional<simmpi::ExecutionTrace> cached;
    {
      telemetry::ScopedTimer timer(registry_, "session.trace_load");
      cached = cache.load(key, &columns);
    }
    if (cached) {
      trace_ = std::make_unique<simmpi::ExecutionTrace>(std::move(*cached));
      columns_ptr = &columns;
    } else {
      {
        telemetry::ScopedTimer timer(registry_, "session.simulate");
        trace_ = std::make_unique<simmpi::ExecutionTrace>(simmpi::Simulator(net).run(program));
      }
      cache.store(key, *trace_);
    }
  }
  telemetry::ScopedTimer timer(registry_, "session.view_build");
  view_ = std::make_unique<metrics::TraceView>(*trace_, columns_ptr);
}

DiagnosisSession::DiagnosisSession(simmpi::ExecutionTrace trace, pc::PcConfig config,
                                   std::string name)
    : app_name_(std::move(name)),
      trace_(std::make_unique<simmpi::ExecutionTrace>(std::move(trace))),
      config_(std::move(config)) {
  telemetry::ScopedTimer timer(registry_, "session.view_build");
  view_ = std::make_unique<metrics::TraceView>(*trace_);
}

pc::DiagnosisResult DiagnosisSession::diagnose(const pc::DirectiveSet& directives) {
  pc::PerformanceConsultant consultant(*view_, config_, directives);
  pc::DiagnosisResult result;
  {
    telemetry::ScopedTimer timer(registry_, "session.diagnose");
    result = consultant.run();
  }
  last_shg_ = consultant.shg().render();
  // Fold the consultant's registry (pc.* counters/timers and their lap
  // histograms) into the session's, so registry() — and any PerfRecord
  // made from it — covers the whole run, not just the session phases.
  registry_.merge_from(consultant.tracer().registry());
  for (const auto& [name, stat] : registry_.timers())
    result.telemetry.phase_seconds[name] = stat.seconds;
  return result;
}

history::ExperimentRecord DiagnosisSession::make_record(const pc::DiagnosisResult& result,
                                                        const std::string& version) const {
  const double threshold =
      config_.threshold_override > 0 ? config_.threshold_override : 0.20;
  // Record under the app family name (strip the version suffix, if any).
  std::string family = app_name_;
  if (auto pos = family.rfind('_'); pos != std::string::npos && pos + 2 == family.size())
    family.resize(pos);
  return history::make_record(family, version, *view_, result, threshold);
}

telemetry::PerfRecord DiagnosisSession::make_perf_record(const std::string& version) const {
  telemetry::PerfRecord rec;
  rec.app = app_name_;
  rec.version = version;
  rec.kind = "diagnose";
  rec.machine = telemetry::machine_name();
  rec.build = telemetry::build_id();
  rec.config["threshold_override"] = std::to_string(config_.threshold_override);
  rec.config["cost_limit"] = std::to_string(config_.cost_limit);
  rec.config["batched_eval"] = config_.batched_eval ? "1" : "0";
  rec.config["interned_foci"] = config_.interned_foci ? "1" : "0";
  rec.config["search_threads"] = std::to_string(config_.search_threads);
  rec.config["trace_cache"] = config_.trace_cache_dir.empty() ? "0" : "1";
  rec.registry = registry_;
  return rec;
}

}  // namespace histpc::core
