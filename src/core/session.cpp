#include "core/session.h"

namespace histpc::core {

DiagnosisSession::DiagnosisSession(const std::string& app_name, apps::AppParams params,
                                   pc::PcConfig config)
    : app_name_(app_name), config_(std::move(config)) {
  {
    telemetry::ScopedTimer timer(registry_, "session.simulate");
    trace_ = std::make_unique<simmpi::ExecutionTrace>(apps::run_app(app_name, params));
  }
  telemetry::ScopedTimer timer(registry_, "session.view_build");
  view_ = std::make_unique<metrics::TraceView>(*trace_);
}

DiagnosisSession::DiagnosisSession(simmpi::ExecutionTrace trace, pc::PcConfig config,
                                   std::string name)
    : app_name_(std::move(name)),
      trace_(std::make_unique<simmpi::ExecutionTrace>(std::move(trace))),
      config_(std::move(config)) {
  telemetry::ScopedTimer timer(registry_, "session.view_build");
  view_ = std::make_unique<metrics::TraceView>(*trace_);
}

pc::DiagnosisResult DiagnosisSession::diagnose(const pc::DirectiveSet& directives) {
  pc::PerformanceConsultant consultant(*view_, config_, directives);
  pc::DiagnosisResult result;
  {
    telemetry::ScopedTimer timer(registry_, "session.diagnose");
    result = consultant.run();
  }
  last_shg_ = consultant.shg().render();
  for (const auto& [name, stat] : registry_.timers())
    result.telemetry.phase_seconds[name] = stat.seconds;
  return result;
}

history::ExperimentRecord DiagnosisSession::make_record(const pc::DiagnosisResult& result,
                                                        const std::string& version) const {
  const double threshold =
      config_.threshold_override > 0 ? config_.threshold_override : 0.20;
  // Record under the app family name (strip the version suffix, if any).
  std::string family = app_name_;
  if (auto pos = family.rfind('_'); pos != std::string::npos && pos + 2 == family.size())
    family.resize(pos);
  return history::make_record(family, version, *view_, result, threshold);
}

}  // namespace histpc::core
