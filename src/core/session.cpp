#include "core/session.h"

namespace histpc::core {

DiagnosisSession::DiagnosisSession(const std::string& app_name, apps::AppParams params,
                                   pc::PcConfig config)
    : app_name_(app_name),
      trace_(std::make_unique<simmpi::ExecutionTrace>(apps::run_app(app_name, params))),
      view_(std::make_unique<metrics::TraceView>(*trace_)),
      config_(std::move(config)) {}

DiagnosisSession::DiagnosisSession(simmpi::ExecutionTrace trace, pc::PcConfig config,
                                   std::string name)
    : app_name_(std::move(name)),
      trace_(std::make_unique<simmpi::ExecutionTrace>(std::move(trace))),
      view_(std::make_unique<metrics::TraceView>(*trace_)),
      config_(std::move(config)) {}

pc::DiagnosisResult DiagnosisSession::diagnose(const pc::DirectiveSet& directives) {
  pc::PerformanceConsultant consultant(*view_, config_, directives);
  pc::DiagnosisResult result = consultant.run();
  last_shg_ = consultant.shg().render();
  return result;
}

history::ExperimentRecord DiagnosisSession::make_record(const pc::DiagnosisResult& result,
                                                        const std::string& version) const {
  const double threshold =
      config_.threshold_override > 0 ? config_.threshold_override : 0.20;
  // Record under the app family name (strip the version suffix, if any).
  std::string family = app_name_;
  if (auto pos = family.rfind('_'); pos != std::string::npos && pos + 2 == family.size())
    family.resize(pos);
  return history::make_record(family, version, *view_, result, threshold);
}

}  // namespace histpc::core
