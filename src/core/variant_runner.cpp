#include "core/variant_runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "history/generator.h"
#include "util/thread_pool.h"

namespace histpc::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

pc::TelemetrySummary combine_telemetry(const std::vector<VariantOutcome>& outcomes) {
  pc::TelemetrySummary combined;
  double weighted_cost = 0.0;
  double total_weight = 0.0;
  for (const VariantOutcome& o : outcomes) {
    const pc::TelemetrySummary& t = o.result.telemetry;
    combined.pairs_tested += t.pairs_tested;
    combined.conclusions_true += t.conclusions_true;
    combined.conclusions_false += t.conclusions_false;
    combined.refinements += t.refinements;
    combined.prune_hits_subtree += t.prune_hits_subtree;
    combined.prune_hits_pair += t.prune_hits_pair;
    combined.priority_seeds += t.priority_seeds;
    combined.cost_gate_engagements += t.cost_gate_engagements;
    combined.spec_launched += t.spec_launched;
    combined.spec_hits += t.spec_hits;
    combined.spec_discarded += t.spec_discarded;
    combined.spec_wasted_seconds += t.spec_wasted_seconds;
    combined.peak_cost = std::max(combined.peak_cost, t.peak_cost);
    const double weight = o.result.stats.end_time;
    weighted_cost += t.avg_cost * weight;
    total_weight += weight;
    for (const auto& [name, secs] : t.phase_seconds) combined.phase_seconds[name] += secs;
  }
  combined.avg_cost = total_weight > 0.0 ? weighted_cost / total_weight : 0.0;
  combined.spec_hit_rate =
      combined.spec_launched > 0
          ? static_cast<double>(combined.spec_hits) /
                static_cast<double>(combined.spec_launched)
          : 0.0;
  return combined;
}

VariantRunReport run_variants(const metrics::TraceView& view,
                              const std::vector<DiagnosisVariant>& variants,
                              int threads) {
  VariantRunReport report;
  if (variants.empty()) return report;

  const int n = std::clamp(util::ThreadPool::resolve(threads), 1,
                           static_cast<int>(variants.size()));
  report.threads = n;

  const auto bundle_start = std::chrono::steady_clock::now();
  report.outcomes.resize(variants.size());
  std::vector<std::exception_ptr> errors(variants.size());

  {
    util::ThreadPool pool(n);
    for (std::size_t i = 0; i < variants.size(); ++i) {
      pool.submit([&, i] {
        const auto start = std::chrono::steady_clock::now();
        try {
          pc::PerformanceConsultant consultant(view, variants[i].config,
                                               variants[i].directives);
          report.outcomes[i].result = consultant.run();
        } catch (...) {
          errors[i] = std::current_exception();
        }
        report.outcomes[i].name = variants[i].name;
        report.outcomes[i].wall_seconds = seconds_since(start);
      });
    }
    pool.wait_idle();
  }

  // Rethrow in input order so failures are deterministic regardless of
  // which worker hit them first.
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  report.combined = combine_telemetry(report.outcomes);
  report.wall_seconds = seconds_since(bundle_start);
  return report;
}

std::vector<DiagnosisVariant> table1_variants(const history::ExperimentRecord& record,
                                              const pc::PcConfig& base) {
  struct Spec {
    const char* name;
    history::GeneratorOptions options;
    bool use_directives = true;
  };
  std::vector<Spec> specs;
  {
    Spec s;
    s.name = "No Directives";
    s.use_directives = false;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "Prunes Only";
    s.options.priorities = false;
    s.options.false_pair_prunes = true;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "General Prunes Only";
    s.options.priorities = false;
    s.options.historic_prunes = false;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "Historic Prunes Only";
    s.options.priorities = false;
    s.options.general_prunes = false;
    s.options.false_pair_prunes = true;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "Priorities Only";
    s.options.general_prunes = false;
    s.options.historic_prunes = false;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "Priorities & All Prunes";
    specs.push_back(s);
  }

  std::vector<DiagnosisVariant> variants;
  variants.reserve(specs.size());
  for (const Spec& s : specs) {
    DiagnosisVariant v;
    v.name = s.name;
    v.config = base;
    if (s.use_directives)
      v.directives = history::DirectiveGenerator(s.options).from_record(record);
    variants.push_back(std::move(v));
  }
  return variants;
}

}  // namespace histpc::core
