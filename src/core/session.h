// DiagnosisSession: the high-level public API of HistPC.
//
// A session wraps one program execution (an application run under the
// simulated machine) and supports repeated online diagnoses over it —
// undirected, or guided by search directives harvested from earlier
// sessions. Typical tuning loop:
//
//   core::DiagnosisSession s("poisson_a");
//   auto base = s.diagnose();                         // cold, single-button
//   history::ExperimentStore store(".histpc");
//   store.save(s.make_record(base, "A"));
//
//   // next run / next version:
//   history::DirectiveGenerator gen;
//   auto directives = gen.from_record(*store.latest("poisson", "A"));
//   core::DiagnosisSession s2("poisson_b");
//   directives.maps = history::suggest_mappings(recordA.resources,
//                                               s2.view().resources());
//   auto directed = s2.diagnose(directives);          // fast, focused
#pragma once

#include <memory>
#include <string>

#include "apps/apps.h"
#include "history/experiment.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "telemetry/perf_record.h"
#include "telemetry/registry.h"

namespace histpc::core {

class DiagnosisSession {
 public:
  /// Run a registered application (see apps::app_names) and prepare it for
  /// diagnosis.
  explicit DiagnosisSession(const std::string& app_name, apps::AppParams params = {},
                            pc::PcConfig config = {});

  /// Diagnose an existing trace (e.g. replayed from another tool or built
  /// from a workload spec); `name` labels records made from this session.
  explicit DiagnosisSession(simmpi::ExecutionTrace trace, pc::PcConfig config = {},
                            std::string name = "(external trace)");

  const std::string& app_name() const { return app_name_; }
  const simmpi::ExecutionTrace& trace() const { return *trace_; }
  const metrics::TraceView& view() const { return *view_; }
  const pc::PcConfig& config() const { return config_; }
  pc::PcConfig& config() { return config_; }

  /// Run the Performance Consultant over this execution. Each call is an
  /// independent online search (fresh instrumentation).
  pc::DiagnosisResult diagnose(const pc::DirectiveSet& directives = {});

  /// Figure 2-style rendering of the most recent diagnosis's SHG.
  const std::string& last_shg() const { return last_shg_; }

  /// Session-level wall-clock telemetry: "session.simulate",
  /// "session.view_build", "session.diagnose" timers — plus, when the
  /// trace cache is enabled (PcConfig::trace_cache_dir), "session.record"
  /// and "session.trace_load" timers and the `trace_cache.*` counters.
  /// diagnose() merges the timers into the result's phase_seconds, and
  /// folds the consultant's own registry (pc.* counters and timers, with
  /// their lap histograms) in here, so after a diagnosis this registry is
  /// the complete performance picture of the run.
  const telemetry::Registry& registry() const { return registry_; }

  /// Build a storable experiment record from a diagnosis of this session.
  history::ExperimentRecord make_record(const pc::DiagnosisResult& result,
                                        const std::string& version) const;

  /// Snapshot this session's telemetry as a historical performance record
  /// of histpc itself (app, version, machine, build id, config knobs, and
  /// the full registry). Append it to a telemetry::PerfLog to make future
  /// runs diagnosable with `histpc perf-diff`.
  telemetry::PerfRecord make_perf_record(const std::string& version) const;

 private:
  std::string app_name_;
  telemetry::Registry registry_;
  std::unique_ptr<simmpi::ExecutionTrace> trace_;
  std::unique_ptr<metrics::TraceView> view_;
  pc::PcConfig config_;
  std::string last_shg_;
};

}  // namespace histpc::core
