// Minimal argument parsing for the histpc command-line tool.
//
// Grammar: positionals interleaved with `--key value` options and `--flag`
// switches. Whether a given `--name` consumes a value is decided by the
// command's option table, so `histpc run app --shg --duration 100` parses
// unambiguously.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace histpc::cli {

class ArgsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  /// Parse `argv`-style tokens. `value_options` lists option names that
  /// take a value; `flag_options` lists boolean switches. Unknown options
  /// throw ArgsError.
  static Args parse(const std::vector<std::string>& tokens,
                    const std::set<std::string>& value_options,
                    const std::set<std::string>& flag_options);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Positional by index; throws ArgsError with `what_for` context when
  /// missing.
  const std::string& positional(std::size_t index, const std::string& what_for) const;

  bool has_flag(const std::string& name) const { return flags_.contains(name); }
  std::optional<std::string> option(const std::string& name) const;
  std::string option_or(const std::string& name, const std::string& fallback) const;
  double option_or(const std::string& name, double fallback) const;
  int option_or(const std::string& name, int fallback) const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  std::set<std::string> flags_;
};

}  // namespace histpc::cli
