#include <cstdio>
#include <exception>
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout << histpc::cli::usage();
    return 2;
  }
  std::vector<std::string> tokens(argv + 2, argv + argc);
  try {
    return histpc::cli::run_command(argv[1], tokens, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "histpc: %s\n", e.what());
    return 1;
  }
}
