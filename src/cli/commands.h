// The histpc command-line tool's subcommands, as testable functions.
//
//   histpc apps
//   histpc run <app|--workload FILE> [--duration S] [--node-base N]
//                    [--threshold F] [--cost-limit F] [--directives FILE]
//                    [--extended] [--discovery] [--store DIR] [--version V]
//                    [--save-trace FILE] [--shg] [--dot FILE] [--postmortem]
//                    [--trace FILE] [--trace-format jsonl|chrome]
//                    [--trace-cache DIR] [--no-trace-cache] [--perf-log FILE]
//   histpc report <app|--workload FILE> [--duration S] [--bins N]
//   histpc variants <app|--workload FILE> [--duration S] [--node-base N]
//                    [--threads N] [--threshold F] [--version V] [--string-foci]
//                    [--trace-cache DIR] [--no-trace-cache]
//   histpc list [--store DIR] [--app NAME] [--version V]
//   histpc show <run_id> [--store DIR] [--report]
//   histpc harvest <run_id...> [--store DIR] [--out FILE] [--no-priorities]
//                    [--no-general-prunes] [--no-historic-prunes]
//                    [--false-pair-prunes] [--thresholds]
//                    [--combine intersect|union]
//   histpc map <run_id_from> <run_id_to> [--store DIR]
//   histpc compare <run_id_1> <run_id_2> [--store DIR] [--no-map]
//   histpc diff <run_id_1> <run_id_2> [--store DIR]
//   histpc diagnose-trace <trace.json> [--directives FILE] [--shg]
//                    [--trace FILE] [--trace-format jsonl|chrome]
//   histpc trace-report <telemetry-trace>
//   histpc perf-report [--log FILE | --app NAME [--store DIR]] [--json]
//   histpc perf-diff [--log FILE | --app NAME [--store DIR]]
//                    [--baseline FILE] [--window K] [--sigma S]
//                    [--min-rel F] [--min-abs S] [--json]
//
// Every command writes human-readable output to `out` and returns a
// process exit code. main() dispatches and turns exceptions into error
// messages on stderr.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace histpc::cli {

inline constexpr const char* kDefaultStoreDir = ".histpc";
/// Where `run`/`variants` keep binary trace snapshots (simmpi::TraceCache).
/// The cache is on by default for app runs; --no-trace-cache disables it
/// and --trace-cache DIR relocates it.
inline constexpr const char* kDefaultTraceCacheDir = ".histpc/trace-cache";

/// Run one subcommand; `tokens` excludes the program and command names.
int run_command(const std::string& command, const std::vector<std::string>& tokens,
                std::ostream& out);

/// The top-level usage text.
std::string usage();

}  // namespace histpc::cli
