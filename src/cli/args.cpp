#include "cli/args.h"

namespace histpc::cli {

Args Args::parse(const std::vector<std::string>& tokens,
                 const std::set<std::string>& value_options,
                 const std::set<std::string>& flag_options) {
  Args args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      args.positionals_.push_back(tok);
      continue;
    }
    const std::string name = tok.substr(2);
    if (flag_options.contains(name)) {
      args.flags_.insert(name);
    } else if (value_options.contains(name)) {
      if (i + 1 >= tokens.size())
        throw ArgsError("option --" + name + " requires a value");
      args.options_[name] = tokens[++i];
    } else {
      throw ArgsError("unknown option --" + name);
    }
  }
  return args;
}

const std::string& Args::positional(std::size_t index, const std::string& what_for) const {
  if (index >= positionals_.size())
    throw ArgsError("missing argument: " + what_for);
  return positionals_[index];
}

std::optional<std::string> Args::option(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Args::option_or(const std::string& name, const std::string& fallback) const {
  auto v = option(name);
  return v ? *v : fallback;
}

double Args::option_or(const std::string& name, double fallback) const {
  auto v = option(name);
  if (!v) return fallback;
  // std::stod alone accepts trailing garbage ("0.5x" parses as 0.5);
  // require the whole token to be consumed so typos fail instead of
  // silently truncating.
  try {
    std::size_t pos = 0;
    const double value = std::stod(*v, &pos);
    if (pos != v->size()) throw ArgsError("");
    return value;
  } catch (const std::exception&) {
    throw ArgsError("option --" + name + " expects a number, got '" + *v + "'");
  }
}

int Args::option_or(const std::string& name, int fallback) const {
  auto v = option(name);
  if (!v) return fallback;
  // As above: "--threads 8x" must be an error, not 8.
  try {
    std::size_t pos = 0;
    const int value = std::stoi(*v, &pos);
    if (pos != v->size()) throw ArgsError("");
    return value;
  } catch (const std::exception&) {
    throw ArgsError("option --" + name + " expects an integer, got '" + *v + "'");
  }
}

}  // namespace histpc::cli
