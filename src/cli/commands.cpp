#include "cli/commands.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "apps/workload_spec.h"
#include "cli/args.h"
#include "core/session.h"
#include "core/variant_runner.h"
#include "history/combiner.h"
#include "history/compare.h"
#include "history/execution_map.h"
#include "history/generator.h"
#include "history/mapper.h"
#include "history/postmortem.h"
#include "history/report.h"
#include "history/similarity.h"
#include "history/store.h"
#include "serve/http.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "simmpi/trace_io.h"
#include "telemetry/event.h"
#include "telemetry/perf_diff.h"
#include "telemetry/perf_record.h"
#include "telemetry/tracer.h"
#include "util/strings.h"
#include "util/table.h"

namespace histpc::cli {

namespace {

using history::ExperimentRecord;
using history::ExperimentStore;

ExperimentRecord load_or_throw(const ExperimentStore& store, const std::string& run_id) {
  auto rec = store.load(run_id);
  if (!rec)
    throw ArgsError("no record '" + run_id + "' in store " + store.directory());
  return std::move(*rec);
}

void print_result_summary(std::ostream& out, const pc::DiagnosisResult& result) {
  out << "pairs tested:     " << result.stats.pairs_tested << "\n"
      << "bottlenecks:      " << result.stats.bottlenecks << "\n"
      << "pruned candidates:" << " " << result.stats.pruned_candidates << "\n"
      << "search ended at:  " << util::fmt_double(result.stats.end_time, 1) << "s\n"
      << "last true found:  " << util::fmt_double(result.stats.last_true_time, 1) << "s\n"
      << "peak instr. cost: " << util::fmt_percent(result.stats.peak_cost, 1) << "\n"
      << "avg instr. cost:  " << util::fmt_percent(result.telemetry.avg_cost, 1) << "\n";
  if (!result.bottlenecks.empty()) {
    out << "\nbottlenecks (discovery order):\n";
    for (const auto& b : result.bottlenecks)
      out << "  " << util::fmt_double(b.t_found, 1) << "s  "
          << util::fmt_percent(b.fraction, 1) << "  " << b.hypothesis << " : " << b.focus
          << "\n";
  }
}

int cmd_apps(const Args&, std::ostream& out) {
  for (const auto& name : apps::app_names()) out << name << "\n";
  return 0;
}

/// The --search-threads option shared by run/diagnose-trace/variants:
/// 0 = hardware_concurrency, 1 (default) = serial, N >= 2 = speculative
/// search with N-1 workers. Strict full-token integer parsing (Args),
/// negatives rejected here.
int parse_search_threads(const Args& args) {
  const int threads = args.option_or("search-threads", 1);
  if (threads < 0)
    throw ArgsError("option --search-threads expects a non-negative integer "
                    "(0 = all hardware threads)");
  return threads;
}

/// The --trace-format option, defaulting to jsonl.
telemetry::TraceFormat parse_trace_format(const Args& args) {
  const std::string name = args.option_or("trace-format", std::string("jsonl"));
  auto fmt = telemetry::trace_format_from_name(name);
  if (!fmt) throw ArgsError("--trace-format expects 'jsonl' or 'chrome'");
  return *fmt;
}

/// Build the trace for `run`/`report`: a registered app by name, or a
/// JSON workload via --workload. `tracer`, when given, records the
/// simulation phase of a --workload run.
simmpi::ExecutionTrace make_trace(const Args& args, std::string& name_out,
                                  double default_duration,
                                  telemetry::Tracer* tracer = nullptr) {
  if (auto workload = args.option("workload")) {
    apps::Workload w = apps::load_workload(*workload);
    name_out = w.name;
    return simmpi::Simulator(w.network).run(w.program, tracer);
  }
  name_out = args.positional(0, "application name (or --workload FILE)");
  apps::AppParams params;
  params.target_duration = args.option_or("duration", default_duration);
  params.node_base = args.option_or("node-base", 1);
  return apps::run_app(name_out, params);
}

/// Build the session for `run`/`variants`. Registered-app runs go through
/// the trace-snapshot cache (on by default; --no-trace-cache opts out,
/// --trace-cache DIR relocates it) so repeated diagnoses of one app
/// configuration reload the trace instead of re-simulating. Workload runs
/// keep the direct simulate path (and the optional simulation tracer).
std::unique_ptr<core::DiagnosisSession> make_session(const Args& args, pc::PcConfig config,
                                                     double default_duration,
                                                     telemetry::Tracer* tracer = nullptr) {
  if (!args.option("workload") && !args.has_flag("no-trace-cache")) {
    const std::string app = args.positional(0, "application name (or --workload FILE)");
    apps::AppParams params;
    params.target_duration = args.option_or("duration", default_duration);
    params.node_base = args.option_or("node-base", 1);
    config.trace_cache_dir = args.option_or("trace-cache", std::string(kDefaultTraceCacheDir));
    return std::make_unique<core::DiagnosisSession>(app, params, std::move(config));
  }
  std::string app;
  simmpi::ExecutionTrace trace = make_trace(args, app, default_duration, tracer);
  return std::make_unique<core::DiagnosisSession>(std::move(trace), std::move(config), app);
}

/// One status line for cache-enabled sessions: hit or miss, and where.
void print_cache_status(std::ostream& out, const core::DiagnosisSession& session) {
  const std::string& dir = session.config().trace_cache_dir;
  if (dir.empty()) return;
  const bool hit = session.registry().counter("trace_cache.hit") > 0;
  out << "trace cache: " << (hit ? "hit" : "miss") << " (" << dir << ")\n";
}

int cmd_report(const Args& args, std::ostream& out) {
  std::string app;
  const simmpi::ExecutionTrace trace = make_trace(args, app, 300.0);
  out << trace.summary();
  const metrics::TraceView view(trace);
  const auto whole = resources::Focus::whole_program(view.resources());
  out << "\nwhole-program fractions: cpu "
      << util::fmt_percent(
             view.fraction(metrics::MetricKind::CpuTime, whole, 0, trace.duration))
      << ", sync "
      << util::fmt_percent(
             view.fraction(metrics::MetricKind::SyncWaitTime, whole, 0, trace.duration))
      << ", io "
      << util::fmt_percent(
             view.fraction(metrics::MetricKind::IoWaitTime, whole, 0, trace.duration))
      << "\n";

  // Optional time histogram (Paradyn's phase view): one digit per bin,
  // 0 = idle for that metric, 9 = >=90% of execution.
  const int bins = args.option_or("bins", 0);
  if (bins > 0) {
    out << "\ntime histogram (" << bins << " bins over "
        << util::fmt_double(trace.duration, 1) << "s):\n";
    for (auto [metric, label] : {std::pair{metrics::MetricKind::CpuTime, "cpu "},
                                 {metrics::MetricKind::SyncWaitTime, "sync"},
                                 {metrics::MetricKind::IoWaitTime, "io  "}}) {
      const auto series = view.fraction_series(metric, whole, 0, trace.duration,
                                               static_cast<std::size_t>(bins));
      out << "  " << label << " ";
      for (double v : series)
        out << static_cast<char>('0' + std::clamp(static_cast<int>(v * 10), 0, 9));
      out << "\n";
    }
  }
  return 0;
}

int cmd_run(const Args& args, std::ostream& out) {
  pc::PcConfig config;
  if (args.has_flag("extended")) config.hypotheses = pc::HypothesisSet::standard_extended();
  config.threshold_override = args.option_or("threshold", -1.0);
  config.cost_limit = args.option_or("cost-limit", config.cost_limit);
  config.respect_discovery_times = args.has_flag("discovery");
  config.search_threads = parse_search_threads(args);

  pc::DirectiveSet directives;
  if (auto file = args.option("directives")) directives = pc::DirectiveSet::load(*file);

  const auto trace_path = args.option("trace");
  const telemetry::TraceFormat trace_format = parse_trace_format(args);
  telemetry::VectorSink event_sink;
  telemetry::Tracer sim_tracer(&event_sink);
  if (trace_path) config.trace_sink = &event_sink;

  auto session_ptr = make_session(args, config, 1500.0, trace_path ? &sim_tracer : nullptr);
  core::DiagnosisSession& session = *session_ptr;
  out << "running " << session.app_name() << " (" << session.trace().num_ranks()
      << " ranks, " << util::fmt_double(session.trace().duration, 1) << "s)\n";
  print_cache_status(out, session);

  pc::DiagnosisResult result;
  if (args.has_flag("postmortem")) {
    history::PostmortemOptions opts;
    opts.hypotheses = config.hypotheses;
    opts.threshold_override = config.threshold_override;
    result = history::postmortem_diagnose(session.view(), opts);
    out << "(postmortem evaluation over the complete execution)\n";
  } else {
    result = session.diagnose(directives);
    if (args.has_flag("shg")) out << "\n" << session.last_shg() << "\n";
    if (auto dot = args.option("dot")) {
      // Re-run is avoided: the session retains the last SHG only as text;
      // produce DOT from a dedicated consultant run for exact structure.
      pc::PcConfig dot_config = config;
      dot_config.trace_sink = nullptr;  // don't record the re-run twice
      pc::PerformanceConsultant consultant(session.view(), dot_config, directives);
      consultant.run();
      util::write_file(*dot, consultant.shg().to_dot());
      out << "wrote " << *dot << "\n";
    }
  }
  print_result_summary(out, result);

  if (trace_path) {
    telemetry::save_trace_file(*trace_path, event_sink.events(), trace_format);
    out << "\nwrote " << event_sink.size() << " telemetry events to " << *trace_path
        << "\n";
  }
  if (auto trace_file = args.option("save-trace")) {
    simmpi::save_trace(session.trace(), *trace_file);
    out << "\nwrote trace to " << *trace_file << "\n";
  }
  const std::string version = args.option_or("version", std::string("1"));
  if (auto store_dir = args.option("store")) {
    ExperimentStore store(*store_dir);
    ExperimentRecord record = session.make_record(result, version);
    record.scenario = args.option_or("scenario", std::string());
    const std::string run_id = store.save(std::move(record));
    out << "\nstored experiment record '" << run_id << "' in " << *store_dir << "\n";
  }
  // Self-diagnosis telemetry: every stored run also appends this run's
  // PerfRecord to the store's perf log (histpc's own historical
  // performance data); --perf-log FILE redirects it elsewhere.
  std::optional<std::string> perf_path = args.option("perf-log");
  if (!perf_path) {
    if (auto store_dir = args.option("store"))
      perf_path = telemetry::PerfLog::path_in_store(*store_dir, session.app_name());
  }
  if (perf_path) {
    telemetry::PerfLog log(*perf_path);
    log.append(session.make_perf_record(version));
    out << "appended perf record to " << log.path() << "\n";
  }
  return 0;
}

int cmd_variants(const Args& args, std::ostream& out) {
  pc::PcConfig config;
  config.threshold_override = args.option_or("threshold", -1.0);
  if (args.has_flag("string-foci")) config.interned_foci = false;
  config.search_threads = parse_search_threads(args);

  auto session_ptr = make_session(args, config, 1500.0);
  core::DiagnosisSession& session = *session_ptr;
  out << "running " << session.app_name() << " (" << session.trace().num_ranks()
      << " ranks, " << util::fmt_double(session.trace().duration, 1) << "s)\n";
  print_cache_status(out, session);

  // The base (undirected) diagnosis supplies the record every directed
  // variant harvests its directives from.
  const pc::DiagnosisResult base = session.diagnose();
  const auto record = session.make_record(base, args.option_or("version", std::string("1")));

  const auto variants = core::table1_variants(record, config);
  const core::VariantRunReport report =
      core::run_variants(session.view(), variants, args.option_or("threads", 0));

  util::TablePrinter table({"variant", "pairs", "bottlenecks", "last true", "wall ms"});
  for (const auto& o : report.outcomes)
    table.add_row({o.name, std::to_string(o.result.stats.pairs_tested),
                   std::to_string(o.result.stats.bottlenecks),
                   util::fmt_double(o.result.stats.last_true_time, 1) + "s",
                   util::fmt_double(o.wall_seconds * 1e3, 1)});
  table.print(out);
  out << "\n" << report.threads << " worker thread(s), bundle wall "
      << util::fmt_double(report.wall_seconds * 1e3, 1) << "ms\ncombined: "
      << report.combined.pairs_tested << " pairs tested, " << report.combined.conclusions_true
      << " true / " << report.combined.conclusions_false << " false conclusions, "
      << report.combined.prune_hits_subtree + report.combined.prune_hits_pair
      << " prune hits\n";
  return 0;
}

int cmd_list(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  history::StoreQuery query;
  query.app = args.option_or("app", std::string());
  query.version = args.option_or("version", std::string());
  query.machine = args.option_or("machine", std::string());
  query.scenario = args.option_or("scenario", std::string());
  // Rendered from the index: no record files are opened, so listing stays
  // O(index) at thousands of stored runs. Unreadable files drop out of the
  // listing with a warning during the index heal pass; `show <id>` stays
  // strict.
  util::TablePrinter table(
      {"run id", "app", "version", "machine", "scenario", "ranks", "duration",
       "bottlenecks"});
  for (const history::IndexEntry& e : store.summaries(query))
    table.add_row({e.run_id, e.app, e.version, e.machine, e.scenario,
                   std::to_string(e.nranks), util::fmt_double(e.duration, 1) + "s",
                   std::to_string(e.bottlenecks)});
  if (table.num_rows() == 0) {
    out << "(no records)\n";
  } else {
    table.print(out);
  }
  return 0;
}

int cmd_migrate(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  // --jobs N parallelizes the parse/encode work on a thread pool (0 = all
  // hardware threads). The summary below is identical for every N — the
  // store folds the results in sorted order regardless of which worker
  // finished first.
  const int jobs = args.option_or("jobs", 1);
  if (jobs < 0)
    throw ArgsError("option --jobs expects a non-negative integer (0 = all hardware threads)");
  const std::size_t migrated = store.migrate_all(jobs);
  out << "migrated " << migrated << " legacy JSON record(s) to binary in "
      << store.directory() << "\n";
  return 0;
}

// ------------------------------------------------------- serve / bench-client

int cmd_serve(const Args& args, std::ostream& out) {
  serve::ServeConfig cfg;
  cfg.host = args.option_or("host", cfg.host);
  cfg.port = args.option_or("port", 7777);
  cfg.threads = args.option_or("threads", cfg.threads);
  cfg.queue_depth = args.option_or("queue-depth", cfg.queue_depth);
  if (cfg.threads < 0) throw ArgsError("option --threads expects a non-negative integer");
  if (cfg.queue_depth < 1) throw ArgsError("option --queue-depth expects a positive integer");
  cfg.store_dir = args.option_or("store", std::string(kDefaultStoreDir));
  cfg.trace_cache_dir = args.option_or("trace-cache", std::string(kDefaultTraceCacheDir));
  if (args.has_flag("no-trace-cache")) cfg.trace_cache_dir.clear();
  const int max_body_kb = args.option_or("max-body-kb", 1024);
  if (max_body_kb < 1) throw ArgsError("option --max-body-kb expects a positive integer");
  cfg.max_body_bytes = static_cast<std::size_t>(max_body_kb) * 1024;
  cfg.result_cache = !args.has_flag("no-result-cache");
  cfg.perf_log = !args.has_flag("no-perf-log");
  if (auto log = args.option("perf-log")) cfg.perf_log_path = *log;

  serve::DiagnosisServer server(std::move(cfg));
  server.start();
  out << "histpc serve listening on http://" << server.config().host << ":" << server.port()
      << "\n  store " << server.config().store_dir << ", "
      << util::ThreadPool::resolve(server.config().threads) << " worker thread(s), queue depth "
      << server.config().queue_depth << "\n  endpoints: POST /diagnose /list /perf-report "
      << "/shutdown, GET /healthz /stats\n";
  out.flush();
  server.wait();  // returns on POST /shutdown
  server.stop();
  const serve::ServeStats s = server.stats();
  out << "shut down after " << s.served << " request(s) served, " << s.shed << " shed, "
      << s.result_cache_hits << " result-cache hit(s)\n";
  return 0;
}

int cmd_bench_client(const Args& args, std::ostream& out) {
  serve::LoadGenOptions opt;
  opt.host = args.option_or("host", opt.host);
  opt.port = args.option_or("port", 7777);
  opt.rps = args.option_or("rps", 20.0);
  opt.duration_seconds = args.option_or("duration", 2.0);
  opt.connections = args.option_or("connections", 4);
  opt.seed = static_cast<std::uint64_t>(args.option_or("seed", 1));
  if (opt.rps <= 0.0) throw ArgsError("option --rps expects a positive number");
  if (opt.duration_seconds <= 0.0) throw ArgsError("option --duration expects a positive number");
  if (opt.connections < 1) throw ArgsError("option --connections expects a positive integer");

  util::Json body = util::Json::object();
  body["app"] = args.option_or("app", std::string("poisson_a"));
  body["duration"] = args.option_or("app-duration", 1500.0);
  if (args.has_flag("no-result-cache")) body["no_result_cache"] = true;
  if (const double deadline = args.option_or("deadline-ms", 0.0); deadline > 0.0)
    body["deadline_ms"] = deadline;
  opt.body = body.dump();

  // Readiness: the server may still be binding (CI starts it in the
  // background); retry /healthz briefly before declaring it unreachable.
  const double connect_wait = args.option_or("connect-wait", 10.0);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(connect_wait);
  bool ready = false;
  while (!ready && std::chrono::steady_clock::now() < give_up) {
    if (auto health = serve::http_get(opt.host, opt.port, "/healthz", 2.0);
        health && health->status == 200) {
      ready = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (!ready) {
    out << "no server reachable at " << opt.host << ":" << opt.port << " within "
        << util::fmt_double(connect_wait, 1) << "s\n";
    return 1;
  }

  out << "driving " << opt.host << ":" << opt.port << " at " << util::fmt_double(opt.rps, 1)
      << " req/s for " << util::fmt_double(opt.duration_seconds, 1) << "s ("
      << opt.connections << " connection(s), open-loop Poisson arrivals)\n";
  const serve::LoadPoint point = serve::run_load(opt);
  out << "sent " << point.sent << ": " << point.ok << " ok, " << point.shed << " shed, "
      << point.errors << " error(s)\n"
      << "achieved " << util::fmt_double(point.achieved_rps, 1) << " req/s, p50 "
      << util::fmt_double(point.p50_ms, 2) << "ms, p99 " << util::fmt_double(point.p99_ms, 2)
      << "ms, shed rate " << util::fmt_percent(point.shed_rate, 1) << "\n";

  if (auto out_path = args.option("out")) {
    // Merge a serve_load section into the metrics file (read-modify-write,
    // same contract as the bench binaries' BENCH_metrics.json sections).
    util::Json root = util::Json::object();
    try {
      root = util::Json::parse(util::read_file(*out_path));
      if (!root.is_object()) root = util::Json::object();
    } catch (const std::exception&) {
      root = util::Json::object();
    }
    util::Json section = util::Json::object();
    section["source"] = "bench-client";
    section["app"] = body.at("app").as_string();
    util::Json points = util::Json::array();
    points.push_back(point.to_json());
    section["points"] = std::move(points);
    root["serve_load"] = std::move(section);
    util::write_file(*out_path, root.dump(2) + "\n");
    out << "wrote serve_load section to " << *out_path << "\n";
  }
  return point.errors > 0 ? 1 : 0;
}

int cmd_show(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  const ExperimentRecord rec = load_or_throw(store, args.positional(0, "run id"));
  if (args.has_flag("report")) {
    out << history::tuning_report(rec);
    return 0;
  }
  out << "run:        " << rec.run_id << "\n"
      << "app:        " << rec.app << " (version " << rec.version << ")\n"
      << "ranks:      " << rec.nranks << "\n"
      << "duration:   " << util::fmt_double(rec.duration, 1) << "s\n"
      << "threshold:  " << util::fmt_percent(rec.threshold_used, 0) << "\n"
      << "pairs:      " << rec.pairs_tested << "\n"
      << "machine<->process 1:1: " << (rec.machine_process_one_to_one ? "yes" : "no") << "\n"
      << "bottlenecks (" << rec.bottlenecks.size() << "):\n";
  for (const auto& b : rec.bottlenecks)
    out << "  " << util::fmt_percent(b.fraction, 1) << "  " << b.hypothesis << " : "
        << b.focus << "\n";
  return 0;
}

int cmd_harvest(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  std::vector<ExperimentRecord> records;
  for (const auto& id : args.positionals()) records.push_back(load_or_throw(store, id));
  if (auto ref_id = args.option("similar-to")) {
    // Auto-select the input runs: score every stored run of the same app
    // against the reference and keep the best few, oldest first. Explicit
    // positional ids can ride along (they come first, i.e. oldest).
    const ExperimentRecord reference = load_or_throw(store, *ref_id);
    std::vector<ExperimentRecord> candidates;
    for (const history::IndexEntry& e :
         store.summaries({reference.app, "", "", ""})) {
      if (e.run_id == reference.run_id) continue;
      if (auto rec = store.try_load(e.run_id)) candidates.push_back(std::move(*rec));
    }
    const int max_runs = args.option_or("max-runs", 8);
    if (max_runs < 1) throw ArgsError("option --max-runs expects a positive integer");
    const auto selected = history::select_similar_runs(
        candidates, reference, static_cast<std::size_t>(max_runs),
        args.option_or("min-similarity", 0.25));
    if (selected.empty() && records.empty())
      throw ArgsError("no stored runs similar to '" + *ref_id + "' in store " +
                      store.directory());
    for (const auto& s : selected) {
      out << "# similar run " << s.run_id << " (similarity "
          << util::fmt_double(s.similarity, 2) << ")\n";
      for (auto& rec : candidates)
        if (rec.run_id == s.run_id) records.push_back(std::move(rec));
    }
  }
  if (records.empty()) throw ArgsError("missing argument: run id(s)");

  history::GeneratorOptions opts;
  opts.priorities = !args.has_flag("no-priorities");
  opts.general_prunes = !args.has_flag("no-general-prunes");
  opts.historic_prunes = !args.has_flag("no-historic-prunes");
  opts.false_pair_prunes = args.has_flag("false-pair-prunes");
  opts.thresholds = args.has_flag("thresholds");
  const history::DirectiveGenerator generator(opts);

  pc::DirectiveSet directives;
  if (auto combine_mode = args.option("combine")) {
    if (*combine_mode == "weighted") {
      // Recency/frequency-weighted N-run aggregation: records are ordered
      // oldest → newest, and --half-life K halves a run's vote every K
      // runs of age.
      history::WeightedCombineOptions wopts;
      wopts.half_life_runs = args.option_or("half-life", wopts.half_life_runs);
      directives = generator.from_records_weighted(records, wopts);
    } else {
      // Combination semantics (paper §4.3) over all N runs: high in ALL
      // (intersect) or high in ANY (union) instead of pooling the records.
      history::CombineMode mode;
      if (*combine_mode == "intersect") mode = history::CombineMode::Intersection;
      else if (*combine_mode == "union") mode = history::CombineMode::Union;
      else throw ArgsError("--combine expects 'intersect', 'union' or 'weighted'");
      if (records.size() < 2) throw ArgsError("--combine needs at least two run ids");
      std::vector<pc::DirectiveSet> sets;
      sets.reserve(records.size());
      for (const auto& rec : records) sets.push_back(generator.from_record(rec));
      directives = history::combine_runs(sets, mode);
    }
  } else {
    directives = generator.from_records(records);
  }
  const std::string text = directives.serialize();
  if (auto file = args.option("out")) {
    util::write_file(*file, text);
    out << "wrote " << directives.prunes.size() << " prunes, "
        << directives.pair_prunes.size() << " pair prunes, "
        << directives.priorities.size() << " priorities, "
        << directives.thresholds.size() << " thresholds to " << *file << "\n";
  } else {
    out << text;
  }
  return 0;
}

int cmd_map(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  const ExperimentRecord from = load_or_throw(store, args.positional(0, "source run id"));
  const ExperimentRecord to = load_or_throw(store, args.positional(1, "target run id"));
  const auto maps = history::suggest_mappings(from.resources, to.resources);
  if (maps.empty()) {
    out << "# no mappings needed: the runs share their resource names\n";
  } else {
    for (const auto& m : maps) out << "map " << m.from << " " << m.to << "\n";
  }
  return 0;
}

int cmd_compare(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  const ExperimentRecord a = load_or_throw(store, args.positional(0, "first run id"));
  const ExperimentRecord b = load_or_throw(store, args.positional(1, "second run id"));
  std::vector<pc::MapDirective> maps;
  if (!args.has_flag("no-map")) maps = history::suggest_mappings(a.resources, b.resources);
  out << history::render_comparison(history::compare_records(a, b, maps), a.run_id,
                                    b.run_id);
  return 0;
}

int cmd_diff(const Args& args, std::ostream& out) {
  ExperimentStore store(args.option_or("store", std::string(kDefaultStoreDir)));
  const ExperimentRecord first = load_or_throw(store, args.positional(0, "first run id"));
  const ExperimentRecord second = load_or_throw(store, args.positional(1, "second run id"));
  const history::ExecutionMap map =
      history::build_execution_map(first.resources, second.resources);
  out << "execution map (1 = " << first.run_id << " only, 2 = " << second.run_id
      << " only, 3 = both):\n\n"
      << map.render();
  return 0;
}

int cmd_diagnose_trace(const Args& args, std::ostream& out) {
  const std::string path = args.positional(0, "trace file");
  pc::DirectiveSet directives;
  if (auto file = args.option("directives")) directives = pc::DirectiveSet::load(*file);

  const auto trace_path = args.option("trace");
  const telemetry::TraceFormat trace_format = parse_trace_format(args);
  telemetry::VectorSink event_sink;
  pc::PcConfig config;
  if (trace_path) config.trace_sink = &event_sink;
  config.search_threads = parse_search_threads(args);

  core::DiagnosisSession session(simmpi::load_trace(path), config);
  const pc::DiagnosisResult result = session.diagnose(directives);
  if (args.has_flag("shg")) out << session.last_shg() << "\n";
  print_result_summary(out, result);
  if (trace_path) {
    telemetry::save_trace_file(*trace_path, event_sink.events(), trace_format);
    out << "\nwrote " << event_sink.size() << " telemetry events to " << *trace_path
        << "\n";
  }
  return 0;
}

int cmd_trace_report(const Args& args, std::ostream& out) {
  const std::string path = args.positional(0, "trace file");
  // A bad file should diagnose, not dump a bare JSON parse error: name the
  // file, say what was expected, and exit non-zero so scripts notice.
  std::vector<telemetry::Event> events;
  try {
    events = telemetry::load_trace_file(path);
  } catch (const std::exception& e) {
    out << path << ": not a readable telemetry trace: " << e.what() << "\n"
        << "expected JSONL (one event object per line) or a Chrome trace-event file,\n"
        << "as written by `histpc run <app> --trace FILE [--trace-format chrome]`\n";
    return 1;
  }
  out << path << ": " << events.size() << " events\n";
  if (events.empty()) {
    out << "the trace is empty — was the run recorded with --trace?\n";
    return 1;
  }

  struct HypRow {
    std::uint64_t instruments = 0, trues = 0, falses = 0, refines = 0, prunes = 0;
    double first = std::numeric_limits<double>::infinity();
    double last = -std::numeric_limits<double>::infinity();
  };
  std::map<std::string, HypRow> by_hyp;
  struct PhaseRow {
    std::uint64_t count = 0;
    double seconds = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::map<std::string, PhaseRow> phases;
  std::map<std::string, double> open_phases;
  std::uint64_t probe_inserts = 0, probe_removes = 0, gate_engagements = 0;
  double peak_cost = 0.0;

  for (const auto& e : events) {
    peak_cost = std::max(peak_cost, e.cost);
    switch (e.kind) {
      case telemetry::EventKind::PhaseBegin:
        open_phases[e.detail] = e.t;
        continue;
      case telemetry::EventKind::PhaseEnd:
        if (auto it = open_phases.find(e.detail); it != open_phases.end()) {
          PhaseRow& p = phases[e.detail];
          const double lap = e.t - it->second;
          ++p.count;
          p.seconds += lap;
          p.min = std::min(p.min, lap);
          p.max = std::max(p.max, lap);
          open_phases.erase(it);
        }
        continue;
      case telemetry::EventKind::ProbeInsert: ++probe_inserts; continue;
      case telemetry::EventKind::ProbeRemove: ++probe_removes; continue;
      case telemetry::EventKind::CostGate:
        if (e.detail == "engaged") ++gate_engagements;
        continue;
      default:
        break;
    }
    if (e.hypothesis.empty()) continue;
    HypRow& row = by_hyp[e.hypothesis];
    row.first = std::min(row.first, e.t);
    row.last = std::max(row.last, e.t);
    switch (e.kind) {
      case telemetry::EventKind::Instrument: ++row.instruments; break;
      case telemetry::EventKind::ConcludeTrue: ++row.trues; break;
      case telemetry::EventKind::ConcludeFalse: ++row.falses; break;
      case telemetry::EventKind::Refine: ++row.refines; break;
      case telemetry::EventKind::PruneHit: ++row.prunes; break;
      default: break;
    }
  }

  if (!by_hyp.empty()) {
    out << "\nby hypothesis:\n";
    util::TablePrinter table(
        {"hypothesis", "instr", "true", "false", "refine", "prune", "first", "last"});
    for (const auto& [hyp, row] : by_hyp)
      table.add_row({hyp, std::to_string(row.instruments), std::to_string(row.trues),
                     std::to_string(row.falses), std::to_string(row.refines),
                     std::to_string(row.prunes), util::fmt_double(row.first, 1) + "s",
                     util::fmt_double(row.last, 1) + "s"});
    table.print(out);
  }
  if (!phases.empty()) {
    // Per-lap min/max expose outlier laps that the total/count would
    // average away (one 30s phase among a hundred 1s phases).
    out << "\nphases (virtual time):\n";
    util::TablePrinter table({"phase", "count", "seconds", "min lap", "max lap"});
    for (const auto& [name, p] : phases)
      table.add_row({name, std::to_string(p.count), util::fmt_double(p.seconds, 1),
                     util::fmt_double(p.min, 1), util::fmt_double(p.max, 1)});
    table.print(out);
  }
  out << "\nprobe inserts:     " << probe_inserts << "\n"
      << "probe removes:     " << probe_removes << "\n"
      << "cost-gate engages: " << gate_engagements << "\n"
      << "peak active cost:  " << util::fmt_percent(peak_cost, 1) << "\n";
  return 0;
}

// ------------------------------------------------- perf-report / perf-diff

/// Resolve the perf log the perf commands read: --log FILE wins; otherwise
/// the per-store location `<store>/perf-log/<app>.jsonl` (needs --app).
telemetry::PerfLog resolve_perf_log(const Args& args) {
  if (auto log = args.option("log")) return telemetry::PerfLog(*log);
  if (auto app = args.option("app"))
    return telemetry::PerfLog(telemetry::PerfLog::path_in_store(
        args.option_or("store", std::string(kDefaultStoreDir)), *app));
  throw ArgsError("need --log FILE, or --app NAME [--store DIR]");
}

int cmd_perf_report(const Args& args, std::ostream& out) {
  const telemetry::PerfLog log = resolve_perf_log(args);
  const std::vector<telemetry::PerfRecord> records = log.read_all();
  if (records.empty()) {
    out << log.path() << ": no perf records (run `histpc run <app> --store DIR` or "
        << "--perf-log FILE to start collecting)\n";
    return 2;
  }
  const telemetry::PerfRecord& rec = records.back();
  if (args.has_flag("json")) {
    out << rec.to_json().dump(2) << "\n";
    return 0;
  }
  out << "perf log:   " << log.path() << " (" << records.size() << " records)\n"
      << "app:        " << rec.app << " (version " << rec.version << ", kind " << rec.kind
      << ")\n"
      << "machine:    " << rec.machine << "\n"
      << "build:      " << rec.build << "\n";
  if (!rec.config.empty()) {
    out << "config:     ";
    bool first = true;
    for (const auto& [key, value] : rec.config) {
      if (!first) out << ", ";
      out << key << "=" << value;
      first = false;
    }
    out << "\n";
  }
  if (!rec.registry.timers().empty()) {
    out << "\ntimers:\n";
    util::TablePrinter table(
        {"timer", "count", "total", "mean", "min", "max", "p50", "p90", "p99"});
    for (const auto& [name, stat] : rec.registry.timers()) {
      const telemetry::Histogram* h = rec.registry.histogram(name);
      const double mean = stat.count ? stat.seconds / static_cast<double>(stat.count) : 0.0;
      table.add_row({name, std::to_string(stat.count), util::fmt_seconds(stat.seconds),
                     util::fmt_seconds(mean), util::fmt_seconds(stat.count ? stat.min : 0.0),
                     util::fmt_seconds(stat.count ? stat.max : 0.0),
                     h ? util::fmt_seconds(h->quantile(0.50)) : "-",
                     h ? util::fmt_seconds(h->quantile(0.90)) : "-",
                     h ? util::fmt_seconds(h->quantile(0.99)) : "-"});
    }
    table.print(out);
  }
  if (!rec.registry.counters().empty()) {
    out << "\ncounters:\n";
    util::TablePrinter table({"counter", "value"});
    for (const auto& [name, value] : rec.registry.counters())
      table.add_row({name, std::to_string(value)});
    table.print(out);
  }
  if (!rec.registry.gauges().empty()) {
    out << "\ngauges:\n";
    util::TablePrinter table({"gauge", "value"});
    for (const auto& [name, value] : rec.registry.gauges())
      table.add_row({name, util::fmt_double(value, 4)});
    table.print(out);
  }
  return 0;
}

int cmd_perf_diff(const Args& args, std::ostream& out) {
  const telemetry::PerfLog log = resolve_perf_log(args);
  std::vector<telemetry::PerfRecord> records = log.read_all();
  if (records.empty()) {
    out << log.path() << ": no perf records to diff\n";
    return 2;
  }
  const telemetry::PerfRecord current = std::move(records.back());
  records.pop_back();

  std::vector<telemetry::PerfRecord> baseline;
  std::string baseline_desc;
  if (auto baseline_path = args.option("baseline")) {
    baseline = telemetry::PerfLog(*baseline_path).read_all();
    baseline_desc = *baseline_path;
  } else {
    baseline = std::move(records);
    baseline_desc = "earlier records in " + log.path();
  }
  if (baseline.empty()) {
    out << "no baseline records (" << baseline_desc << " is empty) — "
        << "need at least one historical run to diff against\n";
    return 2;
  }

  telemetry::PerfDiffOptions opts;
  // Don't clamp: --window 0 means "compare against nothing", which is a
  // degenerate request the caller should hear about, not silently a
  // window of 1. Negative windows are nonsense.
  const int window = args.option_or("window", 5);
  if (window < 0) throw ArgsError("option --window expects a non-negative integer");
  if (window == 0) {
    out << "nothing to compare: --window 0 selects no baseline records\n";
    return 2;
  }
  opts.window = static_cast<std::size_t>(window);
  opts.sigma = args.option_or("sigma", opts.sigma);
  opts.min_rel = args.option_or("min-rel", opts.min_rel);
  opts.min_abs = args.option_or("min-abs", opts.min_abs);
  const telemetry::PerfDiffReport report = telemetry::perf_diff(current, baseline, opts);

  if (args.has_flag("json")) {
    out << report.to_json().dump(2) << "\n";
    return report.regressions > 0 ? 1 : 0;
  }
  out << "current:  " << current.app << " (" << current.kind << ", build " << current.build
      << ", " << current.machine << ")\n"
      << "baseline: " << baseline_desc << " (window "
      << std::min(opts.window, baseline.size()) << " of " << baseline.size() << ")\n";
  for (const std::string& note : report.notes) out << "note: " << note << "\n";
  if (report.entries.empty()) {
    out << "no comparable metrics between current and baseline records\n";
    return 2;
  }
  out << "\n";
  util::TablePrinter table({"metric", "baseline median", "current", "ratio", "band", "verdict"});
  for (const telemetry::PerfDiffEntry& e : report.entries)
    table.add_row({e.metric, util::fmt_seconds(e.median), util::fmt_seconds(e.current),
                   util::fmt_double(e.ratio, 2) + "x", util::fmt_seconds(e.band),
                   e.regressed ? "REGRESSED" : (e.improved ? "improved" : "ok")});
  table.print(out);
  out << "\n" << report.entries.size() << " metrics: " << report.regressions
      << " regressed, " << report.improvements << " improved\n";
  return report.regressions > 0 ? 1 : 0;
}

struct Command {
  const char* name;
  int (*fn)(const Args&, std::ostream&);
  std::set<std::string> value_options;
  std::set<std::string> flag_options;
};

const Command kCommands[] = {
    {"apps", cmd_apps, {}, {}},
    {"report", cmd_report, {"duration", "node-base", "workload", "bins"}, {}},
    {"run",
     cmd_run,
     {"duration", "node-base", "threshold", "cost-limit", "directives", "store", "version",
      "scenario", "save-trace", "dot", "workload", "trace", "trace-format", "trace-cache",
      "perf-log", "search-threads"},
     {"shg", "extended", "postmortem", "discovery", "no-trace-cache"}},
    {"variants",
     cmd_variants,
     {"duration", "node-base", "workload", "threads", "threshold", "version", "trace-cache",
      "search-threads"},
     {"string-foci", "no-trace-cache"}},
    {"list", cmd_list, {"store", "app", "version", "machine", "scenario"}, {}},
    {"migrate", cmd_migrate, {"store", "jobs"}, {}},
    {"serve",
     cmd_serve,
     {"host", "port", "threads", "queue-depth", "store", "trace-cache", "max-body-kb",
      "perf-log"},
     {"no-result-cache", "no-perf-log", "no-trace-cache"}},
    {"bench-client",
     cmd_bench_client,
     {"host", "port", "rps", "duration", "connections", "seed", "app", "app-duration",
      "deadline-ms", "out", "connect-wait"},
     {"no-result-cache"}},
    {"show", cmd_show, {"store"}, {"report"}},
    {"harvest",
     cmd_harvest,
     {"store", "out", "combine", "half-life", "similar-to", "max-runs", "min-similarity"},
     {"no-priorities", "no-general-prunes", "no-historic-prunes", "false-pair-prunes",
      "thresholds"}},
    {"map", cmd_map, {"store"}, {}},
    {"compare", cmd_compare, {"store"}, {"no-map"}},
    {"diff", cmd_diff, {"store"}, {}},
    {"diagnose-trace",
     cmd_diagnose_trace,
     {"directives", "trace", "trace-format", "search-threads"},
     {"shg"}},
    {"trace-report", cmd_trace_report, {}, {}},
    {"perf-report", cmd_perf_report, {"log", "store", "app"}, {"json"}},
    {"perf-diff",
     cmd_perf_diff,
     {"log", "store", "app", "baseline", "window", "sigma", "min-rel", "min-abs"},
     {"json"}},
};

}  // namespace

std::string usage() {
  std::ostringstream os;
  os << "histpc — historical-data-directed online performance diagnosis\n\n"
        "usage: histpc <command> [args]\n\ncommands:\n"
        "  apps                         list registered applications\n"
        "  report <app>                 simulate and summarize an execution\n"
        "  run <app>                    simulate + diagnose (optionally directed/stored)\n"
        "  variants <app>               run the table-1 directive variants in parallel\n"
        "  list                         list stored experiment records\n"
        "  migrate                      convert legacy JSON records to binary\n"
        "  serve                        long-running diagnosis service (HTTP/JSON)\n"
        "  bench-client                 open-loop load generator for serve\n"
        "  show <run_id>                print one record\n"
        "  harvest <run_id>             extract search directives from a record\n"
        "  map <from_id> <to_id>        suggest resource mappings between two runs\n"
        "  compare <id1> <id2>          bottlenecks resolved/appeared/moved between runs\n"
        "  diff <id1> <id2>             execution map of two runs' resources\n"
        "  diagnose-trace <file.json>   diagnose a serialized trace\n"
        "  trace-report <trace>         summarize a saved telemetry trace\n"
        "  perf-report                  show the latest self-telemetry perf record\n"
        "  perf-diff                    flag cross-run performance regressions\n"
        "\nexperiment records are stored as binary snapshots (.histexp) with\n"
        "an on-disk index; legacy .json records still load and migrate on\n"
        "first read (or all at once via migrate --store DIR). list filters\n"
        "on --app/--version/--machine/--scenario straight from the index;\n"
        "run --scenario LABEL tags the stored record. harvest combines\n"
        "several runs with --combine intersect|union|weighted (weighted\n"
        "decays each run's vote with --half-life K runs) and can pick the\n"
        "input runs automatically: --similar-to RUN_ID [--max-runs N]\n"
        "[--min-similarity S] scores every stored run of the same app.\n"
        "\nrun/diagnose-trace also take --trace FILE [--trace-format jsonl|chrome]\n"
        "to record the search's telemetry events (chrome = load in Perfetto).\n"
        "run/variants cache simulated traces as binary snapshots (default\n"
        "directory .histpc/trace-cache); --trace-cache DIR relocates the\n"
        "cache and --no-trace-cache simulates from scratch.\n"
        "run/diagnose-trace/variants take --search-threads N to enable the\n"
        "speculative parallel search (N-1 workers pre-evaluate likely\n"
        "refinement candidates; 0 = all hardware threads, default 1 =\n"
        "serial). Conclusions are bit-identical for every N.\n"
        "run --store DIR also appends this run's telemetry (timers with\n"
        "p50/p90/p99 lap histograms) as a PerfRecord under DIR/perf-log/;\n"
        "--perf-log FILE redirects it. perf-report/perf-diff read those logs\n"
        "(--log FILE, or --app NAME [--store DIR]); perf-diff compares the\n"
        "newest record against a --window K baseline (or --baseline FILE)\n"
        "with a MAD band (--sigma/--min-rel/--min-abs) and exits non-zero\n"
        "when a metric regressed.\n"
        "\nmigrate --jobs N parses/encodes legacy records on N threads (0 =\n"
        "all hardware threads); the resulting index and summary line are\n"
        "identical for every N.\n"
        "serve [--port N] answers POST /diagnose /list /perf-report (and\n"
        "GET /healthz /stats, POST /shutdown) concurrently over one shared\n"
        "read-mostly store + trace cache; --threads/--queue-depth size the\n"
        "worker pool and admission queue (excess requests are shed with\n"
        "429), --no-result-cache disables warm-result memoization, and each\n"
        "request appends a kind=serve PerfRecord readable by perf-report\n"
        "--app serve. bench-client --port N --rps R --duration S drives a\n"
        "running server with open-loop Poisson arrivals and prints p50/p99\n"
        "latency and shed rate; --out FILE merges a serve_load section into\n"
        "a BENCH_metrics.json-style file.\n";
  return os.str();
}

int run_command(const std::string& command, const std::vector<std::string>& tokens,
                std::ostream& out) {
  for (const Command& c : kCommands) {
    if (command == c.name) {
      const Args args = Args::parse(tokens, c.value_options, c.flag_options);
      return c.fn(args, out);
    }
  }
  throw ArgsError("unknown command '" + command + "'\n" + usage());
}

}  // namespace histpc::cli
