// Ocean-circulation analogue (Section 4.2's PVM code on SPARCstations).
//
// Its bottleneck profile is deliberately different from the Poisson code:
// the significant synchronization fractions cluster above ~21% and the
// insignificant ones below ~12%, so the most useful threshold is ~20%
// rather than the MPI application's ~12% — demonstrating why historical,
// application-specific thresholds beat a global default.
#include <vector>

#include "apps/apps.h"

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::MachineSpec;
using simmpi::ProgramBuilder;
using simmpi::Recorder;
using simmpi::RequestId;

simmpi::NetworkModel ocean_network() {
  simmpi::NetworkModel net;
  // 10 Mbit Ethernet between workstations: high latency, low bandwidth.
  net.latency = 800e-6;
  net.bytes_per_second = 1.1e6;
  net.eager_limit = 4 * 1024;
  return net;
}

simmpi::SimProgram build_ocean(const AppParams& params) {
  const int nranks = 4;
  std::string node_prefix = params.node_prefix.empty() ? "spark" : params.node_prefix;
  MachineSpec machine = MachineSpec::one_to_one(nranks, node_prefix, "ocean", params.node_base);

  // Moderate imbalance: coastal strips (ranks 0, 3) carry more work.
  const std::vector<double> factors = {1.0, 0.62, 0.58, 0.92};
  const double c_step = 0.55;    // barotropic step
  const double c_relax = 0.25;   // relaxation solve
  const std::size_t halo = 96 * 1024;
  const std::size_t reduce_bytes = 48 * 1024;

  const simmpi::NetworkModel net = ocean_network();
  const double iter_time = c_step + c_relax + 2 * net.transfer_time(halo) +
                           net.transfer_time(reduce_bytes);
  const int iterations = std::max(1, static_cast<int>(params.target_duration / iter_time));

  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    const double f = factors.at(static_cast<std::size_t>(rank));
    FunctionScope fn_main(r, "main", "ocean.c");
    {
      FunctionScope fn(r, "readgrid", "gridio.c");
      r.io(1.2);  // one-time grid load
    }
    const int lo = rank > 0 ? rank - 1 : -1;
    const int hi = rank + 1 < nranks ? rank + 1 : -1;

    for (int iter = 0; iter < iterations; ++iter) {
      {
        FunctionScope fn(r, "step", "step.c");
        r.compute(f * c_step);
      }
      {
        FunctionScope fn(r, "exchange", "comm.c");
        std::vector<RequestId> recvs;
        if (lo >= 0) recvs.push_back(r.irecv(lo, 0));
        if (hi >= 0) recvs.push_back(r.irecv(hi, 0));
        if (lo >= 0) r.send(lo, 0, halo);
        if (hi >= 0) r.send(hi, 0, halo);
        for (RequestId req : recvs) r.wait(req);
      }
      {
        FunctionScope fn(r, "relax", "solver.c");
        r.compute(f * c_relax);
      }
      {
        // Global sum gathered at rank 0 and broadcast back (PVM style).
        FunctionScope fn(r, "globalsum", "comm.c");
        if (rank == 0) {
          for (int src = 1; src < nranks; ++src) r.recv(src, 1);
          for (int dst = 1; dst < nranks; ++dst) r.send(dst, 2, reduce_bytes);
        } else {
          r.send(0, 1, reduce_bytes);
          r.recv(0, 2);
        }
      }
      if (iter % 300 == 299) {
        FunctionScope fn(r, "checkpoint", "gridio.c");
        r.io(0.4);
      }
    }
  });
  return builder.build();
}

}  // namespace histpc::apps
