// I/O-bound workload: a seismic-migration-style code that streams trace
// gathers from disk, migrates them, and checkpoints images. Unlike the
// Poisson and ocean codes it is dominated by I/O blocking time, so it
// exercises the ExcessiveIOBlockingTime hypothesis path (true at top
// level, refined to the reading function and the slow-disk ranks).
#include "apps/apps.h"

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::MachineSpec;
using simmpi::ProgramBuilder;
using simmpi::Recorder;

simmpi::SimProgram build_seismic(const AppParams& params) {
  const int nranks = 4;
  std::string node_prefix = params.node_prefix.empty() ? "disknode" : params.node_prefix;
  MachineSpec machine =
      MachineSpec::one_to_one(nranks, node_prefix, "seismic", params.node_base);

  // Ranks 0 and 1 read from the slow shared filesystem; 2 and 3 from
  // local scratch.
  const double read_cost[] = {0.55, 0.50, 0.18, 0.16};
  const double c_migrate = 0.35;
  const double iter_time = 0.55 + c_migrate + 0.1;
  const int iterations = std::max(1, static_cast<int>(params.target_duration / iter_time));

  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    FunctionScope fmain(r, "main", "seismic.c");
    for (int iter = 0; iter < iterations; ++iter) {
      {
        FunctionScope fn(r, "readGather", "traceio.c");
        r.io(read_cost[rank]);
      }
      {
        FunctionScope fn(r, "migrate", "kernel.c");
        r.compute(c_migrate);
      }
      {
        // Small halo of image tiles; keeps everyone loosely in step.
        FunctionScope fn(r, "exchangeTiles", "comm.c");
        const int peer = rank ^ 1;
        const simmpi::RequestId req = r.irecv(peer, 0);
        r.send(peer, 0, 8 * 1024);
        r.wait(req);
      }
      if (iter % 50 == 49) {
        FunctionScope fn(r, "writeImage", "imageio.c");
        r.io(0.8);
      }
      r.barrier();
    }
  });
  return builder.build();
}

}  // namespace histpc::apps
