// User-defined workloads from JSON specifications.
//
// The built-in applications are C++ functions; a WorkloadSpec lets a user
// describe a synthetic SPMD program declaratively and diagnose it with the
// same pipeline (histpc run --workload my.json). Example:
//
//   {
//     "name": "mysolver",
//     "ranks": 4,
//     "iterations": 200,
//     "machine": { "node_prefix": "node", "process_prefix": "mysolver",
//                  "speeds": [1.0, 1.0, 0.5, 0.5] },
//     "network": { "latency": 4e-5, "bandwidth": 9e7, "eager_limit": 16384 },
//     "body": [
//       { "op": "compute", "seconds": 0.4, "function": "solve",
//         "module": "solver.c", "factors": [1.0, 0.9, 0.3, 0.2] },
//       { "op": "exchange", "pattern": "ring", "tag": 0, "bytes": 2000000,
//         "function": "exchange", "module": "comm.c" },
//       { "op": "io", "seconds": 0.5, "every": 20, "function": "checkpoint",
//         "module": "io.c" },
//       { "op": "allreduce", "bytes": 8 }
//     ]
//   }
//
// Steps:
//   compute   — seconds (scaled by optional per-rank "factors")
//   io        — seconds, like compute but I/O-blocked
//   exchange  — pattern in {"ring", "pairs", "butterfly"}: nonblocking
//               neighbour exchange of "bytes" with "tag"/"comm"
//   barrier / allreduce — collectives ("bytes" for allreduce payload)
// Any step accepts "every": N (run on every Nth iteration only) and
// "function"/"module" for Code-hierarchy attribution (defaults to main).
#pragma once

#include <string>

#include "simmpi/program.h"
#include "simmpi/simulator.h"
#include "util/json.h"

namespace histpc::apps {

struct Workload {
  std::string name;
  simmpi::SimProgram program;
  simmpi::NetworkModel network;
};

class WorkloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse and build; throws WorkloadError with a step-indexed message on
/// invalid specs.
Workload build_workload(const util::Json& spec);
Workload load_workload(const std::string& path);

/// Build, simulate.
simmpi::ExecutionTrace run_workload(const util::Json& spec);

}  // namespace histpc::apps
