// Master/worker task farm: rank 0 deals work units to three workers and
// collects results with wildcard receives (MPI_ANY_SOURCE) — results are
// consumed in arrival order, not rank order. The workers' compute rates
// differ, so the master spends most of each round blocked in collectResults
// waiting on the slowest worker: a master-side synchronization bottleneck
// on the result tag.
#include "apps/apps.h"

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::MachineSpec;
using simmpi::ProgramBuilder;
using simmpi::Recorder;

namespace {
constexpr int kTaskTag = 1;
constexpr int kResultTag = 2;
}  // namespace

simmpi::SimProgram build_taskfarm(const AppParams& params) {
  const int nranks = 4;  // 1 master + 3 workers
  std::string node_prefix = params.node_prefix.empty() ? "farm" : params.node_prefix;
  MachineSpec machine =
      MachineSpec::one_to_one(nranks, node_prefix, "taskfarm", params.node_base);

  const double work_cost[] = {0.0, 0.35, 0.6, 1.0};  // per task, worker-dependent
  const std::size_t task_bytes = 32 * 1024;
  const std::size_t result_bytes = 8 * 1024;
  const double round_time = 1.1;
  const int rounds = std::max(1, static_cast<int>(params.target_duration / round_time));

  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    FunctionScope fmain(r, "main", "farm.c");
    for (int round = 0; round < rounds; ++round) {
      if (rank == 0) {
        {
          FunctionScope fn(r, "dealTasks", "master.c");
          r.compute(0.05);
          for (int w = 1; w < nranks; ++w) r.send(w, kTaskTag, task_bytes);
        }
        {
          // Results come back in whatever order workers finish.
          FunctionScope fn(r, "collectResults", "master.c");
          for (int w = 1; w < nranks; ++w) r.recv(simmpi::kAnySource, kResultTag);
        }
        {
          FunctionScope fn(r, "reduceResults", "master.c");
          r.compute(0.08);
        }
      } else {
        {
          FunctionScope fn(r, "awaitTask", "worker.c");
          r.recv(0, kTaskTag);
        }
        {
          FunctionScope fn(r, "processTask", "worker.c");
          r.compute(work_cost[rank]);
        }
        r.send(0, kResultTag, result_bytes);
      }
    }
  });
  return builder.build();
}

}  // namespace histpc::apps
