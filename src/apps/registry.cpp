#include <stdexcept>

#include "apps/apps.h"

namespace histpc::apps {

simmpi::SimProgram build_app(const std::string& name, const AppParams& params) {
  if (name == "poisson_a") return build_poisson('A', params);
  if (name == "poisson_b") return build_poisson('B', params);
  if (name == "poisson_c") return build_poisson('C', params);
  if (name == "poisson_d") return build_poisson('D', params);
  if (name == "ocean") return build_ocean(params);
  if (name == "tester") return build_tester(params);
  if (name == "bubba") return build_bubba(params);
  if (name == "seismic") return build_seismic(params);
  if (name == "taskfarm") return build_taskfarm(params);
  throw std::invalid_argument("unknown app: " + name);
}

simmpi::NetworkModel network_for(const std::string& name) {
  if (name == "ocean") return ocean_network();
  if (name.rfind("poisson_", 0) == 0) return poisson_network();
  return simmpi::NetworkModel{};
}

std::vector<std::string> app_names() {
  return {"poisson_a", "poisson_b", "poisson_c", "poisson_d", "ocean", "tester", "bubba",
          "seismic", "taskfarm"};
}

simmpi::ExecutionTrace run_app(const std::string& name, const AppParams& params) {
  simmpi::Simulator sim(network_for(name));
  return sim.run(build_app(name, params));
}

}  // namespace histpc::apps
