// Simulated test applications.
//
// These stand in for the paper's real workloads on the IBM SP/2:
//
//  * poisson A-D — the iterative Poisson decomposition of Gropp, Lusk &
//    Skjellum ch. 4 used throughout Section 4:
//      A: 1-D decomposition, blocking send/recv   (oned.f / sweep.f / exchng1.f)
//      B: 1-D decomposition, nonblocking          (onednb.f / nbsweep.f / nbexchng.f)
//      C: 2-D decomposition                        (twod.f / sweep2d.f / exchng2.f)
//      D: the same code as C across 8 nodes
//    All versions compute a fixed number of iterations (as the paper's
//    modified versions did). Per-rank compute imbalance and large halo
//    messages reproduce the measured shape for version C: execution
//    dominated by synchronization waiting, concentrated in exchng2 and
//    main, split across message tags 3:0 / 3:1 / 3:-1, with processes 3
//    and 4 waiting far more than 1 and 2.
//
//  * ocean — the PVM ocean-circulation analogue of Section 4.2, whose
//    bottleneck fractions sit higher, so its useful threshold (~20%)
//    differs from the MPI code's (~12%): the argument for
//    application-specific historical thresholds.
//
//  * tester — the example program of Figure 1 (resource hierarchies).
//  * bubba — the program of the Figure 2 search (CPU-bound partitioner).
#pragma once

#include <string>

#include "simmpi/program.h"
#include "simmpi/simulator.h"

namespace histpc::apps {

struct AppParams {
  /// Approximate virtual duration of the run; the iteration count is
  /// derived from it.
  double target_duration = 1600.0;
  /// First machine-node number; change between runs to reproduce the
  /// "same machine, differently named nodes" mapping scenario.
  int node_base = 1;
  /// Override the machine-node name prefix (app-specific default if empty).
  std::string node_prefix;
  /// Run-to-run variability: relative stddev of compute durations and the
  /// seed that makes each simulated "run" reproducible. Zero jitter (the
  /// default) gives exact repeatability.
  double compute_jitter = 0.0;
  std::uint64_t seed = 0;
};

/// Poisson decomposition, version in {'A','B','C','D'}.
simmpi::SimProgram build_poisson(char version, const AppParams& params = {});

/// Network model matching the simulated SP/2 runs (shared by versions so
/// cross-version comparisons are apples-to-apples).
simmpi::NetworkModel poisson_network();

simmpi::SimProgram build_ocean(const AppParams& params = {});
simmpi::NetworkModel ocean_network();

simmpi::SimProgram build_tester(const AppParams& params = {});

/// I/O-dominated seismic-migration-style workload (exercises the
/// ExcessiveIOBlockingTime hypothesis path).
simmpi::SimProgram build_seismic(const AppParams& params = {});

/// Master/worker task farm using wildcard receives (master-side
/// synchronization bottleneck).
simmpi::SimProgram build_taskfarm(const AppParams& params = {});
simmpi::SimProgram build_bubba(const AppParams& params = {});

/// Uniform entry point: name in {"poisson_a", ..., "poisson_d", "ocean",
/// "tester", "bubba", "seismic", "taskfarm"}. Throws std::invalid_argument for unknown names.
simmpi::SimProgram build_app(const std::string& name, const AppParams& params = {});
/// The network model an app should be simulated with.
simmpi::NetworkModel network_for(const std::string& name);
/// All registered app names.
std::vector<std::string> app_names();

/// Convenience: build and simulate in one call.
simmpi::ExecutionTrace run_app(const std::string& name, const AppParams& params = {});

}  // namespace histpc::apps
