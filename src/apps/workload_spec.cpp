#include "apps/workload_spec.h"

#include <optional>
#include <vector>

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::Recorder;
using util::Json;

namespace {

enum class StepKind { Compute, Io, Exchange, Barrier, Allreduce, Bcast, Gather, Alltoall };
enum class Pattern { Ring, Pairs, Butterfly };

struct Step {
  StepKind kind = StepKind::Compute;
  double seconds = 0.0;
  std::vector<double> factors;  ///< per-rank scaling; empty = 1.0 everywhere
  Pattern pattern = Pattern::Ring;
  int tag = 0;
  int comm = 0;
  std::size_t bytes = 0;
  int every = 1;
  std::string function;  ///< empty = attribute to main
  std::string module;
};

[[noreturn]] void fail(std::size_t step_index, const std::string& why) {
  throw WorkloadError("workload body step " + std::to_string(step_index) + ": " + why);
}

Step parse_step(const Json& j, std::size_t index, int nranks) {
  if (!j.is_object()) fail(index, "expected an object");
  Step step;
  const std::string op = j.get_or("op", std::string());
  if (op == "compute") step.kind = StepKind::Compute;
  else if (op == "io") step.kind = StepKind::Io;
  else if (op == "exchange") step.kind = StepKind::Exchange;
  else if (op == "barrier") step.kind = StepKind::Barrier;
  else if (op == "allreduce") step.kind = StepKind::Allreduce;
  else if (op == "bcast") step.kind = StepKind::Bcast;
  else if (op == "gather") step.kind = StepKind::Gather;
  else if (op == "alltoall") step.kind = StepKind::Alltoall;
  else fail(index, "unknown op '" + op + "'");

  step.seconds = j.get_or("seconds", 0.0);
  if ((step.kind == StepKind::Compute || step.kind == StepKind::Io) && step.seconds <= 0)
    fail(index, "'" + op + "' requires positive \"seconds\"");

  if (const Json* factors = j.as_object().find("factors")) {
    for (const auto& f : factors->as_array()) step.factors.push_back(f.as_double());
    if (static_cast<int>(step.factors.size()) != nranks)
      fail(index, "\"factors\" must list one value per rank");
    for (double f : step.factors)
      if (!(f > 0)) fail(index, "\"factors\" entries must be positive");
  }

  if (step.kind == StepKind::Exchange) {
    const std::string pattern = j.get_or("pattern", std::string("ring"));
    if (pattern == "ring") step.pattern = Pattern::Ring;
    else if (pattern == "pairs") step.pattern = Pattern::Pairs;
    else if (pattern == "butterfly") step.pattern = Pattern::Butterfly;
    else fail(index, "unknown pattern '" + pattern + "'");
    step.bytes = static_cast<std::size_t>(j.get_or("bytes", 1024.0));
    step.tag = static_cast<int>(j.get_or("tag", 0.0));
    step.comm = static_cast<int>(j.get_or("comm", 0.0));
    if (pattern == "pairs" && nranks % 2 != 0)
      fail(index, "\"pairs\" exchange needs an even rank count");
  }
  if (step.kind == StepKind::Allreduce || step.kind == StepKind::Bcast ||
      step.kind == StepKind::Gather || step.kind == StepKind::Alltoall)
    step.bytes = static_cast<std::size_t>(j.get_or("bytes", 8.0));

  step.every = static_cast<int>(j.get_or("every", 1.0));
  if (step.every < 1) fail(index, "\"every\" must be >= 1");
  step.function = j.get_or("function", std::string());
  step.module = j.get_or("module", std::string());
  if (step.function.empty() != step.module.empty())
    fail(index, "\"function\" and \"module\" must be given together");
  return step;
}

void run_exchange(Recorder& r, const Step& step) {
  const int rank = r.rank();
  const int size = r.size();
  auto swap_with = [&](int partner) {
    const simmpi::RequestId req = r.irecv(partner, step.tag, step.comm);
    r.send(partner, step.tag, step.bytes, step.comm);
    r.wait(req);
  };
  switch (step.pattern) {
    case Pattern::Ring: {
      if (size < 2) return;
      const int next = (rank + 1) % size;
      const int prev = (rank + size - 1) % size;
      const simmpi::RequestId req = r.irecv(prev, step.tag, step.comm);
      r.send(next, step.tag, step.bytes, step.comm);
      r.wait(req);
      break;
    }
    case Pattern::Pairs:
      swap_with(rank ^ 1);
      break;
    case Pattern::Butterfly:
      for (int stage = 1; stage < size; stage <<= 1) {
        const int partner = rank ^ stage;
        if (partner < size) swap_with(partner);
      }
      break;
  }
}

void run_step(Recorder& r, const Step& step, int iter) {
  if (iter % step.every != step.every - 1 && step.every > 1) return;
  std::optional<FunctionScope> scope;
  if (!step.function.empty()) scope.emplace(r, step.function, step.module);
  const double factor =
      step.factors.empty() ? 1.0 : step.factors[static_cast<std::size_t>(r.rank())];
  switch (step.kind) {
    case StepKind::Compute: r.compute(factor * step.seconds); break;
    case StepKind::Io: r.io(factor * step.seconds); break;
    case StepKind::Exchange: run_exchange(r, step); break;
    case StepKind::Barrier: r.barrier(); break;
    case StepKind::Allreduce: r.allreduce(step.bytes); break;
    case StepKind::Bcast: r.bcast(step.bytes); break;
    case StepKind::Gather: r.gather(step.bytes); break;
    case StepKind::Alltoall: r.alltoall(step.bytes); break;
  }
}

simmpi::MachineSpec parse_machine(const Json& spec, const std::string& name, int nranks) {
  std::string node_prefix = "node";
  std::string process_prefix = name;
  int node_base = 1;
  std::vector<double> speeds;
  if (const Json* machine = spec.as_object().find("machine")) {
    node_prefix = machine->get_or("node_prefix", node_prefix);
    process_prefix = machine->get_or("process_prefix", process_prefix);
    node_base = static_cast<int>(machine->get_or("node_base", 1.0));
    if (const Json* sp = machine->as_object().find("speeds"))
      for (const auto& s : sp->as_array()) speeds.push_back(s.as_double());
  }
  simmpi::MachineSpec m =
      simmpi::MachineSpec::one_to_one(nranks, node_prefix, process_prefix, node_base);
  if (!speeds.empty()) {
    if (static_cast<int>(speeds.size()) != nranks)
      throw WorkloadError("machine.speeds must list one value per rank");
    m.node_speeds = speeds;
  }
  m.validate();
  return m;
}

simmpi::NetworkModel parse_network(const Json& spec) {
  simmpi::NetworkModel net;
  if (const Json* n = spec.as_object().find("network")) {
    net.latency = n->get_or("latency", net.latency);
    net.bytes_per_second = n->get_or("bandwidth", net.bytes_per_second);
    net.eager_limit =
        static_cast<std::size_t>(n->get_or("eager_limit", static_cast<double>(net.eager_limit)));
    if (net.latency < 0 || net.bytes_per_second <= 0)
      throw WorkloadError("network: latency must be >= 0 and bandwidth > 0");
  }
  return net;
}

}  // namespace

Workload build_workload(const Json& spec) {
  if (!spec.is_object()) throw WorkloadError("workload spec must be a JSON object");
  Workload w;
  w.name = spec.get_or("name", std::string("workload"));
  const int nranks = static_cast<int>(spec.get_or("ranks", 0.0));
  if (nranks < 1 || nranks > 4096) throw WorkloadError("\"ranks\" must be in [1, 4096]");
  const int iterations = static_cast<int>(spec.get_or("iterations", 0.0));
  if (iterations < 1) throw WorkloadError("\"iterations\" must be >= 1");

  const Json* body = spec.as_object().find("body");
  if (!body || !body->is_array() || body->as_array().empty())
    throw WorkloadError("\"body\" must be a non-empty array of steps");
  std::vector<Step> steps;
  for (std::size_t i = 0; i < body->as_array().size(); ++i)
    steps.push_back(parse_step(body->as_array()[i], i, nranks));

  std::vector<Step> init_steps;
  if (const Json* init = spec.as_object().find("init"))
    for (std::size_t i = 0; i < init->as_array().size(); ++i)
      init_steps.push_back(parse_step(init->as_array()[i], i, nranks));

  w.network = parse_network(spec);
  simmpi::ProgramBuilder builder(parse_machine(spec, w.name, nranks));
  builder.record([&](Recorder& r) {
    FunctionScope fmain(r, "main", w.name + ".c");
    for (const Step& step : init_steps) run_step(r, step, step.every - 1);
    for (int iter = 0; iter < iterations; ++iter)
      for (const Step& step : steps) run_step(r, step, iter);
  });
  w.program = builder.build();
  return w;
}

Workload load_workload(const std::string& path) {
  return build_workload(Json::parse(util::read_file(path)));
}

simmpi::ExecutionTrace run_workload(const Json& spec) {
  Workload w = build_workload(spec);
  return simmpi::Simulator(w.network).run(w.program);
}

}  // namespace histpc::apps
