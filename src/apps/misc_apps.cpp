// Small demonstration programs: "Tester" (paper Figure 1) and "bubba"
// (paper Figure 2).
#include <vector>

#include "apps/apps.h"

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::MachineSpec;
using simmpi::ProgramBuilder;
using simmpi::Recorder;

/// The example program of Figure 1: three resource hierarchies —
/// Code {main.C, testutil.C, vect.C}, Machine {CPU_1..4},
/// Process {Tester:1..4}.
simmpi::SimProgram build_tester(const AppParams& params) {
  const int nranks = 4;
  MachineSpec machine;
  for (int i = 0; i < nranks; ++i) {
    machine.node_names.push_back("CPU_" + std::to_string(params.node_base + i));
    machine.node_speeds.push_back(1.0);
    machine.rank_to_node.push_back(i);
    machine.process_names.push_back("Tester:" + std::to_string(i + 1));
  }

  const int iterations = std::max(1, static_cast<int>(params.target_duration / 1.0));
  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    FunctionScope fn_main(r, "main", "main.C");
    for (int iter = 0; iter < iterations; ++iter) {
      {
        FunctionScope fn(r, "vect::addEl", "vect.C");
        r.compute(0.25);
      }
      {
        FunctionScope fn(r, "vect::findEl", "vect.C");
        r.compute(0.35);
      }
      {
        FunctionScope fn(r, "verifyA", "testutil.C");
        r.compute(rank == 1 ? 0.30 : 0.05);  // Tester:2's verifyA is hot (Fig. 1 focus)
      }
      {
        FunctionScope fn(r, "verifyB", "testutil.C");
        r.compute(0.05);
      }
      if (iter % 10 == 9) {
        FunctionScope fn(r, "printstatus", "main.C");
        r.compute(0.002);
      }
      if (iter % 50 == 49) {
        FunctionScope fn(r, "vect::print", "vect.C");
        r.compute(0.002);
      }
      r.barrier();
    }
  });
  return builder.build();
}

/// The program of the Figure 2 search: a CPU-bound graph partitioner.
/// CPUbound tests true and refines; the modules bubba.C, channel.C,
/// anneal.C, outchan.C and graph.C test false while partition.C and the
/// machine node "goat" test true.
simmpi::SimProgram build_bubba(const AppParams& params) {
  const int nranks = 4;
  MachineSpec machine;
  const char* nodes[] = {"goat", "moose", "elk", "bison"};
  for (int i = 0; i < nranks; ++i) {
    machine.node_names.push_back(nodes[i]);
    machine.node_speeds.push_back(1.0);
    machine.rank_to_node.push_back(i);
    machine.process_names.push_back("bubba:" + std::to_string(i + 1));
  }

  const int iterations = std::max(1, static_cast<int>(params.target_duration / 2.2));
  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    // goat (rank 0) carries the dominant partitioning load.
    const double hot = rank == 0 ? 1.6 : 0.9;
    FunctionScope fn_main(r, "main", "bubba.C");
    for (int iter = 0; iter < iterations; ++iter) {
      {
        FunctionScope fn(r, "partition", "partition.C");
        r.compute(hot * 0.9);
      }
      {
        FunctionScope fn(r, "anneal", "anneal.C");
        r.compute(0.12);
      }
      {
        FunctionScope fn(r, "buildGraph", "graph.C");
        r.compute(0.08);
      }
      {
        FunctionScope fn(r, "sendChannel", "channel.C");
        r.compute(0.04);
        const int peer = rank ^ 1;
        if (rank < peer) {
          r.send(peer, 0, 2048);
          r.recv(peer, 0);
        } else {
          r.recv(peer, 0);
          r.send(peer, 0, 2048);
        }
      }
      {
        FunctionScope fn(r, "writeOut", "outchan.C");
        r.io(0.03);
      }
      r.barrier();
    }
  });
  return builder.build();
}

}  // namespace histpc::apps
