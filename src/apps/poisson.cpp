#include <cmath>
#include <stdexcept>
#include <vector>

#include "apps/apps.h"

namespace histpc::apps {

using simmpi::FunctionScope;
using simmpi::MachineSpec;
using simmpi::ProgramBuilder;
using simmpi::Recorder;
using simmpi::RequestId;
using simmpi::SimProgram;

namespace {

/// Message communicator id: the paper reports version C's tags as 3/0, 3/1
/// and 3/-1, i.e. communicator 3.
constexpr int kComm = 3;
constexpr int kTagX = 0;   ///< x-direction halo exchange
constexpr int kTagY = 1;   ///< y-direction halo exchange
constexpr int kTagM = -1;  ///< butterfly reduction in main

/// Workload shape. Calibrated (see tests/apps/poisson_shape_test.cpp)
/// so version C reproduces the paper's measured distribution: ~2/3 of
/// execution in synchronization waits, concentrated in exchng2 and main,
/// tags 3:0 > 3:-1 > 3:1, processes 3 and 4 wait-dominated.
struct PoissonShape {
  int gx = 2, gy = 2;             ///< process grid
  double c_x = 0.30;              ///< sweep compute before the x exchange (s)
  double c_y = 0.10;              ///< sweep compute before the y exchange (s)
  double c_main = 0.12;           ///< diff computation in main (s)
  std::vector<double> factors;    ///< per-rank compute scaling (imbalance)
  std::size_t bytes_x = 14 << 20; ///< halo sizes (rendezvous-protocol range)
  std::size_t bytes_y = 14 << 20;
  std::size_t bytes_m = 5 << 20;
  int io_every = 256;             ///< checkpoint cadence (iterations)
  double io_seconds = 0.05;
  int stats_every = 200;          ///< tiny printstats cadence
};

struct Naming {
  const char* main_module;
  const char* sweep_module;
  const char* sweep_func;
  const char* exchng_module;
  const char* exchng_func;
  const char* process_prefix;
};

PoissonShape shape_for(char version) {
  PoissonShape s;
  switch (version) {
    case 'A':
    case 'B':
      s.gx = 4;  // 1-D decomposition: a chain of 4
      s.gy = 1;
      s.factors = {1.0, 0.98, 0.35, 0.26};
      // 1-D strips exchange a single (larger) boundary; no y direction.
      s.c_x = 0.40;
      s.c_y = 0.0;
      s.bytes_x = 13 << 20;
      s.bytes_y = 0;
      break;
    case 'C':
      s.factors = {1.0, 0.98, 0.35, 0.26};
      break;
    case 'D':
      s.gx = 4;
      s.gy = 2;
      s.factors = {1.0, 0.97, 0.93, 0.90, 0.42, 0.38, 0.30, 0.26};
      break;
    default:
      throw std::invalid_argument(std::string("unknown poisson version '") + version + "'");
  }
  return s;
}

Naming naming_for(char version) {
  switch (version) {
    case 'A':
      return {"oned.f", "sweep.f", "sweep1d", "exchng1.f", "exchng1", "poisson1d"};
    case 'B':
      return {"onednb.f", "nbsweep.f", "nbsweep", "nbexchng.f", "nbexchng1", "poisson1dnb"};
    case 'C':
    case 'D':
      // D runs the same code as C; only the machine changes.
      return {"twod.f", "sweep2d.f", "sweep2d", "exchng2.f", "exchng2", "poisson2d"};
    default:
      throw std::invalid_argument("unknown poisson version");
  }
}

/// Nonblocking neighbour exchange: post receives, send, complete receives.
/// Used by versions B, C and D (the paper's nonblocking/2-D variants).
void nonblocking_exchange(Recorder& r, const std::vector<int>& neighbours, int tag,
                          std::size_t bytes) {
  std::vector<RequestId> recvs;
  recvs.reserve(neighbours.size());
  for (int n : neighbours) recvs.push_back(r.irecv(n, tag, kComm));
  for (int n : neighbours) r.send(n, tag, bytes, kComm);
  for (RequestId req : recvs) r.wait(req);
}

/// Blocking ordered exchange of version A (Gropp et al.'s exchng1): even
/// ranks send first, odd ranks receive first, avoiding rendezvous
/// deadlock without any nonblocking operations.
void blocking_exchange(Recorder& r, int lo, int hi, std::size_t bytes) {
  if (r.rank() % 2 == 0) {
    if (hi >= 0) r.send(hi, kTagX, bytes, kComm);
    if (hi >= 0) r.recv(hi, kTagY, kComm);
    if (lo >= 0) r.send(lo, kTagY, bytes, kComm);
    if (lo >= 0) r.recv(lo, kTagX, kComm);
  } else {
    if (lo >= 0) r.recv(lo, kTagX, kComm);
    if (lo >= 0) r.send(lo, kTagY, bytes, kComm);
    if (hi >= 0) r.recv(hi, kTagY, kComm);
    if (hi >= 0) r.send(hi, kTagX, bytes, kComm);
  }
}

}  // namespace

simmpi::NetworkModel poisson_network() {
  simmpi::NetworkModel net;
  net.latency = 40e-6;
  net.bytes_per_second = 90.0e6;
  net.eager_limit = 16 * 1024;
  return net;
}

simmpi::SimProgram build_poisson(char version, const AppParams& params) {
  const PoissonShape shape = shape_for(version);
  const Naming names = naming_for(version);
  const int nranks = shape.gx * shape.gy;

  std::string node_prefix = params.node_prefix.empty() ? "poona" : params.node_prefix;
  MachineSpec machine =
      MachineSpec::one_to_one(nranks, node_prefix, names.process_prefix, params.node_base);

  // Iteration wall time estimate for sizing the iteration count: slowest
  // rank's compute plus the transfer times it waits through.
  const simmpi::NetworkModel net = poisson_network();
  const double compute = shape.c_x + shape.c_y + shape.c_main;
  const double comm = net.transfer_time(shape.bytes_x) + net.transfer_time(shape.bytes_y) +
                      2 * net.transfer_time(shape.bytes_m);
  const int iterations = std::max(1, static_cast<int>(params.target_duration / (compute + comm)));

  ProgramBuilder builder(machine, {params.compute_jitter, params.seed});
  builder.record([&](Recorder& r) {
    const int rank = r.rank();
    const double f = shape.factors.at(static_cast<std::size_t>(rank));
    const int x = rank / shape.gy;
    const int y = rank % shape.gy;

    FunctionScope fn_main(r, "main", names.main_module);

    {  // one-time initialization: a historic-prune candidate
      FunctionScope fn(r, "init", "init.f");
      r.compute(0.4);
    }

    std::vector<int> x_neighbours, y_neighbours;
    if (x > 0) x_neighbours.push_back(rank - shape.gy);
    if (x + 1 < shape.gx) x_neighbours.push_back(rank + shape.gy);
    if (y > 0) y_neighbours.push_back(rank - 1);
    if (y + 1 < shape.gy) y_neighbours.push_back(rank + 1);

    for (int iter = 0; iter < iterations; ++iter) {
      // Sweep: the local relaxation, imbalanced across ranks (uneven
      // domain decomposition).
      {
        FunctionScope fn(r, names.sweep_func, names.sweep_module);
        r.compute(f * shape.c_x);
      }
      {
        FunctionScope fn(r, names.exchng_func, names.exchng_module);
        if (version == 'A') {
          const int lo = rank > 0 ? rank - 1 : -1;
          const int hi = rank + 1 < nranks ? rank + 1 : -1;
          blocking_exchange(r, lo, hi, shape.bytes_x);
        } else {
          nonblocking_exchange(r, x_neighbours, kTagX, shape.bytes_x);
        }
      }
      if (shape.gy > 1) {
        {
          FunctionScope fn(r, names.sweep_func, names.sweep_module);
          r.compute(f * shape.c_y);
        }
        FunctionScope fn(r, names.exchng_func, names.exchng_module);
        nonblocking_exchange(r, y_neighbours, kTagY, shape.bytes_y);
      }

      // Convergence check in main: local diff then a butterfly reduction
      // (tag 3:-1) plus a small allreduce of the residual.
      {
        FunctionScope fn(r, "diff", "diff.f");
        r.compute(f * shape.c_main);
      }
      for (int stage = 1; stage < nranks; stage <<= 1) {
        const int partner = rank ^ stage;
        if (partner < nranks) nonblocking_exchange(r, {partner}, kTagM, shape.bytes_m);
      }
      r.allreduce(8);

      if (shape.io_every > 0 && iter % shape.io_every == shape.io_every - 1)
        r.io(shape.io_seconds);
      if (shape.stats_every > 0 && iter % shape.stats_every == shape.stats_every - 1) {
        FunctionScope fn(r, "printstats", "stats.f");
        r.compute(0.002);
      }
    }
  });
  return builder.build();
}

}  // namespace histpc::apps
