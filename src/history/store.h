// ExperimentStore: a directory of experiment records — the persistent
// multi-execution performance-data store the paper's infrastructure work
// (Karavanic & Miller, SC'97) provides, grown to fleet scale.
//
// Storage format. New records are written as binary columnar snapshots
// (`<run_id>.histexp`, histpc-exp-bin-v1 — see exp_snapshot.h); legacy
// `<run_id>.json` records remain a read-compatible slow path and are
// transparently migrated (the binary file is written beside the JSON on
// first successful load; the JSON is left untouched). When both files
// exist the binary wins; a corrupt binary falls back to the JSON and is
// rewritten from it.
//
// Index. Queries used to re-parse every record file; with thousands of
// stored runs that made `latest()` the slowest call in the system. The
// store now maintains an append-only JSONL index (`index-v1.jsonl` in the
// store directory) holding one summary line per record — run_id, app,
// version, machine, scenario, sequence number, ranks, duration, bottleneck
// count — plus tombstone lines for removals. Queries fold the index once
// per store instance and answer from memory, loading only the records they
// return. The index is self-healing: entries whose files vanished are
// dropped, record files missing from the index are parsed once and
// appended (this is also how a legacy JSON directory is adopted), corrupt
// index lines are skipped with a warning, and a deleted index is simply
// rebuilt. An ExperimentStore instance snapshots the index at first use;
// construct a fresh instance to observe records written by other
// processes.
//
// Concurrency. One ExperimentStore instance may be shared by concurrent
// readers (the `histpc serve` session pool answers every request from one
// instance): the in-memory IndexState is guarded by a shared_mutex — the
// index is folded once under an exclusive lock, queries then read under
// shared locks — and index-file appends are serialized by the same lock.
// Record-file I/O itself is lock-free; every write is atomic
// (temp+rename), so readers never observe a partial record. Writers
// (save / remove / migrate) are safe too, but the instance-snapshot
// semantics above still apply across *processes*.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "history/experiment.h"

namespace histpc::history {

/// Filename-safe form of an app or version name for embedding in a run id:
/// '_' (the run-id field separator), '/' and '\\' are replaced with '-'.
/// Applied when save() assigns a run id, so app `a` / version `b_c` and
/// app `a_b` / version `c` get distinct, unambiguous ids; association
/// queries (list / latest) match on the record's stored fields, never by
/// splitting the id back apart.
std::string escape_run_id_component(std::string_view component);

/// Natural run-id ordering: ids that differ only in a trailing numeric
/// sequence compare by that number ("run_9" < "run_10"), everything else
/// lexicographically. The order list()/latest() use, so sequence 10 no
/// longer sorts before 2.
bool run_id_natural_less(std::string_view a, std::string_view b);

/// One index line: everything a listing needs without loading the record.
struct IndexEntry {
  std::string run_id;
  std::string app;
  std::string version;
  std::string machine;
  std::string scenario;
  long seq = 0;  ///< numeric run-id tail (0 for caller-chosen ids)
  int nranks = 0;
  double duration = 0.0;
  std::size_t bottlenecks = 0;
};

/// Field filter for index queries; empty fields match everything.
struct StoreQuery {
  std::string app;
  std::string version;
  std::string machine;
  std::string scenario;
};

class ExperimentStore {
 public:
  /// Opens (creating if needed) the store rooted at `directory`.
  explicit ExperimentStore(std::string directory);

  const std::string& directory() const { return dir_; }

  /// Persist a record as a binary snapshot; assigns run_id
  /// ("<app>_<version>_<n>") when empty. Returns the assigned run id.
  std::string save(ExperimentRecord record);

  /// Load by run id; nullopt when absent. Strict: a file that exists but
  /// cannot be parsed throws (ExpSnapshotError for binary records,
  /// util::JsonError for legacy JSON) — the caller named this record
  /// explicitly and should hear about damage. Loading a JSON-only record
  /// migrates it to binary as a side effect (best-effort).
  std::optional<ExperimentRecord> load(const std::string& run_id) const;

  /// Like load(), but quarantines instead of throwing: a corrupt,
  /// truncated, or foreign file logs one Warn line naming the path and
  /// yields nullopt (a corrupt binary with an intact legacy JSON falls
  /// back and repairs the binary). Used by every flow that merely
  /// *discovers* records (list / latest / CLI listings), so one damaged
  /// file cannot abort a whole diagnosis.
  std::optional<ExperimentRecord> try_load(const std::string& run_id) const;

  /// All run ids, in natural order. With an app and/or version filter,
  /// records are matched on their *stored* fields via the index
  /// (unreadable files are skipped with a warning); without a filter this
  /// is a pure directory listing (foreign files and all).
  std::vector<std::string> list(const std::string& app = "",
                                const std::string& version = "") const;

  /// Index summaries matching `query`, in natural run-id order. O(index):
  /// no record files are opened. The CLI listing renders from this.
  std::vector<IndexEntry> summaries(const StoreQuery& query = {}) const;

  /// Most recent record matching the query, by run-id sequence (ties
  /// break toward the naturally-larger run id). Answered from the index;
  /// only the winning record is loaded. Skips corrupt files (see
  /// try_load) rather than aborting.
  std::optional<ExperimentRecord> latest(const StoreQuery& query) const;
  std::optional<ExperimentRecord> latest(const std::string& app,
                                         const std::string& version) const;

  /// Index-free latest(): re-parses every record file, exactly what the
  /// store did before the index existed. Kept as the property-test oracle
  /// for the indexed path and as the bench baseline. Side-effect free: it
  /// never migrates legacy JSON records (so a JSON-only directory scans as
  /// JSON every time).
  std::optional<ExperimentRecord> scan_latest(const std::string& app,
                                              const std::string& version) const;

  /// Remove one record (binary and/or legacy JSON file); true if one
  /// existed. Appends a tombstone to the index.
  bool remove(const std::string& run_id);

  /// Force migration of every readable legacy JSON record to binary and
  /// bring the index fully up to date. Returns the number of records
  /// migrated (binary file newly written). `jobs` > 1 parses and encodes
  /// records on a util::ThreadPool of that size (0 = hardware
  /// concurrency); the migrated set, the returned count, and the index
  /// contents are identical for every thread count — only the file-level
  /// parse/encode work runs in parallel, all bookkeeping is folded in
  /// sorted stem order afterwards.
  std::size_t migrate_all(int jobs = 1);

 private:
  struct IndexState {
    std::map<std::string, IndexEntry> entries;  // keyed by run_id
    /// Stems that failed to parse during this instance's heal pass;
    /// remembered so one bad file warns once, not once per query.
    std::set<std::string> unloadable;
  };

  std::string bin_path_for(const std::string& run_id) const;
  std::string json_path_for(const std::string& run_id) const;
  std::string index_path() const;
  /// Record stems present in the directory (either extension, deduped).
  std::set<std::string> record_stems() const;
  /// Build the cached index if absent (fold JSONL, drop stale entries,
  /// heal unindexed stems, rewrite when compaction is due). Caller must
  /// hold `index_mu_` exclusively.
  IndexState& ensure_index_locked() const;
  /// Caller must hold `index_mu_` exclusively (serializes appends).
  void append_index_line(const util::Json& line) const;
  void rewrite_index(const IndexState& state) const;
  /// Pure file-level load with quarantine-on-corrupt semantics (warn and
  /// return nullopt; a corrupt binary falls back to intact legacy JSON).
  /// When the record was read from legacy JSON, best-effort writes the
  /// binary beside it and sets *migrated. No index access, no locks —
  /// safe from any thread, including the heal pass itself.
  std::optional<ExperimentRecord> load_file(const std::string& run_id, bool* migrated) const;
  /// Fold a freshly-migrated record into the in-memory index and the
  /// index file, keyed by `run_id` (the stem the caller asked for, which
  /// wins over a hand-copied file's embedded id). Caller must hold
  /// `index_mu_` exclusively.
  void note_migrated_locked(const ExperimentRecord& record, const std::string& run_id) const;

  std::string dir_;
  /// Guards index_ and serializes index-file appends/rewrites. Record
  /// *file* I/O is deliberately outside it: writes are atomic
  /// (temp+rename), so holding a lock across them buys nothing.
  mutable std::shared_mutex index_mu_;
  mutable std::optional<IndexState> index_;
};

/// Index summary of one record (shared by save and the heal pass).
IndexEntry make_index_entry(const ExperimentRecord& record);

}  // namespace histpc::history
