// ExperimentStore: a directory of experiment records, one JSON file per
// diagnostic run. This is the persistent multi-execution performance-data
// store the paper's infrastructure work (Karavanic & Miller, SC'97)
// provides; here it is file-based and intentionally simple to inspect.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "history/experiment.h"

namespace histpc::history {

/// Filename-safe form of an app or version name for embedding in a run id:
/// '_' (the run-id field separator), '/' and '\\' are replaced with '-'.
/// Applied when save() assigns a run id, so app `a` / version `b_c` and
/// app `a_b` / version `c` get distinct, unambiguous ids; association
/// queries (list / latest) match on the record's stored fields, never by
/// splitting the id back apart.
std::string escape_run_id_component(std::string_view component);

class ExperimentStore {
 public:
  /// Opens (creating if needed) the store rooted at `directory`.
  explicit ExperimentStore(std::string directory);

  const std::string& directory() const { return dir_; }

  /// Persist a record; assigns run_id ("<app>_<version>_<n>") when empty.
  /// Returns the assigned run id.
  std::string save(ExperimentRecord record);

  /// Load by run id; nullopt when absent. Strict: a file that exists but
  /// cannot be parsed throws (util::JsonError / std::invalid_argument) —
  /// the caller named this record explicitly and should hear about damage.
  std::optional<ExperimentRecord> load(const std::string& run_id) const;

  /// Like load(), but quarantines instead of throwing: a corrupt,
  /// truncated, or foreign file logs one Warn line naming the path and
  /// yields nullopt. Used by every flow that merely *discovers* records
  /// (list / latest / CLI listings), so one damaged file cannot abort a
  /// whole diagnosis.
  std::optional<ExperimentRecord> try_load(const std::string& run_id) const;

  /// All run ids, sorted. With an app and/or version filter, records are
  /// matched on their *stored* fields (unreadable files are skipped with a
  /// warning); without a filter this is a pure directory listing.
  std::vector<std::string> list(const std::string& app = "",
                                const std::string& version = "") const;

  /// Most recent record for (app, version), by run-id sequence. Skips
  /// corrupt or foreign files (see try_load) rather than aborting.
  std::optional<ExperimentRecord> latest(const std::string& app,
                                         const std::string& version) const;

  /// Remove one record; true if it existed.
  bool remove(const std::string& run_id);

 private:
  std::string path_for(const std::string& run_id) const;
  std::string dir_;
};

}  // namespace histpc::history
