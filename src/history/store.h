// ExperimentStore: a directory of experiment records, one JSON file per
// diagnostic run. This is the persistent multi-execution performance-data
// store the paper's infrastructure work (Karavanic & Miller, SC'97)
// provides; here it is file-based and intentionally simple to inspect.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "history/experiment.h"

namespace histpc::history {

class ExperimentStore {
 public:
  /// Opens (creating if needed) the store rooted at `directory`.
  explicit ExperimentStore(std::string directory);

  const std::string& directory() const { return dir_; }

  /// Persist a record; assigns run_id ("<app>_<version>_<n>") when empty.
  /// Returns the assigned run id.
  std::string save(ExperimentRecord record);

  /// Load by run id; nullopt when absent.
  std::optional<ExperimentRecord> load(const std::string& run_id) const;

  /// All run ids, sorted; optionally filtered by app and/or version.
  std::vector<std::string> list(const std::string& app = "",
                                const std::string& version = "") const;

  /// Most recent record for (app, version), by run-id sequence.
  std::optional<ExperimentRecord> latest(const std::string& app,
                                         const std::string& version) const;

  /// Remove one record; true if it existed.
  bool remove(const std::string& run_id);

 private:
  std::string path_for(const std::string& run_id) const;
  std::string dir_;
};

}  // namespace histpc::history
