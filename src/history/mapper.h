// Resource mapping between executions (Section 3.2).
//
// Resources change names across runs: nodes 0-7 become nodes 16-23,
// process ids differ, and code versions rename modules and functions
// (oned.f -> onednb.f). Mapping directives establish equivalences so
// directives extracted from one run can steer another.
//
// The paper uses user-specified `map` directives; automating the mapping
// is listed as ongoing work. We provide both: user maps parse through
// DirectiveSet, and suggest_mappings() implements a structural
// name-similarity auto-mapper for the unique-resource candidates.
#pragma once

#include <vector>

#include "pc/directives.h"
#include "resources/resource_db.h"

namespace histpc::history {

struct MapperOptions {
  /// Minimum name similarity (1 - edit distance / length) for a suggested
  /// code-resource match.
  double min_similarity = 0.4;
  /// Map machine nodes positionally (old node k -> new node k) when the
  /// machine hierarchies have equal size but different names.
  bool positional_machines = true;
  /// Same for process resources.
  bool positional_processes = true;
};

/// Suggest mappings from resources of `from` (a previous run) onto
/// resources of `to` (the upcoming run). Only resources missing from `to`
/// are candidates; each is matched against same-depth resources of `to`
/// that are missing from `from` (both unique — shared names need no map).
std::vector<pc::MapDirective> suggest_mappings(const resources::ResourceDb& from,
                                               const resources::ResourceDb& to,
                                               const MapperOptions& options = {});

}  // namespace histpc::history
