#include "history/compare.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace histpc::history {

RunComparison compare_records(const ExperimentRecord& a, const ExperimentRecord& b,
                              const std::vector<pc::MapDirective>& maps) {
  RunComparison cmp;
  std::map<std::pair<std::string, std::string>, double> b_set;
  for (const auto& bb : b.bottlenecks) b_set[{bb.hypothesis, bb.focus}] = bb.fraction;

  std::map<std::pair<std::string, std::string>, bool> matched_in_b;
  for (const auto& ab : a.bottlenecks) {
    const std::string mapped_focus = pc::apply_maps_to_focus_name(maps, ab.focus);
    auto it = b_set.find({ab.hypothesis, mapped_focus});
    if (it == b_set.end()) {
      cmp.resolved.push_back(ab);
    } else {
      cmp.common.push_back({ab.hypothesis, mapped_focus, ab.fraction, it->second});
      matched_in_b[it->first] = true;
    }
  }
  for (const auto& bb : b.bottlenecks) {
    if (!matched_in_b.count({bb.hypothesis, bb.focus})) cmp.appeared.push_back(bb);
  }
  // Biggest movers first.
  std::stable_sort(cmp.common.begin(), cmp.common.end(),
                   [](const auto& x, const auto& y) {
                     return std::abs(x.delta()) > std::abs(y.delta());
                   });
  auto by_fraction = [](const pc::BottleneckReport& x, const pc::BottleneckReport& y) {
    return x.fraction > y.fraction;
  };
  std::stable_sort(cmp.resolved.begin(), cmp.resolved.end(), by_fraction);
  std::stable_sort(cmp.appeared.begin(), cmp.appeared.end(), by_fraction);
  return cmp;
}

std::string render_comparison(const RunComparison& cmp, const std::string& name_a,
                              const std::string& name_b, std::size_t max_rows) {
  std::ostringstream os;
  os << "comparison: " << name_a << " -> " << name_b << "\n"
     << "  resolved: " << cmp.resolved.size() << ", appeared: " << cmp.appeared.size()
     << ", common: " << cmp.common.size() << "\n";

  auto emit_list = [&](const char* title, const std::vector<pc::BottleneckReport>& list) {
    os << "\n" << title << ":\n";
    if (list.empty()) {
      os << "  (none)\n";
      return;
    }
    std::size_t shown = 0;
    for (const auto& bb : list) {
      os << "  " << util::fmt_percent(bb.fraction, 1) << "  " << bb.hypothesis << " : "
         << bb.focus << "\n";
      if (++shown >= max_rows) {
        os << "  ... " << list.size() - shown << " more\n";
        break;
      }
    }
  };
  emit_list("resolved (bottlenecks gone)", cmp.resolved);
  emit_list("appeared (new bottlenecks)", cmp.appeared);

  os << "\nbiggest movers (common bottlenecks):\n";
  if (cmp.common.empty()) os << "  (none)\n";
  std::size_t shown = 0;
  for (const auto& c : cmp.common) {
    os << "  " << util::fmt_percent(c.fraction_a, 1) << " -> "
       << util::fmt_percent(c.fraction_b, 1) << " (" << (c.delta() >= 0 ? "+" : "")
       << util::fmt_percent(c.delta(), 1) << ")  " << c.hypothesis << " : " << c.focus
       << "\n";
    if (++shown >= max_rows) {
      os << "  ... " << cmp.common.size() - shown << " more\n";
      break;
    }
  }
  return os.str();
}

}  // namespace histpc::history
