// Postmortem hypothesis evaluation (the paper's Section 6 extension):
// harvest search directives when no previous Performance Consultant run —
// and therefore no Search History Graph — is available, but the raw
// performance data is, e.g. a trace gathered with a different monitoring
// tool.
//
// The evaluator replays the Performance Consultant's top-down refinement
// over the complete execution: every (hypothesis : focus) pair is tested
// against the whole-run fraction with no instrumentation cost, no missed
// data, and no program-end truncation. The result is an ideal diagnosis
// whose record feeds the ordinary DirectiveGenerator.
#pragma once

#include "history/experiment.h"
#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "pc/hypothesis.h"

namespace histpc::history {

struct PostmortemOptions {
  pc::HypothesisSet hypotheses = pc::HypothesisSet::standard();
  /// When > 0, overrides every hypothesis's default threshold.
  double threshold_override = -1.0;
  /// Safety bound on the number of pairs evaluated (the refinement of a
  /// pathological trace could be large); evaluation stops cleanly at the
  /// bound and the remaining candidates are reported NeverRan.
  std::size_t max_pairs = 200000;
};

/// Evaluate the hypothesis tree over the full execution. Bottleneck
/// timestamps are 0 (nothing is "found over time" postmortem).
pc::DiagnosisResult postmortem_diagnose(const metrics::TraceView& view,
                                        const PostmortemOptions& options = {});

/// Convenience: postmortem evaluation straight to a storable record.
ExperimentRecord postmortem_record(std::string app, std::string version,
                                   const metrics::TraceView& view,
                                   const PostmortemOptions& options = {});

}  // namespace histpc::history
